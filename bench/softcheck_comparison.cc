/**
 * @file
 * Motivation experiment (paper SI): software checking vs AOS.
 *
 * The paper's case for hardware support opens with AddressSanitizer's
 * 73% slowdown. This harness runs an ASan-style software-checking
 * configuration (shadow-memory instrumentation, see
 * compiler/asan_pass.hh) next to AOS on the same workloads, printing
 * normalized time and dynamic instruction inflation.
 */

#include "bench/harness.hh"

using namespace aos;
using namespace aos::bench;
using baselines::Mechanism;

int
main()
{
    setQuiet(true);
    const u64 ops = envU64("AOS_SIM_OPS", 500'000);

    std::printf("Software checking (ASan-style) vs AOS, %llu ops/run\n\n",
                static_cast<unsigned long long>(ops));
    std::printf("%-12s %12s %12s %14s %14s\n", "workload", "ASan time",
                "AOS time", "ASan +instr", "AOS +instr");
    rule(70);

    GeoAccum geo_asan, geo_aos, infl_asan, infl_aos;
    for (const auto &profile : workloads::specProfiles()) {
        const core::RunResult base =
            runConfig(profile, Mechanism::kBaseline, ops);
        const core::RunResult asan =
            runConfig(profile, Mechanism::kAsan, ops);
        const core::RunResult aos = runConfig(profile, Mechanism::kAos, ops);

        const double t_asan = static_cast<double>(asan.core.cycles) /
                              static_cast<double>(base.core.cycles);
        const double t_aos = static_cast<double>(aos.core.cycles) /
                             static_cast<double>(base.core.cycles);
        const double i_asan = static_cast<double>(asan.mix.total) /
                              static_cast<double>(base.mix.total);
        const double i_aos = static_cast<double>(aos.mix.total) /
                             static_cast<double>(base.mix.total);
        geo_asan.add(t_asan);
        geo_aos.add(t_aos);
        infl_asan.add(i_asan);
        infl_aos.add(i_aos);
        std::printf("%-12s %12.3f %12.3f %13.1f%% %13.1f%%\n",
                    profile.name.c_str(), t_asan, t_aos,
                    100.0 * (i_asan - 1.0), 100.0 * (i_aos - 1.0));
        std::fflush(stdout);
    }
    rule(70);
    std::printf("%-12s %12.3f %12.3f %13.1f%% %13.1f%%\n", "geomean",
                geo_asan.geomean(), geo_aos.geomean(),
                100.0 * (infl_asan.geomean() - 1.0),
                100.0 * (infl_aos.geomean() - 1.0));
    std::printf("\npaper cites ASan at ~73%% slowdown; the ~87%% dynamic-"
                "instruction inflation here matches ASan's published "
                "profile, and the Table IV machine's 32-entry load "
                "queue punishes the doubled load stream harder than "
                "ASan's deeper-LQ x86 hosts. Either way the conclusion "
                "is the paper's: software checking is far too costly "
                "to be always-on, while AOS's checks ride in hardware "
                "next to the LSU instead of in the instruction "
                "stream.\n");
    return 0;
}
