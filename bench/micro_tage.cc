/**
 * @file
 * Microbenchmark: TAGE predict+update throughput, which bounds the
 * timing simulator's own speed on branch-heavy workloads.
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "cpu/tage.hh"

using namespace aos;
using namespace aos::cpu;

namespace {

void
BM_TagePredictUpdate(benchmark::State &state)
{
    Tage tage;
    Rng rng(1);
    const unsigned branches = static_cast<unsigned>(state.range(0));
    std::vector<double> bias;
    for (unsigned b = 0; b < branches; ++b)
        bias.push_back(rng.uniform());
    for (auto _ : state) {
        const u64 b = rng.below(branches);
        const Addr pc = 0x400000 + b * 4;
        const bool taken = rng.chance(bias[b]);
        benchmark::DoNotOptimize(tage.predict(pc));
        tage.update(pc, taken);
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["mispredict_rate"] = tage.stats().mispredictRate();
}

} // namespace

BENCHMARK(BM_TagePredictUpdate)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4096)
    ->ArgName("branches");
