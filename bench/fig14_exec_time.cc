/**
 * @file
 * Fig. 14 — Normalized execution time of Watchdog, PA, AOS and PA+AOS
 * over the Baseline for the 16 SPEC CPU 2006 workload profiles.
 *
 * Paper reference points: Watchdog 1.194 geomean, PA ~1.005 (with
 * ~10% outliers on call-heavy hmmer/omnetpp), AOS 1.084, PA+AOS ~+1.5%
 * over AOS; milc/namd/gobmk/astar marginally below 1.0 under AOS.
 *
 * The 80 (profile × mechanism) runs execute as one campaign on the
 * work-stealing pool; per-config results are bit-identical whatever
 * AOS_CAMPAIGN_JOBS is set to (see DESIGN.md §7).
 */

#include "bench/harness.hh"

#include <cmath>

#include "common/stats.hh"

using namespace aos;
using namespace aos::bench;
using baselines::Mechanism;

namespace {

const Mechanism kMechs[] = {Mechanism::kBaseline, Mechanism::kWatchdog,
                            Mechanism::kPa, Mechanism::kAos,
                            Mechanism::kPaAos};
constexpr unsigned kNumMechs = 5; // Baseline + the four evaluated.

} // namespace

int
main()
{
    setQuiet(true);
    const u64 ops = simOps();

    std::printf("Fig. 14: normalized execution time (lower is better)\n");
    std::printf("measured window: %llu source micro-ops per run "
                "(AOS_SIM_OPS to change)\n\n",
                static_cast<unsigned long long>(ops));
    std::printf("Table IV machine: 2GHz 8-wide OoO, 192 ROB, 48 MCQ, "
                "L-TAGE, 64KB L1-D, 32KB L1-B, 8MB L2, 16-bit PAC, "
                "1-way 4MB initial HBT\n\n");

    campaign::Campaign sweep(campaignOptions("fig14_exec_time"));
    const auto &profiles = workloads::specProfiles();
    for (const auto &profile : profiles)
        for (const Mechanism mech : kMechs)
            sweep.addConfig(profile, mech, ops);
    campaign::CampaignResult result = sweep.run();
    exitIfInterrupted(result);
    if (!result.allOk()) {
        std::fprintf(stderr, "fig14: %u job(s) failed\n",
                     result.count(campaign::JobStatus::kFailed) +
                         result.count(campaign::JobStatus::kTimeout));
        return 1;
    }

    std::printf("%-12s %10s %10s %10s %10s\n", "workload", "Watchdog",
                "PA", "AOS", "PA+AOS");
    rule(56);

    GeoAccum geo[kNumMechs - 1];
    bool sane = true;
    for (size_t p = 0; p < profiles.size(); ++p) {
        const auto row = [&](unsigned m) -> campaign::JobResult & {
            return result.jobs[p * kNumMechs + m];
        };
        // Read cycles from the flattened stats, not run.core: a job
        // restored from a checkpoint carries stats only.
        const double base_cycles = row(0).stats.value("cycles");
        std::printf("%-12s", profiles[p].name.c_str());
        for (unsigned m = 1; m < kNumMechs; ++m) {
            const double norm = row(m).stats.value("cycles") / base_cycles;
            // A degenerate run (zero/NaN cycles) must fail the harness,
            // not ship a silently-wrong figure.
            if (!std::isfinite(norm) || norm <= 0.0)
                sane = false;
            // Derived stat: reducers + the JSON trajectory read it.
            row(m).stats.scalar("norm_exec_time") = norm;
            geo[m - 1].add(norm);
            std::printf(" %10.3f", norm);
        }
        std::printf("\n");
    }
    rule(56);
    std::printf("%-12s", "geomean");
    for (unsigned m = 1; m < kNumMechs; ++m)
        std::printf(" %10.3f", geo[m - 1].geomean());
    std::printf("\n%-12s %10.3f %10.3f %10.3f %10s\n", "paper", 1.194,
                1.005, 1.084, "AOS+1.5%");

    std::vector<campaign::Reducer> reducers;
    for (unsigned m = 1; m < kNumMechs; ++m) {
        const Mechanism mech = kMechs[m];
        reducers.push_back(
            {std::string("geomean_norm_") + baselines::mechanismName(mech),
             campaign::ReduceOp::kGeomean, "norm_exec_time",
             [mech](const campaign::JobResult &job) {
                 return job.mech == mech;
             }});
    }
    campaign::computeReducers(result, reducers);
    const bool json_ok = emitCampaignJson(result, "fig14_exec_time");
    if (!sane)
        std::fprintf(stderr,
                     "fig14: non-finite or non-positive normalized "
                     "execution time\n");
    return (sane && json_ok) ? 0 : 1;
}
