/**
 * @file
 * Fig. 14 — Normalized execution time of Watchdog, PA, AOS and PA+AOS
 * over the Baseline for the 16 SPEC CPU 2006 workload profiles.
 *
 * Paper reference points: Watchdog 1.194 geomean, PA ~1.005 (with
 * ~10% outliers on call-heavy hmmer/omnetpp), AOS 1.084, PA+AOS ~+1.5%
 * over AOS; milc/namd/gobmk/astar marginally below 1.0 under AOS.
 */

#include "bench/harness.hh"
#include "common/stats.hh"

using namespace aos;
using namespace aos::bench;
using baselines::Mechanism;

int
main()
{
    setQuiet(true);
    const u64 ops = simOps();

    std::printf("Fig. 14: normalized execution time (lower is better)\n");
    std::printf("measured window: %llu source micro-ops per run "
                "(AOS_SIM_OPS to change)\n\n",
                static_cast<unsigned long long>(ops));
    std::printf("Table IV machine: 2GHz 8-wide OoO, 192 ROB, 48 MCQ, "
                "L-TAGE, 64KB L1-D, 32KB L1-B, 8MB L2, 16-bit PAC, "
                "1-way 4MB initial HBT\n\n");

    const Mechanism mechs[] = {Mechanism::kWatchdog, Mechanism::kPa,
                               Mechanism::kAos, Mechanism::kPaAos};

    std::printf("%-12s %10s %10s %10s %10s\n", "workload", "Watchdog",
                "PA", "AOS", "PA+AOS");
    rule(56);

    GeoAccum geo[4];
    for (const auto &profile : workloads::specProfiles()) {
        const core::RunResult base =
            runConfig(profile, Mechanism::kBaseline, ops);
        std::printf("%-12s", profile.name.c_str());
        for (unsigned m = 0; m < 4; ++m) {
            const core::RunResult r = runConfig(profile, mechs[m], ops);
            const double norm = static_cast<double>(r.core.cycles) /
                                static_cast<double>(base.core.cycles);
            geo[m].add(norm);
            std::printf(" %10.3f", norm);
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    rule(56);
    std::printf("%-12s", "geomean");
    for (unsigned m = 0; m < 4; ++m)
        std::printf(" %10.3f", geo[m].geomean());
    std::printf("\n%-12s %10.3f %10.3f %10.3f %10s\n", "paper", 1.194,
                1.005, 1.084, "AOS+1.5%");
    return 0;
}
