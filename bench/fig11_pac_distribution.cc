/**
 * @file
 * Fig. 11 + SVI — PAC distribution study: 2^20 (~1M) malloc() calls,
 * 16-bit PACs computed by QARMA with the paper's key and context.
 *
 * Paper reference: Avg 16.0, Max 36, Min 3, Stdev 3.99 — i.e. the PAC
 * values are indistinguishable from a uniform hash (Poisson lambda=16).
 */

#include <algorithm>

#include "alloc/heap_allocator.hh"
#include "bench/harness.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "pa/pa_context.hh"

using namespace aos;
using namespace aos::bench;

int
main()
{
    setQuiet(true);
    const u64 mallocs = envU64("AOS_PAC_MALLOCS", u64{1} << 20);

    // The paper's exact material: 128-bit key (w0 || k0) and 64-bit
    // context.
    pa::PaContext pa;
    pa.setKeyM({0x84be85ce9804e94bull, 0xec2802d4e0a488e9ull});
    constexpr u64 kContext = 0x477d469dec0b8762ull;

    // SVI: "a microbenchmark that continuously calls malloc() 1
    // million times and generates 16-bit PAC values" — one PAC per
    // distinct chunk base address.
    alloc::HeapAllocator heap;
    Rng rng(0xf16011);
    Histogram hist;
    for (u64 done = 0; done < mallocs; ++done) {
        const u64 size = 16 + rng.below(4096);
        const Addr p = heap.malloc(size);
        if (p == 0)
            fatal("simulated heap exhausted after %llu mallocs",
                  static_cast<unsigned long long>(done));
        hist.add(pa.computePac(p, kContext, pa::PaKey::kModifierM));
    }

    const u64 keyspace = u64{1} << 16;
    const Distribution occ = hist.occupancy(keyspace);

    std::printf("Fig. 11: PAC value distribution, %llu mallocs, 16-bit "
                "PAC, QARMA-64 sigma1 r=7\n\n",
                static_cast<unsigned long long>(mallocs));
    std::printf("  %-28s %10s %10s\n", "", "measured", "paper");
    std::printf("  %-28s %10.1f %10.1f\n", "avg occurrences per PAC",
                occ.mean(), 16.0);
    std::printf("  %-28s %10.0f %10d\n", "max", occ.max(), 36);
    std::printf("  %-28s %10.0f %10d\n", "min", occ.min(), 3);
    std::printf("  %-28s %10.2f %10.2f\n", "stdev", occ.stdev(), 3.99);

    // Coarse histogram of occupancies (the shape of the Fig. 11 dots).
    std::printf("\n  occupancy histogram (per-PAC malloc counts):\n");
    std::map<u64, u64> shape;
    for (u64 pac = 0; pac < keyspace; ++pac)
        ++shape[hist.get(pac) / 4 * 4];
    for (const auto &[bucket, count] : shape) {
        std::printf("  %3llu-%-3llu |",
                    static_cast<unsigned long long>(bucket),
                    static_cast<unsigned long long>(bucket + 3));
        const u64 bar = std::min<u64>(count / 256, 120);
        for (u64 i = 0; i < bar; ++i)
            std::putchar('#');
        std::printf(" %llu\n", static_cast<unsigned long long>(count));
    }

    // Poisson(16) sanity: stdev ~ 4, max within [30, 48] for 64K cells.
    const bool sane = occ.mean() > 15.5 && occ.mean() < 16.5 &&
                      occ.stdev() > 3.5 && occ.stdev() < 4.5;
    std::printf("\n  distribution %s the paper's uniform-hash finding\n",
                sane ? "REPRODUCES" : "DEVIATES FROM");
    return sane ? 0 : 1;
}
