/**
 * @file
 * Fig. 17 — Bounds-table accesses per checked instruction and BWB hit
 * rate, per workload, under AOS.
 *
 * Paper reference: omnetpp highest at ~1.17 accesses per instruction,
 * everything else close to 1.0; BWB hit rates mostly above 80%.
 * An extra column reports the same metric with the BWB disabled.
 */

#include "bench/harness.hh"

using namespace aos;
using namespace aos::bench;
using baselines::Mechanism;
using baselines::SystemOptions;

int
main()
{
    setQuiet(true);
    const u64 ops = simOps();

    std::printf("Fig. 17: HBT accesses per checked op and BWB hit rate "
                "(AOS, %llu ops/run)\n\n",
                static_cast<unsigned long long>(ops));
    std::printf("%-12s %12s %10s %14s %10s\n", "workload", "accesses/op",
                "BWB hit", "accesses(noBWB)", "forwards");
    rule(64);

    SystemOptions no_bwb;
    no_bwb.useBwb = false;

    for (const auto &profile : workloads::specProfiles()) {
        const core::RunResult r = runConfig(profile, Mechanism::kAos, ops);
        const core::RunResult r2 =
            runConfig(profile, Mechanism::kAos, ops, no_bwb);
        std::printf("%-12s %12.3f %9.1f%% %14.3f %10llu\n",
                    profile.name.c_str(), r.mcuStats.avgWaysPerCheck(),
                    100.0 * r.bwb.hitRate(),
                    r2.mcuStats.avgWaysPerCheck(),
                    static_cast<unsigned long long>(r.mcuStats.forwards));
        std::fflush(stdout);
    }
    std::printf("\npaper: omnetpp ~1.17 accesses/op (highest); most "
                "BWB hit rates >80%%\n");
    return 0;
}
