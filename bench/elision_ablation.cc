/**
 * @file
 * Elision ablation (new axis, DESIGN.md "Static analysis layer"):
 * PA+AOS with and without AosElidePass across the SPEC profiles.
 *
 * The pass proves most on-load autm authentications redundant (the
 * same chunk's metadata was already authenticated and nothing
 * invalidated the proof), so the elided configuration executes fewer
 * pac-unit micro-ops at identical security: the second table replays
 * the attack-gallery classes through the pipeline with and without
 * elision and shows the detection profiles match.
 *
 * The per-profile (base, elided) timing pairs execute as one campaign
 * on the work-stealing pool (AOS_CAMPAIGN_JOBS workers); the attack
 * parity replay below stays serial — it is functional, not timed.
 *
 * Build & run:  ./build/bench/elision_ablation
 */

#include "bench/harness.hh"

#include "analysis/dataflow/engine.hh"
#include "compiler/aos_bounds_elide_pass.hh"
#include "compiler/aos_elide_pass.hh"
#include "compiler/aos_passes.hh"
#include "compiler/pa_pass.hh"
#include "pa/pa_context.hh"
#include "staticcheck/obligation_checker.hh"
#include "staticcheck/stream_executor.hh"

using namespace aos;
using namespace aos::bench;
using baselines::Mechanism;
using baselines::SystemOptions;

namespace {

ir::MicroOp
src(ir::OpKind kind, Addr addr = 0, Addr chunk = 0, u32 size = 0,
    bool loads_pointer = false)
{
    ir::MicroOp op;
    op.kind = kind;
    op.addr = addr;
    op.chunkBase = chunk;
    op.size = size;
    op.loadsPointer = loads_pointer;
    return op;
}

/** Lower a source stream through the full PA+AOS pipeline. */
std::vector<ir::MicroOp>
lower(std::vector<ir::MicroOp> input, pa::PaContext &pa)
{
    ir::VectorStream source(std::move(input));
    compiler::AosOptPass opt(&source);
    compiler::AosBackendPass backend(&opt, &pa);
    compiler::PaPass pa_pass(&backend, compiler::PaMode::kPaAos);
    std::vector<ir::MicroOp> out;
    ir::MicroOp next;
    while (pa_pass.next(next))
        out.push_back(next);
    return out;
}

std::vector<ir::MicroOp>
elideStream(const std::vector<ir::MicroOp> &ops,
            const pa::PointerLayout &layout)
{
    ir::VectorStream source(ops);
    compiler::AosElidePass pass(&source, layout);
    std::vector<ir::MicroOp> out;
    ir::MicroOp next;
    while (pass.next(next))
        out.push_back(next);
    return out;
}

/** One attack class: detections with and without elision must match. */
bool
attackParity(const char *name, std::vector<ir::MicroOp> source)
{
    pa::PaContext pa(pa::PointerLayout(16, 46));
    const auto full = lower(std::move(source), pa);
    const auto elided = elideStream(full, pa.layout());
    staticcheck::StreamExecutor full_exec(pa.layout());
    staticcheck::StreamExecutor elided_exec(pa.layout());
    const auto fs = full_exec.run(full);
    const auto es = elided_exec.run(elided);
    const bool parity = es.sameDetections(fs) && fs.detections() > 0;
    std::printf("  %-24s %9llu %9llu %9llu %9llu   %s\n", name,
                static_cast<unsigned long long>(fs.autms),
                static_cast<unsigned long long>(es.autms),
                static_cast<unsigned long long>(fs.detections()),
                static_cast<unsigned long long>(es.detections()),
                parity ? "PARITY" : "MISMATCH");
    return parity;
}

} // namespace

int
main()
{
    setQuiet(true);
    const u64 ops = simOps();

    std::printf("Elision ablation: PA+AOS vs autm elision vs dataflow "
                "bounds elision, %llu ops/run\n\n",
                static_cast<unsigned long long>(ops));
    std::printf("%-12s %10s %10s %7s %7s %8s %8s %8s %10s %10s %8s "
                "%8s\n",
                "workload", "autm", "autm-el", "rate", "cover", "ipc",
                "ipc-el", "ipc-bel", "mcq-stall", "mcq-st-el", "norm",
                "norm-bel");
    rule(112);

    SystemOptions with_elision;
    with_elision.aosElision = true;
    SystemOptions with_belide;
    with_belide.aosBoundsElision = true;

    campaign::Campaign sweep(campaignOptions("elision_ablation"));
    const auto &profiles = workloads::specProfiles();
    for (const auto &profile : profiles) {
        // Three jobs per profile: [3p] = PA+AOS base, [3p+1] = autm
        // elision, [3p+2] = dataflow bounds elision.
        campaign::Job base;
        base.name = profile.name + "/pa_aos";
        base.profile = profile;
        base.mech = Mechanism::kPaAos;
        base.ops = ops;
        sweep.add(std::move(base));

        campaign::Job elided;
        elided.name = profile.name + "/pa_aos_elide";
        elided.profile = profile;
        elided.mech = Mechanism::kPaAos;
        elided.options = with_elision;
        elided.ops = ops;
        sweep.add(std::move(elided));

        campaign::Job belided;
        belided.name = profile.name + "/pa_aos_belide";
        belided.profile = profile;
        belided.mech = Mechanism::kPaAos;
        belided.options = with_belide;
        belided.ops = ops;
        sweep.add(std::move(belided));
    }
    campaign::CampaignResult result = sweep.run();
    exitIfInterrupted(result);
    if (!result.allOk()) {
        std::fprintf(stderr, "elision_ablation: %u job(s) failed\n",
                     result.count(campaign::JobStatus::kFailed) +
                         result.count(campaign::JobStatus::kTimeout));
        return 1;
    }

    GeoAccum norm_geo;
    GeoAccum rate_geo;
    GeoAccum belide_norm_geo;
    for (size_t p = 0; p < profiles.size(); ++p) {
        // Read the flattened stats, not run.*: a job restored from a
        // checkpoint carries stats only.
        const StatSet &base = result.jobs[3 * p].stats;
        campaign::JobResult &elided_job = result.jobs[3 * p + 1];
        campaign::JobResult &belided_job = result.jobs[3 * p + 2];
        const StatSet &elided = elided_job.stats;
        const StatSet &belided = belided_job.stats;
        const double elision_rate =
            elided.has("elide_rate") ? elided.value("elide_rate") : 0.0;
        const double cover = belided.has("belide_bndstr_rate")
                                 ? belided.value("belide_bndstr_rate")
                                 : 0.0;
        const double norm =
            elided.value("cycles") / base.value("cycles");
        const double belide_norm =
            belided.value("cycles") / base.value("cycles");
        elided_job.stats.scalar("norm_exec_time") = norm;
        elided_job.stats.scalar("kept_autm_fraction") = 1.0 - elision_rate;
        belided_job.stats.scalar("norm_exec_time_belide") = belide_norm;
        norm_geo.add(norm);
        rate_geo.add(1.0 - elision_rate);
        belide_norm_geo.add(belide_norm);
        std::printf("%-12s %10.0f %10.0f %6.1f%% %6.1f%% %8.3f %8.3f "
                    "%8.3f %10.0f %10.0f %8.3f %8.3f\n",
                    profiles[p].name.c_str(), base.value("mix_autms"),
                    elided.value("mix_autms"), 100.0 * elision_rate,
                    100.0 * cover, base.value("ipc"),
                    elided.value("ipc"), belided.value("ipc"),
                    base.value("mcq_full_stalls"),
                    elided.value("mcq_full_stalls"), norm, belide_norm);
        std::fflush(stdout);
    }
    rule(112);
    std::printf("%-12s geomean exec time elided/base: %.3f, "
                "belide/base: %.3f, geomean kept-autm fraction: "
                "%.3f\n\n", "",
                norm_geo.geomean(), belide_norm_geo.geomean(),
                rate_geo.geomean());

    const auto elided_only = [](const campaign::JobResult &job) {
        return job.stats.has("norm_exec_time");
    };
    const auto belided_only = [](const campaign::JobResult &job) {
        return job.stats.has("norm_exec_time_belide");
    };
    campaign::computeReducers(
        result,
        {{"geomean_norm_elided", campaign::ReduceOp::kGeomean,
          "norm_exec_time", elided_only},
         {"geomean_kept_autm_fraction", campaign::ReduceOp::kGeomean,
          "kept_autm_fraction", elided_only},
         {"geomean_norm_belide", campaign::ReduceOp::kGeomean,
          "norm_exec_time_belide", belided_only},
         {"mean_bndstr_coverage", campaign::ReduceOp::kMean,
          "belide_bndstr_rate", belided_only}});
    const bool json_ok = emitCampaignJson(result, "elision_ablation");

    // --- Detection parity on the attack-gallery classes ---
    constexpr Addr kChunk = 0x20001000;
    std::vector<ir::MicroOp> prelude{
        src(ir::OpKind::kMallocMark, 0, kChunk, 64)};
    for (int i = 0; i < 4; ++i)
        prelude.push_back(
            src(ir::OpKind::kLoad, kChunk + 8, kChunk, 8, true));

    std::printf("Attack parity (autm count may drop; detections may "
                "not):\n");
    std::printf("  %-24s %9s %9s %9s %9s\n", "attack", "autm", "autm-el",
                "det", "det-el");

    bool all_parity = true;
    {
        auto s = prelude;
        s.push_back(src(ir::OpKind::kLoad, kChunk + 4096, kChunk, 8));
        all_parity &= attackParity("heap-overflow", std::move(s));
    }
    {
        auto s = prelude;
        s.push_back(src(ir::OpKind::kFreeMark, 0, kChunk));
        s.push_back(src(ir::OpKind::kLoad, kChunk + 16, kChunk, 8));
        all_parity &= attackParity("use-after-free", std::move(s));
    }
    {
        auto s = prelude;
        s.push_back(src(ir::OpKind::kFreeMark, 0, kChunk));
        s.push_back(src(ir::OpKind::kFreeMark, 0, kChunk));
        all_parity &= attackParity("double-free", std::move(s));
    }
    {
        auto s = prelude;
        s.push_back(src(ir::OpKind::kFreeMark, 0, 0x00601000));
        all_parity &= attackParity("invalid-free", std::move(s));
    }

    std::printf("\n%s\n", all_parity
                              ? "All attacks detected identically with "
                                "elision enabled."
                              : "PARITY FAILURE: elision dropped a "
                                "security-relevant check!");

    // --- Fault-matrix parity under bounds elision ---
    // A representative program mixing elidable private chunks with an
    // escaping, an out-of-bounds and a use-after-free chunk; the
    // ObligationChecker injects the aligned fault matrix into the full
    // and the bounds-elided lowering, and per fault class the elided
    // stream must detect at least as much as the full one.
    bool fault_ok = true;
    {
        std::vector<ir::MicroOp> program;
        constexpr Addr kBase = 0x20100000;
        constexpr Addr kStride = 0x2000;
        for (int c = 0; c < 12; ++c) {
            const Addr chunk = kBase + c * kStride;
            program.push_back(src(ir::OpKind::kMallocMark, 0, chunk, 96));
            for (int a = 0; a < 6; ++a)
                program.push_back(src(ir::OpKind::kLoad, chunk + 8 * a,
                                      chunk, 8,
                                      /*loads_pointer=*/c % 4 == 1));
            if (c % 4 == 2) // out-of-bounds probe: spatially unsafe.
                program.push_back(src(ir::OpKind::kStore, chunk + 4096,
                                      chunk, 8));
            program.push_back(src(ir::OpKind::kFreeMark, 0, chunk));
            if (c % 4 == 3) // use-after-free probe: temporally unsafe.
                program.push_back(src(ir::OpKind::kLoad, chunk + 16,
                                      chunk, 8));
        }

        pa::PaContext pa(pa::PointerLayout(16, 46));
        ir::VectorStream analysis_stream(program);
        analysis::dataflow::DataflowEngine engine(pa.layout());
        engine.run(analysis_stream);
        const auto plan = analysis::dataflow::planBoundsElision(engine);

        const auto full = lower(program, pa);
        ir::VectorStream full_stream(full);
        compiler::AosBoundsElidePass belide(&full_stream, pa.layout(),
                                            &plan);
        std::vector<ir::MicroOp> belided;
        ir::MicroOp next;
        while (belide.next(next))
            belided.push_back(next);

        staticcheck::ObligationChecker checker;
        const auto report = checker.check(full, belided, plan);
        fault_ok = report.ok;

        std::printf("\nFault-matrix parity under bounds elision "
                    "(%zu/%llu chunks elided, aligned injection):\n",
                    plan.obligations().size(),
                    static_cast<unsigned long long>(
                        plan.stats().chunksSeen));
        std::printf("  %-16s %9s %9s %9s %9s\n", "fault class", "inj",
                    "inj-el", "det", "det-el");
        for (unsigned t = 0; t < faultinject::kNumFaultTypes; ++t) {
            const auto &fs = report.fullFaultStats;
            const auto &es = report.elidedFaultStats;
            if (fs.perType[t] == 0 && es.perType[t] == 0)
                continue;
            std::printf("  %-16s %9llu %9llu %9llu %9llu   %s\n",
                        faultinject::faultTypeName(
                            static_cast<faultinject::FaultType>(t)),
                        static_cast<unsigned long long>(fs.perType[t]),
                        static_cast<unsigned long long>(es.perType[t]),
                        static_cast<unsigned long long>(
                            fs.perTypeDetected[t]),
                        static_cast<unsigned long long>(
                            es.perTypeDetected[t]),
                        es.perTypeDetected[t] >= fs.perTypeDetected[t]
                            ? "PARITY"
                            : "MISMATCH");
        }
        std::printf("%s\n", fault_ok
                                ? "  bounds elision lost no fault "
                                  "detections."
                                : "  FAULT PARITY FAILURE: an elided "
                                  "check was load-bearing!");
        if (!fault_ok) {
            for (const auto &failure : report.failures)
                std::printf("    %s\n", failure.c_str());
        }
    }

    return (all_parity && fault_ok && json_ok) ? 0 : 1;
}
