/**
 * @file
 * Graceful-degradation audit campaign (DESIGN.md §13): 520 seeded
 * chaos scenarios across {disk, net, alloc} × {checkpoint, transport,
 * fabric, campaign}, each classified tolerated / degraded_retried /
 * clean_abort / contract_violation. The gate is absolute: zero
 * contract violations, every scenario job kOk, and the scenario count
 * at or above 500.
 *
 * The scenario families run under thread-local ChaosScope engines, so
 * this campaign parallelizes (AOS_CAMPAIGN_JOBS) without schedules
 * bleeding between concurrent scenarios, and its canonical JSON is
 * byte-identical at any worker count — the audit audits itself.
 *
 * AOS_CHAOS_AUDIT_SEED rotates the whole scenario universe (default
 * fixed for CI reproducibility); a failing scenario's own seed is a
 * pure function of the base seed and its job name, so any verdict
 * replays exactly.
 */

#include "bench/harness.hh"

#include "campaign/chaos_audit.hh"
#include "common/fsio.hh"

using namespace aos;
using namespace aos::bench;
using namespace aos::campaign;

namespace {

struct Family
{
    const char *name;
    unsigned count;
    chaos_audit::ScenarioResult (*fn)(u64, const CancelToken &);
};

constexpr Family kFamilies[] = {
    {"disk_checkpoint", 220, chaos_audit::auditCheckpointDisk},
    {"net_transport", 160, chaos_audit::auditTransportNet},
    {"net_fabric", 80, chaos_audit::auditFabricNet},
    {"alloc_campaign", 60, chaos_audit::auditCampaignAlloc},
};

} // namespace

int
main()
{
    setQuiet(true);
    const u64 baseSeed = envU64("AOS_CHAOS_AUDIT_SEED", 0xA05'C4A05ULL);

    campaign::CampaignOptions options = campaignOptions("chaos_audit");
    if (options.timeoutSec <= 0)
        options.timeoutSec = 120; // A hung scenario is a finding.
    campaign::Campaign sweep(options);

    for (const Family &family : kFamilies) {
        for (unsigned i = 0; i < family.count; ++i) {
            Job job;
            job.name = csprintf("%s/%03u", family.name, i);
            // Scenario seed: pure function of base seed + job name, so
            // one failing scenario replays without the other 519.
            job.seed = fsio::fnv1a64(job.name.data(), job.name.size(),
                                     baseSeed ^ 0xcbf29ce484222325ULL);
            job.profile.name = family.name;
            job.cancellableBody =
                [fn = family.fn, seed = job.seed,
                 name = job.name](const CancelToken &cancel) {
                    const chaos_audit::ScenarioResult sr =
                        fn(seed, cancel);
                    if (sr.outcome ==
                        chaos_audit::Outcome::kContractViolation) {
                        // Raw stderr: must surface even under
                        // setQuiet(), a violation IS the finding.
                        std::fprintf(
                            stderr,
                            "chaos_audit VIOLATION %s (seed %llu): "
                            "%s\n",
                            name.c_str(),
                            static_cast<unsigned long long>(seed),
                            sr.detail.c_str());
                    }
                    core::RunResult run;
                    run.workload = "chaos";
                    run.extra.scalar("chaos_ops") =
                        static_cast<double>(sr.chaosOps);
                    run.extra.scalar("chaos_injected") =
                        static_cast<double>(sr.injected);
                    using chaos_audit::Outcome;
                    run.extra.scalar("chaos_tolerated") =
                        sr.outcome == Outcome::kTolerated ? 1 : 0;
                    run.extra.scalar("chaos_degraded_retried") =
                        sr.outcome == Outcome::kDegradedRetried ? 1 : 0;
                    run.extra.scalar("chaos_clean_abort") =
                        sr.outcome == Outcome::kCleanAbort ? 1 : 0;
                    run.extra.scalar("chaos_contract_violation") =
                        sr.outcome == Outcome::kContractViolation ? 1
                                                                  : 0;
                    return run;
                };
            sweep.add(std::move(job));
        }
    }
    for (const char *stat :
         {"chaos_tolerated", "chaos_degraded_retried", "chaos_clean_abort",
          "chaos_contract_violation", "chaos_injected", "chaos_ops"}) {
        sweep.addReducer({stat, campaign::ReduceOp::kSum, stat, nullptr});
    }

    const size_t total = sweep.size();
    campaign::CampaignResult result = sweep.run();
    exitIfInterrupted(result);

    double tallies[4] = {0, 0, 0, 0};
    double injected = 0;
    double chaosOps = 0;
    for (const campaign::ReducerOutput &r : result.reducers) {
        if (r.name == "chaos_tolerated")
            tallies[0] = r.value;
        else if (r.name == "chaos_degraded_retried")
            tallies[1] = r.value;
        else if (r.name == "chaos_clean_abort")
            tallies[2] = r.value;
        else if (r.name == "chaos_contract_violation")
            tallies[3] = r.value;
        else if (r.name == "chaos_injected")
            injected = r.value;
        else if (r.name == "chaos_ops")
            chaosOps = r.value;
    }
    std::printf("chaos audit: %zu scenarios (seed %llu): "
                "%.0f tolerated, %.0f degraded+retried, "
                "%.0f clean aborts, %.0f contract violations "
                "(%.0f faults injected over %.0f instrumented ops)\n",
                total, static_cast<unsigned long long>(baseSeed),
                tallies[0], tallies[1], tallies[2], tallies[3],
                injected, chaosOps);
    emitCampaignJson(result, "chaos_audit");

    bool pass = true;
    if (!result.allOk()) {
        std::fprintf(stderr,
                     "chaos audit: %u scenario job(s) did not finish "
                     "ok\n",
                     static_cast<unsigned>(total) -
                         result.count(campaign::JobStatus::kOk));
        pass = false;
    }
    if (tallies[3] != 0) {
        std::fprintf(stderr,
                     "chaos audit: %.0f contract violation(s) — a "
                     "subsystem mishandled an injected fault\n",
                     tallies[3]);
        pass = false;
    }
    if (total < 500) {
        std::fprintf(stderr,
                     "chaos audit: only %zu scenarios (gate needs "
                     ">= 500)\n",
                     total);
        pass = false;
    }
    return pass ? 0 : 1;
}
