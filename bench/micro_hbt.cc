/**
 * @file
 * Microbenchmark: hashed-bounds-table operations — insert, check (hit
 * and miss), clear, and a full resize+migration, across PAC pressure
 * levels.
 */

#include <benchmark/benchmark.h>

#include "bounds/compression.hh"
#include "bounds/hashed_bounds_table.hh"
#include "common/random.hh"

using namespace aos;
using namespace aos::bounds;

namespace {

constexpr Addr kBase = 0x3000'0000'0000ull;

void
BM_HbtInsertClear(benchmark::State &state)
{
    HashedBoundsTable hbt(kBase, 16, 1);
    Rng rng(1);
    Addr next = 0x20000000;
    for (auto _ : state) {
        const u64 pac = rng.below(1 << 16);
        const Addr base = next;
        next += 0x100;
        const auto way = hbt.insert(pac, compress(base, 64));
        benchmark::DoNotOptimize(way);
        hbt.clear(pac, base);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_HbtCheckHit(benchmark::State &state)
{
    // Pressure = live records per row (PAC collisions).
    const unsigned per_row = static_cast<unsigned>(state.range(0));
    HashedBoundsTable hbt(kBase, 10, 8);
    std::vector<std::pair<u64, Addr>> live;
    Addr next = 0x20000000;
    for (u64 pac = 0; pac < 1024; ++pac) {
        for (unsigned i = 0; i < per_row; ++i) {
            hbt.insert(pac, compress(next, 64));
            live.emplace_back(pac, next);
            next += 0x100;
        }
    }
    Rng rng(2);
    for (auto _ : state) {
        const auto &[pac, base] = live[rng.below(live.size())];
        benchmark::DoNotOptimize(hbt.check(pac, base + 32, 0, nullptr));
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_HbtCheckMiss(benchmark::State &state)
{
    HashedBoundsTable hbt(kBase, 10, 8);
    Addr next = 0x20000000;
    for (u64 pac = 0; pac < 1024; ++pac) {
        for (unsigned i = 0; i < 8; ++i) {
            hbt.insert(pac, compress(next, 64));
            next += 0x100;
        }
    }
    Rng rng(3);
    for (auto _ : state) {
        // Address far outside every record: worst-case full-row scan.
        benchmark::DoNotOptimize(
            hbt.check(rng.below(1024), 0x70000000, 0, nullptr));
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_HbtResizeMigration(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        HashedBoundsTable hbt(kBase, 12, 1);
        Addr next = 0x20000000;
        Rng rng(4);
        for (int i = 0; i < 4096; ++i) {
            hbt.insert(rng.below(1 << 12), compress(next, 64));
            next += 0x100;
        }
        state.ResumeTiming();
        hbt.beginResize();
        hbt.finishResize();
        benchmark::DoNotOptimize(hbt.ways());
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}

} // namespace

BENCHMARK(BM_HbtInsertClear);
BENCHMARK(BM_HbtCheckHit)->Arg(1)->Arg(4)->Arg(16)->ArgName("per_row");
BENCHMARK(BM_HbtCheckMiss);
BENCHMARK(BM_HbtResizeMigration)->Unit(benchmark::kMicrosecond);
