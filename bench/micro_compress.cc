/**
 * @file
 * Microbenchmark: bounds compression codec — compress, decompress and
 * the in-bounds comparator (the per-record work of a parallel check).
 */

#include <benchmark/benchmark.h>

#include "bounds/compression.hh"
#include "common/bitfield.hh"
#include "common/random.hh"

using namespace aos;
using namespace aos::bounds;

namespace {

void
BM_Compress(benchmark::State &state)
{
    Rng rng(1);
    Addr base = 0x20000000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(compress(base, 64 + (base & 0xff0)));
        base = (base + 0x110) & mask(33);
        base &= ~u64{15};
        base |= 0x10;
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_Decompress(benchmark::State &state)
{
    const Compressed rec = compress(0x20000100, 4096);
    for (auto _ : state)
        benchmark::DoNotOptimize(decompress(rec));
    state.SetItemsProcessed(state.iterations());
}

void
BM_InBounds(benchmark::State &state)
{
    const Compressed rec = compress(0x20000100, 4096);
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            inBounds(rec, 0x20000000 + rng.below(8192)));
    state.SetItemsProcessed(state.iterations());
}

void
BM_ParallelLineCheck(benchmark::State &state)
{
    // One 64-byte way line: eight records checked per access.
    Compressed line[8];
    for (int i = 0; i < 8; ++i)
        line[i] = compress(0x20000000 + i * 0x1000, 256);
    Rng rng(3);
    for (auto _ : state) {
        const Addr addr = 0x20000000 + rng.below(8 * 0x1000);
        bool hit = false;
        for (int i = 0; i < 8; ++i)
            hit |= inBounds(line[i], addr);
        benchmark::DoNotOptimize(hit);
    }
    state.SetItemsProcessed(state.iterations());
}

} // namespace

BENCHMARK(BM_Compress);
BENCHMARK(BM_Decompress);
BENCHMARK(BM_InBounds);
BENCHMARK(BM_ParallelLineCheck);
