/**
 * @file
 * Microbenchmark: heap-allocator model throughput (malloc/free churn
 * across size classes), which bounds Table II replay speed.
 */

#include <benchmark/benchmark.h>

#include "alloc/heap_allocator.hh"
#include "common/random.hh"

using namespace aos;
using namespace aos::alloc;

namespace {

void
BM_MallocFreeFastbin(benchmark::State &state)
{
    HeapAllocator heap;
    for (auto _ : state) {
        const Addr p = heap.malloc(48);
        benchmark::DoNotOptimize(p);
        heap.free(p);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_MallocFreeLarge(benchmark::State &state)
{
    HeapAllocator heap;
    for (auto _ : state) {
        const Addr p = heap.malloc(8192);
        benchmark::DoNotOptimize(p);
        heap.free(p);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_ChurnSteadyState(benchmark::State &state)
{
    const u64 live_target = static_cast<u64>(state.range(0));
    HeapAllocator heap;
    Rng rng(1);
    while (heap.liveCount() < live_target)
        heap.malloc(16 + rng.below(1024));
    for (auto _ : state) {
        heap.free(heap.liveChunk(rng.below(heap.liveCount())));
        benchmark::DoNotOptimize(heap.malloc(16 + rng.below(1024)));
    }
    state.SetItemsProcessed(state.iterations());
}

} // namespace

BENCHMARK(BM_MallocFreeFastbin);
BENCHMARK(BM_MallocFreeLarge);
BENCHMARK(BM_ChurnSteadyState)->Arg(1000)->Arg(100000)->ArgName("live");
