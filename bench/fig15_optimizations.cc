/**
 * @file
 * Fig. 15 — AOS optimization ablation: no optimization, L1 B-cache
 * only, bounds compression only, and both (the shipping config), each
 * normalized to the Baseline.
 *
 * Paper reference: vs no-optimization, the L1-B reduces overhead by
 * ~10% and compression by a further ~3% on average; gcc and omnetpp
 * improve by 60%/68% with both. Extra rows (DESIGN.md ablations):
 * BWB off and bounds forwarding off on the shipping config, and the
 * per-workload HBT resize counts observed during the run (SIX-A.1).
 */

#include "bench/harness.hh"

using namespace aos;
using namespace aos::bench;
using baselines::Mechanism;
using baselines::SystemOptions;

int
main()
{
    setQuiet(true);
    const u64 ops = simOps();

    SystemOptions none;
    none.useL1B = false;
    none.boundsCompression = false;
    SystemOptions l1b_only;
    l1b_only.boundsCompression = false;
    SystemOptions comp_only;
    comp_only.useL1B = false;
    SystemOptions both; // defaults: both optimizations on
    SystemOptions no_bwb;
    no_bwb.useBwb = false;
    SystemOptions no_fwd;
    no_fwd.boundsForwarding = false;

    struct Row
    {
        const char *name;
        const SystemOptions *options;
    };
    const Row rows[] = {
        {"no-opt", &none},       {"L1-B", &l1b_only},
        {"compress", &comp_only}, {"both", &both},
        {"both-noBWB", &no_bwb}, {"both-noFWD", &no_fwd},
    };

    std::printf("Fig. 15: AOS normalized execution time by optimization "
                "(lower is better), %llu ops/run\n\n",
                static_cast<unsigned long long>(ops));
    std::printf("%-12s", "workload");
    for (const Row &row : rows)
        std::printf(" %11s", row.name);
    std::printf(" %8s\n", "resizes");
    rule(96);

    GeoAccum geo[6];
    for (const auto &profile : workloads::specProfiles()) {
        const core::RunResult base =
            runConfig(profile, Mechanism::kBaseline, ops);
        std::printf("%-12s", profile.name.c_str());
        u64 resizes = 0;
        for (unsigned i = 0; i < 6; ++i) {
            const core::RunResult r = runConfig(
                profile, Mechanism::kAos, ops, *rows[i].options);
            const double norm = static_cast<double>(r.core.cycles) /
                                static_cast<double>(base.core.cycles);
            geo[i].add(norm);
            if (i == 3)
                resizes = r.resizes;
            std::printf(" %11.3f", norm);
            std::fflush(stdout);
        }
        std::printf(" %8llu\n", static_cast<unsigned long long>(resizes));
    }
    rule(96);
    std::printf("%-12s", "geomean");
    for (unsigned i = 0; i < 6; ++i)
        std::printf(" %11.3f", geo[i].geomean());
    std::printf("\n\npaper: L1-B cuts ~10%% of the no-opt overhead, "
                "compression a further ~3%%; gcc/omnetpp gain 60%%/68%% "
                "with both; resizes: sphinx3=1, omnetpp=2\n");
    return 0;
}
