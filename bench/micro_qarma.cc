/**
 * @file
 * Microbenchmark: QARMA-64 throughput — the PAC computation cost per
 * signing instruction, across S-boxes and round counts.
 */

#include <benchmark/benchmark.h>

#include "qarma/qarma64.hh"

using namespace aos;
using namespace aos::qarma;

namespace {

constexpr Key128 kKey{0x84be85ce9804e94bull, 0xec2802d4e0a488e9ull};

void
BM_QarmaEncrypt(benchmark::State &state)
{
    const Qarma64 cipher(static_cast<Sbox>(state.range(0)),
                         static_cast<unsigned>(state.range(1)));
    u64 plaintext = 0xfb623599da6e8127ull;
    u64 tweak = 0x477d469dec0b8762ull;
    for (auto _ : state) {
        plaintext = cipher.encrypt(plaintext, tweak, kKey);
        benchmark::DoNotOptimize(plaintext);
        ++tweak;
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_QarmaRoundTrip(benchmark::State &state)
{
    const Qarma64 cipher(Sbox::kSigma1, 7);
    u64 value = 0x123456789abcdefull;
    for (auto _ : state) {
        const u64 ct = cipher.encrypt(value, 0x77, kKey);
        value = cipher.decrypt(ct, 0x77, kKey);
        benchmark::DoNotOptimize(value);
    }
    state.SetItemsProcessed(state.iterations());
}

} // namespace

BENCHMARK(BM_QarmaEncrypt)
    ->ArgsProduct({{0, 1, 2}, {5, 6, 7}})
    ->ArgNames({"sbox", "rounds"});
BENCHMARK(BM_QarmaRoundTrip);
