/**
 * @file
 * Table III — Memory usage profiles for the real-world benchmarks
 * (pbzip2, pigz, axel, md5sum, apache, mysql), replayed through the
 * allocator exactly as Table II is.
 */

#include "bench/harness.hh"
#include "workloads/alloc_replay.hh"

using namespace aos;
using namespace aos::bench;

int
main()
{
    setQuiet(true);
    const u64 scale = envU64("AOS_REPLAY_SCALE", 1);

    const char *descriptions[] = {
        "Compress 1.4GB file, 8 threads", "Compress 1.4GB file, 8 threads",
        "Download 1.4GB file, 8 threads", "Calculate MD5 hash, 1.4GB file",
        "Apache bench, 10K req.",         "Sysbench, 100K req.",
    };

    std::printf("Table III: real-world memory usage profiles "
                "(replayed / paper)%s\n\n",
                scale > 1 ? " [scaled]" : "");
    std::printf("%-9s %-32s %18s %22s %22s\n", "name", "description",
                "max", "# alloc", "# dealloc");
    rule(108);

    bool all_match = true;
    unsigned idx = 0;
    for (const auto &profile : workloads::realWorldProfiles()) {
        const workloads::ReplayResult r =
            workloads::replayProfile(profile, scale);
        const bool match =
            scale > 1 || (r.allocCalls == profile.fullAllocCalls &&
                          r.deallocCalls == profile.fullDeallocCalls &&
                          r.maxActive == profile.fullMaxActive);
        all_match = all_match && match;
        std::printf("%-9s %-32s %7llu / %-8llu %9llu / %-10llu "
                    "%9llu / %-10llu%s\n",
                    profile.name.c_str(), descriptions[idx++],
                    static_cast<unsigned long long>(r.maxActive),
                    static_cast<unsigned long long>(profile.fullMaxActive),
                    static_cast<unsigned long long>(r.allocCalls),
                    static_cast<unsigned long long>(profile.fullAllocCalls),
                    static_cast<unsigned long long>(r.deallocCalls),
                    static_cast<unsigned long long>(
                        profile.fullDeallocCalls),
                    match ? "" : "  <- mismatch");
        std::fflush(stdout);
    }
    std::printf("\nobservation (SVI): call counts scale with input size "
                "or request count, yet every program keeps a modest "
                "number of active chunks — the premise of PAC-indexed "
                "bounds.\n");
    return all_match ? 0 : 1;
}
