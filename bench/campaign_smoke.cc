/**
 * @file
 * CI smoke for the campaign engine (scripts/check.sh stage): a tiny
 * 4-job campaign — the two cheapest SPEC profiles (bzip2, mcf) under
 * Baseline and AOS — that always emits JSON. check.sh runs it twice
 * (AOS_CAMPAIGN_JOBS=1 and =4) and diffs the canonical documents to
 * prove the serial/parallel determinism contract end to end.
 *
 * Keeps the default window small (AOS_SIM_OPS honoured) so the stage
 * adds seconds, not minutes.
 */

#include "bench/harness.hh"

using namespace aos;
using namespace aos::bench;
using baselines::Mechanism;

int
main()
{
    setQuiet(true);
    const u64 ops = envU64("AOS_SIM_OPS", 20'000);

    campaign::Campaign sweep(campaignOptions("campaign_smoke"));
    for (const char *name : {"bzip2", "mcf"}) {
        const auto &profile = workloads::profileByName(name);
        sweep.addConfig(profile, Mechanism::kBaseline, ops);
        sweep.addConfig(profile, Mechanism::kAos, ops);
    }
    sweep.addReducer({"total_cycles", campaign::ReduceOp::kSum, "cycles",
                      nullptr});
    sweep.addReducer({"max_ipc", campaign::ReduceOp::kMax, "ipc",
                      nullptr});

    campaign::CampaignResult result = sweep.run();
    exitIfInterrupted(result);

    std::printf("campaign smoke: %zu jobs, %u ok, %u failed, "
                "%u timeout (resumed %u, executed %u)\n",
                result.jobs.size(), result.count(campaign::JobStatus::kOk),
                result.count(campaign::JobStatus::kFailed),
                result.count(campaign::JobStatus::kTimeout),
                result.resumedJobs, result.executedJobs);
    for (const auto &job : result.jobs) {
        std::printf("  %-16s %-8s%s cycles=%.0f\n", job.name.c_str(),
                    campaign::jobStatusName(job.status),
                    job.resumed ? " (resumed)" : "",
                    job.stats.value("cycles"));
    }
    emitCampaignJson(result, "campaign_smoke");
    // Checkpoint accounting gate: in a completed campaign every job is
    // either restored from a valid record or executed exactly once —
    // a valid record that re-ran (or a job that did neither) is a
    // resume-logic bug.
    if (!result.checkpointDir.empty() &&
        result.resumedJobs + result.executedJobs != result.jobs.size()) {
        std::fprintf(stderr,
                     "campaign smoke: resumed (%u) + executed (%u) != "
                     "jobs (%zu) — checkpoint resume re-ran or dropped "
                     "jobs\n",
                     result.resumedJobs, result.executedJobs,
                     result.jobs.size());
        return 1;
    }
    return result.allOk() ? 0 : 1;
}
