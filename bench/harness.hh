/**
 * @file
 * Shared helpers for the per-figure/table harness binaries.
 *
 * Every harness runs standalone with sensible defaults; the simulated
 * window can be scaled with environment variables:
 *
 *   AOS_SIM_OPS       measured micro-ops per timing run (default 400k)
 *   AOS_REPLAY_SCALE  divisor for full allocation replays (default 1)
 *
 * Campaign-based harnesses additionally honour:
 *
 *   AOS_CAMPAIGN_JOBS      worker threads (default: all hardware threads)
 *   AOS_CAMPAIGN_JSON      results path; "0"/"off" disables emission
 *                          (default: BENCH_<name>.json in the cwd)
 *   AOS_CAMPAIGN_JSON_CANONICAL
 *                          also write the canonical (timing-stripped)
 *                          document to this path; unset disables
 *   AOS_CAMPAIGN_PROGRESS  set to 0 to silence progress/ETA lines
 *   AOS_CAMPAIGN_RESUME    checkpoint directory: completed jobs are
 *                          durably logged there, and a rerun restores
 *                          them instead of re-executing (DESIGN.md §10)
 *   AOS_FABRIC_WORKERS     distribute the campaign over N spawned
 *                          worker processes (DESIGN.md §12)
 *   AOS_FABRIC_LISTEN      also accept remote workers at
 *                          "unix:<path>" / "tcp:<host>:<port>"
 *   AOS_FABRIC_CONNECT     run as a remote worker serving the
 *                          coordinator at this address
 *   AOS_FABRIC_HEARTBEAT_GRACE
 *                          heartbeat-silence multiples before the
 *                          coordinator evicts a worker (default 10)
 *   AOS_CHAOS              "<seed>,<rate‰>,<domains>[,<cap>]" installs
 *                          the deterministic environment-fault engine
 *                          (common/chaosio.hh, DESIGN.md §13);
 *                          domains are '+'-joined from disk/net/alloc/all
 *
 * Numeric knobs are parsed strictly (common/env.hh): a typo is a fatal
 * diagnostic naming the variable, never a silently-ignored override.
 *
 * Campaign harnesses install SIGINT/SIGTERM handlers; on shutdown the
 * campaign flushes its checkpoint and the harness exits with 130 and a
 * resume hint (see exitIfInterrupted()).
 */

#ifndef AOS_BENCH_HARNESS_HH
#define AOS_BENCH_HARNESS_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "common/cancel.hh"
#include "common/chaosio.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "core/aos_system.hh"
#include "workloads/workload_profile.hh"

namespace aos::bench {

using aos::envU64; // Strict parser (common/env.hh); fatal on garbage.

inline u64
simOps()
{
    return envU64("AOS_SIM_OPS", 1'000'000);
}

/** Run one workload under one configuration. */
inline core::RunResult
runConfig(const workloads::WorkloadProfile &profile,
          baselines::Mechanism mech, u64 ops,
          const baselines::SystemOptions &base = {})
{
    baselines::SystemOptions options = base;
    options.mech = mech;
    options.measureOps = ops;
    core::AosSystem system(profile, options);
    return system.run();
}

/** Print a separator line of width @p width. */
inline void
rule(unsigned width = 100)
{
    for (unsigned i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

struct GeoAccum
{
    std::vector<double> values;

    void add(double v) { values.push_back(v); }
    double geomean() const { return aos::geomean(values); }
};

/** Campaign options honouring the AOS_CAMPAIGN_* environment knobs. */
inline campaign::CampaignOptions
campaignOptions(const std::string &name)
{
    campaign::CampaignOptions options;
    options.name = name;
    options.workers = campaign::workersFromEnv(0);
    options.progress = envFlag("AOS_CAMPAIGN_PROGRESS", true);
    options.checkpointDir = envString("AOS_CAMPAIGN_RESUME");
    // Distributed fabric (DESIGN.md §12): AOS_FABRIC_WORKERS=N spawns N
    // worker processes, AOS_FABRIC_LISTEN admits remote ones, and
    // AOS_FABRIC_WORKER (spawned children) / AOS_FABRIC_CONNECT
    // (manually started workers) turns this process into a worker.
    options.fabricWorkers = envUnsigned("AOS_FABRIC_WORKERS", 0);
    options.fabricListen = envString("AOS_FABRIC_LISTEN");
    options.fabricConnect = envString("AOS_FABRIC_WORKER");
    if (options.fabricConnect.empty())
        options.fabricConnect = envString("AOS_FABRIC_CONNECT");
    options.fabricHeartbeatGrace =
        envUnsigned("AOS_FABRIC_HEARTBEAT_GRACE", 10);
    // AOS_CHAOS installs the process-global environment-fault engine;
    // spawned fabric workers inherit the variable (childEnv scrubs
    // only fabric/campaign routing), so a chaos campaign stays chaotic
    // across process boundaries with per-process schedules.
    chaos::installChaosFromEnv();
    // Graceful shutdown: SIGINT/SIGTERM trips the process token; the
    // campaign preempts running jobs at their next cancellation point,
    // flushes the checkpoint, and returns with interrupted set.
    installShutdownHandlers();
    options.cancel = &shutdownToken();
    return options;
}

/**
 * Write campaign results to AOS_CAMPAIGN_JSON (default
 * BENCH_<bench>.json; "0"/"off" disables) and say where they went.
 * When AOS_CAMPAIGN_RESUME checkpointing is active, also report the
 * resumed-vs-executed split. With AOS_CAMPAIGN_JSON_CANONICAL set, the
 * canonical (timing-stripped) document is written there too — that is
 * the byte-comparable artifact for kill-and-resume parity checks.
 * Returns false when a requested emission could not be written, so
 * harnesses can propagate the failure to their exit code.
 */
inline bool
emitCampaignJson(const campaign::CampaignResult &result,
                 const std::string &bench)
{
    if (!result.checkpointDir.empty()) {
        std::printf("checkpoint: %s (resumed %u, executed %u, "
                    "discarded %llu corrupt record region(s))\n",
                    result.checkpointDir.c_str(), result.resumedJobs,
                    result.executedJobs,
                    static_cast<unsigned long long>(
                        result.discardedRecords));
    }
    bool ok = true;
    const std::string canonical =
        envString("AOS_CAMPAIGN_JSON_CANONICAL");
    if (!canonical.empty()) {
        if (!result.writeJsonFile(canonical, false)) {
            std::fprintf(stderr,
                         "failed to write canonical campaign JSON to "
                         "%s\n",
                         canonical.c_str());
            ok = false;
        }
    }
    std::string path = "BENCH_" + bench + ".json";
    if (const char *env = std::getenv("AOS_CAMPAIGN_JSON")) {
        const std::string v(env);
        if (v.empty() || v == "0" || v == "off")
            return ok;
        path = v;
    }
    if (result.writeJsonFile(path)) {
        std::printf("\ncampaign results: %s\n", path.c_str());
        return ok;
    }
    std::fprintf(stderr, "failed to write campaign JSON to %s\n",
                 path.c_str());
    return false;
}

/**
 * Shutdown epilogue for campaign harnesses: when the campaign was
 * interrupted (SIGINT/SIGTERM), print a resume hint and exit 130 —
 * the conventional "killed by signal" code — instead of letting the
 * harness grade partial results as failures.
 */
inline void
exitIfInterrupted(const campaign::CampaignResult &result)
{
    if (!result.interrupted)
        return;
    std::fflush(stdout);
    if (!result.checkpointDir.empty()) {
        std::fprintf(stderr,
                     "\ninterrupted: %u/%zu jobs checkpointed; rerun "
                     "with AOS_CAMPAIGN_RESUME=%s to resume\n",
                     result.resumedJobs + result.executedJobs,
                     result.jobs.size(), result.checkpointDir.c_str());
    } else {
        std::fprintf(stderr,
                     "\ninterrupted with no checkpoint; set "
                     "AOS_CAMPAIGN_RESUME=<dir> to make runs "
                     "resumable\n");
    }
    std::exit(130);
}

} // namespace aos::bench

#endif // AOS_BENCH_HARNESS_HH
