/**
 * @file
 * Shared helpers for the per-figure/table harness binaries.
 *
 * Every harness runs standalone with sensible defaults; the simulated
 * window can be scaled with environment variables:
 *
 *   AOS_SIM_OPS       measured micro-ops per timing run (default 400k)
 *   AOS_REPLAY_SCALE  divisor for full allocation replays (default 1)
 *
 * Campaign-based harnesses additionally honour:
 *
 *   AOS_CAMPAIGN_JOBS      worker threads (default: all hardware threads)
 *   AOS_CAMPAIGN_JSON      results path; "0"/"off" disables emission
 *                          (default: BENCH_<name>.json in the cwd)
 *   AOS_CAMPAIGN_PROGRESS  set to 0 to silence progress/ETA lines
 */

#ifndef AOS_BENCH_HARNESS_HH
#define AOS_BENCH_HARNESS_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "core/aos_system.hh"
#include "workloads/workload_profile.hh"

namespace aos::bench {

inline u64
envU64(const char *name, u64 fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    // Unparsable or zero op counts would stall the measurement loop.
    const u64 parsed = std::strtoull(value, nullptr, 0);
    return parsed ? parsed : fallback;
}

inline u64
simOps()
{
    return envU64("AOS_SIM_OPS", 1'000'000);
}

/** Run one workload under one configuration. */
inline core::RunResult
runConfig(const workloads::WorkloadProfile &profile,
          baselines::Mechanism mech, u64 ops,
          const baselines::SystemOptions &base = {})
{
    baselines::SystemOptions options = base;
    options.mech = mech;
    options.measureOps = ops;
    core::AosSystem system(profile, options);
    return system.run();
}

/** Print a separator line of width @p width. */
inline void
rule(unsigned width = 100)
{
    for (unsigned i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

struct GeoAccum
{
    std::vector<double> values;

    void add(double v) { values.push_back(v); }
    double geomean() const { return aos::geomean(values); }
};

/** Campaign options honouring the AOS_CAMPAIGN_* environment knobs. */
inline campaign::CampaignOptions
campaignOptions(const std::string &name)
{
    campaign::CampaignOptions options;
    options.name = name;
    options.workers = campaign::workersFromEnv(0);
    // envU64 rejects 0, so parse the on/off knob directly.
    const char *progress = std::getenv("AOS_CAMPAIGN_PROGRESS");
    options.progress =
        !progress || (std::string(progress) != "0" &&
                      std::string(progress) != "off");
    return options;
}

/**
 * Write campaign results to AOS_CAMPAIGN_JSON (default
 * BENCH_<bench>.json; "0"/"off" disables) and say where they went.
 * Returns false when a requested emission could not be written, so
 * harnesses can propagate the failure to their exit code.
 */
inline bool
emitCampaignJson(const campaign::CampaignResult &result,
                 const std::string &bench)
{
    std::string path = "BENCH_" + bench + ".json";
    if (const char *env = std::getenv("AOS_CAMPAIGN_JSON")) {
        const std::string v(env);
        if (v.empty() || v == "0" || v == "off")
            return true;
        path = v;
    }
    if (result.writeJsonFile(path)) {
        std::printf("\ncampaign results: %s\n", path.c_str());
        return true;
    }
    std::fprintf(stderr, "failed to write campaign JSON to %s\n",
                 path.c_str());
    return false;
}

} // namespace aos::bench

#endif // AOS_BENCH_HARNESS_HH
