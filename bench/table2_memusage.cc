/**
 * @file
 * Table II — Memory usage profiles for the SPEC 2006 workloads: max
 * active chunks, allocation calls, deallocation calls. The replay
 * drives the real allocator through each benchmark's full published
 * allocation history (AOS_REPLAY_SCALE divides the counts for quick
 * runs).
 */

#include "bench/harness.hh"
#include "workloads/alloc_replay.hh"

using namespace aos;
using namespace aos::bench;

int
main()
{
    setQuiet(true);
    const u64 scale = envU64("AOS_REPLAY_SCALE", 1);

    std::printf("Table II: memory usage profiles (replayed / paper)%s\n\n",
                scale > 1 ? " [scaled]" : "");
    std::printf("%-12s %22s %24s %24s\n", "name", "max active",
                "# allocation", "# deallocation");
    rule(88);

    bool all_match = true;
    for (const auto &profile : workloads::specProfiles()) {
        const workloads::ReplayResult r =
            workloads::replayProfile(profile, scale);
        const u64 want_alloc = std::max<u64>(
            profile.fullAllocCalls / scale, 1);
        const bool match = scale == 1
                               ? (r.allocCalls == profile.fullAllocCalls &&
                                  r.deallocCalls ==
                                      profile.fullDeallocCalls)
                               : r.allocCalls == want_alloc;
        all_match = all_match && match;
        std::printf("%-12s %10llu / %-10llu %11llu / %-11llu "
                    "%11llu / %-11llu%s\n",
                    profile.name.c_str(),
                    static_cast<unsigned long long>(r.maxActive),
                    static_cast<unsigned long long>(profile.fullMaxActive),
                    static_cast<unsigned long long>(r.allocCalls),
                    static_cast<unsigned long long>(profile.fullAllocCalls),
                    static_cast<unsigned long long>(r.deallocCalls),
                    static_cast<unsigned long long>(
                        profile.fullDeallocCalls),
                    match ? "" : "  <- mismatch");
        std::fflush(stdout);
    }
    std::printf("\nnote: soplex's published row is internally "
                "inconsistent (allocs-frees > peak); call counts are "
                "reproduced exactly and the peak follows.\n");
    return all_match ? 0 : 1;
}
