/**
 * @file
 * Fig. 18 — Normalized network traffic (bytes moved between caches and
 * between the LLC and DRAM) of Watchdog, PA, AOS and PA+AOS over the
 * Baseline.
 *
 * Paper reference: Watchdog +31% and PA+AOS +18% on average; gcc,
 * povray and omnetpp are the high-traffic AOS outliers.
 */

#include "bench/harness.hh"

using namespace aos;
using namespace aos::bench;
using baselines::Mechanism;

int
main()
{
    setQuiet(true);
    const u64 ops = simOps();

    const Mechanism mechs[] = {Mechanism::kWatchdog, Mechanism::kPa,
                               Mechanism::kAos, Mechanism::kPaAos};

    std::printf("Fig. 18: normalized network traffic (lower is better), "
                "%llu ops/run\n\n",
                static_cast<unsigned long long>(ops));
    std::printf("%-12s %10s %10s %10s %10s\n", "workload", "Watchdog",
                "PA", "AOS", "PA+AOS");
    rule(56);

    GeoAccum geo[4];
    for (const auto &profile : workloads::specProfiles()) {
        const core::RunResult base =
            runConfig(profile, Mechanism::kBaseline, ops);
        std::printf("%-12s", profile.name.c_str());
        for (unsigned m = 0; m < 4; ++m) {
            const core::RunResult r = runConfig(profile, mechs[m], ops);
            const double norm =
                base.networkTraffic
                    ? static_cast<double>(r.networkTraffic) /
                          static_cast<double>(base.networkTraffic)
                    : 1.0;
            geo[m].add(norm);
            std::printf(" %10.3f", norm);
            std::fflush(stdout);
        }
        std::printf("\n");
    }
    rule(56);
    std::printf("%-12s", "geomean");
    for (unsigned m = 0; m < 4; ++m)
        std::printf(" %10.3f", geo[m].geomean());
    std::printf("\n%-12s %10.2f %10s %10s %10.2f\n", "paper", 1.31, "~1",
                "<PA+AOS", 1.18);
    return 0;
}
