/**
 * @file
 * Fault-injection matrix (DESIGN.md §8): fault type × mechanism grid
 * of deterministic seeded fault campaigns, reporting per-cell
 * detection coverage and enforcing the graceful-degradation contract.
 *
 * Each job runs one workload under one mechanism with one fault class
 * armed (SystemOptions::faultTypes); the injector classifies every
 * fired fault as detected (autm / bounds), tolerated, silent, or — the
 * thing this harness exists to forbid — a simulator fault. Fault
 * classes that target structures a configuration does not have (HBT
 * corruption under the baseline, say) are skipped, matching the
 * applicability filter inside AosSystem.
 *
 * Gates (nonzero exit):
 *   - any job fails or times out;
 *   - any injected fault resolves to simulator_fault;
 *   - AOS coverage falls below PA-only coverage on any
 *     metadata-corruption class (the paper's whole point: the HBT
 *     detects what pointer integrity alone cannot);
 *   - the campaign JSON cannot be written.
 *
 * Build & run:  ./build/bench/fault_matrix
 */

#include "bench/harness.hh"

#include "faultinject/fault.hh"

using namespace aos;
using namespace aos::bench;
using baselines::Mechanism;
using baselines::SystemOptions;
using faultinject::FaultType;

namespace {

constexpr Mechanism kMechs[] = {
    Mechanism::kBaseline, Mechanism::kWatchdog, Mechanism::kPa,
    Mechanism::kAos, Mechanism::kPaAos,
};
constexpr unsigned kNumMechs = sizeof(kMechs) / sizeof(kMechs[0]);

constexpr u64 kSeeds[] = {1, 2};

/** Fault classes that apply to a mechanism (mirrors AosSystem). */
bool
applies(FaultType type, Mechanism mech)
{
    const bool aos =
        mech == Mechanism::kAos || mech == Mechanism::kPaAos;
    const u32 bit = faultinject::faultBit(type);
    if (bit & (faultinject::kMetadataFaults | faultinject::kMcuFaults))
        return aos;
    return true;
}

struct Cell
{
    u64 injected = 0;
    u64 detected = 0;
    u64 silent = 0;
    u64 simFault = 0;
    bool present = false; //!< At least one job ran for this cell.

    double
    coverage() const
    {
        return injected ? static_cast<double>(detected) /
                              static_cast<double>(injected)
                        : 0.0;
    }
};

} // namespace

int
main()
{
    setQuiet(true);
    const u64 ops = envU64("AOS_SIM_OPS", 120'000);
    const workloads::WorkloadProfile &profile =
        workloads::profileByName("gcc");

    std::printf("Fault matrix: %u mechanisms x %u fault classes, "
                "%zu seeds, %llu ops/run (workload %s)\n\n",
                kNumMechs, faultinject::kNumFaultTypes,
                sizeof(kSeeds) / sizeof(kSeeds[0]),
                static_cast<unsigned long long>(ops),
                profile.name.c_str());

    campaign::Campaign sweep(campaignOptions("fault_matrix"));
    // Job order (and so ids) is a fixed function of the grid.
    std::vector<std::pair<unsigned, unsigned>> cells; // (type, mech)/job
    for (unsigned t = 0; t < faultinject::kNumFaultTypes; ++t) {
        for (unsigned m = 0; m < kNumMechs; ++m) {
            const auto type = static_cast<FaultType>(t);
            if (!applies(type, kMechs[m]))
                continue;
            for (const u64 seed : kSeeds) {
                campaign::Job job;
                job.name = std::string(faultinject::faultTypeName(type)) +
                           "/" +
                           baselines::mechanismName(kMechs[m]) + "/s" +
                           std::to_string(seed);
                job.profile = profile;
                job.mech = kMechs[m];
                job.seed = seed;
                job.ops = ops;
                job.options.faultTypes = faultinject::faultBit(type);
                job.options.faultCount = 3;
                job.options.faultSeed = 0x5eed'0000 + seed;
                sweep.add(std::move(job));
                cells.emplace_back(t, m);
            }
        }
    }

    campaign::CampaignResult result = sweep.run();
    exitIfInterrupted(result);
    if (!result.allOk()) {
        std::fprintf(stderr, "fault_matrix: %u job(s) failed\n",
                     result.count(campaign::JobStatus::kFailed) +
                         result.count(campaign::JobStatus::kTimeout));
        return 1;
    }

    Cell grid[faultinject::kNumFaultTypes][kNumMechs] = {};
    u64 total_injected = 0;
    u64 total_sim_faults = 0;
    for (size_t i = 0; i < result.jobs.size(); ++i) {
        // Read the flattened stats, not run.faults: a job restored
        // from a checkpoint carries stats only.
        const auto &stats = result.jobs[i].stats;
        const auto stat = [&](const char *key) {
            return static_cast<u64>(stats.has(key) ? stats.value(key) : 0);
        };
        Cell &cell = grid[cells[i].first][cells[i].second];
        cell.present = true;
        cell.injected += stat("fault_injected");
        cell.detected +=
            stat("fault_detected_autm") + stat("fault_detected_bounds");
        cell.silent += stat("fault_silent");
        cell.simFault += stat("fault_sim_fault");
        total_injected += stat("fault_injected");
        total_sim_faults += stat("fault_sim_fault");
    }

    // Per-cell detection coverage (detected / injected, "-" = class
    // not applicable, "none" = applicable but nothing fired).
    std::printf("%-18s", "fault class");
    for (unsigned m = 0; m < kNumMechs; ++m)
        std::printf(" %9s", baselines::mechanismName(kMechs[m]));
    std::printf("\n");
    rule(18 + 10 * kNumMechs);
    for (unsigned t = 0; t < faultinject::kNumFaultTypes; ++t) {
        std::printf("%-18s",
                    faultinject::faultTypeName(static_cast<FaultType>(t)));
        for (unsigned m = 0; m < kNumMechs; ++m) {
            const Cell &cell = grid[t][m];
            if (!cell.present)
                std::printf(" %9s", "-");
            else if (!cell.injected)
                std::printf(" %9s", "none");
            else
                std::printf(" %8.0f%%", 100.0 * cell.coverage());
        }
        std::printf("\n");
    }
    rule(18 + 10 * kNumMechs);
    std::printf("injected faults: %llu, simulator faults: %llu\n",
                static_cast<unsigned long long>(total_injected),
                static_cast<unsigned long long>(total_sim_faults));

    campaign::computeReducers(
        result, {{"total_injected", campaign::ReduceOp::kSum,
                  "fault_injected", nullptr},
                 {"total_detected_bounds", campaign::ReduceOp::kSum,
                  "fault_detected_bounds", nullptr},
                 {"total_detected_autm", campaign::ReduceOp::kSum,
                  "fault_detected_autm", nullptr},
                 {"total_silent", campaign::ReduceOp::kSum,
                  "fault_silent", nullptr},
                 {"total_sim_faults", campaign::ReduceOp::kSum,
                  "fault_sim_fault", nullptr}});
    if (!emitCampaignJson(result, "fault_matrix")) {
        std::fprintf(stderr, "fault_matrix: JSON emission failed\n");
        return 1;
    }

    bool ok = true;
    if (total_injected == 0) {
        std::fprintf(stderr, "GATE: no fault fired across the whole "
                             "matrix — the injector is dead\n");
        ok = false;
    }
    if (total_sim_faults != 0) {
        std::fprintf(stderr, "GATE: %llu simulator fault(s) — corruption "
                             "escaped the degradation contract\n",
                     static_cast<unsigned long long>(total_sim_faults));
        ok = false;
    }
    // AOS must detect metadata corruption at least as well as PA-only
    // (which cannot see it at all — its cells are not even populated).
    const unsigned pa = 2, aos = 3, pa_aos = 4;
    for (unsigned t = 0; t < faultinject::kNumFaultTypes; ++t) {
        const u32 bit = faultinject::faultBit(static_cast<FaultType>(t));
        if (!(bit & faultinject::kMetadataFaults))
            continue;
        const double pa_cov = grid[t][pa].coverage();
        for (const unsigned m : {aos, pa_aos}) {
            if (grid[t][m].coverage() + 1e-9 < pa_cov) {
                std::fprintf(
                    stderr,
                    "GATE: %s coverage %.2f under %s < PA's %.2f\n",
                    faultinject::faultTypeName(static_cast<FaultType>(t)),
                    grid[t][m].coverage(),
                    baselines::mechanismName(kMechs[m]), pa_cov);
                ok = false;
            }
        }
    }

    std::printf("\n%s\n",
                ok ? "Graceful-degradation audit passed."
                   : "Graceful-degradation audit FAILED.");
    return ok ? 0 : 1;
}
