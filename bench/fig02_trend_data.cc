/**
 * @file
 * Fig. 2 — Root-cause trend of memory safety CVEs (Microsoft, BlueHat
 * IL 2019). This is external vulnerability data, not a simulation
 * output: the harness replays our digitization of the stacked chart
 * and recomputes the observations the paper draws from it —
 *
 *  - stack corruption trends down (mitigated by canaries/ASLR/PA);
 *  - heap corruption, heap OOB read and use-after-free dominate
 *    recent years;
 *  - non-adjacent spatial violations exceed 60% after 2014 (SI), the
 *    argument against redzone/trip-wire schemes.
 */

#include <cstdio>

namespace {

constexpr int kFirstYear = 2006;
constexpr int kYears = 13; // 2006..2018

struct Series
{
    const char *name;
    int counts[kYears];
};

// Digitized from the published figure (approximate; external data).
const Series kSeries[] = {
    {"StackCorruption", {32, 24, 21, 22, 26, 13, 4, 11, 4, 1, 3, 7, 8}},
    {"HeapCorruption",
     {36, 35, 43, 45, 64, 30, 36, 35, 28, 61, 71, 104, 79}},
    {"HeapOOBRead", {1, 1, 2, 4, 9, 5, 7, 13, 17, 39, 76, 88, 55}},
    {"UseAfterFree",
     {12, 16, 18, 22, 44, 57, 39, 113, 186, 183, 87, 81, 99}},
    {"TypeConfusion", {1, 2, 4, 7, 15, 25, 25, 36, 71, 81, 64, 8, 11}},
    {"UninitializedUse", {6, 5, 6, 9, 22, 19, 8, 26, 61, 44, 30, 44, 41}},
    {"Other", {59, 103, 61, 120, 59, 159, 139, 197, 221, 130, 120, 110,
               100}},
};

} // namespace

int
main()
{
    std::printf("Fig. 2: root-cause trend of memory safety issues "
                "(external CVE data, approximate digitization)\n\n");
    std::printf("%-18s", "category");
    for (int y = 0; y < kYears; ++y)
        std::printf("%6d", kFirstYear + y);
    std::printf("\n");
    for (int i = 0; i < 96; ++i)
        std::putchar('-');
    std::putchar('\n');

    int totals[kYears] = {};
    for (const Series &s : kSeries) {
        std::printf("%-18s", s.name);
        for (int y = 0; y < kYears; ++y) {
            std::printf("%6d", s.counts[y]);
            totals[y] += s.counts[y];
        }
        std::printf("\n");
    }

    // Observation 1: stack corruption share trends down.
    const double stack_2006 =
        100.0 * kSeries[0].counts[0] / totals[0];
    const double stack_2018 =
        100.0 * kSeries[0].counts[kYears - 1] / totals[kYears - 1];
    std::printf("\nstack-corruption share: %.1f%% (2006) -> %.1f%% "
                "(2018)  [paper: downward trend]\n",
                stack_2006, stack_2018);

    // Observation 2: heap issues dominate recent years.
    double heap_recent = 0, all_recent = 0;
    for (int y = 8; y < kYears; ++y) { // 2014..2018
        heap_recent += kSeries[1].counts[y] + kSeries[2].counts[y] +
                       kSeries[3].counts[y];
        all_recent += totals[y];
    }
    std::printf("heap corruption + OOB read + UAF share 2014-2018: "
                "%.1f%% of categorized memory-safety issues\n",
                100.0 * heap_recent / all_recent);

    // Observation 3 (SI): non-adjacent spatial violations > 60% since
    // 2014 — OOB reads + UAF vs adjacent-overflow corruption.
    double nonadj = 0, spatial_all = 0;
    for (int y = 8; y < kYears; ++y) {
        nonadj += kSeries[2].counts[y] + kSeries[3].counts[y];
        spatial_all += kSeries[1].counts[y] + kSeries[2].counts[y] +
                       kSeries[3].counts[y];
    }
    std::printf("non-adjacent (OOB-read/UAF) share of heap issues since "
                "2014: %.1f%%  [paper: >60%%, defeating redzones]\n",
                100.0 * nonadj / spatial_all);
    return 0;
}
