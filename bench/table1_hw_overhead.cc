/**
 * @file
 * Table I — Hardware overhead of the AOS structures (MCQ, BWB, L1-B)
 * with the L1-D cache for reference, at 45 nm.
 *
 * The paper used CACTI 6.0; this harness prints the published CACTI
 * values next to our analytical model's estimates (see
 * hwcost/sram_model.hh for the substitution rationale).
 */

#include <cstdio>

#include "hwcost/sram_model.hh"

using namespace aos;
using namespace aos::hwcost;

int
main()
{
    std::printf("Table I: hardware overhead at 45 nm "
                "(paper CACTI 6.0 value / our analytical estimate)\n\n");
    std::printf("%-12s %10s %22s %22s %24s %22s\n", "structure", "size",
                "area (mm^2)", "access time (ns)", "dyn energy (pJ)",
                "leakage (mW)");
    for (int i = 0; i < 104; ++i)
        std::putchar('-');
    std::putchar('\n');

    for (const TableOneRow &row : tableOneRows()) {
        const SramCost est = estimate(row.spec);
        std::printf("%-12s %9lluB %10.4f / %-9.4f %10.4f / %-9.4f "
                    "%11.5f / %-10.5f %10.3f / %-9.3f\n",
                    row.spec.name.c_str(),
                    static_cast<unsigned long long>(row.spec.sizeBytes),
                    row.paper.areaMm2, est.areaMm2,
                    row.paper.accessTimeNs, est.accessTimeNs,
                    row.paper.dynamicEnergyPj, est.dynamicEnergyPj,
                    row.paper.leakagePowerMw, est.leakagePowerMw);
    }

    const SramCost mcq = estimate({"MCQ", 1331});
    const SramCost bwb = estimate({"BWB", 384});
    const SramCost l1d = estimate({"L1-D", 65536});
    std::printf("\nAOS core additions (MCQ+BWB) vs existing L1-D: "
                "%.1f%% area, %.1f%% leakage — \"modest overhead\"\n",
                100.0 * (mcq.areaMm2 + bwb.areaMm2) / l1d.areaMm2,
                100.0 * (mcq.leakagePowerMw + bwb.leakagePowerMw) /
                    l1d.leakagePowerMw);
    return 0;
}
