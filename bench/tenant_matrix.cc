/**
 * @file
 * Multi-tenant scheduling campaign (DESIGN.md §15): request-latency
 * degradation and per-mechanism overhead versus tenant count, plus the
 * cross-tenant isolation audit.
 *
 * Matrix family: for each mechanism in {baseline, AOS, PA+AOS} and
 * each fleet size in {1, 2, 4, 8} (capped by AOS_TENANTS), one shared
 * core runs a mixed fleet — rotating benign micro profiles plus one
 * adversarial tenant once the fleet has a neighbour to attack — under
 * a seeded open-loop arrival process with admission control. Each job
 * reports p50/p99 request latency (core cycles), served/shed request
 * accounting, context-switch counts and the benign-tenant violation
 * tally; after the sweep the harness derives the per-mechanism p50/p99
 * overhead against the baseline job of the same fleet size.
 *
 * Audit family: AOS_TENANT_AUDIT_SCENARIOS (default 500) seeded fleet
 * scenarios through campaign::tenant_audit, batched into campaign
 * jobs. The gate is absolute, chaos_audit-style: every job kOk, at
 * least 500 scenarios, zero fingerprint mismatches (cross-tenant
 * silent corruption), zero benign violations and zero misattributed
 * fault detections — and zero violations on benign tenants of the
 * matrix fleets.
 *
 * Knobs: AOS_TENANTS (fleet-size cap, default 8), AOS_TENANT_QUANTUM
 * (slice length in issued ops, default 2000), AOS_TENANT_ARRIVALS
 * (open-loop arrivals per 1000 cycles, default 3), AOS_TENANT_REQUESTS
 * (requests per matrix job, default 240), AOS_TENANT_AUDIT_SCENARIOS /
 * AOS_TENANT_AUDIT_SEED. Every job is a pure function of its spec, so
 * the canonical JSON is byte-identical at any AOS_CAMPAIGN_JOBS.
 */

#include "bench/harness.hh"

#include "campaign/tenant_audit.hh"
#include "os/scheduler.hh"

using namespace aos;
using namespace aos::bench;
using namespace aos::campaign;

namespace {

struct MechSpec
{
    baselines::Mechanism mech;
    const char *name;
};

constexpr MechSpec kMechs[] = {
    {baselines::Mechanism::kBaseline, "baseline"},
    {baselines::Mechanism::kAos, "aos"},
    {baselines::Mechanism::kPaAos, "pa_aos"},
};

constexpr unsigned kFleetSizes[] = {1, 2, 4, 8};

/** Small rotating tenant profiles: alloc-heavy, memory-heavy, branchy. */
workloads::WorkloadProfile
tenantProfile(unsigned idx)
{
    workloads::WorkloadProfile p;
    p.targetActive = 48 + 16 * (idx % 3);
    p.heapChunkMin = 32;
    p.heapChunkMax = 512;
    p.globalFootprint = 64 * 1024;
    p.codeFootprint = 8 * 1024;
    p.numBranches = 64;
    switch (idx % 3) {
      case 0:
        p.name = "mt_alloc";
        p.allocsPerKOp = 40;
        break;
      case 1:
        p.name = "mt_mem";
        p.allocsPerKOp = 8;
        p.loadPerMille = 380;
        p.storePerMille = 180;
        break;
      default:
        p.name = "mt_branch";
        p.allocsPerKOp = 12;
        p.branchPerMille = 220;
        p.hardBranchFraction = 0.4;
        break;
    }
    return p;
}

std::string
matrixJobName(const char *mech, unsigned tenants)
{
    return csprintf("matrix/%s/t%u", mech, tenants);
}

core::RunResult
runFleet(const MechSpec &spec, unsigned tenants, u64 quantum,
         u64 requests, u64 arrivalsPerK, const CancelToken &cancel)
{
    os::SchedulerConfig config;
    config.options.mech = spec.mech;
    config.options.cancel = &cancel;
    config.quantumOps = quantum;
    config.seed = 0x7e'a417 + tenants;
    config.totalRequests = requests;
    config.arrivalsPerKCycle = static_cast<double>(arrivalsPerK);

    os::Scheduler scheduler(config);
    for (unsigned i = 0; i < tenants; ++i) {
        os::TenantConfig tenant;
        tenant.profile = tenantProfile(i);
        tenant.seed = 100 + i;
        // The last slot turns adversarial once it has a neighbour whose
        // heap it can probe; solo fleets stay all-benign.
        tenant.adversarial = tenants >= 2 && i == tenants - 1;
        tenant.attackPerMille = 40;
        scheduler.spawn(tenant);
    }
    const os::SchedulerResult sched = scheduler.run();

    u64 benignViolations = 0;
    u64 attackDetections = 0;
    u64 attacksLaunched = 0;
    u64 attacksDetectable = 0;
    for (const os::TenantStats &t : sched.tenants) {
        if (t.adversarial) {
            attackDetections += t.violations;
            attacksLaunched += t.attacks.launched;
            attacksDetectable += t.attacks.detectable;
        } else {
            benignViolations += t.violations;
        }
    }

    core::RunResult run;
    run.workload = "tenant_matrix";
    run.extra.scalar("tenants") = static_cast<double>(tenants);
    run.extra.scalar("p50_cycles") =
        static_cast<double>(sched.latencyP50());
    run.extra.scalar("p99_cycles") =
        static_cast<double>(sched.latencyP99());
    run.extra.scalar("requests_arrived") =
        static_cast<double>(sched.requestsArrived);
    run.extra.scalar("requests_served") =
        static_cast<double>(sched.requestsServed);
    run.extra.scalar("requests_shed") =
        static_cast<double>(sched.requestsShed);
    run.extra.scalar("busy_cycles") = static_cast<double>(sched.cycles);
    run.extra.scalar("idle_cycles") =
        static_cast<double>(sched.idleCycles);
    run.extra.scalar("context_switches") =
        static_cast<double>(sched.contextSwitches);
    run.extra.scalar("slices") = static_cast<double>(sched.slices);
    run.extra.scalar("terminations") =
        static_cast<double>(sched.terminations);
    run.extra.scalar("benign_violations") =
        static_cast<double>(benignViolations);
    run.extra.scalar("attacks_launched") =
        static_cast<double>(attacksLaunched);
    run.extra.scalar("attacks_detectable") =
        static_cast<double>(attacksDetectable);
    run.extra.scalar("attack_detections") =
        static_cast<double>(attackDetections);
    return run;
}

core::RunResult
runAuditBatch(u64 firstSeed, unsigned count, const CancelToken &cancel)
{
    const tenant_audit::AuditSummary summary =
        tenant_audit::auditBatch(firstSeed, count, &cancel);
    if (!summary.pass()) {
        // Raw stderr: must surface even under setQuiet() — a broken
        // isolation invariant IS the finding.
        std::fprintf(stderr,
                     "tenant_matrix ISOLATION FAILURE (seeds %llu..%llu):"
                     " %s\n",
                     static_cast<unsigned long long>(firstSeed),
                     static_cast<unsigned long long>(firstSeed + count - 1),
                     summary.firstFailure.c_str());
    }
    core::RunResult run;
    run.workload = "tenant_audit";
    run.extra.scalar("audit_scenarios") =
        static_cast<double>(summary.scenarios);
    run.extra.scalar("audit_failed") =
        static_cast<double>(summary.failedScenarios);
    run.extra.scalar("audit_tenants") =
        static_cast<double>(summary.tenantsAudited);
    run.extra.scalar("audit_benign_compared") =
        static_cast<double>(summary.benignCompared);
    run.extra.scalar("audit_fingerprint_mismatches") =
        static_cast<double>(summary.fingerprintMismatches);
    run.extra.scalar("audit_benign_violations") =
        static_cast<double>(summary.benignViolations);
    run.extra.scalar("audit_misattributed_faults") =
        static_cast<double>(summary.misattributedFaults);
    run.extra.scalar("audit_attacks_launched") =
        static_cast<double>(summary.attacksLaunched);
    run.extra.scalar("audit_attacks_detectable") =
        static_cast<double>(summary.attacksDetectable);
    run.extra.scalar("audit_attack_detections") =
        static_cast<double>(summary.attackDetections);
    run.extra.scalar("audit_faults_injected") =
        static_cast<double>(summary.faultsInjected);
    return run;
}

} // namespace

int
main()
{
    setQuiet(true);

    const unsigned maxTenants =
        static_cast<unsigned>(envU64("AOS_TENANTS", 8));
    const u64 quantum = envU64("AOS_TENANT_QUANTUM", 2000);
    const u64 arrivalsPerK = envU64("AOS_TENANT_ARRIVALS", 3);
    const u64 requests = envU64("AOS_TENANT_REQUESTS", 240);
    const u64 auditScenarios =
        envU64("AOS_TENANT_AUDIT_SCENARIOS", 500);
    const u64 auditSeed = envU64("AOS_TENANT_AUDIT_SEED", 0x7e'4a47);

    campaign::CampaignOptions options = campaignOptions("tenant_matrix");
    if (options.timeoutSec <= 0)
        options.timeoutSec = 300; // A wedged fleet is a finding.
    campaign::Campaign sweep(options);

    for (const MechSpec &spec : kMechs) {
        for (unsigned tenants : kFleetSizes) {
            if (tenants > maxTenants)
                continue;
            Job job;
            job.name = matrixJobName(spec.name, tenants);
            job.profile.name = "tenant_matrix";
            job.mech = spec.mech;
            job.seed = tenants;
            job.cancellableBody = [spec, tenants, quantum, requests,
                                   arrivalsPerK](
                                      const CancelToken &cancel) {
                return runFleet(spec, tenants, quantum, requests,
                                arrivalsPerK, cancel);
            };
            sweep.add(std::move(job));
        }
    }

    constexpr unsigned kScenariosPerJob = 10;
    const unsigned auditJobs = static_cast<unsigned>(
        (auditScenarios + kScenariosPerJob - 1) / kScenariosPerJob);
    for (unsigned i = 0; i < auditJobs; ++i) {
        const unsigned count = static_cast<unsigned>(
            std::min<u64>(kScenariosPerJob,
                          auditScenarios - u64{i} * kScenariosPerJob));
        Job job;
        job.name = csprintf("audit/%03u", i);
        job.profile.name = "tenant_audit";
        job.seed = auditSeed + u64{i} * kScenariosPerJob;
        job.cancellableBody = [seed = job.seed,
                               count](const CancelToken &cancel) {
            return runAuditBatch(seed, count, cancel);
        };
        sweep.add(std::move(job));
    }

    const auto auditOnly = [](const JobResult &r) {
        return r.profile == "tenant_audit";
    };
    const auto matrixOnly = [](const JobResult &r) {
        return r.profile == "tenant_matrix";
    };
    for (const char *stat :
         {"audit_scenarios", "audit_failed", "audit_fingerprint_mismatches",
          "audit_benign_violations", "audit_misattributed_faults",
          "audit_attacks_launched", "audit_attacks_detectable",
          "audit_attack_detections", "audit_faults_injected"}) {
        sweep.addReducer({stat, campaign::ReduceOp::kSum, stat, auditOnly});
    }
    sweep.addReducer({"matrix_benign_violations", campaign::ReduceOp::kSum,
                      "benign_violations", matrixOnly});
    sweep.addReducer({"matrix_requests_served", campaign::ReduceOp::kSum,
                      "requests_served", matrixOnly});
    sweep.addReducer({"matrix_requests_shed", campaign::ReduceOp::kSum,
                      "requests_shed", matrixOnly});

    campaign::CampaignResult result = sweep.run();
    exitIfInterrupted(result);

    // Derive per-mechanism latency overhead against the baseline fleet
    // of the same size. Pure arithmetic over deterministic stats, so
    // the canonical JSON stays byte-identical at any worker count.
    for (JobResult &job : result.jobs) {
        if (!job.ok() || job.profile != "tenant_matrix")
            continue;
        const unsigned tenants =
            static_cast<unsigned>(job.stats.value("tenants"));
        const JobResult *base =
            result.find(matrixJobName("baseline", tenants));
        if (!base || !base->ok() || &job == base)
            continue;
        const double baseP50 = base->stats.value("p50_cycles");
        const double baseP99 = base->stats.value("p99_cycles");
        if (baseP50 > 0)
            job.stats.scalar("overhead_p50_pct") =
                (job.stats.value("p50_cycles") / baseP50 - 1.0) * 100.0;
        if (baseP99 > 0)
            job.stats.scalar("overhead_p99_pct") =
                (job.stats.value("p99_cycles") / baseP99 - 1.0) * 100.0;
    }
    computeReducers(result, sweep.reducers());

    std::printf("%-10s %8s %12s %12s %9s %9s %8s %10s\n", "mech",
                "tenants", "p50(cy)", "p99(cy)", "served", "shed",
                "ovh_p50", "switches");
    rule(84);
    for (const MechSpec &spec : kMechs) {
        for (unsigned tenants : kFleetSizes) {
            if (tenants > maxTenants)
                continue;
            const JobResult *job =
                result.find(matrixJobName(spec.name, tenants));
            if (!job || !job->ok())
                continue;
            const bool hasOvh = job->stats.has("overhead_p50_pct");
            std::printf("%-10s %8u %12.0f %12.0f %9.0f %9.0f %7.1f%% "
                        "%10.0f\n",
                        spec.name, tenants,
                        job->stats.value("p50_cycles"),
                        job->stats.value("p99_cycles"),
                        job->stats.value("requests_served"),
                        job->stats.value("requests_shed"),
                        hasOvh ? job->stats.value("overhead_p50_pct") : 0.0,
                        job->stats.value("context_switches"));
        }
    }

    double gates[4] = {0, 0, 0, 0}; // scenarios, failed, attacks, detected
    double fingerprintMismatches = 0;
    double benignViolations = 0;
    double misattributed = 0;
    double matrixBenignViolations = 0;
    for (const campaign::ReducerOutput &r : result.reducers) {
        if (r.name == "audit_scenarios")
            gates[0] = r.value;
        else if (r.name == "audit_failed")
            gates[1] = r.value;
        else if (r.name == "audit_attacks_launched")
            gates[2] = r.value;
        else if (r.name == "audit_attack_detections")
            gates[3] = r.value;
        else if (r.name == "audit_fingerprint_mismatches")
            fingerprintMismatches = r.value;
        else if (r.name == "audit_benign_violations")
            benignViolations = r.value;
        else if (r.name == "audit_misattributed_faults")
            misattributed = r.value;
        else if (r.name == "matrix_benign_violations")
            matrixBenignViolations = r.value;
    }
    std::printf("\nisolation audit: %.0f scenarios, %.0f failed "
                "(%.0f fingerprint mismatches, %.0f benign violations, "
                "%.0f misattributed faults); adversaries launched %.0f "
                "attacks, %.0f detected\n",
                gates[0], gates[1], fingerprintMismatches,
                benignViolations, misattributed, gates[2], gates[3]);
    emitCampaignJson(result, "tenant_matrix");

    bool pass = true;
    if (!result.allOk()) {
        std::fprintf(stderr,
                     "tenant matrix: %u job(s) did not finish ok\n",
                     static_cast<unsigned>(result.jobs.size()) -
                         result.count(campaign::JobStatus::kOk));
        pass = false;
    }
    if (gates[0] < 500) {
        std::fprintf(stderr,
                     "tenant matrix: only %.0f audit scenarios (gate "
                     "needs >= 500)\n",
                     gates[0]);
        pass = false;
    }
    if (gates[1] != 0 || fingerprintMismatches != 0 ||
        benignViolations != 0 || misattributed != 0) {
        std::fprintf(stderr,
                     "tenant matrix: isolation audit FAILED (%.0f "
                     "scenario(s); %.0f mismatches, %.0f benign "
                     "violations, %.0f misattributed)\n",
                     gates[1], fingerprintMismatches, benignViolations,
                     misattributed);
        pass = false;
    }
    if (matrixBenignViolations != 0) {
        std::fprintf(stderr,
                     "tenant matrix: %.0f violation(s) logged by benign "
                     "matrix tenants — cross-tenant containment broke\n",
                     matrixBenignViolations);
        pass = false;
    }
    return pass ? 0 : 1;
}
