/**
 * @file
 * Simulator throughput benchmark — how many simulated micro-ops per
 * host second the stack sustains, per mechanism, over a representative
 * workload subset.
 *
 * Unlike the figure harnesses this measures the *simulator*, not the
 * simulated machine: it is the regression guard for the hot-path work
 * (QARMA key-schedule caching + LUT rounds, cache MRU fast path,
 * allocator hash sizing — DESIGN.md §9). scripts/check.sh runs it in
 * smoke mode and fails when the per-mechanism ops/sec reducers drop
 * more than the guard band below scripts/throughput_baseline.json.
 *
 * The per-job derived stat is
 *
 *   ops_per_sec = committed micro-ops / job wall seconds
 *
 * which is wall-clock derived, so it lives in the per-job *timing*
 * stats (JobResult::timing) and its reducers are timing reducers: the
 * timing JSON carries them, while the canonical document keeps only
 * the bit-exact simulated statistics and so still honours the jobs=1
 * vs jobs=N (and kill-and-resume) parity contract.
 *
 * Profiles: mcf (alloc- and miss-heavy), hmmer (call/PAC-heavy), milc
 * (streaming), omnetpp (churny small objects) — the corners that
 * exercise allocator, QARMA, cache and MCU paths differently.
 *
 * Environment: AOS_SIM_OPS (window, default 400k here), plus the
 * AOS_CAMPAIGN_* knobs (harness.hh). Set AOS_PROFILE=1 to add the
 * host-time breakdown to the JSON under "profile".
 */

#include "bench/harness.hh"

#include <algorithm>
#include <cmath>

using namespace aos;
using namespace aos::bench;
using baselines::Mechanism;

namespace {

const Mechanism kMechs[] = {Mechanism::kBaseline, Mechanism::kWatchdog,
                            Mechanism::kPa, Mechanism::kAos,
                            Mechanism::kPaAos};
constexpr unsigned kNumMechs = 5;

const char *const kProfiles[] = {"mcf", "hmmer", "milc", "omnetpp"};
constexpr unsigned kNumProfiles = 4;

} // namespace

int
main()
{
    setQuiet(true);
    // Smaller default window than the figure harnesses: throughput
    // stabilizes quickly and check.sh runs this in smoke mode.
    const u64 ops = envU64("AOS_SIM_OPS", 400'000);

    std::printf("simulator throughput (higher is better)\n");
    std::printf("measured window: %llu source micro-ops per run "
                "(AOS_SIM_OPS to change)\n\n",
                static_cast<unsigned long long>(ops));

    campaign::Campaign sweep(campaignOptions("sim_throughput"));
    for (unsigned p = 0; p < kNumProfiles; ++p) {
        const auto &profile = workloads::profileByName(kProfiles[p]);
        for (const Mechanism mech : kMechs)
            sweep.addConfig(profile, mech, ops);
    }
    campaign::CampaignResult result = sweep.run();
    exitIfInterrupted(result);
    if (!result.allOk()) {
        std::fprintf(stderr, "sim_throughput: %u job(s) failed\n",
                     result.count(campaign::JobStatus::kFailed) +
                         result.count(campaign::JobStatus::kTimeout));
        return 1;
    }

    std::printf("%-12s %12s %12s %12s %12s %12s   (Kops/s)\n", "workload",
                "Baseline", "Watchdog", "PA", "AOS", "PA+AOS");
    rule(80);

    GeoAccum geo[kNumMechs];
    bool sane = true;
    for (unsigned p = 0; p < kNumProfiles; ++p) {
        std::printf("%-12s", kProfiles[p]);
        for (unsigned m = 0; m < kNumMechs; ++m) {
            campaign::JobResult &job = result.jobs[p * kNumMechs + m];
            // Sub-ms jobs would make the rate numerically meaningless;
            // the floor keeps a degenerate window from dividing by ~0.
            // wallMs is checkpointed, so a resumed job reproduces the
            // same rate as the run that executed it.
            const double wall_sec = std::max(job.wallMs / 1e3, 1e-6);
            const double rate =
                job.stats.value("committed_ops") / wall_sec;
            if (!std::isfinite(rate) || rate <= 0.0)
                sane = false;
            // Wall-derived, so it goes in the timing stats — keeping
            // the canonical document byte-identical across runs; the
            // reducers + the check.sh guard read it from there.
            job.timing.scalar("ops_per_sec") = rate;
            geo[m].add(rate);
            std::printf(" %12.1f", rate / 1e3);
        }
        std::printf("\n");
    }
    rule(80);
    std::printf("%-12s", "geomean");
    for (unsigned m = 0; m < kNumMechs; ++m)
        std::printf(" %12.1f", geo[m].geomean() / 1e3);
    std::printf("\n");

    std::vector<campaign::Reducer> reducers;
    for (unsigned m = 0; m < kNumMechs; ++m) {
        const Mechanism mech = kMechs[m];
        reducers.push_back(
            {std::string("ops_per_sec_") + baselines::mechanismName(mech),
             campaign::ReduceOp::kGeomean, "ops_per_sec",
             [mech](const campaign::JobResult &job) {
                 return job.mech == mech;
             },
             /*timing=*/true});
    }
    campaign::computeReducers(result, reducers);
    const bool json_ok = emitCampaignJson(result, "throughput");
    if (!sane)
        std::fprintf(stderr, "sim_throughput: non-finite or non-positive "
                             "throughput\n");
    return (sane && json_ok) ? 0 : 1;
}
