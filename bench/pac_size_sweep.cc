/**
 * @file
 * Ablation (DESIGN.md): PAC width sweep, 11..32 bits.
 *
 * The paper notes the PAC size ranges from 11 to 32 bits depending on
 * the virtual-address scheme and evaluates 16 bits. This harness shows
 * the security/capacity/performance triangle across the architected
 * range:
 *
 *  - forging resistance (attempts for a 50% guess, SVII-E);
 *  - HBT geometry: rows, initial size, predicted steady-state
 *    associativity for a 200K-object live set;
 *  - measured AOS overhead on hmmer for the widths that are cheap to
 *    simulate (the table shrinks/grows as 2^bits).
 */

#include "analysis/pac_analysis.hh"
#include "bench/harness.hh"

using namespace aos;
using namespace aos::bench;
using baselines::Mechanism;

int
main()
{
    setQuiet(true);
    const u64 ops = envU64("AOS_SIM_OPS", 300'000);

    std::printf("PAC width sweep (paper evaluates 16 bits; architected "
                "range 11..32)\n\n");
    std::printf("%5s %16s %10s %12s %12s %14s\n", "bits",
                "50%-guess tries", "HBT rows", "initial MB",
                "assoc@200K", "escape prob");
    rule(76);
    for (unsigned bits : {11u, 12u, 13u, 14u, 16u, 20u, 24u, 28u, 32u}) {
        const u64 rows = u64{1} << bits;
        std::printf("%5u %16llu %10llu %12.2f %12u %14.2e\n", bits,
                    static_cast<unsigned long long>(
                        analysis::attemptsForGuessProbability(bits, 0.5)),
                    static_cast<unsigned long long>(rows),
                    static_cast<double>(rows * 64) / (1 << 20),
                    analysis::predictedAssociativity(200000, bits, 8),
                    analysis::wildPointerEscapeProb(200000, bits, 1024));
    }

    std::printf("\nmeasured AOS overhead (sphinx3, 200K live objects, "
                "%llu ops) by PAC width:\n\n",
                static_cast<unsigned long long>(ops));
    std::printf("%5s %12s %12s %12s\n", "bits", "norm. time",
                "HBT resizes", "ways/check");
    rule(46);
    const auto &profile = workloads::profileByName("sphinx3");
    baselines::SystemOptions base_opts;
    const core::RunResult baseline =
        runConfig(profile, Mechanism::kBaseline, ops);
    for (unsigned bits : {11u, 13u, 16u, 20u}) {
        baselines::SystemOptions options;
        options.pacBits = bits;
        const core::RunResult r =
            runConfig(profile, Mechanism::kAos, ops, options);
        std::printf("%5u %12.3f %12llu %12.3f\n", bits,
                    static_cast<double>(r.core.cycles) /
                        static_cast<double>(baseline.core.cycles),
                    static_cast<unsigned long long>(r.resizes),
                    r.mcuStats.avgWaysPerCheck());
        std::fflush(stdout);
    }
    std::printf("\nnarrow PACs trade forging resistance and row "
                "pressure (more collisions, more resizes) for a "
                "smaller table; 16 bits sits at the knee.\n");
    return 0;
}
