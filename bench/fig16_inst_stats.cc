/**
 * @file
 * Fig. 16 — Instructions of interest per 1 B instructions under
 * PA+AOS: unsigned/signed loads and stores, bndstr/bndclr, and
 * pac*\/aut*\/xpac* ops, per workload.
 *
 * Paper reference: bzip2/gcc/hmmer/lbm see >80% of accesses through
 * signed pointers; hmmer over 99%.
 */

#include "bench/harness.hh"

using namespace aos;
using namespace aos::bench;
using baselines::Mechanism;

int
main()
{
    setQuiet(true);
    const u64 ops = simOps();
    const double scale = 1e9 / static_cast<double>(ops);

    std::printf("Fig. 16: instruction mix under PA+AOS, scaled to "
                "counts per 1B instructions (millions)\n\n");
    std::printf("%-12s %9s %9s %9s %9s %9s %9s %8s\n", "workload",
                "uLoad", "uStore", "sLoad", "sStore", "bnd*", "pac*",
                "signed%");
    rule(88);

    for (const auto &profile : workloads::specProfiles()) {
        const core::RunResult r =
            runConfig(profile, Mechanism::kPaAos, ops);
        const auto &mix = r.mix;
        const double signed_frac =
            static_cast<double>(mix.signedLoads + mix.signedStores) /
            static_cast<double>(mix.signedLoads + mix.signedStores +
                                mix.unsignedLoads + mix.unsignedStores);
        std::printf("%-12s %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f %7.1f%%\n",
                    profile.name.c_str(),
                    mix.unsignedLoads * scale / 1e6,
                    mix.unsignedStores * scale / 1e6,
                    mix.signedLoads * scale / 1e6,
                    mix.signedStores * scale / 1e6,
                    mix.boundsOps * scale / 1e6, mix.pacOps * scale / 1e6,
                    100.0 * signed_frac);
        std::fflush(stdout);
    }
    std::printf("\npaper: signed accesses >80%% of all accesses for "
                "bzip2/gcc/hmmer/lbm; hmmer >99%%\n");
    return 0;
}
