/**
 * @file
 * Microbenchmark: AosRuntime end-to-end operation costs — protected
 * malloc/free pairs, checked loads (hit/violation), and the narrowing
 * extension — versus the unprotected allocator, giving the functional
 * layer's own overhead picture.
 */

#include <benchmark/benchmark.h>

#include "alloc/heap_allocator.hh"
#include "common/random.hh"
#include "core/aos_runtime.hh"

using namespace aos;
using core::AosRuntime;

namespace {

void
BM_BareMallocFree(benchmark::State &state)
{
    alloc::HeapAllocator heap;
    for (auto _ : state) {
        const Addr p = heap.malloc(64);
        benchmark::DoNotOptimize(p);
        heap.free(p);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_ProtectedMallocFree(benchmark::State &state)
{
    AosRuntime rt;
    for (auto _ : state) {
        const Addr p = rt.malloc(64);
        benchmark::DoNotOptimize(p);
        rt.free(p);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_CheckedLoadHit(benchmark::State &state)
{
    AosRuntime rt;
    const Addr p = rt.malloc(256);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rt.load(p + (rng.below(256) & ~7ull)));
    state.SetItemsProcessed(state.iterations());
}

void
BM_CheckedLoadAcrossLiveSet(benchmark::State &state)
{
    AosRuntime rt;
    Rng rng(2);
    std::vector<Addr> ptrs;
    for (int i = 0; i < 10000; ++i)
        ptrs.push_back(rt.malloc(64));
    for (auto _ : state)
        benchmark::DoNotOptimize(
            rt.load(ptrs[rng.below(ptrs.size())] + 8));
    state.SetItemsProcessed(state.iterations());
}

void
BM_ViolationDetection(benchmark::State &state)
{
    AosRuntime rt;
    const Addr p = rt.malloc(64);
    for (auto _ : state)
        benchmark::DoNotOptimize(rt.load(p + 4096));
    state.SetItemsProcessed(state.iterations());
}

void
BM_NarrowWiden(benchmark::State &state)
{
    AosRuntime rt;
    const Addr obj = rt.malloc(256);
    for (auto _ : state) {
        const Addr field = rt.narrow(obj, 64, 32);
        benchmark::DoNotOptimize(field);
        rt.widen(field);
    }
    state.SetItemsProcessed(state.iterations());
}

} // namespace

BENCHMARK(BM_BareMallocFree);
BENCHMARK(BM_ProtectedMallocFree);
BENCHMARK(BM_CheckedLoadHit);
BENCHMARK(BM_CheckedLoadAcrossLiveSet);
BENCHMARK(BM_ViolationDetection);
BENCHMARK(BM_NarrowWiden);
