/**
 * @file
 * Bounds-elision ablation (DESIGN.md §11): PA+AOS with and without
 * AosBoundsElidePass across the SPEC profiles.
 *
 * The dataflow engine proves some chunks non-escaping with every
 * access in bounds; the pass then drops their whole instrumentation
 * quadruple (pacma/bndstr/bndclr/autm). This harness measures the
 * coverage and the timing effect as one campaign, then tries every
 * plan in court: per profile, the full and elided streams are replayed
 * through the ObligationChecker (ground-truth parity, obligation
 * replay, aligned fault injection) and any lost detection fails the
 * run.
 *
 * Exit status is the gate scripts/check.sh relies on: non-zero when a
 * checker rejects a plan, a verifier contract fires, or coverage drops
 * below 10% elided bndstr on at least two profiles.
 *
 * Build & run:  ./build/bench/bounds_elision
 */

#include "bench/harness.hh"

#include <algorithm>

#include "analysis/dataflow/engine.hh"
#include "compiler/aos_bounds_elide_pass.hh"
#include "compiler/aos_passes.hh"
#include "compiler/pa_pass.hh"
#include "pa/pa_context.hh"
#include "staticcheck/obligation_checker.hh"
#include "workloads/synthetic_workload.hh"

using namespace aos;
using namespace aos::bench;
using baselines::Mechanism;
using baselines::SystemOptions;

namespace {

/** Profiles that must clear the 10% bndstr-elision bar. */
constexpr double kCoverageFloor = 0.10;
constexpr unsigned kCoverageProfiles = 2;

/**
 * Replay one profile's plan through the ObligationChecker: regenerate
 * the exact source stream AosSystem analysed, plan, lower with and
 * without the pass, and let the checker try the proofs.
 */
staticcheck::ObligationReport
tryPlan(const workloads::WorkloadProfile &profile, u64 ops)
{
    pa::PaContext pa(pa::PointerLayout(16, 46));
    const pa::PointerLayout layout = pa.layout();

    workloads::SyntheticWorkload analysis_stream(profile, ops);
    analysis::dataflow::DataflowEngine engine(layout);
    engine.run(analysis_stream);
    const auto plan =
        analysis::dataflow::planBoundsElision(engine);

    workloads::SyntheticWorkload source(profile, ops);
    compiler::AosOptPass opt(&source);
    compiler::AosBackendPass backend(&opt, &pa);
    compiler::PaPass pa_pass(&backend, compiler::PaMode::kPaAos);
    std::vector<ir::MicroOp> full;
    ir::MicroOp next;
    while (pa_pass.next(next))
        full.push_back(next);

    ir::VectorStream full_stream(full);
    compiler::AosBoundsElidePass belide(&full_stream, layout, &plan);
    std::vector<ir::MicroOp> elided;
    while (belide.next(next))
        elided.push_back(next);

    staticcheck::ObligationChecker checker;
    return checker.check(full, elided, plan);
}

} // namespace

int
main()
{
    setQuiet(true);
    const u64 ops = simOps();

    std::printf("Bounds elision: PA+AOS vs PA+AOS with dataflow bounds "
                "elision, %llu ops/run\n\n",
                static_cast<unsigned long long>(ops));
    std::printf("%-12s %9s %9s %7s %8s %8s %10s %10s %8s %7s\n",
                "workload", "bndstr", "bnds-el", "cover", "ipc",
                "ipc-el", "mcq-stall", "mcq-st-el", "norm", "verify");
    rule(98);

    SystemOptions with_belide;
    with_belide.aosBoundsElision = true;
    // Online lint with the SC15-SC18 elided-region contracts: any
    // residual instrumentation or out-of-plan access in the elided
    // stream is a diagnostic, and diagnostics fail this harness.
    with_belide.verifyStream = true;

    campaign::Campaign sweep(campaignOptions("bounds_elision"));
    const auto &profiles = workloads::specProfiles();
    for (const auto &profile : profiles) {
        // Two jobs per profile: [2p] = PA+AOS base, [2p+1] = elided.
        campaign::Job base;
        base.name = profile.name + "/pa_aos";
        base.profile = profile;
        base.mech = Mechanism::kPaAos;
        base.ops = ops;
        sweep.add(std::move(base));

        campaign::Job elided;
        elided.name = profile.name + "/pa_aos_belide";
        elided.profile = profile;
        elided.mech = Mechanism::kPaAos;
        elided.options = with_belide;
        elided.ops = ops;
        sweep.add(std::move(elided));
    }
    campaign::CampaignResult result = sweep.run();
    exitIfInterrupted(result);
    if (!result.allOk()) {
        std::fprintf(stderr, "bounds_elision: %u job(s) failed\n",
                     result.count(campaign::JobStatus::kFailed) +
                         result.count(campaign::JobStatus::kTimeout));
        return 1;
    }

    GeoAccum norm_geo;
    unsigned covered = 0;
    u64 verify_diags = 0;
    for (size_t p = 0; p < profiles.size(); ++p) {
        const StatSet &base = result.jobs[2 * p].stats;
        campaign::JobResult &elided_job = result.jobs[2 * p + 1];
        const StatSet &elided = elided_job.stats;
        const double cover = elided.has("belide_bndstr_rate")
                                 ? elided.value("belide_bndstr_rate")
                                 : 0.0;
        const double verify = elided.has("verify_total")
                                  ? elided.value("verify_total")
                                  : 0.0;
        const double norm =
            elided.value("cycles") / base.value("cycles");
        elided_job.stats.scalar("norm_exec_time") = norm;
        if (cover >= kCoverageFloor)
            ++covered;
        verify_diags += static_cast<u64>(verify);
        norm_geo.add(norm);
        std::printf("%-12s %9.0f %9.0f %6.1f%% %8.3f %8.3f %10.0f "
                    "%10.0f %8.3f %7.0f\n",
                    profiles[p].name.c_str(),
                    elided.value("belide_bndstr_seen"),
                    elided.value("belide_bndstr_elided"), 100.0 * cover,
                    base.value("ipc"), elided.value("ipc"),
                    base.value("mcq_full_stalls"),
                    elided.value("mcq_full_stalls"), norm, verify);
        std::fflush(stdout);
    }
    rule(98);
    std::printf("%-12s geomean exec time (elided/base): %.3f; "
                "%u/%zu profiles above %.0f%% coverage\n\n", "",
                norm_geo.geomean(), covered, profiles.size(),
                100.0 * kCoverageFloor);

    const auto elided_only = [](const campaign::JobResult &job) {
        return job.stats.has("norm_exec_time");
    };
    campaign::computeReducers(
        result,
        {{"geomean_norm_belide", campaign::ReduceOp::kGeomean,
          "norm_exec_time", elided_only},
         {"mean_bndstr_coverage", campaign::ReduceOp::kMean,
          "belide_bndstr_rate", elided_only}});
    const bool json_ok = emitCampaignJson(result, "bounds_elision");

    // --- Obligation court: every plan tried against ground truth ---
    // Functional, not timed; capped so the serial replay stays a smoke
    // even when the campaign above runs with a large AOS_SIM_OPS.
    const u64 replay_ops = std::min<u64>(ops, 40'000);
    std::printf("Obligation replay (%llu ops/profile, aligned fault "
                "injection):\n",
                static_cast<unsigned long long>(replay_ops));
    std::printf("  %-12s %6s %5s %9s %9s %9s %9s\n", "workload", "oblig",
                "viol", "inj-full", "inj-el", "det-full", "det-el");

    bool plans_ok = true;
    for (const auto &profile : profiles) {
        const auto report = tryPlan(profile, replay_ops);
        plans_ok &= report.ok;
        std::printf("  %-12s %6llu %5llu %9llu %9llu %9llu %9llu   %s\n",
                    profile.name.c_str(),
                    static_cast<unsigned long long>(
                        report.obligationsChecked),
                    static_cast<unsigned long long>(
                        report.obligationsViolated),
                    static_cast<unsigned long long>(
                        report.faultsInjectedFull),
                    static_cast<unsigned long long>(
                        report.faultsInjectedElided),
                    static_cast<unsigned long long>(
                        report.faultsDetectedFull),
                    static_cast<unsigned long long>(
                        report.faultsDetectedElided),
                    report.ok ? "OK" : "FAIL");
        if (!report.ok) {
            for (const auto &failure : report.failures)
                std::printf("    %s\n", failure.c_str());
        }
        std::fflush(stdout);
    }

    bool ok = json_ok && plans_ok;
    if (covered < kCoverageProfiles) {
        std::fprintf(stderr,
                     "bounds_elision: only %u profile(s) above %.0f%% "
                     "bndstr coverage (need %u)\n",
                     covered, 100.0 * kCoverageFloor, kCoverageProfiles);
        ok = false;
    }
    if (verify_diags != 0) {
        std::fprintf(stderr,
                     "bounds_elision: %llu stream-verifier "
                     "diagnostic(s) in elided runs\n",
                     static_cast<unsigned long long>(verify_diags));
        ok = false;
    }
    std::printf("\n%s\n",
                ok ? "All plans sound: no lost detections, coverage "
                     "and verifier gates hold."
                   : "BOUNDS-ELISION GATE FAILURE (see above).");
    return ok ? 0 : 1;
}
