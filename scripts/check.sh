#!/usr/bin/env bash
# Full local gate: default build + tier-1 tests, sanitizer build +
# tests, campaign-engine smoke (JSON emission + serial/parallel
# parity), and clang-tidy lint. Run from the repository root:
#
#   scripts/check.sh              # everything
#   AOS_CHECK_SKIP_SANITIZE=1 scripts/check.sh   # skip the ASan pass
#
# The tier-1 stage runs every test; for a faster inner loop use
# `ctest --preset default -LE slow` yourself.
#
# Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${AOS_CHECK_JOBS:-$(nproc)}"

echo "== [1/5] default build =="
cmake --preset default
cmake --build --preset default -j "${JOBS}"

echo "== [2/5] tier-1 tests =="
ctest --preset default -j "${JOBS}"

if [ "${AOS_CHECK_SKIP_SANITIZE:-0}" != "1" ]; then
    echo "== [3/5] sanitizer build + tests (ASan+UBSan) =="
    cmake --preset sanitize
    cmake --build --preset sanitize -j "${JOBS}"
    ctest --preset sanitize -j "${JOBS}"
else
    echo "== [3/5] sanitizer pass skipped (AOS_CHECK_SKIP_SANITIZE=1) =="
fi

echo "== [4/5] campaign smoke (JSON + jobs=1 vs jobs=4 parity) =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT
AOS_SIM_OPS=20000 AOS_CAMPAIGN_PROGRESS=0 AOS_CAMPAIGN_JOBS=1 \
    AOS_CAMPAIGN_JSON="${SMOKE_DIR}/serial.json" ./build/bench/campaign_smoke
AOS_SIM_OPS=20000 AOS_CAMPAIGN_PROGRESS=0 AOS_CAMPAIGN_JOBS=4 \
    AOS_CAMPAIGN_JSON="${SMOKE_DIR}/parallel.json" ./build/bench/campaign_smoke
test -s "${SMOKE_DIR}/serial.json"
grep -q '"schema": "aos-campaign-v1"' "${SMOKE_DIR}/serial.json"
# Strip the timing-only fields (each JSON member is on its own line)
# and require byte-equality: the determinism contract of DESIGN.md §7.
if ! diff \
    <(grep -vE '"(workers|wall_ms|total_wall_ms)"' "${SMOKE_DIR}/serial.json") \
    <(grep -vE '"(workers|wall_ms|total_wall_ms)"' "${SMOKE_DIR}/parallel.json")
then
    echo "campaign smoke: serial/parallel parity FAILED" >&2
    exit 1
fi
echo "campaign smoke: parity OK"

echo "== [5/5] lint =="
cmake --build --preset default --target lint

echo "All checks passed."
