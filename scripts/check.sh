#!/usr/bin/env bash
# Full local gate: default build + tier-1 tests, sanitizer build +
# tests, and clang-tidy lint. Run from the repository root:
#
#   scripts/check.sh              # everything
#   AOS_CHECK_SKIP_SANITIZE=1 scripts/check.sh   # skip the ASan pass
#
# Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${AOS_CHECK_JOBS:-$(nproc)}"

echo "== [1/4] default build =="
cmake --preset default
cmake --build --preset default -j "${JOBS}"

echo "== [2/4] tier-1 tests =="
ctest --preset default -j "${JOBS}"

if [ "${AOS_CHECK_SKIP_SANITIZE:-0}" != "1" ]; then
    echo "== [3/4] sanitizer build + tests (ASan+UBSan) =="
    cmake --preset sanitize
    cmake --build --preset sanitize -j "${JOBS}"
    ctest --preset sanitize -j "${JOBS}"
else
    echo "== [3/4] sanitizer pass skipped (AOS_CHECK_SKIP_SANITIZE=1) =="
fi

echo "== [4/4] lint =="
cmake --build --preset default --target lint

echo "All checks passed."
