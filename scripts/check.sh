#!/usr/bin/env bash
# Full local gate: default build + tier-1 tests, sanitizer build +
# tests, thread-sanitizer pass over the concurrent subsystems
# (campaign pool, checkpoint writer, logging), campaign-engine smoke
# (JSON emission + serial/parallel parity), fault-matrix smoke
# (graceful-degradation audit under sanitizers), bounds-elision
# ablation (obligation gates + jobs parity), simulator-throughput
# regression guard, crash-resume check (SIGKILL mid-campaign +
# AOS_CAMPAIGN_RESUME byte parity), distributed-fabric check (worker
# processes via AOS_FABRIC_WORKERS, worker/coordinator SIGKILL,
# resume + byte parity), chaos-engine check (deterministic AOS_CHAOS
# fault injection with byte parity + the graceful-degradation audit),
# and clang-tidy lint. Run from the repository root:
#
#   scripts/check.sh              # everything
#   AOS_CHECK_SKIP_SANITIZE=1 scripts/check.sh   # skip the ASan pass
#
# The tier-1 stage runs every test; the sanitizer stage runs the fast
# set (`-LE slow`) — the full suite under ASan is a CI-budget call,
# and every slow test still runs uninstrumented in stage 2.
#
# Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${AOS_CHECK_JOBS:-$(nproc)}"

echo "== [1/13] default build =="
cmake --preset default
cmake --build --preset default -j "${JOBS}"

echo "== [2/13] tier-1 tests =="
ctest --preset default -j "${JOBS}"

SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT

if [ "${AOS_CHECK_SKIP_SANITIZE:-0}" != "1" ]; then
    echo "== [3/13] sanitizer build + fast tests (ASan+UBSan) =="
    cmake --preset sanitize
    cmake --build --preset sanitize -j "${JOBS}"
    ctest --preset sanitize -LE slow -j "${JOBS}"
    # The suite above dispatches QARMA batches through the widest
    # compiled-in kernel; re-exercise the cipher tests with the scalar
    # kernel forced so both dispatch paths stay sanitizer-clean.
    AOS_QARMA_KERNEL=scalar ./build-sanitize/tests/pac_vectors_test
    AOS_QARMA_KERNEL=scalar ./build-sanitize/tests/qarma_test
else
    echo "== [3/13] sanitizer pass skipped (AOS_CHECK_SKIP_SANITIZE=1) =="
fi

if [ "${AOS_CHECK_SKIP_SANITIZE:-0}" != "1" ]; then
    echo "== [4/13] thread-sanitizer pass (TSan) =="
    # The campaign worker pool, checkpoint writer and logging sinks are
    # the only concurrent subsystems: build exactly what exercises
    # them, run their suites, then drive a jobs=4 campaign end to end
    # under TSan so the pool races against the JSON/checkpoint writers.
    # scheduler_test rides along: concurrent audit jobs each build a
    # whole Scheduler, so its state must be pool-shareable.
    cmake --preset tsan
    cmake --build --preset tsan -j "${JOBS}" --target \
        campaign_smoke campaign_test checkpoint_test logging_test \
        scheduler_test
    ./build-tsan/tests/campaign_test
    ./build-tsan/tests/checkpoint_test
    ./build-tsan/tests/logging_test
    ./build-tsan/tests/scheduler_test
    AOS_SIM_OPS=20000 AOS_CAMPAIGN_PROGRESS=0 AOS_CAMPAIGN_JOBS=4 \
        AOS_CAMPAIGN_JSON="${SMOKE_DIR}/tsan-smoke.json" \
        ./build-tsan/bench/campaign_smoke
    grep -q '"schema": "aos-campaign-v1"' "${SMOKE_DIR}/tsan-smoke.json"
    echo "tsan: concurrency suites OK"
else
    echo "== [4/13] TSan pass skipped (AOS_CHECK_SKIP_SANITIZE=1) =="
fi

# Strip the timing-only fields (each JSON member is on its own line)
# and require byte-equality: the determinism contract of DESIGN.md §7.
json_parity() {
    if ! diff \
        <(grep -vE '"(workers|wall_ms|total_wall_ms)"' "$1") \
        <(grep -vE '"(workers|wall_ms|total_wall_ms)"' "$2")
    then
        echo "$3: serial/parallel parity FAILED" >&2
        exit 1
    fi
}

echo "== [5/13] campaign smoke (JSON + jobs=1 vs jobs=4 parity) =="
AOS_SIM_OPS=20000 AOS_CAMPAIGN_PROGRESS=0 AOS_CAMPAIGN_JOBS=1 \
    AOS_CAMPAIGN_JSON="${SMOKE_DIR}/serial.json" ./build/bench/campaign_smoke
AOS_SIM_OPS=20000 AOS_CAMPAIGN_PROGRESS=0 AOS_CAMPAIGN_JOBS=4 \
    AOS_CAMPAIGN_JSON="${SMOKE_DIR}/parallel.json" ./build/bench/campaign_smoke
test -s "${SMOKE_DIR}/serial.json"
grep -q '"schema": "aos-campaign-v1"' "${SMOKE_DIR}/serial.json"
json_parity "${SMOKE_DIR}/serial.json" "${SMOKE_DIR}/parallel.json" \
    "campaign smoke"
echo "campaign smoke: parity OK"

echo "== [6/13] fault-matrix smoke (DESIGN.md §8 audit) =="
# Run the graceful-degradation audit under the sanitizer build when
# available — injected corruption must be UB-free, not just survivable.
FAULT_BIN=./build/bench/fault_matrix
if [ "${AOS_CHECK_SKIP_SANITIZE:-0}" != "1" ]; then
    FAULT_BIN=./build-sanitize/bench/fault_matrix
fi
AOS_SIM_OPS=40000 AOS_CAMPAIGN_PROGRESS=0 AOS_CAMPAIGN_JOBS=1 \
    AOS_CAMPAIGN_JSON="${SMOKE_DIR}/fault1.json" "${FAULT_BIN}"
AOS_SIM_OPS=40000 AOS_CAMPAIGN_PROGRESS=0 AOS_CAMPAIGN_JOBS=4 \
    AOS_CAMPAIGN_JSON="${SMOKE_DIR}/faultN.json" "${FAULT_BIN}"
grep -q '"schema": "aos-campaign-v1"' "${SMOKE_DIR}/fault1.json"
json_parity "${SMOKE_DIR}/fault1.json" "${SMOKE_DIR}/faultN.json" \
    "fault matrix"
echo "fault matrix: audit + parity OK"

echo "== [7/13] bounds-elision ablation (obligation gates + parity) =="
# The benchmark itself exits non-zero if any ObligationChecker gate
# fails or elision coverage collapses (DESIGN.md §11); the wrapper adds
# the determinism contract on top.
AOS_SIM_OPS=20000 AOS_CAMPAIGN_PROGRESS=0 AOS_CAMPAIGN_JOBS=1 \
    AOS_CAMPAIGN_JSON="${SMOKE_DIR}/belide1.json" \
    ./build/bench/bounds_elision
AOS_SIM_OPS=20000 AOS_CAMPAIGN_PROGRESS=0 AOS_CAMPAIGN_JOBS=4 \
    AOS_CAMPAIGN_JSON="${SMOKE_DIR}/belideN.json" \
    ./build/bench/bounds_elision
grep -q '"schema": "aos-campaign-v1"' "${SMOKE_DIR}/belide1.json"
json_parity "${SMOKE_DIR}/belide1.json" "${SMOKE_DIR}/belideN.json" \
    "bounds elision"
echo "bounds elision: gates + parity OK"

echo "== [8/13] simulator throughput guard =="
# Smoke-mode run of the host-throughput benchmark against the
# checked-in baseline: the per-mechanism ops/sec geomeans may not drop
# more than the guard band below scripts/throughput_baseline.json
# (generated with these exact settings). The wide band absorbs host
# noise; a hot-path regression overshoots it.
AOS_SIM_OPS=20000 AOS_CAMPAIGN_PROGRESS=0 AOS_CAMPAIGN_JOBS=1 \
    AOS_CAMPAIGN_JSON="${SMOKE_DIR}/throughput.json" \
    ./build/bench/sim_throughput
reducer_value() {
    # Line-oriented JSON: find the reducer's "name" line, print the
    # "value" member that follows within the same object.
    awk -v key="$2" '
        index($0, "\"name\": \"" key "\"") { grab = 1 }
        grab && /"value":/ { gsub(/[",]/, "", $2); print $2; exit }
    ' "$1"
}
THROUGHPUT_GUARD_OK=1
for mech in Baseline Watchdog PA AOS "PA+AOS"; do
    base="$(reducer_value scripts/throughput_baseline.json \
            "ops_per_sec_${mech}")"
    now="$(reducer_value "${SMOKE_DIR}/throughput.json" \
           "ops_per_sec_${mech}")"
    if [ -z "${base}" ] || [ -z "${now}" ]; then
        echo "throughput guard: missing ops_per_sec_${mech} reducer" >&2
        THROUGHPUT_GUARD_OK=0
        continue
    fi
    if ! awk -v now="${now}" -v base="${base}" -v mech="${mech}" '
        BEGIN {
            floor = 0.70 * base
            printf "  %-10s %12.0f ops/s (baseline %12.0f, floor %.0f)\n", \
                   mech, now, base, floor
            exit !(now >= floor)
        }'
    then
        echo "throughput guard: ${mech} regressed beyond the 30% band" >&2
        THROUGHPUT_GUARD_OK=0
    fi
done
[ "${THROUGHPUT_GUARD_OK}" = "1" ] || exit 1
echo "throughput guard: OK"

echo "== [9/13] crash-resume (SIGKILL mid-campaign, resume, parity) =="
# Kill a checkpointed campaign once its first record is durable, resume
# it with AOS_CAMPAIGN_RESUME, and require the canonical JSON to be
# byte-identical to an uninterrupted run (DESIGN.md §10).
resume_check() {
    local name="$1" bin="$2" jobs="$3" ops="$4"
    local dir="${SMOKE_DIR}/resume-${name}-j${jobs}"
    mkdir -p "${dir}"
    # Uninterrupted reference run.
    AOS_SIM_OPS="${ops}" AOS_CAMPAIGN_PROGRESS=0 \
        AOS_CAMPAIGN_JOBS="${jobs}" AOS_CAMPAIGN_JSON=off \
        AOS_CAMPAIGN_JSON_CANONICAL="${dir}/clean.json" \
        "${bin}" > /dev/null
    # Checkpointed run, SIGKILLed as soon as a shard holds a record.
    AOS_SIM_OPS="${ops}" AOS_CAMPAIGN_PROGRESS=0 \
        AOS_CAMPAIGN_JOBS="${jobs}" AOS_CAMPAIGN_JSON=off \
        AOS_CAMPAIGN_RESUME="${dir}/ckpt" \
        "${bin}" > /dev/null 2>&1 &
    local pid=$!
    for _ in $(seq 1 600); do
        if [ -n "$(find "${dir}/ckpt" -name 'shard-*.log' -size +0c \
                   2>/dev/null)" ]; then
            break
        fi
        kill -0 "${pid}" 2>/dev/null || break
        sleep 0.05
    done
    kill -9 "${pid}" 2>/dev/null || true
    wait "${pid}" 2>/dev/null || true
    # Resumed run must reproduce the reference byte-for-byte and must
    # not re-execute the jobs whose records survived the kill.
    AOS_SIM_OPS="${ops}" AOS_CAMPAIGN_PROGRESS=0 \
        AOS_CAMPAIGN_JOBS="${jobs}" AOS_CAMPAIGN_JSON=off \
        AOS_CAMPAIGN_JSON_CANONICAL="${dir}/resumed.json" \
        AOS_CAMPAIGN_RESUME="${dir}/ckpt" \
        "${bin}" > "${dir}/resumed.log"
    if ! cmp -s "${dir}/clean.json" "${dir}/resumed.json"; then
        echo "${name} (jobs=${jobs}): kill-and-resume canonical parity" \
             "FAILED" >&2
        diff "${dir}/clean.json" "${dir}/resumed.json" | head -40 >&2 ||
            true
        exit 1
    fi
    if ! grep -q 'resumed' "${dir}/resumed.log"; then
        echo "${name} (jobs=${jobs}): resumed run reported no restored" \
             "jobs" >&2
        exit 1
    fi
    echo "  ${name} (jobs=${jobs}): resume parity OK"
}
resume_check fig14 ./build/bench/fig14_exec_time 1 20000
resume_check fig14 ./build/bench/fig14_exec_time 4 20000
resume_check fault_matrix "${FAULT_BIN}" 4 20000
resume_check sim_throughput ./build/bench/sim_throughput 4 20000

echo "== [10/13] distributed fabric (worker processes, kill, resume) =="
# The campaign fabric (DESIGN.md §12): the same benches distributed
# over 4 spawned worker processes must emit canonical JSON
# byte-identical to the serial run, a SIGKILLed worker must only cost
# a reassignment, and a SIGKILLed *coordinator* must resume through
# AOS_CAMPAIGN_RESUME to the same bytes.
FABRIC_DIR="${SMOKE_DIR}/fabric"
mkdir -p "${FABRIC_DIR}"

# Serial references (canonical emission).
AOS_SIM_OPS=20000 AOS_CAMPAIGN_PROGRESS=0 AOS_CAMPAIGN_JOBS=1 \
    AOS_CAMPAIGN_JSON=off \
    AOS_CAMPAIGN_JSON_CANONICAL="${FABRIC_DIR}/smoke-serial.json" \
    ./build/bench/campaign_smoke > /dev/null
AOS_SIM_OPS=20000 AOS_CAMPAIGN_PROGRESS=0 AOS_CAMPAIGN_JOBS=1 \
    AOS_CAMPAIGN_JSON=off \
    AOS_CAMPAIGN_JSON_CANONICAL="${FABRIC_DIR}/fault-serial.json" \
    ./build/bench/fault_matrix > /dev/null

# 4-worker fabric run: byte parity with the serial reference.
AOS_SIM_OPS=20000 AOS_CAMPAIGN_PROGRESS=0 AOS_FABRIC_WORKERS=4 \
    AOS_CAMPAIGN_JSON=off \
    AOS_CAMPAIGN_JSON_CANONICAL="${FABRIC_DIR}/smoke-fabric.json" \
    ./build/bench/campaign_smoke > /dev/null
if ! cmp -s "${FABRIC_DIR}/smoke-serial.json" \
            "${FABRIC_DIR}/smoke-fabric.json"; then
    echo "fabric: campaign_smoke serial/distributed parity FAILED" >&2
    diff "${FABRIC_DIR}/smoke-serial.json" \
         "${FABRIC_DIR}/smoke-fabric.json" | head -40 >&2 || true
    exit 1
fi
echo "  campaign_smoke: 4-worker fabric parity OK"

# SIGKILL one worker process mid-campaign: the coordinator must
# reassign its job and still reproduce the reference bytes.
AOS_SIM_OPS=20000 AOS_CAMPAIGN_PROGRESS=0 AOS_FABRIC_WORKERS=4 \
    AOS_CAMPAIGN_JSON=off \
    AOS_CAMPAIGN_JSON_CANONICAL="${FABRIC_DIR}/fault-killworker.json" \
    ./build/bench/fault_matrix > /dev/null 2>&1 &
FABRIC_PID=$!
for _ in $(seq 1 100); do
    FABRIC_KID="$(pgrep -P "${FABRIC_PID}" | head -1 || true)"
    [ -n "${FABRIC_KID}" ] && break
    kill -0 "${FABRIC_PID}" 2>/dev/null || break
    sleep 0.05
done
sleep 0.3 # Let the victim pick up an assignment first.
[ -n "${FABRIC_KID:-}" ] && kill -9 "${FABRIC_KID}" 2>/dev/null || true
wait "${FABRIC_PID}"
if ! cmp -s "${FABRIC_DIR}/fault-serial.json" \
            "${FABRIC_DIR}/fault-killworker.json"; then
    echo "fabric: worker-SIGKILL parity FAILED" >&2
    exit 1
fi
echo "  fault_matrix: worker-SIGKILL reassignment parity OK"

# SIGKILL the coordinator once a shard holds a record, then resume the
# fabric run from the checkpoint: same bytes, no re-execution of the
# durable jobs.
FABRIC_CKPT="${FABRIC_DIR}/ckpt"
AOS_SIM_OPS=20000 AOS_CAMPAIGN_PROGRESS=0 AOS_FABRIC_WORKERS=4 \
    AOS_CAMPAIGN_JSON=off AOS_CAMPAIGN_RESUME="${FABRIC_CKPT}" \
    ./build/bench/fault_matrix > /dev/null 2>&1 &
FABRIC_PID=$!
for _ in $(seq 1 600); do
    if [ -n "$(find "${FABRIC_CKPT}" -name 'shard-*.log' -size +0c \
               2>/dev/null)" ]; then
        break
    fi
    kill -0 "${FABRIC_PID}" 2>/dev/null || break
    sleep 0.05
done
kill -9 "${FABRIC_PID}" 2>/dev/null || true
wait "${FABRIC_PID}" 2>/dev/null || true
AOS_SIM_OPS=20000 AOS_CAMPAIGN_PROGRESS=0 AOS_FABRIC_WORKERS=4 \
    AOS_CAMPAIGN_JSON=off AOS_CAMPAIGN_RESUME="${FABRIC_CKPT}" \
    AOS_CAMPAIGN_JSON_CANONICAL="${FABRIC_DIR}/fault-resumed.json" \
    ./build/bench/fault_matrix > "${FABRIC_DIR}/fault-resumed.log"
if ! cmp -s "${FABRIC_DIR}/fault-serial.json" \
            "${FABRIC_DIR}/fault-resumed.json"; then
    echo "fabric: coordinator-SIGKILL resume parity FAILED" >&2
    diff "${FABRIC_DIR}/fault-serial.json" \
         "${FABRIC_DIR}/fault-resumed.json" | head -40 >&2 || true
    exit 1
fi
if ! grep -q 'resumed' "${FABRIC_DIR}/fault-resumed.log"; then
    echo "fabric: resumed coordinator reported no restored jobs" >&2
    exit 1
fi
echo "  fault_matrix: coordinator-SIGKILL fabric resume parity OK"

# Re-run against the now-COMPLETE checkpoint with workers requested:
# nothing is pending, so no worker may be spawned and the coordinator
# must exit promptly instead of deadlocking on a child that is blocked
# waiting for a WELCOME (regression: wind-down listener drain).
if ! timeout 120 env AOS_SIM_OPS=20000 AOS_CAMPAIGN_PROGRESS=0 \
    AOS_FABRIC_WORKERS=4 AOS_CAMPAIGN_JSON=off \
    AOS_CAMPAIGN_RESUME="${FABRIC_CKPT}" \
    AOS_CAMPAIGN_JSON_CANONICAL="${FABRIC_DIR}/fault-complete.json" \
    ./build/bench/fault_matrix > /dev/null; then
    echo "fabric: complete-checkpoint fabric re-run hung or failed" >&2
    exit 1
fi
if ! cmp -s "${FABRIC_DIR}/fault-serial.json" \
            "${FABRIC_DIR}/fault-complete.json"; then
    echo "fabric: complete-checkpoint re-run parity FAILED" >&2
    exit 1
fi
echo "  fault_matrix: complete-checkpoint fabric re-run exits clean OK"

echo "== [11/13] chaos engine (fault injection + degradation audit) =="
# DESIGN.md §13: under a fixed AOS_CHAOS schedule every subsystem must
# either absorb the injected environment faults (retry/backoff) or
# abort cleanly — and whenever a campaign reports success its canonical
# JSON must be byte-identical to the chaos-free reference, because
# chaos is an execution-only knob like the worker count.
CHAOS_DIR="${SMOKE_DIR}/chaos"
mkdir -p "${CHAOS_DIR}"

# Checkpointed campaign under disk chaos (torn appends, failed fsyncs,
# ENOSPC): the retry-with-truncation discipline must reproduce the
# stage-10 serial reference bytes.
AOS_SIM_OPS=20000 AOS_CAMPAIGN_PROGRESS=0 AOS_CAMPAIGN_JOBS=4 \
    AOS_CHAOS="1337,12,disk" \
    AOS_CAMPAIGN_RESUME="${CHAOS_DIR}/ckpt" AOS_CAMPAIGN_JSON=off \
    AOS_CAMPAIGN_JSON_CANONICAL="${CHAOS_DIR}/smoke-chaos.json" \
    ./build/bench/campaign_smoke > /dev/null
if ! cmp -s "${FABRIC_DIR}/smoke-serial.json" \
            "${CHAOS_DIR}/smoke-chaos.json"; then
    echo "chaos: campaign_smoke disk-chaos parity FAILED" >&2
    diff "${FABRIC_DIR}/smoke-serial.json" \
         "${CHAOS_DIR}/smoke-chaos.json" | head -40 >&2 || true
    exit 1
fi
echo "  campaign_smoke: disk-chaos checkpointed parity OK"

# Distributed fabric under disk+net chaos (resets, flips, partial
# transfers): poisoned links cost evictions and respawns, never wrong
# bytes. The tightened heartbeat grace bounds eviction latency.
AOS_SIM_OPS=20000 AOS_CAMPAIGN_PROGRESS=0 AOS_FABRIC_WORKERS=4 \
    AOS_FABRIC_HEARTBEAT_GRACE=2 AOS_CHAOS="4242,8,disk+net" \
    AOS_CAMPAIGN_JSON=off \
    AOS_CAMPAIGN_JSON_CANONICAL="${CHAOS_DIR}/fault-chaos.json" \
    ./build/bench/fault_matrix > /dev/null
if ! cmp -s "${FABRIC_DIR}/fault-serial.json" \
            "${CHAOS_DIR}/fault-chaos.json"; then
    echo "chaos: fault_matrix fabric disk+net chaos parity FAILED" >&2
    diff "${FABRIC_DIR}/fault-serial.json" \
         "${CHAOS_DIR}/fault-chaos.json" | head -40 >&2 || true
    exit 1
fi
echo "  fault_matrix: 4-worker fabric disk+net chaos parity OK"

# The graceful-degradation audit itself: >= 500 scenarios, zero
# contract violations, and its own canonical JSON must not depend on
# the worker count (the audit audits itself).
AOS_CAMPAIGN_PROGRESS=0 AOS_CAMPAIGN_JOBS=1 AOS_CAMPAIGN_JSON=off \
    AOS_CAMPAIGN_JSON_CANONICAL="${CHAOS_DIR}/audit1.json" \
    ./build/bench/chaos_audit
AOS_CAMPAIGN_PROGRESS=0 AOS_CAMPAIGN_JOBS=4 AOS_CAMPAIGN_JSON=off \
    AOS_CAMPAIGN_JSON_CANONICAL="${CHAOS_DIR}/auditN.json" \
    ./build/bench/chaos_audit > /dev/null
if ! cmp -s "${CHAOS_DIR}/audit1.json" "${CHAOS_DIR}/auditN.json"; then
    echo "chaos: audit jobs=1 vs jobs=4 parity FAILED" >&2
    diff "${CHAOS_DIR}/audit1.json" "${CHAOS_DIR}/auditN.json" |
        head -40 >&2 || true
    exit 1
fi
echo "  chaos_audit: degradation audit + parity OK"

echo "== [12/13] lint =="
cmake --build --preset default --target lint

echo "== [13/13] multi-tenant scheduler (isolation audit + parity) =="
# DESIGN.md §15: the tenant_matrix harness itself exits non-zero unless
# the cross-tenant isolation audit holds over >= 500 scenarios (zero
# fingerprint mismatches, zero unprovoked violations, zero
# misattributed fault events) and the benign tenants of the
# adversarial matrix fleets logged zero violations. The wrapper adds
# the jobs=1 vs jobs=4 canonical byte-parity contract, and re-runs the
# adversarial sweep under the sanitizer build when available — fleets
# under attack must be UB-free, not just contained.
TENANT_DIR="${SMOKE_DIR}/tenant"
mkdir -p "${TENANT_DIR}"
AOS_CAMPAIGN_PROGRESS=0 AOS_CAMPAIGN_JOBS=1 AOS_CAMPAIGN_JSON=off \
    AOS_CAMPAIGN_JSON_CANONICAL="${TENANT_DIR}/tenant1.json" \
    ./build/bench/tenant_matrix > /dev/null
AOS_CAMPAIGN_PROGRESS=0 AOS_CAMPAIGN_JOBS=4 AOS_CAMPAIGN_JSON=off \
    AOS_CAMPAIGN_JSON_CANONICAL="${TENANT_DIR}/tenantN.json" \
    ./build/bench/tenant_matrix
grep -q '"schema": "aos-campaign-v1"' "${TENANT_DIR}/tenant1.json"
if ! cmp -s "${TENANT_DIR}/tenant1.json" "${TENANT_DIR}/tenantN.json"; then
    echo "tenant matrix: jobs=1 vs jobs=4 parity FAILED" >&2
    diff "${TENANT_DIR}/tenant1.json" "${TENANT_DIR}/tenantN.json" |
        head -40 >&2 || true
    exit 1
fi
echo "  tenant_matrix: isolation audit + parity OK"
if [ "${AOS_CHECK_SKIP_SANITIZE:-0}" != "1" ]; then
    AOS_CAMPAIGN_PROGRESS=0 AOS_CAMPAIGN_JOBS=4 AOS_CAMPAIGN_JSON=off \
        ./build-sanitize/bench/tenant_matrix > /dev/null
    echo "  tenant_matrix: adversarial fleets sanitizer-clean OK"
fi

echo "All checks passed."
