/**
 * @file
 * Tests for the paper's future-work extensions implemented here:
 * stack-object protection (SIII-D) and bounds narrowing (SVII-F).
 */

#include <gtest/gtest.h>

#include "core/aos_runtime.hh"

namespace aos::core {
namespace {

class ExtensionsTest : public ::testing::Test
{
  protected:
    AosRuntime rt;
    static constexpr Addr kFrame = 0x7ffff1000ull;
};

// ---- Stack protection ----

TEST_F(ExtensionsTest, StackObjectIsSignedAndChecked)
{
    const Addr buf = rt.protectStack(kFrame, 128);
    ASSERT_NE(buf, 0u);
    EXPECT_TRUE(rt.isSigned(buf));
    EXPECT_EQ(rt.load(buf), Status::kOk);
    EXPECT_EQ(rt.store(buf + 120), Status::kOk);
    EXPECT_EQ(rt.load(buf + 128), Status::kBoundsViolation);
    EXPECT_EQ(rt.load(buf - 8), Status::kBoundsViolation);
}

TEST_F(ExtensionsTest, StackSmashingBlocked)
{
    // Classic stack buffer overflow: a 64-byte buffer below a saved
    // return-address slot.
    const Addr buf = rt.protectStack(kFrame, 64);
    for (u64 off = 64; off <= 256; off += 8)
        EXPECT_EQ(rt.store(buf + off), Status::kBoundsViolation)
            << "offset " << off;
}

TEST_F(ExtensionsTest, UnprotectEndsChecValidity)
{
    const Addr buf = rt.protectStack(kFrame, 64);
    EXPECT_EQ(rt.unprotectStack(buf), Status::kOk);
    // Use after scope exit: the dangling stack pointer fails.
    EXPECT_EQ(rt.load(buf), Status::kBoundsViolation);
    // Double unprotect caught like a double free.
    EXPECT_EQ(rt.unprotectStack(buf), Status::kDoubleFree);
}

TEST_F(ExtensionsTest, StackAndHeapCoexist)
{
    const Addr heap_obj = rt.malloc(64);
    const Addr stack_obj = rt.protectStack(kFrame, 64);
    EXPECT_EQ(rt.load(heap_obj + 8), Status::kOk);
    EXPECT_EQ(rt.load(stack_obj + 8), Status::kOk);
    EXPECT_EQ(rt.free(heap_obj), Status::kOk);
    EXPECT_EQ(rt.unprotectStack(stack_obj), Status::kOk);
    EXPECT_EQ(rt.stats().stackProtects, 1u);
}

TEST_F(ExtensionsTest, StackRejectsDegenerateSizes)
{
    EXPECT_EQ(rt.protectStack(kFrame, 0), 0u);
    EXPECT_EQ(rt.protectStack(kFrame, u64{1} << 33), 0u);
}

// ---- Bounds narrowing ----

TEST_F(ExtensionsTest, NarrowedFieldChecksItsOwnBounds)
{
    // struct { char name[16]; void (*cb)(); } at a 32-byte object.
    const Addr obj = rt.malloc(32);
    const Addr name = rt.narrow(obj, 0, 16);
    ASSERT_NE(name, 0u);
    EXPECT_EQ(rt.store(name + 8), Status::kOk);
    // The intra-object overflow the base mechanism cannot catch
    // (security_test asserts that) IS caught through the narrowed
    // pointer.
    EXPECT_EQ(rt.store(name + 24), Status::kBoundsViolation);
}

TEST_F(ExtensionsTest, ParentPointerStillCoversWholeObject)
{
    const Addr obj = rt.malloc(32);
    const Addr name = rt.narrow(obj, 0, 16);
    (void)name;
    EXPECT_EQ(rt.store(obj + 24), Status::kOk)
        << "narrowing must not restrict the parent pointer";
}

TEST_F(ExtensionsTest, NarrowValidatesAgainstParentBounds)
{
    const Addr obj = rt.malloc(32);
    EXPECT_EQ(rt.narrow(obj, 24, 64), 0u)
        << "field extending past the object must be rejected";
    EXPECT_EQ(rt.narrow(obj, 0, 0), 0u);
    EXPECT_EQ(rt.narrow(rt.strip(obj), 0, 8), 0u)
        << "unsigned parent cannot be narrowed";
}

TEST_F(ExtensionsTest, WidenReleasesSubObject)
{
    const Addr obj = rt.malloc(64);
    const Addr field = rt.narrow(obj, 16, 16);
    ASSERT_NE(field, 0u);
    EXPECT_EQ(rt.widen(field), Status::kOk);
    EXPECT_EQ(rt.load(field), Status::kBoundsViolation);
    EXPECT_EQ(rt.widen(field), Status::kDoubleFree);
}

TEST_F(ExtensionsTest, NarrowKeepsSixteenByteAlignment)
{
    // Unaligned field offsets widen down to the containing 16-byte
    // granule (the compressed-bounds format requires it).
    const Addr obj = rt.malloc(64);
    const Addr field = rt.narrow(obj, 20, 8);
    ASSERT_NE(field, 0u);
    EXPECT_EQ(rt.strip(field) & 15, 0u);
    // The granule containing [20, 28) is [16, 28): both check.
    EXPECT_EQ(rt.load(field + 4), Status::kOk);
    EXPECT_EQ(rt.load(field + 16), Status::kBoundsViolation);
}

} // namespace
} // namespace aos::core
