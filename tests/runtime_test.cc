/**
 * @file
 * Tests for AosRuntime, the functional protection API.
 */

#include <gtest/gtest.h>

#include "core/aos_runtime.hh"

namespace aos::core {
namespace {

class RuntimeTest : public ::testing::Test
{
  protected:
    AosRuntime rt;
};

TEST_F(RuntimeTest, MallocReturnsSignedPointer)
{
    const Addr p = rt.malloc(64);
    ASSERT_NE(p, 0u);
    EXPECT_TRUE(rt.isSigned(p));
    EXPECT_NE(rt.strip(p), p);
    EXPECT_EQ(rt.strip(p) & 15, 0u);
}

TEST_F(RuntimeTest, InBoundsAccessesPass)
{
    const Addr p = rt.malloc(100);
    EXPECT_EQ(rt.load(p), Status::kOk);
    EXPECT_EQ(rt.load(p + 50), Status::kOk);
    EXPECT_EQ(rt.store(p + 99), Status::kOk);
    EXPECT_EQ(rt.checkRange(p, 100), Status::kOk);
}

TEST_F(RuntimeTest, OutOfBoundsDetected)
{
    const Addr p = rt.malloc(100);
    EXPECT_EQ(rt.load(p + 100), Status::kBoundsViolation);
    EXPECT_EQ(rt.store(p + 200), Status::kBoundsViolation);
    EXPECT_EQ(rt.load(p - 8), Status::kBoundsViolation);
    EXPECT_EQ(rt.checkRange(p + 96, 8), Status::kBoundsViolation);
    EXPECT_EQ(rt.stats().boundsViolations, 4u);
}

TEST_F(RuntimeTest, UnsignedAccessesAreNotChecked)
{
    // Stack/global accesses carry no PAC and pass through.
    EXPECT_EQ(rt.load(0x00601000), Status::kOk);
    EXPECT_EQ(rt.stats().uncheckedAccesses, 1u);
    EXPECT_EQ(rt.stats().checkedAccesses, 0u);
}

TEST_F(RuntimeTest, UseAfterFreeDetected)
{
    const Addr p = rt.malloc(64);
    ASSERT_EQ(rt.free(p), Status::kOk);
    EXPECT_EQ(rt.load(p), Status::kBoundsViolation);
    EXPECT_EQ(rt.classify(p), ViolationClass::kTemporal);
}

TEST_F(RuntimeTest, DoubleFreeDetected)
{
    const Addr p = rt.malloc(64);
    ASSERT_EQ(rt.free(p), Status::kOk);
    EXPECT_EQ(rt.free(p), Status::kDoubleFree);
    EXPECT_EQ(rt.stats().doubleFrees, 1u);
}

TEST_F(RuntimeTest, FreeOfUnsignedPointerRejected)
{
    rt.malloc(64);
    EXPECT_EQ(rt.free(0x00601000), Status::kInvalidFree);
    EXPECT_EQ(rt.stats().invalidFrees, 1u);
}

TEST_F(RuntimeTest, SpatialOverflowIntoNeighbourDetectedAndClassified)
{
    const Addr a = rt.malloc(64);
    const Addr b = rt.malloc(64);
    // Overflowing past a's chunk (64 B payload + 16 B header) lands in
    // b's payload: a non-adjacent-proof spatial violation under a's
    // PAC.
    const Addr oob = a + 80;
    ASSERT_EQ(rt.strip(oob), rt.strip(b));
    EXPECT_EQ(rt.load(oob), Status::kBoundsViolation);
    EXPECT_EQ(rt.classify(oob), ViolationClass::kSpatial);
}

TEST_F(RuntimeTest, InteriorPointerArithmeticKeepsProtection)
{
    const Addr p = rt.malloc(256);
    const Addr elem = p + 128; // ptr + offset preserves PAC/AHC
    EXPECT_TRUE(rt.isSigned(elem));
    EXPECT_EQ(rt.load(elem), Status::kOk);
    EXPECT_EQ(rt.load(elem + 128), Status::kBoundsViolation);
}

TEST_F(RuntimeTest, AutmAuthentication)
{
    const Addr p = rt.malloc(64);
    EXPECT_EQ(rt.authenticate(p), Status::kOk);
    EXPECT_EQ(rt.authenticate(rt.strip(p)), Status::kAuthFailure);
}

TEST_F(RuntimeTest, ManyObjectsIndependentBounds)
{
    std::vector<Addr> ptrs;
    for (int i = 0; i < 1000; ++i)
        ptrs.push_back(rt.malloc(32 + (i % 8) * 16));
    for (size_t i = 0; i < ptrs.size(); ++i) {
        ASSERT_EQ(rt.load(ptrs[i]), Status::kOk) << i;
        ASSERT_EQ(rt.load(ptrs[i] + 31), Status::kOk) << i;
    }
    // Free every other object; the survivors must still check.
    for (size_t i = 0; i < ptrs.size(); i += 2)
        ASSERT_EQ(rt.free(ptrs[i]), Status::kOk);
    for (size_t i = 1; i < ptrs.size(); i += 2)
        ASSERT_EQ(rt.load(ptrs[i]), Status::kOk) << i;
    for (size_t i = 0; i < ptrs.size(); i += 2)
        ASSERT_EQ(rt.load(ptrs[i]), Status::kBoundsViolation) << i;
}

TEST_F(RuntimeTest, HbtResizesUnderPacPressure)
{
    // With a tiny 4-bit PAC space, a few hundred live objects overflow
    // rows and force gradual resizing — transparently to the caller.
    RuntimeConfig config;
    config.pacBits = 4;
    AosRuntime small(config);
    std::vector<Addr> ptrs;
    for (int i = 0; i < 400; ++i) {
        const Addr p = small.malloc(48);
        ASSERT_NE(p, 0u);
        ptrs.push_back(p);
    }
    EXPECT_GT(small.stats().hbtResizes, 0u);
    for (const Addr p : ptrs)
        ASSERT_EQ(small.load(p + 8), Status::kOk);
    for (const Addr p : ptrs)
        ASSERT_EQ(small.free(p), Status::kOk);
}

TEST_F(RuntimeTest, TerminatePolicyThrows)
{
    RuntimeConfig config;
    config.policy = os::FaultPolicy::kTerminate;
    AosRuntime strict(config);
    const Addr p = strict.malloc(64);
    EXPECT_THROW(strict.load(p + 1000), os::ProcessTerminated);
}

TEST_F(RuntimeTest, ViolationsLoggedInOsModel)
{
    const Addr p = rt.malloc(64);
    rt.load(p + 1000);
    rt.load(p + 2000);
    EXPECT_EQ(rt.osModel().violations().size(), 2u);
}

TEST_F(RuntimeTest, StatsAccumulate)
{
    const Addr p = rt.malloc(64);
    rt.load(p);
    rt.free(p);
    EXPECT_EQ(rt.stats().mallocs, 1u);
    EXPECT_EQ(rt.stats().frees, 1u);
    EXPECT_EQ(rt.stats().checkedAccesses, 1u);
}

TEST_F(RuntimeTest, OutOfMemoryReturnsNull)
{
    // The default simulated heap is 8 GB; a single absurd request
    // fails cleanly.
    EXPECT_EQ(rt.malloc(u64{1} << 40), 0u);
}

} // namespace
} // namespace aos::core
