/**
 * @file
 * Unit tests for common/bitfield.hh.
 */

#include <gtest/gtest.h>

#include "common/bitfield.hh"

namespace aos {
namespace {

TEST(Mask, Widths)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(8), 0xffu);
    EXPECT_EQ(mask(32), 0xffffffffull);
    EXPECT_EQ(mask(63), 0x7fffffffffffffffull);
    EXPECT_EQ(mask(64), ~u64{0});
}

TEST(Bits, ExtractRanges)
{
    const u64 v = 0x0123456789abcdefull;
    EXPECT_EQ(bits(v, 3, 0), 0xfu);
    EXPECT_EQ(bits(v, 7, 4), 0xeu);
    EXPECT_EQ(bits(v, 63, 60), 0x0u);
    EXPECT_EQ(bits(v, 59, 56), 0x1u);
    EXPECT_EQ(bits(v, 31, 0), 0x89abcdefull);
    EXPECT_EQ(bits(v, 63, 32), 0x01234567ull);
    EXPECT_EQ(bits(v, 63, 0), v);
}

TEST(Bits, SingleBit)
{
    EXPECT_EQ(bits(u64{0x8}, 3), 1u);
    EXPECT_EQ(bits(u64{0x8}, 2), 0u);
    EXPECT_EQ(bits(~u64{0}, 63), 1u);
}

TEST(InsertBits, RoundTripsWithBits)
{
    u64 v = 0;
    v = insertBits(v, 15, 8, 0xab);
    EXPECT_EQ(v, 0xab00u);
    EXPECT_EQ(bits(v, 15, 8), 0xabu);
    // Overwrite with a field wider than the slot: truncated.
    v = insertBits(v, 11, 8, 0xff);
    EXPECT_EQ(bits(v, 15, 8), 0xafu);
    // Other bits untouched.
    v = insertBits(0xffffffffffffffffull, 31, 16, 0);
    EXPECT_EQ(v, 0xffffffff0000ffffull);
}

TEST(SignExtend, Basics)
{
    EXPECT_EQ(signExtend(0x80, 8), 0xffffffffffffff80ull);
    EXPECT_EQ(signExtend(0x7f, 8), 0x7full);
    EXPECT_EQ(signExtend(0xffff, 16), ~u64{0});
    EXPECT_EQ(signExtend(0x1, 64), 0x1u);
}

TEST(Rotl4, AllRotations)
{
    EXPECT_EQ(rotl4(0b0001, 0), 0b0001u);
    EXPECT_EQ(rotl4(0b0001, 1), 0b0010u);
    EXPECT_EQ(rotl4(0b0001, 2), 0b0100u);
    EXPECT_EQ(rotl4(0b0001, 3), 0b1000u);
    EXPECT_EQ(rotl4(0b1000, 1), 0b0001u);
    EXPECT_EQ(rotl4(0b1001, 1), 0b0011u);
    // Rotation count wraps mod 4.
    EXPECT_EQ(rotl4(0b0010, 4), 0b0010u);
    EXPECT_EQ(rotl4(0b0010, 5), 0b0100u);
}

TEST(PowerOf2, Predicate)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(u64{1} << 63));
    EXPECT_FALSE(isPowerOf2((u64{1} << 63) + 1));
}

TEST(Log2i, PowersOfTwo)
{
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2), 1u);
    EXPECT_EQ(log2i(64), 6u);
    EXPECT_EQ(log2i(u64{1} << 40), 40u);
}

TEST(Rounding, UpAndDown)
{
    EXPECT_EQ(roundUp(0, 16), 0u);
    EXPECT_EQ(roundUp(1, 16), 16u);
    EXPECT_EQ(roundUp(16, 16), 16u);
    EXPECT_EQ(roundUp(17, 16), 32u);
    EXPECT_EQ(roundDown(17, 16), 16u);
    EXPECT_EQ(roundDown(15, 16), 0u);
}

TEST(Cells, MsbFirstOrdering)
{
    const u64 v = 0x0123456789abcdefull;
    EXPECT_EQ(getCell(v, 0), 0x0u);
    EXPECT_EQ(getCell(v, 1), 0x1u);
    EXPECT_EQ(getCell(v, 15), 0xfu);
    EXPECT_EQ(setCell(0, 0, 0xf), 0xf000000000000000ull);
    EXPECT_EQ(setCell(0, 15, 0xf), 0xfull);
    // Round trip every cell.
    u64 w = 0;
    for (unsigned i = 0; i < 16; ++i)
        w = setCell(w, i, getCell(v, i));
    EXPECT_EQ(w, v);
}

class BitRangeTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BitRangeTest, InsertThenExtractIsIdentity)
{
    const unsigned lo = GetParam();
    const unsigned hi = lo + 7;
    const u64 field = 0x5a;
    const u64 v = insertBits(0, hi, lo, field);
    EXPECT_EQ(bits(v, hi, lo), field);
    // Nothing outside the range.
    EXPECT_EQ(v & ~(mask(8) << lo), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBytePositions, BitRangeTest,
                         ::testing::Values(0u, 4u, 8u, 16u, 24u, 32u, 40u,
                                           48u, 56u));

} // namespace
} // namespace aos
