/**
 * @file
 * Tests for the experiment-campaign engine (src/campaign): determinism
 * parity across worker counts, exception capture, bounded retry,
 * wall-clock timeout classification, reducers, aggregation, and the
 * JSON emission contract.
 */

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "campaign/campaign.hh"
#include "campaign/json.hh"
#include "common/logging.hh"

namespace aos::campaign {
namespace {

using baselines::Mechanism;

constexpr u64 kTinyOps = 3'000;

/** A body job returning a RunResult with a chosen cycle count. */
Job
bodyJob(const std::string &name, u64 cycles)
{
    Job job;
    job.name = name;
    job.body = [cycles] {
        core::RunResult r;
        r.workload = "body";
        r.core.cycles = cycles;
        r.core.committed = cycles;
        return r;
    };
    return job;
}

/** The two cheapest SPEC profiles keep simulation tests fast. */
Campaign
tinySimCampaign(unsigned workers)
{
    CampaignOptions options;
    options.name = "parity";
    options.workers = workers;
    Campaign c(options);
    for (const char *name : {"bzip2", "mcf"}) {
        const auto &profile = workloads::profileByName(name);
        c.addConfig(profile, Mechanism::kBaseline, kTinyOps);
        c.addConfig(profile, Mechanism::kAos, kTinyOps);
        c.addConfig(profile, Mechanism::kPaAos, kTinyOps, {}, /*seed=*/7);
    }
    return c;
}

TEST(CampaignDeterminism, SerialAndParallelRunsAreBitIdentical)
{
    setQuiet(true);
    CampaignResult serial = tinySimCampaign(1).run();
    const unsigned hw =
        std::max(4u, std::thread::hardware_concurrency());
    CampaignResult parallel = tinySimCampaign(hw).run();

    ASSERT_TRUE(serial.allOk());
    ASSERT_TRUE(parallel.allOk());
    ASSERT_EQ(serial.jobs.size(), parallel.jobs.size());
    for (size_t i = 0; i < serial.jobs.size(); ++i) {
        SCOPED_TRACE(serial.jobs[i].name);
        EXPECT_EQ(serial.jobs[i].run.core.cycles,
                  parallel.jobs[i].run.core.cycles);
        EXPECT_EQ(serial.jobs[i].run.core.committed,
                  parallel.jobs[i].run.core.committed);
        EXPECT_EQ(serial.jobs[i].run.networkTraffic,
                  parallel.jobs[i].run.networkTraffic);
    }
    // The canonical JSON documents must be byte-equal.
    EXPECT_EQ(serial.json(/*includeTimings=*/false),
              parallel.json(/*includeTimings=*/false));
}

TEST(CampaignDeterminism, SeedChangesTheRun)
{
    setQuiet(true);
    const auto &profile = workloads::profileByName("bzip2");
    Campaign c(CampaignOptions{});
    c.addConfig(profile, Mechanism::kAos, kTinyOps, {}, /*seed=*/0);
    c.addConfig(profile, Mechanism::kAos, kTinyOps, {}, /*seed=*/1);
    CampaignResult r = c.run();
    ASSERT_TRUE(r.allOk());
    EXPECT_NE(r.jobs[0].run.core.cycles, r.jobs[1].run.core.cycles);
}

TEST(CampaignRobustness, ExceptionIsCapturedAndSweepContinues)
{
    setQuiet(true);
    CampaignOptions options;
    options.workers = 2;
    Campaign c(options);
    Job bad;
    bad.name = "bad";
    bad.body = []() -> core::RunResult {
        throw std::runtime_error("deliberate failure");
    };
    c.add(std::move(bad));
    c.add(bodyJob("good", 100));

    CampaignResult r = c.run();
    EXPECT_FALSE(r.allOk());
    EXPECT_EQ(r.count(JobStatus::kFailed), 1u);
    EXPECT_EQ(r.count(JobStatus::kOk), 1u);
    EXPECT_EQ(r.jobs[0].status, JobStatus::kFailed);
    EXPECT_EQ(r.jobs[0].error, "deliberate failure");
    EXPECT_TRUE(r.jobs[1].ok());
}

TEST(CampaignRobustness, BoundedRetryRecoversFlakyJob)
{
    setQuiet(true);
    auto attempts = std::make_shared<std::atomic<int>>(0);
    CampaignOptions options;
    options.maxAttempts = 3;
    Campaign c(options);
    Job flaky;
    flaky.name = "flaky";
    flaky.body = [attempts]() -> core::RunResult {
        if (attempts->fetch_add(1) == 0)
            throw std::runtime_error("transient");
        core::RunResult r;
        r.core.cycles = 42;
        return r;
    };
    c.add(std::move(flaky));

    CampaignResult r = c.run();
    ASSERT_TRUE(r.allOk());
    EXPECT_EQ(r.jobs[0].attempts, 2u);
    EXPECT_EQ(r.jobs[0].run.core.cycles, 42u);
    EXPECT_TRUE(r.jobs[0].error.empty());
}

TEST(CampaignRobustness, PersistentFailureExhaustsAttempts)
{
    setQuiet(true);
    CampaignOptions options;
    options.maxAttempts = 3;
    Campaign c(options);
    Job bad;
    bad.name = "always-bad";
    bad.body = []() -> core::RunResult {
        throw std::logic_error("permanent");
    };
    c.add(std::move(bad));

    CampaignResult r = c.run();
    EXPECT_EQ(r.jobs[0].status, JobStatus::kFailed);
    EXPECT_EQ(r.jobs[0].attempts, 3u);
    EXPECT_EQ(r.jobs[0].error, "permanent");
}

TEST(CampaignRobustness, OverBudgetAttemptClassifiedAsTimeout)
{
    // A plain body never polls the CancelToken, so this exercises the
    // post-hoc fallback classification.
    setQuiet(true);
    CampaignOptions options;
    options.timeoutSec = 0.005;
    options.maxAttempts = 3; // Timeouts must NOT retry.
    Campaign c(options);
    Job slow;
    slow.name = "slow";
    slow.body = []() -> core::RunResult {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        return core::RunResult();
    };
    c.add(std::move(slow));

    CampaignResult r = c.run();
    EXPECT_EQ(r.jobs[0].status, JobStatus::kTimeout);
    EXPECT_EQ(r.jobs[0].attempts, 1u);
    EXPECT_NE(r.jobs[0].error.find("wall-clock budget"),
              std::string::npos);
}

TEST(CampaignRobustness, SimulationJobIsPreemptedByTimeout)
{
    // A real simulation polls the token at its cancellation points, so
    // an over-budget job is preempted cooperatively — recorded as
    // kTimeout with its partial wall time long before the full window
    // would have finished, and never retried.
    setQuiet(true);
    CampaignOptions options;
    options.timeoutSec = 0.02;
    options.maxAttempts = 3;
    Campaign c(options);
    // A window this large takes far longer than 20ms uncancelled.
    c.addConfig(workloads::profileByName("bzip2"),
                Mechanism::kAos, 400'000'000);

    CampaignResult r = c.run();
    EXPECT_EQ(r.jobs[0].status, JobStatus::kTimeout);
    EXPECT_EQ(r.jobs[0].attempts, 1u);
    EXPECT_NE(r.jobs[0].error.find("preempted"), std::string::npos);
    // Preemption must land within one op-quantum of the deadline, not
    // after the whole window; 1s is orders of magnitude of slack.
    EXPECT_LT(r.jobs[0].wallMs, 1000.0);
}

TEST(CampaignRobustness, CancellableBodyObservesShutdown)
{
    setQuiet(true);
    CancelToken shutdown;
    CampaignOptions options;
    options.workers = 1;
    options.cancel = &shutdown;
    Campaign c(options);
    Job first;
    first.name = "trips-shutdown";
    first.cancellableBody =
        [&shutdown](const CancelToken &token) -> core::RunResult {
        shutdown.requestCancel();
        token.throwIfCancelled(); // Parent trip propagates here.
        return core::RunResult();
    };
    c.add(std::move(first));
    c.add(bodyJob("never-starts", 1));

    CampaignResult r = c.run();
    EXPECT_TRUE(r.interrupted);
    EXPECT_EQ(r.jobs[0].status, JobStatus::kCancelled);
    EXPECT_NE(r.jobs[0].error.find("shutdown"), std::string::npos);
    // The queued job is skipped, not failed: it stays pending for a
    // checkpoint resume.
    EXPECT_EQ(r.jobs[1].status, JobStatus::kPending);
    EXPECT_EQ(r.executedJobs, 0u);
}

TEST(CampaignPool, ManyJobsAllRunExactlyOnce)
{
    setQuiet(true);
    auto runs = std::make_shared<std::atomic<int>>(0);
    CampaignOptions options;
    options.workers = 4;
    Campaign c(options);
    constexpr int kJobs = 64;
    for (int i = 0; i < kJobs; ++i) {
        Job job;
        job.name = csprintf("job%d", i);
        job.body = [runs, i] {
            runs->fetch_add(1);
            core::RunResult r;
            r.core.cycles = static_cast<u64>(i);
            return r;
        };
        c.add(std::move(job));
    }
    CampaignResult r = c.run();
    ASSERT_TRUE(r.allOk());
    EXPECT_EQ(runs->load(), kJobs);
    // Results are in submission order regardless of stealing.
    for (int i = 0; i < kJobs; ++i)
        EXPECT_EQ(r.jobs[i].run.core.cycles, static_cast<u64>(i));
}

TEST(CampaignReducers, NamedRollupsOverStats)
{
    setQuiet(true);
    Campaign c(CampaignOptions{});
    c.add(bodyJob("a", 100));
    c.add(bodyJob("b", 400));
    c.add(bodyJob("c", 900));
    c.addReducer({"sum_cycles", ReduceOp::kSum, "cycles", nullptr});
    c.addReducer({"max_cycles", ReduceOp::kMax, "cycles", nullptr});
    c.addReducer({"min_cycles", ReduceOp::kMin, "cycles", nullptr});
    c.addReducer({"mean_cycles", ReduceOp::kMean, "cycles", nullptr});
    c.addReducer({"geo_cycles", ReduceOp::kGeomean, "cycles", nullptr});
    c.addReducer({"filtered", ReduceOp::kSum, "cycles",
                  [](const JobResult &j) { return j.name != "b"; }});

    CampaignResult r = c.run();
    ASSERT_EQ(r.reducers.size(), 6u);
    EXPECT_DOUBLE_EQ(r.reducers[0].value, 1400.0);
    EXPECT_DOUBLE_EQ(r.reducers[1].value, 900.0);
    EXPECT_DOUBLE_EQ(r.reducers[2].value, 100.0);
    EXPECT_NEAR(r.reducers[3].value, 1400.0 / 3, 1e-9);
    EXPECT_NEAR(r.reducers[4].value,
                std::cbrt(100.0 * 400.0 * 900.0), 1e-6);
    EXPECT_DOUBLE_EQ(r.reducers[5].value, 1000.0);
    EXPECT_EQ(r.reducers[5].count, 2u);

    // Harness-injected derived stats feed recomputation.
    for (auto &job : r.jobs)
        job.stats.scalar("doubled") = 2 * job.stats.value("cycles");
    computeReducers(r, {{"sum_doubled", ReduceOp::kSum, "doubled",
                         nullptr}});
    ASSERT_EQ(r.reducers.size(), 1u);
    EXPECT_DOUBLE_EQ(r.reducers[0].value, 2800.0);
}

TEST(CampaignAggregation, MergedStatSetSumsOkJobs)
{
    setQuiet(true);
    Campaign c(CampaignOptions{});
    c.add(bodyJob("a", 10));
    c.add(bodyJob("b", 20));
    Job bad;
    bad.name = "bad";
    bad.body = []() -> core::RunResult {
        throw std::runtime_error("nope");
    };
    c.add(std::move(bad));

    CampaignResult r = c.run();
    // Failed jobs contribute nothing to the rollup.
    EXPECT_DOUBLE_EQ(r.merged.value("cycles"), 30.0);
    EXPECT_DOUBLE_EQ(r.merged.value("committed_ops"), 30.0);
}

TEST(CampaignJson, CanonicalDocumentOmitsTimingFields)
{
    setQuiet(true);
    Campaign c(CampaignOptions{});
    c.add(bodyJob("only", 5));
    CampaignResult r = c.run();

    const std::string full = r.json(true);
    const std::string canonical = r.json(false);
    EXPECT_NE(full.find("\"schema\": \"aos-campaign-v1\""),
              std::string::npos);
    EXPECT_NE(full.find("\"wall_ms\""), std::string::npos);
    EXPECT_NE(full.find("\"workers\""), std::string::npos);
    EXPECT_EQ(canonical.find("\"wall_ms\""), std::string::npos);
    EXPECT_EQ(canonical.find("\"workers\""), std::string::npos);
    EXPECT_EQ(canonical.find("\"total_wall_ms\""), std::string::npos);
    EXPECT_NE(canonical.find("\"only\""), std::string::npos);
    EXPECT_NE(canonical.find("\"reducers\""), std::string::npos);
}

TEST(CampaignJson, ErrorsAndStatusAreEmitted)
{
    setQuiet(true);
    Campaign c(CampaignOptions{});
    Job bad;
    bad.name = "bad";
    bad.body = []() -> core::RunResult {
        throw std::runtime_error("json \"quoted\" message");
    };
    c.add(std::move(bad));
    CampaignResult r = c.run();
    const std::string doc = r.json(false);
    EXPECT_NE(doc.find("\"status\": \"failed\""), std::string::npos);
    EXPECT_NE(doc.find("json \\\"quoted\\\" message"),
              std::string::npos);
}

TEST(CampaignMisc, FindAndStatusNames)
{
    setQuiet(true);
    Campaign c(CampaignOptions{});
    c.add(bodyJob("alpha", 1));
    CampaignResult r = c.run();
    ASSERT_NE(r.find("alpha"), nullptr);
    EXPECT_EQ(r.find("alpha")->run.core.cycles, 1u);
    EXPECT_EQ(r.find("missing"), nullptr);
    EXPECT_STREQ(jobStatusName(JobStatus::kOk), "ok");
    EXPECT_STREQ(jobStatusName(JobStatus::kTimeout), "timeout");
    EXPECT_STREQ(reduceOpName(ReduceOp::kGeomean), "geomean");
}

TEST(CampaignMisc, WorkersFromEnvParsesOverride)
{
    ::setenv("AOS_CAMPAIGN_JOBS", "6", 1);
    EXPECT_EQ(workersFromEnv(2), 6u);
    ::setenv("AOS_CAMPAIGN_JOBS", "0", 1);
    EXPECT_EQ(workersFromEnv(2), 2u);
    ::unsetenv("AOS_CAMPAIGN_JOBS");
    EXPECT_EQ(workersFromEnv(3), 3u);
}

TEST(CampaignMiscDeathTest, WorkersFromEnvRejectsGarbage)
{
    // A typo'd override used to fall back silently — the sweep would
    // run with a worker count the user never asked for. Now it is a
    // fatal diagnostic naming the variable.
    ::setenv("AOS_CAMPAIGN_JOBS", "garbage", 1);
    EXPECT_DEATH(workersFromEnv(2), "AOS_CAMPAIGN_JOBS");
    ::setenv("AOS_CAMPAIGN_JOBS", "4x", 1);
    EXPECT_DEATH(workersFromEnv(2), "AOS_CAMPAIGN_JOBS");
    ::setenv("AOS_CAMPAIGN_JOBS", "-3", 1);
    EXPECT_DEATH(workersFromEnv(2), "AOS_CAMPAIGN_JOBS");
    ::unsetenv("AOS_CAMPAIGN_JOBS");
}

TEST(CampaignJson, NonFiniteStatsEmitAsNull)
{
    // Harness-injected derived stats can go non-finite (a 0/0
    // normalization, a log of zero). JSON has no nan/inf tokens, so
    // they must emit as null — not as unparseable bare words.
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
    EXPECT_EQ(jsonNumber(HUGE_VAL), "null");
    EXPECT_EQ(jsonNumber(-HUGE_VAL), "null");

    setQuiet(true);
    Campaign c(CampaignOptions{});
    c.add(bodyJob("finite", 10));
    CampaignResult r = c.run();
    r.jobs[0].stats.scalar("nan_stat") = std::nan("");
    r.jobs[0].stats.scalar("pos_inf_stat") = HUGE_VAL;
    r.jobs[0].stats.scalar("neg_inf_stat") = -HUGE_VAL;
    const std::string doc = r.json(false);
    EXPECT_NE(doc.find("\"nan_stat\": null"), std::string::npos);
    EXPECT_NE(doc.find("\"pos_inf_stat\": null"), std::string::npos);
    EXPECT_NE(doc.find("\"neg_inf_stat\": null"), std::string::npos);
    EXPECT_EQ(doc.find(": nan"), std::string::npos);
    EXPECT_EQ(doc.find(": inf"), std::string::npos);
    EXPECT_EQ(doc.find(": -inf"), std::string::npos);
}

TEST(CampaignJsonValue, WritesDeterministicNumbers)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(42.0), "42");
    EXPECT_EQ(jsonNumber(-7.0), "-7");
    EXPECT_EQ(jsonNumber(1.5), "1.5");
    EXPECT_EQ(jsonQuote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");

    JsonValue obj = JsonValue::object();
    obj.set("x", 1).set("y", "two");
    JsonValue arr = JsonValue::array();
    arr.push(true).push(JsonValue());
    obj.set("z", std::move(arr));
    EXPECT_EQ(obj.str(),
              "{\n  \"x\": 1,\n  \"y\": \"two\",\n  \"z\": [\n    true,"
              "\n    null\n  ]\n}");
}

} // namespace
} // namespace aos::campaign
