/**
 * @file
 * Unit and property tests for the QARMA-64 block cipher.
 *
 * Offline cross-validation against the published test vectors was not
 * possible in this environment; instead the implementation is pinned
 * by (a) exhaustive structural properties — every layer inverts, the
 * MixColumns matrix is an involution, encryption round-trips for all
 * nine specified instances — and (b) regression vectors produced by
 * this implementation with the paper's key/tweak material, so any
 * future change to the cipher is caught.
 */

#include <set>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "qarma/qarma64.hh"

namespace aos::qarma {
namespace {

// The paper's PAC study material (SVI): K = w0 || k0, context = tweak.
constexpr Key128 kPaperKey{0x84be85ce9804e94bull, 0xec2802d4e0a488e9ull};
constexpr u64 kPaperTweak = 0x477d469dec0b8762ull;
constexpr u64 kPlain = 0xfb623599da6e8127ull;

TEST(Qarma64Layers, ShuffleCellsInverts)
{
    Rng rng(1);
    for (int i = 0; i < 256; ++i) {
        const u64 x = rng.next();
        EXPECT_EQ(Qarma64::shuffleCellsInv(Qarma64::shuffleCells(x)), x);
        EXPECT_EQ(Qarma64::shuffleCells(Qarma64::shuffleCellsInv(x)), x);
    }
}

TEST(Qarma64Layers, ShuffleCellsIsAPermutationOfCells)
{
    // Each input nibble value must survive (multiset preserved).
    const u64 x = 0x0123456789abcdefull;
    const u64 y = Qarma64::shuffleCells(x);
    std::multiset<u64> in, out;
    for (unsigned i = 0; i < 16; ++i) {
        in.insert((x >> (4 * i)) & 0xf);
        out.insert((y >> (4 * i)) & 0xf);
    }
    EXPECT_EQ(in, out);
}

TEST(Qarma64Layers, MixColumnsIsInvolution)
{
    Rng rng(2);
    for (int i = 0; i < 256; ++i) {
        const u64 x = rng.next();
        EXPECT_EQ(Qarma64::mixColumns(Qarma64::mixColumns(x)), x);
    }
}

TEST(Qarma64Layers, MixColumnsIsLinear)
{
    Rng rng(3);
    for (int i = 0; i < 64; ++i) {
        const u64 a = rng.next(), b = rng.next();
        EXPECT_EQ(Qarma64::mixColumns(a ^ b),
                  Qarma64::mixColumns(a) ^ Qarma64::mixColumns(b));
    }
}

TEST(Qarma64Layers, TweakScheduleInverts)
{
    Rng rng(4);
    for (int i = 0; i < 256; ++i) {
        const u64 t = rng.next();
        EXPECT_EQ(Qarma64::backwardTweak(Qarma64::forwardTweak(t)), t);
        EXPECT_EQ(Qarma64::forwardTweak(Qarma64::backwardTweak(t)), t);
    }
}

TEST(Qarma64Layers, TweakScheduleHasLongPeriod)
{
    // The h-permutation + LFSR must not cycle quickly.
    u64 t = kPaperTweak;
    for (int i = 0; i < 64; ++i) {
        t = Qarma64::forwardTweak(t);
        EXPECT_NE(t, kPaperTweak) << "tweak cycled after " << i + 1;
    }
}

TEST(Qarma64Layers, SubCellsInverts)
{
    for (auto sbox : {Sbox::kSigma0, Sbox::kSigma1, Sbox::kSigma2}) {
        Qarma64 q(sbox, 5);
        Rng rng(5);
        for (int i = 0; i < 128; ++i) {
            const u64 x = rng.next();
            EXPECT_EQ(q.subCellsInv(q.subCells(x)), x);
        }
    }
}

struct Instance
{
    Sbox sbox;
    unsigned rounds;
};

class Qarma64InstanceTest : public ::testing::TestWithParam<Instance>
{
};

TEST_P(Qarma64InstanceTest, EncryptDecryptRoundTrip)
{
    const Qarma64 q(GetParam().sbox, GetParam().rounds);
    Rng rng(6);
    for (int i = 0; i < 200; ++i) {
        const u64 p = rng.next(), t = rng.next();
        const Key128 key{rng.next(), rng.next()};
        EXPECT_EQ(q.decrypt(q.encrypt(p, t, key), t, key), p);
    }
}

TEST_P(Qarma64InstanceTest, EncryptionIsABijectionOnSamples)
{
    const Qarma64 q(GetParam().sbox, GetParam().rounds);
    std::set<u64> outputs;
    for (u64 p = 0; p < 512; ++p)
        outputs.insert(q.encrypt(p, kPaperTweak, kPaperKey));
    EXPECT_EQ(outputs.size(), 512u);
}

TEST_P(Qarma64InstanceTest, TweakChangesCiphertext)
{
    const Qarma64 q(GetParam().sbox, GetParam().rounds);
    const u64 c1 = q.encrypt(kPlain, kPaperTweak, kPaperKey);
    const u64 c2 = q.encrypt(kPlain, kPaperTweak ^ 1, kPaperKey);
    EXPECT_NE(c1, c2);
}

TEST_P(Qarma64InstanceTest, KeyChangesCiphertext)
{
    const Qarma64 q(GetParam().sbox, GetParam().rounds);
    Key128 other = kPaperKey;
    other.k0 ^= 1;
    EXPECT_NE(q.encrypt(kPlain, kPaperTweak, kPaperKey),
              q.encrypt(kPlain, kPaperTweak, other));
    other = kPaperKey;
    other.w0 ^= u64{1} << 63;
    EXPECT_NE(q.encrypt(kPlain, kPaperTweak, kPaperKey),
              q.encrypt(kPlain, kPaperTweak, other));
}

TEST_P(Qarma64InstanceTest, AvalancheOnPlaintext)
{
    // Flipping one plaintext bit should flip ~32 ciphertext bits.
    const Qarma64 q(GetParam().sbox, GetParam().rounds);
    Rng rng(7);
    double total = 0;
    constexpr int kTrials = 200;
    for (int i = 0; i < kTrials; ++i) {
        const u64 p = rng.next();
        const unsigned bit = static_cast<unsigned>(rng.below(64));
        const u64 c1 = q.encrypt(p, kPaperTweak, kPaperKey);
        const u64 c2 = q.encrypt(p ^ (u64{1} << bit), kPaperTweak,
                                 kPaperKey);
        total += __builtin_popcountll(c1 ^ c2);
    }
    const double avg = total / kTrials;
    EXPECT_GT(avg, 24.0);
    EXPECT_LT(avg, 40.0);
}

TEST_P(Qarma64InstanceTest, AvalancheOnTweak)
{
    const Qarma64 q(GetParam().sbox, GetParam().rounds);
    Rng rng(8);
    double total = 0;
    constexpr int kTrials = 200;
    for (int i = 0; i < kTrials; ++i) {
        const u64 t = rng.next();
        const unsigned bit = static_cast<unsigned>(rng.below(64));
        const u64 c1 = q.encrypt(kPlain, t, kPaperKey);
        const u64 c2 = q.encrypt(kPlain, t ^ (u64{1} << bit), kPaperKey);
        total += __builtin_popcountll(c1 ^ c2);
    }
    const double avg = total / kTrials;
    EXPECT_GT(avg, 24.0);
    EXPECT_LT(avg, 40.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllInstances, Qarma64InstanceTest,
    ::testing::Values(Instance{Sbox::kSigma0, 5}, Instance{Sbox::kSigma0, 6},
                      Instance{Sbox::kSigma0, 7}, Instance{Sbox::kSigma1, 5},
                      Instance{Sbox::kSigma1, 6}, Instance{Sbox::kSigma1, 7},
                      Instance{Sbox::kSigma2, 5}, Instance{Sbox::kSigma2, 6},
                      Instance{Sbox::kSigma2, 7}),
    [](const ::testing::TestParamInfo<Instance> &info) {
        return "sigma" +
               std::to_string(static_cast<int>(info.param.sbox)) + "_r" +
               std::to_string(info.param.rounds);
    });

TEST(Qarma64Regression, PinnedVectors)
{
    // Regression vectors produced by this implementation with the
    // paper's key/context material (see file comment).
    struct Vector
    {
        Sbox sbox;
        unsigned rounds;
        u64 expect;
    };
    const Vector vectors[] = {
        {Sbox::kSigma0, 5, 0xe0b533d7acfb458cull},
        {Sbox::kSigma0, 6, 0x76854a2a6193650cull},
        {Sbox::kSigma0, 7, 0x02659bece6c6c34aull},
        {Sbox::kSigma1, 5, 0xada79ab7e7cbc1edull},
        {Sbox::kSigma1, 6, 0x52cc08fd5d0e4cc9ull},
        {Sbox::kSigma1, 7, 0x828c758d48ee9bd7ull},
        {Sbox::kSigma2, 5, 0xc72a2862e3332cc8ull},
        {Sbox::kSigma2, 6, 0x1339f0f53fd6669bull},
        {Sbox::kSigma2, 7, 0x0d24c532dcd9ad8cull},
    };
    for (const auto &v : vectors) {
        const Qarma64 q(v.sbox, v.rounds);
        EXPECT_EQ(q.encrypt(kPlain, kPaperTweak, kPaperKey), v.expect);
    }
}

TEST(Qarma64Keys, DerivedKeysDifferFromPrimary)
{
    EXPECT_NE(Qarma64::deriveW1(kPaperKey.w0), kPaperKey.w0);
    EXPECT_NE(Qarma64::deriveK1(kPaperKey.k0), kPaperKey.k0);
    // k1 = M * k0 and M is an involution.
    EXPECT_EQ(Qarma64::deriveK1(Qarma64::deriveK1(kPaperKey.k0)),
              kPaperKey.k0);
}

TEST(Qarma64Keys, ExpandedScheduleMatchesKeyOverloads)
{
    // The Schedule overloads cache w1/k1 per key (the PaContext hot
    // path); they must be indistinguishable from the Key128 overloads
    // for every instance and random material.
    Rng rng(7);
    const Sbox boxes[] = {Sbox::kSigma0, Sbox::kSigma1, Sbox::kSigma2};
    for (const Sbox sbox : boxes) {
        for (unsigned rounds = 5; rounds <= 7; ++rounds) {
            const Qarma64 q(sbox, rounds);
            for (int i = 0; i < 32; ++i) {
                const Key128 key{rng.next(), rng.next()};
                const Qarma64::Schedule ks = Qarma64::expandKey(key);
                EXPECT_EQ(ks.w0, key.w0);
                EXPECT_EQ(ks.w1, Qarma64::deriveW1(key.w0));
                EXPECT_EQ(ks.k0, key.k0);
                EXPECT_EQ(ks.k1, Qarma64::deriveK1(key.k0));
                const u64 pt = rng.next();
                const u64 tweak = rng.next();
                const u64 ct = q.encrypt(pt, tweak, key);
                EXPECT_EQ(q.encrypt(pt, tweak, ks), ct);
                EXPECT_EQ(q.decrypt(ct, tweak, ks), pt);
            }
        }
    }
}

} // namespace
} // namespace aos::qarma
