/**
 * @file
 * Tests for the OS model: HBT lifecycle, fault handling, policies.
 */

#include <gtest/gtest.h>

#include "os/os_model.hh"

namespace aos::os {
namespace {

mcu::McqEntry
entryAt(Addr addr, u64 pac = 7, u64 seq = 1)
{
    mcu::McqEntry entry;
    entry.addr = addr;
    entry.pac = pac;
    entry.seq = seq;
    return entry;
}

TEST(OsModel, MapsInitialTablePerTableIV)
{
    OsModel os;
    EXPECT_EQ(os.hbt().rows(), u64{1} << 16);
    EXPECT_EQ(os.hbt().ways(), 1u);
}

TEST(OsModel, StoreOverflowResizesAndRetries)
{
    OsModel os(8, 1);
    const bool handled =
        os.handleFault(mcu::FaultKind::kStoreOverflow, entryAt(0x1000));
    EXPECT_TRUE(handled) << "bndstr must retry after the resize";
    EXPECT_TRUE(os.hbt().resizing());
    EXPECT_EQ(os.resizesServiced(), 1u);
    EXPECT_TRUE(os.violations().empty()) << "a resize is not a violation";
}

TEST(OsModel, OverflowDuringResizeDoesNotDoubleResize)
{
    OsModel os(8, 1);
    os.handleFault(mcu::FaultKind::kStoreOverflow, entryAt(0x1000));
    os.handleFault(mcu::FaultKind::kStoreOverflow, entryAt(0x2000));
    EXPECT_EQ(os.hbt().ways(), 2u);
    EXPECT_EQ(os.resizesServiced(), 1u);
}

TEST(OsModel, ReportPolicyLogsAndResumes)
{
    OsModel os(16, 1, bounds::kSlotsPerWay, FaultPolicy::kReport);
    const bool handled = os.handleFault(
        mcu::FaultKind::kBoundsViolation, entryAt(0xdead, 42, 9));
    EXPECT_FALSE(handled) << "report-and-resume, not retry";
    ASSERT_EQ(os.violations().size(), 1u);
    EXPECT_EQ(os.violations()[0].addr, 0xdeadu);
    EXPECT_EQ(os.violations()[0].pac, 42u);
    EXPECT_EQ(os.violations()[0].seq, 9u);
}

TEST(OsModel, ClearFailureLoggedAsViolation)
{
    OsModel os;
    os.handleFault(mcu::FaultKind::kClearFailure, entryAt(0x2000));
    ASSERT_EQ(os.violations().size(), 1u);
    EXPECT_EQ(os.violations()[0].kind, mcu::FaultKind::kClearFailure);
}

TEST(OsModel, TerminatePolicyThrows)
{
    OsModel os(16, 1, bounds::kSlotsPerWay, FaultPolicy::kTerminate);
    EXPECT_THROW(
        os.handleFault(mcu::FaultKind::kBoundsViolation, entryAt(0x1)),
        ProcessTerminated);
    // The violation is still logged before the throw.
    EXPECT_EQ(os.violations().size(), 1u);
}

TEST(OsModel, TerminateExceptionCarriesRecord)
{
    OsModel os(16, 1, bounds::kSlotsPerWay, FaultPolicy::kTerminate);
    try {
        os.handleFault(mcu::FaultKind::kBoundsViolation,
                       entryAt(0xabc, 3, 77));
        FAIL() << "expected ProcessTerminated";
    } catch (const ProcessTerminated &e) {
        EXPECT_EQ(e.record().addr, 0xabcu);
        EXPECT_EQ(e.record().seq, 77u);
    }
}

TEST(OsModel, PolicySwitchableAtRuntime)
{
    OsModel os;
    os.handleFault(mcu::FaultKind::kBoundsViolation, entryAt(0x1));
    os.setPolicy(FaultPolicy::kTerminate);
    EXPECT_THROW(
        os.handleFault(mcu::FaultKind::kBoundsViolation, entryAt(0x2)),
        ProcessTerminated);
}

TEST(OsModel, ViolationLogIsBoundedRing)
{
    OsModel os;
    os.setViolationCap(4);
    for (u64 i = 0; i < 10; ++i)
        os.handleFault(mcu::FaultKind::kBoundsViolation,
                       entryAt(0x1000 + i, 7, i + 1));

    EXPECT_EQ(os.violationCount(), 10u) << "true total survives the cap";
    EXPECT_EQ(os.violationsDropped(), 6u);
    ASSERT_EQ(os.violations().size(), 4u) << "footprint stays bounded";
    // The retained records are the newest ones (oldest dropped first).
    u64 newest_seen = 0;
    for (const auto &record : os.violations()) {
        EXPECT_GE(record.seq, 7u);
        newest_seen = std::max(newest_seen, record.seq);
    }
    EXPECT_EQ(newest_seen, 10u);
}

TEST(OsModel, DefaultCapKeepsEveryEarlyRecord)
{
    OsModel os;
    EXPECT_EQ(os.violationCap(), OsModel::kDefaultViolationCap);
    for (u64 i = 0; i < 100; ++i)
        os.handleFault(mcu::FaultKind::kBoundsViolation, entryAt(i));
    EXPECT_EQ(os.violations().size(), 100u);
    EXPECT_EQ(os.violationsDropped(), 0u);
}

TEST(OsModel, RetireReleasesHbtAndViolationLog)
{
    OsModel os(8, 1);
    const Addr base = os.hbt().base();
    os.hbt().insert(3, bounds::compress(0x20001000, 64));
    os.handleFault(mcu::FaultKind::kStoreOverflow, entryAt(0x1000));
    os.handleFault(mcu::FaultKind::kBoundsViolation, entryAt(0x2000));
    ASSERT_EQ(os.hbt().ways(), 2u);
    ASSERT_EQ(os.violationCount(), 1u);

    os.retire();

    // Deterministic teardown: the table is remapped empty at its
    // original base and associativity, and the log is gone, so the
    // tenant slot can be reused mid-campaign with nothing carried over.
    EXPECT_EQ(os.hbt().base(), base);
    EXPECT_EQ(os.hbt().ways(), 1u);
    EXPECT_EQ(os.hbt().stats().occupied, 0u);
    EXPECT_FALSE(os.hbt().resizing());
    EXPECT_TRUE(os.violations().empty());
    EXPECT_EQ(os.violationCount(), 0u);
    EXPECT_EQ(os.violationsDropped(), 0u);
}

TEST(OsModel, PerTenantHbtBaseIsHonoured)
{
    const Addr tenant_base = 0x3000'0000'0000ull + 0x20'0000'0000ull;
    OsModel os(16, 1, bounds::kSlotsPerWay, FaultPolicy::kReport,
               tenant_base);
    EXPECT_EQ(os.hbt().base(), tenant_base);
}

} // namespace
} // namespace aos::os
