/**
 * @file
 * Tests for the OS model: HBT lifecycle, fault handling, policies.
 */

#include <gtest/gtest.h>

#include "os/os_model.hh"

namespace aos::os {
namespace {

mcu::McqEntry
entryAt(Addr addr, u64 pac = 7, u64 seq = 1)
{
    mcu::McqEntry entry;
    entry.addr = addr;
    entry.pac = pac;
    entry.seq = seq;
    return entry;
}

TEST(OsModel, MapsInitialTablePerTableIV)
{
    OsModel os;
    EXPECT_EQ(os.hbt().rows(), u64{1} << 16);
    EXPECT_EQ(os.hbt().ways(), 1u);
}

TEST(OsModel, StoreOverflowResizesAndRetries)
{
    OsModel os(8, 1);
    const bool handled =
        os.handleFault(mcu::FaultKind::kStoreOverflow, entryAt(0x1000));
    EXPECT_TRUE(handled) << "bndstr must retry after the resize";
    EXPECT_TRUE(os.hbt().resizing());
    EXPECT_EQ(os.resizesServiced(), 1u);
    EXPECT_TRUE(os.violations().empty()) << "a resize is not a violation";
}

TEST(OsModel, OverflowDuringResizeDoesNotDoubleResize)
{
    OsModel os(8, 1);
    os.handleFault(mcu::FaultKind::kStoreOverflow, entryAt(0x1000));
    os.handleFault(mcu::FaultKind::kStoreOverflow, entryAt(0x2000));
    EXPECT_EQ(os.hbt().ways(), 2u);
    EXPECT_EQ(os.resizesServiced(), 1u);
}

TEST(OsModel, ReportPolicyLogsAndResumes)
{
    OsModel os(16, 1, bounds::kSlotsPerWay, FaultPolicy::kReport);
    const bool handled = os.handleFault(
        mcu::FaultKind::kBoundsViolation, entryAt(0xdead, 42, 9));
    EXPECT_FALSE(handled) << "report-and-resume, not retry";
    ASSERT_EQ(os.violations().size(), 1u);
    EXPECT_EQ(os.violations()[0].addr, 0xdeadu);
    EXPECT_EQ(os.violations()[0].pac, 42u);
    EXPECT_EQ(os.violations()[0].seq, 9u);
}

TEST(OsModel, ClearFailureLoggedAsViolation)
{
    OsModel os;
    os.handleFault(mcu::FaultKind::kClearFailure, entryAt(0x2000));
    ASSERT_EQ(os.violations().size(), 1u);
    EXPECT_EQ(os.violations()[0].kind, mcu::FaultKind::kClearFailure);
}

TEST(OsModel, TerminatePolicyThrows)
{
    OsModel os(16, 1, bounds::kSlotsPerWay, FaultPolicy::kTerminate);
    EXPECT_THROW(
        os.handleFault(mcu::FaultKind::kBoundsViolation, entryAt(0x1)),
        ProcessTerminated);
    // The violation is still logged before the throw.
    EXPECT_EQ(os.violations().size(), 1u);
}

TEST(OsModel, TerminateExceptionCarriesRecord)
{
    OsModel os(16, 1, bounds::kSlotsPerWay, FaultPolicy::kTerminate);
    try {
        os.handleFault(mcu::FaultKind::kBoundsViolation,
                       entryAt(0xabc, 3, 77));
        FAIL() << "expected ProcessTerminated";
    } catch (const ProcessTerminated &e) {
        EXPECT_EQ(e.record().addr, 0xabcu);
        EXPECT_EQ(e.record().seq, 77u);
    }
}

TEST(OsModel, PolicySwitchableAtRuntime)
{
    OsModel os;
    os.handleFault(mcu::FaultKind::kBoundsViolation, entryAt(0x1));
    os.setPolicy(FaultPolicy::kTerminate);
    EXPECT_THROW(
        os.handleFault(mcu::FaultKind::kBoundsViolation, entryAt(0x2)),
        ProcessTerminated);
}

} // namespace
} // namespace aos::os
