/**
 * @file
 * Tests for the TAGE branch predictor.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "cpu/tage.hh"

namespace aos::cpu {
namespace {

double
trainAndMeasure(Tage &tage, const std::vector<std::pair<Addr, bool>> &trace,
                size_t warmup)
{
    u64 wrong = 0, measured = 0;
    for (size_t i = 0; i < trace.size(); ++i) {
        const bool pred = tage.predict(trace[i].first);
        if (i >= warmup) {
            ++measured;
            wrong += pred != trace[i].second;
        }
        tage.update(trace[i].first, trace[i].second);
    }
    return measured ? static_cast<double>(wrong) / measured : 0.0;
}

TEST(Tage, LearnsAlwaysTaken)
{
    Tage tage;
    std::vector<std::pair<Addr, bool>> trace;
    for (int i = 0; i < 2000; ++i)
        trace.emplace_back(0x400100, true);
    EXPECT_LT(trainAndMeasure(tage, trace, 100), 0.01);
}

TEST(Tage, LearnsAlwaysNotTaken)
{
    Tage tage;
    std::vector<std::pair<Addr, bool>> trace;
    for (int i = 0; i < 2000; ++i)
        trace.emplace_back(0x400200, false);
    EXPECT_LT(trainAndMeasure(tage, trace, 100), 0.01);
}

TEST(Tage, LearnsShortAlternation)
{
    // T N T N ... needs one bit of history; the bimodal alone cannot
    // learn it, the tagged tables must.
    Tage tage;
    std::vector<std::pair<Addr, bool>> trace;
    for (int i = 0; i < 4000; ++i)
        trace.emplace_back(0x400300, (i & 1) == 0);
    EXPECT_LT(trainAndMeasure(tage, trace, 1000), 0.05);
    EXPECT_GT(tage.stats().providerTagged, 0u);
}

TEST(Tage, LearnsLongerPeriodicPattern)
{
    // Period-7 pattern: requires several history bits.
    Tage tage;
    const bool pattern[7] = {true, true, false, true, false, false, true};
    std::vector<std::pair<Addr, bool>> trace;
    for (int i = 0; i < 20000; ++i)
        trace.emplace_back(0x400400, pattern[i % 7]);
    EXPECT_LT(trainAndMeasure(tage, trace, 6000), 0.10);
}

TEST(Tage, BiasedRandomApproachesBias)
{
    // A 90%-taken branch with no pattern: ~10% mispredictions is the
    // information-theoretic floor.
    Tage tage;
    Rng rng(1);
    std::vector<std::pair<Addr, bool>> trace;
    for (int i = 0; i < 20000; ++i)
        trace.emplace_back(0x400500, rng.chance(0.9));
    const double mr = trainAndMeasure(tage, trace, 2000);
    EXPECT_LT(mr, 0.16);
    EXPECT_GT(mr, 0.04);
}

TEST(Tage, ManyIndependentBranches)
{
    // Hundreds of static branches with distinct biases must not
    // destructively alias.
    Tage tage;
    Rng rng(2);
    std::vector<bool> bias;
    for (int b = 0; b < 512; ++b)
        bias.push_back(rng.chance(0.5));
    std::vector<std::pair<Addr, bool>> trace;
    for (int i = 0; i < 60000; ++i) {
        const u64 b = rng.below(512);
        trace.emplace_back(0x400000 + b * 4, bias[b]);
    }
    EXPECT_LT(trainAndMeasure(tage, trace, 10000), 0.03);
}

TEST(Tage, HistoryCorrelatedBranches)
{
    // Branch B repeats the outcome of branch A: pure history
    // correlation, invisible to a bimodal predictor.
    Tage tage;
    Rng rng(3);
    std::vector<std::pair<Addr, bool>> trace;
    for (int i = 0; i < 30000; ++i) {
        const bool a = rng.chance(0.5);
        trace.emplace_back(0x400600, a);
        trace.emplace_back(0x400700, a);
    }
    // Overall mispredict rate: branch A is unpredictable (~50%),
    // branch B should approach 0% -> combined ~25%.
    const double mr = trainAndMeasure(tage, trace, 10000);
    EXPECT_LT(mr, 0.35);
}

TEST(Tage, StatsAccumulate)
{
    Tage tage;
    tage.predict(0x400100);
    tage.update(0x400100, true);
    EXPECT_EQ(tage.stats().lookups, 1u);
    EXPECT_LE(tage.stats().mispredicts, 1u);
}

} // namespace
} // namespace aos::cpu
