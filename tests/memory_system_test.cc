/**
 * @file
 * Tests for the assembled Table IV memory hierarchy.
 */

#include <gtest/gtest.h>

#include "memsim/memory_system.hh"

namespace aos::memsim {
namespace {

TEST(MemorySystem, TableIVDefaults)
{
    MemorySystem mem;
    EXPECT_EQ(mem.l1i().params().size, u64{32} * 1024);
    EXPECT_EQ(mem.l1i().params().assoc, 4u);
    EXPECT_EQ(mem.l1d().params().size, u64{64} * 1024);
    EXPECT_EQ(mem.l1d().params().assoc, 8u);
    EXPECT_EQ(mem.l2().params().size, u64{8} * 1024 * 1024);
    EXPECT_EQ(mem.l2().params().assoc, 16u);
    ASSERT_NE(mem.l1b(), nullptr);
    EXPECT_EQ(mem.l1b()->params().size, u64{32} * 1024);
}

TEST(MemorySystem, BoundsRouteToL1BWhenEnabled)
{
    MemorySystem mem;
    mem.boundsAccess(0x3000'0000'0000ull, false);
    EXPECT_EQ(mem.l1b()->stats().accesses(), 1u);
    EXPECT_EQ(mem.l1d().stats().accesses(), 0u);
}

TEST(MemorySystem, BoundsPolluteL1DWhenDisabled)
{
    MemoryConfig config;
    config.useBoundsCache = false;
    MemorySystem mem(config);
    EXPECT_EQ(mem.l1b(), nullptr);
    mem.boundsAccess(0x3000'0000'0000ull, false);
    EXPECT_EQ(mem.l1d().stats().accesses(), 1u);
}

TEST(MemorySystem, L1bIsolatesDataCacheFromBoundsTraffic)
{
    // The pollution mechanism behind the Fig. 15 ablation: with the
    // L1-B, a bounds stream does not evict data lines.
    MemorySystem with_b;
    MemoryConfig no_b_config;
    no_b_config.useBoundsCache = false;
    MemorySystem no_b(no_b_config);

    for (auto *mem : {&with_b, &no_b}) {
        // Load a data working set.
        for (u64 i = 0; i < 512; ++i)
            mem->dataAccess(0x20000000 + i * 64, false);
        // Stream a large bounds region over it.
        for (u64 i = 0; i < 4096; ++i)
            mem->boundsAccess(0x3000'0000'0000ull + i * 64, false);
        // Re-touch the data set.
        for (u64 i = 0; i < 512; ++i)
            mem->dataAccess(0x20000000 + i * 64, false);
    }
    const u64 misses_with = with_b.l1d().stats().misses;
    const u64 misses_without = no_b.l1d().stats().misses;
    EXPECT_LT(misses_with, misses_without);
    // With the L1-B, the data set stays resident: the second sweep is
    // all hits (the first sweep costs a couple of cold misses before
    // the stream prefetcher locks on).
    EXPECT_LT(misses_with, 10u) << "data set should be fully resident";
}

TEST(MemorySystem, SharedL2SeesBothStreams)
{
    MemorySystem mem;
    mem.dataAccess(0x20000000, false);
    mem.boundsAccess(0x3000'0000'0000ull, false);
    mem.fetchAccess(0x400000);
    EXPECT_EQ(mem.l2().stats().accesses(), 3u);
}

TEST(MemorySystem, NetworkTrafficAggregatesAllLinks)
{
    MemorySystem mem;
    EXPECT_EQ(mem.networkTraffic(), 0u);
    mem.dataAccess(0x20000000, false);
    // L1D fill (64) + L2 fill (64).
    EXPECT_EQ(mem.networkTraffic(), 128u);
    mem.fetchAccess(0x400000);
    EXPECT_EQ(mem.networkTraffic(), 256u);
    // A hit adds nothing.
    mem.dataAccess(0x20000000, false);
    EXPECT_EQ(mem.networkTraffic(), 256u);
}

TEST(MemorySystem, DramLatencyDominatesColdMisses)
{
    MemorySystem mem;
    const Cycles cold = mem.dataAccess(0x7000000, false);
    EXPECT_EQ(cold, 1u + 8u + 100u);
    const Cycles l2_hit_after_l1_evict = [&] {
        // Evict from the small L1 by filling its set.
        for (int i = 1; i <= 8; ++i)
            mem.dataAccess(0x7000000 + i * 64 * 128, false);
        return mem.dataAccess(0x7000000, false);
    }();
    EXPECT_EQ(l2_hit_after_l1_evict, 1u + 8u);
}

TEST(MemorySystem, FlushAllColdMissesEverywhere)
{
    MemorySystem mem;
    mem.dataAccess(0x20000000, false);
    mem.flushAll();
    EXPECT_EQ(mem.dataAccess(0x20000000, false), 109u);
}

TEST(MemorySystem, DramWritesCountFlushedDirtyData)
{
    MemorySystem mem;
    EXPECT_EQ(mem.dramWrites(), 0u);
    mem.dataAccess(0x20000000, true); // dirty in L1-D
    // Nothing evicted yet: the write is still buffered on chip.
    EXPECT_EQ(mem.dramWrites(), 0u);
    mem.flushAll();
    // L1-D writes back into L2, L2 writes back to DRAM — the dirty
    // line must reach the DRAM link exactly once.
    EXPECT_EQ(mem.dramWrites(), 1u);
    EXPECT_EQ(mem.dram().writes(), mem.dramWrites());
    EXPECT_GE(mem.dramAccesses(), mem.dramWrites());
}

TEST(MemorySystem, FlushAllDrainsDirtyBoundsThroughL2)
{
    // L1-B dirty lines must be flushed *before* L2, or their
    // writebacks would land in (and die with) an already-flushed L2.
    MemorySystem mem; // L1-B enabled by default

    mem.boundsAccess(0x40000000, true); // dirty in L1-B
    mem.flushAll();
    EXPECT_EQ(mem.dramWrites(), 1u);
}

} // namespace
} // namespace aos::memsim
