/**
 * @file
 * Multi-tenant scheduler tests: per-process PA key-swap isolation,
 * scheduler determinism, fleet-vs-solo functional invariance,
 * adversarial containment, terminated-tenant teardown/slot reuse and
 * overload shedding accounting (DESIGN.md §15).
 */

#include <gtest/gtest.h>

#include "campaign/tenant_audit.hh"
#include "os/scheduler.hh"

namespace aos::os {
namespace {

workloads::WorkloadProfile
tinyProfile(const std::string &name, double allocs_per_kop = 25)
{
    workloads::WorkloadProfile p;
    p.name = name;
    p.targetActive = 48;
    p.allocsPerKOp = allocs_per_kop;
    p.heapFraction = 0.7;
    p.heapChunkMin = 32;
    p.heapChunkMax = 512;
    p.globalFootprint = 64 * 1024;
    p.codeFootprint = 8 * 1024;
    p.numBranches = 64;
    return p;
}

SchedulerConfig
fixedWorkConfig(u64 quantum = 2000)
{
    SchedulerConfig config;
    config.options.mech = baselines::Mechanism::kAos;
    config.quantumOps = quantum;
    config.seed = 7;
    return config;
}

// ---------------------------------------------------------------------
// Key-swap isolation property (CryptSan/PACSan semantics): a pointer
// signed under tenant A's keys must fail key-dependent authentication
// under tenant B's keys, and pass again once A's keys are reinstalled.

TEST(KeySwap, SignedPointerFailsUnderForeignKeys)
{
    pa::PaContext pa;
    const pa::KeySet keys_a = pa::PaContext::deriveKeys(0xA11CE);
    const pa::KeySet keys_b = pa::PaContext::deriveKeys(0xB0B);
    const Addr raw = 0x20001000;
    const u64 modifier = 0x42;

    pa.installKeys(keys_a);
    const Addr signed_a = pa.pacma(raw, modifier, 64);
    ASSERT_TRUE(pa.layout().signed_(signed_a));
    EXPECT_EQ(pa.autmKeyed(signed_a, modifier), pa::AuthResult::kPass);

    // Context switch to tenant B: same pointer, wrong keys.
    pa.installKeys(keys_b);
    EXPECT_EQ(pa.autmKeyed(signed_a, modifier), pa::AuthResult::kFail)
        << "tenant A's pointer must not authenticate under B's keys";
    // The paper's AHC-only autm is key-independent and still passes —
    // the key-dependent check is strictly stronger, not a replacement.
    EXPECT_EQ(pa.autm(signed_a), pa::AuthResult::kPass);

    // Switch back: A's pointer authenticates again.
    pa.installKeys(keys_a);
    EXPECT_EQ(pa.autmKeyed(signed_a, modifier), pa::AuthResult::kPass);
}

TEST(KeySwap, DeriveKeysIsDeterministicAndSeedSensitive)
{
    const pa::KeySet one = pa::PaContext::deriveKeys(123);
    const pa::KeySet two = pa::PaContext::deriveKeys(123);
    const pa::KeySet other = pa::PaContext::deriveKeys(124);
    for (unsigned i = 0; i < 5; ++i) {
        EXPECT_EQ(one.keys[i].w0, two.keys[i].w0);
        EXPECT_EQ(one.keys[i].k0, two.keys[i].k0);
    }
    bool any_differs = false;
    for (unsigned i = 0; i < 5; ++i)
        any_differs |= one.keys[i].w0 != other.keys[i].w0;
    EXPECT_TRUE(any_differs);
}

// ---------------------------------------------------------------------
// Scheduler determinism: same seed + tenant mix => bit-identical
// outcome, at any time-slice quantum.

TEST(Scheduler, RequestModeIsDeterministic)
{
    const auto runOnce = [] {
        SchedulerConfig config = fixedWorkConfig();
        config.totalRequests = 60;
        config.arrivalsPerKCycle = 4.0;
        config.runQueueDepth = 4;

        Scheduler sched(config);
        TenantConfig a;
        a.profile = tinyProfile("det_a");
        a.seed = 11;
        TenantConfig b;
        b.profile = tinyProfile("det_b", 10);
        b.seed = 22;
        sched.spawn(a);
        sched.spawn(b);
        return sched.run();
    };

    const SchedulerResult one = runOnce();
    const SchedulerResult two = runOnce();
    EXPECT_EQ(one.functionalFingerprint(), two.functionalFingerprint());
    EXPECT_EQ(one.cycles, two.cycles);
    EXPECT_EQ(one.idleCycles, two.idleCycles);
    EXPECT_EQ(one.contextSwitches, two.contextSwitches);
    EXPECT_EQ(one.latencies, two.latencies);
    EXPECT_EQ(one.requestsServed, two.requestsServed);
    EXPECT_EQ(one.requestsShed, two.requestsShed);
}

TEST(Scheduler, FunctionalFingerprintIsQuantumInvariant)
{
    const auto fingerprintAt = [](u64 quantum) {
        Scheduler sched(fixedWorkConfig(quantum));
        TenantConfig a;
        a.profile = tinyProfile("quant_a");
        a.seed = 5;
        a.measureOps = 4000;
        TenantConfig b;
        b.profile = tinyProfile("quant_b", 8);
        b.seed = 6;
        b.measureOps = 3000;
        sched.spawn(a);
        sched.spawn(b);
        return sched.run().functionalFingerprint();
    };

    const std::string at_500 = fingerprintAt(500);
    EXPECT_EQ(at_500, fingerprintAt(2000));
    EXPECT_EQ(at_500, fingerprintAt(8000));
}

// ---------------------------------------------------------------------
// Isolation: a tenant's functional outcome in a shared fleet matches a
// solo run of the same config pinned to the same address-space slot.

TEST(Scheduler, FleetTenantMatchesSoloReference)
{
    SchedulerConfig config = fixedWorkConfig();

    TenantConfig a;
    a.profile = tinyProfile("iso_a");
    a.seed = 31;
    a.measureOps = 4000;
    TenantConfig b;
    b.profile = tinyProfile("iso_b", 12);
    b.seed = 32;
    b.measureOps = 3000;

    Scheduler fleet(config);
    fleet.spawn(a);
    fleet.spawn(b);
    const SchedulerResult shared = fleet.run();
    ASSERT_EQ(shared.tenants.size(), 2u);

    for (u32 slot = 0; slot < 2; ++slot) {
        Scheduler solo(config);
        TenantConfig pinned = slot == 0 ? a : b;
        pinned.addressSlot = slot;
        solo.spawn(pinned);
        const SchedulerResult alone = solo.run();
        ASSERT_EQ(alone.tenants.size(), 1u);
        EXPECT_EQ(shared.tenants[slot].fingerprint(),
                  alone.tenants[0].fingerprint())
            << "slot " << slot;
        EXPECT_EQ(shared.tenants[slot].violations, 0u);
    }
}

TEST(Scheduler, AdversarialTenantIsContained)
{
    SchedulerConfig config = fixedWorkConfig();

    TenantConfig victim;
    victim.profile = tinyProfile("victim");
    victim.seed = 41;
    victim.measureOps = 4000;
    TenantConfig attacker;
    attacker.profile = tinyProfile("attacker");
    attacker.seed = 42;
    attacker.measureOps = 4000;
    attacker.adversarial = true;
    attacker.attackPerMille = 80;

    Scheduler fleet(config);
    const u32 victim_slot = fleet.spawn(victim);
    const u32 attacker_slot = fleet.spawn(attacker);
    const SchedulerResult result = fleet.run();

    const TenantStats &atk = result.tenants.at(attacker_slot);
    const TenantStats &vic = result.tenants.at(victim_slot);

    EXPECT_GT(atk.attacks.launched, 0u);
    EXPECT_GT(atk.attacks.detectable, 0u);
    EXPECT_GT(atk.violations, 0u)
        << "detectable attacks must raise AOS violations";
    // Containment: every detection lands on the attacker; the victim
    // is functionally untouched.
    EXPECT_EQ(vic.violations, 0u);
    EXPECT_EQ(atk.attacks.launched,
              atk.attacks.perKind[0] + atk.attacks.perKind[1] +
                  atk.attacks.perKind[2] + atk.attacks.perKind[3] +
                  atk.attacks.perKind[4]);

    Scheduler solo(config);
    TenantConfig pinned = victim;
    pinned.addressSlot = victim_slot;
    solo.spawn(pinned);
    EXPECT_EQ(result.tenants.at(victim_slot).fingerprint(),
              solo.run().tenants.at(0).fingerprint())
        << "sharing the machine with an attacker must not change the "
           "victim's functional outcome";
}

// ---------------------------------------------------------------------
// Termination, teardown and slot reuse.

TEST(Scheduler, TerminatePolicyKillsAndFreesSlot)
{
    SchedulerConfig config = fixedWorkConfig();

    TenantConfig benign;
    benign.profile = tinyProfile("surv");
    benign.seed = 51;
    benign.measureOps = 3000;
    TenantConfig doomed;
    doomed.profile = tinyProfile("doomed");
    doomed.seed = 52;
    doomed.measureOps = 4000;
    doomed.adversarial = true;
    doomed.attackPerMille = 120;
    doomed.policy = FaultPolicy::kTerminate;

    Scheduler sched(config);
    const u32 benign_slot = sched.spawn(benign);
    const u32 doomed_slot = sched.spawn(doomed);
    const SchedulerResult result = sched.run();

    EXPECT_EQ(result.terminations, 1u);
    ASSERT_TRUE(sched.tenant(doomed_slot)->terminated());
    EXPECT_FALSE(sched.tenant(benign_slot)->terminated());
    EXPECT_TRUE(result.tenants.at(doomed_slot).terminated);
    EXPECT_GE(result.tenants.at(doomed_slot).violations, 1u);
    // The survivor is functionally unaffected by the mid-run kill.
    EXPECT_EQ(result.tenants.at(benign_slot).violations, 0u);
    EXPECT_EQ(sched.liveTenants(), 1u);

    // The dead tenant's slot is reusable: a new process lands in it
    // with a fresh HBT and allocator.
    TenantConfig fresh;
    fresh.profile = tinyProfile("fresh");
    fresh.seed = 53;
    fresh.measureOps = 1000;
    const u32 reused = sched.spawn(fresh);
    EXPECT_EQ(reused, doomed_slot);
    EXPECT_FALSE(sched.tenant(reused)->terminated());
    EXPECT_EQ(sched.liveTenants(), 2u);
}

TEST(Scheduler, ExplicitKillShedsQueuedRequests)
{
    SchedulerConfig config = fixedWorkConfig();
    Scheduler sched(config);
    TenantConfig t;
    t.profile = tinyProfile("killme");
    t.seed = 61;
    const u32 slot = sched.spawn(t);

    sched.tenant(slot)->runQueue.push_back(Request{0, 100, 100});
    sched.tenant(slot)->runQueue.push_back(Request{0, 100, 100});
    sched.kill(slot);

    EXPECT_TRUE(sched.tenant(slot)->terminated());
    EXPECT_EQ(sched.tenant(slot)->stats().requestsShed, 2u)
        << "queued requests on a killed tenant are shed, not dropped";
    EXPECT_EQ(sched.liveTenants(), 0u);
}

// ---------------------------------------------------------------------
// Overload: admission control counts every shed request.

TEST(Scheduler, OverloadShedsButNeverLosesRequests)
{
    SchedulerConfig config = fixedWorkConfig();
    config.totalRequests = 40;
    config.arrivalsPerKCycle = 2000.0; //!< Far beyond service capacity.
    config.runQueueDepth = 2;
    config.requestOpsMin = 3000;
    config.requestOpsMax = 6000;

    Scheduler sched(config);
    TenantConfig t;
    t.profile = tinyProfile("overload");
    t.seed = 71;
    sched.spawn(t);
    const SchedulerResult result = sched.run();

    EXPECT_EQ(result.requestsArrived, 40u);
    EXPECT_EQ(result.requestsServed + result.requestsShed, 40u)
        << "every arrival is either served or counted as shed";
    EXPECT_GT(result.requestsShed, 0u);
    EXPECT_EQ(result.latencies.size(), result.requestsServed);
}

// ---------------------------------------------------------------------
// The audit scenario generator itself (the bench gates on batches).

TEST(TenantAudit, ScenarioBatchHoldsIsolationInvariants)
{
    const auto summary =
        campaign::tenant_audit::auditBatch(2026, 6, nullptr);
    EXPECT_EQ(summary.scenarios, 6u);
    EXPECT_TRUE(summary.pass()) << summary.firstFailure;
    EXPECT_GT(summary.benignCompared, 0u);
    EXPECT_GT(summary.attacksLaunched, 0u);
}

} // namespace
} // namespace aos::os
