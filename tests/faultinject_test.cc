/**
 * @file
 * Tests for the deterministic fault-injection engine (src/faultinject,
 * DESIGN.md §8): plan determinism, trigger domains, outcome
 * classification, the graceful-degradation contract (a 1000+-scenario
 * seeded sweep with zero simulator faults and no unresolved events),
 * and the end-to-end AosSystem wiring including stat emission.
 */

#include <gtest/gtest.h>

#include "baselines/system_config.hh"
#include "bounds/compression.hh"
#include "bounds/hashed_bounds_table.hh"
#include "core/aos_system.hh"
#include "faultinject/fault_plan.hh"
#include "faultinject/faulting_stream.hh"
#include "faultinject/injector.hh"
#include "workloads/workload_profile.hh"

namespace aos::faultinject {
namespace {

constexpr Addr kHbtBase = 0x3000'0000'0000ull;

// ---- FaultPlan ----------------------------------------------------------

TEST(FaultPlan, IsAPureFunctionOfItsConfig)
{
    FaultPlanConfig config;
    config.types = kAllFaults;
    config.perType = 3;
    config.seed = 0x1234;
    config.opWindow = 50'000;

    FaultPlan a(config);
    FaultPlan b(config);
    EXPECT_EQ(a.scheduled(), b.scheduled());
    EXPECT_EQ(a.scheduled(), u64{3} * kNumFaultTypes);

    std::vector<ScheduledFault *> due_a, due_b;
    a.due(TriggerDomain::kOpIndex, config.opWindow, due_a);
    b.due(TriggerDomain::kOpIndex, config.opWindow, due_b);
    ASSERT_EQ(due_a.size(), due_b.size());
    for (size_t i = 0; i < due_a.size(); ++i) {
        EXPECT_EQ(due_a[i]->type, due_b[i]->type);
        EXPECT_EQ(due_a[i]->at, due_b[i]->at);
        EXPECT_EQ(due_a[i]->a, due_b[i]->a);
        EXPECT_EQ(due_a[i]->b, due_b[i]->b);
    }
}

TEST(FaultPlan, DifferentSeedsGiveDifferentSchedules)
{
    FaultPlanConfig config;
    config.types = kAllFaults;
    config.perType = 4;
    config.seed = 1;
    FaultPlan a(config);
    config.seed = 2;
    FaultPlan b(config);

    std::vector<ScheduledFault *> due_a, due_b;
    a.due(TriggerDomain::kOpIndex, config.opWindow, due_a);
    b.due(TriggerDomain::kOpIndex, config.opWindow, due_b);
    ASSERT_EQ(due_a.size(), due_b.size());
    bool any_diff = false;
    for (size_t i = 0; i < due_a.size(); ++i)
        any_diff |= due_a[i]->at != due_b[i]->at;
    EXPECT_TRUE(any_diff);
}

TEST(FaultPlan, SplitsTypesAcrossTriggerDomains)
{
    FaultPlanConfig config;
    config.types = kAllFaults;
    config.perType = 2;
    FaultPlan plan(config);
    // Only DRAM line flips count bounds accesses.
    EXPECT_EQ(triggerDomain(FaultType::kDramLineFlip),
              TriggerDomain::kBoundsAccess);
    EXPECT_EQ(triggerDomain(FaultType::kPtrPacFlip),
              TriggerDomain::kOpIndex);
    EXPECT_EQ(plan.scheduledFor(FaultType::kDramLineFlip), 2u);

    std::vector<ScheduledFault *> due;
    plan.due(TriggerDomain::kBoundsAccess, 1u << 20, due);
    EXPECT_EQ(due.size(), 2u);
    for (ScheduledFault *fault : due)
        EXPECT_EQ(fault->type, FaultType::kDramLineFlip);
}

TEST(FaultPlan, DueAdvancesMonotonically)
{
    FaultPlanConfig config;
    config.types = faultBit(FaultType::kMcqStall);
    config.perType = 8;
    config.opWindow = 100;
    FaultPlan plan(config);

    std::vector<ScheduledFault *> due;
    u64 seen = 0;
    for (u64 counter = 0; counter < 100; ++counter) {
        plan.due(TriggerDomain::kOpIndex, counter, due);
        for (ScheduledFault *fault : due) {
            EXPECT_LE(fault->at, counter);
            fault->fired = true;
            ++seen;
        }
    }
    EXPECT_EQ(seen, 8u);
    // Everything already returned once: nothing is due twice.
    plan.due(TriggerDomain::kOpIndex, 1u << 20, due);
    EXPECT_TRUE(due.empty());
}

TEST(FaultPlan, EmptyMaskSchedulesNothing)
{
    FaultPlan plan(FaultPlanConfig{});
    EXPECT_TRUE(plan.empty());
    EXPECT_EQ(plan.scheduled(), 0u);
}

// ---- micro harness ------------------------------------------------------

/**
 * A self-contained injector scenario: a populated HBT, a synthetic
 * signed-pointer op stream, simulated bounds traffic and MCU hook
 * calls — everything the injector can observe, without the cost of a
 * full timing simulation. Returns the injector's final stats.
 */
struct MicroScenario
{
    ProtectionModel model = ProtectionModel::kAos;
    u64 seed = 0;
    u32 types = kAllFaults;
    unsigned perType = 2;

    FaultStats
    run(std::vector<FaultEvent> *events_out = nullptr) const
    {
        const pa::PointerLayout layout(16, 46);
        const bool aos = model == ProtectionModel::kAos ||
                         model == ProtectionModel::kPaAos;

        // Mirror AosSystem's applicability filter.
        u32 mask = types;
        if (!aos)
            mask &= ~(kMetadataFaults | kMcuFaults);

        FaultPlanConfig config;
        config.types = mask;
        config.perType = perType;
        config.seed = seed;
        config.opWindow = 1'000;
        FaultPlan plan(config);

        std::optional<bounds::HashedBoundsTable> hbt;
        if (aos)
            hbt.emplace(kHbtBase, 16, 1);

        constexpr unsigned kChunks = 64;
        constexpr Addr kHeap = 0x2000'0000;
        if (hbt) {
            for (unsigned j = 0; j < kChunks; ++j)
                hbt->insert(j, bounds::compress(kHeap + j * 0x100, 64));
        }

        InjectorEnv env;
        env.layout = layout;
        env.model = model;
        env.hbt = hbt ? &*hbt : nullptr;
        env.inChunk = [](Addr base, Addr addr) {
            return addr >= base && addr < base + 64;
        };
        FaultInjector injector(plan, env);

        // Feed 1200 ops (> opWindow, so every op-domain trigger comes
        // due) with an eligible victim at every position.
        for (u64 i = 0; i < 1'200; ++i) {
            const unsigned j = static_cast<unsigned>(i % kChunks);
            const Addr base = kHeap + j * 0x100;
            ir::MicroOp op;
            op.chunkBase = base;
            op.size = 8;
            if (aos) {
                op.addr = layout.compose(base + 16, j, 1);
                op.kind = (model == ProtectionModel::kPaAos && i % 3 == 0)
                              ? ir::OpKind::kAutm
                              : (i % 2 ? ir::OpKind::kStore
                                       : ir::OpKind::kLoad);
            } else {
                op.addr = base + 16;
                op.kind = i % 2 ? ir::OpKind::kStore : ir::OpKind::kLoad;
            }
            injector.onOp(i, op);
        }

        // Bounds-metadata traffic (beyond the [1, 512] trigger range)
        // and MCU hook activity.
        if (hbt) {
            for (u64 i = 0; i < 600; ++i)
                injector.onBoundsAccess(
                    hbt->wayAddr(i % kChunks, 0), i % 7 == 0);
        }
        for (Tick t = 0; t < 512; ++t) {
            injector.onMcuTick(t);
            (void)injector.stallQueue();
            (void)injector.dropWayResponse(t, 0);
            (void)injector.duplicateWayResponse(t, 0);
        }

        if (events_out)
            *events_out = injector.events();
        return injector.stats();
    }
};

TEST(FaultInjectorSweep, ThousandScenariosNoSimulatorFaults)
{
    // The graceful-degradation contract, brute-forced: 1000+ seeded
    // scenarios across every protection model with the full fault
    // catalog armed. Every scheduled fault fires, every fired fault
    // resolves to a real outcome, and nothing ever escalates to a
    // simulator fault.
    constexpr ProtectionModel kModels[] = {
        ProtectionModel::kNone, ProtectionModel::kWatchdog,
        ProtectionModel::kPa, ProtectionModel::kAos,
        ProtectionModel::kPaAos,
    };
    FaultStats aggregate;
    std::vector<FaultEvent> events;
    unsigned scenarios = 0;
    for (u64 seed = 0; seed < 210; ++seed) {
        for (const ProtectionModel model : kModels) {
            MicroScenario scenario;
            scenario.model = model;
            scenario.seed = seed * 0x9e37'79b9 + 17;
            const FaultStats stats = scenario.run(&events);
            ++scenarios;

            ASSERT_EQ(stats.simFault, 0u)
                << "simulator fault at seed " << seed << " model "
                << static_cast<int>(model);
            // Every scheduled fault fired (victims always available).
            ASSERT_EQ(stats.injected, stats.scheduled)
                << "lost fault at seed " << seed;
            for (const FaultEvent &event : events) {
                ASSERT_NE(event.outcome, FaultOutcome::kPending)
                    << faultTypeName(event.type) << " unresolved at seed "
                    << seed;
            }
            aggregate.injected += stats.injected;
            aggregate.detectedAutm += stats.detectedAutm;
            aggregate.detectedBounds += stats.detectedBounds;
            aggregate.tolerated += stats.tolerated;
            aggregate.silent += stats.silent;
        }
    }
    ASSERT_GE(scenarios, 1000u);
    EXPECT_GT(aggregate.injected, 10'000u);
    // Every outcome class in the taxonomy is actually reachable.
    EXPECT_GT(aggregate.detectedAutm, 0u);
    EXPECT_GT(aggregate.detectedBounds, 0u);
    EXPECT_GT(aggregate.tolerated, 0u);
    EXPECT_GT(aggregate.silent, 0u);
}

TEST(FaultInjector, IdenticalScenariosGiveIdenticalEvents)
{
    MicroScenario scenario;
    scenario.model = ProtectionModel::kPaAos;
    scenario.seed = 42;
    std::vector<FaultEvent> first, second;
    scenario.run(&first);
    scenario.run(&second);
    ASSERT_EQ(first.size(), second.size());
    ASSERT_FALSE(first.empty());
    for (size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].type, second[i].type);
        EXPECT_EQ(first[i].outcome, second[i].outcome);
        EXPECT_EQ(first[i].trigger, second[i].trigger);
        EXPECT_EQ(first[i].detail, second[i].detail);
    }
}

TEST(FaultInjector, CoverageOrderingAcrossModels)
{
    // Aggregated over many seeds, the detection ordering the paper
    // claims must emerge: AOS models detect pointer corruption the
    // unprotected models cannot.
    auto coverage = [](ProtectionModel model) {
        FaultStats total;
        for (u64 seed = 0; seed < 40; ++seed) {
            MicroScenario scenario;
            scenario.model = model;
            scenario.seed = 1'000 + seed;
            scenario.types = kPointerFaults;
            scenario.perType = 4;
            const FaultStats stats = scenario.run();
            total.injected += stats.injected;
            total.detectedAutm += stats.detectedAutm;
            total.detectedBounds += stats.detectedBounds;
        }
        return total.coverage();
    };
    const double none = coverage(ProtectionModel::kNone);
    const double pa = coverage(ProtectionModel::kPa);
    const double aos = coverage(ProtectionModel::kAos);
    const double pa_aos = coverage(ProtectionModel::kPaAos);
    EXPECT_EQ(none, 0.0);
    EXPECT_EQ(pa, 0.0); // PA alone does not protect heap data (SI).
    EXPECT_GT(aos, pa);
    EXPECT_GE(pa_aos, aos); // autm adds AHC-strip detection (SVII-B).
}

TEST(FaultInjector, HbtLineZapIsAlwaysDetected)
{
    for (u64 seed = 0; seed < 20; ++seed) {
        MicroScenario scenario;
        scenario.model = ProtectionModel::kAos;
        scenario.seed = seed;
        scenario.types = faultBit(FaultType::kHbtLineZap);
        const FaultStats stats = scenario.run();
        ASSERT_EQ(stats.injected, stats.scheduled);
        // Losing a whole populated way line always loses the victim's
        // record: its next check cannot find it.
        EXPECT_EQ(stats.detectedBounds, stats.injected);
    }
}

TEST(FaultInjector, McuFaultsAreToleratedByDesign)
{
    // Stall/drop/dup perturb timing, not correctness: the MCU re-issues
    // or discards, so these classes must classify as tolerated.
    MicroScenario scenario;
    scenario.model = ProtectionModel::kAos;
    scenario.seed = 7;
    scenario.types = faultBit(FaultType::kMcqStall) |
                     faultBit(FaultType::kMcuDropResp) |
                     faultBit(FaultType::kMcuDupResp);
    scenario.perType = 3;
    const FaultStats stats = scenario.run();
    EXPECT_EQ(stats.injected, stats.scheduled);
    EXPECT_EQ(stats.tolerated, stats.injected);
    EXPECT_EQ(stats.silent, 0u);
}

// ---- FaultingStream -----------------------------------------------------

TEST(FaultingStream, CountsOnlyMeasuredOps)
{
    const pa::PointerLayout layout(16, 46);
    FaultPlanConfig config;
    config.types = faultBit(FaultType::kPtrVaFlip);
    config.perType = 1;
    config.opWindow = 1; // Trigger at op 0 of the measured phase.
    FaultPlan plan(config);
    InjectorEnv env;
    env.layout = layout;
    env.model = ProtectionModel::kNone;
    FaultInjector injector(plan, env);

    auto mem = [&](Addr addr) {
        ir::MicroOp op;
        op.kind = ir::OpKind::kLoad;
        op.addr = addr;
        op.chunkBase = 0x2000'0000;
        return op;
    };
    ir::MicroOp mark;
    mark.kind = ir::OpKind::kPhaseMark;
    // Two warmup ops, the mark, then two measured ops.
    ir::VectorStream inner({mem(0x2000'0010), mem(0x2000'0020), mark,
                            mem(0x2000'0030), mem(0x2000'0040)});
    FaultingStream stream(&inner, &injector);

    ir::MicroOp out;
    ASSERT_TRUE(stream.next(out));
    EXPECT_EQ(out.addr, 0x2000'0010u); // Warmup ops pass untouched.
    ASSERT_TRUE(stream.next(out));
    EXPECT_EQ(out.addr, 0x2000'0020u);
    ASSERT_TRUE(stream.next(out));
    EXPECT_EQ(out.kind, ir::OpKind::kPhaseMark);
    EXPECT_EQ(injector.stats().injected, 0u);
    ASSERT_TRUE(stream.next(out));
    // The first measured op is the fault's victim.
    EXPECT_EQ(injector.stats().injected, 1u);
    EXPECT_NE(out.addr, 0x2000'0030u);
    ASSERT_TRUE(stream.next(out));
    EXPECT_EQ(out.addr, 0x2000'0040u);
    EXPECT_FALSE(stream.next(out));
}

// ---- end-to-end AosSystem wiring ----------------------------------------

baselines::SystemOptions
faultOptions(baselines::Mechanism mech, u32 types, u64 seed)
{
    baselines::SystemOptions options;
    options.mech = mech;
    options.measureOps = 6'000;
    options.faultTypes = types;
    options.faultCount = 2;
    options.faultSeed = seed;
    return options;
}

TEST(SystemFaults, FullCatalogAcrossMechanismsNoSimulatorFaults)
{
    const workloads::WorkloadProfile &profile =
        workloads::profileByName("gcc");
    constexpr baselines::Mechanism kMechs[] = {
        baselines::Mechanism::kBaseline, baselines::Mechanism::kWatchdog,
        baselines::Mechanism::kPa, baselines::Mechanism::kAos,
        baselines::Mechanism::kPaAos,
    };
    for (const auto mech : kMechs) {
        for (u64 seed = 1; seed <= 2; ++seed) {
            core::AosSystem system(profile,
                                   faultOptions(mech, kAllFaults, seed));
            const core::RunResult result = system.run();
            EXPECT_TRUE(result.faults.armed);
            EXPECT_EQ(result.faults.simFault, 0u);
            for (const FaultEvent &event : result.faultEvents)
                EXPECT_NE(event.outcome, FaultOutcome::kPending);
            // Timing stats still come out of a faulted run.
            EXPECT_GT(result.core.cycles, 0u);
            EXPECT_GT(result.core.committed, 0u);
        }
    }
}

TEST(SystemFaults, RunsAreBitDeterministic)
{
    const workloads::WorkloadProfile &profile =
        workloads::profileByName("mcf");
    const auto options =
        faultOptions(baselines::Mechanism::kPaAos, kAllFaults, 99);
    core::AosSystem a(profile, options);
    core::AosSystem b(profile, options);
    const core::RunResult ra = a.run();
    const core::RunResult rb = b.run();
    EXPECT_EQ(ra.core.cycles, rb.core.cycles);
    EXPECT_EQ(ra.faults.injected, rb.faults.injected);
    ASSERT_EQ(ra.faultEvents.size(), rb.faultEvents.size());
    for (size_t i = 0; i < ra.faultEvents.size(); ++i) {
        EXPECT_EQ(ra.faultEvents[i].type, rb.faultEvents[i].type);
        EXPECT_EQ(ra.faultEvents[i].outcome, rb.faultEvents[i].outcome);
        EXPECT_EQ(ra.faultEvents[i].trigger, rb.faultEvents[i].trigger);
    }
}

TEST(SystemFaults, InapplicableClassesAreFilteredOut)
{
    const workloads::WorkloadProfile &profile =
        workloads::profileByName("gcc");
    // Metadata/MCU faults make no sense without an HBT: the baseline
    // plan must come out empty rather than firing into nothing.
    core::AosSystem system(
        profile, faultOptions(baselines::Mechanism::kBaseline,
                              kMetadataFaults | kMcuFaults, 5));
    const core::RunResult result = system.run();
    EXPECT_TRUE(result.faults.armed);
    EXPECT_EQ(result.faults.scheduled, 0u);
    EXPECT_EQ(result.faults.injected, 0u);
}

TEST(SystemFaults, StatSetEmitsFaultScalars)
{
    const workloads::WorkloadProfile &profile =
        workloads::profileByName("gcc");
    core::AosSystem system(
        profile, faultOptions(baselines::Mechanism::kAos,
                              faultBit(FaultType::kHbtLineZap), 3));
    const core::RunResult result = system.run();
    const StatSet set = result.toStatSet();
    EXPECT_TRUE(set.has("fault_scheduled"));
    EXPECT_TRUE(set.has("fault_injected"));
    EXPECT_TRUE(set.has("fault_sim_fault"));
    EXPECT_TRUE(set.has("fault_coverage"));
    EXPECT_DOUBLE_EQ(set.value("fault_sim_fault"), 0.0);
    EXPECT_GT(set.value("fault_injected"), 0.0);
    EXPECT_TRUE(set.has("fault_hbt_line_zap_injected"));
    EXPECT_TRUE(set.has("fault_hbt_line_zap_detected"));

    // A clean run emits no fault scalars at all.
    baselines::SystemOptions clean;
    clean.mech = baselines::Mechanism::kAos;
    clean.measureOps = 6'000;
    core::AosSystem clean_system(profile, clean);
    const StatSet clean_set = clean_system.run().toStatSet();
    EXPECT_FALSE(clean_set.has("fault_injected"));
}

TEST(SystemFaults, DetectionShowsUpInOsViolations)
{
    // A zapped HBT line is not just classified as detected — when the
    // orphaned chunk is re-accessed, the timing pipeline raises a real
    // AOS exception which the OS logs as a violation. Whether a given
    // victim is re-accessed depends on the (deterministic) workload, so
    // use libquantum — five live chunks, 75% heap accesses, every
    // victim hot — and scan a fixed seed list.
    const workloads::WorkloadProfile &profile =
        workloads::profileByName("libquantum");
    bool manifested = false;
    for (u64 seed = 1; seed <= 8 && !manifested; ++seed) {
        const auto options = faultOptions(
            baselines::Mechanism::kAos, faultBit(FaultType::kHbtLineZap),
            seed);
        core::AosSystem faulted(profile, options);
        const core::RunResult result = faulted.run();
        ASSERT_GT(result.faults.injected, 0u);
        manifested = result.faults.detectedBounds > 0 &&
                     result.violations > 0;
    }
    EXPECT_TRUE(manifested);
}

} // namespace
} // namespace aos::faultinject
