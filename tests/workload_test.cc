/**
 * @file
 * Tests for the workload profiles, the synthetic generator and the
 * Table II/III allocation replay.
 */

#include <map>

#include <gtest/gtest.h>

#include "workloads/alloc_replay.hh"
#include "workloads/synthetic_workload.hh"
#include "workloads/workload_profile.hh"

namespace aos::workloads {
namespace {

TEST(Profiles, AllSixteenSpecBenchmarksPresent)
{
    const auto &profiles = specProfiles();
    ASSERT_EQ(profiles.size(), 16u);
    const char *expected[] = {
        "bzip2", "gcc", "mcf", "milc", "namd", "gobmk", "soplex",
        "povray", "hmmer", "sjeng", "libquantum", "h264ref", "lbm",
        "omnetpp", "astar", "sphinx3"};
    for (size_t i = 0; i < 16; ++i)
        EXPECT_EQ(profiles[i].name, expected[i]);
}

TEST(Profiles, TableIIGroundTruthPreserved)
{
    // Spot-check the paper's Table II rows encoded in the profiles.
    EXPECT_EQ(profileByName("gcc").fullAllocCalls, 1846825u);
    EXPECT_EQ(profileByName("gcc").fullMaxActive, 81825u);
    EXPECT_EQ(profileByName("mcf").fullAllocCalls, 8u);
    EXPECT_EQ(profileByName("omnetpp").fullAllocCalls, 21244416u);
    EXPECT_EQ(profileByName("omnetpp").fullMaxActive, 1993737u);
    EXPECT_EQ(profileByName("sphinx3").fullDeallocCalls, 14024020u);
    EXPECT_EQ(profileByName("sjeng").fullDeallocCalls, 2u);
}

TEST(Profiles, RealWorldTableIIIPresent)
{
    ASSERT_EQ(realWorldProfiles().size(), 6u);
    EXPECT_EQ(profileByName("apache").fullMaxActive, 7592u);
    EXPECT_EQ(profileByName("pbzip2").fullAllocCalls, 12425u);
    EXPECT_EQ(profileByName("mysql").fullDeallocCalls, 28621u);
}

TEST(Profiles, UnknownNameDies)
{
    EXPECT_DEATH(profileByName("doom"), "unknown workload");
}

TEST(Profiles, MixesAreSane)
{
    for (const auto &p : specProfiles()) {
        const unsigned total = p.loadPerMille + p.storePerMille +
                               p.branchPerMille + p.fpPerMille +
                               p.callPerMille;
        EXPECT_LT(total, 1000u) << p.name;
        EXPECT_GT(p.heapFraction, 0.0) << p.name;
        EXPECT_LE(p.heapFraction, 1.0) << p.name;
        EXPECT_GE(p.heapChunkMax, p.heapChunkMin) << p.name;
        EXPECT_GT(p.targetActive, 0u) << p.name;
    }
}

TEST(Synthetic, WarmupBuildsLiveSetThenMarksPhase)
{
    const auto &profile = profileByName("namd"); // 1316 active
    SyntheticWorkload workload(profile);
    ir::MicroOp op;
    u64 guard = 0;
    while (workload.next(op) && op.kind != ir::OpKind::kPhaseMark) {
        ASSERT_LT(++guard, 1'000'000u) << "phase mark never arrived";
    }
    EXPECT_EQ(op.kind, ir::OpKind::kPhaseMark);
    EXPECT_EQ(workload.allocator().liveCount(), profile.targetActive);
}

TEST(Synthetic, MeasureOpsBoundsTheStream)
{
    SyntheticWorkload workload(profileByName("namd"), 5000);
    ir::MicroOp op;
    bool in_measure = false;
    u64 measured = 0;
    while (workload.next(op)) {
        if (op.kind == ir::OpKind::kPhaseMark) {
            in_measure = true;
            continue;
        }
        measured += in_measure;
    }
    // A multi-op event (malloc/free sequence) may straddle the bound;
    // the stream ends at the first refill past the limit.
    EXPECT_GE(measured, 5000u);
    EXPECT_LE(measured, 5012u);
}

TEST(Synthetic, DeterministicForSameSeed)
{
    SyntheticWorkload a(profileByName("gobmk"), 2000);
    SyntheticWorkload b(profileByName("gobmk"), 2000);
    ir::MicroOp oa, ob;
    while (true) {
        const bool ha = a.next(oa);
        const bool hb = b.next(ob);
        ASSERT_EQ(ha, hb);
        if (!ha)
            break;
        ASSERT_EQ(oa.kind, ob.kind);
        ASSERT_EQ(oa.addr, ob.addr);
        ASSERT_EQ(oa.taken, ob.taken);
    }
}

TEST(Synthetic, SaltChangesTheStream)
{
    SyntheticWorkload a(profileByName("gobmk"), 2000, 1);
    SyntheticWorkload b(profileByName("gobmk"), 2000, 2);
    ir::MicroOp oa, ob;
    unsigned diff = 0;
    for (int i = 0; i < 500; ++i) {
        if (!a.next(oa) || !b.next(ob))
            break;
        diff += oa.kind != ob.kind || oa.addr != ob.addr;
    }
    EXPECT_GT(diff, 0u);
}

TEST(Synthetic, MixApproximatesProfile)
{
    const auto &profile = profileByName("hmmer");
    SyntheticWorkload workload(profile, 200000);
    ir::MicroOp op;
    bool in_measure = false;
    std::map<ir::OpKind, u64> counts;
    u64 total = 0;
    while (workload.next(op)) {
        if (op.kind == ir::OpKind::kPhaseMark) {
            in_measure = true;
            continue;
        }
        if (!in_measure)
            continue;
        ++counts[op.kind];
        ++total;
    }
    const double loads =
        static_cast<double>(counts[ir::OpKind::kLoad]) / total;
    const double branches =
        static_cast<double>(counts[ir::OpKind::kBranch]) / total;
    EXPECT_NEAR(loads, profile.loadPerMille / 1000.0, 0.05);
    EXPECT_NEAR(branches, profile.branchPerMille / 1000.0, 0.03);
    EXPECT_GT(counts[ir::OpKind::kMallocMark], 0u);
    EXPECT_GT(counts[ir::OpKind::kFreeMark], 0u);
}

TEST(Synthetic, HeapAccessesCarryChunkAnnotations)
{
    SyntheticWorkload workload(profileByName("hmmer"), 50000);
    auto &heap = workload.allocator();
    ir::MicroOp op;
    bool in_measure = false;
    u64 heap_ops = 0, checked = 0;
    while (workload.next(op)) {
        if (op.kind == ir::OpKind::kPhaseMark) {
            in_measure = true;
            continue;
        }
        if (!in_measure || op.kind != ir::OpKind::kLoad)
            continue;
        if (op.chunkBase != 0) {
            ++heap_ops;
            // The annotated chunk must exist and contain the address
            // at generation time.
            if (++checked <= 2000) {
                ASSERT_TRUE(heap.inBounds(op.chunkBase, op.addr))
                    << "generator produced an out-of-bounds access";
            }
        }
    }
    EXPECT_GT(heap_ops, 10000u) << "hmmer should be heap-dominated";
}

TEST(Synthetic, SteadyStateKeepsLiveSetNearTarget)
{
    const auto &profile = profileByName("povray");
    SyntheticWorkload workload(profile, 300000);
    ir::MicroOp op;
    while (workload.next(op)) {
    }
    const u64 live = workload.allocator().liveCount();
    EXPECT_NEAR(static_cast<double>(live),
                static_cast<double>(profile.targetActive),
                static_cast<double>(profile.targetActive) * 0.05);
}

TEST(Synthetic, CallsAndReturnsBalance)
{
    SyntheticWorkload workload(profileByName("povray"), 100000);
    ir::MicroOp op;
    i64 depth = 0;
    i64 max_depth = 0;
    while (workload.next(op)) {
        if (op.kind == ir::OpKind::kCall)
            ++depth;
        else if (op.kind == ir::OpKind::kRet)
            --depth;
        ASSERT_GE(depth, 0) << "return without a call";
        max_depth = std::max(max_depth, depth);
    }
    EXPECT_LE(max_depth, 13);
}

TEST(Replay, ReproducesTableIIColumns)
{
    // Small benchmarks replay exactly.
    for (const char *name : {"mcf", "sjeng", "lbm", "bzip2", "milc"}) {
        const auto &p = profileByName(name);
        const ReplayResult r = replayProfile(p);
        EXPECT_EQ(r.allocCalls, p.fullAllocCalls) << name;
        EXPECT_EQ(r.deallocCalls, p.fullDeallocCalls) << name;
        EXPECT_EQ(r.maxActive, p.fullMaxActive) << name;
    }
}

TEST(Replay, ReproducesMediumBenchmark)
{
    const auto &p = profileByName("gobmk");
    const ReplayResult r = replayProfile(p);
    EXPECT_EQ(r.allocCalls, p.fullAllocCalls);
    EXPECT_EQ(r.deallocCalls, p.fullDeallocCalls);
    EXPECT_EQ(r.maxActive, p.fullMaxActive);
}

TEST(Replay, ScalingPreservesInvariants)
{
    const auto &p = profileByName("povray");
    const ReplayResult r = replayProfile(p, 100);
    EXPECT_EQ(r.allocCalls, p.fullAllocCalls / 100);
    EXPECT_LE(r.maxActive, r.allocCalls);
    EXPECT_LE(r.deallocCalls, r.allocCalls);
}

TEST(Replay, InconsistentRowFollowsCallCounts)
{
    // soplex's published row is internally inconsistent (see
    // alloc_replay.cc); the call counts win.
    const auto &p = profileByName("soplex");
    const ReplayResult r = replayProfile(p);
    EXPECT_EQ(r.allocCalls, p.fullAllocCalls);
    EXPECT_EQ(r.deallocCalls, p.fullDeallocCalls);
    EXPECT_EQ(r.maxActive, p.fullAllocCalls - p.fullDeallocCalls);
}

} // namespace
} // namespace aos::workloads
