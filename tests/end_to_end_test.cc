/**
 * @file
 * End-to-end sweeps: every SPEC profile under every mechanism, small
 * windows, asserting the invariants that must hold regardless of
 * profile or configuration.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/aos_system.hh"

namespace aos::core {
namespace {

using baselines::Mechanism;
using baselines::SystemOptions;

class ProfileSweep
    : public ::testing::TestWithParam<const workloads::WorkloadProfile *>
{
  protected:
    static void SetUpTestSuite() { setQuiet(true); }
};

TEST_P(ProfileSweep, AosRunIsCleanAndAccounted)
{
    const auto &profile = *GetParam();
    SystemOptions options;
    options.mech = Mechanism::kAos;
    options.measureOps = 15000;
    AosSystem system(profile, options);
    const RunResult r = system.run();

    // Invariant 1: benign workloads never trip the checker.
    EXPECT_EQ(r.violations, 0u) << profile.name;
    EXPECT_EQ(r.mcuStats.boundsFailures, 0u) << profile.name;

    // Invariant 2: all work committed, cycles advanced.
    EXPECT_GE(r.mix.total, options.measureOps) << profile.name;
    EXPECT_GT(r.core.cycles, 0u) << profile.name;
    EXPECT_GT(r.core.ipc(), 0.05) << profile.name;
    EXPECT_LT(r.core.ipc(), 8.01) << profile.name;

    // Invariant 3: the live set's bounds are resident in the HBT.
    EXPECT_GE(r.hbt.occupied, profile.targetActive * 95 / 100)
        << profile.name;

    // Invariant 4: checked + unchecked covers every load/store the
    // core committed.
    EXPECT_EQ(r.mcuStats.checkedOps + r.mcuStats.uncheckedOps,
              r.core.loads + r.core.stores)
        << profile.name;

    // Invariant 5: signedness accounting is consistent between the
    // instrumented stream and the MCU's view.
    EXPECT_EQ(r.mix.signedLoads + r.mix.signedStores,
              r.mcuStats.checkedOps)
        << profile.name;
}

TEST_P(ProfileSweep, MechanismsPreserveProgramWork)
{
    // The source-op bound guarantees every mechanism runs the same
    // program; committed micro-ops may only grow with instrumentation.
    const auto &profile = *GetParam();
    SystemOptions options;
    options.measureOps = 10000;

    u64 baseline_committed = 0;
    for (Mechanism mech :
         {Mechanism::kBaseline, Mechanism::kPa, Mechanism::kAos,
          Mechanism::kPaAos, Mechanism::kWatchdog, Mechanism::kAsan}) {
        options.mech = mech;
        AosSystem system(profile, options);
        const RunResult r = system.run();
        if (mech == Mechanism::kBaseline) {
            baseline_committed = r.core.committed;
        } else {
            EXPECT_GE(r.core.committed, baseline_committed)
                << profile.name << "/" << baselines::mechanismName(mech);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecProfiles, ProfileSweep,
    ::testing::ValuesIn([] {
        std::vector<const workloads::WorkloadProfile *> ptrs;
        for (const auto &p : workloads::specProfiles())
            ptrs.push_back(&p);
        return ptrs;
    }()),
    [](const ::testing::TestParamInfo<
        const workloads::WorkloadProfile *> &info) {
        return info.param->name;
    });

} // namespace
} // namespace aos::core
