/**
 * @file
 * Statistical tests of QARMA-64 as a PAC generator: the properties
 * SVI actually relies on (uniformity over the truncated output,
 * per-bit balance, independence from allocator address patterns).
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "alloc/heap_allocator.hh"
#include "common/random.hh"
#include "qarma/qarma64.hh"

namespace aos::qarma {
namespace {

constexpr Key128 kKey{0x84be85ce9804e94bull, 0xec2802d4e0a488e9ull};
constexpr u64 kContext = 0x477d469dec0b8762ull;

TEST(QarmaStats, CiphertextBitsAreBalanced)
{
    // Over sequential plaintexts, every ciphertext bit should be set
    // ~50% of the time.
    const Qarma64 cipher(Sbox::kSigma1, 7);
    constexpr int kN = 8192;
    int counts[64] = {};
    for (int i = 0; i < kN; ++i) {
        const u64 ct = cipher.encrypt(0x20000000 + i * 16, kContext, kKey);
        for (int b = 0; b < 64; ++b)
            counts[b] += (ct >> b) & 1;
    }
    for (int b = 0; b < 64; ++b) {
        EXPECT_NEAR(static_cast<double>(counts[b]) / kN, 0.5, 0.05)
            << "bit " << b;
    }
}

TEST(QarmaStats, TruncatedPacUniformityChiSquare)
{
    // 16-bit PAC buckets over 2^18 sequential allocator-like inputs:
    // chi-square against uniform must be unremarkable.
    const Qarma64 cipher(Sbox::kSigma1, 7);
    constexpr u64 kBuckets = 1 << 12; // 12-bit PACs for test speed
    constexpr u64 kSamples = u64{1} << 18;
    std::vector<u64> hist(kBuckets, 0);
    for (u64 i = 0; i < kSamples; ++i) {
        const u64 ct =
            cipher.encrypt(0x20000000 + i * 16, kContext, kKey);
        ++hist[ct & (kBuckets - 1)];
    }
    const double expected =
        static_cast<double>(kSamples) / static_cast<double>(kBuckets);
    double chi2 = 0;
    for (const u64 observed : hist) {
        const double d = static_cast<double>(observed) - expected;
        chi2 += d * d / expected;
    }
    // Degrees of freedom = 4095; mean 4095, stdev ~ sqrt(2*4095) ~ 90.
    // Accept within ~5 sigma.
    EXPECT_GT(chi2, 4095.0 - 450.0);
    EXPECT_LT(chi2, 4095.0 + 450.0);
}

TEST(QarmaStats, AlignedAddressesDoNotBiasLowPacBits)
{
    // malloc() returns 16-aligned addresses: the four zero input bits
    // must not leak structure into the PAC's low bits.
    const Qarma64 cipher(Sbox::kSigma1, 7);
    constexpr int kN = 1 << 14;
    int low_bit = 0;
    for (int i = 0; i < kN; ++i) {
        const u64 ct =
            cipher.encrypt(0x30000000 + static_cast<u64>(i) * 16, kContext, kKey);
        low_bit += ct & 1;
    }
    EXPECT_NEAR(static_cast<double>(low_bit) / kN, 0.5, 0.03);
}

TEST(QarmaStats, RealAllocatorStreamLooksUniform)
{
    // End to end with the actual allocator (mixed sizes, reuse): the
    // per-row occupancy must match Poisson, as in Fig. 11.
    const Qarma64 cipher(Sbox::kSigma1, 7);
    alloc::HeapAllocator heap;
    Rng rng(0x57a7);
    constexpr u64 kBuckets = 1 << 10;
    constexpr u64 kSamples = 1 << 16; // lambda = 64
    std::vector<u64> hist(kBuckets, 0);
    for (u64 i = 0; i < kSamples; ++i) {
        const Addr p = heap.malloc(16 + rng.below(2048));
        ASSERT_NE(p, 0u);
        ++hist[cipher.encrypt(p, kContext, kKey) & (kBuckets - 1)];
    }
    double mean = 0, m2 = 0;
    for (const u64 h : hist)
        mean += static_cast<double>(h);
    mean /= kBuckets;
    for (const u64 h : hist) {
        const double d = static_cast<double>(h) - mean;
        m2 += d * d;
    }
    const double stdev = std::sqrt(m2 / kBuckets);
    EXPECT_NEAR(mean, 64.0, 0.01);
    // Poisson(64): sigma = 8.
    EXPECT_NEAR(stdev, 8.0, 1.6);
}

TEST(QarmaStats, DifferentInstancesDecorrelate)
{
    // sigma0/sigma1/sigma2 and different round counts must produce
    // unrelated streams for the same inputs.
    const Qarma64 a(Sbox::kSigma1, 7);
    const Qarma64 b(Sbox::kSigma2, 7);
    const Qarma64 c(Sbox::kSigma1, 5);
    int same_ab = 0, same_ac = 0;
    constexpr int kN = 4096;
    for (int i = 0; i < kN; ++i) {
        const u64 x = 0x20000000 + static_cast<u64>(i) * 16;
        const u64 ca = a.encrypt(x, kContext, kKey) & 0xffff;
        same_ab += ca == (b.encrypt(x, kContext, kKey) & 0xffff);
        same_ac += ca == (c.encrypt(x, kContext, kKey) & 0xffff);
    }
    // Chance collisions only: ~ kN / 65536 ~ 0.06 expected.
    EXPECT_LT(same_ab, 5);
    EXPECT_LT(same_ac, 5);
}

} // namespace
} // namespace aos::qarma
