/**
 * @file
 * Unit tests for the glibc-style heap allocator model.
 */

#include <set>

#include <gtest/gtest.h>

#include "alloc/heap_allocator.hh"
#include "common/random.hh"

namespace aos::alloc {
namespace {

TEST(Allocator, ReturnsAlignedDistinctChunks)
{
    HeapAllocator heap;
    std::set<Addr> seen;
    for (int i = 0; i < 100; ++i) {
        const Addr p = heap.malloc(24);
        ASSERT_NE(p, 0u);
        EXPECT_EQ(p & 15, 0u) << "malloc must be 16-byte aligned";
        EXPECT_TRUE(seen.insert(p).second) << "chunk overlap";
    }
}

TEST(Allocator, ZeroSizeBehavesLikeGlibc)
{
    HeapAllocator heap;
    const Addr p = heap.malloc(0);
    EXPECT_NE(p, 0u);
    EXPECT_EQ(heap.free(p), FreeResult::kOk);
}

TEST(Allocator, UsableSizeAndBounds)
{
    HeapAllocator heap;
    const Addr p = heap.malloc(100);
    EXPECT_EQ(heap.usableSize(p), 100u);
    EXPECT_TRUE(heap.inBounds(p, p));
    EXPECT_TRUE(heap.inBounds(p, p + 99));
    EXPECT_FALSE(heap.inBounds(p, p + 100));
    EXPECT_FALSE(heap.inBounds(p, p - 1));
}

TEST(Allocator, FreeMakesChunkDead)
{
    HeapAllocator heap;
    const Addr p = heap.malloc(64);
    EXPECT_TRUE(heap.live(p));
    EXPECT_EQ(heap.free(p), FreeResult::kOk);
    EXPECT_FALSE(heap.live(p));
    EXPECT_EQ(heap.usableSize(p), 0u);
}

TEST(Allocator, FastbinLifoReuse)
{
    HeapAllocator heap;
    const Addr a = heap.malloc(48);
    heap.malloc(48); // keep the heap from collapsing
    heap.free(a);
    // Same size class comes back LIFO from the fastbin.
    EXPECT_EQ(heap.malloc(48), a);
    EXPECT_GT(heap.stats().fastbinHits, 0u);
}

TEST(Allocator, LargeChunksCoalesce)
{
    HeapAllocator heap;
    const Addr a = heap.malloc(4096);
    const Addr b = heap.malloc(4096);
    const Addr guard = heap.malloc(4096);
    (void)guard;
    heap.free(a);
    heap.free(b); // should merge with a
    EXPECT_GT(heap.stats().coalesces, 0u);
    // A request the size of both should fit in the merged hole.
    const Addr big = heap.malloc(8192);
    EXPECT_EQ(big, a);
}

TEST(Allocator, SplitsLargeFreeChunks)
{
    HeapAllocator heap;
    const Addr a = heap.malloc(8192);
    heap.malloc(16); // guard
    heap.free(a);
    const Addr small = heap.malloc(1024);
    EXPECT_EQ(small, a);
    EXPECT_GT(heap.stats().splits, 0u);
    // The remainder must still be usable.
    const Addr rest = heap.malloc(4096);
    EXPECT_GT(rest, small);
    EXPECT_LT(rest, a + 8192 + 16);
}

TEST(Allocator, InvalidFreeRejected)
{
    HeapAllocator heap;
    heap.malloc(64);
    EXPECT_EQ(heap.free(0x123450), FreeResult::kInvalidPtr);
    EXPECT_EQ(heap.stats().failedFrees, 1u);
}

TEST(Allocator, FastbinHeadDoubleFreeCaught)
{
    HeapAllocator heap;
    const Addr a = heap.malloc(48);
    heap.free(a);
    // a is at the head of its fastbin: glibc's one double-free check.
    EXPECT_EQ(heap.free(a), FreeResult::kDoubleFree);
}

TEST(Allocator, FastbinNonHeadDoubleFreeCorrupts)
{
    // The classic fastbin-dup attack: free(a); free(b); free(a) is NOT
    // caught by glibc, and isn't caught here either — this is the gap
    // AOS closes.
    HeapAllocator heap;
    const Addr a = heap.malloc(48);
    const Addr b = heap.malloc(48);
    heap.free(a);
    heap.free(b);
    EXPECT_EQ(heap.free(a), FreeResult::kCorrupting);
}

TEST(Allocator, LargeChunkDoubleFreeCaught)
{
    HeapAllocator heap;
    const Addr a = heap.malloc(4096);
    heap.malloc(16);
    heap.free(a);
    EXPECT_EQ(heap.free(a), FreeResult::kDoubleFree);
}

TEST(Allocator, HouseOfSpiritForgedChunkPoisonsBin)
{
    // Fig. 1: the attacker crafts a fake fastbin-sized chunk header at
    // an address they control and frees it; the next malloc of that
    // class returns the attacker-controlled memory.
    HeapAllocator heap;
    const Addr fake = 0x00601000; // "stack/global" memory
    heap.forgeChunkHeader(fake, 0x30);
    EXPECT_EQ(heap.free(fake), FreeResult::kCorrupting);
    const Addr victim = heap.malloc(0x30);
    EXPECT_EQ(victim, fake);
}

TEST(Allocator, ForgedNonFastbinSizeRejected)
{
    HeapAllocator heap;
    const Addr fake = 0x00602000;
    heap.forgeChunkHeader(fake, 1 << 20); // too big for a fastbin
    EXPECT_EQ(heap.free(fake), FreeResult::kInvalidPtr);
}

TEST(Allocator, StatsTrackPeakActive)
{
    HeapAllocator heap;
    std::vector<Addr> ptrs;
    for (int i = 0; i < 10; ++i)
        ptrs.push_back(heap.malloc(64));
    for (int i = 0; i < 5; ++i) {
        heap.free(ptrs.back());
        ptrs.pop_back();
    }
    for (int i = 0; i < 3; ++i)
        ptrs.push_back(heap.malloc(64));
    EXPECT_EQ(heap.stats().allocCalls, 13u);
    EXPECT_EQ(heap.stats().freeCalls, 5u);
    EXPECT_EQ(heap.stats().active, 8u);
    EXPECT_EQ(heap.stats().maxActive, 10u);
}

TEST(Allocator, LiveChunkEnumeratesAllLive)
{
    HeapAllocator heap;
    std::set<Addr> expect;
    for (int i = 0; i < 20; ++i)
        expect.insert(heap.malloc(32));
    std::set<Addr> got;
    for (u64 i = 0; i < heap.liveCount(); ++i)
        got.insert(heap.liveChunk(i));
    EXPECT_EQ(got, expect);
}

TEST(Allocator, ResetRestoresEmptyHeap)
{
    HeapAllocator heap;
    heap.malloc(64);
    heap.reset();
    EXPECT_EQ(heap.liveCount(), 0u);
    EXPECT_EQ(heap.stats().allocCalls, 0u);
    EXPECT_EQ(heap.heapTop(), heap.heapBase());
}

TEST(Allocator, ExhaustionReturnsNull)
{
    HeapAllocator heap(0x20000000, 1 << 16); // 64 KB heap
    Addr last = 1;
    int count = 0;
    while ((last = heap.malloc(1024)) != 0)
        ++count;
    EXPECT_GT(count, 30);
    EXPECT_LE(count, 64);
}

TEST(Allocator, RandomChurnInvariants)
{
    // Property test: under heavy random churn, live accounting stays
    // consistent and chunks never overlap.
    HeapAllocator heap;
    Rng rng(99);
    std::vector<std::pair<Addr, u64>> live;
    for (int i = 0; i < 20000; ++i) {
        if (live.empty() || rng.chance(0.55)) {
            const u64 size = 16 + rng.below(2048);
            const Addr p = heap.malloc(size);
            ASSERT_NE(p, 0u);
            for (const auto &[base, sz] : live) {
                ASSERT_TRUE(p + size <= base || p >= base + sz)
                    << "overlap with live chunk";
            }
            live.emplace_back(p, size);
        } else {
            const u64 idx = rng.below(live.size());
            ASSERT_EQ(heap.free(live[idx].first), FreeResult::kOk);
            live[idx] = live.back();
            live.pop_back();
        }
        ASSERT_EQ(heap.liveCount(), live.size());
    }
}

} // namespace
} // namespace aos::alloc
