/**
 * @file
 * Tests for the strict environment-variable parsing (common/env.hh):
 * complete-integer acceptance, garbage/overflow/sign rejection, the
 * unset/empty/0-means-fallback convention, and the fatal() diagnostics
 * that name the offending variable.
 */

#include <climits>
#include <cstdlib>

#include <gtest/gtest.h>

#include "common/env.hh"

namespace aos {
namespace {

TEST(ParseU64, AcceptsCompleteIntegers)
{
    u64 v = 0;
    EXPECT_TRUE(parseU64("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(parseU64("42", v));
    EXPECT_EQ(v, 42u);
    EXPECT_TRUE(parseU64("18446744073709551615", v)); // UINT64_MAX
    EXPECT_EQ(v, ~u64{0});
    // strtoull base-0 rules: hex and octal prefixes.
    EXPECT_TRUE(parseU64("0x10", v));
    EXPECT_EQ(v, 16u);
    EXPECT_TRUE(parseU64("010", v));
    EXPECT_EQ(v, 8u);
}

TEST(ParseU64, RejectsGarbage)
{
    u64 v = 99;
    EXPECT_FALSE(parseU64(nullptr, v));
    EXPECT_FALSE(parseU64("", v));
    EXPECT_FALSE(parseU64("garbage", v));
    EXPECT_FALSE(parseU64("4x", v));      // Trailing junk.
    EXPECT_FALSE(parseU64("1e6", v));     // Not an integer literal.
    EXPECT_FALSE(parseU64("12 ", v));     // Trailing whitespace.
    EXPECT_FALSE(parseU64(" 12", v));     // Leading whitespace.
    EXPECT_FALSE(parseU64("+12", v));     // Signs are not digits.
    EXPECT_FALSE(parseU64("-3", v));      // strtoull would wrap this!
    EXPECT_FALSE(parseU64("18446744073709551616", v)); // Overflow.
    EXPECT_EQ(v, 99u); // Rejection never clobbers the output.
}

TEST(ParseUnsigned, NarrowsWithOverflowCheck)
{
    unsigned v = 0;
    EXPECT_TRUE(parseUnsigned("123", v));
    EXPECT_EQ(v, 123u);
    EXPECT_TRUE(parseUnsigned("4294967295", v)); // UINT_MAX
    EXPECT_EQ(v, UINT_MAX);
    EXPECT_FALSE(parseUnsigned("4294967296", v)); // UINT_MAX + 1.
    EXPECT_FALSE(parseUnsigned("-1", v));
}

TEST(EnvU64, UnsetEmptyAndZeroMeanFallback)
{
    ::unsetenv("AOS_TEST_ENV_U64");
    EXPECT_EQ(envU64("AOS_TEST_ENV_U64", 7), 7u);
    ::setenv("AOS_TEST_ENV_U64", "", 1);
    EXPECT_EQ(envU64("AOS_TEST_ENV_U64", 7), 7u);
    ::setenv("AOS_TEST_ENV_U64", "0", 1);
    EXPECT_EQ(envU64("AOS_TEST_ENV_U64", 7), 7u);
    ::setenv("AOS_TEST_ENV_U64", "12", 1);
    EXPECT_EQ(envU64("AOS_TEST_ENV_U64", 7), 12u);
    ::unsetenv("AOS_TEST_ENV_U64");
}

TEST(EnvU64DeathTest, GarbageIsFatalAndNamesTheVariable)
{
    ::setenv("AOS_TEST_ENV_U64", "1e6", 1);
    EXPECT_DEATH(envU64("AOS_TEST_ENV_U64", 7), "AOS_TEST_ENV_U64");
    ::setenv("AOS_TEST_ENV_U64", "-1", 1);
    EXPECT_DEATH(envU64("AOS_TEST_ENV_U64", 7), "AOS_TEST_ENV_U64");
    ::setenv("AOS_TEST_ENV_U64", "18446744073709551616", 1);
    EXPECT_DEATH(envU64("AOS_TEST_ENV_U64", 7), "AOS_TEST_ENV_U64");
    ::unsetenv("AOS_TEST_ENV_U64");
}

TEST(EnvUnsignedDeathTest, OverflowIsFatal)
{
    ::setenv("AOS_TEST_ENV_UNS", "4294967296", 1);
    EXPECT_DEATH(envUnsigned("AOS_TEST_ENV_UNS", 7), "AOS_TEST_ENV_UNS");
    ::setenv("AOS_TEST_ENV_UNS", "garbage", 1);
    EXPECT_DEATH(envUnsigned("AOS_TEST_ENV_UNS", 7), "AOS_TEST_ENV_UNS");
    ::unsetenv("AOS_TEST_ENV_UNS");
}

TEST(EnvFlag, OffSpellingsAndFallback)
{
    ::unsetenv("AOS_TEST_ENV_FLAG");
    EXPECT_TRUE(envFlag("AOS_TEST_ENV_FLAG", true));
    EXPECT_FALSE(envFlag("AOS_TEST_ENV_FLAG", false));
    ::setenv("AOS_TEST_ENV_FLAG", "0", 1);
    EXPECT_FALSE(envFlag("AOS_TEST_ENV_FLAG", true));
    ::setenv("AOS_TEST_ENV_FLAG", "off", 1);
    EXPECT_FALSE(envFlag("AOS_TEST_ENV_FLAG", true));
    ::setenv("AOS_TEST_ENV_FLAG", "1", 1);
    EXPECT_TRUE(envFlag("AOS_TEST_ENV_FLAG", false));
    ::unsetenv("AOS_TEST_ENV_FLAG");
}

TEST(EnvString, FallbackWhenUnset)
{
    ::unsetenv("AOS_TEST_ENV_STR");
    EXPECT_EQ(envString("AOS_TEST_ENV_STR"), "");
    EXPECT_EQ(envString("AOS_TEST_ENV_STR", "dflt"), "dflt");
    ::setenv("AOS_TEST_ENV_STR", "/tmp/ckpt", 1);
    EXPECT_EQ(envString("AOS_TEST_ENV_STR", "dflt"), "/tmp/ckpt");
    ::unsetenv("AOS_TEST_ENV_STR");
}

} // namespace
} // namespace aos
