/**
 * @file
 * Tests for the distributed campaign fabric (campaign/fabric):
 * protocol payload round trips and strict decode rejection, the
 * evaluateHello admission matrix, checkpoint-record wire validation
 * (RESULT frames carry exactly those bytes), and end-to-end runs with
 * real worker processes — forked without exec, calling serveCampaign()
 * directly — covering serial-vs-distributed canonical byte parity,
 * identity-mismatch fallback, defector-worker reassignment, resuming
 * a serial checkpoint into a fabric run, and orphaned-worker
 * self-cancellation when the coordinator dies.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "campaign/campaign.hh"
#include "campaign/checkpoint.hh"
#include "campaign/fabric/fabric.hh"
#include "campaign/fabric/protocol.hh"
#include "common/cancel.hh"
#include "common/fsio.hh"
#include "common/logging.hh"
#include "common/netio.hh"

namespace aos::campaign {
namespace {

using fabric::FrameType;

/** Self-deleting scratch directory. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/aos_fabric_test_XXXXXX";
        const char *made = ::mkdtemp(tmpl);
        EXPECT_NE(made, nullptr);
        path = made ? made : "";
    }

    ~TempDir()
    {
        if (path.empty())
            return;
        for (const std::string &name : fsio::listDir(path))
            fsio::removeFile(path + "/" + name);
        ::rmdir(path.c_str());
    }
};

netio::Address
unixAddr(const TempDir &dir, const char *name)
{
    netio::Address addr;
    addr.kind = netio::Address::Kind::kUnix;
    addr.path = dir.path + "/" + name;
    return addr;
}

/**
 * An 8-job deterministic campaign: pure cancellable bodies whose stats
 * are functions of the job index, so serial, threaded and distributed
 * runs must all serialize identical canonical JSON.
 */
Campaign
fabricCampaign(CampaignOptions options)
{
    options.name = "fabric-test";
    Campaign c(std::move(options));
    for (int i = 0; i < 8; ++i) {
        Job job;
        job.name = csprintf("job%d", i);
        job.seed = static_cast<u64>(i);
        job.cancellableBody = [i](const CancelToken &cancel)
            -> core::RunResult {
            // ~100ms of cancellable "work": long enough that every
            // forked worker joins while jobs remain (serveCampaign's
            // connect retry is 200ms-grained), short enough for CI.
            for (int slice = 0; slice < 10; ++slice) {
                cancel.throwIfCancelled();
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
            }
            core::RunResult r;
            r.workload = "body";
            r.core.cycles = 10'000u + 137u * static_cast<u64>(i);
            r.core.committed = 1'000u * static_cast<u64>(i) + 13;
            return r;
        };
        c.add(std::move(job));
    }
    return c;
}

std::string
referenceJson()
{
    CampaignOptions options;
    options.workers = 1;
    CampaignResult r = fabricCampaign(options).run();
    EXPECT_TRUE(r.allOk());
    return r.json(/*includeTimings=*/false);
}

/** Fork a worker that serves @p addr via serveCampaign, then _exit:
 *  0 = served, 42 = identity-mismatch rejection. */
pid_t
forkWorker(const CampaignOptions &options, const netio::Address &addr,
           unsigned delayMs = 0)
{
    // Copy outside the child: no allocation between fork and serve.
    const netio::Address target = addr;
    Campaign c = fabricCampaign(options);
    const pid_t pid = ::fork();
    if (pid == 0) {
        if (delayMs)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delayMs));
        const bool served =
            fabric::serveCampaign(c.options(), c.jobs(), target);
        ::_exit(served ? 0 : 42);
    }
    return pid;
}

int
waitForExit(pid_t pid)
{
    int status = 0;
    EXPECT_EQ(::waitpid(pid, &status, 0), pid);
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/** Blocking frame read for the manual (test-side) coordinator. */
bool
readFrame(netio::Socket &sock, netio::FrameDecoder &decoder, u32 &type,
          std::string &payload)
{
    char buf[4096];
    while (!decoder.next(type, payload)) {
        if (decoder.corrupt())
            return false;
        const long n = sock.recvSome(buf, sizeof(buf));
        if (n <= 0)
            return false;
        decoder.feed(buf, static_cast<size_t>(n));
    }
    return true;
}

bool
sendFrame(netio::Socket &sock, FrameType type, const std::string &payload)
{
    return sock.sendAll(
        netio::encodeFrame(static_cast<u32>(type), payload));
}

// --- protocol payloads ----------------------------------------------

TEST(FabricProtocol, HelloRoundTrips)
{
    fabric::Hello h;
    h.checkpointVersion = kCheckpointFormatVersion;
    h.identity = 0x0123456789abcdefULL;
    h.jobCount = 42;
    h.label = "pid 999";
    fabric::Hello back;
    ASSERT_TRUE(fabric::decodeHello(fabric::encodeHello(h), back));
    EXPECT_EQ(back.protocolVersion, fabric::kProtocolVersion);
    EXPECT_EQ(back.checkpointVersion, kCheckpointFormatVersion);
    EXPECT_EQ(back.identity, h.identity);
    EXPECT_EQ(back.jobCount, 42u);
    EXPECT_EQ(back.label, "pid 999");
}

TEST(FabricProtocol, AllPayloadsRejectTruncationAndTrailingBytes)
{
    fabric::Hello h;
    h.label = "x";
    fabric::Welcome w;
    w.accepted = true;
    w.reason = "ok";
    fabric::JobAssign a;
    a.jobId = 7;
    fabric::Heartbeat hb;
    hb.completed = 3;
    const std::string payloads[] = {
        fabric::encodeHello(h), fabric::encodeWelcome(w),
        fabric::encodeJobAssign(a), fabric::encodeHeartbeat(hb)};
    auto decodes = [&](int which, const std::string &p) {
        fabric::Hello oh;
        fabric::Welcome ow;
        fabric::JobAssign oa;
        fabric::Heartbeat ohb;
        switch (which) {
          case 0: return fabric::decodeHello(p, oh);
          case 1: return fabric::decodeWelcome(p, ow);
          case 2: return fabric::decodeJobAssign(p, oa);
          default: return fabric::decodeHeartbeat(p, ohb);
        }
    };
    for (int which = 0; which < 4; ++which) {
        SCOPED_TRACE(which);
        const std::string &good = payloads[which];
        EXPECT_TRUE(decodes(which, good));
        // Every strict prefix is an error, as is any suffix garbage.
        for (size_t cut = 0; cut < good.size(); ++cut)
            EXPECT_FALSE(decodes(which, good.substr(0, cut))) << cut;
        EXPECT_FALSE(decodes(which, good + "x"));
    }
    // A declared string length pointing past the payload must fail,
    // not over-read: claim a 1000-byte label in a short HELLO.
    std::string evil = fabric::encodeHello(h);
    const size_t lenOff = evil.size() - 1 - 4; // label bytes preceded
    evil[lenOff] = static_cast<char>(0xE8);    // by its u32 length.
    evil[lenOff + 1] = 0x03;
    fabric::Hello out;
    EXPECT_FALSE(fabric::decodeHello(evil, out));
}

TEST(FabricProtocol, EvaluateHelloAdmissionMatrix)
{
    fabric::Hello h;
    h.checkpointVersion = kCheckpointFormatVersion;
    h.identity = 0xABCD;
    h.jobCount = 10;

    fabric::Welcome ok = fabric::evaluateHello(h, 0xABCD, 10);
    EXPECT_TRUE(ok.accepted);
    EXPECT_TRUE(ok.reason.empty());

    fabric::Hello wrongProto = h;
    wrongProto.protocolVersion = fabric::kProtocolVersion + 1;
    fabric::Welcome v = fabric::evaluateHello(wrongProto, 0xABCD, 10);
    EXPECT_FALSE(v.accepted);
    EXPECT_NE(v.reason.find("protocol"), std::string::npos) << v.reason;
    EXPECT_FALSE(fabric::isIdentityMismatch(v.reason));

    fabric::Hello wrongCkpt = h;
    wrongCkpt.checkpointVersion = kCheckpointFormatVersion + 1;
    v = fabric::evaluateHello(wrongCkpt, 0xABCD, 10);
    EXPECT_FALSE(v.accepted);
    EXPECT_NE(v.reason.find("checkpoint"), std::string::npos) << v.reason;
    EXPECT_FALSE(fabric::isIdentityMismatch(v.reason));

    v = fabric::evaluateHello(h, 0xBEEF, 10);
    EXPECT_FALSE(v.accepted);
    EXPECT_TRUE(fabric::isIdentityMismatch(v.reason)) << v.reason;

    v = fabric::evaluateHello(h, 0xABCD, 11);
    EXPECT_FALSE(v.accepted);
    EXPECT_NE(v.reason.find("job count"), std::string::npos) << v.reason;
    EXPECT_FALSE(fabric::isIdentityMismatch(v.reason));
}

// --- checkpoint records on the wire ---------------------------------

JobResult
sampleResult()
{
    JobResult r;
    r.id = 5;
    r.name = "wire";
    r.profile = "bzip2";
    r.status = JobStatus::kOk;
    r.attempts = 1;
    r.wallMs = 1.5;
    r.stats.scalar("ipc") = 1.0 / 3.0;
    return r;
}

TEST(FabricWire, CheckpointRecordRoundTripsAndReportsConsumed)
{
    const JobResult r = sampleResult();
    const std::string bytes = encodeCheckpointRecord(r);
    JobResult out;
    size_t consumed = 0;
    ASSERT_TRUE(decodeCheckpointRecord(bytes.data(), bytes.size(), out,
                                       &consumed));
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(out.id, 5u);
    EXPECT_EQ(out.name, "wire");
    EXPECT_FALSE(out.resumed); // Wire ingest counts as executed.
    EXPECT_EQ(out.stats.value("ipc"), 1.0 / 3.0);
}

TEST(FabricWire, CheckpointRecordRejectsCorruption)
{
    const JobResult r = sampleResult();
    const std::string bytes = encodeCheckpointRecord(r);
    JobResult out;

    // Every truncation is rejected (incomplete ≠ decodable).
    for (size_t cut = 0; cut < bytes.size(); cut += 3)
        EXPECT_FALSE(decodeCheckpointRecord(bytes.data(), cut, out));

    // A flipped payload bit fails the CRC.
    std::string flipped = bytes;
    flipped[flipped.size() - 2] ^= 0x08;
    EXPECT_FALSE(
        decodeCheckpointRecord(flipped.data(), flipped.size(), out));

    // A flipped magic byte is rejected before anything else.
    std::string badMagic = bytes;
    badMagic[0] ^= 0xFF;
    EXPECT_FALSE(
        decodeCheckpointRecord(badMagic.data(), badMagic.size(), out));

    // An absurd declared length is rejected from the header alone.
    std::string badLen = bytes;
    badLen[4] = static_cast<char>(0xFF);
    badLen[5] = static_cast<char>(0xFF);
    badLen[6] = static_cast<char>(0xFF);
    badLen[7] = static_cast<char>(0x7F);
    EXPECT_FALSE(
        decodeCheckpointRecord(badLen.data(), badLen.size(), out));
}

// --- end-to-end with forked worker processes ------------------------

TEST(FabricE2E, DistributedRunMatchesSerialByteForByte)
{
    setQuiet(true);
    const std::string reference = referenceJson();

    TempDir dir;
    const netio::Address addr = unixAddr(dir, "coord.sock");
    CampaignOptions options;
    options.fabricListen = addr.str();
    options.fabricHeartbeatSec = 0.1;
    options.progress = false;

    std::vector<pid_t> workers;
    for (int w = 0; w < 3; ++w)
        workers.push_back(forkWorker(options, addr));

    CampaignResult result = fabricCampaign(options).run();
    EXPECT_TRUE(result.allOk());
    EXPECT_EQ(result.executedJobs, 8u);
    EXPECT_EQ(result.resumedJobs, 0u);
    EXPECT_EQ(result.json(false), reference);

    for (const pid_t pid : workers)
        EXPECT_EQ(waitForExit(pid), 0);
}

TEST(FabricE2E, IdentityMismatchRejectionTriggersLocalFallback)
{
    setQuiet(true);
    TempDir dir;
    const netio::Address addr = unixAddr(dir, "coord.sock");
    std::string error;
    netio::Socket listener = netio::listenAt(addr, error);
    ASSERT_TRUE(listener.valid()) << error;

    CampaignOptions options;
    options.fabricHeartbeatSec = 0.1;
    const pid_t pid = forkWorker(options, addr);

    netio::Socket conn = netio::acceptOn(listener);
    ASSERT_TRUE(conn.valid());
    netio::FrameDecoder decoder;
    u32 type = 0;
    std::string payload;
    ASSERT_TRUE(readFrame(conn, decoder, type, payload));
    ASSERT_EQ(type, static_cast<u32>(FrameType::kHello));
    fabric::Hello hello;
    ASSERT_TRUE(fabric::decodeHello(payload, hello));

    // This coordinator runs a *different* campaign: same job count,
    // different identity. The worker must report the rejection by
    // returning false from serveCampaign (exit 42 in the child), which
    // is what lets Campaign::run() fall back to local execution.
    const fabric::Welcome verdict = fabric::evaluateHello(
        hello, hello.identity ^ 1, hello.jobCount);
    ASSERT_FALSE(verdict.accepted);
    ASSERT_TRUE(fabric::isIdentityMismatch(verdict.reason));
    ASSERT_TRUE(sendFrame(conn, FrameType::kWelcome,
                          fabric::encodeWelcome(verdict)));
    EXPECT_EQ(waitForExit(pid), 42);
}

TEST(FabricE2E, DefectorWorkerAssignmentIsReassigned)
{
    setQuiet(true);
    const std::string reference = referenceJson();

    TempDir dir;
    const netio::Address addr = unixAddr(dir, "coord.sock");
    CampaignOptions options;
    options.fabricListen = addr.str();
    options.fabricHeartbeatSec = 0.1;

    // The defector speaks the protocol correctly, accepts an
    // assignment, then silently dies. Its job must come back to the
    // queue and complete on the honest worker, with unchanged bytes.
    Campaign probe = fabricCampaign(options);
    const u64 identity = identityHash(probe.options(), probe.jobs());
    const pid_t defector = ::fork();
    if (defector == 0) {
        std::string err;
        netio::Socket sock;
        for (int i = 0; i < 25 && !sock.valid(); ++i) {
            sock = netio::connectTo(addr, err);
            if (!sock.valid())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(200));
        }
        if (!sock.valid())
            ::_exit(3);
        fabric::Hello hello;
        hello.checkpointVersion = kCheckpointFormatVersion;
        hello.identity = identity;
        hello.jobCount = 8;
        hello.label = "defector";
        if (!sendFrame(sock, FrameType::kHello,
                       fabric::encodeHello(hello)))
            ::_exit(4);
        netio::FrameDecoder decoder;
        u32 type = 0;
        std::string payload;
        if (!readFrame(sock, decoder, type, payload) ||
            type != static_cast<u32>(FrameType::kWelcome))
            ::_exit(5);
        // Take (and abscond with) exactly one assignment.
        if (!readFrame(sock, decoder, type, payload) ||
            type != static_cast<u32>(FrameType::kJobAssign))
            ::_exit(6);
        ::_exit(0);
    }
    // The honest worker joins late so the defector demonstrably held
    // an assignment first.
    const pid_t honest = forkWorker(options, addr, /*delayMs=*/400);

    CampaignResult result = fabricCampaign(options).run();
    EXPECT_TRUE(result.allOk());
    EXPECT_EQ(result.executedJobs, 8u);
    EXPECT_EQ(result.json(false), reference);
    EXPECT_EQ(waitForExit(defector), 0);
    EXPECT_EQ(waitForExit(honest), 0);
}

TEST(FabricE2E, SerialCheckpointResumesIntoFabricRun)
{
    setQuiet(true);
    const std::string reference = referenceJson();
    TempDir ckpt;

    // Serial run, interrupted after ~3 jobs via the shutdown token.
    {
        CancelToken shutdown;
        CampaignOptions options;
        options.workers = 1;
        options.checkpointDir = ckpt.path;
        options.cancel = &shutdown;
        Campaign c = fabricCampaign(options);
        // Trip the token from a watcher once some records are durable.
        std::thread watcher([&]() {
            for (int i = 0; i < 200; ++i) {
                std::string data;
                if (fsio::readFile(ckpt.path + "/shard-000.log", data) &&
                    !data.empty()) {
                    break;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
            }
            shutdown.requestCancel();
        });
        CampaignResult partial = c.run();
        watcher.join();
        EXPECT_GE(partial.executedJobs, 1u);
        EXPECT_LT(partial.executedJobs, 8u);
    }

    // Fabric run over the same checkpoint directory: the fabric knobs
    // are execution-only, so the manifest still matches and only the
    // remainder executes — and the bytes still match the reference.
    TempDir dir;
    const netio::Address addr = unixAddr(dir, "coord.sock");
    CampaignOptions options;
    options.fabricListen = addr.str();
    options.fabricHeartbeatSec = 0.1;
    options.checkpointDir = ckpt.path;
    const pid_t worker = forkWorker(options, addr);

    CampaignResult resumed = fabricCampaign(options).run();
    EXPECT_TRUE(resumed.allOk());
    EXPECT_GE(resumed.resumedJobs, 1u);
    EXPECT_EQ(resumed.resumedJobs + resumed.executedJobs, 8u);
    EXPECT_EQ(resumed.json(false), reference);
    EXPECT_EQ(waitForExit(worker), 0);

    // And a fully-serial rerun of the now-complete checkpoint agrees.
    CampaignOptions serial;
    serial.workers = 1;
    serial.checkpointDir = ckpt.path;
    CampaignResult again = fabricCampaign(serial).run();
    EXPECT_EQ(again.resumedJobs, 8u);
    EXPECT_EQ(again.executedJobs, 0u);
    EXPECT_EQ(again.json(false), reference);
}

TEST(FabricE2E, OrphanedWorkerCancelsInFlightJobPromptly)
{
    setQuiet(true);
    TempDir dir;
    const netio::Address addr = unixAddr(dir, "coord.sock");
    std::string error;
    netio::Socket listener = netio::listenAt(addr, error);
    ASSERT_TRUE(listener.valid()) << error;

    // One endless-until-cancelled job: without orphan detection the
    // worker would grind for the full 20s fuse; with it, the failing
    // heartbeat cancels the attempt within a couple of intervals.
    CampaignOptions options;
    options.name = "orphan-test";
    options.fabricHeartbeatSec = 0.05;
    Campaign c(options);
    Job job;
    job.name = "endless";
    job.cancellableBody = [](const CancelToken &cancel)
        -> core::RunResult {
        for (int i = 0; i < 2000; ++i) { // ~20s fuse if never cancelled.
            cancel.throwIfCancelled();
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        return {};
    };
    c.add(std::move(job));

    const pid_t pid = ::fork();
    if (pid == 0) {
        const bool served =
            fabric::serveCampaign(c.options(), c.jobs(), addr);
        ::_exit(served ? 0 : 42);
    }

    netio::Socket conn = netio::acceptOn(listener);
    ASSERT_TRUE(conn.valid());
    netio::FrameDecoder decoder;
    u32 type = 0;
    std::string payload;
    ASSERT_TRUE(readFrame(conn, decoder, type, payload));
    fabric::Hello hello;
    ASSERT_TRUE(fabric::decodeHello(payload, hello));
    ASSERT_TRUE(sendFrame(conn, FrameType::kWelcome,
                          fabric::encodeWelcome(fabric::evaluateHello(
                              hello, hello.identity, hello.jobCount))));
    fabric::JobAssign assign;
    assign.jobId = 0;
    ASSERT_TRUE(sendFrame(conn, FrameType::kJobAssign,
                          fabric::encodeJobAssign(assign)));

    // Let the job start, then die: the worker's next heartbeat send
    // fails and must abort the attempt.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    const auto t0 = std::chrono::steady_clock::now();
    conn.close();
    listener.close();
    EXPECT_EQ(waitForExit(pid), 0);
    const double tookSec = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    EXPECT_LT(tookSec, 5.0); // Orders of magnitude under the fuse.
}

} // namespace
} // namespace aos::campaign
