/**
 * @file
 * Tests for crash-safe campaign checkpointing (campaign/checkpoint.hh),
 * the filesystem primitives underneath it (common/fsio.hh), and the
 * cooperative CancelToken (common/cancel.hh): durable-record round
 * trips, kill-and-resume byte parity of the canonical JSON, corruption
 * detection (truncated tails, bit flips, foreign/corrupt manifests ⇒
 * re-execution, never silently-trusted records), and shutdown
 * preemption semantics. The chaos tests (DESIGN.md §13) drive the
 * same primitives through injected disk faults: torn-tail truncation
 * makes AppendLog retries safe, a writer under chaos leaves no temp
 * files and a clean load trusts exactly the durably-appended records.
 */

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>

#include <unistd.h>

#include <gtest/gtest.h>

#include "campaign/campaign.hh"
#include "campaign/checkpoint.hh"
#include "common/cancel.hh"
#include "common/chaosio.hh"
#include "common/fsio.hh"
#include "common/logging.hh"

namespace aos::campaign {
namespace {

/** Self-deleting scratch directory for checkpoint tests. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/aos_ckpt_test_XXXXXX";
        const char *made = ::mkdtemp(tmpl);
        EXPECT_NE(made, nullptr);
        path = made ? made : "";
    }

    ~TempDir()
    {
        if (path.empty())
            return;
        for (const std::string &name : fsio::listDir(path))
            fsio::removeFile(path + "/" + name);
        ::rmdir(path.c_str());
    }
};

std::string
shardPath(const std::string &dir)
{
    return dir + "/shard-000.log";
}

/** Flip one bit at @p offset (negative = from the end) of @p path. */
void
flipBit(const std::string &path, long offset)
{
    std::string data;
    ASSERT_TRUE(fsio::readFile(path, data));
    const size_t pos = offset >= 0
                           ? static_cast<size_t>(offset)
                           : data.size() + static_cast<size_t>(offset);
    ASSERT_LT(pos, data.size());
    data[pos] = static_cast<char>(data[pos] ^ 0x40);
    ASSERT_TRUE(fsio::atomicWriteFile(path, data));
}

/**
 * A deterministic 6-job campaign over counting cancellable bodies.
 * @p runs counts actual executions (restored jobs do not bump it);
 * @p shutdown + @p stopAfter trip the shutdown token once that many
 * jobs have completed, modelling a mid-campaign kill.
 */
Campaign
countingCampaign(const std::string &checkpointDir,
                 std::shared_ptr<std::atomic<int>> runs,
                 CancelToken *shutdown = nullptr, int stopAfter = 0,
                 unsigned workers = 1)
{
    CampaignOptions options;
    options.name = "ckpt-test";
    options.workers = workers;
    options.checkpointDir = checkpointDir;
    options.cancel = shutdown;
    Campaign c(options);
    for (int i = 0; i < 6; ++i) {
        Job job;
        job.name = csprintf("job%d", i);
        job.cancellableBody =
            [i, runs, shutdown, stopAfter](const CancelToken &)
            -> core::RunResult {
            core::RunResult r;
            r.workload = "body";
            r.core.cycles = 1000u + static_cast<u64>(i);
            r.core.committed = 100u * static_cast<u64>(i) + 1;
            const int done = runs->fetch_add(1) + 1;
            if (shutdown && stopAfter && done >= stopAfter)
                shutdown->requestCancel();
            return r;
        };
        c.add(std::move(job));
    }
    return c;
}

/** Canonical JSON of the same campaign run with no checkpointing. */
std::string
referenceJson()
{
    auto runs = std::make_shared<std::atomic<int>>(0);
    CampaignResult r = countingCampaign("", runs).run();
    EXPECT_TRUE(r.allOk());
    return r.json(/*includeTimings=*/false);
}

// --- fsio primitives -------------------------------------------------

TEST(Fsio, Crc32MatchesKnownVectors)
{
    // The IEEE 802.3 check value for the ASCII digits "123456789".
    EXPECT_EQ(fsio::crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(fsio::crc32("", 0), 0u);
    // Chaining across a split must equal the one-shot CRC.
    const u32 partial = fsio::crc32("12345", 5);
    EXPECT_EQ(fsio::crc32("6789", 4, partial), 0xCBF43926u);
}

TEST(Fsio, Fnv1a64MatchesKnownVectors)
{
    EXPECT_EQ(fsio::fnv1a64("", 0), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fsio::fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fsio::fnv1a64("foobar", 6), 0x85944171f73967e8ULL);
}

TEST(Fsio, AtomicWriteReplacesWholeFile)
{
    TempDir dir;
    const std::string path = dir.path + "/target";
    ASSERT_TRUE(fsio::atomicWriteFile(path, "first version"));
    std::string back;
    ASSERT_TRUE(fsio::readFile(path, back));
    EXPECT_EQ(back, "first version");
    ASSERT_TRUE(fsio::atomicWriteFile(path, "v2"));
    ASSERT_TRUE(fsio::readFile(path, back));
    EXPECT_EQ(back, "v2");
    // The temp file must not linger after the rename.
    EXPECT_FALSE(fsio::fileExists(path + ".tmp"));
}

TEST(Fsio, AppendLogAppendsAndTruncates)
{
    TempDir dir;
    const std::string path = dir.path + "/log";
    fsio::AppendLog log;
    ASSERT_TRUE(log.open(path));
    ASSERT_TRUE(log.append("aaaa", 4));
    ASSERT_TRUE(log.append("bb", 2));
    log.close();
    std::string back;
    ASSERT_TRUE(fsio::readFile(path, back));
    EXPECT_EQ(back, "aaaabb");
    ASSERT_TRUE(fsio::truncateFile(path, 4));
    ASSERT_TRUE(fsio::readFile(path, back));
    EXPECT_EQ(back, "aaaa");
    // Reopening appends after the truncation point.
    fsio::AppendLog again;
    ASSERT_TRUE(again.open(path));
    ASSERT_TRUE(again.append("cc", 2));
    again.close();
    ASSERT_TRUE(fsio::readFile(path, back));
    EXPECT_EQ(back, "aaaacc");
}

// --- CancelToken -----------------------------------------------------

TEST(Cancel, RequestLatchesFirstReason)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelToken::Reason::kNone);
    token.requestCancel(CancelToken::Reason::kShutdown);
    token.requestCancel(CancelToken::Reason::kDeadline); // Too late.
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelToken::Reason::kShutdown);
    EXPECT_THROW(token.throwIfCancelled(), CancelledException);
}

TEST(Cancel, ExpiredDeadlineTripsWithDeadlineReason)
{
    CancelToken token;
    token.setDeadlineAfter(-1.0); // Already past.
    EXPECT_TRUE(token.cancelled());
    EXPECT_EQ(token.reason(), CancelToken::Reason::kDeadline);
    CancelToken patient;
    patient.setDeadlineAfter(3600.0);
    EXPECT_FALSE(patient.cancelled());
}

TEST(Cancel, ParentTripPropagatesToChild)
{
    CancelToken parent;
    CancelToken child(&parent);
    EXPECT_FALSE(child.cancelled());
    parent.requestCancel();
    EXPECT_TRUE(child.cancelled());
    EXPECT_EQ(child.reason(), CancelToken::Reason::kShutdown);
}

// --- checkpoint format -----------------------------------------------

TEST(Checkpoint, RecordRoundTripsExactDoubles)
{
    JobResult r;
    r.id = 3;
    r.name = "roundtrip";
    r.profile = "bzip2";
    r.mech = baselines::Mechanism::kPaAos;
    r.seed = 7;
    r.ops = 12345;
    r.status = JobStatus::kOk;
    r.attempts = 2;
    r.wallMs = 0.1 + 0.2; // Not representable — bits must round-trip.
    r.stats.scalar("ipc") = 1.0 / 3.0;
    r.stats.scalar("cycles") = 1e18;
    r.timing.scalar("ops_per_sec") = 987.125;

    TempDir dir;
    const CheckpointManifest manifest{42, 4, "rt"};
    CheckpointWriter writer;
    CheckpointLoad empty;
    ASSERT_TRUE(writer.start(dir.path, manifest, 1, empty));
    ASSERT_TRUE(writer.append(0, r));
    writer.close();

    const CheckpointLoad load = loadCheckpoint(dir.path, manifest);
    ASSERT_TRUE(load.valid) << load.reason;
    ASSERT_EQ(load.recordsLoaded, 1u);
    ASSERT_TRUE(load.present[3]);
    const JobResult &back = load.restored[3];
    EXPECT_TRUE(back.resumed);
    EXPECT_EQ(back.name, "roundtrip");
    EXPECT_EQ(back.profile, "bzip2");
    EXPECT_EQ(back.mech, baselines::Mechanism::kPaAos);
    EXPECT_EQ(back.seed, 7u);
    EXPECT_EQ(back.ops, 12345u);
    EXPECT_EQ(back.status, JobStatus::kOk);
    EXPECT_EQ(back.attempts, 2u);
    // Bit-exact, not approximately-equal: the resumed canonical JSON
    // must serialize identical bytes.
    EXPECT_EQ(back.wallMs, r.wallMs);
    EXPECT_EQ(back.stats.value("ipc"), 1.0 / 3.0);
    EXPECT_EQ(back.stats.value("cycles"), 1e18);
    EXPECT_EQ(back.timing.value("ops_per_sec"), 987.125);
}

TEST(Checkpoint, IdentityHashCoversResultAffectingSpec)
{
    CampaignOptions options;
    std::vector<Job> jobs(2);
    jobs[0].name = "a";
    jobs[1].name = "b";
    const u64 base = identityHash(options, jobs);
    EXPECT_EQ(identityHash(options, jobs), base); // Stable.

    CampaignOptions renamed = options;
    renamed.name = "other";
    EXPECT_NE(identityHash(renamed, jobs), base);

    CampaignOptions budget = options;
    budget.timeoutSec = 5.0;
    EXPECT_NE(identityHash(budget, jobs), base);

    // Execution-only knobs must NOT change the identity: resuming with
    // a different worker count or progress setting is the whole point.
    CampaignOptions executionOnly = options;
    executionOnly.workers = 7;
    executionOnly.progress = true;
    executionOnly.checkpointDir = "/elsewhere";
    EXPECT_EQ(identityHash(executionOnly, jobs), base);

    auto reseeded = jobs;
    reseeded[1].seed = 99;
    EXPECT_NE(identityHash(options, reseeded), base);

    auto retoggled = jobs;
    retoggled[0].options.useBwb = false;
    EXPECT_NE(identityHash(options, retoggled), base);
}

// --- resume flows ----------------------------------------------------

TEST(CheckpointResume, InterruptedCampaignResumesByteIdentical)
{
    setQuiet(true);
    const std::string reference = referenceJson();

    // Interrupt after 1..5 completed jobs; each time, the resume must
    // execute exactly the remainder and reproduce the reference bytes.
    for (int stopAfter = 1; stopAfter <= 5; ++stopAfter) {
        SCOPED_TRACE(stopAfter);
        TempDir dir;
        auto runs = std::make_shared<std::atomic<int>>(0);
        CancelToken shutdown;
        CampaignResult partial =
            countingCampaign(dir.path, runs, &shutdown, stopAfter).run();
        EXPECT_TRUE(partial.interrupted);
        EXPECT_EQ(partial.executedJobs, unsigned(stopAfter));

        CampaignResult resumed = countingCampaign(dir.path, runs).run();
        EXPECT_FALSE(resumed.interrupted);
        EXPECT_TRUE(resumed.allOk());
        EXPECT_EQ(resumed.resumedJobs, unsigned(stopAfter));
        EXPECT_EQ(resumed.executedJobs, unsigned(6 - stopAfter));
        // Total executions across both runs: nothing ran twice.
        EXPECT_EQ(runs->load(), 6);
        EXPECT_EQ(resumed.json(false), reference);
    }
}

TEST(CheckpointResume, ResumeWithDifferentWorkerCountIsByteIdentical)
{
    setQuiet(true);
    const std::string reference = referenceJson();
    TempDir dir;
    auto runs = std::make_shared<std::atomic<int>>(0);
    CancelToken shutdown;
    countingCampaign(dir.path, runs, &shutdown, 2, /*workers=*/1).run();
    CampaignResult resumed =
        countingCampaign(dir.path, runs, nullptr, 0, /*workers=*/3).run();
    EXPECT_TRUE(resumed.allOk());
    EXPECT_EQ(resumed.json(false), reference);
    EXPECT_EQ(resumed.resumedJobs + resumed.executedJobs, 6u);
}

TEST(CheckpointResume, CompletedCampaignResumesWithoutReExecution)
{
    setQuiet(true);
    TempDir dir;
    auto runs = std::make_shared<std::atomic<int>>(0);
    CampaignResult first = countingCampaign(dir.path, runs).run();
    EXPECT_TRUE(first.allOk());
    EXPECT_EQ(runs->load(), 6);

    CampaignResult again = countingCampaign(dir.path, runs).run();
    EXPECT_TRUE(again.allOk());
    EXPECT_EQ(again.resumedJobs, 6u);
    EXPECT_EQ(again.executedJobs, 0u);
    EXPECT_EQ(runs->load(), 6); // No job ran twice.
    EXPECT_EQ(again.json(false), first.json(false));
}

TEST(CheckpointResume, TruncatedShardTailReExecutesAffectedJob)
{
    setQuiet(true);
    const std::string reference = referenceJson();
    TempDir dir;
    auto runs = std::make_shared<std::atomic<int>>(0);
    EXPECT_TRUE(countingCampaign(dir.path, runs).run().allOk());

    // Tear the last record as a mid-append crash would.
    std::string shard;
    ASSERT_TRUE(fsio::readFile(shardPath(dir.path), shard));
    ASSERT_TRUE(fsio::truncateFile(shardPath(dir.path),
                                   shard.size() - 3));

    CampaignResult resumed = countingCampaign(dir.path, runs).run();
    EXPECT_TRUE(resumed.allOk());
    EXPECT_EQ(resumed.resumedJobs, 5u);
    EXPECT_EQ(resumed.executedJobs, 1u);
    EXPECT_EQ(resumed.discardedRecords, 1u);
    EXPECT_EQ(runs->load(), 7); // Exactly one re-execution.
    EXPECT_EQ(resumed.json(false), reference);
}

TEST(CheckpointResume, BitFlippedRecordIsDiscardedNotTrusted)
{
    setQuiet(true);
    const std::string reference = referenceJson();
    TempDir dir;
    auto runs = std::make_shared<std::atomic<int>>(0);
    EXPECT_TRUE(countingCampaign(dir.path, runs).run().allOk());

    // Flip a payload bit near the end of the shard: CRC catches it,
    // the scan stops there, and the affected job re-runs.
    flipBit(shardPath(dir.path), -5);

    CampaignResult resumed = countingCampaign(dir.path, runs).run();
    EXPECT_TRUE(resumed.allOk());
    EXPECT_EQ(resumed.resumedJobs, 5u);
    EXPECT_EQ(resumed.executedJobs, 1u);
    EXPECT_GE(resumed.discardedRecords, 1u);
    EXPECT_EQ(runs->load(), 7);
    EXPECT_EQ(resumed.json(false), reference);
}

TEST(CheckpointResume, CorruptManifestForcesFullReRun)
{
    setQuiet(true);
    TempDir dir;
    auto runs = std::make_shared<std::atomic<int>>(0);
    EXPECT_TRUE(countingCampaign(dir.path, runs).run().allOk());

    flipBit(dir.path + "/manifest.bin", 10);

    CampaignResult resumed = countingCampaign(dir.path, runs).run();
    EXPECT_TRUE(resumed.allOk());
    EXPECT_EQ(resumed.resumedJobs, 0u);
    EXPECT_EQ(resumed.executedJobs, 6u);
    EXPECT_EQ(runs->load(), 12);
}

TEST(CheckpointResume, DifferentCampaignInSameDirFullyReRuns)
{
    setQuiet(true);
    TempDir dir;
    auto runs = std::make_shared<std::atomic<int>>(0);
    EXPECT_TRUE(countingCampaign(dir.path, runs).run().allOk());

    // Same directory, different spec (an extra job ⇒ different
    // identity hash): stale results must never leak into the new
    // campaign — full re-run, not a silent mix.
    CampaignOptions options;
    options.name = "ckpt-test"; // Same name; the hash still differs.
    options.workers = 1;
    options.checkpointDir = dir.path;
    Campaign other(options);
    auto otherRuns = std::make_shared<std::atomic<int>>(0);
    for (int i = 0; i < 7; ++i) {
        Job job;
        job.name = csprintf("job%d", i);
        job.cancellableBody =
            [i, otherRuns](const CancelToken &) -> core::RunResult {
            core::RunResult r;
            r.core.cycles = 5000u + static_cast<u64>(i);
            otherRuns->fetch_add(1);
            return r;
        };
        other.add(std::move(job));
    }
    CampaignResult result = other.run();
    EXPECT_TRUE(result.allOk());
    EXPECT_EQ(result.resumedJobs, 0u);
    EXPECT_EQ(result.executedJobs, 7u);
    EXPECT_EQ(otherRuns->load(), 7);
    // And the directory now belongs to the new campaign.
    CampaignResult again = other.run();
    EXPECT_EQ(again.resumedJobs, 7u);
}

TEST(CheckpointResume, FailedJobsAreRestoredAsFailed)
{
    setQuiet(true);
    TempDir dir;
    auto attempts = std::make_shared<std::atomic<int>>(0);
    auto makeCampaign = [&] {
        CampaignOptions options;
        options.name = "fails";
        options.workers = 1;
        options.checkpointDir = dir.path;
        Campaign c(options);
        Job bad;
        bad.name = "bad";
        bad.body = [attempts]() -> core::RunResult {
            attempts->fetch_add(1);
            throw std::runtime_error("deterministic failure");
        };
        c.add(std::move(bad));
        return c;
    };
    CampaignResult first = makeCampaign().run();
    EXPECT_EQ(first.jobs[0].status, JobStatus::kFailed);
    EXPECT_EQ(attempts->load(), 1);

    // A deterministic failure is a result too: restore it instead of
    // burning time re-discovering it.
    CampaignResult second = makeCampaign().run();
    EXPECT_EQ(second.jobs[0].status, JobStatus::kFailed);
    EXPECT_EQ(second.jobs[0].error, "deterministic failure");
    EXPECT_TRUE(second.jobs[0].resumed);
    EXPECT_EQ(second.resumedJobs, 1u);
    EXPECT_EQ(attempts->load(), 1);
}

TEST(CheckpointResume, SimulationJobsRoundTripBitExact)
{
    // End-to-end with the real pipeline: the flattened simulation
    // stats (doubles like ipc and mpki included) must survive the
    // checkpoint bit-exactly, so the resumed canonical document equals
    // the uninterrupted one byte for byte.
    setQuiet(true);
    constexpr u64 kTinyOps = 3'000;
    auto build = [&](const std::string &ckpt) {
        CampaignOptions options;
        options.name = "sim-ckpt";
        options.workers = 1;
        options.checkpointDir = ckpt;
        Campaign c(options);
        const auto &profile = workloads::profileByName("bzip2");
        c.addConfig(profile, baselines::Mechanism::kBaseline, kTinyOps);
        c.addConfig(profile, baselines::Mechanism::kAos, kTinyOps);
        return c;
    };
    const std::string reference = build("").run().json(false);

    TempDir dir;
    CampaignResult first = build(dir.path).run();
    EXPECT_TRUE(first.allOk());
    EXPECT_EQ(first.json(false), reference);

    CampaignResult resumed = build(dir.path).run();
    EXPECT_TRUE(resumed.allOk());
    EXPECT_EQ(resumed.resumedJobs, 2u);
    EXPECT_EQ(resumed.executedJobs, 0u);
    EXPECT_EQ(resumed.json(false), reference);
}

// --- chaos instrumentation (DESIGN.md §13) ---------------------------

chaos::ChaosConfig
diskChaos(u64 seed, u32 rate, u32 kinds = 0)
{
    chaos::ChaosConfig c;
    c.seed = seed;
    c.ratePerMille = rate;
    c.domains = chaos::domainBit(chaos::Domain::kDisk);
    c.kinds = kinds;
    return c;
}

TEST(ChaosFsio, TornTailTruncationMakesAppendRetrySafe)
{
    TempDir dir;
    fsio::AppendLog log;
    ASSERT_TRUE(log.open(dir.path + "/torn.log"));
    const std::string first(64, 'a');
    ASSERT_TRUE(log.append(first.data(), first.size()));
    const std::string record(128, 'b');

    // Search the seed space for a schedule where a short write lands
    // some bytes durably and a later write op fails: the torn-tail
    // case a naive retry would poison by appending after garbage.
    bool tornTailSeen = false;
    for (u64 seed = 0; seed < 64 && !tornTailSeen; ++seed) {
        chaos::ChaosEngine eng(diskChaos(
            seed, 1000,
            chaos::kindBit(chaos::FaultKind::kShortWrite) |
                chaos::kindBit(chaos::FaultKind::kWriteEio)));
        const long long mark = log.offset();
        ASSERT_EQ(mark, 64);
        bool ok = false;
        {
            chaos::ChaosScope scope(&eng);
            ok = log.append(record.data(), record.size());
        }
        tornTailSeen = !ok && log.offset() > mark;
        // Recovery discipline (campaign/checkpoint.cc::append): cut
        // back to the pre-append record boundary before retrying — or,
        // on success under short-write-only degradation, roll back so
        // every search iteration starts from the same state.
        ASSERT_TRUE(log.truncateTo(static_cast<u64>(mark)));
        ASSERT_EQ(log.offset(), mark);
    }
    ASSERT_TRUE(tornTailSeen)
        << "no seed in [0,64) produced a torn tail";

    // A chaos-free retry after the truncation lands the record after
    // the first one, with no garbage in between.
    ASSERT_TRUE(log.append(record.data(), record.size()));
    log.close();
    std::string data;
    ASSERT_TRUE(fsio::readFile(dir.path + "/torn.log", data));
    EXPECT_EQ(data, first + record);
}

TEST(ChaosCheckpoint, WriterUnderChaosThenCleanLoadTrustsOnlyRecords)
{
    TempDir dir;
    CheckpointManifest manifest;
    manifest.identity = 0x5eed;
    manifest.jobCount = 8;
    manifest.name = "chaos-ckpt";

    // Moderate chaos over every disk kind: appends retry-with-backoff
    // internally (ENOSPC, EIO, fsync failure, torn tails), so each
    // append's verdict is trustworthy — true means durable.
    chaos::ChaosEngine eng(diskChaos(/*seed=*/41, /*rate=*/200));
    std::vector<u32> appended;
    bool started = false;
    {
        chaos::ChaosScope scope(&eng);
        CheckpointWriter writer;
        CheckpointLoad fresh;
        started = writer.start(dir.path, manifest, 1, fresh);
        if (started) {
            for (u32 i = 0; i < 8; ++i) {
                JobResult r;
                r.id = i;
                r.name = csprintf("job%u", i);
                r.status = JobStatus::kOk;
                r.attempts = 1;
                r.stats.scalar("value") = 10.0 * i;
                if (writer.append(0, r))
                    appended.push_back(i);
            }
            writer.close();
        }
    }
    ASSERT_TRUE(started); // Deterministic for this seed.
    EXPECT_GT(eng.injected(chaos::Domain::kDisk), 0u);

    // However the writer fared, no temp file may survive it.
    for (const std::string &name : fsio::listDir(dir.path))
        EXPECT_FALSE(name.size() >= 4 &&
                     name.compare(name.size() - 4, 4, ".tmp") == 0)
            << name;

    // A chaos-free load sees exactly the successfully-appended set.
    CheckpointLoad load = loadCheckpoint(dir.path, manifest);
    EXPECT_TRUE(load.manifestFound);
    EXPECT_TRUE(load.valid) << load.reason;
    EXPECT_EQ(load.recordsLoaded, appended.size());
    for (u32 id : appended) {
        ASSERT_LT(id, load.present.size());
        EXPECT_TRUE(load.present[id]);
        EXPECT_EQ(load.restored[id].stats.scalar("value").value(),
                  10.0 * id);
    }
}

TEST(ChaosCheckpoint, StaleTempFilesAreSweptOnStart)
{
    TempDir dir;
    // A crash between atomicWriteFile()'s temp write and rename leaves
    // an orphan; seed one and expect start() to sweep it.
    ASSERT_TRUE(fsio::atomicWriteFile(dir.path + "/manifest.bin.tmp",
                                      "orphaned partial write"));
    CheckpointManifest manifest;
    manifest.identity = 0x7a57e;
    manifest.jobCount = 1;
    manifest.name = "sweep";
    CheckpointWriter writer;
    CheckpointLoad fresh;
    ASSERT_TRUE(writer.start(dir.path, manifest, 1, fresh))
        << writer.error();
    writer.close();
    for (const std::string &name : fsio::listDir(dir.path))
        EXPECT_FALSE(name.size() >= 4 &&
                     name.compare(name.size() - 4, 4, ".tmp") == 0)
            << name;
}

} // namespace
} // namespace aos::campaign
