/**
 * @file
 * Process-isolation properties of the key management (threat model,
 * SIII-D): PA keys are per-process and invisible to user space, so
 * pointers signed in one process are meaningless in another, and
 * leaked signed pointers provide no signing oracle.
 */

#include <gtest/gtest.h>

#include "core/aos_runtime.hh"
#include "core/aos_system.hh"

namespace aos::core {
namespace {

TEST(Isolation, ProcessesGetDistinctKeys)
{
    RuntimeConfig a_config;
    a_config.keySeed = 0x1111;
    RuntimeConfig b_config;
    b_config.keySeed = 0x2222;
    AosRuntime a(a_config), b(b_config);

    const Addr pa_ = a.malloc(64);
    const Addr pb = b.malloc(64);
    // Same allocator layout -> same raw address, different PACs.
    ASSERT_EQ(a.strip(pa_), b.strip(pb));
    EXPECT_NE(pa_, pb) << "keys must differ across processes";
}

TEST(Isolation, ForeignSignedPointerFailsLocally)
{
    RuntimeConfig a_config;
    a_config.keySeed = 0x1111;
    RuntimeConfig b_config;
    b_config.keySeed = 0x2222;
    AosRuntime a(a_config), b(b_config);

    const Addr pa_ = a.malloc(64);
    const Addr pb = b.malloc(64);
    if (a.paContext().layout().pac(pa_) !=
        b.paContext().layout().pac(pb)) {
        // b's pointer injected into a (e.g. via shared memory) indexes
        // the wrong row of a's HBT.
        EXPECT_EQ(a.load(pb), Status::kBoundsViolation);
    }
}

TEST(Isolation, ReturnAddressKeysAreProcessLocal)
{
    pa::PaContext proc_a(pa::PointerLayout(), 0xaaaa);
    pa::PaContext proc_b(pa::PointerLayout(), 0xbbbb);
    const Addr lr = 0x00400c00;
    const Addr signed_a = proc_a.pacia(lr, 0x7ffff000);
    EXPECT_EQ(proc_b.autia(signed_a, 0x7ffff000, nullptr),
              pa::AuthResult::kFail)
        << "a's signature must not verify under b's keys";
    EXPECT_EQ(proc_a.autia(signed_a, 0x7ffff000, nullptr),
              pa::AuthResult::kPass);
}

TEST(Isolation, SignedPointersLeakNoKeyMaterial)
{
    // Observing many (address, PAC) pairs must not let an attacker
    // predict the PAC of an unseen address: check that PACs of
    // adjacent addresses are uncorrelated (any fixed XOR relation
    // would break this distribution test).
    AosRuntime rt;
    const auto &layout = rt.paContext().layout();
    std::vector<u64> diffs;
    Addr prev_ptr = rt.malloc(32);
    u64 repeats = 0;
    for (int i = 0; i < 512; ++i) {
        const Addr ptr = rt.malloc(32);
        const u64 diff = layout.pac(ptr) ^ layout.pac(prev_ptr);
        if (!diffs.empty() && diff == diffs.back())
            ++repeats;
        diffs.push_back(diff);
        prev_ptr = ptr;
    }
    EXPECT_LT(repeats, 4u) << "PAC deltas look predictable";
}

TEST(Isolation, TimingRunsWithDifferentProcessesAreIndependent)
{
    // Two AosSystems (separate processes) must not share HBT or cache
    // state: identical configurations produce identical, reproducible
    // results regardless of interleaving.
    baselines::SystemOptions options;
    options.mech = baselines::Mechanism::kAos;
    options.measureOps = 20000;

    AosSystem first(workloads::profileByName("namd"), options);
    AosSystem interleaved(workloads::profileByName("sjeng"), options);
    const RunResult r1 = first.run();
    const RunResult other = interleaved.run();
    (void)other;
    AosSystem second(workloads::profileByName("namd"), options);
    const RunResult r2 = second.run();
    EXPECT_EQ(r1.core.cycles, r2.core.cycles);
    EXPECT_EQ(r1.hbt.inserts, r2.hbt.inserts);
}

TEST(Isolation, StatsDumpIsComplete)
{
    baselines::SystemOptions options;
    options.mech = baselines::Mechanism::kAos;
    options.measureOps = 20000;
    AosSystem system(workloads::profileByName("namd"), options);
    const RunResult r = system.run();

    std::ostringstream os;
    r.dump(os);
    const std::string out = os.str();
    for (const char *stat :
         {"cycles", "ipc", "mcu_checked_ops", "bwb_hit_rate",
          "hbt_occupied", "network_traffic_bytes", "violations"}) {
        EXPECT_NE(out.find(stat), std::string::npos) << stat;
    }
    EXPECT_NE(out.find("namd.AOS."), std::string::npos);
}

} // namespace
} // namespace aos::core
