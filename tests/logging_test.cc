/**
 * @file
 * Tests for the gem5-style logging/reporting facilities.
 */

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace aos {
namespace {

TEST(Csprintf, FormatsLikePrintf)
{
    EXPECT_EQ(csprintf("plain"), "plain");
    EXPECT_EQ(csprintf("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(csprintf("%s/%s", "a", "b"), "a/b");
    EXPECT_EQ(csprintf("%#x", 0xbeef), "0xbeef");
    EXPECT_EQ(csprintf("%.2f", 3.14159), "3.14");
}

TEST(Csprintf, HandlesLongOutput)
{
    const std::string big(5000, 'x');
    EXPECT_EQ(csprintf("%s!", big.c_str()).size(), 5001u);
}

TEST(Logging, QuietSuppressionToggle)
{
    const bool was = quiet();
    setQuiet(true);
    EXPECT_TRUE(quiet());
    // These must be no-ops (nothing to assert beyond not crashing,
    // but the toggle state is observable).
    warn("suppressed warning %d", 1);
    inform("suppressed info");
    setQuiet(false);
    EXPECT_FALSE(quiet());
    setQuiet(was);
}

TEST(Logging, ProgressfIsNotSilencedByQuiet)
{
    // progressf is the campaign ETA channel; it must reach stderr even
    // when the benchmarks have silenced warn/inform.
    const bool was = quiet();
    setQuiet(true);
    ::testing::internal::CaptureStderr();
    progressf("sweep %d/%d", 3, 8);
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("progress: sweep 3/8"), std::string::npos);
    setQuiet(was);
}

TEST(Logging, ConcurrentSinksDoNotInterleaveWithinALine)
{
    // Hammer the mutex-guarded write path from several threads; each
    // emitted line must appear intact. (Under TSan this also checks
    // the setQuiet/quiet atomics.)
    const bool was = quiet();
    setQuiet(false);
    ::testing::internal::CaptureStderr();
    constexpr int kThreads = 4;
    constexpr int kLines = 50;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < kLines; ++i)
                warn("t%d-line%d-endmark", t, i);
        });
    }
    for (auto &t : threads)
        t.join();
    const std::string err = ::testing::internal::GetCapturedStderr();
    setQuiet(was);

    size_t intact = 0;
    std::istringstream lines(err);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.rfind("warn: t", 0) == 0 &&
            line.find("-endmark") != std::string::npos &&
            line.find("warn:", 5) == std::string::npos) {
            ++intact;
        }
    }
    EXPECT_EQ(intact, static_cast<size_t>(kThreads * kLines));
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("internal invariant %d broke", 42),
                 "panic: internal invariant 42 broke");
}

TEST(LoggingDeath, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(fatal("user error: %s", "bad config"),
                ::testing::ExitedWithCode(1), "fatal: user error");
}

TEST(LoggingDeath, PanicIfFiresOnlyWhenTrue)
{
    panic_if(false, "must not fire");
    EXPECT_DEATH(panic_if(1 + 1 == 2, "arithmetic still works"),
                 "arithmetic still works");
}

TEST(LoggingDeath, FatalIfFiresOnlyWhenTrue)
{
    fatal_if(false, "must not fire");
    EXPECT_EXIT(fatal_if(true, "condition"),
                ::testing::ExitedWithCode(1), "condition");
}

} // namespace
} // namespace aos
