/**
 * @file
 * Tests for the gem5-style logging/reporting facilities.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace aos {
namespace {

TEST(Csprintf, FormatsLikePrintf)
{
    EXPECT_EQ(csprintf("plain"), "plain");
    EXPECT_EQ(csprintf("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(csprintf("%s/%s", "a", "b"), "a/b");
    EXPECT_EQ(csprintf("%#x", 0xbeef), "0xbeef");
    EXPECT_EQ(csprintf("%.2f", 3.14159), "3.14");
}

TEST(Csprintf, HandlesLongOutput)
{
    const std::string big(5000, 'x');
    EXPECT_EQ(csprintf("%s!", big.c_str()).size(), 5001u);
}

TEST(Logging, QuietSuppressionToggle)
{
    const bool was = quiet();
    setQuiet(true);
    EXPECT_TRUE(quiet());
    // These must be no-ops (nothing to assert beyond not crashing,
    // but the toggle state is observable).
    warn("suppressed warning %d", 1);
    inform("suppressed info");
    setQuiet(false);
    EXPECT_FALSE(quiet());
    setQuiet(was);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("internal invariant %d broke", 42),
                 "panic: internal invariant 42 broke");
}

TEST(LoggingDeath, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(fatal("user error: %s", "bad config"),
                ::testing::ExitedWithCode(1), "fatal: user error");
}

TEST(LoggingDeath, PanicIfFiresOnlyWhenTrue)
{
    panic_if(false, "must not fire");
    EXPECT_DEATH(panic_if(1 + 1 == 2, "arithmetic still works"),
                 "arithmetic still works");
}

TEST(LoggingDeath, FatalIfFiresOnlyWhenTrue)
{
    fatal_if(false, "must not fire");
    EXPECT_EXIT(fatal_if(true, "condition"),
                ::testing::ExitedWithCode(1), "condition");
}

} // namespace
} // namespace aos
