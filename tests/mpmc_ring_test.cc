/**
 * @file
 * Tests for the bounded MPMC work ring (common/mpmc_ring.hh): the
 * bounded tryPush/tryPop contract (full rejects, empty rejects, FIFO
 * when single-threaded), capacity rounding, and a multi-producer/
 * multi-consumer stress in both the lock-free and the mutex-fallback
 * implementations — every element pushed is popped exactly once.
 */

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/mpmc_ring.hh"

namespace aos {
namespace {

TEST(MpmcRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(MpmcRing<u32>(1).capacity(), 2u);
    EXPECT_EQ(MpmcRing<u32>(2).capacity(), 2u);
    EXPECT_EQ(MpmcRing<u32>(3).capacity(), 4u);
    EXPECT_EQ(MpmcRing<u32>(64).capacity(), 64u);
    EXPECT_EQ(MpmcRing<u32>(65).capacity(), 128u);
}

TEST(MpmcRing, BoundedContractBothModes)
{
    for (const bool mutexFallback : {false, true}) {
        SCOPED_TRACE(mutexFallback ? "mutex" : "lock-free");
        MpmcRing<u32> ring(4, mutexFallback);
        EXPECT_EQ(ring.lockFree(), !mutexFallback);

        u32 out = 0;
        EXPECT_FALSE(ring.tryPop(out)); // Empty rejects.

        for (u32 i = 0; i < 4; ++i)
            EXPECT_TRUE(ring.tryPush(i)) << i;
        EXPECT_FALSE(ring.tryPush(99)); // Full rejects.
        EXPECT_EQ(ring.size(), 4u);

        for (u32 i = 0; i < 4; ++i) {
            ASSERT_TRUE(ring.tryPop(out));
            EXPECT_EQ(out, i); // FIFO when single-threaded.
        }
        EXPECT_FALSE(ring.tryPop(out));
        EXPECT_EQ(ring.size(), 0u);
    }
}

TEST(MpmcRing, WrapsAcrossManyRefills)
{
    // Push/pop far past the capacity so the sequence numbers lap the
    // ring repeatedly — the classic place for an off-by-one in the
    // Vyukov cell-sequence arithmetic.
    MpmcRing<u32> ring(8);
    u32 out = 0;
    for (u32 round = 0; round < 1000; ++round) {
        for (u32 i = 0; i < 5; ++i)
            ASSERT_TRUE(ring.tryPush(round * 5 + i));
        for (u32 i = 0; i < 5; ++i) {
            ASSERT_TRUE(ring.tryPop(out));
            EXPECT_EQ(out, round * 5 + i);
        }
    }
}

/**
 * The contract the campaign pool relies on: N producers and M
 * consumers hammering one ring concurrently lose nothing and
 * duplicate nothing. Run in both implementations — the mutex fallback
 * exists precisely to cross-check the lock-free path.
 */
void
stress(bool mutexFallback)
{
    constexpr unsigned kProducers = 4;
    constexpr unsigned kConsumers = 4;
    constexpr u32 kPerProducer = 20'000;
    constexpr u32 kTotal = kProducers * kPerProducer;

    MpmcRing<u32> ring(1024, mutexFallback);
    std::atomic<u32> popped{0};
    std::atomic<u32> bogus{0}; // Values outside [0, kTotal).
    std::vector<std::atomic<u32>> seen(kTotal);
    for (auto &s : seen)
        s.store(0, std::memory_order_relaxed);

    std::vector<std::thread> threads;
    for (unsigned p = 0; p < kProducers; ++p) {
        threads.emplace_back([&ring, p]() {
            for (u32 i = 0; i < kPerProducer; ++i) {
                const u32 value = p * kPerProducer + i;
                while (!ring.tryPush(value))
                    std::this_thread::yield(); // Full: consumers lag.
            }
        });
    }
    for (unsigned c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&]() {
            u32 value = 0;
            while (popped.load(std::memory_order_relaxed) < kTotal) {
                if (!ring.tryPop(value)) {
                    std::this_thread::yield();
                    continue;
                }
                if (value < kTotal)
                    seen[value].fetch_add(1, std::memory_order_relaxed);
                else
                    bogus.fetch_add(1, std::memory_order_relaxed);
                popped.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto &t : threads)
        t.join();

    EXPECT_EQ(popped.load(), kTotal);
    EXPECT_EQ(bogus.load(), 0u);
    u32 missing = 0, duplicated = 0;
    for (u32 v = 0; v < kTotal; ++v) {
        const u32 n = seen[v].load(std::memory_order_relaxed);
        missing += n == 0;
        duplicated += n > 1;
    }
    EXPECT_EQ(missing, 0u);
    EXPECT_EQ(duplicated, 0u);
    u32 leftover = 0;
    EXPECT_FALSE(ring.tryPop(leftover));
}

TEST(MpmcRing, StressLockFree)
{
    stress(false);
}

TEST(MpmcRing, StressMutexFallback)
{
    stress(true);
}

} // namespace
} // namespace aos
