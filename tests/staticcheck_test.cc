/**
 * @file
 * Tests for the static-analysis layer (src/staticcheck): every
 * StreamVerifier rule fires on a seeded violation, corrupted real
 * pipeline output is flagged, the StreamExecutor implements the
 * architectural detection semantics, and the verify/elide modes of
 * AosSystem work end to end.
 */

#include <vector>

#include <gtest/gtest.h>

#include "analysis/dataflow/engine.hh"
#include "analysis/dataflow/elision_plan.hh"
#include "common/logging.hh"
#include "compiler/aos_elide_pass.hh"
#include "compiler/aos_passes.hh"
#include "compiler/pa_pass.hh"
#include "core/aos_system.hh"
#include "pa/pa_context.hh"
#include "staticcheck/stream_executor.hh"
#include "staticcheck/stream_verifier.hh"

namespace aos::staticcheck {
namespace {

using ir::MicroOp;
using ir::OpKind;

MicroOp
op(OpKind kind, Addr addr = 0, Addr chunk = 0, u32 size = 0)
{
    MicroOp out;
    out.kind = kind;
    out.addr = addr;
    out.chunkBase = chunk;
    out.size = size;
    return out;
}

bool
hasRule(const std::vector<Diagnostic> &diags, RuleId rule)
{
    for (const auto &d : diags)
        if (d.rule == rule)
            return true;
    return false;
}

VerifierOptions
aosOptions()
{
    VerifierOptions options;
    options.requireAosLowering = true;
    return options;
}

/** Layout shared by the seeded streams (the Table IV default). */
const pa::PointerLayout kLayout(16, 46);

constexpr Addr kChunk = 0x20001000;
constexpr u64 kPac = 5;

/** The chunk's signed pointer (arbitrary but consistent PAC). */
Addr
signedPtr(Addr raw = kChunk, u64 pac = kPac, u64 ahc = 1)
{
    return kLayout.compose(raw, pac, ahc);
}

TEST(Diagnostics, RuleMetadataIsStableAndUnique)
{
    std::vector<std::string> ids;
    std::vector<std::string> names;
    for (unsigned i = 0; i < kNumRules; ++i) {
        const auto rule = static_cast<RuleId>(i);
        ids.emplace_back(ruleId(rule));
        names.emplace_back(ruleName(rule));
    }
    for (unsigned i = 0; i < kNumRules; ++i) {
        EXPECT_EQ(ids[i].substr(0, 2), "SC");
        for (unsigned j = i + 1; j < kNumRules; ++j) {
            EXPECT_NE(ids[i], ids[j]);
            EXPECT_NE(names[i], names[j]);
        }
    }
    const Diagnostic diag{42, RuleId::kUnpairedBndclr, "no live bounds"};
    const std::string line = toString(diag);
    EXPECT_NE(line.find("SC05"), std::string::npos);
    EXPECT_NE(line.find("@op 42"), std::string::npos);
}

// --- One seeded violation per rule (SC01..SC14). ---

TEST(StreamVerifierRules, Sc01IntrinsicSurvivedBackend)
{
    const auto diags = StreamVerifier::verify(
        std::vector<MicroOp>{op(OpKind::kAosMallocIntr, 0, kChunk, 64)});
    EXPECT_TRUE(hasRule(diags, RuleId::kIntrinsicSurvived));
}

TEST(StreamVerifierRules, Sc02MallocNotLowered)
{
    const auto diags = StreamVerifier::verify(
        std::vector<MicroOp>{op(OpKind::kMallocMark, 0, kChunk, 64)},
        aosOptions());
    EXPECT_TRUE(hasRule(diags, RuleId::kMallocNotLowered));
}

TEST(StreamVerifierRules, Sc03FreeNotLowered)
{
    // bndclr alone is not the full Fig. 7b sequence.
    const auto diags = StreamVerifier::verify(
        std::vector<MicroOp>{
            op(OpKind::kPacma, signedPtr(), kChunk),
            op(OpKind::kBndstr, signedPtr(), kChunk, 64),
            op(OpKind::kFreeMark, 0, kChunk),
            op(OpKind::kBndclr, signedPtr(), kChunk)},
        aosOptions());
    EXPECT_TRUE(hasRule(diags, RuleId::kFreeNotLowered));
}

TEST(StreamVerifierRules, Sc04DuplicateBndstr)
{
    const auto diags = StreamVerifier::verify(std::vector<MicroOp>{
        op(OpKind::kPacma, signedPtr(), kChunk),
        op(OpKind::kBndstr, signedPtr(), kChunk, 64),
        op(OpKind::kBndstr, signedPtr(), kChunk, 64)});
    EXPECT_TRUE(hasRule(diags, RuleId::kDuplicateBndstr));
}

TEST(StreamVerifierRules, Sc05UnpairedBndclr)
{
    const auto diags = StreamVerifier::verify(
        std::vector<MicroOp>{op(OpKind::kBndclr, signedPtr(), kChunk)});
    EXPECT_TRUE(hasRule(diags, RuleId::kUnpairedBndclr));
}

TEST(StreamVerifierRules, Sc06SignedAccessBeforeSigning)
{
    const auto diags = StreamVerifier::verify(std::vector<MicroOp>{
        op(OpKind::kLoad, signedPtr(kChunk + 16), kChunk, 8)});
    EXPECT_TRUE(hasRule(diags, RuleId::kSignedBeforeSign));
}

TEST(StreamVerifierRules, Sc06SignedAccessWithoutProvenance)
{
    const auto diags = StreamVerifier::verify(std::vector<MicroOp>{
        op(OpKind::kLoad, signedPtr(kChunk + 16), 0, 8)});
    EXPECT_TRUE(hasRule(diags, RuleId::kSignedBeforeSign));
}

TEST(StreamVerifierRules, Sc07SignedAccessAfterClear)
{
    const auto diags = StreamVerifier::verify(std::vector<MicroOp>{
        op(OpKind::kPacma, signedPtr(), kChunk),
        op(OpKind::kBndstr, signedPtr(), kChunk, 64),
        op(OpKind::kBndclr, signedPtr(), kChunk),
        op(OpKind::kLoad, signedPtr(kChunk + 16), kChunk, 8)});
    EXPECT_TRUE(hasRule(diags, RuleId::kSignedAfterClear));
}

TEST(StreamVerifierRules, Sc08PacMismatch)
{
    const auto diags = StreamVerifier::verify(std::vector<MicroOp>{
        op(OpKind::kPacma, signedPtr(), kChunk),
        op(OpKind::kBndstr, signedPtr(), kChunk, 64),
        op(OpKind::kLoad, signedPtr(kChunk + 16, kPac + 1), kChunk, 8)});
    EXPECT_TRUE(hasRule(diags, RuleId::kPacMismatch));
}

TEST(StreamVerifierRules, Sc09PhaseImbalance)
{
    const auto diags = StreamVerifier::verify(std::vector<MicroOp>{
        op(OpKind::kPhaseMark), op(OpKind::kPhaseMark)});
    EXPECT_TRUE(hasRule(diags, RuleId::kPhaseImbalance));
}

TEST(StreamVerifierRules, Sc10MemOpWithoutAddress)
{
    const auto diags = StreamVerifier::verify(
        std::vector<MicroOp>{op(OpKind::kLoad, 0, 0, 8)});
    EXPECT_TRUE(hasRule(diags, RuleId::kMemMissingAddr));
}

TEST(StreamVerifierRules, Sc11MemOpWithoutSize)
{
    const auto diags = StreamVerifier::verify(
        std::vector<MicroOp>{op(OpKind::kLoad, 0x00601000, 0, 0)});
    EXPECT_TRUE(hasRule(diags, RuleId::kMemMissingSize));
}

TEST(StreamVerifierRules, Sc12MarkerWithoutChunkBase)
{
    const auto malloc_diags = StreamVerifier::verify(
        std::vector<MicroOp>{op(OpKind::kMallocMark, 0, 0, 64)});
    EXPECT_TRUE(hasRule(malloc_diags, RuleId::kAllocMarkMissingFields));
    const auto free_diags = StreamVerifier::verify(
        std::vector<MicroOp>{op(OpKind::kFreeMark, 0, 0)});
    EXPECT_TRUE(hasRule(free_diags, RuleId::kAllocMarkMissingFields));
}

TEST(StreamVerifierRules, Sc13BoundsOpOnUnsignedPointer)
{
    const auto diags = StreamVerifier::verify(
        std::vector<MicroOp>{op(OpKind::kBndstr, kChunk, kChunk, 64)});
    EXPECT_TRUE(hasRule(diags, RuleId::kBoundsOpUnsigned));
}

TEST(StreamVerifierRules, Sc14AutmNotAfterItsLoad)
{
    const auto diags = StreamVerifier::verify(std::vector<MicroOp>{
        op(OpKind::kIntAlu), op(OpKind::kAutm, signedPtr(), kChunk)});
    EXPECT_TRUE(hasRule(diags, RuleId::kAutmOrphan));
}

// --- SC15..SC18: elided-region contracts. ---

/** Dataflow plan for a benign single-chunk source program; the chunk
 *  (gen 1) is provably elidable. */
analysis::dataflow::ElisionPlan
singleChunkPlan()
{
    analysis::dataflow::DataflowEngine engine(kLayout);
    ir::VectorStream source(std::vector<MicroOp>{
        op(OpKind::kMallocMark, 0, kChunk, 64),
        op(OpKind::kLoad, kChunk + 16, kChunk, 8),
        op(OpKind::kStore, kChunk + 24, kChunk, 8),
        op(OpKind::kFreeMark, 0, kChunk)});
    engine.run(source);
    return analysis::dataflow::planBoundsElision(engine);
}

class ElidedRegionRules : public ::testing::Test
{
  protected:
    ElidedRegionRules() : plan(singleChunkPlan())
    {
        EXPECT_TRUE(plan.elided(kChunk, 1));
        options.layout = kLayout;
        options.elisionPlan = &plan;
    }

    std::vector<Diagnostic>
    verify(const std::vector<MicroOp> &ops)
    {
        return StreamVerifier::verify(ops, options);
    }

    analysis::dataflow::ElisionPlan plan;
    VerifierOptions options;
};

TEST_F(ElidedRegionRules, Sc15ResidualInstrumentation)
{
    const auto diags = verify(std::vector<MicroOp>{
        op(OpKind::kMallocMark, 0, kChunk, 64),
        op(OpKind::kBndstr, signedPtr(), kChunk, 64)});
    EXPECT_TRUE(hasRule(diags, RuleId::kElidedResidualInstr))
        << toString(diags);
}

TEST_F(ElidedRegionRules, Sc16AccessStillSigned)
{
    const auto diags = verify(std::vector<MicroOp>{
        op(OpKind::kMallocMark, 0, kChunk, 64),
        op(OpKind::kLoad, signedPtr(kChunk + 16), kChunk, 8)});
    EXPECT_TRUE(hasRule(diags, RuleId::kElidedSignedAccess))
        << toString(diags);
}

TEST_F(ElidedRegionRules, Sc17AccessOutsideProvenExtent)
{
    const auto diags = verify(std::vector<MicroOp>{
        op(OpKind::kMallocMark, 0, kChunk, 64),
        op(OpKind::kLoad, kChunk + 4096, kChunk, 8)});
    EXPECT_TRUE(hasRule(diags, RuleId::kElidedAccessOutOfPlan))
        << toString(diags);
}

TEST_F(ElidedRegionRules, Sc18PointerLoadContradictsEscapeProof)
{
    MicroOp load = op(OpKind::kLoad, kChunk + 16, kChunk, 8);
    load.loadsPointer = true;
    const auto diags = verify(std::vector<MicroOp>{
        op(OpKind::kMallocMark, 0, kChunk, 64), load});
    EXPECT_TRUE(hasRule(diags, RuleId::kElidedEscape)) << toString(diags);
}

TEST_F(ElidedRegionRules, ProperlyElidedStreamStaysClean)
{
    // What AosBoundsElidePass actually emits for the elided chunk: bare
    // marks and stripped in-extent accesses — no Fig. 7 sequences, and
    // no SC02/SC03 even though requireAosLowering is on.
    options.requireAosLowering = true;
    const auto diags = verify(std::vector<MicroOp>{
        op(OpKind::kMallocMark, 0, kChunk, 64),
        op(OpKind::kLoad, kChunk + 16, kChunk, 8),
        op(OpKind::kStore, kChunk + 24, kChunk, 8),
        op(OpKind::kFreeMark, 0, kChunk)});
    EXPECT_TRUE(diags.empty()) << toString(diags);
}

TEST(StreamVerifier, CleanSeededStreamStaysClean)
{
    // The benign malloc -> access -> free lifecycle trips nothing.
    const Addr ptr = signedPtr();
    const auto diags = StreamVerifier::verify(
        std::vector<MicroOp>{
            op(OpKind::kMallocMark, 0, kChunk, 64),
            op(OpKind::kPacma, ptr, kChunk),
            op(OpKind::kBndstr, ptr, kChunk, 64),
            op(OpKind::kLoad, signedPtr(kChunk + 16), kChunk, 8),
            op(OpKind::kStore, signedPtr(kChunk + 24), kChunk, 8),
            op(OpKind::kFreeMark, 0, kChunk),
            op(OpKind::kBndclr, ptr, kChunk),
            op(OpKind::kXpacm, kChunk, kChunk),
            op(OpKind::kPacma, signedPtr(kChunk, kPac, 1))},
        aosOptions());
    EXPECT_TRUE(diags.empty()) << toString(diags);
}

TEST(StreamVerifier, RepeatedSitesAreDedupedButStillCounted)
{
    StreamVerifier verifier{VerifierOptions{}};
    for (int i = 0; i < 10; ++i)
        verifier.observe(op(OpKind::kLoad, 0, 0, 0)); // SC10 + SC11 each
    verifier.finish();

    // One stored diagnostic per (rule, site) plus one suppressed-count
    // summary line per rule; the counters keep the full totals.
    EXPECT_EQ(verifier.diagnostics().size(), 4u)
        << toString(verifier.diagnostics());
    EXPECT_EQ(verifier.totalDiagnostics(), 20u);
    EXPECT_EQ(verifier.suppressedDiagnostics(), 18u);
    EXPECT_EQ(verifier.ruleCounts().at(RuleId::kMemMissingAddr), 10u);
    bool summarized = false;
    for (const auto &d : verifier.diagnostics())
        if (d.message.find("suppressed 9") != std::string::npos)
            summarized = true;
    EXPECT_TRUE(summarized) << toString(verifier.diagnostics());

    StatSet set("verifier");
    verifier.addStats(set);
    EXPECT_EQ(set.value("verify_total"), 20.0);
    EXPECT_EQ(set.value("verify_suppressed"), 18.0);
    EXPECT_EQ(set.value("verify_SC10_mem-missing-addr"), 10.0);
}

TEST(StreamVerifier, PerRuleSiteCapBoundsTheFlood)
{
    VerifierOptions options;
    options.maxPerRuleSites = 3;
    StreamVerifier verifier(options);
    // 16 distinct sites firing SC11 (distinct addrs, missing size).
    for (int i = 0; i < 16; ++i)
        verifier.observe(op(OpKind::kLoad, 0x00601000 + 8 * i, 0, 0));
    verifier.finish();

    size_t stored = 0;
    for (const auto &d : verifier.diagnostics())
        if (d.rule == RuleId::kMemMissingSize &&
            d.message.find("suppressed") == std::string::npos)
            ++stored;
    EXPECT_EQ(stored, 3u);
    EXPECT_EQ(verifier.totalDiagnostics(), 16u);
    EXPECT_EQ(verifier.suppressedDiagnostics(), 13u);
}

// --- Corrupted real-pipeline output is flagged. ---

class CorruptedPipelineTest : public ::testing::Test
{
  protected:
    CorruptedPipelineTest() : pa(pa::PointerLayout(16, 46)) {}

    std::vector<MicroOp>
    lowerAos(std::vector<MicroOp> input)
    {
        ir::VectorStream source(std::move(input));
        compiler::AosOptPass opt(&source);
        compiler::AosBackendPass backend(&opt, &pa);
        std::vector<MicroOp> out;
        MicroOp next;
        while (backend.next(next))
            out.push_back(next);
        return out;
    }

    std::vector<Diagnostic>
    verify(const std::vector<MicroOp> &ops)
    {
        VerifierOptions options;
        options.layout = pa.layout();
        options.requireAosLowering = true;
        return StreamVerifier::verify(ops, options);
    }

    pa::PaContext pa;
};

TEST_F(CorruptedPipelineTest, StaticUseAfterFreeIsFlagged)
{
    // The pipeline output of a UAF program is itself statically
    // suspicious: the signed access follows its chunk's bndclr.
    const auto ops = lowerAos(
        {op(OpKind::kMallocMark, 0, kChunk, 64),
         op(OpKind::kFreeMark, 0, kChunk),
         op(OpKind::kLoad, kChunk + 16, kChunk, 8)});
    EXPECT_TRUE(hasRule(verify(ops), RuleId::kSignedAfterClear));
}

TEST_F(CorruptedPipelineTest, PacBitFlipIsFlagged)
{
    auto ops = lowerAos({op(OpKind::kMallocMark, 0, kChunk, 64),
                         op(OpKind::kLoad, kChunk + 16, kChunk, 8)});
    // Corrupt one PAC bit of the signed load (a forged pointer).
    bool corrupted = false;
    for (auto &o : ops) {
        if (o.kind == OpKind::kLoad && pa.layout().signed_(o.addr)) {
            o.addr ^= u64{1} << 50; // inside the PAC field (61..46)
            corrupted = true;
            break;
        }
    }
    ASSERT_TRUE(corrupted);
    EXPECT_TRUE(hasRule(verify(ops), RuleId::kPacMismatch));
}

TEST_F(CorruptedPipelineTest, DroppedLoweringIsFlagged)
{
    auto ops = lowerAos({op(OpKind::kMallocMark, 0, kChunk, 64)});
    // Simulate a buggy backend that lost the bndstr.
    std::vector<MicroOp> broken;
    for (const auto &o : ops)
        if (o.kind != OpKind::kBndstr)
            broken.push_back(o);
    EXPECT_TRUE(hasRule(verify(broken), RuleId::kMallocNotLowered));
}

// --- StreamExecutor: architectural detection semantics. ---

TEST(StreamExecutor, BenignLifecycleHasNoDetections)
{
    StreamExecutor exec(kLayout);
    const auto stats = exec.run(std::vector<MicroOp>{
        op(OpKind::kBndstr, signedPtr(), kChunk, 64),
        op(OpKind::kLoad, signedPtr(kChunk + 16), kChunk, 8),
        op(OpKind::kStore, signedPtr(kChunk + 24), kChunk, 8),
        op(OpKind::kBndclr, signedPtr(), kChunk)});
    EXPECT_EQ(stats.detections(), 0u);
    EXPECT_EQ(stats.checkedAccesses, 2u);
    EXPECT_EQ(stats.bndstrs, 1u);
    EXPECT_EQ(stats.bndclrs, 1u);
}

TEST(StreamExecutor, OutOfBoundsAccessDetected)
{
    StreamExecutor exec(kLayout);
    const auto stats = exec.run(std::vector<MicroOp>{
        op(OpKind::kBndstr, signedPtr(), kChunk, 64),
        op(OpKind::kLoad, signedPtr(kChunk + 4096), kChunk, 8)});
    EXPECT_EQ(stats.boundsViolations, 1u);
}

TEST(StreamExecutor, UseAfterFreeDetected)
{
    StreamExecutor exec(kLayout);
    const auto stats = exec.run(std::vector<MicroOp>{
        op(OpKind::kBndstr, signedPtr(), kChunk, 64),
        op(OpKind::kBndclr, signedPtr(), kChunk),
        op(OpKind::kLoad, signedPtr(kChunk + 16), kChunk, 8)});
    EXPECT_EQ(stats.boundsViolations, 1u);
}

TEST(StreamExecutor, DoubleFreeDetected)
{
    StreamExecutor exec(kLayout);
    const auto stats = exec.run(std::vector<MicroOp>{
        op(OpKind::kBndstr, signedPtr(), kChunk, 64),
        op(OpKind::kBndclr, signedPtr(), kChunk),
        op(OpKind::kBndclr, signedPtr(), kChunk)});
    EXPECT_EQ(stats.clearFailures, 1u);
}

TEST(StreamExecutor, InvalidFreeOfUnsignedPointerDetected)
{
    StreamExecutor exec(kLayout);
    const auto stats = exec.run(
        std::vector<MicroOp>{op(OpKind::kBndclr, kChunk, kChunk)});
    EXPECT_EQ(stats.clearFailures, 1u);
}

TEST(StreamExecutor, StrippedAhcFailsAuthentication)
{
    StreamExecutor exec(kLayout);
    const auto stats = exec.run(
        std::vector<MicroOp>{op(OpKind::kAutm, kChunk, kChunk)});
    EXPECT_EQ(stats.authFailures, 1u);
}

TEST(StreamExecutor, ElisionPreservesTheDetectionProfile)
{
    // A stream with redundant autms plus one real AHC-strip attack.
    MicroOp load = op(OpKind::kLoad, signedPtr(kChunk + 16), kChunk, 8);
    load.loadsPointer = true;
    const std::vector<MicroOp> stream{
        op(OpKind::kBndstr, signedPtr(), kChunk, 64),
        load, op(OpKind::kAutm, signedPtr(kChunk + 16), kChunk),
        load, op(OpKind::kAutm, signedPtr(kChunk + 16), kChunk),
        load, op(OpKind::kAutm, signedPtr(kChunk + 16), kChunk),
        // Attack: the value's AHC was stripped; this autm must stay.
        op(OpKind::kLoad, kChunk + 32, kChunk, 8),
        op(OpKind::kAutm, kChunk + 32, kChunk)};

    ir::VectorStream source(stream);
    compiler::AosElidePass elide(&source, kLayout);
    std::vector<MicroOp> elided;
    MicroOp next;
    while (elide.next(next))
        elided.push_back(next);
    ASSERT_GT(elide.stats().autmElided, 0u);

    StreamExecutor full(kLayout);
    StreamExecutor reduced(kLayout);
    const auto full_stats = full.run(stream);
    const auto reduced_stats = reduced.run(elided);
    EXPECT_TRUE(reduced_stats.sameDetections(full_stats));
    EXPECT_EQ(full_stats.authFailures, 1u);
    EXPECT_LT(reduced_stats.autms, full_stats.autms);
}

// --- AosSystem integration: verify-after-instrument + elision. ---

class SystemStaticcheckTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite() { setQuiet(true); }

    core::RunResult
    runOne(baselines::SystemOptions options,
           const std::string &workload = "mcf")
    {
        core::AosSystem system(workloads::profileByName(workload), options);
        return system.run();
    }
};

TEST_F(SystemStaticcheckTest, VerifiedRunsAreCleanForEveryMechanism)
{
    for (baselines::Mechanism mech :
         {baselines::Mechanism::kWatchdog, baselines::Mechanism::kPa,
          baselines::Mechanism::kAos, baselines::Mechanism::kPaAos,
          baselines::Mechanism::kAsan}) {
        baselines::SystemOptions options;
        options.mech = mech;
        options.measureOps = 20000;
        options.verifyStream = true;
        const auto r = runOne(options);
        EXPECT_TRUE(r.verified);
        EXPECT_EQ(r.verifyDiagnostics, 0u)
            << baselines::mechanismName(mech) << ":\n"
            << toString(r.verifyFindings);
        EXPECT_TRUE(r.toStatSet().has("verify_total"));
    }
}

TEST_F(SystemStaticcheckTest, ElisionReducesDynamicAutms)
{
    baselines::SystemOptions options;
    options.mech = baselines::Mechanism::kPaAos;
    options.measureOps = 40000;
    const auto base = runOne(options);

    options.aosElision = true;
    options.verifyStream = true;
    const auto elided = runOne(options);

    ASSERT_GT(base.mix.autms, 0u);
    EXPECT_LT(elided.mix.autms, base.mix.autms);
    EXPECT_GT(elided.elide.autmElided, 0u);
    EXPECT_EQ(elided.elide.autmSeen,
              elided.elide.autmElided + elided.elide.autmKept);
    // Elision must not corrupt the stream or flag violations.
    EXPECT_EQ(elided.verifyDiagnostics, 0u)
        << toString(elided.verifyFindings);
    EXPECT_EQ(elided.violations, base.violations);
    // The elision stats surface in the flattened dump.
    const auto set = elided.toStatSet();
    EXPECT_TRUE(set.has("elide_rate"));
    EXPECT_GT(set.value("elide_autm_elided"), 0.0);
}

} // namespace
} // namespace aos::staticcheck
