/**
 * @file
 * Unit tests for the statistics package.
 */

#include <cmath>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace aos {
namespace {

TEST(Scalar, IncrementAndAssign)
{
    Scalar s("test");
    EXPECT_EQ(s.value(), 0.0);
    ++s;
    ++s;
    EXPECT_EQ(s.value(), 2.0);
    s += 3.5;
    EXPECT_EQ(s.value(), 5.5);
    s = 1.0;
    EXPECT_EQ(s.value(), 1.0);
}

TEST(Distribution, Empty)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.stdev(), 0.0);
}

TEST(Distribution, MeanMinMax)
{
    Distribution d;
    for (double v : {4.0, 8.0, 6.0, 2.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 8.0);
}

TEST(Distribution, StdevMatchesClosedForm)
{
    Distribution d;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(v);
    // Known population stdev of this classic data set is 2.
    EXPECT_NEAR(d.stdev(), 2.0, 1e-9);
}

TEST(Distribution, WeightedSamples)
{
    Distribution a;
    Distribution b;
    a.sample(3.0, 5);
    for (int i = 0; i < 5; ++i)
        b.sample(3.0);
    EXPECT_EQ(a.count(), b.count());
    EXPECT_DOUBLE_EQ(a.mean(), b.mean());
}

TEST(Histogram, CountsAndOccupancy)
{
    Histogram h;
    h.add(1);
    h.add(1);
    h.add(7, 3);
    EXPECT_EQ(h.get(1), 2u);
    EXPECT_EQ(h.get(7), 3u);
    EXPECT_EQ(h.get(42), 0u);

    // Occupancy over a keyspace of 4: buckets {2, 3, 0, 0}.
    const Distribution occ = h.occupancy(4);
    EXPECT_EQ(occ.count(), 4u);
    EXPECT_DOUBLE_EQ(occ.mean(), 1.25);
    EXPECT_DOUBLE_EQ(occ.max(), 3.0);
    EXPECT_DOUBLE_EQ(occ.min(), 0.0);
}

TEST(StatSet, NamedScalarsAndDump)
{
    StatSet set("core");
    set.scalar("cycles") += 100;
    set.scalar("insts") += 250;
    EXPECT_TRUE(set.has("cycles"));
    EXPECT_FALSE(set.has("nope"));
    EXPECT_EQ(set.value("insts"), 250.0);
    EXPECT_EQ(set.value("nope"), 0.0);

    std::ostringstream os;
    set.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("core.cycles 100"), std::string::npos);
    EXPECT_NE(out.find("core.insts 250"), std::string::npos);
}

TEST(Distribution, MergeMatchesSequentialSampling)
{
    // Split one sample stream across two distributions; merging must
    // reproduce the stats of sampling everything into one (Chan
    // parallel Welford combine).
    const std::vector<double> all{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
    Distribution whole;
    Distribution left;
    Distribution right;
    for (size_t i = 0; i < all.size(); ++i) {
        whole.sample(all[i]);
        (i < 3 ? left : right).sample(all[i]);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.stdev(), whole.stdev(), 1e-12);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(Distribution, MergeHandlesEmptySides)
{
    Distribution filled;
    filled.sample(2.0);
    filled.sample(4.0);

    Distribution empty;
    Distribution target;
    target.merge(empty); // no-op
    EXPECT_EQ(target.count(), 0u);

    target.merge(filled); // adopt
    EXPECT_EQ(target.count(), 2u);
    EXPECT_DOUBLE_EQ(target.mean(), 3.0);

    filled.merge(empty); // no-op on filled side
    EXPECT_EQ(filled.count(), 2u);
}

TEST(StatSet, MergeSumsScalarsAndPoolsDistributions)
{
    StatSet a("a");
    a.scalar("cycles") = 100;
    a.scalar("only_a") = 7;
    a.distribution("lat").sample(10.0);
    a.distribution("lat").sample(20.0);

    StatSet b("b");
    b.scalar("cycles") = 50;
    b.scalar("only_b") = 3;
    b.distribution("lat").sample(30.0);
    b.distribution("other").sample(1.0);

    a.merge(b);
    EXPECT_DOUBLE_EQ(a.value("cycles"), 150.0);
    EXPECT_DOUBLE_EQ(a.value("only_a"), 7.0);
    EXPECT_DOUBLE_EQ(a.value("only_b"), 3.0);
    EXPECT_EQ(a.distribution("lat").count(), 3u);
    EXPECT_DOUBLE_EQ(a.distribution("lat").mean(), 20.0);
    EXPECT_TRUE(a.hasDistribution("other"));

    std::ostringstream os;
    a.dump(os);
    EXPECT_NE(os.str().find("a.lat.mean 20"), std::string::npos);
    EXPECT_NE(os.str().find("a.lat.count 3"), std::string::npos);
}

TEST(Geomean, MatchesClosedForm)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 8.0, 4.0}), 4.0, 1e-12);
}

TEST(Geomean, SkipsNonPositiveValues)
{
    // log(0) = -inf and log(<0) = NaN used to poison the whole mean;
    // such values are skipped (with a warning) instead.
    EXPECT_NEAR(geomean({0.0, 1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({-3.0, 2.0, 8.0, 4.0}), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({0.0}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({-1.0, 0.0}), 0.0);
}

TEST(Geomean, SkipsNonFiniteValues)
{
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_NEAR(geomean({inf, 1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({nan, 4.0}), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(geomean({inf, nan}), 0.0);
}

} // namespace
} // namespace aos
