/**
 * @file
 * Tests for the memory check unit: FSM behaviour (Fig. 8), selective
 * checking, way iteration, BWB interplay, bounds forwarding, replay
 * and fault handling.
 */

#include <gtest/gtest.h>

#include "mcu/memory_check_unit.hh"

namespace aos::mcu {
namespace {

class McuTest : public ::testing::Test
{
  protected:
    McuTest()
        : layout(16, 46), hbt(0x3000'0000'0000ull, 16, 1), bwb(64),
          mcu(McuConfig{}, layout, &hbt, &bwb, &mem)
    {
    }

    /** Run the MCU until @p seq is retirable (bounded). */
    void
    settle(u64 seq, unsigned max_cycles = 1000)
    {
        for (unsigned i = 0; i < max_cycles; ++i) {
            if (mcu.readyToRetire(seq) ||
                mcu.faulted(seq)) {
                return;
            }
            mcu.tick(now++);
        }
        FAIL() << "seq " << seq << " never settled";
    }

    /** Commit + drain an entry through its post-retire work. */
    void
    commitAndDrain(u64 seq)
    {
        mcu.markCommitted(seq);
        for (unsigned i = 0; i < 100 && !mcu.empty(); ++i) {
            mcu.tick(now++);
            mcu.drainRetired();
            if (!mcu.readyToRetire(seq))
                continue;
        }
    }

    Addr
    signedPtr(Addr raw, u64 pac, u64 ahc = 1)
    {
        return layout.compose(raw, pac, ahc);
    }

    pa::PointerLayout layout;
    memsim::MemorySystem mem;
    bounds::HashedBoundsTable hbt;
    bounds::BoundsWayBuffer bwb;
    MemoryCheckUnit mcu;
    Tick now = 0;
    u64 seq = 1;
};

TEST_F(McuTest, UnsignedAccessSkipsChecking)
{
    ASSERT_TRUE(mcu.enqueue(ir::OpKind::kLoad, 0x20001000, 8, seq, now));
    settle(seq);
    EXPECT_TRUE(mcu.readyToRetire(seq));
    EXPECT_EQ(mcu.stats().uncheckedOps, 1u);
    EXPECT_EQ(mcu.stats().checkedOps, 0u);
    EXPECT_EQ(mcu.stats().boundsLineLoads, 0u);
}

TEST_F(McuTest, SignedAccessWithValidBoundsPasses)
{
    hbt.insert(7, bounds::compress(0x20001000, 64));
    ASSERT_TRUE(mcu.enqueue(ir::OpKind::kLoad,
                            signedPtr(0x20001020, 7), 8, seq, now));
    settle(seq);
    EXPECT_TRUE(mcu.readyToRetire(seq));
    EXPECT_FALSE(mcu.faulted(seq));
    EXPECT_EQ(mcu.stats().checkedOps, 1u);
    EXPECT_GE(mcu.stats().boundsLineLoads, 1u);
}

TEST_F(McuTest, SignedAccessWithoutBoundsFaults)
{
    // The Fail state is serviced at the MCQ head in the same cycle it
    // is observed, so faults are witnessed through the OS hook.
    FaultKind seen = FaultKind::kNone;
    mcu.onFault = [&](FaultKind kind, const McqEntry &entry) {
        seen = kind;
        EXPECT_EQ(entry.seq, 1u);
        return false; // report-and-resume
    };
    ASSERT_TRUE(mcu.enqueue(ir::OpKind::kStore,
                            signedPtr(0x20002000, 9), 8, seq, now));
    settle(seq);
    EXPECT_EQ(seen, FaultKind::kBoundsViolation);
    EXPECT_EQ(mcu.stats().boundsFailures, 1u);
}

TEST_F(McuTest, OutOfBoundsAddressFaults)
{
    FaultKind seen = FaultKind::kNone;
    mcu.onFault = [&](FaultKind kind, const McqEntry &) {
        seen = kind;
        return false;
    };
    hbt.insert(7, bounds::compress(0x20001000, 64));
    ASSERT_TRUE(mcu.enqueue(ir::OpKind::kLoad,
                            signedPtr(0x20001040, 7), 8, seq, now));
    settle(seq);
    EXPECT_EQ(seen, FaultKind::kBoundsViolation);
}

TEST_F(McuTest, DefaultFaultPolicyResumesAtHead)
{
    // Without an onFault handler a violation is recorded and the
    // instruction completes (report-and-resume). Needs to outlast the
    // cold bounds-line access (~DRAM latency).
    ASSERT_TRUE(mcu.enqueue(ir::OpKind::kLoad,
                            signedPtr(0x20002000, 9), 8, seq, now));
    for (unsigned i = 0; i < 500 && !mcu.readyToRetire(seq); ++i)
        mcu.tick(now++);
    EXPECT_TRUE(mcu.readyToRetire(seq));
    EXPECT_EQ(mcu.stats().boundsFailures, 1u);
}

TEST_F(McuTest, BndstrInsertsAfterCommit)
{
    ASSERT_TRUE(mcu.enqueue(ir::OpKind::kBndstr,
                            signedPtr(0x20001000, 7), 64, seq, now));
    settle(seq);
    EXPECT_TRUE(mcu.readyToRetire(seq));
    // Not yet in the table: the write is post-commit.
    EXPECT_EQ(hbt.stats().inserts, 0u);
    commitAndDrain(seq);
    EXPECT_EQ(hbt.stats().inserts, 1u);
    EXPECT_TRUE(hbt.check(7, 0x20001010, 0, nullptr).has_value());
    EXPECT_EQ(mcu.stats().boundsStores, 1u);
}

TEST_F(McuTest, BndclrRemovesBounds)
{
    hbt.insert(7, bounds::compress(0x20001000, 64));
    ASSERT_TRUE(mcu.enqueue(ir::OpKind::kBndclr,
                            signedPtr(0x20001000, 7), 0, seq, now));
    settle(seq);
    commitAndDrain(seq);
    EXPECT_FALSE(hbt.check(7, 0x20001000, 0, nullptr).has_value());
}

TEST_F(McuTest, BndclrWithoutBoundsFaults)
{
    // Double free / House-of-Spirit detection.
    FaultKind seen = FaultKind::kNone;
    mcu.onFault = [&](FaultKind kind, const McqEntry &) {
        seen = kind;
        return false;
    };
    ASSERT_TRUE(mcu.enqueue(ir::OpKind::kBndclr,
                            signedPtr(0x20001000, 7), 0, seq, now));
    settle(seq);
    EXPECT_EQ(seen, FaultKind::kClearFailure);
    EXPECT_EQ(mcu.stats().clearFailures, 1u);
}

TEST_F(McuTest, BndstrOverflowTriggersResizeAndRetries)
{
    for (int i = 0; i < 8; ++i)
        hbt.insert(7, bounds::compress(0x30000000 + i * 0x100, 64));
    ASSERT_TRUE(mcu.enqueue(ir::OpKind::kBndstr,
                            signedPtr(0x20001000, 7), 64, seq, now));
    // Let the FSM hit the full row, fault, resize, retry and succeed.
    for (unsigned i = 0; i < 3000 && !mcu.readyToRetire(seq); ++i)
        mcu.tick(now++);
    ASSERT_TRUE(mcu.readyToRetire(seq));
    EXPECT_GE(hbt.stats().resizes, 1u);
    commitAndDrain(seq);
    EXPECT_TRUE(hbt.check(7, 0x20001010, 0, nullptr).has_value());
}

TEST_F(McuTest, WayIterationFindsBoundsInLaterWay)
{
    bounds::HashedBoundsTable wide(0x3000'0000'0000ull, 16, 4);
    MemoryCheckUnit mcu2(McuConfig{}, layout, &wide, &bwb, &mem);
    // Fill way 0 with decoys; the target object lands in way 1.
    for (int i = 0; i < 8; ++i)
        wide.insert(7, bounds::compress(0x30000000 + i * 0x100, 64));
    wide.insert(7, bounds::compress(0x20001000, 64));
    ASSERT_TRUE(mcu2.enqueue(ir::OpKind::kLoad,
                             signedPtr(0x20001010, 7), 8, seq, now));
    for (unsigned i = 0; i < 1000 && !mcu2.readyToRetire(seq); ++i)
        mcu2.tick(now++);
    ASSERT_TRUE(mcu2.readyToRetire(seq));
    EXPECT_FALSE(mcu2.faulted(seq));
    mcu2.markCommitted(seq);
    mcu2.tick(now++);
    mcu2.drainRetired();
    EXPECT_EQ(mcu2.stats().waysTouchedTotal, 2u)
        << "ways 0 (miss) and 1 (hit)";
}

TEST_F(McuTest, BwbHintShortensSecondSearch)
{
    bounds::HashedBoundsTable wide(0x3000'0000'0000ull, 16, 4);
    MemoryCheckUnit mcu2(McuConfig{}, layout, &wide, &bwb, &mem);
    for (int i = 0; i < 8; ++i)
        wide.insert(7, bounds::compress(0x30000000 + i * 0x100, 64));
    wide.insert(7, bounds::compress(0x20001000, 64));

    auto run_check = [&](u64 s) {
        EXPECT_TRUE(mcu2.enqueue(ir::OpKind::kLoad,
                                 signedPtr(0x20001010, 7), 8, s, now));
        for (unsigned i = 0; i < 1000 && !mcu2.readyToRetire(s); ++i)
            mcu2.tick(now++);
        mcu2.markCommitted(s);
        mcu2.tick(now++);
        mcu2.drainRetired();
    };
    run_check(1);
    const u64 after_first = mcu2.stats().boundsLineLoads;
    EXPECT_EQ(after_first, 2u) << "first search: ways 0 then 1";
    run_check(2);
    EXPECT_EQ(mcu2.stats().boundsLineLoads, after_first + 1)
        << "BWB hint should jump straight to way 1";
    EXPECT_EQ(bwb.stats().hits, 1u);
}

TEST_F(McuTest, BoundsForwardingFromInflightBndstr)
{
    // A load right after the bndstr of the same object is satisfied by
    // forwarding, before the bounds ever reach the table (SV-F2).
    ASSERT_TRUE(mcu.enqueue(ir::OpKind::kBndstr,
                            signedPtr(0x20001000, 7), 64, 1, now));
    ASSERT_TRUE(mcu.enqueue(ir::OpKind::kLoad,
                            signedPtr(0x20001020, 7), 8, 2, now));
    settle(2);
    EXPECT_TRUE(mcu.readyToRetire(2));
    EXPECT_FALSE(mcu.faulted(2));
    EXPECT_EQ(mcu.stats().forwards, 1u);
}

TEST_F(McuTest, ForwardingDisabledGoesToMemory)
{
    McuConfig config;
    config.boundsForwarding = false;
    MemoryCheckUnit mcu2(config, layout, &hbt, &bwb, &mem);
    ASSERT_TRUE(mcu2.enqueue(ir::OpKind::kBndstr,
                             signedPtr(0x20001000, 7), 64, 1, now));
    ASSERT_TRUE(mcu2.enqueue(ir::OpKind::kLoad,
                             signedPtr(0x20001020, 7), 8, 2, now));
    // The load must wait for the bndstr to commit; commit it.
    for (unsigned i = 0; i < 50; ++i)
        mcu2.tick(now++);
    mcu2.markCommitted(1);
    for (unsigned i = 0; i < 200 && !mcu2.readyToRetire(2); ++i) {
        mcu2.tick(now++);
        mcu2.drainRetired();
    }
    EXPECT_TRUE(mcu2.readyToRetire(2));
    EXPECT_FALSE(mcu2.faulted(2));
    EXPECT_EQ(mcu2.stats().forwards, 0u);
    EXPECT_GE(mcu2.stats().replays, 1u) << "commit replays the load";
}

TEST_F(McuTest, StoreLoadReplayOnBndclr)
{
    // A same-PAC load whose way search is still in flight when a
    // bndclr commits must be replayed with a reset Count (SV-E).
    bounds::HashedBoundsTable wide(0x3000'0000'0000ull, 16, 2);
    MemoryCheckUnit mcu2(McuConfig{}, layout, &wide, &bwb, &mem);
    // Way 0: eight decoy objects; way 1: the load's target object.
    for (int i = 0; i < 8; ++i)
        wide.insert(7, bounds::compress(0x30000000 + i * 0x100, 64));
    wide.insert(7, bounds::compress(0x20001000, 64));

    // bndclr of a way-0 decoy resolves after one (slow, cold) way
    // access; the load needs two sequential way accesses, so its
    // search is still outstanding when the clear commits.
    ASSERT_TRUE(mcu2.enqueue(ir::OpKind::kBndclr,
                             signedPtr(0x30000000, 7), 0, 1, now));
    ASSERT_TRUE(mcu2.enqueue(ir::OpKind::kLoad,
                             signedPtr(0x20001020, 7), 8, 2, now));
    for (unsigned i = 0; i < 1000 && !mcu2.readyToRetire(1); ++i)
        mcu2.tick(now++);
    ASSERT_TRUE(mcu2.readyToRetire(1));
    mcu2.markCommitted(1);
    for (unsigned i = 0; i < 1000 && !mcu2.readyToRetire(2); ++i) {
        mcu2.tick(now++);
        mcu2.drainRetired();
    }
    EXPECT_GE(mcu2.stats().replays, 1u);
    // The load's own object was not cleared: after the replay it must
    // complete successfully.
    EXPECT_TRUE(mcu2.readyToRetire(2));
    EXPECT_FALSE(mcu2.faulted(2));
}

TEST_F(McuTest, BackPressureWhenFull)
{
    McuConfig config;
    config.mcqEntries = 4;
    MemoryCheckUnit mcu2(config, layout, &hbt, &bwb, &mem);
    for (u64 s = 1; s <= 4; ++s)
        ASSERT_TRUE(mcu2.enqueue(ir::OpKind::kLoad, 0x20000000 + s * 64,
                                 8, s, now));
    EXPECT_TRUE(mcu2.full());
    EXPECT_FALSE(mcu2.enqueue(ir::OpKind::kLoad, 0x20010000, 8, 5, now));
    // Draining frees space (entries must be committed first).
    for (u64 s = 1; s <= 4; ++s)
        mcu2.markCommitted(s);
    for (unsigned i = 0; i < 10; ++i) {
        mcu2.tick(now++);
        mcu2.drainRetired();
    }
    EXPECT_FALSE(mcu2.full());
}

TEST_F(McuTest, FifoDrainOrder)
{
    hbt.insert(7, bounds::compress(0x20001000, 64));
    ASSERT_TRUE(mcu.enqueue(ir::OpKind::kLoad,
                            signedPtr(0x20001000, 7), 8, 1, now));
    ASSERT_TRUE(mcu.enqueue(ir::OpKind::kLoad, 0x600000, 8, 2, now));
    settle(2);
    // Only seq 2 committed: nothing drains past the uncommitted head.
    mcu.markCommitted(2);
    mcu.tick(now++);
    mcu.drainRetired();
    EXPECT_EQ(mcu.occupancy(), 2u);
    mcu.markCommitted(1);
    settle(1);
    mcu.tick(now++);
    mcu.drainRetired();
    EXPECT_EQ(mcu.occupancy(), 0u);
}

struct McuSweepCase
{
    unsigned ports;
    bool bwb;
    bool forwarding;
    unsigned assoc;
};

class McuConfigSweep : public ::testing::TestWithParam<McuSweepCase>
{
};

TEST_P(McuConfigSweep, CorrectnessHoldsUnderEveryConfiguration)
{
    // Whatever the micro-architectural knobs, the architectural
    // contract is fixed: valid accesses retire cleanly, invalid ones
    // fault. Run a mixed scenario under each configuration.
    const McuSweepCase c = GetParam();
    pa::PointerLayout layout(16, 46);
    memsim::MemorySystem mem;
    bounds::HashedBoundsTable hbt(0x3000'0000'0000ull, 16, c.assoc);
    bounds::BoundsWayBuffer bwb(64);
    McuConfig config;
    config.boundsPortsPerCycle = c.ports;
    config.useBwb = c.bwb;
    config.boundsForwarding = c.forwarding;
    MemoryCheckUnit unit(config, layout, &hbt, &bwb, &mem);

    // 16 objects sharing one PAC plus 16 with distinct PACs; resize
    // on row overflow exactly as the OS would (a 1-way row holds 8).
    auto insert = [&](u64 pac, Addr base) {
        while (!hbt.insert(pac, bounds::compress(base, 64))) {
            if (!hbt.resizing())
                hbt.beginResize();
            hbt.finishResize();
        }
    };
    for (int i = 0; i < 16; ++i)
        insert(5, 0x20000000 + i * 0x100);
    for (int i = 0; i < 16; ++i)
        insert(100 + i, 0x30000000 + i * 0x100);

    Tick now = 0;
    u64 seq = 0;
    std::vector<u64> good, bad;
    auto issue = [&](Addr raw, u64 pac, bool valid) {
        // Respect back-pressure like the core does; entries are
        // committed eagerly so the queue can drain as checks finish.
        while (unit.full()) {
            unit.tick(now++);
            unit.drainRetired();
        }
        ++seq;
        ASSERT_TRUE(unit.enqueue(ir::OpKind::kLoad,
                                 layout.compose(raw, pac, 1), 8, seq,
                                 now));
        unit.markCommitted(seq);
        (valid ? good : bad).push_back(seq);
    };

    u64 faults_seen = 0;
    unit.onFault = [&](FaultKind kind, const McqEntry &) {
        EXPECT_EQ(kind, FaultKind::kBoundsViolation);
        ++faults_seen;
        return false;
    };

    for (int i = 0; i < 16; ++i) {
        issue(0x20000000 + i * 0x100 + 16, 5, true);
        issue(0x30000000 + i * 0x100 + 16, 100 + i, true);
        issue(0x20000000 + i * 0x100 + 80, 5, false);  // past object
        issue(0x40000000 + i * 0x100, 200 + i, false); // no bounds
    }

    for (unsigned i = 0; i < 200000 && !unit.empty(); ++i) {
        unit.tick(now++);
        unit.drainRetired();
    }
    ASSERT_TRUE(unit.empty()) << "MCQ failed to drain";
    EXPECT_EQ(faults_seen, bad.size());
    EXPECT_EQ(unit.stats().boundsFailures, bad.size());
    EXPECT_EQ(unit.stats().checkedOps, good.size() + bad.size());
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, McuConfigSweep,
    ::testing::Values(McuSweepCase{1, true, true, 1},
                      McuSweepCase{2, true, true, 1},
                      McuSweepCase{4, true, true, 4},
                      McuSweepCase{1, false, true, 2},
                      McuSweepCase{1, true, false, 2},
                      McuSweepCase{2, false, false, 4},
                      McuSweepCase{8, true, true, 8}),
    [](const ::testing::TestParamInfo<McuSweepCase> &info) {
        const auto &c = info.param;
        return "p" + std::to_string(c.ports) +
               (c.bwb ? "_bwb" : "_nobwb") +
               (c.forwarding ? "_fwd" : "_nofwd") + "_a" +
               std::to_string(c.assoc);
    });

TEST_F(McuTest, EnqueueRejectsNonMemoryOps)
{
    EXPECT_DEATH(mcu.enqueue(ir::OpKind::kIntAlu, 0, 0, seq, now), "");
}

// ---- fault-injection hooks (DESIGN.md §8) -------------------------------

/** Scriptable McuFaultHooks stub for deterministic hook tests. */
struct ScriptedHooks : faultinject::McuFaultHooks
{
    unsigned stallLeft = 0;  //!< Cycles the MCQ reports full.
    unsigned drops = 0;      //!< Way responses to lose.
    unsigned dups = 0;       //!< Way responses to duplicate.
    u64 ticks = 0;

    void
    onMcuTick(Tick now) override
    {
        (void)now;
        ++ticks;
        if (stallLeft)
            --stallLeft;
    }

    bool stallQueue() override { return stallLeft > 0; }

    bool
    dropWayResponse(u64, unsigned) override
    {
        if (!drops)
            return false;
        --drops;
        return true;
    }

    bool
    duplicateWayResponse(u64, unsigned) override
    {
        if (!dups)
            return false;
        --dups;
        return true;
    }
};

TEST_F(McuTest, SustainedOverflowStallsWithoutDroppingChecks)
{
    // Drive far more checked accesses at the 48-entry MCQ than it can
    // hold, enqueuing only when full() clears (the issue-stage
    // contract). Every access must still be checked exactly once —
    // back-pressure, not dropped checks — and the queue must drain.
    hbt.insert(7, bounds::compress(0x20001000, 64));
    const unsigned capacity = McuConfig{}.mcqEntries;
    const u64 total = 5 * capacity + 7;

    u64 next_seq = 1;
    u64 stalled_cycles = 0;
    for (unsigned cycle = 0; cycle < 100'000; ++cycle) {
        // 8-wide issue: enqueue as many as back-pressure admits.
        for (unsigned slot = 0; slot < 8 && next_seq <= total; ++slot) {
            if (mcu.full())
                break;
            ASSERT_TRUE(mcu.enqueue(ir::OpKind::kLoad,
                                    signedPtr(0x20001020, 7), 8,
                                    next_seq, now));
            mcu.markCommitted(next_seq);
            ++next_seq;
        }
        if (mcu.full())
            ++stalled_cycles;
        mcu.tick(now++);
        mcu.drainRetired();
        if (next_seq > total && mcu.empty())
            break;
    }
    ASSERT_TRUE(mcu.empty()) << "MCQ deadlocked under saturation";
    EXPECT_EQ(next_seq, total + 1);
    EXPECT_GT(stalled_cycles, 0u) << "48-entry MCQ never saturated";
    EXPECT_EQ(mcu.stats().enqueued, total);
    EXPECT_EQ(mcu.stats().checkedOps, total);
    EXPECT_EQ(mcu.stats().boundsFailures, 0u);
}

TEST_F(McuTest, StallHookForcesFullWindowThenRecovers)
{
    // The kMcqStall fault holds full() asserted for a window; issue
    // must stall (enqueue refused), never drop, and resume after.
    ScriptedHooks hooks;
    hooks.stallLeft = 10;
    mcu.faultHooks = &hooks;
    hbt.insert(7, bounds::compress(0x20001000, 64));

    EXPECT_TRUE(mcu.full()); // Empty queue, yet stalled.
    EXPECT_FALSE(mcu.enqueue(ir::OpKind::kLoad, signedPtr(0x20001020, 7),
                             8, seq, now));
    unsigned waited = 0;
    while (mcu.full()) {
        ASSERT_LT(waited++, 100u) << "stall window never released";
        mcu.tick(now++);
    }
    EXPECT_EQ(waited, 10u);
    ASSERT_TRUE(mcu.enqueue(ir::OpKind::kLoad, signedPtr(0x20001020, 7),
                            8, seq, now));
    settle(seq);
    EXPECT_TRUE(mcu.readyToRetire(seq));
    EXPECT_FALSE(mcu.faulted(seq));
}

TEST_F(McuTest, DroppedWayResponseIsReissued)
{
    ScriptedHooks hooks;
    hooks.drops = 1;
    mcu.faultHooks = &hooks;
    hbt.insert(7, bounds::compress(0x20001000, 64));
    ASSERT_TRUE(mcu.enqueue(ir::OpKind::kLoad, signedPtr(0x20001020, 7),
                            8, seq, now));
    settle(seq);
    EXPECT_TRUE(mcu.readyToRetire(seq));
    EXPECT_FALSE(mcu.faulted(seq));
    EXPECT_EQ(mcu.stats().droppedResponses, 1u);
    // The lost response forced a second way-line load.
    EXPECT_GE(mcu.stats().boundsLineLoads, 2u);
}

TEST_F(McuTest, DuplicatedWayResponseIsDiscarded)
{
    ScriptedHooks hooks;
    hooks.dups = 1;
    mcu.faultHooks = &hooks;
    hbt.insert(7, bounds::compress(0x20001000, 64));
    ASSERT_TRUE(mcu.enqueue(ir::OpKind::kLoad, signedPtr(0x20001020, 7),
                            8, seq, now));
    settle(seq);
    EXPECT_TRUE(mcu.readyToRetire(seq));
    EXPECT_FALSE(mcu.faulted(seq));
    EXPECT_EQ(mcu.stats().duplicatedResponses, 1u);
    EXPECT_EQ(mcu.stats().checkedOps, 1u); // Counted once, not twice.
}

// ---- forwarding correctness & MCQ bookkeeping regressions ---------------

TEST_F(McuTest, NoForwardingFromOccupancyFailedBndstr)
{
    // Regression: forwarding must only be satisfied by bndstr entries
    // that passed their occupancy check. Fill the pac-7 row so a
    // bndstr fails occupancy in every way, complete it via the
    // report-and-resume policy (no resize — its bounds never reach the
    // table), then issue a load inside those phantom bounds. The load
    // must walk the table and fault, not forward against bounds that
    // were never stored.
    for (int i = 0; i < 8; ++i)
        hbt.insert(7, bounds::compress(0x30000000 + i * 0x100, 64));
    std::vector<FaultKind> seen;
    mcu.onFault = [&](FaultKind kind, const McqEntry &) {
        seen.push_back(kind);
        return false; // report-and-resume: no resize, no retry
    };
    ASSERT_TRUE(mcu.enqueue(ir::OpKind::kBndstr,
                            signedPtr(0x20001000, 7), 64, 1, now));
    for (unsigned i = 0; i < 3000 && !mcu.readyToRetire(1); ++i)
        mcu.tick(now++);
    ASSERT_TRUE(mcu.readyToRetire(1));
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0], FaultKind::kStoreOverflow);

    ASSERT_TRUE(mcu.enqueue(ir::OpKind::kLoad,
                            signedPtr(0x20001020, 7), 8, 2, now));
    for (unsigned i = 0;
         i < 3000 && !mcu.faulted(2) && !mcu.readyToRetire(2); ++i) {
        mcu.tick(now++);
    }
    FaultKind kind = FaultKind::kNone;
    EXPECT_TRUE(mcu.faulted(2, &kind))
        << "load passed against bounds that never reached the table";
    EXPECT_EQ(kind, FaultKind::kBoundsViolation);
    EXPECT_EQ(mcu.stats().forwards, 0u);
}

TEST_F(McuTest, ForwardingStillServedFromCommittedDoneBndstr)
{
    // The flip side of the occupancy-failed case: a bndstr that passed
    // occupancy keeps forwarding after it reaches Done (mutation
    // committed) for as long as it sits in the queue.
    ASSERT_TRUE(mcu.enqueue(ir::OpKind::kBndstr,
                            signedPtr(0x20001000, 7), 64, 1, now));
    settle(1);
    mcu.markCommitted(1);
    for (unsigned i = 0; i < 100 && hbt.stats().inserts == 0; ++i)
        mcu.tick(now++); // commit the mutation; entry stays queued
    ASSERT_EQ(hbt.stats().inserts, 1u);
    ASSERT_TRUE(mcu.enqueue(ir::OpKind::kLoad,
                            signedPtr(0x20001020, 7), 8, 2, now));
    settle(2);
    EXPECT_TRUE(mcu.readyToRetire(2));
    EXPECT_FALSE(mcu.faulted(2));
    EXPECT_EQ(mcu.stats().forwards, 1u);
}

TEST(McqEntryTest, ResetForRetryClearsExactlyTheWalkProgress)
{
    McqEntry e;
    e.valid = true;
    e.type = McqType::kBndstr;
    e.state = McqState::kFail;
    e.fault = FaultKind::kStoreOverflow;
    e.addr = 0xdead0000;
    e.rawAddr = 0x20001000;
    e.pac = 7;
    e.ahc = 2;
    e.size = 64;
    e.bndData = 12345;
    e.bndAddr = 0x30000040;
    e.way = 3;
    e.count = 4;
    e.committed = true;
    e.signedPtr = true;
    e.forwarded = true;
    e.started = true;
    e.counted = true;
    e.seq = 42;
    e.readyAt = 999;
    e.waysTouched = 5;

    e.resetForRetry(1234);

    // Cleared: exactly the FSM walk progress.
    EXPECT_EQ(e.state, McqState::kInit);
    EXPECT_EQ(e.fault, FaultKind::kNone);
    EXPECT_EQ(e.way, 0u);
    EXPECT_EQ(e.count, 0u);
    EXPECT_FALSE(e.forwarded);
    EXPECT_FALSE(e.started);
    EXPECT_EQ(e.readyAt, Tick{1234});

    // Preserved: identity, operands, commit status, accounting.
    EXPECT_TRUE(e.valid);
    EXPECT_EQ(e.type, McqType::kBndstr);
    EXPECT_EQ(e.addr, 0xdead0000u);
    EXPECT_EQ(e.rawAddr, 0x20001000u);
    EXPECT_EQ(e.pac, 7u);
    EXPECT_EQ(e.ahc, 2u);
    EXPECT_EQ(e.size, 64u);
    EXPECT_EQ(e.bndData, bounds::Compressed{12345});
    EXPECT_TRUE(e.committed);
    EXPECT_TRUE(e.signedPtr);
    EXPECT_TRUE(e.counted);
    EXPECT_EQ(e.seq, 42u);
    EXPECT_EQ(e.waysTouched, 5u);
}

TEST_F(McuTest, SeqMapSurvivesRingWraparound)
{
    // Stress the O(1) seq->slot map across many wraps of a small ring:
    // every in-flight seq must stay findable (faulted()/readyToRetire()
    // consistent), drained seqs must become trivially retirable, and
    // occupancy must never exceed capacity.
    McuConfig config;
    config.mcqEntries = 8;
    MemoryCheckUnit mcu2(config, layout, &hbt, &bwb, &mem);
    hbt.insert(7, bounds::compress(0x20001000, 64));

    const u64 total = 100; // 12+ wraps of the 8-slot ring
    u64 next_seq = 1;
    u64 drained_below = 1; // all seqs < this have left the queue
    for (unsigned cycle = 0; cycle < 100'000; ++cycle) {
        while (!mcu2.full() && next_seq <= total) {
            // Alternate unsigned (instant) and signed (way walk) loads
            // so entries complete at staggered times.
            const Addr addr = (next_seq & 1)
                                  ? Addr{0x20002000}
                                  : signedPtr(0x20001020, 7);
            ASSERT_TRUE(mcu2.enqueue(ir::OpKind::kLoad, addr, 8,
                                     next_seq, now));
            mcu2.markCommitted(next_seq);
            ++next_seq;
        }
        ASSERT_LE(mcu2.occupancy(), 8u);
        // Map lookups: in-flight entries resolve, drained ones do not.
        if (drained_below > 1) {
            EXPECT_TRUE(mcu2.readyToRetire(drained_below - 1));
            EXPECT_FALSE(mcu2.faulted(drained_below - 1));
        }
        for (u64 s = drained_below; s < next_seq; ++s)
            EXPECT_FALSE(mcu2.faulted(s));
        EXPECT_TRUE(mcu2.readyToRetire(next_seq)) << "future seq";
        mcu2.tick(now++);
        mcu2.drainRetired();
        drained_below = next_seq - mcu2.occupancy();
        if (next_seq > total && mcu2.empty())
            break;
    }
    ASSERT_TRUE(mcu2.empty()) << "ring failed to drain";
    EXPECT_EQ(mcu2.stats().enqueued, total);
    EXPECT_EQ(mcu2.stats().boundsFailures, 0u);
    EXPECT_EQ(mcu2.stats().checkedOps + mcu2.stats().uncheckedOps, total);
}

} // namespace
} // namespace aos::mcu
