/**
 * @file
 * Security analysis tests (paper SVII): every attack and defence the
 * paper discusses, exercised end to end against AosRuntime — plus the
 * documented limitations (bounds narrowing, PAC collisions), asserted
 * as limitations so any behavioural change is visible.
 */

#include <gtest/gtest.h>

#include "compiler/aos_elide_pass.hh"
#include "compiler/aos_passes.hh"
#include "compiler/pa_pass.hh"
#include "core/aos_runtime.hh"
#include "staticcheck/stream_executor.hh"

namespace aos::core {
namespace {

class SecurityTest : public ::testing::Test
{
  protected:
    AosRuntime rt;
};

// --- Fig. 12: the paper's worked example, line by line ---

TEST_F(SecurityTest, Fig12WorkedExample)
{
    constexpr u64 kElemSize = 8;
    constexpr u64 kN = 16;
    // T *ptr = malloc(sizeof(T)*N); pacma; bndstr
    const Addr ptr = rt.malloc(kElemSize * kN);
    ASSERT_NE(ptr, 0u);

    // Heap OOB access: ptr[N+1] read and write both fail.
    EXPECT_EQ(rt.load(ptr + (kN + 1) * kElemSize),
              Status::kBoundsViolation);
    EXPECT_EQ(rt.store(ptr + (kN + 1) * kElemSize),
              Status::kBoundsViolation);

    // Valid free(): bndclr; xpacm; free; pacma re-sign.
    EXPECT_EQ(rt.free(ptr), Status::kOk);

    // Dangling pointer / UAF: cannot find valid bounds.
    EXPECT_EQ(rt.load(ptr), Status::kBoundsViolation);

    // Double free: cannot find bounds to clear.
    EXPECT_EQ(rt.free(ptr), Status::kDoubleFree);
}

// --- Fig. 1: House of Spirit ---

TEST_F(SecurityTest, HouseOfSpiritBlockedByAos)
{
    // The attacker crafts a fake chunk at an address they control and
    // calls free() on it. Unprotected, the allocator accepts it (see
    // allocator_test); under AOS the bndclr preceding free() fails
    // because the crafted pointer has no bounds (and no valid PAC).
    const Addr fake = 0x00601000;
    rt.heap().forgeChunkHeader(fake, 0x30);

    // Attacker-controlled pointer is unsigned: rejected outright.
    EXPECT_EQ(rt.free(fake), Status::kInvalidFree);

    // Even a forged AHC/PAC fails: no bounds exist for that address.
    const Addr forged =
        rt.paContext().layout().compose(fake, /*pac=*/0x1234, /*ahc=*/1);
    EXPECT_EQ(rt.free(forged), Status::kDoubleFree);

    // The fastbin was never poisoned: malloc does not return the
    // attacker's address.
    const Addr victim = rt.malloc(0x30);
    EXPECT_NE(rt.strip(victim), fake);
}

TEST_F(SecurityTest, HouseOfSpiritSucceedsWithoutAos)
{
    // Control experiment: the same attack against the bare allocator
    // works, demonstrating that AOS (not the allocator) blocks it.
    alloc::HeapAllocator heap;
    const Addr fake = 0x00601000;
    heap.forgeChunkHeader(fake, 0x30);
    EXPECT_EQ(heap.free(fake), alloc::FreeResult::kCorrupting);
    EXPECT_EQ(heap.malloc(0x30), fake);
}

// --- Temporal safety without a quarantine pool (SIV-C) ---

TEST_F(SecurityTest, ImmediateReuseStillCatchesStaleAccess)
{
    // AOS needs no quarantine: even if the allocator reuses the chunk
    // immediately, the stale (re-signed) pointer fails its check
    // whenever the new object's bounds don't cover the access...
    const Addr p = rt.malloc(64);
    ASSERT_EQ(rt.free(p), Status::kOk);
    // Same fastbin size class: LIFO reuse hands back the same chunk,
    // now holding a smaller 50-byte object.
    const Addr q = rt.malloc(50);
    ASSERT_EQ(rt.strip(q), rt.strip(p));
    // ...e.g. beyond the smaller new object:
    EXPECT_EQ(rt.load(p + 56), Status::kBoundsViolation);
    // The new owner's accesses are fine.
    EXPECT_EQ(rt.load(q + 16), Status::kOk);
}

TEST_F(SecurityTest, StalePointerToReusedChunkSameSizeAliases)
{
    // Documented residual risk shared with all table-keyed schemes:
    // if the same address is re-allocated with identical base, the
    // PAC (computed from the base) matches and in-bounds stale
    // accesses pass. The paper's temporal guarantee is about freed,
    // not-yet-reused memory.
    const Addr p = rt.malloc(64);
    ASSERT_EQ(rt.free(p), Status::kOk);
    const Addr q = rt.malloc(64);
    ASSERT_EQ(rt.strip(q), rt.strip(p));
    EXPECT_EQ(rt.load(p), Status::kOk);
}

// --- Inter-object isolation / heap metadata protection (SVII-D) ---

TEST_F(SecurityTest, ChunkHeaderCorruptionBlocked)
{
    const Addr p = rt.malloc(64);
    // glibc-style attacks overwrite the chunk header at p-16/p-8.
    EXPECT_EQ(rt.store(p - 16), Status::kBoundsViolation);
    EXPECT_EQ(rt.store(p - 8), Status::kBoundsViolation);
}

TEST_F(SecurityTest, CannotReachOtherObjectsWithMyPointer)
{
    const Addr a = rt.malloc(64);
    std::vector<Addr> others;
    for (int i = 0; i < 64; ++i)
        others.push_back(rt.malloc(64));
    // Sweep a's pointer across several KB: every dereference outside
    // a's 64 bytes must fail, regardless of what it lands on.
    unsigned violations = 0;
    for (u64 off = 64; off < 4096; off += 16)
        violations += rt.load(a + off) == Status::kBoundsViolation;
    EXPECT_EQ(violations, (4096 - 64) / 16);
}

// --- PAC/AHC forging (SVII-C) ---

TEST_F(SecurityTest, AhcStrippingDetectedByAutm)
{
    const Addr p = rt.malloc(64);
    // Attacker zeroes the AHC to dodge bounds checking; on-load
    // authentication (autm) catches the now-unsigned pointer.
    const Addr stripped_ahc = p & ~(u64{3} << 62);
    EXPECT_EQ(rt.authenticate(stripped_ahc), Status::kAuthFailure);
}

TEST_F(SecurityTest, PacForgingMustGuessTheRightPac)
{
    // Forging bits without knowing the target's PAC fails bounds
    // checking with overwhelming probability: verify a wrong-PAC
    // pointer to a live neighbour object is rejected.
    const Addr a = rt.malloc(64);
    const Addr b = rt.malloc(64);
    const auto &layout = rt.paContext().layout();
    // Take b's raw address but a's PAC: only valid if they collide.
    const Addr forged =
        layout.compose(rt.strip(b), layout.pac(a), layout.ahc(b));
    if (layout.pac(a) != layout.pac(b)) {
        EXPECT_EQ(rt.load(forged), Status::kBoundsViolation);
    }
}

TEST_F(SecurityTest, BruteForceDetectionByPolicy)
{
    // SVII-E: ~45K attempts for a 50% guess with 16-bit PACs; under
    // the terminate policy the very first failed guess kills the
    // process, making brute force infeasible.
    RuntimeConfig config;
    config.policy = os::FaultPolicy::kTerminate;
    AosRuntime strict(config);
    const Addr p = strict.malloc(64);
    const Addr guess = p ^ (u64{1} << 50); // flip one PAC bit
    EXPECT_THROW(strict.load(guess), os::ProcessTerminated);
}

// --- Pointer integrity (SVII-B) ---

TEST_F(SecurityTest, ReturnAddressCorruptionCaughtByAutia)
{
    const auto &pa = rt.paContext();
    const Addr lr = 0x00400c80;
    const Addr signed_lr = pa.pacia(lr, 0x7ffff000);
    // ROP: attacker redirects the return address.
    const Addr rop = (signed_lr & ~u64{0xffff}) | 0xbeef;
    EXPECT_EQ(pa.autia(rop, 0x7ffff000, nullptr),
              pa::AuthResult::kFail);
}

// --- Documented limitations ---

TEST_F(SecurityTest, IntraObjectOverflowNotCaught)
{
    // SVII-F: AOS does not narrow bounds, so overflowing one struct
    // field into another inside the same object is NOT detected.
    // This asserts the documented limitation.
    const Addr obj = rt.malloc(64); // struct { char buf[16]; fp cb; }
    const Addr buf = obj;
    EXPECT_EQ(rt.store(buf + 24), Status::kOk)
        << "intra-object overflow is out of scope by design";
}

TEST_F(SecurityTest, EightGigabyteAliasRequiresMatchingPac)
{
    // SV-D / SVII-E: bounds keep 33 address bits, so two addresses
    // 8 GB apart alias in the comparator — but a false positive also
    // needs a PAC collision, which the check here rules out for the
    // common case.
    const Addr p = rt.malloc(64);
    const auto &layout = rt.paContext().layout();
    const Addr far = rt.strip(p) + (u64{1} << 34);
    const Addr far_signed =
        layout.compose(far, layout.pac(p), layout.ahc(p));
    // Same PAC forced here -> the alias *does* pass: the documented
    // false-positive window...
    EXPECT_EQ(rt.load(far_signed), Status::kOk);
    // ...but a pointer signed normally for that address would carry a
    // different PAC and fail (checked probabilistically elsewhere).
}

TEST_F(SecurityTest, ViolationLogCarriesForensics)
{
    const Addr p = rt.malloc(64);
    rt.load(p + 4096);
    ASSERT_EQ(rt.osModel().violations().size(), 1u);
    const auto &record = rt.osModel().violations().front();
    EXPECT_EQ(record.kind, mcu::FaultKind::kBoundsViolation);
    EXPECT_EQ(record.addr, p + 4096);
}

// --- Elision soundness (DESIGN.md "Static analysis layer") ---
//
// AosElidePass removes provably-redundant autm checks. These tests
// replay the attack classes of examples/attack_gallery.cc at the
// micro-op level: each attack, lowered through the full PA+AOS
// pipeline, must produce the *same* detections whether or not the
// stream was elided. An attack the elided stream misses would be a
// soundness bug in the pass.

class ElidedAttackTest : public ::testing::Test
{
  protected:
    static constexpr Addr kChunk = 0x20001000;

    ElidedAttackTest() : pa(pa::PointerLayout(16, 46)) {}

    static ir::MicroOp
    src(ir::OpKind kind, Addr addr = 0, Addr chunk = 0, u32 size = 0,
        bool loads_pointer = false)
    {
        ir::MicroOp op;
        op.kind = kind;
        op.addr = addr;
        op.chunkBase = chunk;
        op.size = size;
        op.loadsPointer = loads_pointer;
        return op;
    }

    /** malloc + repeated pointer loads: a source of redundant autms. */
    std::vector<ir::MicroOp>
    prelude(unsigned pointer_loads = 4) const
    {
        std::vector<ir::MicroOp> ops{
            src(ir::OpKind::kMallocMark, 0, kChunk, 64)};
        for (unsigned i = 0; i < pointer_loads; ++i)
            ops.push_back(src(ir::OpKind::kLoad, kChunk + 8, kChunk, 8,
                              /*loads_pointer=*/true));
        return ops;
    }

    /** Lower a source stream through the full PA+AOS pipeline. */
    std::vector<ir::MicroOp>
    lower(std::vector<ir::MicroOp> input)
    {
        ir::VectorStream source(std::move(input));
        compiler::AosOptPass opt(&source);
        compiler::AosBackendPass backend(&opt, &pa);
        compiler::PaPass pa_pass(&backend, compiler::PaMode::kPaAos);
        std::vector<ir::MicroOp> out;
        ir::MicroOp next;
        while (pa_pass.next(next))
            out.push_back(next);
        return out;
    }

    std::vector<ir::MicroOp>
    elide(const std::vector<ir::MicroOp> &ops)
    {
        ir::VectorStream source(ops);
        compiler::AosElidePass pass(&source, pa.layout());
        std::vector<ir::MicroOp> out;
        ir::MicroOp next;
        while (pass.next(next))
            out.push_back(next);
        return out;
    }

    staticcheck::ExecStats
    execute(const std::vector<ir::MicroOp> &ops)
    {
        staticcheck::StreamExecutor exec(pa.layout());
        return exec.run(ops);
    }

    /** The attack is detected, and elision does not change that. */
    void
    expectParity(const std::vector<ir::MicroOp> &full)
    {
        const auto elided = elide(full);
        const auto full_stats = execute(full);
        const auto elided_stats = execute(elided);
        EXPECT_GT(full_stats.detections(), 0u)
            << "attack not detected even without elision";
        EXPECT_TRUE(elided_stats.sameDetections(full_stats))
            << "elision changed the detection profile: full("
            << full_stats.authFailures << "," << full_stats.boundsViolations
            << "," << full_stats.clearFailures << ") elided("
            << elided_stats.authFailures << ","
            << elided_stats.boundsViolations << ","
            << elided_stats.clearFailures << ")";
        EXPECT_LE(elided_stats.autms, full_stats.autms);
    }

    pa::PaContext pa;
};

TEST_F(ElidedAttackTest, HeapOverflowStillDetected)
{
    auto source = prelude();
    source.push_back(src(ir::OpKind::kLoad, kChunk + 4096, kChunk, 8));
    expectParity(lower(std::move(source)));
}

TEST_F(ElidedAttackTest, UseAfterFreeStillDetected)
{
    auto source = prelude();
    source.push_back(src(ir::OpKind::kFreeMark, 0, kChunk));
    source.push_back(src(ir::OpKind::kLoad, kChunk + 16, kChunk, 8));
    expectParity(lower(std::move(source)));
}

TEST_F(ElidedAttackTest, DoubleFreeStillDetected)
{
    auto source = prelude();
    source.push_back(src(ir::OpKind::kFreeMark, 0, kChunk));
    source.push_back(src(ir::OpKind::kFreeMark, 0, kChunk));
    expectParity(lower(std::move(source)));
}

TEST_F(ElidedAttackTest, HouseOfSpiritInvalidFreeStillDetected)
{
    // free() of a crafted chunk the program never allocated: the
    // backend has no signed pointer for it, so the bndclr operand is
    // unsigned and the clear fails.
    auto source = prelude();
    source.push_back(src(ir::OpKind::kFreeMark, 0, 0x00601000));
    expectParity(lower(std::move(source)));
}

TEST_F(ElidedAttackTest, AhcStrippingStillDetected)
{
    // Post-pipeline mutation, applied before elision (the attacker
    // corrupts the pointer value, not the elided program): the AHC of
    // the last pointer load and its autm is zeroed. The now-unsigned
    // autm operand is exactly what elision must never touch.
    auto full = lower(prelude());
    const u64 ahc_mask = ~(u64{3} << 62);
    bool stripped = false;
    for (size_t i = full.size(); i-- > 0;) {
        if (full[i].kind == ir::OpKind::kAutm) {
            full[i].addr &= ahc_mask;
            ASSERT_GT(i, 0u);
            full[i - 1].addr &= ahc_mask; // the load it authenticates
            stripped = true;
            break;
        }
    }
    ASSERT_TRUE(stripped);
    const auto elided = elide(full);
    const auto full_stats = execute(full);
    const auto elided_stats = execute(elided);
    EXPECT_GE(full_stats.authFailures, 1u);
    EXPECT_TRUE(elided_stats.sameDetections(full_stats));
}

TEST_F(ElidedAttackTest, PacForgeryStillDetected)
{
    // Flip a PAC bit on the last signed load (a forged pointer): the
    // bounds check fails under the wrong PAC, elided or not.
    auto full = lower(prelude());
    bool forged = false;
    for (size_t i = full.size(); i-- > 0;) {
        if (full[i].kind == ir::OpKind::kLoad &&
            pa.layout().signed_(full[i].addr)) {
            full[i].addr ^= u64{1} << 50;
            forged = true;
            break;
        }
    }
    ASSERT_TRUE(forged);
    expectParity(full);
}

TEST_F(ElidedAttackTest, ElisionActuallyElidesOnTheseStreams)
{
    // Guard against the parity tests passing vacuously: the benign
    // prelude must produce redundant autms that the pass removes.
    const auto full = lower(prelude(8));
    ir::VectorStream source(full);
    compiler::AosElidePass pass(&source, pa.layout());
    ir::MicroOp next;
    while (pass.next(next)) {
    }
    EXPECT_GT(pass.stats().autmElided, 0u);
    EXPECT_LT(pass.stats().autmElided, pass.stats().autmSeen);
}

} // namespace
} // namespace aos::core
