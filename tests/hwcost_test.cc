/**
 * @file
 * Tests for the CACTI-style SRAM cost model (Table I).
 */

#include <gtest/gtest.h>

#include "hwcost/sram_model.hh"

namespace aos::hwcost {
namespace {

TEST(SramModel, TableOneRowsPresent)
{
    const auto &rows = tableOneRows();
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].spec.name, "MCQ");
    EXPECT_EQ(rows[1].spec.name, "BWB");
    EXPECT_EQ(rows[2].spec.name, "L1-B Cache");
    EXPECT_EQ(rows[3].spec.name, "L1-D Cache");
}

TEST(SramModel, PublishedValuesPreserved)
{
    const auto &rows = tableOneRows();
    EXPECT_DOUBLE_EQ(rows[0].paper.areaMm2, 0.0096);
    EXPECT_DOUBLE_EQ(rows[1].paper.leakagePowerMw, 1.10712);
    EXPECT_DOUBLE_EQ(rows[2].paper.accessTimeNs, 0.2984);
    EXPECT_DOUBLE_EQ(rows[3].paper.dynamicEnergyPj, 0.0436);
}

TEST(SramModel, MonotoneInSize)
{
    const SramCost small = estimate({"a", 1024});
    const SramCost large = estimate({"b", 64 * 1024});
    EXPECT_LT(small.areaMm2, large.areaMm2);
    EXPECT_LT(small.accessTimeNs, large.accessTimeNs);
    EXPECT_LT(small.dynamicEnergyPj, large.dynamicEnergyPj);
    EXPECT_LT(small.leakagePowerMw, large.leakagePowerMw);
}

TEST(SramModel, SublinearAreaScaling)
{
    // Doubling capacity should less-than-double area (periphery
    // amortization), as in CACTI.
    const SramCost a = estimate({"a", 32 * 1024});
    const SramCost b = estimate({"b", 64 * 1024});
    EXPECT_LT(b.areaMm2 / a.areaMm2, 2.0);
    EXPECT_GT(b.areaMm2 / a.areaMm2, 1.5);
}

class CalibrationTest : public ::testing::TestWithParam<TableOneRow>
{
};

TEST_P(CalibrationTest, EstimateWithinModelTolerance)
{
    // The analytical fit should land within ~35% of every published
    // CACTI point (it is a 2-coefficient fit per metric across a
    // 170x capacity range).
    const TableOneRow &row = GetParam();
    const SramCost est = estimate(row.spec);
    EXPECT_NEAR(est.areaMm2, row.paper.areaMm2,
                row.paper.areaMm2 * 0.35)
        << row.spec.name;
    EXPECT_NEAR(est.accessTimeNs, row.paper.accessTimeNs,
                row.paper.accessTimeNs * 0.35)
        << row.spec.name;
    EXPECT_NEAR(est.dynamicEnergyPj, row.paper.dynamicEnergyPj,
                row.paper.dynamicEnergyPj * 0.45)
        << row.spec.name;
    EXPECT_NEAR(est.leakagePowerMw, row.paper.leakagePowerMw,
                row.paper.leakagePowerMw * 0.45)
        << row.spec.name;
}

INSTANTIATE_TEST_SUITE_P(
    TableOne, CalibrationTest, ::testing::ValuesIn(tableOneRows()),
    [](const ::testing::TestParamInfo<TableOneRow> &info) {
        std::string name = info.param.spec.name;
        for (char &c : name) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(SramModel, AosStructuresAreSmallVsL1D)
{
    // The paper's takeaway: the AOS additions are modest next to an
    // existing L1-D.
    const SramCost mcq = estimate({"MCQ", 1331});
    const SramCost bwb = estimate({"BWB", 384});
    const SramCost l1d = estimate({"L1-D", 65536});
    EXPECT_LT(mcq.areaMm2 + bwb.areaMm2, l1d.areaMm2 * 0.1);
    EXPECT_LT(mcq.leakagePowerMw + bwb.leakagePowerMw,
              l1d.leakagePowerMw * 0.1);
}

} // namespace
} // namespace aos::hwcost
