/**
 * @file
 * Tests for gradual HBT resizing and the Fig. 10 access routing.
 */

#include <gtest/gtest.h>

#include <new>

#include "bounds/compression.hh"
#include "bounds/hashed_bounds_table.hh"
#include "common/random.hh"

namespace aos::bounds {
namespace {

constexpr Addr kBase = 0x3000'0000'0000ull;

Compressed
rec(unsigned i)
{
    return compress(0x20000000 + u64{i} * 0x100, 64);
}

TEST(HbtResize, DoublesAssociativity)
{
    HashedBoundsTable hbt(kBase, 8, 1);
    EXPECT_EQ(hbt.ways(), 1u);
    hbt.beginResize();
    EXPECT_TRUE(hbt.resizing());
    EXPECT_EQ(hbt.ways(), 2u);
    hbt.finishResize();
    EXPECT_FALSE(hbt.resizing());
    EXPECT_EQ(hbt.ways(), 2u);
    EXPECT_EQ(hbt.primaryAssoc(), 2u);
    EXPECT_EQ(hbt.stats().resizes, 1u);
}

TEST(HbtResize, OverflowInsertSucceedsDuringResize)
{
    HashedBoundsTable hbt(kBase, 8, 1);
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(hbt.insert(7, rec(i)).has_value());
    ASSERT_FALSE(hbt.insert(7, rec(8)).has_value());
    hbt.beginResize();
    // Way 1 is out-of-way for the old table, so the new record lands
    // in the new table even before any row migrates (Fig. 10 case 1).
    const auto way = hbt.insert(7, rec(8));
    ASSERT_TRUE(way.has_value());
    EXPECT_EQ(*way, 1u);
    EXPECT_TRUE(hbt.check(7, 0x20000800 + 10, 0, nullptr).has_value());
}

TEST(HbtResize, RoutingDuringMigration)
{
    HashedBoundsTable hbt(kBase, 8, 1);
    // Populate several rows.
    for (u64 pac = 0; pac < 16; ++pac)
        ASSERT_TRUE(hbt.insert(pac, rec(static_cast<unsigned>(pac)))
                        .has_value());
    hbt.beginResize();
    // Migrate the first 8 rows only.
    for (int i = 0; i < 8; ++i)
        ASSERT_FALSE(hbt.migrateRow());
    // Both migrated (pac < RowPtr) and live (pac >= RowPtr) rows must
    // still check correctly mid-migration.
    for (u64 pac = 0; pac < 16; ++pac) {
        EXPECT_TRUE(hbt.check(pac, 0x20000000 + pac * 0x100 + 8, 0,
                              nullptr)
                        .has_value())
            << "pac " << pac;
    }
    // Migrated rows resolve to the new table's addresses, live rows to
    // the old table's.
    EXPECT_NE(hbt.wayAddr(0, 0), kBase);
    EXPECT_EQ(hbt.wayAddr(8, 0), kBase + (u64{8} << 6));
    hbt.finishResize();
    for (u64 pac = 0; pac < 16; ++pac) {
        EXPECT_TRUE(hbt.check(pac, 0x20000000 + pac * 0x100 + 8, 0,
                              nullptr)
                        .has_value());
    }
}

TEST(HbtResize, ClearWorksAcrossMigrationBoundary)
{
    HashedBoundsTable hbt(kBase, 4, 1);
    for (u64 pac = 0; pac < 8; ++pac)
        hbt.insert(pac, rec(static_cast<unsigned>(pac)));
    hbt.beginResize();
    for (int i = 0; i < 4; ++i)
        hbt.migrateRow();
    // Clear one migrated, one unmigrated.
    EXPECT_TRUE(hbt.clear(1, 0x20000100).has_value());
    EXPECT_TRUE(hbt.clear(6, 0x20000600).has_value());
    hbt.finishResize();
    EXPECT_FALSE(hbt.check(1, 0x20000100, 0, nullptr).has_value());
    EXPECT_FALSE(hbt.check(6, 0x20000600, 0, nullptr).has_value());
}

TEST(HbtResize, RepeatedResizes)
{
    HashedBoundsTable hbt(kBase, 4, 1);
    for (unsigned round = 0; round < 3; ++round) {
        hbt.beginResize();
        hbt.finishResize();
    }
    EXPECT_EQ(hbt.ways(), 8u);
    EXPECT_EQ(hbt.stats().resizes, 3u);
    // Table contents must still be writable and readable.
    ASSERT_TRUE(hbt.insert(3, rec(1)).has_value());
    EXPECT_TRUE(hbt.check(3, 0x20000100 + 8, 0, nullptr).has_value());
}

TEST(HbtResize, SuccessiveTablesGetDisjointAddressRanges)
{
    HashedBoundsTable hbt(kBase, 4, 1);
    const Addr before = hbt.wayAddr(5, 0);
    hbt.beginResize();
    hbt.finishResize();
    const Addr after = hbt.wayAddr(5, 0);
    EXPECT_NE(before, after);
    hbt.beginResize();
    hbt.finishResize();
    EXPECT_NE(hbt.wayAddr(5, 0), after);
}

TEST(HbtResize, StressWithRandomChurnDuringMigration)
{
    // Property: no record is ever lost or duplicated across a
    // migration with interleaved inserts/clears/checks.
    HashedBoundsTable hbt(kBase, 6, 1);
    Rng rng(5);
    std::vector<std::pair<u64, Addr>> live; // (pac, base)
    u64 next_base = 0x20000000;

    auto insert_one = [&]() {
        const u64 pac = rng.below(64);
        const Addr base = next_base;
        next_base += 0x100;
        if (hbt.insert(pac, compress(base, 64)))
            live.emplace_back(pac, base);
    };

    for (int i = 0; i < 200; ++i)
        insert_one();
    hbt.beginResize();

    for (int step = 0; step < 2000; ++step) {
        if (hbt.resizing() && rng.chance(0.05))
            hbt.migrateRow();
        const double roll = rng.uniform();
        if (roll < 0.4) {
            insert_one();
        } else if (roll < 0.6 && !live.empty()) {
            const u64 idx = rng.below(live.size());
            ASSERT_TRUE(
                hbt.clear(live[idx].first, live[idx].second).has_value());
            live[idx] = live.back();
            live.pop_back();
        } else if (!live.empty()) {
            const u64 idx = rng.below(live.size());
            ASSERT_TRUE(hbt.check(live[idx].first, live[idx].second + 32,
                                  0, nullptr)
                            .has_value())
                << "live record lost at step " << step;
        }
    }
    hbt.finishResize();
    for (const auto &[pac, base] : live) {
        ASSERT_TRUE(hbt.check(pac, base + 8, 0, nullptr).has_value());
        ASSERT_TRUE(hbt.clear(pac, base).has_value());
    }
    EXPECT_EQ(hbt.stats().occupied, 0u);
}

TEST(HbtResize, AllocationFailureLeavesTableIntact)
{
    // Strong exception guarantee: when the OS cannot allocate the
    // doubled table, the old table is untouched and fully usable.
    HashedBoundsTable hbt(kBase, 8, 1);
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(hbt.insert(7, rec(i)).has_value());

    unsigned attempts = 0;
    hbt.onResizeAlloc = [&](u64 slots) {
        ++attempts;
        EXPECT_GT(slots, 0u);
        throw std::bad_alloc();
    };
    EXPECT_THROW(hbt.beginResize(), std::bad_alloc);
    EXPECT_EQ(attempts, 1u);

    EXPECT_FALSE(hbt.resizing());
    EXPECT_EQ(hbt.ways(), 1u);
    EXPECT_EQ(hbt.stats().resizes, 0u);
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(hbt.check(7, 0x20000000 + u64(i) * 0x100 + 8, 0,
                              nullptr)
                        .has_value());
    }
    // The full row still fails cleanly instead of corrupting anything.
    EXPECT_FALSE(hbt.insert(7, rec(8)).has_value());

    // Memory pressure clears: the retried resize succeeds.
    hbt.onResizeAlloc = nullptr;
    hbt.beginResize();
    EXPECT_TRUE(hbt.resizing());
    EXPECT_TRUE(hbt.insert(7, rec(8)).has_value());
    hbt.finishResize();
    EXPECT_EQ(hbt.stats().occupied, 9u);
}

TEST(HbtResize, BeginResizeWhileResizingIsNoOp)
{
    HashedBoundsTable hbt(kBase, 8, 1);
    hbt.beginResize();
    EXPECT_EQ(hbt.ways(), 2u);
    // A second request while migration is in flight must not restart
    // or corrupt the resize (the OS may race the table manager).
    hbt.beginResize();
    EXPECT_EQ(hbt.ways(), 2u);
    EXPECT_EQ(hbt.stats().resizes, 1u);
}

} // namespace
} // namespace aos::bounds
