/**
 * @file
 * The trip-wire coverage gap (paper SI / SX), demonstrated: REST-style
 * redzones catch adjacent overflows but structurally miss non-adjacent
 * violations — the same probes AOS catches (security_test.cc).
 */

#include <gtest/gtest.h>

#include "baselines/redzone_runtime.hh"
#include "core/aos_runtime.hh"

namespace aos::baselines {
namespace {

TEST(Redzone, AllocationsGetRedzonesOnBothSides)
{
    RedzoneRuntime rz;
    const Addr p = rz.malloc(64);
    ASSERT_NE(p, 0u);
    EXPECT_EQ(rz.access(p), RedzoneStatus::kOk);
    EXPECT_EQ(rz.access(p + 63), RedzoneStatus::kOk);
    EXPECT_EQ(rz.access(p - 1), RedzoneStatus::kTripwire);
    EXPECT_EQ(rz.access(p + 64), RedzoneStatus::kTripwire);
    EXPECT_EQ(rz.access(p + 64 + 63), RedzoneStatus::kTripwire);
}

TEST(Redzone, AdjacentOverflowCaught)
{
    RedzoneRuntime rz;
    const Addr buf = rz.malloc(64);
    // A byte-by-byte overrun trips on the very first out-of-bounds
    // byte — the case trip-wires are good at.
    EXPECT_EQ(rz.access(buf + 64), RedzoneStatus::kTripwire);
    EXPECT_EQ(rz.stats().tripwires, 1u);
}

TEST(Redzone, NonAdjacentViolationMissed)
{
    // THE structural gap (SI): an access that jumps over the redzone
    // lands in plain memory and is not detected.
    RedzoneRuntime rz;
    const Addr buf = rz.malloc(64);
    const Addr victim = rz.malloc(64);
    // buf + large offset lands inside the *other* object's payload.
    const Addr jump = victim + 8;
    ASSERT_GT(jump, buf);
    EXPECT_EQ(rz.access(jump), RedzoneStatus::kOk)
        << "trip-wires cannot see this";
}

TEST(Redzone, SameProbeCaughtByAos)
{
    // The control: AOS detects the identical non-adjacent pattern
    // because checking is bounds-based, not location-based.
    core::AosRuntime rt;
    const Addr buf = rt.malloc(64);
    rt.malloc(64);
    // Far out-of-bounds through buf's pointer.
    EXPECT_EQ(rt.load(buf + 160), core::Status::kBoundsViolation);
}

TEST(Redzone, QuarantineGivesTemporalSafetyTemporarily)
{
    RedzoneRuntime rz(64, /*quarantine_depth=*/4);
    const Addr p = rz.malloc(64);
    ASSERT_EQ(rz.free(p), RedzoneStatus::kOk);
    // While quarantined, the freed object is blacklisted: UAF caught.
    EXPECT_EQ(rz.access(p), RedzoneStatus::kTripwire);
    EXPECT_EQ(rz.stats().quarantined, 1u);
}

TEST(Redzone, QuarantineEvictionReopensTheWindow)
{
    // Once churned out of the quarantine, the stale pointer's memory
    // is reusable and the UAF is silent — AOS needs no such pool
    // because freed bounds simply stop existing (SIV-C).
    RedzoneRuntime rz(64, /*quarantine_depth=*/1);
    const Addr p = rz.malloc(64);
    rz.free(p);
    // One more free pushes p out of the 1-deep quarantine...
    rz.free(rz.malloc(512));
    // ...so p's block is back on the free list and the next same-size
    // allocation lands exactly there:
    const Addr victim = rz.malloc(64);
    ASSERT_EQ(victim, p);
    // The stale pointer now reads the new owner's data with no
    // detection: the reopened UAF window.
    EXPECT_EQ(rz.access(p), RedzoneStatus::kOk)
        << "UAF detection lapsed after quarantine eviction";
}

TEST(Redzone, AosTemporalSafetyDoesNotLapse)
{
    core::AosRuntime rt;
    const Addr p = rt.malloc(64);
    rt.free(p);
    // Arbitrary later churn (different size class: no reuse of p).
    for (int i = 0; i < 64; ++i)
        rt.free(rt.malloc(512));
    EXPECT_EQ(rt.load(p), core::Status::kBoundsViolation);
}

TEST(Redzone, InvalidFreeRejected)
{
    RedzoneRuntime rz;
    rz.malloc(64);
    EXPECT_EQ(rz.free(0x1234560), RedzoneStatus::kInvalidFree);
}

TEST(Redzone, MemoryOverheadTracked)
{
    RedzoneRuntime rz(64, 8);
    for (int i = 0; i < 10; ++i)
        rz.malloc(32);
    // Two 64-byte zones per 32-byte object: 4x blacklist overhead.
    EXPECT_EQ(rz.stats().redzoneBytes, 10u * 128);
}

TEST(RedzoneDeath, ZeroRedzoneRejected)
{
    EXPECT_DEATH(RedzoneRuntime(0, 8), "");
}

} // namespace
} // namespace aos::baselines
