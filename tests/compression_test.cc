/**
 * @file
 * Unit and property tests for the Fig. 9 bounds-compression codec.
 */

#include <gtest/gtest.h>

#include "bounds/compression.hh"
#include "common/bitfield.hh"
#include "common/random.hh"

namespace aos::bounds {
namespace {

TEST(Compression, FieldLayout)
{
    // base bits [32:4] -> record [28:0]; size -> record [60:29].
    const Compressed rec = compress(0x20000010, 0x100);
    EXPECT_EQ(bits(rec, 28, 0), bits(u64{0x20000010}, 32, 4));
    EXPECT_EQ(bits(rec, 60, 29), 0x100u);
    EXPECT_EQ(bits(rec, 63, 61), 0u) << "reserved bits must stay zero";
}

TEST(Compression, DecompressRecoversBounds)
{
    const Decompressed d = decompress(compress(0x20000010, 0x100));
    EXPECT_EQ(d.lower, 0x20000010u);
    EXPECT_EQ(d.size, 0x100u);
    EXPECT_EQ(d.upper, 0x20000110u);
}

TEST(Compression, EmptySentinelNeverMatches)
{
    EXPECT_FALSE(inBounds(kEmpty, 0));
    EXPECT_FALSE(inBounds(kEmpty, 0x20000000));
    EXPECT_FALSE(matchesBase(kEmpty, 0));
}

TEST(Compression, LiveRecordsNeverEncodeToEmpty)
{
    // malloc never returns address 0, so no real record is the
    // sentinel.
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const Addr base = (0x10000 + rng.below(u64{1} << 32)) & ~u64{15};
        const u64 size = 1 + rng.below(1u << 20);
        EXPECT_NE(compress(base, size), kEmpty);
    }
}

TEST(Compression, InBoundsEdges)
{
    const Compressed rec = compress(0x20000100, 64);
    EXPECT_FALSE(inBounds(rec, 0x200000ff)); // one below
    EXPECT_TRUE(inBounds(rec, 0x20000100));  // base
    EXPECT_TRUE(inBounds(rec, 0x2000013f));  // last byte
    EXPECT_FALSE(inBounds(rec, 0x20000140)); // one past
}

TEST(Compression, MatchesBaseOnlyAtBase)
{
    const Compressed rec = compress(0x20000100, 64);
    EXPECT_TRUE(matchesBase(rec, 0x20000100));
    EXPECT_FALSE(matchesBase(rec, 0x20000110));
    EXPECT_FALSE(matchesBase(rec, 0x200000f0));
}

TEST(Compression, CarryCompensationAcrossBit33)
{
    // Object starting just below 2^33 and extending past it: the C bit
    // compensates for the carry lost in the 33-bit truncated address.
    const Addr base = (u64{1} << 33) - 64; // bit 32 set
    const Compressed rec = compress(base, 128);
    EXPECT_TRUE(inBounds(rec, base));
    EXPECT_TRUE(inBounds(rec, base + 64));  // crossed 2^33: Addr[32]=0
    EXPECT_TRUE(inBounds(rec, base + 127));
    EXPECT_FALSE(inBounds(rec, base + 128));
    EXPECT_FALSE(inBounds(rec, base - 1));
}

TEST(Compression, AliasesEightGigabytesApart)
{
    // Only the low 33 address bits are kept, so addresses 8 GB apart
    // alias — the documented false-positive source of SVII-E (they
    // must also share a PAC to matter).
    const Compressed rec = compress(0x20000000, 64);
    EXPECT_TRUE(inBounds(rec, 0x20000000 + (u64{1} << 34)));
}

TEST(CompressionDeath, RejectsMisalignedBase)
{
    EXPECT_DEATH(compress(0x20000008, 64), "aligned");
}

TEST(CompressionDeath, RejectsOversizedObject)
{
    EXPECT_DEATH(compress(0x20000000, u64{1} << 33), "32-bit");
}

class CompressionRoundTrip : public ::testing::TestWithParam<u64>
{
};

TEST_P(CompressionRoundTrip, EveryInteriorByteChecks)
{
    const u64 size = GetParam();
    Rng rng(size);
    for (int trial = 0; trial < 50; ++trial) {
        const Addr base =
            (0x20000000 + rng.below(u64{1} << 30)) & ~u64{15};
        const Compressed rec = compress(base, size);
        const Decompressed d = decompress(rec);
        EXPECT_EQ(d.size, size);
        // Boundary probes.
        EXPECT_TRUE(inBounds(rec, base));
        EXPECT_TRUE(inBounds(rec, base + size - 1));
        EXPECT_FALSE(inBounds(rec, base + size));
        EXPECT_FALSE(inBounds(rec, base - 16));
        // Random interior probes.
        for (int i = 0; i < 8; ++i)
            EXPECT_TRUE(inBounds(rec, base + rng.below(size)));
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompressionRoundTrip,
                         ::testing::Values(u64{1}, u64{16}, u64{100},
                                           u64{4096}, u64{1} << 20,
                                           (u64{1} << 32) - 1));

} // namespace
} // namespace aos::bounds
