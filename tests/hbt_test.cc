/**
 * @file
 * Unit tests for the hashed bounds table (paper SV-B).
 */

#include <gtest/gtest.h>

#include "bounds/compression.hh"
#include "bounds/hashed_bounds_table.hh"
#include "common/random.hh"

namespace aos::bounds {
namespace {

constexpr Addr kBase = 0x3000'0000'0000ull;

TEST(Hbt, AddressingFollowsEq1And2)
{
    // RowOffset = PAC << (log2(assoc)+6); BndAddr = base + RowOffset +
    // (way << 6).
    HashedBoundsTable hbt(kBase, 16, 4);
    EXPECT_EQ(hbt.wayAddr(0, 0), kBase);
    EXPECT_EQ(hbt.wayAddr(0, 3), kBase + 3 * 64);
    EXPECT_EQ(hbt.wayAddr(5, 0), kBase + (u64{5} << (2 + 6)));
    EXPECT_EQ(hbt.wayAddr(5, 2), kBase + (u64{5} << 8) + 128);
    // Way addresses are always 64-byte aligned (single cache line).
    Rng rng(1);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(hbt.wayAddr(rng.below(1 << 16), rng.below(4)) & 63, 0u);
}

TEST(Hbt, InitialTableMatchesTableIV)
{
    // 16-bit PAC, 1 way: 64K rows x 64 B = 4 MB.
    HashedBoundsTable hbt(kBase, 16, 1);
    EXPECT_EQ(hbt.rows(), u64{64} * 1024);
    EXPECT_EQ(hbt.ways(), 1u);
    const u64 bytes = hbt.rows() * hbt.ways() * 64;
    EXPECT_EQ(bytes, u64{4} << 20);
}

TEST(Hbt, InsertThenCheckFinds)
{
    HashedBoundsTable hbt(kBase, 8, 1);
    const Addr base = 0x20000100;
    ASSERT_TRUE(hbt.insert(42, compress(base, 64)).has_value());
    unsigned touched = 0;
    const auto way = hbt.check(42, base + 10, 0, &touched);
    ASSERT_TRUE(way.has_value());
    EXPECT_EQ(*way, 0u);
    EXPECT_EQ(touched, 1u);
}

TEST(Hbt, CheckWrongPacMisses)
{
    HashedBoundsTable hbt(kBase, 8, 1);
    hbt.insert(42, compress(0x20000100, 64));
    EXPECT_FALSE(hbt.check(43, 0x20000110, 0, nullptr).has_value());
}

TEST(Hbt, CheckOutOfBoundsMisses)
{
    HashedBoundsTable hbt(kBase, 8, 1);
    hbt.insert(42, compress(0x20000100, 64));
    EXPECT_FALSE(hbt.check(42, 0x20000140, 0, nullptr).has_value());
    EXPECT_FALSE(hbt.check(42, 0x200000f0, 0, nullptr).has_value());
}

TEST(Hbt, EightRecordsPerWayThenOverflow)
{
    HashedBoundsTable hbt(kBase, 8, 1);
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(hbt.insert(7, compress(0x20000000 + 0x100 * i, 64))
                        .has_value())
            << "slot " << i;
    }
    // Ninth record in the same row: insertion failure -> AOS exception.
    EXPECT_FALSE(hbt.insert(7, compress(0x20010000, 64)).has_value());
    EXPECT_EQ(hbt.stats().insertFailures, 1u);
    EXPECT_EQ(hbt.rowOccupancy(7), 8u);
}

TEST(Hbt, WideRecordsHalveCapacity)
{
    // The no-compression ablation: 16-byte records, 4 per line.
    HashedBoundsTable hbt(kBase, 8, 1, kWideSlotsPerWay);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(hbt.insert(7, compress(0x20000000 + 0x100 * i, 64))
                        .has_value());
    EXPECT_FALSE(hbt.insert(7, compress(0x20010000, 64)).has_value());
}

TEST(Hbt, ClearRemovesExactBase)
{
    HashedBoundsTable hbt(kBase, 8, 1);
    hbt.insert(42, compress(0x20000100, 64));
    hbt.insert(42, compress(0x20000200, 64));
    ASSERT_TRUE(hbt.clear(42, 0x20000100).has_value());
    // The cleared object no longer checks; its neighbour still does.
    EXPECT_FALSE(hbt.check(42, 0x20000100, 0, nullptr).has_value());
    EXPECT_TRUE(hbt.check(42, 0x20000200, 0, nullptr).has_value());
    EXPECT_EQ(hbt.rowOccupancy(42), 1u);
}

TEST(Hbt, ClearOfAbsentBoundsFails)
{
    // The double-free / invalid-free detection path.
    HashedBoundsTable hbt(kBase, 8, 1);
    hbt.insert(42, compress(0x20000100, 64));
    EXPECT_FALSE(hbt.clear(42, 0x20000200).has_value());
    ASSERT_TRUE(hbt.clear(42, 0x20000100).has_value());
    EXPECT_FALSE(hbt.clear(42, 0x20000100).has_value()) << "double free";
    EXPECT_EQ(hbt.stats().clearFailures, 2u);
}

TEST(Hbt, ClearedSlotIsReused)
{
    HashedBoundsTable hbt(kBase, 8, 1);
    for (int i = 0; i < 8; ++i)
        hbt.insert(7, compress(0x20000000 + 0x100 * i, 64));
    hbt.clear(7, 0x20000300);
    // The freed slot accommodates a new object with the same PAC.
    EXPECT_TRUE(hbt.insert(7, compress(0x20020000, 32)).has_value());
    EXPECT_EQ(hbt.rowOccupancy(7), 8u);
}

TEST(Hbt, CheckStartsAtHintedWay)
{
    HashedBoundsTable hbt(kBase, 8, 2);
    // Fill way 0 of row 3 with decoys; target lands in way 1.
    for (int i = 0; i < 8; ++i)
        hbt.insert(3, compress(0x30000000 + 0x100 * i, 64));
    hbt.insert(3, compress(0x20000100, 64));
    unsigned touched = 0;
    // Without a hint: two way accesses.
    auto way = hbt.check(3, 0x20000110, 0, &touched);
    ASSERT_TRUE(way.has_value());
    EXPECT_EQ(*way, 1u);
    EXPECT_EQ(touched, 2u);
    // With the (BWB-provided) hint: one access.
    way = hbt.check(3, 0x20000110, 1, &touched);
    ASSERT_TRUE(way.has_value());
    EXPECT_EQ(touched, 1u);
}

TEST(Hbt, PacRowsAreIndependent)
{
    HashedBoundsTable hbt(kBase, 8, 1);
    Rng rng(3);
    for (u64 pac = 0; pac < 256; ++pac)
        hbt.insert(pac, compress(0x20000000 + pac * 0x1000, 256));
    for (u64 pac = 0; pac < 256; ++pac) {
        EXPECT_TRUE(hbt.check(pac, 0x20000000 + pac * 0x1000 + 128, 0,
                              nullptr)
                        .has_value());
    }
    EXPECT_EQ(hbt.stats().occupied, 256u);
}

TEST(Hbt, OccupancyStatsTrackInsertsAndClears)
{
    HashedBoundsTable hbt(kBase, 8, 1);
    hbt.insert(1, compress(0x20000100, 64));
    hbt.insert(2, compress(0x20000200, 64));
    EXPECT_EQ(hbt.stats().occupied, 2u);
    EXPECT_EQ(hbt.stats().maxOccupied, 2u);
    hbt.clear(1, 0x20000100);
    EXPECT_EQ(hbt.stats().occupied, 1u);
    EXPECT_EQ(hbt.stats().maxOccupied, 2u);
}

} // namespace
} // namespace aos::bounds
