/**
 * @file
 * Tests for the socket + framing layer (common/netio.hh): strict
 * address parsing, frame round trips, the incremental FrameDecoder
 * (byte-at-a-time reassembly, multiple frames per feed) and its
 * corruption discipline — truncated frames wait, while a bad magic,
 * an oversized declared length or a flipped CRC bit poisons the
 * stream with a diagnostic and never yields a frame. Plus a unix
 * socket loopback exercising listen/accept/connect/sendAll/recvSome
 * and pollReadable, and the chaos instrumentation (DESIGN.md §13):
 * benign faults (fragmented transfers, bounded EINTR storms) must
 * preserve the byte stream, resets must fail cleanly with
 * ECONNRESET, and an injected wire-image bit flip must poison the
 * decoder rather than ever delivering a wrong frame.
 */

#include <cerrno>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/chaosio.hh"
#include "common/netio.hh"

namespace aos::netio {
namespace {

// --- address parsing -------------------------------------------------

TEST(NetioAddress, ParsesUnixAndTcp)
{
    Address a;
    std::string error;
    ASSERT_TRUE(parseAddress("unix:/tmp/x.sock", a, error)) << error;
    EXPECT_EQ(a.kind, Address::Kind::kUnix);
    EXPECT_EQ(a.path, "/tmp/x.sock");
    EXPECT_EQ(a.str(), "unix:/tmp/x.sock");

    ASSERT_TRUE(parseAddress("tcp:localhost:9000", a, error)) << error;
    EXPECT_EQ(a.kind, Address::Kind::kTcp);
    EXPECT_EQ(a.host, "localhost");
    EXPECT_EQ(a.port, 9000);
    EXPECT_EQ(a.str(), "tcp:localhost:9000");
}

TEST(NetioAddress, RejectsMalformedSpellings)
{
    Address a;
    std::string error;
    for (const char *bad :
         {"", "unix:", "tcp:", "tcp:host", "tcp:host:", "tcp::123",
          "tcp:host:0", "tcp:host:65536", "tcp:host:12x4",
          "tcp:host:-1", "http:host:80", "/tmp/bare-path"}) {
        error.clear();
        EXPECT_FALSE(parseAddress(bad, a, error)) << bad;
        EXPECT_FALSE(error.empty()) << bad; // Always says why.
    }
}

// --- frame codec -----------------------------------------------------

TEST(NetioFrame, RoundTripsThroughDecoder)
{
    const std::string payload("the payload\0with a nul", 22);
    const std::string frame = encodeFrame(7, payload);
    ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());

    FrameDecoder decoder;
    decoder.feed(frame.data(), frame.size());
    u32 type = 0;
    std::string out;
    ASSERT_TRUE(decoder.next(type, out));
    EXPECT_EQ(type, 7u);
    EXPECT_EQ(out, payload);
    EXPECT_FALSE(decoder.next(type, out));
    EXPECT_FALSE(decoder.corrupt());
    EXPECT_EQ(decoder.pendingBytes(), 0u);
}

TEST(NetioFrame, ReassemblesByteAtATime)
{
    const std::string frame =
        encodeFrame(1, "alpha") + encodeFrame(2, "") + encodeFrame(3, "c");
    FrameDecoder decoder;
    std::vector<std::pair<u32, std::string>> got;
    for (const char byte : frame) {
        decoder.feed(&byte, 1);
        u32 type = 0;
        std::string payload;
        while (decoder.next(type, payload))
            got.emplace_back(type, payload);
    }
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0], (std::pair<u32, std::string>{1, "alpha"}));
    EXPECT_EQ(got[1], (std::pair<u32, std::string>{2, ""}));
    EXPECT_EQ(got[2], (std::pair<u32, std::string>{3, "c"}));
    EXPECT_FALSE(decoder.corrupt());
}

TEST(NetioFrame, TruncatedFrameWaitsInsteadOfCorrupting)
{
    const std::string frame = encodeFrame(4, "incomplete payload");
    FrameDecoder decoder;
    decoder.feed(frame.data(), frame.size() - 5);
    u32 type = 0;
    std::string payload;
    EXPECT_FALSE(decoder.next(type, payload));
    EXPECT_FALSE(decoder.corrupt()); // Incomplete ≠ corrupt.
    EXPECT_GT(decoder.pendingBytes(), 0u);
    // The missing tail completes it.
    decoder.feed(frame.data() + frame.size() - 5, 5);
    ASSERT_TRUE(decoder.next(type, payload));
    EXPECT_EQ(payload, "incomplete payload");
}

TEST(NetioFrame, FlippedCrcBitPoisonsTheStream)
{
    std::string frame = encodeFrame(4, "checked payload");
    frame[frame.size() - 3] ^= 0x10; // Payload bit; header CRC stale.
    FrameDecoder decoder;
    decoder.feed(frame.data(), frame.size());
    u32 type = 0;
    std::string payload;
    EXPECT_FALSE(decoder.next(type, payload));
    EXPECT_TRUE(decoder.corrupt());
    EXPECT_NE(decoder.error().find("CRC"), std::string::npos)
        << decoder.error();
    // Poisoned for good: even a pristine frame is refused now.
    const std::string fine = encodeFrame(1, "fine");
    decoder.feed(fine.data(), fine.size());
    EXPECT_FALSE(decoder.next(type, payload));
}

TEST(NetioFrame, BadMagicPoisonsTheStream)
{
    std::string frame = encodeFrame(4, "x");
    frame[0] ^= 0xFF;
    FrameDecoder decoder;
    decoder.feed(frame.data(), frame.size());
    u32 type = 0;
    std::string payload;
    EXPECT_FALSE(decoder.next(type, payload));
    EXPECT_TRUE(decoder.corrupt());
    EXPECT_NE(decoder.error().find("magic"), std::string::npos)
        << decoder.error();
}

TEST(NetioFrame, OversizedDeclaredLengthPoisonsTheStream)
{
    // A header claiming a payload beyond kMaxFramePayload must be
    // rejected from the header alone — no attempt to buffer 4GB.
    std::string frame = encodeFrame(4, "small");
    const u32 huge = kMaxFramePayload + 1;
    for (int i = 0; i < 4; ++i)
        frame[8 + i] = static_cast<char>((huge >> (8 * i)) & 0xFF);
    FrameDecoder decoder;
    decoder.feed(frame.data(), frame.size());
    u32 type = 0;
    std::string payload;
    EXPECT_FALSE(decoder.next(type, payload));
    EXPECT_TRUE(decoder.corrupt());
    EXPECT_NE(decoder.error().find("length"), std::string::npos)
        << decoder.error();
}

TEST(NetioFrame, GarbageFuzzNeverCrashesOrYieldsFrames)
{
    // Deterministic garbage: whatever the bytes, the decoder either
    // waits for more input or latches corrupt — it never fabricates a
    // valid frame and never reads out of bounds (ASan run covers that).
    std::mt19937 rng(12345);
    for (int trial = 0; trial < 200; ++trial) {
        FrameDecoder decoder;
        std::string junk(1 + rng() % 512, '\0');
        for (char &c : junk)
            c = static_cast<char>(rng());
        // Feed in randomly sized slices.
        size_t off = 0;
        u32 type = 0;
        std::string payload;
        unsigned frames = 0;
        while (off < junk.size()) {
            const size_t n =
                std::min<size_t>(1 + rng() % 64, junk.size() - off);
            decoder.feed(junk.data() + off, n);
            off += n;
            while (decoder.next(type, payload))
                ++frames;
        }
        // Random junk almost surely breaks the magic; a trial that
        // happened to stay incomplete is also fine — but a decoded
        // frame from garbage would be a CRC miracle worth failing on.
        EXPECT_EQ(frames, 0u);
    }
}

// --- sockets ---------------------------------------------------------

TEST(NetioSocket, UnixLoopbackSendRecvAndPoll)
{
    char tmpl[] = "/tmp/aos_netio_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    const std::string dir = tmpl;

    Address addr;
    addr.kind = Address::Kind::kUnix;
    addr.path = dir + "/sock";

    std::string error;
    Socket listener = listenAt(addr, error);
    ASSERT_TRUE(listener.valid()) << error;

    std::thread peer([&]() {
        std::string err;
        Socket client = connectTo(addr, err);
        ASSERT_TRUE(client.valid()) << err;
        const std::string frame = encodeFrame(9, "over the wire");
        ASSERT_TRUE(client.sendAll(frame));
        // Leave scope: close → the server sees orderly EOF.
    });

    std::vector<size_t> readable;
    ASSERT_TRUE(pollReadable({listener.fd()}, 5000, readable));
    ASSERT_EQ(readable.size(), 1u);
    Socket conn = acceptOn(listener);
    ASSERT_TRUE(conn.valid());

    FrameDecoder decoder;
    u32 type = 0;
    std::string payload;
    char buf[256];
    while (!decoder.next(type, payload)) {
        ASSERT_FALSE(decoder.corrupt()) << decoder.error();
        ASSERT_TRUE(pollReadable({conn.fd()}, 5000, readable));
        const long n = conn.recvSome(buf, sizeof(buf));
        if (n <= 0)
            break;
        decoder.feed(buf, static_cast<size_t>(n));
    }
    EXPECT_EQ(type, 9u);
    EXPECT_EQ(payload, "over the wire");

    // Orderly EOF after the peer closes.
    peer.join();
    long n;
    while ((n = conn.recvSome(buf, sizeof(buf))) > 0) {
    }
    EXPECT_EQ(n, 0);

    // Stale-socket handling: a second listener at the same path works
    // (the bind unlinks the leftover socket file first).
    listener.close();
    Socket again = listenAt(addr, error);
    EXPECT_TRUE(again.valid()) << error;
    again.close();
    ::unlink(addr.path.c_str());
    ::rmdir(dir.c_str());
}

// --- chaos instrumentation -------------------------------------------

/** A net-domain chaos config firing on every op, restricted to
 *  @p kinds so each test isolates one degradation path. */
chaos::ChaosConfig
netChaos(u64 seed, u32 kinds)
{
    chaos::ChaosConfig c;
    c.seed = seed;
    c.ratePerMille = 1000;
    c.domains = chaos::domainBit(chaos::Domain::kNet);
    c.kinds = kinds;
    return c;
}

/** A connected AF_UNIX socketpair wrapped in RAII Sockets. */
void
makePair(Socket &a, Socket &b)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = Socket(fds[0]);
    b = Socket(fds[1]);
}

std::string
patternedFrame(u32 type, size_t payloadBytes)
{
    std::string payload(payloadBytes, '\0');
    for (size_t i = 0; i < payloadBytes; ++i)
        payload[i] = static_cast<char>((i * 7 + 13) & 0xff);
    return encodeFrame(type, payload);
}

TEST(NetioChaos, BenignFaultsPreserveTheByteStream)
{
    Socket a, b;
    makePair(a, b);
    const std::string frame = patternedFrame(3, 2000);

    // Every send/recv op degrades (fragmented transfers, EINTR storms)
    // yet the byte stream must arrive intact and in order.
    chaos::ChaosEngine eng(
        netChaos(17, chaos::kindBit(chaos::FaultKind::kShortSend) |
                         chaos::kindBit(chaos::FaultKind::kShortRecv) |
                         chaos::kindBit(chaos::FaultKind::kEintr)));
    FrameDecoder decoder;
    u32 type = 0;
    std::string payload;
    {
        chaos::ChaosScope scope(&eng);
        ASSERT_TRUE(a.sendAll(frame));
        char buf[256];
        while (!decoder.next(type, payload)) {
            ASSERT_FALSE(decoder.corrupt()) << decoder.error();
            const long n = b.recvSome(buf, sizeof(buf));
            ASSERT_GT(n, 0);
            decoder.feed(buf, static_cast<size_t>(n));
        }
    }
    EXPECT_EQ(type, 3u);
    EXPECT_EQ(encodeFrame(type, payload), frame);
    EXPECT_FALSE(decoder.corrupt());
    EXPECT_GT(eng.injected(chaos::Domain::kNet), 0u);
    EXPECT_EQ(eng.injectedHard(), 0u);
}

TEST(NetioChaos, EintrStormsAreBoundedAndHarmless)
{
    Socket a, b;
    makePair(a, b);
    const std::string frame = patternedFrame(1, 500);

    chaos::ChaosEngine eng(
        netChaos(5, chaos::kindBit(chaos::FaultKind::kEintr)));
    chaos::ChaosScope scope(&eng);
    ASSERT_TRUE(a.sendAll(frame));
    std::string got;
    char buf[256];
    while (got.size() < frame.size()) {
        const long n = b.recvSome(buf, sizeof(buf));
        ASSERT_GT(n, 0);
        got.append(buf, static_cast<size_t>(n));
    }
    EXPECT_EQ(got, frame);
    EXPECT_GT(eng.injectedKind(chaos::FaultKind::kEintr), 0u);
}

TEST(NetioChaos, SendResetFailsWithEconnreset)
{
    Socket a, b;
    makePair(a, b);
    chaos::ChaosEngine eng(
        netChaos(2, chaos::kindBit(chaos::FaultKind::kSendReset)));
    chaos::ChaosScope scope(&eng);
    const std::string frame = patternedFrame(1, 100);
    errno = 0;
    EXPECT_FALSE(a.sendAll(frame));
    EXPECT_EQ(errno, ECONNRESET);
    EXPECT_GE(eng.injectedKind(chaos::FaultKind::kSendReset), 1u);
}

TEST(NetioChaos, RecvResetReturnsError)
{
    Socket a, b;
    makePair(a, b);
    // kRecvReset sits only in recvSome's site mask, so the same engine
    // leaves the (chaos-scoped) send untouched.
    chaos::ChaosEngine eng(
        netChaos(2, chaos::kindBit(chaos::FaultKind::kRecvReset)));
    chaos::ChaosScope scope(&eng);
    ASSERT_TRUE(a.sendAll(patternedFrame(1, 100)));
    char buf[64];
    errno = 0;
    EXPECT_EQ(b.recvSome(buf, sizeof(buf)), -1);
    EXPECT_EQ(errno, ECONNRESET);
    EXPECT_GE(eng.injectedKind(chaos::FaultKind::kRecvReset), 1u);
}

TEST(NetioChaos, FlippedWireBitNeverDeliversAWrongFrame)
{
    Socket a, b;
    makePair(a, b);
    const std::string frame = patternedFrame(7, 300);
    chaos::ChaosEngine eng(
        netChaos(23, chaos::kindBit(chaos::FaultKind::kFlipByte)));
    {
        chaos::ChaosScope scope(&eng);
        // The flip hits the wire image, never the caller's buffer.
        ASSERT_TRUE(a.sendAll(frame));
    }
    ASSERT_GE(eng.injectedKind(chaos::FaultKind::kFlipByte), 1u);

    std::string got;
    char buf[1024];
    while (got.size() < frame.size()) {
        const long n = b.recvSome(buf, sizeof(buf));
        ASSERT_GT(n, 0);
        got.append(buf, static_cast<size_t>(n));
    }
    EXPECT_NE(got, frame); // Exactly one bit differs on the wire.

    // The CRC covers type, length and payload, so no single-bit flip
    // anywhere in the frame may decode: the stream poisons instead.
    FrameDecoder decoder;
    decoder.feed(got.data(), got.size());
    u32 type = 0;
    std::string payload;
    EXPECT_FALSE(decoder.next(type, payload));
    EXPECT_TRUE(decoder.corrupt());
}

} // namespace
} // namespace aos::netio
