/**
 * @file
 * Frozen before/after regression vectors for the QARMA/PA hot path.
 *
 * These vectors were produced by the straightforward per-cell QARMA
 * implementation (pre LUT-packing and key-schedule caching) and pin
 * the optimized code paths bit-exactly: encrypt, decrypt, the cached
 * Schedule overloads, PaContext::computePac, and the full pacma
 * sign-with-AHC composition. Any future "optimization" that changes a
 * single ciphertext bit fails here before it can skew a figure.
 *
 * Key/tweak/plaintext material is pseudorandom (xorshift, fixed seed);
 * the PaContext vectors use the default pointer layout and seed with
 * PaKey::kModifierM, matching the simulator's bounds-PAC use.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "pa/pa_context.hh"
#include "qarma/qarma64.hh"
#include "qarma/qarma_sliced.hh"

namespace aos {
namespace {

using qarma::Key128;
using qarma::Qarma64;
using qarma::Sbox;

struct QarmaVector
{
    unsigned box;   //!< Index into {kSigma0, kSigma1, kSigma2}.
    unsigned rounds;
    u64 w0, k0, pt, tweak, ct;
};

constexpr QarmaVector kQarmaVectors[] = {
    {0, 5, 0x3f2800d6569e01b4ull, 0x606f949a3cebd0b7ull, 0xc69bba40dddccad6ull, 0xbdc162a6bf8906c3ull, 0xe2efce0bf9990b6full},
    {0, 5, 0xacccfee2b873c40eull, 0x2208ba58d97fe006ull, 0x7942b05e77b9de46ull, 0xf7bfd187e61dfc7aull, 0x8b5741f2418a965bull},
    {0, 5, 0x6ba9915de3259902ull, 0x0bf76c2887c5d2b0ull, 0xd7eda3f877c2f515ull, 0x73e1da3f024c95bfull, 0xa7ab278cd95fec38ull},
    {0, 5, 0xa4338db77b728354ull, 0x04175a80ffea3352ull, 0x79774e11a59b73b4ull, 0xb13b0ca3dedc2853ull, 0x21384291a4f62a51ull},
    {0, 6, 0x82237f5562e7e4c3ull, 0x6d4d5a297ad77bcaull, 0x0cb68093bdff67bdull, 0xa099ad97a5ced632ull, 0xd8d4047c8e4addb2ull},
    {0, 6, 0x8b3948712dca871eull, 0xa554d8b5c6f31590ull, 0xf76802b85c7f97bbull, 0x189af48e0d7de654ull, 0x71f9f1e53a6dd859ull},
    {0, 6, 0x0010c6e3e3e40898ull, 0x5f299b8f9120e689ull, 0xde716cac90e22504ull, 0x9c985c99f576204eull, 0x5dc90c075162815aull},
    {0, 6, 0x7fc3cac960011f8eull, 0xa09e71eaad153e31ull, 0xaa7f578deadcb80dull, 0xae08554e955ca23dull, 0x0057aeeb5487404bull},
    {0, 7, 0x2c3d52d8a36b3439ull, 0x931bd6f73645cc11ull, 0x9ca95bef374a63c9ull, 0x9e43fbf63d59254eull, 0x07b538f5185e6d96ull},
    {0, 7, 0x6cb401a3aacb0484ull, 0x057f0b8d58d5338dull, 0x9e6b1f65640ddaaaull, 0x857a914f41d82b9full, 0x5101c6e57fef8b74ull},
    {0, 7, 0x69f087c394329c08ull, 0xb0a47cd6ba5cfb30ull, 0x92d4e82b02fc8ec6ull, 0x5906df6076b4065bull, 0xf30ba5dc7e541f2bull},
    {0, 7, 0x8bc43332aabd9897ull, 0x48ea85919f502666ull, 0x1646de40d3ffdfaaull, 0x7f7b750243708a95ull, 0xca5b2a1fbcee0443ull},
    {1, 5, 0x07d59e1a57066ec0ull, 0x47d82684cbd1d21dull, 0x1e8cb663a18356f9ull, 0x0efe9a42f0e2ce14ull, 0x2ddfae3c9f94b668ull},
    {1, 5, 0x8fa1813209620e88ull, 0x21c427daa5086895ull, 0xbf4fb308a542fd04ull, 0xbc638cc0c8ebb9feull, 0xd357aa131f5c4418ull},
    {1, 5, 0x098c6ba1a6b1d10dull, 0xda63489bd07751efull, 0x17f6f28c5926248cull, 0xa683ae425b06cbc5ull, 0x4162c132af82bc4cull},
    {1, 5, 0x373cfc1de95e9712ull, 0xd68690230ab3aebcull, 0xeda4dfa25858e6e1ull, 0x1dbc199b88d5cf6cull, 0x59bbbfc9046b48acull},
    {1, 6, 0x731210e44cbe3ff2ull, 0x39ee5cec924cff0dull, 0xa1e7a6544cd005b3ull, 0xbea4d46c820ea978ull, 0x181f23193604f0b2ull},
    {1, 6, 0x092b0dbad9dbea2aull, 0xb4142183892b977eull, 0x004b74600993dfd0ull, 0x996b56a2ce530c6full, 0x34f918c04c124595ull},
    {1, 6, 0x10b48c74ddef51b7ull, 0x47f5288aa01e02d4ull, 0x8bc1517865260bd1ull, 0xa263bb4e3a189386ull, 0x383c19cae9377b77ull},
    {1, 6, 0x054a0c84347a8321ull, 0x3a6ddab24e189e67ull, 0x48969a881259d69bull, 0xb5154a45e937a3f6ull, 0x7e838a059c5b3631ull},
    {1, 7, 0x857efa6a3911f131ull, 0xeee2f441ea1fbe93ull, 0x882a2f7c93aa452eull, 0xa0b9a700fcf19a24ull, 0x1c7e326b393300acull},
    {1, 7, 0x82aeefbb120a7010ull, 0x22246f81695060f0ull, 0x7ad78d27cbe6fc31ull, 0xaf02d623995a1d89ull, 0x2d45f10d30045006ull},
    {1, 7, 0xa4a8beff1cbaebf2ull, 0xd5b4915cd40d22a5ull, 0x2c85a0b8a9f931a0ull, 0xb87a9149d754abc3ull, 0xfe52b3bdd72d150dull},
    {1, 7, 0xf26f05a520009254ull, 0x3f32e6bb74ce8670ull, 0xe54781a3efb0877cull, 0x2203b2ee2645b972ull, 0x5134ee7d0c35e49dull},
    {2, 5, 0xc163725881492e80ull, 0xcb1cbd157e6a1cddull, 0x81fc75e932c25fa4ull, 0xad73e69f7ff2b21bull, 0x1671095f6a262b35ull},
    {2, 5, 0x42e49eb6889cb1bfull, 0x86e482165aae071cull, 0x1d293f23255d1c12ull, 0xb8c7ee9a5286e2aaull, 0xeb1fe2a05509ab28ull},
    {2, 5, 0x5e98ba1f101005efull, 0x9412bbb456c4be24ull, 0x30fec80a64323e58ull, 0x1f260cf8a3f6cc24ull, 0xe48c82a60f2d6498ull},
    {2, 5, 0x0a6a87ba27fea8bcull, 0xabae0ada8cd6faedull, 0x09cd17ae4b9c4c58ull, 0xf4ae5c46bc1362c0ull, 0x1293d3f644da9edcull},
    {2, 6, 0xb2fe7504b1e1f405ull, 0xc15ba201d32596adull, 0xeadaf93206b3d6c0ull, 0x35b829b1b649016dull, 0x7cbc7fabed9cbcb4ull},
    {2, 6, 0x3663cdd6b716682full, 0x1d428ccd4c99af3full, 0x6a6b180da2ceb3a1ull, 0xfb61c1ab115fe686ull, 0xba83031711c0b022ull},
    {2, 6, 0xd75dd26f9dc238cbull, 0x6ee2eb49a99aee7aull, 0xa060cabc0bf10526ull, 0xf2ee7b53725b6eacull, 0x1b5edabd4f295125ull},
    {2, 6, 0x079b4251c953f371ull, 0xdc14592a11fda8d7ull, 0xa5d8667e83228646ull, 0x9aa855edc3d992caull, 0x0d6f4fc1a16a16f0ull},
    {2, 7, 0x1dae7e8a7abdd36full, 0x4ca7391d5d439309ull, 0x9df31169a9a2f66full, 0xce0b0116dc07c843ull, 0xb39d0f6d8bf6a7bbull},
    {2, 7, 0xbd339ba86763b713ull, 0xfb0f292f30d8d4bdull, 0x2b421e9d96b3ea54ull, 0x7666774e4d2e9880ull, 0x79e54d1a629220ecull},
    {2, 7, 0xfad233938260e5b1ull, 0xbb69408ef19f683aull, 0x4d5ea2c25675186aull, 0x538d3cf9bd26a8daull, 0x3501894b57bdf15dull},
    {2, 7, 0xab6d8a90f4fb930bull, 0xcc44d808144dc6edull, 0xf5820ea623894620ull, 0x7bbb2df51c03dcacull, 0x0838d63fa41aa6feull},
};

constexpr Sbox kBoxes[] = {Sbox::kSigma0, Sbox::kSigma1, Sbox::kSigma2};

struct PacVector
{
    u64 ptr, mod, pac;
};

// PaContext{} (default layout and seed), PaKey::kModifierM.
constexpr PacVector kPacVectors[] = {
    {0x00001fdb6d737015ull, 0xe4bc037f8e1d33b5ull, 0x0000000000004481ull},
    {0x0000352fd91f4492ull, 0xf98d47cc14d81e9bull, 0x000000000000670full},
    {0x00001e9769e96866ull, 0x3b62ec15d6006336ull, 0x000000000000e4bdull},
    {0x000035dcad326e70ull, 0xbeda07c1386596acull, 0x00000000000041e6ull},
    {0x000007c6fca77681ull, 0x350789c5c60bb82cull, 0x00000000000091c7ull},
    {0x00003fbef0d4245cull, 0xe87a83090a9f1b14ull, 0x000000000000bb1bull},
    {0x00002d429c6a6022ull, 0x76761fafb70afc62ull, 0x000000000000d03aull},
    {0x000004331763b11aull, 0xfda175163e7270f8ull, 0x000000000000c29cull},
};

struct PacmaVector
{
    u64 ptr, mod, size, signedPtr;
};

constexpr PacmaVector kPacmaVectors[] = {
    {0x000034a694bfaa00ull, 0x984e7583e525730dull, 2747, 0xd860f4a694bfaa00ull},
    {0x00002c5d081a9800ull, 0xb4ac8daa53695a6full, 811, 0x91c2ec5d081a9800ull},
    {0x00002fb394669000ull, 0x6da0ad5edc57f25dull, 2825, 0xe7332fb394669000ull},
    {0x00003863aa08a000ull, 0x127ac24aaf212a2cull, 904, 0xa6547863aa08a000ull},
    {0x00001300c4a8bd00ull, 0xfb180d707e334345ull, 1171, 0xf3a35300c4a8bd00ull},
    {0x0000005673c6f600ull, 0xace5bcb1f34f8187ull, 3924, 0xe880005673c6f600ull},
    {0x00001bffc5912d00ull, 0x1e7b88f758be11a0ull, 1427, 0xc7ba9bffc5912d00ull},
    {0x000011f402797700ull, 0x1bbb460af58557a6ull, 1177, 0xe7ba11f402797700ull},
};

TEST(PacVectors, QarmaEncryptMatchesFrozenVectors)
{
    for (const QarmaVector &v : kQarmaVectors) {
        const Qarma64 cipher(kBoxes[v.box], v.rounds);
        const Key128 key{v.w0, v.k0};
        EXPECT_EQ(cipher.encrypt(v.pt, v.tweak, key), v.ct)
            << "box=" << v.box << " rounds=" << v.rounds;
    }
}

TEST(PacVectors, QarmaDecryptMatchesFrozenVectors)
{
    for (const QarmaVector &v : kQarmaVectors) {
        const Qarma64 cipher(kBoxes[v.box], v.rounds);
        const Key128 key{v.w0, v.k0};
        EXPECT_EQ(cipher.decrypt(v.ct, v.tweak, key), v.pt)
            << "box=" << v.box << " rounds=" << v.rounds;
    }
}

TEST(PacVectors, CachedScheduleMatchesKeyOverloads)
{
    // The Schedule overloads are the hot path (PaContext); they must
    // agree with the Key128 overloads on every vector.
    for (const QarmaVector &v : kQarmaVectors) {
        const Qarma64 cipher(kBoxes[v.box], v.rounds);
        const Key128 key{v.w0, v.k0};
        const Qarma64::Schedule ks = Qarma64::expandKey(key);
        EXPECT_EQ(cipher.encrypt(v.pt, v.tweak, ks), v.ct);
        EXPECT_EQ(cipher.decrypt(v.ct, v.tweak, ks), v.pt);
    }
}

TEST(PacVectors, ComputePacMatchesFrozenVectors)
{
    pa::PaContext ctx;
    for (const PacVector &v : kPacVectors)
        EXPECT_EQ(ctx.computePac(v.ptr, v.mod, pa::PaKey::kModifierM),
                  v.pac);
}

TEST(PacVectors, PacmaMatchesFrozenVectors)
{
    pa::PaContext ctx;
    for (const PacmaVector &v : kPacmaVectors)
        EXPECT_EQ(ctx.pacma(v.ptr, v.mod, v.size), v.signedPtr);
}

// ---- batch kernel vs scalar property tests (DESIGN.md §14) --------------

/** Every kernel the build compiled in and this host can run. */
std::vector<qarma::SlicedKernel>
availableKernels()
{
    using qarma::QarmaSliced;
    using qarma::SlicedKernel;
    std::vector<SlicedKernel> kernels = {SlicedKernel::kScalar,
                                         SlicedKernel::kSliced64};
    if (QarmaSliced::simdCompiledIn())
        kernels.push_back(SlicedKernel::kSimd128);
    if (QarmaSliced::simd512Available())
        kernels.push_back(SlicedKernel::kSimd512);
    return kernels;
}

TEST(PacVectors, BatchEncryptMatchesScalarForRaggedBatches)
{
    // Property: for every compiled-in kernel, every S-box family and
    // round count AOS instantiates, and batch sizes straddling the
    // lane widths (1..513, full lanes, ragged tails, sub-slicing
    // sizes), the batch kernel is bit-identical to the scalar cipher.
    const size_t sizes[] = {1,  2,   7,   15,  16,  17,  63, 64,
                            65, 100, 127, 128, 129, 200, 511, 513};
    Rng rng(0xba7c4'0001ull);
    for (const qarma::SlicedKernel kernel : availableKernels()) {
        for (const Sbox box : kBoxes) {
            for (const unsigned rounds : {5u, 7u}) {
                const qarma::QarmaSliced sliced(box, rounds, kernel);
                const Qarma64 scalar(box, rounds);
                const auto ks =
                    Qarma64::expandKey({rng.next(), rng.next()});
                for (const size_t n : sizes) {
                    std::vector<u64> pt(n), tw(n), ct(n);
                    for (size_t i = 0; i < n; ++i) {
                        pt[i] = rng.next();
                        tw[i] = rng.next();
                    }
                    sliced.encrypt(pt.data(), tw.data(), n, ks,
                                   ct.data());
                    for (size_t i = 0; i < n; ++i) {
                        ASSERT_EQ(ct[i],
                                  scalar.encrypt(pt[i], tw[i], ks))
                            << "kernel=" << static_cast<int>(kernel)
                            << " box=" << static_cast<int>(box)
                            << " rounds=" << rounds << " n=" << n
                            << " lane=" << i;
                    }
                }
            }
        }
    }
}

TEST(PacVectors, BatchEncryptInPlaceAliasing)
{
    // ct == pt is documented as legal; the transpose must not read
    // lanes it already wrote.
    Rng rng(0xba7c4'0002ull);
    for (const qarma::SlicedKernel kernel : availableKernels()) {
        const qarma::QarmaSliced sliced(Sbox::kSigma1, 7, kernel);
        const Qarma64 scalar(Sbox::kSigma1, 7);
        const auto ks = Qarma64::expandKey({rng.next(), rng.next()});
        const size_t n = 200;
        std::vector<u64> buf(n), tw(n), ref(n);
        for (size_t i = 0; i < n; ++i) {
            buf[i] = rng.next();
            tw[i] = rng.next();
            ref[i] = scalar.encrypt(buf[i], tw[i], ks);
        }
        sliced.encrypt(buf.data(), tw.data(), n, ks, buf.data());
        EXPECT_EQ(buf, ref) << "kernel=" << static_cast<int>(kernel);
    }
}

TEST(PacVectors, BatchPacMatchesScalarPacma)
{
    // PaContext::batchPac must agree with per-pointer pacma() on
    // arbitrary request windows, including the size == 0 re-signs the
    // free() path issues and windows below the slicing threshold.
    pa::PaContext ctx;
    Rng rng(0xba7c4'0003ull);
    for (const size_t n : {size_t{1}, size_t{5}, size_t{16}, size_t{64},
                           size_t{200}, size_t{513}}) {
        std::vector<Addr> ptrs(n), out(n);
        std::vector<u64> mods(n), sizes(n);
        for (size_t i = 0; i < n; ++i) {
            ptrs[i] = rng.next() & 0x00003fffffffffffull;
            mods[i] = rng.next();
            sizes[i] = (i % 7 == 0) ? 0 : rng.below(8192);
        }
        ctx.batchPac(ptrs.data(), mods.data(), sizes.data(), n,
                     pa::PaKey::kModifierM, out.data());
        for (size_t i = 0; i < n; ++i) {
            EXPECT_EQ(out[i], ctx.pacma(ptrs[i], mods[i], sizes[i]))
                << "n=" << n << " slot=" << i;
        }
    }
}

TEST(PacVectors, PacBatchQueueDrainsThroughBatchPac)
{
    // The deferred-signing queue: slots come back in enqueue order and
    // clear() keeps the pool reusable.
    pa::PaContext ctx;
    pa::PacBatch batch(&ctx);
    Rng rng(0xba7c4'0004ull);
    for (int round = 0; round < 3; ++round) {
        const size_t n = 40 + 7 * round;
        std::vector<Addr> ptrs(n);
        std::vector<u64> mods(n), sizes(n);
        for (size_t i = 0; i < n; ++i) {
            ptrs[i] = rng.next() & 0x00003fffffffffffull;
            mods[i] = rng.next();
            sizes[i] = rng.below(4096);
            EXPECT_EQ(batch.enqueue(ptrs[i], mods[i], sizes[i]), i);
        }
        EXPECT_EQ(batch.pending(), n);
        batch.flush();
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(batch.result(i),
                      ctx.pacma(ptrs[i], mods[i], sizes[i]));
        batch.clear();
        EXPECT_EQ(batch.pending(), 0u);
    }
}

} // namespace
} // namespace aos
