/**
 * @file
 * Tests for the stream-detecting next-line prefetcher added to the
 * cache model (see memsim/cache.hh for the modeling rationale).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "memsim/cache.hh"

namespace aos::memsim {
namespace {

CacheParams
prefetching(const char *name = "pf")
{
    CacheParams params{name, 8 * 1024, 2, 64, 1};
    params.nextLinePrefetch = true;
    return params;
}

TEST(Prefetch, SequentialStreamCoveredAfterTwoMisses)
{
    MainMemory dram;
    Cache cache(prefetching(), &dram);
    // Walk 32 sequential lines: misses only until the stream locks on.
    for (int i = 0; i < 32; ++i)
        cache.access(0x10000 + i * 64, false);
    EXPECT_LE(cache.stats().misses, 2u);
    EXPECT_GT(cache.stats().prefetches, 20u);
}

TEST(Prefetch, TaggedHitKeepsRunningAhead)
{
    MainMemory dram;
    Cache cache(prefetching(), &dram);
    cache.access(0x10000, false);      // miss, no prev -> no prefetch
    cache.access(0x10040, false);      // miss, prev resident -> pf next
    const u64 misses = cache.stats().misses;
    // Every subsequent line hits the tagged prefetch and re-arms it.
    for (int i = 2; i < 16; ++i) {
        cache.access(0x10000 + i * 64, false);
        EXPECT_EQ(cache.stats().misses, misses) << "line " << i;
    }
}

TEST(Prefetch, RandomAccessDoesNotPrefetch)
{
    MainMemory dram;
    Cache cache(prefetching(), &dram);
    Rng rng(1);
    for (int i = 0; i < 256; ++i)
        cache.access(0x100000 + rng.below(1 << 20) * 64, false);
    // Sparse random lines essentially never have a resident
    // predecessor, so the prefetcher stays quiet.
    EXPECT_LT(cache.stats().prefetches, 8u);
}

TEST(Prefetch, DisabledByDefault)
{
    MainMemory dram;
    CacheParams params{"plain", 8 * 1024, 2, 64, 1};
    Cache cache(params, &dram);
    for (int i = 0; i < 32; ++i)
        cache.access(0x10000 + i * 64, false);
    EXPECT_EQ(cache.stats().prefetches, 0u);
    EXPECT_EQ(cache.stats().misses, 32u);
}

TEST(Prefetch, PrefetchFillsCountTraffic)
{
    MainMemory dram;
    Cache cache(prefetching(), &dram);
    for (int i = 0; i < 16; ++i)
        cache.access(0x10000 + i * 64, false);
    // Every line entered the cache exactly once, demand or prefetch.
    EXPECT_EQ(cache.stats().bytesFilled,
              (cache.stats().misses + cache.stats().prefetches) * 64);
}

TEST(Prefetch, PrefetchedLinesAreClean)
{
    // A prefetched-but-never-written line must not write back.
    MainMemory dram;
    Cache cache(prefetching(), &dram);
    cache.access(0x10000, false);
    cache.access(0x10040, false); // prefetches 0x10080
    // Thrash the set containing 0x10080 with clean fills.
    for (int i = 1; i <= 4; ++i)
        cache.access(0x10080 + i * 8 * 1024 / 2, false);
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(Prefetch, StreamsDoNotCrossIntoWrites)
{
    // A write stream is covered too (write-allocate): misses stay low.
    MainMemory dram;
    Cache cache(prefetching(), &dram);
    for (int i = 0; i < 32; ++i)
        cache.access(0x20000 + i * 64, true);
    EXPECT_LE(cache.stats().misses, 2u);
}

TEST(Prefetch, AlreadyResidentNextLineIsNoop)
{
    MainMemory dram;
    Cache cache(prefetching(), &dram);
    cache.access(0x10080, false); // the "next" line, resident first
    cache.access(0x10000, false);
    cache.access(0x10040, false); // miss; prefetch target resident
    const u64 fills = cache.stats().bytesFilled;
    cache.access(0x10080, false); // must still hit
    EXPECT_EQ(cache.stats().bytesFilled, fills);
}

} // namespace
} // namespace aos::memsim
