/**
 * @file
 * Unit tests for the AHC/PAC/VA pointer layout and Algorithm 1.
 */

#include <gtest/gtest.h>

#include "pa/pointer_layout.hh"

namespace aos::pa {
namespace {

TEST(PointerLayout, DefaultGeometry)
{
    PointerLayout layout;
    EXPECT_EQ(layout.pacSize(), 16u);
    EXPECT_EQ(layout.vaSize(), 46u);
    EXPECT_EQ(layout.pacSpace(), u64{1} << 16);
}

TEST(PointerLayout, ComposeAndExtract)
{
    PointerLayout layout;
    const Addr raw = 0x20000010ull;
    const Addr ptr = layout.compose(raw, 0xabcd, 2);
    EXPECT_EQ(layout.strip(ptr), raw);
    EXPECT_EQ(layout.pac(ptr), 0xabcdu);
    EXPECT_EQ(layout.ahc(ptr), 2u);
    EXPECT_TRUE(layout.signed_(ptr));
    EXPECT_FALSE(layout.signed_(raw));
}

TEST(PointerLayout, StripClearsAllMetadata)
{
    PointerLayout layout;
    const Addr ptr = layout.compose(0x123456789a0ull, 0xffff, 3);
    EXPECT_EQ(layout.strip(ptr), 0x123456789a0ull);
    EXPECT_EQ(layout.ahc(layout.strip(ptr)), 0u);
    EXPECT_EQ(layout.pac(layout.strip(ptr)), 0u);
}

TEST(PointerLayout, PointerArithmeticPreservesMetadata)
{
    // Adding an in-object offset must not disturb PAC/AHC — the
    // property that eliminates metadata propagation instructions.
    PointerLayout layout;
    const Addr ptr = layout.compose(0x20000000ull, 0x1234, 1);
    const Addr elem = ptr + 40;
    EXPECT_EQ(layout.pac(elem), 0x1234u);
    EXPECT_EQ(layout.ahc(elem), 1u);
    EXPECT_EQ(layout.strip(elem), 0x20000028ull);
}

TEST(PointerLayout, NarrowAndWidePacSizes)
{
    // The architected range is 11..32 bits depending on the VA scheme.
    for (unsigned pac_bits : {11u, 16u, 24u, 32u}) {
        PointerLayout layout(pac_bits, 30);
        const Addr ptr = layout.compose(0x1000, (u64{1} << pac_bits) - 1,
                                        3);
        EXPECT_EQ(layout.pac(ptr), (u64{1} << pac_bits) - 1);
        EXPECT_EQ(layout.strip(ptr), 0x1000u);
    }
}

TEST(Ahc, SmallMediumLargeClasses)
{
    PointerLayout layout;
    // A 64-byte-aligned small object: all address bits above bit 6
    // invariant -> class 1.
    EXPECT_EQ(layout.computeAhc(0x20000000, 64), 1u);
    EXPECT_EQ(layout.computeAhc(0x20000000, 32), 1u);
    // ~256-byte object aligned within a 1 KB line window -> class 2.
    EXPECT_EQ(layout.computeAhc(0x20000000, 256), 2u);
    // Large object -> class 3.
    EXPECT_EQ(layout.computeAhc(0x20000000, 4096), 3u);
}

TEST(Ahc, StraddlingObjectsFallIntoLargerClass)
{
    PointerLayout layout;
    // 64 bytes starting at offset 0x20 crosses a 128-byte boundary but
    // stays within bits [9:7] -> still class 2, not 1.
    EXPECT_EQ(layout.computeAhc(0x20000060, 64), 2u);
    // 200 bytes near the top of a 1 KB region crosses bit 10 -> 3.
    EXPECT_EQ(layout.computeAhc(0x200003c0, 200), 3u);
}

TEST(Ahc, NeverZero)
{
    PointerLayout layout;
    // Including the degenerate xzr (size 0) re-sign after free().
    for (u64 size : {u64{0}, u64{1}, u64{16}, u64{100}, u64{1} << 20}) {
        for (Addr addr : {Addr{0x20000000}, Addr{0x2ffffff0},
                          Addr{0x100000000ull}}) {
            EXPECT_NE(layout.computeAhc(addr, size), 0u)
                << "addr " << addr << " size " << size;
        }
    }
}

TEST(Ahc, SizeZeroUsesPrecedingBlock)
{
    PointerLayout layout;
    // addr ^ (addr - 1): alignment of the address drives the class.
    EXPECT_EQ(layout.computeAhc(0x20000008, 0), 1u);
    EXPECT_EQ(layout.computeAhc(0x20000400, 0), 3u);
}

TEST(PointerLayoutDeath, RejectsOverflowingGeometry)
{
    // 2 (AHC) + 33 (PAC) would exceed the architected 32-bit cap.
    EXPECT_DEATH(PointerLayout(33, 29), "");
    // 2 + 32 + 31 > 64.
    EXPECT_DEATH(PointerLayout(32, 31), "");
    EXPECT_DEATH(PointerLayout(0, 46), "");
}

} // namespace
} // namespace aos::pa
