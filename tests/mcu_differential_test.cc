/**
 * @file
 * Differential fuzzing of the MCU against the functional HBT: random
 * interleavings of bndstr/bndclr/checks driven through the full MCQ
 * protocol (issue, tick, commit, drain) must produce exactly the
 * verdicts and table state that direct functional operations produce.
 */

#include <map>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "mcu/memory_check_unit.hh"

namespace aos::mcu {
namespace {

class McuDifferential : public ::testing::TestWithParam<u64>
{
};

TEST_P(McuDifferential, McuMatchesFunctionalSemantics)
{
    pa::PointerLayout layout(16, 46);
    memsim::MemorySystem mem;
    bounds::HashedBoundsTable hbt(0x3000'0000'0000ull, 16, 1);
    bounds::BoundsWayBuffer bwb(64);
    MemoryCheckUnit unit(McuConfig{}, layout, &hbt, &bwb, &mem);

    Rng rng(GetParam());
    Tick now = 0;
    u64 seq = 0;
    u64 expected_faults = 0;
    u64 faults_seen = 0;
    unit.onFault = [&](FaultKind kind, const McqEntry &) {
        // bndstr overflow retries after a resize; everything else is a
        // violation this fuzz predicted.
        if (kind == FaultKind::kStoreOverflow) {
            if (!hbt.resizing())
                hbt.beginResize();
            return true;
        }
        ++faults_seen;
        return false;
    };

    // Model state: live objects per (pac, base) -> size.
    std::map<std::pair<u64, Addr>, u64> model;
    std::vector<std::pair<u64, Addr>> live;
    Addr next_base = 0x20000000;

    auto pump = [&](unsigned ticks) {
        for (unsigned i = 0; i < ticks; ++i) {
            unit.tick(now++);
            unit.drainRetired();
        }
    };

    auto run_op = [&](ir::OpKind kind, Addr addr, u64 size) {
        while (unit.full())
            pump(1);
        ++seq;
        ASSERT_TRUE(unit.enqueue(kind, addr, size, seq, now));
        // Drive the protocol to completion for this op (checks must be
        // retirable before commit; mutations apply post-commit).
        for (unsigned i = 0; i < 200000 && !unit.readyToRetire(seq); ++i)
            pump(1);
        ASSERT_TRUE(unit.readyToRetire(seq)) << "op " << seq;
        unit.markCommitted(seq);
        while (!unit.empty())
            pump(1);
    };

    for (int step = 0; step < 400; ++step) {
        const double roll = rng.uniform();
        if (live.empty() || roll < 0.35) {
            // bndstr of a fresh object.
            const u64 pac = rng.below(64); // dense: force collisions
            const Addr base = next_base;
            next_base += 0x100;
            const u64 size = 16 + (rng.below(16)) * 8;
            run_op(ir::OpKind::kBndstr,
                   layout.compose(base, pac, 1), size);
            model[{pac, base}] = size;
            live.push_back({pac, base});
        } else if (roll < 0.55) {
            // bndclr: 50/50 a live object (must succeed) or a never-
            // stored address (must fault).
            if (rng.chance(0.5)) {
                const u64 idx = rng.below(live.size());
                const auto [pac, base] = live[idx];
                run_op(ir::OpKind::kBndclr,
                       layout.compose(base, pac, 1), 0);
                model.erase({pac, base});
                live[idx] = live.back();
                live.pop_back();
            } else {
                const u64 pac = rng.below(64);
                const Addr base = next_base + 0x100000;
                ++expected_faults;
                run_op(ir::OpKind::kBndclr,
                       layout.compose(base, pac, 1), 0);
            }
        } else {
            // Check: in-bounds of a live object, or out of bounds.
            const u64 idx = rng.below(live.size());
            const auto [pac, base] = live[idx];
            const u64 size = model.at({pac, base});
            if (rng.chance(0.6)) {
                run_op(ir::OpKind::kLoad,
                       layout.compose(base + rng.below(size), pac, 1),
                       8);
            } else {
                // Out of this object; a same-PAC sibling may still
                // cover it, so consult the model for the verdict.
                const Addr addr = base + size + 8 + rng.below(0x80);
                bool covered = false;
                for (const auto &[key, osize] : model) {
                    if (key.first == pac && addr >= key.second &&
                        addr < key.second + osize) {
                        covered = true;
                        break;
                    }
                }
                if (!covered)
                    ++expected_faults;
                run_op(ir::OpKind::kLoad,
                       layout.compose(addr, pac, 1), 8);
            }
        }
        ASSERT_EQ(faults_seen, expected_faults) << "step " << step;
        ASSERT_EQ(hbt.stats().occupied, model.size()) << "step " << step;
    }

    // Final sweep: every modeled object must check, cleanly.
    for (const auto &[key, size] : model) {
        unsigned touched = 0;
        EXPECT_TRUE(
            hbt.check(key.first, key.second + size / 2, 0, &touched)
                .has_value());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, McuDifferential,
                         ::testing::Values(11u, 22u, 33u, 44u),
                         [](const ::testing::TestParamInfo<u64> &info) {
                             return "seed" + std::to_string(info.param);
                         });

} // namespace
} // namespace aos::mcu
