/**
 * @file
 * Unit tests for the PA signing primitives (pacma/xpacm/autm/pacia).
 */

#include <gtest/gtest.h>

#include "pa/pa_context.hh"

namespace aos::pa {
namespace {

class PaContextTest : public ::testing::Test
{
  protected:
    PaContext pa;
};

TEST_F(PaContextTest, PacmaSignsAndXpacmStrips)
{
    const Addr raw = 0x20001000ull;
    const Addr signed_ptr = pa.pacma(raw, 0x7ff0, 128);
    EXPECT_NE(signed_ptr, raw);
    EXPECT_TRUE(pa.layout().signed_(signed_ptr));
    EXPECT_EQ(pa.xpacm(signed_ptr), raw);
}

TEST_F(PaContextTest, PacIsDeterministic)
{
    const Addr a = pa.pacma(0x20001000, 0x7ff0, 64);
    const Addr b = pa.pacma(0x20001000, 0x7ff0, 64);
    EXPECT_EQ(a, b);
}

TEST_F(PaContextTest, PacDependsOnAddress)
{
    const u64 p1 = pa.layout().pac(pa.pacma(0x20001000, 0x7ff0, 64));
    const u64 p2 = pa.layout().pac(pa.pacma(0x20002000, 0x7ff0, 64));
    // 16-bit PACs: collisions possible but vanishingly unlikely for
    // one specific pair under a fixed key.
    EXPECT_NE(p1, p2);
}

TEST_F(PaContextTest, PacDependsOnModifier)
{
    const u64 p1 = pa.layout().pac(pa.pacma(0x20001000, 0x7ff0, 64));
    const u64 p2 = pa.layout().pac(pa.pacma(0x20001000, 0x8ff0, 64));
    EXPECT_NE(p1, p2);
}

TEST_F(PaContextTest, PacIndependentOfSizeOperand)
{
    // The size operand feeds the AHC, not the PAC, so re-signing after
    // free (size = xzr) reproduces the same PAC.
    const Addr s1 = pa.pacma(0x20001000, 0x7ff0, 64);
    const Addr s2 = pa.pacma(0x20001000, 0x7ff0, 0);
    EXPECT_EQ(pa.layout().pac(s1), pa.layout().pac(s2));
}

TEST_F(PaContextTest, PacmbUsesDifferentKey)
{
    const Addr a = pa.pacma(0x20001000, 0x7ff0, 64);
    const Addr b = pa.pacmb(0x20001000, 0x7ff0, 64);
    EXPECT_NE(pa.layout().pac(a), pa.layout().pac(b));
}

TEST_F(PaContextTest, AutmAcceptsSignedRejectsUnsigned)
{
    const Addr signed_ptr = pa.pacma(0x20001000, 0x7ff0, 64);
    EXPECT_EQ(pa.autm(signed_ptr), AuthResult::kPass);
    EXPECT_EQ(pa.autm(0x20001000), AuthResult::kFail);
    // Forging the AHC to zero (e.g. via integer overflow into the top
    // bits) is exactly what autm catches.
    const Addr forged = signed_ptr & ~(u64{3} << 62);
    EXPECT_EQ(pa.autm(forged), AuthResult::kFail);
}

TEST_F(PaContextTest, PaciaAutiaRoundTrip)
{
    const Addr lr = 0x00400abcull;
    const Addr signed_lr = pa.pacia(lr, /*sp=*/0x7ffff000);
    Addr stripped = 0;
    EXPECT_EQ(pa.autia(signed_lr, 0x7ffff000, &stripped),
              AuthResult::kPass);
    EXPECT_EQ(stripped, lr);
}

TEST_F(PaContextTest, AutiaDetectsCorruption)
{
    const Addr lr = 0x00400abcull;
    const Addr signed_lr = pa.pacia(lr, 0x7ffff000);
    // Corrupt the address bits (ROP-style overwrite).
    EXPECT_EQ(pa.autia(signed_lr ^ 0x10, 0x7ffff000, nullptr),
              AuthResult::kFail);
    // Wrong modifier (stack pointer mismatch).
    EXPECT_EQ(pa.autia(signed_lr, 0x7ffff010, nullptr),
              AuthResult::kFail);
}

TEST_F(PaContextTest, PacMatchesVerifiesEmbeddedPac)
{
    const Addr signed_ptr = pa.pacma(0x20001000, 0x7ff0, 64);
    EXPECT_TRUE(pa.pacMatches(signed_ptr, 0x7ff0));
    EXPECT_FALSE(pa.pacMatches(signed_ptr, 0x1111));
}

TEST_F(PaContextTest, DifferentSeedsGiveDifferentKeys)
{
    PaContext other(PointerLayout(), 0xdeadbeef);
    EXPECT_NE(pa.computePac(0x20001000, 0, PaKey::kModifierM),
              other.computePac(0x20001000, 0, PaKey::kModifierM));
}

TEST_F(PaContextTest, AhcReflectsAllocationSize)
{
    EXPECT_EQ(pa.layout().ahc(pa.pacma(0x20000000, 0x7ff0, 48)), 1u);
    EXPECT_EQ(pa.layout().ahc(pa.pacma(0x20000000, 0x7ff0, 240)), 2u);
    EXPECT_EQ(pa.layout().ahc(pa.pacma(0x20000000, 0x7ff0, 1 << 16)),
              3u);
}

TEST(PaContextKeyed, PaperKeyReproducesPacStudySetup)
{
    // SVI uses a specific 128-bit key and 64-bit context; wiring them
    // in must change the PACs deterministically.
    PaContext pa;
    pa.setKeyM({0x84be85ce9804e94bull, 0xec2802d4e0a488e9ull});
    const u64 pac1 =
        pa.computePac(0x20001000, 0x477d469dec0b8762ull,
                      PaKey::kModifierM);
    const u64 pac2 =
        pa.computePac(0x20001000, 0x477d469dec0b8762ull,
                      PaKey::kModifierM);
    EXPECT_EQ(pac1, pac2);
    EXPECT_LT(pac1, u64{1} << 16);
}

} // namespace
} // namespace aos::pa
