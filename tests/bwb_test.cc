/**
 * @file
 * Unit tests for the bounds way buffer (Algorithm 2, paper SV-C).
 */

#include <gtest/gtest.h>

#include "bounds/bounds_way_buffer.hh"
#include "common/bitfield.hh"

namespace aos::bounds {
namespace {

TEST(BwbTag, WindowSelectionByAhc)
{
    const Addr addr = 0x0000123456789ab0ull;
    const u64 pac = 0xbeef;
    // AHC = 1: Addr[20:7]; AHC = 2: Addr[23:10]; AHC = 3: Addr[25:12].
    EXPECT_EQ(BoundsWayBuffer::tagFor(addr, 1, pac),
              ((pac & mask(16)) << 16) | (bits(addr, 20, 7) << 2) | 1);
    EXPECT_EQ(BoundsWayBuffer::tagFor(addr, 2, pac),
              ((pac & mask(16)) << 16) | (bits(addr, 23, 10) << 2) | 2);
    EXPECT_EQ(BoundsWayBuffer::tagFor(addr, 3, pac),
              ((pac & mask(16)) << 16) | (bits(addr, 25, 12) << 2) | 3);
}

TEST(BwbTag, SameObjectSameTag)
{
    // Addresses within one small object share the AHC-selected window,
    // so they hit the same BWB entry.
    const Addr base = 0x20000080; // 64-byte aligned, AHC 1
    for (unsigned off = 0; off < 64; off += 8) {
        EXPECT_EQ(BoundsWayBuffer::tagFor(base, 1, 7),
                  BoundsWayBuffer::tagFor(base + off, 1, 7));
    }
}

TEST(BwbTag, DifferentObjectsDifferentTags)
{
    EXPECT_NE(BoundsWayBuffer::tagFor(0x20000080, 1, 7),
              BoundsWayBuffer::tagFor(0x20000100, 1, 7));
    EXPECT_NE(BoundsWayBuffer::tagFor(0x20000080, 1, 7),
              BoundsWayBuffer::tagFor(0x20000080, 2, 7));
    EXPECT_NE(BoundsWayBuffer::tagFor(0x20000080, 1, 7),
              BoundsWayBuffer::tagFor(0x20000080, 1, 8));
}

TEST(Bwb, MissReturnsWayZero)
{
    BoundsWayBuffer bwb(4);
    EXPECT_EQ(bwb.lookup(0x20000080, 1, 7), 0u);
    EXPECT_EQ(bwb.stats().misses, 1u);
    EXPECT_EQ(bwb.stats().hits, 0u);
}

TEST(Bwb, UpdateThenHit)
{
    BoundsWayBuffer bwb(4);
    bwb.update(0x20000080, 1, 7, 3);
    EXPECT_EQ(bwb.lookup(0x20000080, 1, 7), 3u);
    EXPECT_EQ(bwb.stats().hits, 1u);
    // Another address inside the same (small) object also hits.
    EXPECT_EQ(bwb.lookup(0x200000a8, 1, 7), 3u);
    EXPECT_EQ(bwb.stats().hits, 2u);
}

TEST(Bwb, UpdateOverwritesExistingEntry)
{
    BoundsWayBuffer bwb(4);
    bwb.update(0x20000080, 1, 7, 1);
    bwb.update(0x20000080, 1, 7, 2);
    EXPECT_EQ(bwb.lookup(0x20000080, 1, 7), 2u);
    // Only one entry was consumed.
    bwb.update(0x30000000, 3, 8, 0);
    bwb.update(0x40000000, 3, 9, 0);
    bwb.update(0x50000000, 3, 10, 0);
    EXPECT_EQ(bwb.lookup(0x20000080, 1, 7), 2u) << "evicted too early";
}

TEST(Bwb, LruEviction)
{
    BoundsWayBuffer bwb(2);
    bwb.update(0x20000080, 1, 1, 1);
    bwb.update(0x20000100, 1, 2, 2);
    // Touch the first so the second becomes LRU.
    EXPECT_EQ(bwb.lookup(0x20000080, 1, 1), 1u);
    bwb.update(0x20000180, 1, 3, 3);
    EXPECT_EQ(bwb.lookup(0x20000080, 1, 1), 1u);   // survived
    EXPECT_EQ(bwb.lookup(0x20000100, 1, 2), 0u);   // evicted -> miss
    EXPECT_EQ(bwb.lookup(0x20000180, 1, 3), 3u);
}

TEST(Bwb, InvalidateDropsEverything)
{
    BoundsWayBuffer bwb(8);
    bwb.update(0x20000080, 1, 7, 3);
    bwb.invalidate();
    EXPECT_EQ(bwb.lookup(0x20000080, 1, 7), 0u);
    EXPECT_EQ(bwb.stats().misses, 1u);
}

TEST(Bwb, HitRateAccounting)
{
    BoundsWayBuffer bwb(8);
    bwb.update(0x20000080, 1, 7, 1);
    for (int i = 0; i < 9; ++i)
        bwb.lookup(0x20000080, 1, 7);
    bwb.lookup(0x90000000, 3, 99); // miss
    EXPECT_NEAR(bwb.stats().hitRate(), 0.9, 1e-9);
}

TEST(BwbDeath, RejectsZeroCapacity)
{
    EXPECT_DEATH(BoundsWayBuffer(0), "");
}

} // namespace
} // namespace aos::bounds
