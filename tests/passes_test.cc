/**
 * @file
 * Tests for the instrumentation pipeline: the AOS two-phase passes
 * (Fig. 7), the PA pass (Figs. 3/13) and the Watchdog pass (Fig. 5a).
 */

#include <vector>

#include <gtest/gtest.h>

#include "compiler/aos_elide_pass.hh"
#include "compiler/aos_passes.hh"
#include "compiler/asan_pass.hh"
#include "compiler/op_counter.hh"
#include "compiler/pa_pass.hh"
#include "compiler/watchdog_pass.hh"
#include "pa/pa_context.hh"
#include "staticcheck/stream_verifier.hh"
#include "workloads/synthetic_workload.hh"

namespace aos::compiler {
namespace {

using ir::MicroOp;
using ir::OpKind;

MicroOp
op(OpKind kind, Addr addr = 0, Addr chunk = 0, u32 size = 0)
{
    MicroOp out;
    out.kind = kind;
    out.addr = addr;
    out.chunkBase = chunk;
    out.size = size;
    return out;
}

std::vector<MicroOp>
drain(ir::InstStream &stream)
{
    std::vector<MicroOp> out;
    MicroOp next;
    while (stream.next(next))
        out.push_back(next);
    return out;
}

std::vector<OpKind>
kinds(const std::vector<MicroOp> &ops)
{
    std::vector<OpKind> out;
    for (const auto &o : ops)
        out.push_back(o.kind);
    return out;
}

TEST(IdentityPass, ForwardsUnchanged)
{
    ir::VectorStream source({op(OpKind::kIntAlu), op(OpKind::kLoad, 0x10)});
    IdentityPass pass(&source);
    const auto out = drain(pass);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[1].addr, 0x10u);
}

TEST(AosOptPass, InsertsIntrinsics)
{
    ir::VectorStream source({op(OpKind::kMallocMark, 0, 0x20001000, 64),
                             op(OpKind::kIntAlu),
                             op(OpKind::kFreeMark, 0, 0x20001000)});
    AosOptPass pass(&source);
    const auto out = kinds(drain(pass));
    const std::vector<OpKind> expect{
        OpKind::kMallocMark, OpKind::kAosMallocIntr, OpKind::kIntAlu,
        OpKind::kFreeMark, OpKind::kAosFreeIntr};
    EXPECT_EQ(out, expect);
}

class AosPipelineTest : public ::testing::Test
{
  protected:
    AosPipelineTest() : pa(pa::PointerLayout(16, 46)) {}

    std::vector<MicroOp>
    lower(std::vector<MicroOp> input)
    {
        ir::VectorStream source(std::move(input));
        AosOptPass opt(&source);
        AosBackendPass backend(&opt, &pa);
        return drain(backend);
    }

    pa::PaContext pa;
};

TEST_F(AosPipelineTest, MallocLoweredPerFig7a)
{
    const auto out =
        lower({op(OpKind::kMallocMark, 0, 0x20001000, 64)});
    // malloc marker ; pacma ; bndstr
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].kind, OpKind::kMallocMark);
    EXPECT_EQ(out[1].kind, OpKind::kPacma);
    EXPECT_EQ(out[2].kind, OpKind::kBndstr);
    // The bndstr carries the signed pointer and the size.
    EXPECT_TRUE(pa.layout().signed_(out[2].addr));
    EXPECT_EQ(pa.layout().strip(out[2].addr), 0x20001000u);
    EXPECT_EQ(out[2].size, 64u);
}

TEST_F(AosPipelineTest, FreeLoweredPerFig7b)
{
    const auto out = lower({op(OpKind::kMallocMark, 0, 0x20001000, 64),
                            op(OpKind::kFreeMark, 0, 0x20001000)});
    // ... free marker ; bndclr ; xpacm ; pacma(re-sign)
    const std::vector<OpKind> expect{
        OpKind::kMallocMark, OpKind::kPacma, OpKind::kBndstr,
        OpKind::kFreeMark, OpKind::kBndclr, OpKind::kXpacm,
        OpKind::kPacma};
    EXPECT_EQ(kinds(out), expect);
    // bndclr targets the same signed pointer pacma produced.
    EXPECT_EQ(out[4].addr, out[2].addr);
}

TEST_F(AosPipelineTest, HeapAccessesGetSigned)
{
    const auto out = lower({op(OpKind::kMallocMark, 0, 0x20001000, 64),
                            op(OpKind::kLoad, 0x20001010, 0x20001000),
                            op(OpKind::kStore, 0x20001020, 0x20001000)});
    const auto &load = out[3];
    const auto &store = out[4];
    ASSERT_EQ(load.kind, OpKind::kLoad);
    EXPECT_TRUE(pa.layout().signed_(load.addr));
    EXPECT_EQ(pa.layout().strip(load.addr), 0x20001010u);
    EXPECT_TRUE(pa.layout().signed_(store.addr));
    // PAC of interior pointers equals the chunk's PAC (propagation by
    // pointer arithmetic).
    EXPECT_EQ(pa.layout().pac(load.addr), pa.layout().pac(store.addr));
}

TEST_F(AosPipelineTest, NonHeapAccessesStayUnsigned)
{
    const auto out = lower({op(OpKind::kLoad, 0x00601000)});
    EXPECT_FALSE(pa.layout().signed_(out[0].addr));
}

TEST_F(AosPipelineTest, AccessAfterFreeStillSigned)
{
    // After free, the program's pointer is re-signed (locked): a UAF
    // access still carries a PAC so the MCU will check (and fail) it.
    const auto out = lower({op(OpKind::kMallocMark, 0, 0x20001000, 64),
                            op(OpKind::kFreeMark, 0, 0x20001000),
                            op(OpKind::kLoad, 0x20001010, 0x20001000)});
    const auto &uaf = out.back();
    ASSERT_EQ(uaf.kind, OpKind::kLoad);
    EXPECT_TRUE(pa.layout().signed_(uaf.addr));
}

TEST_F(AosPipelineTest, ReuseOfChunkGetsFreshSigning)
{
    const auto out = lower({op(OpKind::kMallocMark, 0, 0x20001000, 64),
                            op(OpKind::kFreeMark, 0, 0x20001000),
                            op(OpKind::kMallocMark, 0, 0x20001000, 32),
                            op(OpKind::kLoad, 0x20001008, 0x20001000)});
    const auto &load = out.back();
    EXPECT_TRUE(pa.layout().signed_(load.addr));
    // Same base and modifier -> same PAC, but AHC reflects new size.
    EXPECT_EQ(pa.layout().ahc(load.addr),
              pa.layout().computeAhc(0x20001000, 32));
}

TEST(PaPass, SignsCallsAndAuthenticatesReturns)
{
    ir::VectorStream source({op(OpKind::kCall), op(OpKind::kIntAlu),
                             op(OpKind::kRet)});
    PaPass pass(&source, PaMode::kPaOnly);
    const auto out = kinds(drain(pass));
    const std::vector<OpKind> expect{OpKind::kCall, OpKind::kPacia,
                                     OpKind::kIntAlu, OpKind::kAutia,
                                     OpKind::kRet};
    EXPECT_EQ(out, expect);
}

TEST(PaPass, OnLoadAuthForPointerLoads)
{
    MicroOp ptr_load = op(OpKind::kLoad, 0x20001000);
    ptr_load.loadsPointer = true;
    ir::VectorStream source({ptr_load, op(OpKind::kLoad, 0x20002000)});
    PaPass pass(&source, PaMode::kPaOnly);
    const auto out = kinds(drain(pass));
    const std::vector<OpKind> expect{OpKind::kLoad, OpKind::kAutia,
                                     OpKind::kLoad};
    EXPECT_EQ(out, expect);
}

TEST(PaPass, PaAosUsesCheapAutm)
{
    // Fig. 13: AOS pointers are authenticated with autm, not autia.
    MicroOp ptr_load = op(OpKind::kLoad, 0x20001000);
    ptr_load.loadsPointer = true;
    ir::VectorStream source({ptr_load});
    PaPass pass(&source, PaMode::kPaAos);
    const auto out = kinds(drain(pass));
    const std::vector<OpKind> expect{OpKind::kLoad, OpKind::kAutm};
    EXPECT_EQ(out, expect);
}

TEST(WatchdogPass, ChecksEveryMemoryAccess)
{
    ir::VectorStream source({op(OpKind::kLoad, 0x00601000),
                             op(OpKind::kStore, 0x00602000)});
    WatchdogPass pass(&source);
    const auto out = kinds(drain(pass));
    const std::vector<OpKind> expect{OpKind::kWdCheck, OpKind::kLoad,
                                     OpKind::kWdCheck, OpKind::kStore};
    EXPECT_EQ(out, expect);
}

TEST(WatchdogPass, HeapAccessLoadsLockLocation)
{
    ir::VectorStream source({op(OpKind::kLoad, 0x20001010, 0x20001000)});
    WatchdogPass pass(&source);
    const auto out = drain(pass);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].kind, OpKind::kWdCheck);
    EXPECT_EQ(out[1].kind, OpKind::kWdMetaLoad);
    EXPECT_GE(out[1].addr, 0x5000'0000'0000ull);
    EXPECT_EQ(out[2].kind, OpKind::kLoad);
}

TEST(WatchdogPass, LockCacheFiltersRepeatedChecks)
{
    std::vector<MicroOp> input;
    for (int i = 0; i < 10; ++i)
        input.push_back(op(OpKind::kLoad, 0x20001010, 0x20001000));
    ir::VectorStream source(std::move(input));
    WatchdogPass pass(&source);
    unsigned meta_loads = 0;
    for (const auto &o : drain(pass))
        meta_loads += o.kind == OpKind::kWdMetaLoad;
    EXPECT_EQ(meta_loads, 1u) << "only the first check misses the cache";
}

TEST(WatchdogPass, MallocFreeManageMetadata)
{
    ir::VectorStream source({op(OpKind::kMallocMark, 0, 0x20001000, 64),
                             op(OpKind::kFreeMark, 0, 0x20001000)});
    WatchdogPass pass(&source);
    unsigned meta_stores = 0;
    for (const auto &o : drain(pass))
        meta_stores += o.kind == OpKind::kWdMetaStore;
    EXPECT_EQ(meta_stores, 3u) << "setid (2) + lock invalidation (1)";
}

TEST(WatchdogPass, PropagatesPointerArithmetic)
{
    MicroOp arith = op(OpKind::kIntAlu);
    arith.isPtrArith = true;
    ir::VectorStream source({arith, op(OpKind::kIntAlu)});
    WatchdogPass pass(&source);
    const auto out = kinds(drain(pass));
    const std::vector<OpKind> expect{OpKind::kIntAlu, OpKind::kWdPropagate,
                                     OpKind::kIntAlu};
    EXPECT_EQ(out, expect);
}

TEST(OpCounter, CountsFig16Categories)
{
    pa::PointerLayout layout(16, 46);
    const Addr signed_addr = layout.compose(0x20001000, 5, 1);
    ir::VectorStream source(
        {op(OpKind::kLoad, 0x00601000), op(OpKind::kLoad, signed_addr),
         op(OpKind::kStore, signed_addr), op(OpKind::kBndstr, signed_addr),
         op(OpKind::kPacma, signed_addr), op(OpKind::kXpacm, signed_addr),
         op(OpKind::kBranch), op(OpKind::kWdCheck)});
    OpCounter counter(&source, layout);
    drain(counter);
    const auto &mix = counter.mix();
    EXPECT_EQ(mix.total, 8u);
    EXPECT_EQ(mix.unsignedLoads, 1u);
    EXPECT_EQ(mix.signedLoads, 1u);
    EXPECT_EQ(mix.signedStores, 1u);
    EXPECT_EQ(mix.boundsOps, 1u);
    EXPECT_EQ(mix.pacOps, 2u);
    EXPECT_EQ(mix.branches, 1u);
    EXPECT_EQ(mix.wdOps, 1u);
}

TEST(AsanPass, InstrumentsEveryMemoryAccess)
{
    ir::VectorStream source({op(OpKind::kLoad, 0x20001000),
                             op(OpKind::kIntAlu),
                             op(OpKind::kStore, 0x20002000)});
    AsanPass pass(&source);
    const auto out = kinds(drain(pass));
    const std::vector<OpKind> expect{
        OpKind::kLoad, OpKind::kBranch, OpKind::kLoad,  // shadow+cmp+ld
        OpKind::kIntAlu,
        OpKind::kLoad, OpKind::kBranch, OpKind::kStore};
    EXPECT_EQ(out, expect);
}

TEST(AsanPass, ShadowAddressIsOneEighthScale)
{
    ir::VectorStream source({op(OpKind::kLoad, 0x20001000),
                             op(OpKind::kLoad, 0x20001007)});
    AsanPass pass(&source);
    const auto out = drain(pass);
    ASSERT_EQ(out.size(), 6u);
    // Addresses within the same 8-byte granule share one shadow byte.
    EXPECT_EQ(out[0].addr, out[3].addr);
    EXPECT_GE(out[0].addr, 0x1000'0000'0000ull);
    // The next granule gets the next shadow byte.
    ir::VectorStream source2({op(OpKind::kLoad, 0x20001008)});
    AsanPass pass2(&source2);
    const auto out2 = drain(pass2);
    EXPECT_EQ(out2[0].addr, out[0].addr + 1);
}

TEST(AsanPass, MallocPoisonsRedzones)
{
    ir::VectorStream source({op(OpKind::kMallocMark, 0, 0x20001000, 64),
                             op(OpKind::kFreeMark, 0, 0x20001000)});
    AsanPass pass(&source);
    unsigned shadow_stores = 0;
    for (const auto &o : drain(pass))
        shadow_stores += o.kind == OpKind::kStore;
    EXPECT_GE(shadow_stores, 6u) << "redzone poison + unpoison + free";
}

/**
 * Every production pipeline must verify clean: the StreamVerifier is
 * the machine-checked contract the figure harnesses rely on. Each test
 * drains a real SyntheticWorkload through one pipeline and expects zero
 * diagnostics (see staticcheck_test.cc for the rules firing on
 * deliberately corrupted streams).
 */
class PipelineVerifyTest : public ::testing::Test
{
  protected:
    enum class Pipe { kAos, kPaAos, kPaAosElided, kPa, kWatchdog, kAsan };

    std::vector<staticcheck::Diagnostic>
    verify(Pipe pipe, const std::string &profile = "mcf")
    {
        pa::PaContext pa(pa::PointerLayout(16, 46));
        workloads::SyntheticWorkload workload(
            workloads::profileByName(profile), 20000);
        PassManager manager(&workload);
        switch (pipe) {
          case Pipe::kAos:
            manager.add<AosOptPass>();
            manager.add<AosBackendPass>(&pa);
            break;
          case Pipe::kPaAos:
          case Pipe::kPaAosElided:
            manager.add<AosOptPass>();
            manager.add<AosBackendPass>(&pa);
            manager.add<PaPass>(PaMode::kPaAos);
            if (pipe == Pipe::kPaAosElided)
                manager.add<AosElidePass>(pa.layout());
            break;
          case Pipe::kPa:
            manager.add<PaPass>(PaMode::kPaOnly);
            break;
          case Pipe::kWatchdog:
            manager.add<WatchdogPass>();
            break;
          case Pipe::kAsan:
            manager.add<AsanPass>();
            break;
        }
        staticcheck::VerifierOptions options;
        options.layout = pa.layout();
        options.requireAosLowering =
            pipe == Pipe::kAos || pipe == Pipe::kPaAos ||
            pipe == Pipe::kPaAosElided;
        return staticcheck::StreamVerifier::verify(manager, options);
    }
};

TEST_F(PipelineVerifyTest, AosPipelineIsClean)
{
    const auto diags = verify(Pipe::kAos);
    EXPECT_TRUE(diags.empty()) << staticcheck::toString(diags);
}

TEST_F(PipelineVerifyTest, PaAosPipelineIsClean)
{
    const auto diags = verify(Pipe::kPaAos);
    EXPECT_TRUE(diags.empty()) << staticcheck::toString(diags);
}

TEST_F(PipelineVerifyTest, ElidedPaAosPipelineIsClean)
{
    // Elision removes autm ops but must not break any other invariant.
    const auto diags = verify(Pipe::kPaAosElided);
    EXPECT_TRUE(diags.empty()) << staticcheck::toString(diags);
}

TEST_F(PipelineVerifyTest, PaPipelineIsClean)
{
    const auto diags = verify(Pipe::kPa);
    EXPECT_TRUE(diags.empty()) << staticcheck::toString(diags);
}

TEST_F(PipelineVerifyTest, WatchdogPipelineIsClean)
{
    const auto diags = verify(Pipe::kWatchdog);
    EXPECT_TRUE(diags.empty()) << staticcheck::toString(diags);
}

TEST_F(PipelineVerifyTest, AsanRedzonePipelineIsClean)
{
    const auto diags = verify(Pipe::kAsan);
    EXPECT_TRUE(diags.empty()) << staticcheck::toString(diags);
}

TEST_F(PipelineVerifyTest, CleanAcrossHeapHeavyProfiles)
{
    for (const char *profile : {"omnetpp", "gcc", "astar"}) {
        const auto diags = verify(Pipe::kPaAos, profile);
        EXPECT_TRUE(diags.empty())
            << profile << ":\n" << staticcheck::toString(diags);
    }
}

TEST(AosElidePass, ElidesRepeatedSameChunkAuthentications)
{
    pa::PointerLayout layout(16, 46);
    const Addr chunk = 0x20001000;
    const Addr ptr = layout.compose(chunk, 7, 1);
    MicroOp auth = op(OpKind::kAutm, ptr, chunk);
    MicroOp load = op(OpKind::kLoad, ptr, chunk, 8);
    load.loadsPointer = true;
    ir::VectorStream source({load, auth, load, auth, load, auth});
    AosElidePass pass(&source, layout);
    const auto out = drain(pass);
    unsigned autms = 0;
    for (const auto &o : out)
        autms += o.kind == OpKind::kAutm;
    EXPECT_EQ(autms, 1u) << "only the first authentication executes";
    EXPECT_EQ(pass.stats().autmSeen, 3u);
    EXPECT_EQ(pass.stats().autmElided, 2u);
    EXPECT_EQ(pass.stats().autmKept, 1u);
}

TEST(AosElidePass, NeverElidesUnsignedOperands)
{
    // An unsigned operand means the AHC was stripped: its autm failure
    // IS the detection, so the pass must keep every one.
    pa::PointerLayout layout(16, 46);
    MicroOp auth = op(OpKind::kAutm, 0x20001010, 0x20001000);
    ir::VectorStream source({auth, auth, auth});
    AosElidePass pass(&source, layout);
    const auto out = drain(pass);
    EXPECT_EQ(out.size(), 3u);
    EXPECT_EQ(pass.stats().autmElided, 0u);
}

TEST(AosElidePass, BndclrInvalidatesTheProof)
{
    pa::PointerLayout layout(16, 46);
    const Addr chunk = 0x20001000;
    const Addr ptr = layout.compose(chunk, 7, 1);
    MicroOp auth = op(OpKind::kAutm, ptr, chunk);
    ir::VectorStream source(
        {auth, op(OpKind::kBndclr, ptr, chunk), auth});
    AosElidePass pass(&source, layout);
    const auto out = drain(pass);
    unsigned autms = 0;
    for (const auto &o : out)
        autms += o.kind == OpKind::kAutm;
    EXPECT_EQ(autms, 2u) << "the post-free authentication must execute";
    EXPECT_EQ(pass.stats().invalidations, 1u);
}

TEST(AosElidePass, PacmaInvalidatesTheProof)
{
    pa::PointerLayout layout(16, 46);
    const Addr chunk = 0x20001000;
    const Addr ptr = layout.compose(chunk, 7, 1);
    MicroOp auth = op(OpKind::kAutm, ptr, chunk);
    MicroOp resign = op(OpKind::kPacma, ptr, chunk);
    ir::VectorStream source({auth, auth, resign, auth});
    AosElidePass pass(&source, layout);
    const auto out = drain(pass);
    unsigned autms = 0;
    for (const auto &o : out)
        autms += o.kind == OpKind::kAutm;
    EXPECT_EQ(autms, 2u) << "first auth + first auth after the re-sign";
}

TEST(AosElidePass, MetadataChangeDefeatsTheCachedProof)
{
    // Same chunk, different AHC (e.g. attacker-forged bits): the cached
    // proof does not match, so the authentication executes.
    pa::PointerLayout layout(16, 46);
    const Addr chunk = 0x20001000;
    MicroOp auth1 = op(OpKind::kAutm, layout.compose(chunk, 7, 1), chunk);
    MicroOp auth2 = op(OpKind::kAutm, layout.compose(chunk, 7, 2), chunk);
    ir::VectorStream source({auth1, auth2});
    AosElidePass pass(&source, layout);
    const auto out = drain(pass);
    EXPECT_EQ(out.size(), 2u);
    EXPECT_EQ(pass.stats().autmElided, 0u);
}

TEST(PassManager, ChainsPassesInOrder)
{
    ir::VectorStream source({op(OpKind::kMallocMark, 0, 0x20001000, 64)});
    PassManager manager(&source);
    manager.add<AosOptPass>();
    pa::PaContext pa(pa::PointerLayout(16, 46));
    manager.add<AosBackendPass>(&pa);
    auto *counter =
        manager.add<OpCounter>(pa::PointerLayout(16, 46));
    MicroOp next;
    unsigned count = 0;
    while (manager.next(next))
        ++count;
    EXPECT_EQ(count, 3u); // marker + pacma + bndstr
    EXPECT_EQ(counter->mix().boundsOps, 1u);
    EXPECT_EQ(counter->mix().pacOps, 1u);
}

} // namespace
} // namespace aos::compiler
