/**
 * @file
 * Integration tests for the full timing stack (AosSystem): all five
 * configurations run real workload profiles end to end, and the
 * first-order relationships the paper reports must hold.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/aos_system.hh"

namespace aos::core {
namespace {

using baselines::Mechanism;
using baselines::SystemOptions;

class SystemTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite() { setQuiet(true); }

    RunResult
    runOne(const std::string &workload, Mechanism mech, u64 ops = 60000)
    {
        SystemOptions options;
        options.mech = mech;
        options.measureOps = ops;
        AosSystem system(workloads::profileByName(workload), options);
        return system.run();
    }
};

TEST_F(SystemTest, BaselineRunsToCompletion)
{
    const RunResult r = runOne("namd", Mechanism::kBaseline);
    EXPECT_GE(r.mix.total, 60000u);
    EXPECT_GT(r.core.cycles, 0u);
    EXPECT_GT(r.core.ipc(), 0.1);
    EXPECT_EQ(r.mcuStats.checkedOps, 0u);
}

TEST_F(SystemTest, EveryMechanismCompletesEveryTinyRun)
{
    for (const char *name : {"mcf", "sjeng", "milc"}) {
        for (Mechanism mech :
             {Mechanism::kBaseline, Mechanism::kWatchdog, Mechanism::kPa,
              Mechanism::kAos, Mechanism::kPaAos}) {
            const RunResult r = runOne(name, mech, 20000);
            EXPECT_GT(r.core.committed, 0u)
                << name << "/" << baselines::mechanismName(mech);
        }
    }
}

TEST_F(SystemTest, InstrumentationAddsOpsAosRunsSameWork)
{
    const RunResult base = runOne("hmmer", Mechanism::kBaseline);
    const RunResult aos = runOne("hmmer", Mechanism::kAos);
    // Same program work (source-op bound), more committed micro-ops.
    EXPECT_GT(aos.core.committed, base.core.committed);
    // AOS instrumentation present: bounds ops and pac ops.
    EXPECT_GT(aos.mix.boundsOps, 0u);
    EXPECT_GT(aos.mix.pacOps, 0u);
    EXPECT_EQ(base.mix.boundsOps, 0u);
}

TEST_F(SystemTest, AosChecksSignedAccessesOnly)
{
    const RunResult r = runOne("hmmer", Mechanism::kAos);
    EXPECT_GT(r.mcuStats.checkedOps, 0u);
    EXPECT_GT(r.mcuStats.uncheckedOps, 0u);
    // hmmer: almost all data accesses go through signed pointers.
    EXPECT_GT(r.mix.signedLoads + r.mix.signedStores,
              (r.mix.unsignedLoads + r.mix.unsignedStores) / 2);
    // No violations in a benign workload.
    EXPECT_EQ(r.violations, 0u);
    EXPECT_EQ(r.mcuStats.boundsFailures, 0u);
}

TEST_F(SystemTest, BaselineHasNoSignedAccesses)
{
    const RunResult r = runOne("hmmer", Mechanism::kBaseline);
    EXPECT_EQ(r.mix.signedLoads, 0u);
    EXPECT_EQ(r.mix.signedStores, 0u);
}

TEST_F(SystemTest, WatchdogAddsCheckMicroOps)
{
    const RunResult r = runOne("hmmer", Mechanism::kWatchdog);
    EXPECT_GT(r.mix.wdOps, 0u);
    // Dynamic instruction inflation in the paper's reported ballpark
    // (+29..44% for check-heavy workloads).
    const double inflation =
        static_cast<double>(r.mix.total) / 60000.0;
    EXPECT_GT(inflation, 1.2);
    EXPECT_LT(inflation, 2.0);
}

TEST_F(SystemTest, PaSignsCallsAndPointerLoads)
{
    const RunResult r = runOne("povray", Mechanism::kPa);
    EXPECT_GT(r.mix.pacOps, 0u);
    EXPECT_EQ(r.mix.boundsOps, 0u);
}

TEST_F(SystemTest, PaAosCombinesBoth)
{
    const RunResult r = runOne("povray", Mechanism::kPaAos);
    EXPECT_GT(r.mix.boundsOps, 0u);
    EXPECT_GT(r.mix.pacOps, r.mix.boundsOps)
        << "pacma/pacia/autm should outnumber bndstr/bndclr";
    EXPECT_GE(r.core.cycles, runOne("povray", Mechanism::kAos).core.cycles)
        << "PA+AOS adds overhead on top of AOS";
}

TEST_F(SystemTest, AosSlowerThanBaselineOnCheckedWorkload)
{
    const RunResult base = runOne("hmmer", Mechanism::kBaseline, 100000);
    const RunResult aos = runOne("hmmer", Mechanism::kAos, 100000);
    EXPECT_GT(aos.core.cycles, base.core.cycles);
    // And within sanity: well under the Watchdog-class blowup.
    EXPECT_LT(static_cast<double>(aos.core.cycles) / base.core.cycles,
              2.0);
}

TEST_F(SystemTest, AosAddsNetworkTraffic)
{
    const RunResult base = runOne("gcc", Mechanism::kBaseline);
    const RunResult aos = runOne("gcc", Mechanism::kAos);
    EXPECT_GT(aos.networkTraffic, base.networkTraffic);
}

TEST_F(SystemTest, BwbGetsExercised)
{
    const RunResult r = runOne("hmmer", Mechanism::kAos);
    EXPECT_GT(r.bwb.hits + r.bwb.misses, 0u);
}

TEST_F(SystemTest, L1bOffPollutesDataCache)
{
    SystemOptions with_b;
    with_b.mech = Mechanism::kAos;
    with_b.measureOps = 60000;
    SystemOptions no_b = with_b;
    no_b.useL1B = false;

    AosSystem sys_with(workloads::profileByName("gcc"), with_b);
    const RunResult r_with = sys_with.run();
    const u64 l1d_misses_with = sys_with.memory().l1d().stats().misses;

    AosSystem sys_without(workloads::profileByName("gcc"), no_b);
    const RunResult r_without = sys_without.run();
    const u64 l1d_misses_without =
        sys_without.memory().l1d().stats().misses;

    EXPECT_GT(l1d_misses_without, l1d_misses_with);
    EXPECT_GE(r_without.core.cycles * 101 / 100, r_with.core.cycles)
        << "removing the L1-B should generally not help";
    (void)r_with;
    (void)r_without;
}

TEST_F(SystemTest, MallocHeavyWorkloadPopulatesHbt)
{
    const RunResult r = runOne("sphinx3", Mechanism::kAos, 30000);
    EXPECT_GT(r.hbt.inserts, 0u);
    EXPECT_GT(r.hbt.clears, 0u);
    EXPECT_GT(r.hbt.occupied, 0u);
}

TEST_F(SystemTest, LargeLiveSetTriggersGradualResize)
{
    // omnetpp's scaled 700K live objects exceed the 512K-record
    // initial table: warmup must resize it, as in SIX-A.1.
    const RunResult r = runOne("omnetpp", Mechanism::kAos, 20000);
    EXPECT_GE(r.hbt.resizes, 1u);
    EXPECT_GE(r.hbt.occupied, 600000u);
}

TEST_F(SystemTest, DeterministicAcrossRuns)
{
    const RunResult a = runOne("gobmk", Mechanism::kAos);
    const RunResult b = runOne("gobmk", Mechanism::kAos);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.core.committed, b.core.committed);
    EXPECT_EQ(a.networkTraffic, b.networkTraffic);
}

} // namespace
} // namespace aos::core
