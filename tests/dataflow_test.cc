/**
 * @file
 * Data-carrying protection tests: the precise-exception property of
 * SIII-C4 on real values — an illegal read leaks no secret, an illegal
 * write corrupts nothing — plus the sparse memory substrate itself.
 */

#include <cstring>

#include <gtest/gtest.h>

#include "core/aos_runtime.hh"
#include "memsim/sparse_memory.hh"

namespace aos {
namespace {

TEST(SparseMemory, UnmappedReadsAsZero)
{
    memsim::SparseMemory mem;
    EXPECT_EQ(mem.readByte(0x1234), 0u);
    EXPECT_EQ(mem.read64(0xdeadbeef), 0u);
    EXPECT_EQ(mem.mappedPages(), 0u);
}

TEST(SparseMemory, ByteAndWordRoundTrip)
{
    memsim::SparseMemory mem;
    mem.writeByte(0x1000, 0xab);
    EXPECT_EQ(mem.readByte(0x1000), 0xabu);
    mem.write64(0x2000, 0x1122334455667788ull);
    EXPECT_EQ(mem.read64(0x2000), 0x1122334455667788ull);
    // Little-endian byte order.
    EXPECT_EQ(mem.readByte(0x2000), 0x88u);
    EXPECT_EQ(mem.readByte(0x2007), 0x11u);
}

TEST(SparseMemory, CrossPageAccesses)
{
    memsim::SparseMemory mem;
    const Addr edge = memsim::SparseMemory::kPageSize - 4;
    mem.write64(edge, 0xcafebabe12345678ull);
    EXPECT_EQ(mem.read64(edge), 0xcafebabe12345678ull);
    EXPECT_EQ(mem.mappedPages(), 2u);
}

TEST(SparseMemory, BlockCopies)
{
    memsim::SparseMemory mem;
    const char secret[] = "SECRET_API_KEY_42";
    mem.writeBlock(0x5000, secret, sizeof(secret));
    char out[sizeof(secret)] = {};
    mem.readBlock(0x5000, out, sizeof(secret));
    EXPECT_STREQ(out, secret);
}

TEST(SparseMemory, SparsenessHolds)
{
    memsim::SparseMemory mem;
    mem.writeByte(0, 1);
    mem.writeByte(u64{1} << 40, 2);
    EXPECT_EQ(mem.mappedPages(), 2u);
    mem.clear();
    EXPECT_EQ(mem.mappedPages(), 0u);
    EXPECT_EQ(mem.readByte(0), 0u);
}

class DataFlowTest : public ::testing::Test
{
  protected:
    core::AosRuntime rt;
};

TEST_F(DataFlowTest, CheckedWriteThenReadRoundTrips)
{
    const Addr p = rt.malloc(64);
    ASSERT_EQ(rt.write64(p, 0x1234567890abcdefull), core::Status::kOk);
    u64 value = 0;
    ASSERT_EQ(rt.read64(p, &value), core::Status::kOk);
    EXPECT_EQ(value, 0x1234567890abcdefull);
}

TEST_F(DataFlowTest, IllegalReadLeaksNothing)
{
    // A secret lives in a neighbouring object; the attacker's OOB read
    // through their own pointer must fault *and* return no data.
    const Addr attacker = rt.malloc(64);
    const Addr secret_obj = rt.malloc(64);
    ASSERT_EQ(rt.write64(secret_obj, 0x5ec12e70ull),
              core::Status::kOk);

    u64 leaked = 0xfefefefefefefefeull;
    const Addr probe = attacker + (rt.strip(secret_obj) -
                                   rt.strip(attacker));
    EXPECT_EQ(rt.read64(probe, &leaked), core::Status::kBoundsViolation);
    EXPECT_EQ(leaked, 0xfefefefefefefefeull)
        << "the faulting read must not move data";
}

TEST_F(DataFlowTest, IllegalWriteCorruptsNothing)
{
    const Addr attacker = rt.malloc(64);
    const Addr victim = rt.malloc(64);
    ASSERT_EQ(rt.write64(victim, 0x600df00dull), core::Status::kOk);

    const Addr probe =
        attacker + (rt.strip(victim) - rt.strip(attacker));
    EXPECT_EQ(rt.write64(probe, 0xbadbadbadull),
              core::Status::kBoundsViolation);
    u64 value = 0;
    ASSERT_EQ(rt.read64(victim, &value), core::Status::kOk);
    EXPECT_EQ(value, 0x600df00dull) << "victim data must be intact";
}

TEST_F(DataFlowTest, UafReadReturnsNoStaleData)
{
    const Addr p = rt.malloc(64);
    ASSERT_EQ(rt.write64(p, 0xaaaa5555ull), core::Status::kOk);
    ASSERT_EQ(rt.free(p), core::Status::kOk);
    u64 value = 0;
    EXPECT_EQ(rt.read64(p, &value), core::Status::kBoundsViolation);
    EXPECT_EQ(value, 0u);
}

TEST_F(DataFlowTest, AttackerRawViewVsCheckedView)
{
    // The raw memory really does contain the secret (the attacker's
    // model is right about that); only the checked path is closed.
    const Addr secret_obj = rt.malloc(64);
    ASSERT_EQ(rt.write64(secret_obj, 0x5ec0000dull), core::Status::kOk);
    EXPECT_EQ(rt.dataMemory().read64(rt.strip(secret_obj)), 0x5ec0000dull)
        << "data is physically there";
}

} // namespace
} // namespace aos
