/**
 * @file
 * Tests for the dataflow static-analysis stack (DESIGN.md §11): the
 * abstract domains in isolation, the forward engine's chunk summaries,
 * bounds-elision planning, the AosBoundsElidePass rewrite, and the
 * ObligationChecker's dynamic validation of the emitted proofs. Also
 * pins the opKindName table exhaustively, since the diagnostics of
 * every layer above lean on it.
 */

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/dataflow/domains.hh"
#include "analysis/dataflow/elision_plan.hh"
#include "analysis/dataflow/engine.hh"
#include "compiler/aos_bounds_elide_pass.hh"
#include "compiler/aos_passes.hh"
#include "compiler/pa_pass.hh"
#include "ir/micro_op.hh"
#include "pa/pa_context.hh"
#include "staticcheck/obligation_checker.hh"
#include "staticcheck/stream_executor.hh"
#include "staticcheck/stream_verifier.hh"

namespace aos::analysis::dataflow {
namespace {

using ir::MicroOp;
using ir::OpKind;

const pa::PointerLayout kLayout(16, 46);

constexpr Addr kChunkA = 0x20001000;
constexpr Addr kChunkB = 0x20003000;

MicroOp
op(OpKind kind, Addr addr = 0, Addr chunk = 0, u32 size = 0)
{
    MicroOp out;
    out.kind = kind;
    out.addr = addr;
    out.chunkBase = chunk;
    out.size = size;
    return out;
}

MicroOp
ptrLoad(Addr addr, Addr chunk, u32 size = 8)
{
    MicroOp out = op(OpKind::kLoad, addr, chunk, size);
    out.loadsPointer = true;
    return out;
}

// --- opKindName: exhaustive round-trip over every OpKind. ---

TEST(OpKindName, EveryKindHasAUniqueNonFallbackName)
{
    std::set<std::string> names;
    for (u8 raw = 0; raw <= static_cast<u8>(OpKind::kPhaseMark); ++raw) {
        const char *name = ir::opKindName(static_cast<OpKind>(raw));
        ASSERT_NE(name, nullptr);
        EXPECT_STRNE(name, "");
        EXPECT_STRNE(name, "unknown") << "kind " << unsigned(raw);
        EXPECT_TRUE(names.insert(name).second)
            << "duplicate name '" << name << "' for kind " << unsigned(raw);
    }
    EXPECT_EQ(names.size(),
              static_cast<size_t>(OpKind::kPhaseMark) + 1);
    // Out-of-range values fall back instead of reading garbage.
    EXPECT_STREQ(ir::opKindName(static_cast<OpKind>(
                     static_cast<u8>(OpKind::kPhaseMark) + 1)),
                 "unknown");
}

// --- ProvenanceValue: flat lattice. ---

TEST(ProvenanceValue, JoinFollowsTheFlatLattice)
{
    const ChunkId a{kChunkA, 1};
    const ChunkId b{kChunkB, 1};
    const auto bot = ProvenanceValue::bottom();
    const auto va = ProvenanceValue::chunk(a);
    const auto vb = ProvenanceValue::chunk(b);
    const auto top = ProvenanceValue::unknown();

    EXPECT_TRUE(bot.join(va) == va);       // bottom is the identity
    EXPECT_TRUE(va.join(bot) == va);
    EXPECT_TRUE(va.join(va) == va);        // idempotent
    EXPECT_TRUE(va.join(vb).isUnknown());  // different chunks -> top
    EXPECT_TRUE(va.join(top).isUnknown()); // top absorbs
    EXPECT_TRUE(bot.join(bot).isBottom());
}

TEST(ProvenanceValue, GenerationsAreDistinctChunks)
{
    const auto gen1 = ProvenanceValue::chunk(ChunkId{kChunkA, 1});
    const auto gen2 = ProvenanceValue::chunk(ChunkId{kChunkA, 2});
    EXPECT_TRUE(gen1.join(gen2).isUnknown());
}

TEST(ProvenanceValue, TransfersPreserveAndForget)
{
    const auto va = ProvenanceValue::chunk(ChunkId{kChunkA, 1});
    EXPECT_TRUE(va.transferArith() == va);
    EXPECT_TRUE(ProvenanceValue::transferLoadUntracked().isUnknown());
}

// --- EscapeState: monotone two-point lattice. ---

TEST(EscapeState, TransfersAreMonotoneAndFirstCauseWins)
{
    EscapeState state;
    EXPECT_FALSE(state.escaped());
    state.onPointerLoaded();
    EXPECT_TRUE(state.escaped());
    EXPECT_EQ(state.cause(), EscapeState::Cause::kPointerLoaded);
    state.onUnknownAlias(); // later causes do not overwrite the first
    EXPECT_EQ(state.cause(), EscapeState::Cause::kPointerLoaded);
}

TEST(EscapeState, JoinIsLogicalOr)
{
    EscapeState local;
    EscapeState escaped;
    escaped.onStoredToMemory();
    EXPECT_TRUE(local.join(escaped).escaped());
    EXPECT_TRUE(escaped.join(local).escaped());
    EXPECT_FALSE(local.join(local).escaped());
    EXPECT_EQ(local.join(escaped).cause(),
              EscapeState::Cause::kStoredToMemory);
}

// --- OffsetRange: interval with widening. ---

TEST(OffsetRange, ObserveAndContains)
{
    OffsetRange range;
    EXPECT_TRUE(range.empty());
    EXPECT_TRUE(range.withinSize(0));
    range.observe(16, 8);
    EXPECT_EQ(range.lo(), 16u);
    EXPECT_EQ(range.hi(), 23u);
    EXPECT_TRUE(range.contains(20));
    EXPECT_FALSE(range.contains(24));
    EXPECT_TRUE(range.withinSize(24));
    EXPECT_FALSE(range.withinSize(23));
    range.observe(0, 8); // extends the hull downwards
    EXPECT_EQ(range.lo(), 0u);
    EXPECT_FALSE(range.widened());
}

TEST(OffsetRange, JoinTakesTheConvexHull)
{
    OffsetRange a;
    a.observe(0, 8);
    OffsetRange b;
    b.observe(32, 8);
    const OffsetRange hull = a.join(b);
    EXPECT_EQ(hull.lo(), 0u);
    EXPECT_EQ(hull.hi(), 39u);
    EXPECT_TRUE(a.join(OffsetRange()).contains(0)); // empty is identity
}

TEST(OffsetRange, RepeatedGrowthWidensToTheLimit)
{
    OffsetRange range;
    range.setWidenLimit(1024);
    for (unsigned i = 0; i <= OffsetRange::kWidenThreshold + 1; ++i)
        range.observe(8 * i, 8); // every observe extends the hull
    EXPECT_TRUE(range.widened());
    EXPECT_EQ(range.lo(), 0u);
    EXPECT_EQ(range.hi(), 1023u);
    // In-range re-observations are not lattice steps.
    OffsetRange stable;
    stable.observe(0, 64);
    for (unsigned i = 0; i < 4 * OffsetRange::kWidenThreshold; ++i)
        stable.observe(8, 8);
    EXPECT_FALSE(stable.widened());
}

// --- DataflowEngine: chunk summaries over a source stream. ---

TEST(DataflowEngine, SummarizesABenignLifecycle)
{
    DataflowEngine engine(kLayout);
    ir::VectorStream source(std::vector<MicroOp>{
        op(OpKind::kMallocMark, 0, kChunkA, 64),
        op(OpKind::kLoad, kChunkA + 16, kChunkA, 8),
        op(OpKind::kStore, kChunkA + 24, kChunkA, 8),
        op(OpKind::kFreeMark, 0, kChunkA)});
    EXPECT_EQ(engine.run(source), 4u);

    ASSERT_EQ(engine.summaries().size(), 1u);
    const ChunkSummary &sum = engine.summaries()[0];
    EXPECT_EQ(sum.id.base, kChunkA);
    EXPECT_EQ(sum.id.gen, 1u);
    EXPECT_EQ(sum.size, 64u);
    EXPECT_EQ(sum.accesses, 2u);
    EXPECT_EQ(sum.freeCount, 1u);
    EXPECT_EQ(sum.accessesAfterFree, 0u);
    EXPECT_TRUE(sum.allInBounds);
    EXPECT_FALSE(sum.escape.escaped());
    EXPECT_EQ(sum.range.lo(), 16u);
    EXPECT_EQ(sum.range.hi(), 31u);
}

TEST(DataflowEngine, PointerLoadEscapesTheChunk)
{
    DataflowEngine engine(kLayout);
    ir::VectorStream source(std::vector<MicroOp>{
        op(OpKind::kMallocMark, 0, kChunkA, 64),
        ptrLoad(kChunkA + 8, kChunkA)});
    engine.run(source);
    ASSERT_EQ(engine.summaries().size(), 1u);
    EXPECT_TRUE(engine.summaries()[0].escape.escaped());
    EXPECT_EQ(engine.summaries()[0].escape.cause(),
              EscapeState::Cause::kPointerLoaded);
    EXPECT_EQ(engine.summaries()[0].pointerLoads, 1u);
}

TEST(DataflowEngine, UnknownProvenanceAliasEscapesTheChunk)
{
    DataflowEngine engine(kLayout);
    ir::VectorStream source(std::vector<MicroOp>{
        op(OpKind::kMallocMark, 0, kChunkA, 64),
        op(OpKind::kStore, kChunkA + 8, 0, 8)}); // no provenance
    engine.run(source);
    ASSERT_EQ(engine.summaries().size(), 1u);
    EXPECT_EQ(engine.summaries()[0].escape.cause(),
              EscapeState::Cause::kUnknownAlias);
}

TEST(DataflowEngine, FlagsSpatialAndTemporalViolations)
{
    DataflowEngine engine(kLayout);
    ir::VectorStream source(std::vector<MicroOp>{
        op(OpKind::kMallocMark, 0, kChunkA, 64),
        op(OpKind::kLoad, kChunkA + 4096, kChunkA, 8), // out of bounds
        op(OpKind::kFreeMark, 0, kChunkA),
        op(OpKind::kLoad, kChunkA + 8, kChunkA, 8),    // use after free
        op(OpKind::kFreeMark, 0, kChunkA)});           // double free
    engine.run(source);
    ASSERT_EQ(engine.summaries().size(), 1u);
    const ChunkSummary &sum = engine.summaries()[0];
    EXPECT_FALSE(sum.allInBounds);
    EXPECT_EQ(sum.accessesAfterFree, 1u);
    EXPECT_EQ(sum.freeCount, 2u);
}

TEST(DataflowEngine, BaseReuseOpensANewGeneration)
{
    DataflowEngine engine(kLayout);
    ir::VectorStream source(std::vector<MicroOp>{
        op(OpKind::kMallocMark, 0, kChunkA, 64),
        op(OpKind::kFreeMark, 0, kChunkA),
        op(OpKind::kMallocMark, 0, kChunkA, 128),
        op(OpKind::kLoad, kChunkA + 8, kChunkA, 8)});
    engine.run(source);
    ASSERT_EQ(engine.summaries().size(), 2u);
    EXPECT_EQ(engine.summaries()[0].id.gen, 1u);
    EXPECT_EQ(engine.summaries()[1].id.gen, 2u);
    EXPECT_EQ(engine.summaries()[1].size, 128u);
    EXPECT_EQ(engine.summaries()[1].accesses, 1u);
    EXPECT_EQ(engine.summaries()[0].accesses, 0u);
}

TEST(DataflowEngine, ProvenanceQueryTracksTheLiveHeap)
{
    DataflowEngine engine(kLayout);
    ir::VectorStream source(std::vector<MicroOp>{
        op(OpKind::kMallocMark, 0, kChunkA, 64)});
    engine.run(source);
    EXPECT_TRUE(engine.provenanceOf(kChunkA + 8).isChunk());
    EXPECT_EQ(engine.provenanceOf(kChunkA + 8).id().base, kChunkA);
    EXPECT_TRUE(engine.provenanceOf(kChunkB).isUnknown());
    ASSERT_NE(engine.current(kChunkA), nullptr);
    EXPECT_EQ(engine.current(kChunkB), nullptr);
}

// --- planBoundsElision: verdicts and obligations. ---

ElisionPlan
planFor(const std::vector<MicroOp> &source)
{
    DataflowEngine engine(kLayout);
    ir::VectorStream stream(source);
    engine.run(stream);
    return planBoundsElision(engine);
}

TEST(ElisionPlanning, ProvenChunkCarriesAFullObligation)
{
    const ElisionPlan plan = planFor(
        {op(OpKind::kMallocMark, 0, kChunkA, 64),
         op(OpKind::kLoad, kChunkA + 16, kChunkA, 8),
         op(OpKind::kFreeMark, 0, kChunkA)});
    EXPECT_TRUE(plan.elided(kChunkA, 1));
    EXPECT_EQ(plan.stats().chunksSeen, 1u);
    EXPECT_EQ(plan.stats().chunksElided, 1u);
    const ProofObligation *ob = plan.find(kChunkA, 1);
    ASSERT_NE(ob, nullptr);
    EXPECT_EQ(ob->size, 64u);
    EXPECT_EQ(ob->assumptions,
              u32{kNonEscaping | kInBounds | kTemporalSafe});
    EXPECT_EQ(ob->accesses, 1u);
    EXPECT_EQ(ob->minOff, 16u);
    EXPECT_EQ(ob->maxOff, 23u);
}

TEST(ElisionPlanning, RejectionsArePartitionedByFirstFailedAssumption)
{
    // Escaped: pointer load.
    const ElisionPlan escaped = planFor(
        {op(OpKind::kMallocMark, 0, kChunkA, 64),
         ptrLoad(kChunkA + 8, kChunkA)});
    EXPECT_FALSE(escaped.elided(kChunkA, 1));
    EXPECT_EQ(escaped.stats().rejectEscaped, 1u);

    // Out of bounds.
    const ElisionPlan oob = planFor(
        {op(OpKind::kMallocMark, 0, kChunkA, 64),
         op(OpKind::kLoad, kChunkA + 4096, kChunkA, 8)});
    EXPECT_FALSE(oob.elided(kChunkA, 1));
    EXPECT_EQ(oob.stats().rejectOutOfBounds, 1u);

    // Temporal: double free.
    const ElisionPlan dfree = planFor(
        {op(OpKind::kMallocMark, 0, kChunkA, 64),
         op(OpKind::kFreeMark, 0, kChunkA),
         op(OpKind::kFreeMark, 0, kChunkA)});
    EXPECT_FALSE(dfree.elided(kChunkA, 1));
    EXPECT_EQ(dfree.stats().rejectTemporal, 1u);

    // Temporal: use after free.
    const ElisionPlan uaf = planFor(
        {op(OpKind::kMallocMark, 0, kChunkA, 64),
         op(OpKind::kFreeMark, 0, kChunkA),
         op(OpKind::kLoad, kChunkA + 8, kChunkA, 8)});
    EXPECT_FALSE(uaf.elided(kChunkA, 1));
    EXPECT_EQ(uaf.stats().rejectTemporal, 1u);

    // Zero size can never be proven in bounds.
    const ElisionPlan zero =
        planFor({op(OpKind::kMallocMark, 0, kChunkA, 0)});
    EXPECT_FALSE(zero.elided(kChunkA, 1));
    EXPECT_EQ(zero.stats().rejectZeroSize, 1u);
}

TEST(ElisionPlanning, NeverAccessedChunkIsElidable)
{
    // The warmup heaps are full of these; they are exactly the dead
    // instrumentation the pass exists to drop.
    const ElisionPlan plan = planFor(
        {op(OpKind::kMallocMark, 0, kChunkA, 64),
         op(OpKind::kFreeMark, 0, kChunkA)});
    EXPECT_TRUE(plan.elided(kChunkA, 1));
    const ProofObligation *ob = plan.find(kChunkA, 1);
    ASSERT_NE(ob, nullptr);
    EXPECT_EQ(ob->accesses, 0u);
}

// --- AosBoundsElidePass + ObligationChecker end to end. ---

class BoundsElisionPipeline : public ::testing::Test
{
  protected:
    BoundsElisionPipeline() : pa(kLayout) {}

    /** Source program: chunk A is provably elidable, chunk B escapes
     *  via a pointer load (and so keeps its instrumentation). */
    std::vector<MicroOp>
    sourceProgram() const
    {
        return {op(OpKind::kMallocMark, 0, kChunkA, 64),
                op(OpKind::kLoad, kChunkA + 16, kChunkA, 8),
                op(OpKind::kStore, kChunkA + 24, kChunkA, 8),
                op(OpKind::kMallocMark, 0, kChunkB, 64),
                ptrLoad(kChunkB + 8, kChunkB),
                op(OpKind::kStore, kChunkB + 16, kChunkB, 8),
                op(OpKind::kFreeMark, 0, kChunkA),
                op(OpKind::kFreeMark, 0, kChunkB)};
    }

    std::vector<MicroOp>
    lower(std::vector<MicroOp> input)
    {
        ir::VectorStream source(std::move(input));
        compiler::AosOptPass opt(&source);
        compiler::AosBackendPass backend(&opt, &pa);
        compiler::PaPass papass(&backend, compiler::PaMode::kPaAos);
        std::vector<MicroOp> out;
        MicroOp next;
        while (papass.next(next))
            out.push_back(next);
        return out;
    }

    std::vector<MicroOp>
    elide(const std::vector<MicroOp> &lowered, const ElisionPlan &plan,
          compiler::BoundsElideStats *stats = nullptr)
    {
        ir::VectorStream source(lowered);
        compiler::AosBoundsElidePass pass(&source, kLayout, &plan);
        std::vector<MicroOp> out;
        MicroOp next;
        while (pass.next(next))
            out.push_back(next);
        if (stats)
            *stats = pass.stats();
        return out;
    }

    pa::PaContext pa;
};

TEST_F(BoundsElisionPipeline, DropsTheQuadrupleForProvenChunksOnly)
{
    const ElisionPlan plan = planFor(sourceProgram());
    EXPECT_TRUE(plan.elided(kChunkA, 1));
    EXPECT_FALSE(plan.elided(kChunkB, 1));

    const auto full = lower(sourceProgram());
    compiler::BoundsElideStats stats;
    const auto elided = elide(full, plan, &stats);

    EXPECT_EQ(stats.bndstrSeen, 2u);
    EXPECT_EQ(stats.bndstrElided, 1u);
    EXPECT_EQ(stats.bndclrSeen, 2u);
    EXPECT_EQ(stats.bndclrElided, 1u);
    EXPECT_GE(stats.pacmaElided, 1u);
    EXPECT_EQ(stats.accessesStripped, 2u); // A's two accesses
    EXPECT_EQ(stats.autmElided, 0u);       // escaping B keeps its autm
    EXPECT_LT(elided.size(), full.size());

    // B's instrumentation is intact: same bndstr/bndclr counts for it.
    unsigned b_bndstr = 0;
    for (const auto &o : elided)
        if (o.kind == OpKind::kBndstr && o.chunkBase == kChunkB)
            ++b_bndstr;
    EXPECT_EQ(b_bndstr, 1u);
}

TEST_F(BoundsElisionPipeline, ElidedStreamPassesTheVerifierContracts)
{
    const ElisionPlan plan = planFor(sourceProgram());
    const auto elided = elide(lower(sourceProgram()), plan);

    staticcheck::VerifierOptions options;
    options.layout = kLayout;
    options.requireAosLowering = true;
    options.elisionPlan = &plan;
    const auto diags = staticcheck::StreamVerifier::verify(elided, options);
    EXPECT_TRUE(diags.empty()) << staticcheck::toString(diags);

    // Without the plan the same stream is (rightly) suspicious: the
    // SC15..SC18 contracts are what make elision verifiable.
    options.elisionPlan = nullptr;
    const auto bare = staticcheck::StreamVerifier::verify(elided, options);
    EXPECT_FALSE(bare.empty());
}

TEST_F(BoundsElisionPipeline, ObligationCheckerAcceptsASoundPlan)
{
    const ElisionPlan plan = planFor(sourceProgram());
    const auto full = lower(sourceProgram());
    const auto elided = elide(full, plan);

    staticcheck::ObligationCheckOptions options;
    options.layout = kLayout;
    staticcheck::ObligationChecker checker(options);
    const auto report = checker.check(full, elided, plan);
    EXPECT_TRUE(report.ok) << report.summary();
    EXPECT_TRUE(report.benignParity);
    EXPECT_EQ(report.obligationsChecked, plan.obligations().size());
    EXPECT_EQ(report.obligationsViolated, 0u);
    EXPECT_TRUE(report.faultsChecked);
    EXPECT_TRUE(report.faultParity) << report.summary();
    EXPECT_EQ(report.victimsInElidedRegions, 0u);
    EXPECT_EQ(report.simulatorFaults, 0u);
}

TEST_F(BoundsElisionPipeline, ObligationCheckerRejectsAnUnsoundPlan)
{
    // Forge a plan that elides the escaping chunk B: detections its
    // instrumentation produces vanish from the elided stream, which
    // phase 1 (benign parity) or phase 2 (obligation replay) must flag.
    std::vector<MicroOp> attack = sourceProgram();
    // The attack: an out-of-bounds store through B's signed pointer.
    attack.insert(attack.begin() + 6,
                  op(OpKind::kStore, kChunkB + 4096, kChunkB, 8));

    // Plan against a misleading view that hides the attack and B's
    // pointer load, so the analysis wrongly proves B elidable.
    std::vector<MicroOp> misleading = attack;
    misleading.erase(misleading.begin() + 6);
    misleading[4].loadsPointer = false;
    DataflowEngine engine(kLayout);
    ir::VectorStream stream(misleading);
    engine.run(stream);
    const ElisionPlan plan = planBoundsElision(engine);
    ASSERT_TRUE(plan.elided(kChunkB, 1));

    const auto full = lower(attack);
    const auto elided = elide(full, plan);

    staticcheck::ObligationCheckOptions options;
    options.layout = kLayout;
    options.checkFaults = false;
    staticcheck::ObligationChecker checker(options);
    const auto report = checker.check(full, elided, plan);
    EXPECT_FALSE(report.ok) << report.summary();
    EXPECT_FALSE(report.failures.empty());
}

} // namespace
} // namespace aos::analysis::dataflow
