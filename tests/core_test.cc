/**
 * @file
 * Tests for the out-of-order core timing model.
 */

#include <gtest/gtest.h>

#include "cpu/ooo_core.hh"

namespace aos::cpu {
namespace {

ir::MicroOp
op(ir::OpKind kind, Addr addr = 0)
{
    ir::MicroOp out;
    out.kind = kind;
    out.addr = addr;
    out.size = 8;
    return out;
}

class CoreTest : public ::testing::Test
{
  protected:
    CoreTest() : layout(16, 46), mem() {}

    CoreStats
    runOps(std::vector<ir::MicroOp> ops, const CoreConfig &config = {},
           mcu::MemoryCheckUnit *mcu_ptr = nullptr)
    {
        OoOCore core(config, layout, &mem, mcu_ptr);
        ir::VectorStream stream(std::move(ops));
        return core.run(stream);
    }

    pa::PointerLayout layout;
    memsim::MemorySystem mem;
};

TEST_F(CoreTest, EmptyStreamTerminates)
{
    const CoreStats stats = runOps({});
    EXPECT_EQ(stats.committed, 0u);
    EXPECT_LT(stats.cycles, 5u);
}

TEST_F(CoreTest, CommitsEveryOp)
{
    std::vector<ir::MicroOp> ops(1000, op(ir::OpKind::kIntAlu));
    const CoreStats stats = runOps(std::move(ops));
    EXPECT_EQ(stats.committed, 1000u);
}

TEST_F(CoreTest, WidthBoundsAluThroughput)
{
    // 8-wide machine: 8000 single-cycle ops need >= 1000 cycles, and
    // with no stalls should be close to that.
    std::vector<ir::MicroOp> ops(8000, op(ir::OpKind::kIntAlu));
    const CoreStats stats = runOps(std::move(ops));
    EXPECT_GE(stats.cycles, 1000u);
    EXPECT_LT(stats.cycles, 1100u);
    EXPECT_GT(stats.ipc(), 7.0);
}

TEST_F(CoreTest, CacheMissStallsCommit)
{
    // A single cold load among ALU ops costs roughly a DRAM round trip.
    std::vector<ir::MicroOp> base(800, op(ir::OpKind::kIntAlu));
    const CoreStats fast = runOps(base);

    std::vector<ir::MicroOp> with_load = base;
    with_load[400] = op(ir::OpKind::kLoad, 0x20000000);
    memsim::MemorySystem fresh;
    OoOCore core(CoreConfig{}, layout, &fresh, nullptr);
    ir::VectorStream stream(std::move(with_load));
    const CoreStats slow = core.run(stream);
    EXPECT_GT(slow.cycles, fast.cycles + 50);
}

TEST_F(CoreTest, LoadsAndStoresCounted)
{
    std::vector<ir::MicroOp> ops;
    for (int i = 0; i < 10; ++i)
        ops.push_back(op(ir::OpKind::kLoad, 0x20000000 + i * 8));
    for (int i = 0; i < 5; ++i)
        ops.push_back(op(ir::OpKind::kStore, 0x20001000 + i * 8));
    const CoreStats stats = runOps(std::move(ops));
    EXPECT_EQ(stats.loads, 10u);
    EXPECT_EQ(stats.stores, 5u);
}

TEST_F(CoreTest, PredictableBranchesAreCheap)
{
    std::vector<ir::MicroOp> ops;
    for (int i = 0; i < 4000; ++i) {
        ir::MicroOp b = op(ir::OpKind::kBranch);
        b.branchId = 1;
        b.taken = true;
        ops.push_back(b);
    }
    const CoreStats stats = runOps(std::move(ops));
    EXPECT_EQ(stats.branches, 4000u);
    EXPECT_LT(stats.mispredicts, 100u);
}

TEST_F(CoreTest, MispredictsCostCycles)
{
    // Alternating hard-random outcomes across many branch ids.
    std::vector<ir::MicroOp> easy, hard;
    for (int i = 0; i < 4000; ++i) {
        ir::MicroOp b = op(ir::OpKind::kBranch);
        b.branchId = static_cast<u32>(i % 64);
        b.taken = true;
        easy.push_back(b);
        b.taken = (i * 2654435761u) & 0x10000; // pseudo-random
        hard.push_back(b);
    }
    const CoreStats easy_stats = runOps(std::move(easy));
    memsim::MemorySystem fresh;
    OoOCore core(CoreConfig{}, layout, &fresh, nullptr);
    ir::VectorStream stream(std::move(hard));
    const CoreStats hard_stats = core.run(stream);
    EXPECT_GT(hard_stats.mispredicts, easy_stats.mispredicts + 100);
    EXPECT_GT(hard_stats.cycles, easy_stats.cycles * 2);
}

TEST_F(CoreTest, PacOpsTakeFourCycles)
{
    // A long dependence-free string of pacma ops is throughput-bound,
    // not latency-bound; but each op's latency shows at the commit
    // point of a single op.
    std::vector<ir::MicroOp> one{op(ir::OpKind::kPacma)};
    const CoreStats stats = runOps(std::move(one));
    EXPECT_GE(stats.cycles, 4u);
}

TEST_F(CoreTest, McuBackPressureStallsIssue)
{
    // With a 2-entry MCQ, a burst of signed loads (cold bounds
    // accesses) must throttle issue via mcqFullStalls.
    bounds::HashedBoundsTable hbt(0x3000'0000'0000ull, 16, 1);
    bounds::BoundsWayBuffer bwb(64);
    for (int i = 0; i < 8; ++i)
        hbt.insert(3, bounds::compress(0x20000000 + i * 0x1000, 256));
    mcu::McuConfig mcfg;
    mcfg.mcqEntries = 2;
    mcu::MemoryCheckUnit unit(mcfg, layout, &hbt, &bwb, &mem);

    std::vector<ir::MicroOp> ops;
    for (int i = 0; i < 64; ++i) {
        ops.push_back(op(ir::OpKind::kLoad,
                         layout.compose(0x20000000 + (i % 8) * 0x1000, 3,
                                        2)));
    }
    const CoreStats stats = runOps(std::move(ops), CoreConfig{}, &unit);
    EXPECT_EQ(stats.committed, 64u);
    EXPECT_GT(stats.mcqFullStalls, 0u);
}

TEST_F(CoreTest, DelayedRetirementWaitsForValidation)
{
    bounds::HashedBoundsTable hbt(0x3000'0000'0000ull, 16, 1);
    bounds::BoundsWayBuffer bwb(64);
    hbt.insert(3, bounds::compress(0x20000000, 256));
    mcu::MemoryCheckUnit unit(mcu::McuConfig{}, layout, &hbt, &bwb, &mem);

    std::vector<ir::MicroOp> ops;
    ops.push_back(op(ir::OpKind::kLoad, layout.compose(0x20000000, 3, 2)));
    const CoreStats stats = runOps(std::move(ops), CoreConfig{}, &unit);
    EXPECT_EQ(stats.committed, 1u);
    // The signed load cannot retire before its (cold, ~DRAM-latency)
    // bounds check completes.
    EXPECT_GT(stats.cycles, 100u);
    EXPECT_GT(stats.retireDelayed, 0u);
}

TEST_F(CoreTest, BndstrRetiresAfterOccupancyCheck)
{
    bounds::HashedBoundsTable hbt(0x3000'0000'0000ull, 16, 1);
    bounds::BoundsWayBuffer bwb(64);
    mcu::MemoryCheckUnit unit(mcu::McuConfig{}, layout, &hbt, &bwb, &mem);

    std::vector<ir::MicroOp> ops;
    ir::MicroOp b = op(ir::OpKind::kBndstr,
                       layout.compose(0x20000000, 3, 2));
    b.size = 128;
    ops.push_back(b);
    ops.push_back(op(ir::OpKind::kIntAlu));
    const CoreStats stats = runOps(std::move(ops), CoreConfig{}, &unit);
    EXPECT_EQ(stats.committed, 2u);
    // The machine drains fully: the post-commit table write happened.
    EXPECT_EQ(hbt.stats().inserts, 1u);
    EXPECT_TRUE(unit.empty());
}

TEST_F(CoreTest, RobLimitRespected)
{
    // A tiny ROB with a long-latency op at the head forces issue
    // stalls.
    CoreConfig config;
    config.robEntries = 4;
    std::vector<ir::MicroOp> ops;
    ops.push_back(op(ir::OpKind::kLoad, 0x20000000)); // cold miss
    for (int i = 0; i < 100; ++i)
        ops.push_back(op(ir::OpKind::kIntAlu));
    const CoreStats stats = runOps(std::move(ops), config);
    EXPECT_GT(stats.robFullStalls, 0u);
}

TEST_F(CoreTest, LsqLimitRespected)
{
    CoreConfig config;
    config.lqEntries = 2;
    std::vector<ir::MicroOp> ops;
    ops.push_back(op(ir::OpKind::kLoad, 0x20000000)); // cold DRAM miss
    for (int i = 0; i < 30; ++i)
        ops.push_back(op(ir::OpKind::kLoad, 0x20000000)); // hits
    const CoreStats stats = runOps(std::move(ops), config);
    EXPECT_EQ(stats.loads, 31u);
    EXPECT_GT(stats.lsqFullStalls, 0u);
}

} // namespace
} // namespace aos::cpu
