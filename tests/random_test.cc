/**
 * @file
 * Unit tests for the xoshiro256** generator.
 */

#include <gtest/gtest.h>

#include "common/random.hh"

namespace aos {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, NameSeedingIsStable)
{
    Rng a(std::string_view("gcc")), b(std::string_view("gcc"));
    Rng c(std::string_view("mcf"));
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const u64 v = rng.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo = saw_lo || v == 3;
        saw_hi = saw_hi || v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng rng(13);
    int hits = 0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(Rng, SkewedFavorsSmallValues)
{
    Rng rng(17);
    constexpr u64 kBound = 1000;
    u64 below_half = 0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i) {
        const u64 v = rng.skewed(kBound);
        ASSERT_LT(v, kBound);
        below_half += v < kBound / 2;
    }
    // Quadratic skew: P(v < n/2) = sqrt(1/2) ~ 0.707.
    EXPECT_GT(static_cast<double>(below_half) / kN, 0.65);
}

TEST(Rng, SkewedDegenerateBounds)
{
    Rng rng(19);
    EXPECT_EQ(rng.skewed(0), 0u);
    EXPECT_EQ(rng.skewed(1), 0u);
}

TEST(Rng, BitUniformity)
{
    // Every output bit should be set roughly half the time.
    Rng rng(23);
    constexpr int kN = 20000;
    int counts[64] = {};
    for (int i = 0; i < kN; ++i) {
        u64 v = rng.next();
        for (int b = 0; b < 64; ++b)
            counts[b] += (v >> b) & 1;
    }
    for (int b = 0; b < 64; ++b)
        EXPECT_NEAR(static_cast<double>(counts[b]) / kN, 0.5, 0.03)
            << "bit " << b;
}

} // namespace
} // namespace aos
