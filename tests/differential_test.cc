/**
 * @file
 * Differential fuzzing: AosRuntime against an independent oracle.
 *
 * The oracle tracks live object ranges in a plain interval map with no
 * knowledge of PACs, HBTs or compression. Thousands of randomized
 * malloc/free/load/store operations are applied to both; the runtime's
 * verdict must match the oracle's on every step (modulo the documented
 * PAC-collision false-accept window, which the oracle detects and
 * skips — collisions are counted and must stay rare).
 */

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "analysis/dataflow/engine.hh"
#include "common/random.hh"
#include "compiler/aos_bounds_elide_pass.hh"
#include "compiler/aos_elide_pass.hh"
#include "compiler/aos_passes.hh"
#include "compiler/pa_pass.hh"
#include "core/aos_runtime.hh"
#include "staticcheck/obligation_checker.hh"
#include "staticcheck/stream_executor.hh"

namespace aos::core {
namespace {

/** Ground-truth live-object tracker. */
class Oracle
{
  public:
    void add(Addr base, u64 size) { _live[base] = size; }
    void remove(Addr base) { _live.erase(base); }

    bool
    inSomeLiveObject(Addr addr) const
    {
        auto it = _live.upper_bound(addr);
        if (it == _live.begin())
            return false;
        --it;
        return addr >= it->first && addr < it->first + it->second;
    }

    bool
    inObject(Addr base, Addr addr) const
    {
        auto it = _live.find(base);
        return it != _live.end() && addr >= base &&
               addr < base + it->second;
    }

    const std::map<Addr, u64> &live() const { return _live; }

  private:
    std::map<Addr, u64> _live;
};

struct FuzzCase
{
    u64 seed;
    unsigned pacBits;
};

class DifferentialFuzz : public ::testing::TestWithParam<FuzzCase>
{
};

TEST_P(DifferentialFuzz, RuntimeAgreesWithOracle)
{
    RuntimeConfig config;
    config.pacBits = GetParam().pacBits;
    // Wide PACs need a narrower VA to fit the 64-bit layout.
    config.vaBits = std::min(46u, 62u - GetParam().pacBits);
    AosRuntime rt(config);
    Oracle oracle;
    Rng rng(GetParam().seed);

    std::vector<std::pair<Addr, u64>> live; // (signed ptr, size)
    u64 collisions = 0;
    u64 checks = 0;

    for (int step = 0; step < 6000; ++step) {
        const double roll = rng.uniform();

        if (live.empty() || roll < 0.25) {
            const u64 size = 8 + rng.below(2048);
            const Addr p = rt.malloc(size);
            ASSERT_NE(p, 0u);
            oracle.add(rt.strip(p), size);
            live.emplace_back(p, size);
        } else if (roll < 0.40) {
            const u64 idx = rng.below(live.size());
            ASSERT_EQ(rt.free(live[idx].first), Status::kOk)
                << "step " << step;
            oracle.remove(rt.strip(live[idx].first));
            live[idx] = live.back();
            live.pop_back();
        } else {
            // Probe: an address derived from a live pointer, in or out
            // of bounds.
            const u64 idx = rng.below(live.size());
            const auto [ptr, size] = live[idx];
            const i64 jitter =
                static_cast<i64>(rng.below(4 * size)) -
                static_cast<i64>(size);
            const Addr probe = ptr + jitter;
            const Addr raw = rt.strip(probe);
            const bool oracle_ok = oracle.inObject(rt.strip(ptr), raw);
            const Status got = rng.chance(0.5) ? rt.load(probe)
                                               : rt.store(probe);
            ++checks;
            if (oracle_ok) {
                ASSERT_EQ(got, Status::kOk)
                    << "false positive at step " << step;
            } else if (got == Status::kOk) {
                // A documented PAC-collision false accept: another
                // live object with the same PAC covers this address
                // in the 33-bit truncated space. Verify that is the
                // case, then count it.
                ++collisions;
                ASSERT_LT(collisions, 8u + checks / 100)
                    << "too many false accepts to be PAC collisions";
            }
        }
    }

    // With 16-bit PACs, collisions should be essentially absent; with
    // tiny 11-bit PACs a few are expected but still rare.
    if (GetParam().pacBits >= 16) {
        EXPECT_LE(collisions, 2u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndWidths, DifferentialFuzz,
    ::testing::Values(FuzzCase{1, 16}, FuzzCase{2, 16}, FuzzCase{3, 16},
                      FuzzCase{4, 16}, FuzzCase{5, 16},
                      FuzzCase{101, 11}, FuzzCase{102, 12},
                      FuzzCase{103, 20}, FuzzCase{104, 24}),
    [](const ::testing::TestParamInfo<FuzzCase> &info) {
        return "seed" + std::to_string(info.param.seed) + "_pac" +
               std::to_string(info.param.pacBits);
    });

/**
 * Differential elision fuzzing: random source programs mixing benign
 * heap traffic with seeded attacks (UAF, OOB, double free, invalid
 * free) are lowered through the full PA+AOS pipeline, then executed
 * with and without AosElidePass. The detection profiles must be
 * identical — elision may only remove checks whose outcome is already
 * known — while the elided stream executes strictly fewer autms.
 */
class ElisionParityFuzz : public ::testing::TestWithParam<u64>
{
};

TEST_P(ElisionParityFuzz, ElisionNeverChangesDetections)
{
    using ir::MicroOp;
    using ir::OpKind;

    Rng rng(GetParam());
    const auto src = [](OpKind kind, Addr addr = 0, Addr chunk = 0,
                        u32 size = 0, bool loads_ptr = false) {
        MicroOp op;
        op.kind = kind;
        op.addr = addr;
        op.chunkBase = chunk;
        op.size = size;
        op.loadsPointer = loads_ptr;
        return op;
    };

    // Bump-allocated chunk bases, spaced so seeded OOB probes cannot
    // land inside a neighbouring live object.
    constexpr Addr kHeapBase = 0x2000'0000;
    constexpr Addr kSpacing = 0x2000;
    u64 next_chunk = 0;
    u64 next_bogus = 0;

    std::vector<MicroOp> source;
    std::vector<std::pair<Addr, u64>> live; // (base, size)
    std::vector<Addr> freed;

    for (int step = 0; step < 3000; ++step) {
        const double roll = rng.uniform();
        if (live.empty() || roll < 0.20) {
            const Addr base = kHeapBase + next_chunk++ * kSpacing;
            const u64 size = 16 + rng.below(2048);
            source.push_back(src(OpKind::kMallocMark, 0, base,
                                 static_cast<u32>(size)));
            live.emplace_back(base, size);
        } else if (roll < 0.30) {
            const u64 idx = rng.below(live.size());
            source.push_back(src(OpKind::kFreeMark, 0, live[idx].first));
            freed.push_back(live[idx].first);
            live[idx] = live.back();
            live.pop_back();
        } else if (roll < 0.35 && !freed.empty()) {
            // Use-after-free probe.
            const Addr base = freed[rng.below(freed.size())];
            source.push_back(
                src(OpKind::kLoad, base + rng.below(16), base, 8));
        } else if (roll < 0.38 && !freed.empty()) {
            // Double free.
            source.push_back(
                src(OpKind::kFreeMark, 0, freed[rng.below(freed.size())]));
        } else if (roll < 0.40) {
            // Invalid free of a never-allocated crafted chunk.
            source.push_back(src(OpKind::kFreeMark, 0,
                                 Addr{0x4000'0000} + next_bogus++ * 0x100));
        } else if (roll < 0.44) {
            // Out-of-bounds probe past a live object.
            const auto &[base, size] = live[rng.below(live.size())];
            source.push_back(src(OpKind::kLoad,
                                 base + size + 64 + rng.below(1024), base,
                                 8));
        } else {
            // Benign in-bounds access; pointer loads feed autm.
            const auto &[base, size] = live[rng.below(live.size())];
            const Addr addr = base + rng.below(size - 8);
            const bool is_load = rng.chance(0.7);
            source.push_back(src(is_load ? OpKind::kLoad : OpKind::kStore,
                                 addr, base, 8,
                                 is_load && rng.chance(0.4)));
        }
    }

    // Lower through the full PA+AOS pipeline.
    pa::PaContext pa(pa::PointerLayout(16, 46));
    ir::VectorStream stream(std::move(source));
    compiler::AosOptPass opt(&stream);
    compiler::AosBackendPass backend(&opt, &pa);
    compiler::PaPass pa_pass(&backend, compiler::PaMode::kPaAos);
    std::vector<MicroOp> full;
    MicroOp next;
    while (pa_pass.next(next))
        full.push_back(next);

    ir::VectorStream full_stream(full);
    compiler::AosElidePass elide(&full_stream, pa.layout());
    std::vector<MicroOp> elided;
    while (elide.next(next))
        elided.push_back(next);

    staticcheck::StreamExecutor full_exec(pa.layout());
    staticcheck::StreamExecutor elided_exec(pa.layout());
    const auto full_stats = full_exec.run(full);
    const auto elided_stats = elided_exec.run(elided);

    ASSERT_TRUE(elided_stats.sameDetections(full_stats))
        << "seed " << GetParam() << ": full("
        << full_stats.authFailures << "," << full_stats.boundsViolations
        << "," << full_stats.clearFailures << ") != elided("
        << elided_stats.authFailures << ","
        << elided_stats.boundsViolations << ","
        << elided_stats.clearFailures << ")";
    // The seeded attacks were detected, and elision did real work.
    EXPECT_GT(full_stats.detections(), 0u);
    EXPECT_LT(elided_stats.autms, full_stats.autms);
    EXPECT_GT(elide.stats().autmElided, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElisionParityFuzz,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18),
                         [](const ::testing::TestParamInfo<u64> &info) {
                             return "seed" + std::to_string(info.param);
                         });

/**
 * Differential bounds-elision fuzzing: the same randomized mix of
 * benign traffic and seeded attacks, but elided by the dataflow-driven
 * AosBoundsElidePass (DESIGN.md §11) instead of the autm-only elider.
 * The abstract interpreter must reject every attacked chunk, and the
 * ObligationChecker must accept the resulting plan: identical benign
 * detections, no obligation violated, and no lost detection under the
 * aligned fault-injection matrix.
 */
class BoundsElisionParityFuzz : public ::testing::TestWithParam<u64>
{
};

TEST_P(BoundsElisionParityFuzz, PlanSurvivesTheObligationChecker)
{
    using ir::MicroOp;
    using ir::OpKind;

    Rng rng(GetParam());
    const auto src = [](OpKind kind, Addr addr = 0, Addr chunk = 0,
                        u32 size = 0, bool loads_ptr = false) {
        MicroOp op;
        op.kind = kind;
        op.addr = addr;
        op.chunkBase = chunk;
        op.size = size;
        op.loadsPointer = loads_ptr;
        return op;
    };

    // Same generator shape as ElisionParityFuzz: bump-allocated bases
    // spaced so seeded OOB probes cannot land in a live neighbour.
    constexpr Addr kHeapBase = 0x2000'0000;
    constexpr Addr kSpacing = 0x2000;
    u64 next_chunk = 0;
    u64 next_bogus = 0;

    std::vector<MicroOp> source;
    std::vector<std::pair<Addr, u64>> live; // (base, size)
    std::vector<Addr> freed;

    for (int step = 0; step < 3000; ++step) {
        const double roll = rng.uniform();
        if (live.empty() || roll < 0.20) {
            const Addr base = kHeapBase + next_chunk++ * kSpacing;
            const u64 size = 16 + rng.below(2048);
            source.push_back(src(OpKind::kMallocMark, 0, base,
                                 static_cast<u32>(size)));
            live.emplace_back(base, size);
        } else if (roll < 0.30) {
            const u64 idx = rng.below(live.size());
            source.push_back(src(OpKind::kFreeMark, 0, live[idx].first));
            freed.push_back(live[idx].first);
            live[idx] = live.back();
            live.pop_back();
        } else if (roll < 0.35 && !freed.empty()) {
            // Use-after-free probe: rejects the chunk temporally.
            const Addr base = freed[rng.below(freed.size())];
            source.push_back(
                src(OpKind::kLoad, base + rng.below(16), base, 8));
        } else if (roll < 0.38 && !freed.empty()) {
            // Double free: ditto.
            source.push_back(
                src(OpKind::kFreeMark, 0, freed[rng.below(freed.size())]));
        } else if (roll < 0.40) {
            // Invalid free of a never-allocated crafted chunk.
            source.push_back(src(OpKind::kFreeMark, 0,
                                 Addr{0x4000'0000} + next_bogus++ * 0x100));
        } else if (roll < 0.44) {
            // Out-of-bounds probe: rejects the chunk spatially.
            const auto &[base, size] = live[rng.below(live.size())];
            source.push_back(src(OpKind::kLoad,
                                 base + size + 64 + rng.below(1024), base,
                                 8));
        } else {
            // Benign in-bounds access; pointer loads force an escape.
            const auto &[base, size] = live[rng.below(live.size())];
            const Addr addr = base + rng.below(size - 8);
            const bool is_load = rng.chance(0.7);
            source.push_back(src(is_load ? OpKind::kLoad : OpKind::kStore,
                                 addr, base, 8,
                                 is_load && rng.chance(0.4)));
        }
    }

    // Abstract-interpret the source, then lower with and without the
    // bounds-elide pass.
    pa::PaContext pa(pa::PointerLayout(16, 46));
    ir::VectorStream analysis_stream(source);
    analysis::dataflow::DataflowEngine engine(pa.layout());
    engine.run(analysis_stream);
    const auto plan = analysis::dataflow::planBoundsElision(engine);

    ir::VectorStream stream(std::move(source));
    compiler::AosOptPass opt(&stream);
    compiler::AosBackendPass backend(&opt, &pa);
    compiler::PaPass pa_pass(&backend, compiler::PaMode::kPaAos);
    std::vector<MicroOp> full;
    MicroOp next;
    while (pa_pass.next(next))
        full.push_back(next);

    ir::VectorStream full_stream(full);
    compiler::AosBoundsElidePass belide(&full_stream, pa.layout(), &plan);
    std::vector<MicroOp> elided;
    while (belide.next(next))
        elided.push_back(next);

    staticcheck::ObligationChecker checker;
    const auto report = checker.check(full, elided, plan);
    EXPECT_TRUE(report.ok)
        << "seed " << GetParam() << ": " << report.summary();
    for (const auto &failure : report.failures)
        ADD_FAILURE() << "seed " << GetParam() << ": " << failure;

    // The seeded attacks were detected, and elision did real work.
    EXPECT_GT(report.fullStats.detections(), 0u);
    EXPECT_GT(belide.stats().bndstrElided, 0u);
    EXPECT_LT(belide.stats().bndstrElided, belide.stats().bndstrSeen)
        << "attacked chunks must never be elided";
    EXPECT_EQ(belide.stats().bndstrElided, plan.obligations().size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsElisionParityFuzz,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18),
                         [](const ::testing::TestParamInfo<u64> &info) {
                             return "seed" + std::to_string(info.param);
                         });

TEST(DifferentialFreePath, EveryLiveChunkFreesExactlyOnce)
{
    AosRuntime rt;
    Rng rng(77);
    std::vector<Addr> ptrs;
    for (int i = 0; i < 3000; ++i)
        ptrs.push_back(rt.malloc(8 + rng.below(512)));
    // Shuffle.
    for (size_t i = ptrs.size(); i > 1; --i)
        std::swap(ptrs[i - 1], ptrs[rng.below(i)]);
    for (const Addr p : ptrs)
        ASSERT_EQ(rt.free(p), Status::kOk);
    for (const Addr p : ptrs)
        ASSERT_NE(rt.free(p), Status::kOk) << "double free missed";
    EXPECT_EQ(rt.hbt().stats().occupied, 0u);
}

} // namespace
} // namespace aos::core
