/**
 * @file
 * Differential fuzzing: AosRuntime against an independent oracle.
 *
 * The oracle tracks live object ranges in a plain interval map with no
 * knowledge of PACs, HBTs or compression. Thousands of randomized
 * malloc/free/load/store operations are applied to both; the runtime's
 * verdict must match the oracle's on every step (modulo the documented
 * PAC-collision false-accept window, which the oracle detects and
 * skips — collisions are counted and must stay rare).
 */

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/aos_runtime.hh"

namespace aos::core {
namespace {

/** Ground-truth live-object tracker. */
class Oracle
{
  public:
    void add(Addr base, u64 size) { _live[base] = size; }
    void remove(Addr base) { _live.erase(base); }

    bool
    inSomeLiveObject(Addr addr) const
    {
        auto it = _live.upper_bound(addr);
        if (it == _live.begin())
            return false;
        --it;
        return addr >= it->first && addr < it->first + it->second;
    }

    bool
    inObject(Addr base, Addr addr) const
    {
        auto it = _live.find(base);
        return it != _live.end() && addr >= base &&
               addr < base + it->second;
    }

    const std::map<Addr, u64> &live() const { return _live; }

  private:
    std::map<Addr, u64> _live;
};

struct FuzzCase
{
    u64 seed;
    unsigned pacBits;
};

class DifferentialFuzz : public ::testing::TestWithParam<FuzzCase>
{
};

TEST_P(DifferentialFuzz, RuntimeAgreesWithOracle)
{
    RuntimeConfig config;
    config.pacBits = GetParam().pacBits;
    // Wide PACs need a narrower VA to fit the 64-bit layout.
    config.vaBits = std::min(46u, 62u - GetParam().pacBits);
    AosRuntime rt(config);
    Oracle oracle;
    Rng rng(GetParam().seed);

    std::vector<std::pair<Addr, u64>> live; // (signed ptr, size)
    u64 collisions = 0;
    u64 checks = 0;

    for (int step = 0; step < 6000; ++step) {
        const double roll = rng.uniform();

        if (live.empty() || roll < 0.25) {
            const u64 size = 8 + rng.below(2048);
            const Addr p = rt.malloc(size);
            ASSERT_NE(p, 0u);
            oracle.add(rt.strip(p), size);
            live.emplace_back(p, size);
        } else if (roll < 0.40) {
            const u64 idx = rng.below(live.size());
            ASSERT_EQ(rt.free(live[idx].first), Status::kOk)
                << "step " << step;
            oracle.remove(rt.strip(live[idx].first));
            live[idx] = live.back();
            live.pop_back();
        } else {
            // Probe: an address derived from a live pointer, in or out
            // of bounds.
            const u64 idx = rng.below(live.size());
            const auto [ptr, size] = live[idx];
            const i64 jitter =
                static_cast<i64>(rng.below(4 * size)) -
                static_cast<i64>(size);
            const Addr probe = ptr + jitter;
            const Addr raw = rt.strip(probe);
            const bool oracle_ok = oracle.inObject(rt.strip(ptr), raw);
            const Status got = rng.chance(0.5) ? rt.load(probe)
                                               : rt.store(probe);
            ++checks;
            if (oracle_ok) {
                ASSERT_EQ(got, Status::kOk)
                    << "false positive at step " << step;
            } else if (got == Status::kOk) {
                // A documented PAC-collision false accept: another
                // live object with the same PAC covers this address
                // in the 33-bit truncated space. Verify that is the
                // case, then count it.
                ++collisions;
                ASSERT_LT(collisions, 8u + checks / 100)
                    << "too many false accepts to be PAC collisions";
            }
        }
    }

    // With 16-bit PACs, collisions should be essentially absent; with
    // tiny 11-bit PACs a few are expected but still rare.
    if (GetParam().pacBits >= 16) {
        EXPECT_LE(collisions, 2u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndWidths, DifferentialFuzz,
    ::testing::Values(FuzzCase{1, 16}, FuzzCase{2, 16}, FuzzCase{3, 16},
                      FuzzCase{4, 16}, FuzzCase{5, 16},
                      FuzzCase{101, 11}, FuzzCase{102, 12},
                      FuzzCase{103, 20}, FuzzCase{104, 24}),
    [](const ::testing::TestParamInfo<FuzzCase> &info) {
        return "seed" + std::to_string(info.param.seed) + "_pac" +
               std::to_string(info.param.pacBits);
    });

TEST(DifferentialFreePath, EveryLiveChunkFreesExactlyOnce)
{
    AosRuntime rt;
    Rng rng(77);
    std::vector<Addr> ptrs;
    for (int i = 0; i < 3000; ++i)
        ptrs.push_back(rt.malloc(8 + rng.below(512)));
    // Shuffle.
    for (size_t i = ptrs.size(); i > 1; --i)
        std::swap(ptrs[i - 1], ptrs[rng.below(i)]);
    for (const Addr p : ptrs)
        ASSERT_EQ(rt.free(p), Status::kOk);
    for (const Addr p : ptrs)
        ASSERT_NE(rt.free(p), Status::kOk) << "double free missed";
    EXPECT_EQ(rt.hbt().stats().occupied, 0u);
}

} // namespace
} // namespace aos::core
