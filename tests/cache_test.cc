/**
 * @file
 * Unit tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include "memsim/cache.hh"

namespace aos::memsim {
namespace {

CacheParams
smallCache()
{
    // 1 KB, 2-way, 64 B lines -> 8 sets.
    return CacheParams{"test", 1024, 2, 64, 1};
}

TEST(Cache, ColdMissThenHit)
{
    MainMemory dram("dram", 100);
    Cache cache(smallCache(), &dram);
    EXPECT_EQ(cache.access(0x1000, false), 101u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.access(0x1000, false), 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Cache, SameLineHits)
{
    MainMemory dram;
    Cache cache(smallCache(), &dram);
    cache.access(0x1000, false);
    for (unsigned off = 0; off < 64; off += 8)
        EXPECT_EQ(cache.access(0x1000 + off, false), 1u);
}

TEST(Cache, AssociativityHoldsConflictingLines)
{
    MainMemory dram;
    Cache cache(smallCache(), &dram);
    // Two lines mapping to the same set (stride = 8 sets * 64 B).
    cache.access(0x0000, false);
    cache.access(0x0200, false);
    EXPECT_EQ(cache.access(0x0000, false), 1u);
    EXPECT_EQ(cache.access(0x0200, false), 1u);
}

TEST(Cache, LruEvictionOnConflict)
{
    MainMemory dram;
    Cache cache(smallCache(), &dram);
    cache.access(0x0000, false);
    cache.access(0x0200, false);
    cache.access(0x0000, false); // make 0x200 the LRU
    cache.access(0x0400, false); // evicts 0x200
    EXPECT_EQ(cache.access(0x0000, false), 1u);
    EXPECT_GT(cache.access(0x0200, false), 1u) << "should have missed";
}

TEST(Cache, DirtyEvictionWritesBack)
{
    MainMemory dram;
    Cache cache(smallCache(), &dram);
    cache.access(0x0000, true); // dirty
    cache.access(0x0200, false);
    cache.access(0x0400, false); // evicts dirty 0x0000
    EXPECT_EQ(cache.stats().writebacks, 1u);
    EXPECT_EQ(cache.stats().bytesWrittenBack, 64u);
}

TEST(Cache, CleanEvictionSilent)
{
    MainMemory dram;
    Cache cache(smallCache(), &dram);
    cache.access(0x0000, false);
    cache.access(0x0200, false);
    cache.access(0x0400, false);
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(Cache, WriteHitSetsDirtyWithoutTraffic)
{
    MainMemory dram;
    Cache cache(smallCache(), &dram);
    cache.access(0x0000, false);
    const u64 filled = cache.stats().bytesFilled;
    cache.access(0x0000, true); // hit, marks dirty
    EXPECT_EQ(cache.stats().bytesFilled, filled);
    cache.access(0x0200, false);
    cache.access(0x0400, false); // eviction must write back now
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, FillTrafficAccounting)
{
    MainMemory dram;
    Cache cache(smallCache(), &dram);
    for (int i = 0; i < 10; ++i)
        cache.access(0x10000 + i * 64, false);
    EXPECT_EQ(cache.stats().bytesFilled, 640u);
    EXPECT_EQ(cache.stats().trafficBelow(), 640u);
}

TEST(Cache, ContainsProbesWithoutTouching)
{
    MainMemory dram;
    Cache cache(smallCache(), &dram);
    cache.access(0x1000, false);
    const u64 hits = cache.stats().hits;
    EXPECT_TRUE(cache.contains(0x1000));
    EXPECT_TRUE(cache.contains(0x1030)); // same line
    EXPECT_FALSE(cache.contains(0x2000));
    EXPECT_EQ(cache.stats().hits, hits);
}

TEST(Cache, FlushInvalidatesEverything)
{
    MainMemory dram;
    Cache cache(smallCache(), &dram);
    cache.access(0x1000, false);
    cache.flush();
    EXPECT_FALSE(cache.contains(0x1000));
    EXPECT_GT(cache.access(0x1000, false), 1u);
}

TEST(Cache, FlushWritesBackDirtyLines)
{
    MainMemory dram;
    Cache cache(smallCache(), &dram);
    cache.access(0x0000, true);  // dirty, set 0
    cache.access(0x0040, true);  // dirty, set 1
    cache.access(0x0080, false); // clean, set 2
    const u64 dram_writes = dram.writes();
    cache.flush();
    // Both dirty lines must reach the level below; the clean line is
    // dropped silently.
    EXPECT_EQ(cache.stats().writebacks, 2u);
    EXPECT_EQ(cache.stats().bytesWrittenBack, 128u);
    EXPECT_EQ(dram.writes(), dram_writes + 2);
    EXPECT_FALSE(cache.contains(0x0000));
    EXPECT_FALSE(cache.contains(0x0040));
    EXPECT_FALSE(cache.contains(0x0080));
}

TEST(Cache, FlushTwiceWritesBackOnce)
{
    MainMemory dram;
    Cache cache(smallCache(), &dram);
    cache.access(0x0000, true);
    cache.flush();
    cache.flush(); // nothing valid left: no double writeback
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, PrefetchProbeClampsAtAddressZero)
{
    CacheParams params = smallCache();
    params.nextLinePrefetch = true;
    MainMemory dram;
    Cache cache(params, &dram);
    // Make the top-of-address-space line resident: an unclamped
    // (addr - lineSize) probe for addr 0 wraps around to exactly this
    // line and would fake a sequential walk.
    cache.access(0xFFFFFFFFFFFFFFC0ull, false);
    cache.access(0x0, false);
    EXPECT_EQ(cache.stats().prefetches, 0u);
}

TEST(Cache, PrefetchStillFiresAboveFirstLine)
{
    CacheParams params = smallCache();
    params.nextLinePrefetch = true;
    MainMemory dram;
    Cache cache(params, &dram);
    cache.access(0x1000, false);
    cache.access(0x1040, false); // sequential miss: prefetch 0x1080
    EXPECT_EQ(cache.stats().prefetches, 1u);
    EXPECT_TRUE(cache.contains(0x1080));
}

TEST(Cache, TwoLevelLatencyComposition)
{
    MainMemory dram("dram", 100);
    Cache l2(CacheParams{"l2", 64 * 1024, 16, 64, 8}, &dram);
    Cache l1(CacheParams{"l1", 1024, 2, 64, 1}, &l2);
    // Cold: L1 miss + L2 miss + DRAM.
    EXPECT_EQ(l1.access(0x8000, false), 1u + 8u + 100u);
    // L1 hit.
    EXPECT_EQ(l1.access(0x8000, false), 1u);
    // Evict from L1 but not L2: L1 miss, L2 hit.
    l1.access(0x8000 + 0x200, false);
    l1.access(0x8000 + 0x400, false);
    EXPECT_EQ(l1.access(0x8000, false), 1u + 8u);
}

TEST(Cache, MissRate)
{
    MainMemory dram;
    Cache cache(smallCache(), &dram);
    cache.access(0x0, false);
    cache.access(0x0, false);
    cache.access(0x0, false);
    cache.access(0x40, false);
    EXPECT_DOUBLE_EQ(cache.stats().missRate(), 0.5);
}

TEST(CacheDeath, RejectsBadGeometry)
{
    MainMemory dram;
    // Non-power-of-two line size.
    EXPECT_DEATH(Cache(CacheParams{"bad", 1024, 2, 48, 1}, &dram), "");
    // Size not divisible by assoc * line.
    EXPECT_DEATH(Cache(CacheParams{"bad", 1000, 2, 64, 1}, &dram), "");
}

class CacheGeometryTest
    : public ::testing::TestWithParam<std::pair<u64, unsigned>>
{
};

TEST_P(CacheGeometryTest, CapacityIsFullyUsable)
{
    // Touch exactly size/line distinct lines with a stride pattern that
    // spreads over all sets: everything must still be resident.
    const auto [size, assoc] = GetParam();
    MainMemory dram;
    Cache cache(CacheParams{"geom", size, assoc, 64, 1}, &dram);
    const u64 lines = size / 64;
    for (u64 i = 0; i < lines; ++i)
        cache.access(i * 64, false);
    EXPECT_EQ(cache.stats().misses, lines);
    for (u64 i = 0; i < lines; ++i)
        EXPECT_TRUE(cache.contains(i * 64)) << "line " << i;
}

INSTANTIATE_TEST_SUITE_P(
    TableIVGeometries, CacheGeometryTest,
    ::testing::Values(std::make_pair(u64{32} * 1024, 4u),   // L1-I / L1-B
                      std::make_pair(u64{64} * 1024, 8u),   // L1-D
                      std::make_pair(u64{1024} * 64, 16u),  // L2 slice
                      std::make_pair(u64{4096}, 1u)));      // direct-mapped

} // namespace
} // namespace aos::memsim
