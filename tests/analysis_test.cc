/**
 * @file
 * Tests for the PAC security/capacity analysis, cross-validated
 * against the paper's cited numbers and against the real HBT.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/pac_analysis.hh"
#include "bounds/compression.hh"
#include "bounds/hashed_bounds_table.hh"
#include "common/random.hh"

namespace aos::analysis {
namespace {

TEST(PacAnalysis, GuessProbability)
{
    EXPECT_DOUBLE_EQ(pacGuessProb(16), 1.0 / 65536.0);
    EXPECT_DOUBLE_EQ(pacGuessProb(11), 1.0 / 2048.0);
    EXPECT_DOUBLE_EQ(pacGuessProb(32), 1.0 / 4294967296.0);
}

TEST(PacAnalysis, PaperFortyFiveThousandAttempts)
{
    // SVII-E: "with a 16-bit PAC ... an attacker would require 45425
    // attempts to achieve a 50% likelihood for a correct guess".
    EXPECT_EQ(attemptsForGuessProbability(16, 0.5), 45425u);
}

TEST(PacAnalysis, AttemptsScaleWithPacWidth)
{
    // Each extra bit doubles the required attempts.
    const u64 b16 = attemptsForGuessProbability(16, 0.5);
    const u64 b17 = attemptsForGuessProbability(17, 0.5);
    EXPECT_NEAR(static_cast<double>(b17) / b16, 2.0, 0.01);
    // The architected extremes.
    EXPECT_NEAR(attemptsForGuessProbability(11, 0.5), 1419.0, 2.0);
    EXPECT_GT(attemptsForGuessProbability(32, 0.5), u64{2} << 30);
}

TEST(PacAnalysis, PoissonBasics)
{
    EXPECT_DOUBLE_EQ(poissonPmf(0.0, 0), 1.0);
    EXPECT_DOUBLE_EQ(poissonPmf(0.0, 3), 0.0);
    EXPECT_NEAR(poissonPmf(1.0, 0), std::exp(-1.0), 1e-12);
    EXPECT_NEAR(poissonPmf(1.0, 1), std::exp(-1.0), 1e-12);
    // PMF sums to ~1.
    double sum = 0;
    for (unsigned k = 0; k < 100; ++k)
        sum += poissonPmf(16.0, k);
    EXPECT_NEAR(sum, 1.0, 1e-9);
    // Tail is the complement of the CDF.
    EXPECT_NEAR(poissonTail(16.0, 99), 0.0, 1e-9);
    EXPECT_NEAR(poissonTail(16.0, 0), 1.0 - std::exp(-16.0), 1e-9);
}

TEST(PacAnalysis, ResizePredictionsMatchPaperObservations)
{
    // SIX-A.1: the initial 1-way table (8 records/row, 64K rows,
    // 512K capacity) covered everything except sphinx3 (1 resize) and
    // omnetpp (2 resizes, ~2M live objects).
    // Small live sets: essentially no overflowing rows.
    EXPECT_LT(expectedOverflowingRows(81825, 16, 8), 0.5);   // gcc
    // sphinx3's 200686 live objects: a handful of rows overflow ->
    // one resize.
    const double sphinx = expectedOverflowingRows(200686, 16, 8);
    EXPECT_GT(sphinx, 0.5);
    EXPECT_EQ(predictedAssociativity(200686, 16, 8), 2u);
    // astar's *peak* of 190984 would also trip a resize (and does in
    // our timing runs); the paper's no-resize observation implies its
    // within-window live set sat below the peak.
    EXPECT_GT(expectedOverflowingRows(190984, 16, 8), 1.0);
    // The paper's 2 omnetpp resizes (-> 4 ways) are consistent with a
    // ~700K-object within-window live set (which is exactly what our
    // scaled omnetpp profile uses, and it reproduces the 2 resizes);
    // the full-run 2M peak would demand 8 ways.
    EXPECT_EQ(predictedAssociativity(700'000, 16, 8), 4u);
    EXPECT_EQ(predictedAssociativity(1993737, 16, 8), 8u);
}

TEST(PacAnalysis, PredictionMatchesRealTableBehaviour)
{
    // Monte-Carlo cross-check: insert n random-PAC records into a real
    // (small) HBT and compare the resize count against the prediction.
    constexpr unsigned kPacBits = 10; // 1K rows for test speed
    constexpr u64 kLive = 9000;       // lambda ~ 8.8
    const unsigned predicted = predictedAssociativity(kLive, kPacBits, 8);

    bounds::HashedBoundsTable hbt(0x3000'0000'0000ull, kPacBits, 1);
    Rng rng(0xca11);
    Addr next = 0x20000000;
    for (u64 i = 0; i < kLive; ++i) {
        const u64 pac = rng.below(u64{1} << kPacBits);
        while (!hbt.insert(pac, bounds::compress(next, 64))) {
            if (!hbt.resizing())
                hbt.beginResize();
            hbt.finishResize();
        }
        next += 0x100;
    }
    EXPECT_EQ(hbt.ways(), predicted);
}

TEST(PacAnalysis, WildPointerEscapeIsNegligible)
{
    // A wild pointer against a typical process (10K live objects of
    // ~1KB) passes with probability ~1.8e-8 per record set.
    const double p = wildPointerEscapeProb(10000, 16, 1024.0);
    EXPECT_LT(p, 1e-6);
    EXPECT_GT(p, 0.0);
    // Monotone in live objects and object size; falls with PAC width.
    EXPECT_GT(wildPointerEscapeProb(100000, 16, 1024.0), p);
    EXPECT_GT(wildPointerEscapeProb(10000, 16, 65536.0), p);
    EXPECT_LT(wildPointerEscapeProb(10000, 24, 1024.0), p);
}

TEST(PacAnalysisDeath, RejectsDegenerateTargets)
{
    EXPECT_DEATH(attemptsForGuessProbability(16, 0.0), "");
    EXPECT_DEATH(attemptsForGuessProbability(16, 1.0), "");
}

} // namespace
} // namespace aos::analysis
