/**
 * @file
 * Tests for micro-op trace recording and replay.
 */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "ir/trace.hh"
#include "workloads/synthetic_workload.hh"

namespace aos::ir {
namespace {

class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _path = std::string(::testing::TempDir()) + "/aos_trace_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".trc";
    }

    void TearDown() override { std::remove(_path.c_str()); }

    std::string _path;
};

MicroOp
sampleOp(unsigned i)
{
    MicroOp op;
    op.kind = static_cast<OpKind>(i % 8);
    op.addr = 0x20000000 + i * 8;
    op.chunkBase = i % 3 ? 0x20000000 : 0;
    op.size = 8 + (i % 4) * 8;
    op.taken = i % 2;
    op.isPtrArith = i % 5 == 0;
    op.loadsPointer = i % 7 == 0;
    op.branchId = i;
    return op;
}

TEST_F(TraceTest, RoundTripPreservesEveryField)
{
    {
        TraceWriter writer(_path);
        for (unsigned i = 0; i < 500; ++i)
            writer.write(sampleOp(i));
        EXPECT_EQ(writer.count(), 500u);
    }
    TraceReader reader(_path);
    MicroOp op;
    for (unsigned i = 0; i < 500; ++i) {
        ASSERT_TRUE(reader.next(op)) << i;
        const MicroOp want = sampleOp(i);
        EXPECT_EQ(op.kind, want.kind);
        EXPECT_EQ(op.addr, want.addr);
        EXPECT_EQ(op.chunkBase, want.chunkBase);
        EXPECT_EQ(op.size, want.size);
        EXPECT_EQ(op.taken, want.taken);
        EXPECT_EQ(op.isPtrArith, want.isPtrArith);
        EXPECT_EQ(op.loadsPointer, want.loadsPointer);
        EXPECT_EQ(op.branchId, want.branchId);
    }
    EXPECT_FALSE(reader.next(op)) << "stream must end cleanly";
}

TEST_F(TraceTest, EmptyTraceEndsImmediately)
{
    {
        TraceWriter writer(_path);
    }
    TraceReader reader(_path);
    MicroOp op;
    EXPECT_FALSE(reader.next(op));
}

TEST_F(TraceTest, RecordingStreamTeesWithoutAltering)
{
    workloads::SyntheticWorkload source(
        workloads::profileByName("namd"), 2000);
    {
        TraceWriter writer(_path);
        RecordingStream tee(&source, &writer);
        MicroOp op;
        while (tee.next(op)) {
        }
        EXPECT_GT(writer.count(), 2000u);
    }

    // Replaying must reproduce the generator byte for byte.
    workloads::SyntheticWorkload fresh(
        workloads::profileByName("namd"), 2000);
    TraceReader reader(_path);
    MicroOp a, b;
    while (true) {
        const bool ha = fresh.next(a);
        const bool hb = reader.next(b);
        ASSERT_EQ(ha, hb);
        if (!ha)
            break;
        ASSERT_EQ(a.kind, b.kind);
        ASSERT_EQ(a.addr, b.addr);
        ASSERT_EQ(a.chunkBase, b.chunkBase);
    }
}

TEST_F(TraceTest, RejectsCorruptHeader)
{
    std::FILE *f = std::fopen(_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a trace file at all", f);
    std::fclose(f);
    EXPECT_DEATH(TraceReader reader(_path), "not an AOS trace");
}

TEST_F(TraceTest, RejectsMissingFile)
{
    EXPECT_DEATH(TraceReader reader("/nonexistent/zzz.trc"), "cannot");
}

} // namespace
} // namespace aos::ir
