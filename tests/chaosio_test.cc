/**
 * @file
 * Tests for the deterministic environment-fault engine
 * (common/chaosio.hh) and the shared retry policy (common/backoff.hh):
 * strict AOS_CHAOS spec parsing, schedule purity (same seed ⇒ same
 * decisions), rate and domain/kind masking, per-domain injection caps,
 * thread-local ChaosScope shadowing, probeAlloc semantics, and the
 * backoff delay law (capped exponential growth, bounded jitter,
 * cancel-aware sleeping, attempt budget).
 */

#include <new>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/backoff.hh"
#include "common/cancel.hh"
#include "common/chaosio.hh"

namespace aos::chaos {
namespace {

constexpr u32 kAllKinds = 0;

ChaosConfig
config(u64 seed, u32 rate, u32 domains, u32 kinds = kAllKinds)
{
    ChaosConfig c;
    c.seed = seed;
    c.ratePerMille = rate;
    c.domains = domains;
    c.kinds = kinds;
    return c;
}

// --- spec parsing ----------------------------------------------------

TEST(ChaosSpec, ParsesFullSpelling)
{
    ChaosConfig c;
    std::string error;
    ASSERT_TRUE(parseChaosSpec("42,250,disk+net,7", c, error)) << error;
    EXPECT_EQ(c.seed, 42u);
    EXPECT_EQ(c.ratePerMille, 250u);
    EXPECT_EQ(c.domains,
              domainBit(Domain::kDisk) | domainBit(Domain::kNet));
    EXPECT_EQ(c.maxPerDomain, 7u);
    EXPECT_TRUE(c.enabled());

    ASSERT_TRUE(parseChaosSpec("1,50,all", c, error)) << error;
    EXPECT_EQ(c.domains, domainBit(Domain::kDisk) |
                             domainBit(Domain::kNet) |
                             domainBit(Domain::kAlloc));
    EXPECT_EQ(c.maxPerDomain, 0u);
}

TEST(ChaosSpec, ClampsRateToOneThousandPerMille)
{
    ChaosConfig c;
    std::string error;
    ASSERT_TRUE(parseChaosSpec("1,5000,disk", c, error)) << error;
    EXPECT_EQ(c.ratePerMille, 1000u);
}

TEST(ChaosSpec, RejectsMalformedSpellingsWithAReason)
{
    ChaosConfig c;
    for (const char *bad :
         {"", "1", "1,2", "x,2,disk", "1,y,disk", "1,2,disk,z",
          "1,2,floppy", "1,2,disk+", "1,2,", "1,2,disk,3,4"}) {
        std::string error;
        EXPECT_FALSE(parseChaosSpec(bad, c, error)) << bad;
        EXPECT_FALSE(error.empty()) << bad; // Always says why.
    }
}

// --- schedule purity -------------------------------------------------

TEST(ChaosPlan, SameSeedSameSchedule)
{
    const ChaosPlan a(config(99, 300, domainBit(Domain::kDisk)));
    const ChaosPlan b(config(99, 300, domainBit(Domain::kDisk)));
    for (u64 op = 0; op < 2000; ++op) {
        const Decision da = a.at(Domain::kDisk, op, ~0u);
        const Decision db = b.at(Domain::kDisk, op, ~0u);
        EXPECT_EQ(da.fire, db.fire);
        if (da.fire) {
            EXPECT_EQ(da.kind, db.kind);
            EXPECT_EQ(da.arg, db.arg);
        }
    }
}

TEST(ChaosPlan, DifferentSeedsDiverge)
{
    const ChaosPlan a(config(1, 300, domainBit(Domain::kDisk)));
    const ChaosPlan b(config(2, 300, domainBit(Domain::kDisk)));
    unsigned differences = 0;
    for (u64 op = 0; op < 2000; ++op) {
        if (a.at(Domain::kDisk, op, ~0u).fire !=
            b.at(Domain::kDisk, op, ~0u).fire)
            ++differences;
    }
    EXPECT_GT(differences, 0u);
}

TEST(ChaosPlan, RateIsApproximatelyHonoured)
{
    const ChaosPlan plan(config(7, 100, domainBit(Domain::kDisk)));
    unsigned fires = 0;
    for (u64 op = 0; op < 10000; ++op)
        fires += plan.at(Domain::kDisk, op, ~0u).fire ? 1 : 0;
    // 100‰ of 10000 = 1000 expected; allow a generous band.
    EXPECT_GT(fires, 700u);
    EXPECT_LT(fires, 1300u);
}

TEST(ChaosPlan, DisabledDomainNeverFires)
{
    const ChaosPlan plan(config(7, 1000, domainBit(Domain::kDisk)));
    for (u64 op = 0; op < 100; ++op) {
        EXPECT_FALSE(plan.at(Domain::kNet, op, ~0u).fire);
        EXPECT_FALSE(plan.at(Domain::kAlloc, op, ~0u).fire);
    }
}

TEST(ChaosPlan, KindPickRespectsSiteAndConfigMasks)
{
    // Config allows two kinds; the site only offers one of them.
    const ChaosPlan plan(
        config(3, 1000, domainBit(Domain::kDisk),
               kindBit(FaultKind::kWriteEio) |
                   kindBit(FaultKind::kFsyncEio)));
    for (u64 op = 0; op < 200; ++op) {
        const Decision d =
            plan.at(Domain::kDisk, op,
                    kindBit(FaultKind::kWriteEio) |
                        kindBit(FaultKind::kShortWrite));
        ASSERT_TRUE(d.fire);
        EXPECT_EQ(d.kind, FaultKind::kWriteEio);
    }
    // No overlap between site and config: the op cannot fault.
    const Decision none = plan.at(
        Domain::kDisk, 0, kindBit(FaultKind::kShortWrite));
    EXPECT_FALSE(none.fire);
}

TEST(ChaosPlan, HighRateUsesEveryOfferedKind)
{
    const ChaosPlan plan(config(11, 1000, domainBit(Domain::kNet)));
    std::set<FaultKind> seen;
    const u32 site = kindBit(FaultKind::kShortSend) |
                     kindBit(FaultKind::kSendReset) |
                     kindBit(FaultKind::kFlipByte);
    for (u64 op = 0; op < 500; ++op) {
        const Decision d = plan.at(Domain::kNet, op, site);
        ASSERT_TRUE(d.fire);
        seen.insert(d.kind);
    }
    EXPECT_EQ(seen.size(), 3u);
}

// --- engine counters and caps ----------------------------------------

TEST(ChaosEngine, CountsOpsAndInjections)
{
    ChaosEngine eng(config(5, 500, domainBit(Domain::kDisk)));
    u64 fired = 0;
    for (unsigned i = 0; i < 1000; ++i)
        fired += eng.next(Domain::kDisk, ~0u).fire ? 1 : 0;
    EXPECT_EQ(eng.ops(Domain::kDisk), 1000u);
    EXPECT_EQ(eng.injected(Domain::kDisk), fired);
    EXPECT_EQ(eng.injectedTotal(), fired);
    u64 byKind = 0;
    for (unsigned k = 0; k < kFaultKindCount; ++k)
        byKind += eng.injectedKind(static_cast<FaultKind>(k));
    EXPECT_EQ(byKind, fired);
    EXPECT_LE(eng.injectedHard(), fired);
}

TEST(ChaosEngine, PerDomainCapStopsInjection)
{
    ChaosConfig c = config(5, 1000, domainBit(Domain::kDisk));
    c.maxPerDomain = 3;
    ChaosEngine eng(c);
    for (unsigned i = 0; i < 100; ++i)
        eng.next(Domain::kDisk, ~0u);
    EXPECT_EQ(eng.injected(Domain::kDisk), 3u);
    EXPECT_EQ(eng.ops(Domain::kDisk), 100u);
}

// --- installation scopes ---------------------------------------------

TEST(ChaosScope, ShadowsAndRestores)
{
    EXPECT_EQ(engine(), nullptr);
    ChaosEngine outer(config(1, 10, domainBit(Domain::kDisk)));
    ChaosEngine inner(config(2, 10, domainBit(Domain::kDisk)));
    {
        ChaosScope a(&outer);
        EXPECT_EQ(engine(), &outer);
        {
            ChaosScope b(&inner);
            EXPECT_EQ(engine(), &inner);
        }
        EXPECT_EQ(engine(), &outer);
    }
    EXPECT_EQ(engine(), nullptr);
}

TEST(ChaosScope, IsThreadLocal)
{
    ChaosEngine eng(config(1, 10, domainBit(Domain::kDisk)));
    ChaosScope scope(&eng);
    ChaosEngine *seenByOtherThread = &eng;
    std::thread([&] { seenByOtherThread = engine(); }).join();
    EXPECT_EQ(seenByOtherThread, nullptr);
    EXPECT_EQ(engine(), &eng);
}

TEST(ChaosProbe, ProbeAllocThrowsOnSchedule)
{
    ChaosEngine eng(config(9, 1000, domainBit(Domain::kAlloc)));
    ChaosScope scope(&eng);
    EXPECT_THROW(probeAlloc(), std::bad_alloc);
    EXPECT_EQ(eng.injectedKind(FaultKind::kBadAlloc), 1u);
}

TEST(ChaosProbe, ProbeAllocIsFreeWithoutAnEngine)
{
    EXPECT_NO_THROW(probeAlloc());
}

// --- backoff ---------------------------------------------------------

TEST(Backoff, DelaysGrowAndCap)
{
    BackoffPolicy policy;
    policy.initialMs = 10;
    policy.maxMs = 100;
    policy.multiplier = 2;
    policy.maxAttempts = 100;
    policy.jitter = 0; // Exact delays for this test.
    Backoff backoff(policy);
    EXPECT_DOUBLE_EQ(backoff.nextDelayMs(), 10);
    EXPECT_DOUBLE_EQ(backoff.nextDelayMs(), 20);
    EXPECT_DOUBLE_EQ(backoff.nextDelayMs(), 40);
    EXPECT_DOUBLE_EQ(backoff.nextDelayMs(), 80);
    EXPECT_DOUBLE_EQ(backoff.nextDelayMs(), 100); // Capped.
    EXPECT_DOUBLE_EQ(backoff.nextDelayMs(), 100);
    backoff.reset();
    EXPECT_DOUBLE_EQ(backoff.nextDelayMs(), 10);
}

TEST(Backoff, JitterStaysWithinTheConfiguredBand)
{
    BackoffPolicy policy;
    policy.initialMs = 100;
    policy.maxMs = 100;
    policy.jitter = 0.25;
    policy.maxAttempts = 1000;
    policy.seed = 42;
    Backoff backoff(policy);
    for (int i = 0; i < 1000; ++i) {
        const double d = backoff.nextDelayMs();
        EXPECT_GE(d, 75.0);
        EXPECT_LE(d, 125.0);
    }
}

TEST(Backoff, SameSeedSameDelays)
{
    BackoffPolicy policy;
    policy.seed = 7;
    policy.maxAttempts = 100;
    Backoff a(policy);
    Backoff b(policy);
    for (int i = 0; i < 50; ++i)
        EXPECT_DOUBLE_EQ(a.nextDelayMs(), b.nextDelayMs());
}

TEST(Backoff, AttemptBudgetStopsSleeping)
{
    BackoffPolicy policy;
    policy.initialMs = 0;
    policy.maxMs = 0;
    policy.maxAttempts = 2;
    Backoff backoff(policy);
    EXPECT_TRUE(backoff.sleep());
    EXPECT_TRUE(backoff.sleep());
    EXPECT_FALSE(backoff.sleep()); // Budget exhausted.
    backoff.reset();
    EXPECT_TRUE(backoff.sleep());
}

TEST(Backoff, CancelledTokenRefusesToSleep)
{
    CancelToken cancel;
    cancel.requestCancel();
    BackoffPolicy policy;
    policy.initialMs = 10'000; // Would hang the test if slept.
    Backoff backoff(policy, &cancel);
    EXPECT_FALSE(backoff.sleep());
    EXPECT_EQ(backoff.attempts(), 0u);
}

} // namespace
} // namespace aos::chaos
