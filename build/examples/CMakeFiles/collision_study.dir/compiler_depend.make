# Empty compiler generated dependencies file for collision_study.
# This may be replaced when dependencies are built.
