file(REMOVE_RECURSE
  "CMakeFiles/collision_study.dir/collision_study.cc.o"
  "CMakeFiles/collision_study.dir/collision_study.cc.o.d"
  "collision_study"
  "collision_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collision_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
