file(REMOVE_RECURSE
  "CMakeFiles/pipeline_sim.dir/pipeline_sim.cc.o"
  "CMakeFiles/pipeline_sim.dir/pipeline_sim.cc.o.d"
  "pipeline_sim"
  "pipeline_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
