# Empty compiler generated dependencies file for pipeline_sim.
# This may be replaced when dependencies are built.
