# Empty compiler generated dependencies file for allocator_stress.
# This may be replaced when dependencies are built.
