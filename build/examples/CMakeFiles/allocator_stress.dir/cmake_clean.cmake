file(REMOVE_RECURSE
  "CMakeFiles/allocator_stress.dir/allocator_stress.cc.o"
  "CMakeFiles/allocator_stress.dir/allocator_stress.cc.o.d"
  "allocator_stress"
  "allocator_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocator_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
