file(REMOVE_RECURSE
  "CMakeFiles/fig11_pac_distribution.dir/fig11_pac_distribution.cc.o"
  "CMakeFiles/fig11_pac_distribution.dir/fig11_pac_distribution.cc.o.d"
  "fig11_pac_distribution"
  "fig11_pac_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_pac_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
