# Empty compiler generated dependencies file for fig11_pac_distribution.
# This may be replaced when dependencies are built.
