file(REMOVE_RECURSE
  "CMakeFiles/fig16_inst_stats.dir/fig16_inst_stats.cc.o"
  "CMakeFiles/fig16_inst_stats.dir/fig16_inst_stats.cc.o.d"
  "fig16_inst_stats"
  "fig16_inst_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_inst_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
