# Empty dependencies file for fig16_inst_stats.
# This may be replaced when dependencies are built.
