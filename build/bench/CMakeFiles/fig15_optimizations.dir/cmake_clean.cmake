file(REMOVE_RECURSE
  "CMakeFiles/fig15_optimizations.dir/fig15_optimizations.cc.o"
  "CMakeFiles/fig15_optimizations.dir/fig15_optimizations.cc.o.d"
  "fig15_optimizations"
  "fig15_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
