# Empty compiler generated dependencies file for fig15_optimizations.
# This may be replaced when dependencies are built.
