# Empty dependencies file for pac_size_sweep.
# This may be replaced when dependencies are built.
