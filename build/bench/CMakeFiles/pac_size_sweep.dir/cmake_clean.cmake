file(REMOVE_RECURSE
  "CMakeFiles/pac_size_sweep.dir/pac_size_sweep.cc.o"
  "CMakeFiles/pac_size_sweep.dir/pac_size_sweep.cc.o.d"
  "pac_size_sweep"
  "pac_size_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pac_size_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
