# Empty compiler generated dependencies file for fig18_traffic.
# This may be replaced when dependencies are built.
