file(REMOVE_RECURSE
  "CMakeFiles/fig18_traffic.dir/fig18_traffic.cc.o"
  "CMakeFiles/fig18_traffic.dir/fig18_traffic.cc.o.d"
  "fig18_traffic"
  "fig18_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
