# Empty dependencies file for table3_realworld.
# This may be replaced when dependencies are built.
