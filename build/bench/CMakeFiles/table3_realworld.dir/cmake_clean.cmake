file(REMOVE_RECURSE
  "CMakeFiles/table3_realworld.dir/table3_realworld.cc.o"
  "CMakeFiles/table3_realworld.dir/table3_realworld.cc.o.d"
  "table3_realworld"
  "table3_realworld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_realworld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
