file(REMOVE_RECURSE
  "CMakeFiles/fig14_exec_time.dir/fig14_exec_time.cc.o"
  "CMakeFiles/fig14_exec_time.dir/fig14_exec_time.cc.o.d"
  "fig14_exec_time"
  "fig14_exec_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_exec_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
