file(REMOVE_RECURSE
  "CMakeFiles/fig17_bwb.dir/fig17_bwb.cc.o"
  "CMakeFiles/fig17_bwb.dir/fig17_bwb.cc.o.d"
  "fig17_bwb"
  "fig17_bwb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_bwb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
