# Empty compiler generated dependencies file for fig17_bwb.
# This may be replaced when dependencies are built.
