# Empty dependencies file for micro_hbt.
# This may be replaced when dependencies are built.
