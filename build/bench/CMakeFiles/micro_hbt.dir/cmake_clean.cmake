file(REMOVE_RECURSE
  "CMakeFiles/micro_hbt.dir/micro_hbt.cc.o"
  "CMakeFiles/micro_hbt.dir/micro_hbt.cc.o.d"
  "micro_hbt"
  "micro_hbt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_hbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
