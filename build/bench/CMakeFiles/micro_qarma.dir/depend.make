# Empty dependencies file for micro_qarma.
# This may be replaced when dependencies are built.
