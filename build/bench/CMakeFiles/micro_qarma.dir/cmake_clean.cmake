file(REMOVE_RECURSE
  "CMakeFiles/micro_qarma.dir/micro_qarma.cc.o"
  "CMakeFiles/micro_qarma.dir/micro_qarma.cc.o.d"
  "micro_qarma"
  "micro_qarma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_qarma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
