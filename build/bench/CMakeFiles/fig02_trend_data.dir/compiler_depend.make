# Empty compiler generated dependencies file for fig02_trend_data.
# This may be replaced when dependencies are built.
