file(REMOVE_RECURSE
  "CMakeFiles/fig02_trend_data.dir/fig02_trend_data.cc.o"
  "CMakeFiles/fig02_trend_data.dir/fig02_trend_data.cc.o.d"
  "fig02_trend_data"
  "fig02_trend_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_trend_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
