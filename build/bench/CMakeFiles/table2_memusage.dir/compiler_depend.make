# Empty compiler generated dependencies file for table2_memusage.
# This may be replaced when dependencies are built.
