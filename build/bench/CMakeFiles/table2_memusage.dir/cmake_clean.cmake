file(REMOVE_RECURSE
  "CMakeFiles/table2_memusage.dir/table2_memusage.cc.o"
  "CMakeFiles/table2_memusage.dir/table2_memusage.cc.o.d"
  "table2_memusage"
  "table2_memusage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_memusage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
