file(REMOVE_RECURSE
  "CMakeFiles/micro_tage.dir/micro_tage.cc.o"
  "CMakeFiles/micro_tage.dir/micro_tage.cc.o.d"
  "micro_tage"
  "micro_tage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
