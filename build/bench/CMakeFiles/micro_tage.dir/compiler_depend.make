# Empty compiler generated dependencies file for micro_tage.
# This may be replaced when dependencies are built.
