file(REMOVE_RECURSE
  "CMakeFiles/softcheck_comparison.dir/softcheck_comparison.cc.o"
  "CMakeFiles/softcheck_comparison.dir/softcheck_comparison.cc.o.d"
  "softcheck_comparison"
  "softcheck_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softcheck_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
