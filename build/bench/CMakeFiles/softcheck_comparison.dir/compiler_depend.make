# Empty compiler generated dependencies file for softcheck_comparison.
# This may be replaced when dependencies are built.
