file(REMOVE_RECURSE
  "CMakeFiles/aos_hwcost.dir/sram_model.cc.o"
  "CMakeFiles/aos_hwcost.dir/sram_model.cc.o.d"
  "libaos_hwcost.a"
  "libaos_hwcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aos_hwcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
