file(REMOVE_RECURSE
  "libaos_hwcost.a"
)
