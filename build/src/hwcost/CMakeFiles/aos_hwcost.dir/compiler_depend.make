# Empty compiler generated dependencies file for aos_hwcost.
# This may be replaced when dependencies are built.
