file(REMOVE_RECURSE
  "libaos_qarma.a"
)
