file(REMOVE_RECURSE
  "CMakeFiles/aos_qarma.dir/qarma64.cc.o"
  "CMakeFiles/aos_qarma.dir/qarma64.cc.o.d"
  "libaos_qarma.a"
  "libaos_qarma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aos_qarma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
