# Empty dependencies file for aos_qarma.
# This may be replaced when dependencies are built.
