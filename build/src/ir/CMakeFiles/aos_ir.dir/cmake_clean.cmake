file(REMOVE_RECURSE
  "CMakeFiles/aos_ir.dir/micro_op.cc.o"
  "CMakeFiles/aos_ir.dir/micro_op.cc.o.d"
  "CMakeFiles/aos_ir.dir/trace.cc.o"
  "CMakeFiles/aos_ir.dir/trace.cc.o.d"
  "libaos_ir.a"
  "libaos_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aos_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
