file(REMOVE_RECURSE
  "libaos_ir.a"
)
