# Empty compiler generated dependencies file for aos_ir.
# This may be replaced when dependencies are built.
