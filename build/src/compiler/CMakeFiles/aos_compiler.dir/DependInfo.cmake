
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/aos_passes.cc" "src/compiler/CMakeFiles/aos_compiler.dir/aos_passes.cc.o" "gcc" "src/compiler/CMakeFiles/aos_compiler.dir/aos_passes.cc.o.d"
  "/root/repo/src/compiler/asan_pass.cc" "src/compiler/CMakeFiles/aos_compiler.dir/asan_pass.cc.o" "gcc" "src/compiler/CMakeFiles/aos_compiler.dir/asan_pass.cc.o.d"
  "/root/repo/src/compiler/op_counter.cc" "src/compiler/CMakeFiles/aos_compiler.dir/op_counter.cc.o" "gcc" "src/compiler/CMakeFiles/aos_compiler.dir/op_counter.cc.o.d"
  "/root/repo/src/compiler/pa_pass.cc" "src/compiler/CMakeFiles/aos_compiler.dir/pa_pass.cc.o" "gcc" "src/compiler/CMakeFiles/aos_compiler.dir/pa_pass.cc.o.d"
  "/root/repo/src/compiler/pass.cc" "src/compiler/CMakeFiles/aos_compiler.dir/pass.cc.o" "gcc" "src/compiler/CMakeFiles/aos_compiler.dir/pass.cc.o.d"
  "/root/repo/src/compiler/watchdog_pass.cc" "src/compiler/CMakeFiles/aos_compiler.dir/watchdog_pass.cc.o" "gcc" "src/compiler/CMakeFiles/aos_compiler.dir/watchdog_pass.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/aos_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/pa/CMakeFiles/aos_pa.dir/DependInfo.cmake"
  "/root/repo/build/src/qarma/CMakeFiles/aos_qarma.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
