# Empty dependencies file for aos_compiler.
# This may be replaced when dependencies are built.
