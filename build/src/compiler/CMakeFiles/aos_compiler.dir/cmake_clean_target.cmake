file(REMOVE_RECURSE
  "libaos_compiler.a"
)
