file(REMOVE_RECURSE
  "CMakeFiles/aos_compiler.dir/aos_passes.cc.o"
  "CMakeFiles/aos_compiler.dir/aos_passes.cc.o.d"
  "CMakeFiles/aos_compiler.dir/asan_pass.cc.o"
  "CMakeFiles/aos_compiler.dir/asan_pass.cc.o.d"
  "CMakeFiles/aos_compiler.dir/op_counter.cc.o"
  "CMakeFiles/aos_compiler.dir/op_counter.cc.o.d"
  "CMakeFiles/aos_compiler.dir/pa_pass.cc.o"
  "CMakeFiles/aos_compiler.dir/pa_pass.cc.o.d"
  "CMakeFiles/aos_compiler.dir/pass.cc.o"
  "CMakeFiles/aos_compiler.dir/pass.cc.o.d"
  "CMakeFiles/aos_compiler.dir/watchdog_pass.cc.o"
  "CMakeFiles/aos_compiler.dir/watchdog_pass.cc.o.d"
  "libaos_compiler.a"
  "libaos_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aos_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
