file(REMOVE_RECURSE
  "libaos_os.a"
)
