
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/os_model.cc" "src/os/CMakeFiles/aos_os.dir/os_model.cc.o" "gcc" "src/os/CMakeFiles/aos_os.dir/os_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/aos_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/mcu/CMakeFiles/aos_mcu.dir/DependInfo.cmake"
  "/root/repo/build/src/pa/CMakeFiles/aos_pa.dir/DependInfo.cmake"
  "/root/repo/build/src/qarma/CMakeFiles/aos_qarma.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/aos_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/aos_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
