# Empty compiler generated dependencies file for aos_os.
# This may be replaced when dependencies are built.
