file(REMOVE_RECURSE
  "CMakeFiles/aos_os.dir/os_model.cc.o"
  "CMakeFiles/aos_os.dir/os_model.cc.o.d"
  "libaos_os.a"
  "libaos_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aos_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
