file(REMOVE_RECURSE
  "libaos_bounds.a"
)
