file(REMOVE_RECURSE
  "CMakeFiles/aos_bounds.dir/bounds_way_buffer.cc.o"
  "CMakeFiles/aos_bounds.dir/bounds_way_buffer.cc.o.d"
  "CMakeFiles/aos_bounds.dir/compression.cc.o"
  "CMakeFiles/aos_bounds.dir/compression.cc.o.d"
  "CMakeFiles/aos_bounds.dir/hashed_bounds_table.cc.o"
  "CMakeFiles/aos_bounds.dir/hashed_bounds_table.cc.o.d"
  "libaos_bounds.a"
  "libaos_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aos_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
