
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bounds/bounds_way_buffer.cc" "src/bounds/CMakeFiles/aos_bounds.dir/bounds_way_buffer.cc.o" "gcc" "src/bounds/CMakeFiles/aos_bounds.dir/bounds_way_buffer.cc.o.d"
  "/root/repo/src/bounds/compression.cc" "src/bounds/CMakeFiles/aos_bounds.dir/compression.cc.o" "gcc" "src/bounds/CMakeFiles/aos_bounds.dir/compression.cc.o.d"
  "/root/repo/src/bounds/hashed_bounds_table.cc" "src/bounds/CMakeFiles/aos_bounds.dir/hashed_bounds_table.cc.o" "gcc" "src/bounds/CMakeFiles/aos_bounds.dir/hashed_bounds_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pa/CMakeFiles/aos_pa.dir/DependInfo.cmake"
  "/root/repo/build/src/qarma/CMakeFiles/aos_qarma.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
