# Empty dependencies file for aos_bounds.
# This may be replaced when dependencies are built.
