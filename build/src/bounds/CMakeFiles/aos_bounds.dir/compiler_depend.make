# Empty compiler generated dependencies file for aos_bounds.
# This may be replaced when dependencies are built.
