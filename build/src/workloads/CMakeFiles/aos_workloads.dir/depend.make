# Empty dependencies file for aos_workloads.
# This may be replaced when dependencies are built.
