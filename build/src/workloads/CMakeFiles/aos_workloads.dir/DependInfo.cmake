
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/alloc_replay.cc" "src/workloads/CMakeFiles/aos_workloads.dir/alloc_replay.cc.o" "gcc" "src/workloads/CMakeFiles/aos_workloads.dir/alloc_replay.cc.o.d"
  "/root/repo/src/workloads/synthetic_workload.cc" "src/workloads/CMakeFiles/aos_workloads.dir/synthetic_workload.cc.o" "gcc" "src/workloads/CMakeFiles/aos_workloads.dir/synthetic_workload.cc.o.d"
  "/root/repo/src/workloads/workload_profile.cc" "src/workloads/CMakeFiles/aos_workloads.dir/workload_profile.cc.o" "gcc" "src/workloads/CMakeFiles/aos_workloads.dir/workload_profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/aos_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/aos_alloc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
