file(REMOVE_RECURSE
  "CMakeFiles/aos_workloads.dir/alloc_replay.cc.o"
  "CMakeFiles/aos_workloads.dir/alloc_replay.cc.o.d"
  "CMakeFiles/aos_workloads.dir/synthetic_workload.cc.o"
  "CMakeFiles/aos_workloads.dir/synthetic_workload.cc.o.d"
  "CMakeFiles/aos_workloads.dir/workload_profile.cc.o"
  "CMakeFiles/aos_workloads.dir/workload_profile.cc.o.d"
  "libaos_workloads.a"
  "libaos_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aos_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
