file(REMOVE_RECURSE
  "libaos_workloads.a"
)
