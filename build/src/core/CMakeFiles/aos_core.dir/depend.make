# Empty dependencies file for aos_core.
# This may be replaced when dependencies are built.
