file(REMOVE_RECURSE
  "CMakeFiles/aos_core.dir/aos_runtime.cc.o"
  "CMakeFiles/aos_core.dir/aos_runtime.cc.o.d"
  "CMakeFiles/aos_core.dir/aos_system.cc.o"
  "CMakeFiles/aos_core.dir/aos_system.cc.o.d"
  "libaos_core.a"
  "libaos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
