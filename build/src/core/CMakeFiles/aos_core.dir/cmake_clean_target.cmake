file(REMOVE_RECURSE
  "libaos_core.a"
)
