file(REMOVE_RECURSE
  "CMakeFiles/aos_common.dir/logging.cc.o"
  "CMakeFiles/aos_common.dir/logging.cc.o.d"
  "CMakeFiles/aos_common.dir/stats.cc.o"
  "CMakeFiles/aos_common.dir/stats.cc.o.d"
  "libaos_common.a"
  "libaos_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aos_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
