# Empty dependencies file for aos_common.
# This may be replaced when dependencies are built.
