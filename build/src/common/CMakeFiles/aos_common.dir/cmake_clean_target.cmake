file(REMOVE_RECURSE
  "libaos_common.a"
)
