# Empty compiler generated dependencies file for aos_memsim.
# This may be replaced when dependencies are built.
