file(REMOVE_RECURSE
  "CMakeFiles/aos_memsim.dir/cache.cc.o"
  "CMakeFiles/aos_memsim.dir/cache.cc.o.d"
  "CMakeFiles/aos_memsim.dir/memory_system.cc.o"
  "CMakeFiles/aos_memsim.dir/memory_system.cc.o.d"
  "CMakeFiles/aos_memsim.dir/sparse_memory.cc.o"
  "CMakeFiles/aos_memsim.dir/sparse_memory.cc.o.d"
  "libaos_memsim.a"
  "libaos_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aos_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
