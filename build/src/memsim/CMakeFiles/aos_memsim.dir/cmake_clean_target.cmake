file(REMOVE_RECURSE
  "libaos_memsim.a"
)
