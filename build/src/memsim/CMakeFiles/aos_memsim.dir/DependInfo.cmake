
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/cache.cc" "src/memsim/CMakeFiles/aos_memsim.dir/cache.cc.o" "gcc" "src/memsim/CMakeFiles/aos_memsim.dir/cache.cc.o.d"
  "/root/repo/src/memsim/memory_system.cc" "src/memsim/CMakeFiles/aos_memsim.dir/memory_system.cc.o" "gcc" "src/memsim/CMakeFiles/aos_memsim.dir/memory_system.cc.o.d"
  "/root/repo/src/memsim/sparse_memory.cc" "src/memsim/CMakeFiles/aos_memsim.dir/sparse_memory.cc.o" "gcc" "src/memsim/CMakeFiles/aos_memsim.dir/sparse_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
