file(REMOVE_RECURSE
  "libaos_mcu.a"
)
