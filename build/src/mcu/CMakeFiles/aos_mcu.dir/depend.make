# Empty dependencies file for aos_mcu.
# This may be replaced when dependencies are built.
