file(REMOVE_RECURSE
  "CMakeFiles/aos_mcu.dir/memory_check_unit.cc.o"
  "CMakeFiles/aos_mcu.dir/memory_check_unit.cc.o.d"
  "libaos_mcu.a"
  "libaos_mcu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aos_mcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
