file(REMOVE_RECURSE
  "libaos_analysis.a"
)
