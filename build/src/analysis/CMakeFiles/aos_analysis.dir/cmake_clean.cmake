file(REMOVE_RECURSE
  "CMakeFiles/aos_analysis.dir/pac_analysis.cc.o"
  "CMakeFiles/aos_analysis.dir/pac_analysis.cc.o.d"
  "libaos_analysis.a"
  "libaos_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aos_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
