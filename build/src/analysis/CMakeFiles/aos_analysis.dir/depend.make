# Empty dependencies file for aos_analysis.
# This may be replaced when dependencies are built.
