file(REMOVE_RECURSE
  "libaos_alloc.a"
)
