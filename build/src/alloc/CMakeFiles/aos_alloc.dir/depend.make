# Empty dependencies file for aos_alloc.
# This may be replaced when dependencies are built.
