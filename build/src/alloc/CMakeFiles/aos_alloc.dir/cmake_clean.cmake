file(REMOVE_RECURSE
  "CMakeFiles/aos_alloc.dir/heap_allocator.cc.o"
  "CMakeFiles/aos_alloc.dir/heap_allocator.cc.o.d"
  "libaos_alloc.a"
  "libaos_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aos_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
