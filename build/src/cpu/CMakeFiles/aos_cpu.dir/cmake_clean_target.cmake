file(REMOVE_RECURSE
  "libaos_cpu.a"
)
