file(REMOVE_RECURSE
  "CMakeFiles/aos_cpu.dir/ooo_core.cc.o"
  "CMakeFiles/aos_cpu.dir/ooo_core.cc.o.d"
  "CMakeFiles/aos_cpu.dir/tage.cc.o"
  "CMakeFiles/aos_cpu.dir/tage.cc.o.d"
  "libaos_cpu.a"
  "libaos_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aos_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
