# Empty dependencies file for aos_cpu.
# This may be replaced when dependencies are built.
