file(REMOVE_RECURSE
  "CMakeFiles/aos_baselines.dir/redzone_runtime.cc.o"
  "CMakeFiles/aos_baselines.dir/redzone_runtime.cc.o.d"
  "CMakeFiles/aos_baselines.dir/system_config.cc.o"
  "CMakeFiles/aos_baselines.dir/system_config.cc.o.d"
  "libaos_baselines.a"
  "libaos_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aos_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
