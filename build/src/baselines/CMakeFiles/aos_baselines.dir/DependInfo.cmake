
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/redzone_runtime.cc" "src/baselines/CMakeFiles/aos_baselines.dir/redzone_runtime.cc.o" "gcc" "src/baselines/CMakeFiles/aos_baselines.dir/redzone_runtime.cc.o.d"
  "/root/repo/src/baselines/system_config.cc" "src/baselines/CMakeFiles/aos_baselines.dir/system_config.cc.o" "gcc" "src/baselines/CMakeFiles/aos_baselines.dir/system_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/aos_alloc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
