# Empty dependencies file for aos_baselines.
# This may be replaced when dependencies are built.
