file(REMOVE_RECURSE
  "libaos_baselines.a"
)
