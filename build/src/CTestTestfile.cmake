# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("qarma")
subdirs("pa")
subdirs("alloc")
subdirs("memsim")
subdirs("bounds")
subdirs("mcu")
subdirs("ir")
subdirs("compiler")
subdirs("cpu")
subdirs("workloads")
subdirs("os")
subdirs("baselines")
subdirs("core")
subdirs("hwcost")
subdirs("analysis")
