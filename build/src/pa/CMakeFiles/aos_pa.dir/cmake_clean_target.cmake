file(REMOVE_RECURSE
  "libaos_pa.a"
)
