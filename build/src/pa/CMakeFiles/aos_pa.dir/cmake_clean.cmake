file(REMOVE_RECURSE
  "CMakeFiles/aos_pa.dir/pa_context.cc.o"
  "CMakeFiles/aos_pa.dir/pa_context.cc.o.d"
  "CMakeFiles/aos_pa.dir/pointer_layout.cc.o"
  "CMakeFiles/aos_pa.dir/pointer_layout.cc.o.d"
  "libaos_pa.a"
  "libaos_pa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aos_pa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
