
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pa/pa_context.cc" "src/pa/CMakeFiles/aos_pa.dir/pa_context.cc.o" "gcc" "src/pa/CMakeFiles/aos_pa.dir/pa_context.cc.o.d"
  "/root/repo/src/pa/pointer_layout.cc" "src/pa/CMakeFiles/aos_pa.dir/pointer_layout.cc.o" "gcc" "src/pa/CMakeFiles/aos_pa.dir/pointer_layout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/qarma/CMakeFiles/aos_qarma.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
