# Empty compiler generated dependencies file for aos_pa.
# This may be replaced when dependencies are built.
