# Empty dependencies file for qarma_statistical_test.
# This may be replaced when dependencies are built.
