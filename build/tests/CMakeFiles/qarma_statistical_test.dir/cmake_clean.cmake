file(REMOVE_RECURSE
  "CMakeFiles/qarma_statistical_test.dir/qarma_statistical_test.cc.o"
  "CMakeFiles/qarma_statistical_test.dir/qarma_statistical_test.cc.o.d"
  "qarma_statistical_test"
  "qarma_statistical_test.pdb"
  "qarma_statistical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qarma_statistical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
