file(REMOVE_RECURSE
  "CMakeFiles/mcu_differential_test.dir/mcu_differential_test.cc.o"
  "CMakeFiles/mcu_differential_test.dir/mcu_differential_test.cc.o.d"
  "mcu_differential_test"
  "mcu_differential_test.pdb"
  "mcu_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcu_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
