# Empty dependencies file for mcu_differential_test.
# This may be replaced when dependencies are built.
