# Empty dependencies file for pa_context_test.
# This may be replaced when dependencies are built.
