file(REMOVE_RECURSE
  "CMakeFiles/pa_context_test.dir/pa_context_test.cc.o"
  "CMakeFiles/pa_context_test.dir/pa_context_test.cc.o.d"
  "pa_context_test"
  "pa_context_test.pdb"
  "pa_context_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_context_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
