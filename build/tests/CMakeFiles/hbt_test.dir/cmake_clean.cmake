file(REMOVE_RECURSE
  "CMakeFiles/hbt_test.dir/hbt_test.cc.o"
  "CMakeFiles/hbt_test.dir/hbt_test.cc.o.d"
  "hbt_test"
  "hbt_test.pdb"
  "hbt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
