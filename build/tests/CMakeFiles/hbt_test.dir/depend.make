# Empty dependencies file for hbt_test.
# This may be replaced when dependencies are built.
