# Empty dependencies file for redzone_test.
# This may be replaced when dependencies are built.
