file(REMOVE_RECURSE
  "CMakeFiles/redzone_test.dir/redzone_test.cc.o"
  "CMakeFiles/redzone_test.dir/redzone_test.cc.o.d"
  "redzone_test"
  "redzone_test.pdb"
  "redzone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redzone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
