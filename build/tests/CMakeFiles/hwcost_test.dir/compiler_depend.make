# Empty compiler generated dependencies file for hwcost_test.
# This may be replaced when dependencies are built.
