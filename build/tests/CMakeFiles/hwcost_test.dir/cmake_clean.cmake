file(REMOVE_RECURSE
  "CMakeFiles/hwcost_test.dir/hwcost_test.cc.o"
  "CMakeFiles/hwcost_test.dir/hwcost_test.cc.o.d"
  "hwcost_test"
  "hwcost_test.pdb"
  "hwcost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwcost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
