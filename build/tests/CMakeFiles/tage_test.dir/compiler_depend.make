# Empty compiler generated dependencies file for tage_test.
# This may be replaced when dependencies are built.
