file(REMOVE_RECURSE
  "CMakeFiles/tage_test.dir/tage_test.cc.o"
  "CMakeFiles/tage_test.dir/tage_test.cc.o.d"
  "tage_test"
  "tage_test.pdb"
  "tage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
