file(REMOVE_RECURSE
  "CMakeFiles/os_model_test.dir/os_model_test.cc.o"
  "CMakeFiles/os_model_test.dir/os_model_test.cc.o.d"
  "os_model_test"
  "os_model_test.pdb"
  "os_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
