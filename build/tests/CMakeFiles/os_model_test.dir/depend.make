# Empty dependencies file for os_model_test.
# This may be replaced when dependencies are built.
