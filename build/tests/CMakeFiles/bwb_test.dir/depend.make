# Empty dependencies file for bwb_test.
# This may be replaced when dependencies are built.
