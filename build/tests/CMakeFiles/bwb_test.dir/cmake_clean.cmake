file(REMOVE_RECURSE
  "CMakeFiles/bwb_test.dir/bwb_test.cc.o"
  "CMakeFiles/bwb_test.dir/bwb_test.cc.o.d"
  "bwb_test"
  "bwb_test.pdb"
  "bwb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bwb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
