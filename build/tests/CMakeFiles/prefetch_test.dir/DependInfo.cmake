
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/prefetch_test.cc" "tests/CMakeFiles/prefetch_test.dir/prefetch_test.cc.o" "gcc" "tests/CMakeFiles/prefetch_test.dir/prefetch_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hwcost/CMakeFiles/aos_hwcost.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/aos_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/aos_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/aos_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/aos_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/aos_os.dir/DependInfo.cmake"
  "/root/repo/build/src/mcu/CMakeFiles/aos_mcu.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/aos_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/bounds/CMakeFiles/aos_bounds.dir/DependInfo.cmake"
  "/root/repo/build/src/pa/CMakeFiles/aos_pa.dir/DependInfo.cmake"
  "/root/repo/build/src/qarma/CMakeFiles/aos_qarma.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/aos_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/aos_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/aos_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
