file(REMOVE_RECURSE
  "CMakeFiles/hbt_resize_test.dir/hbt_resize_test.cc.o"
  "CMakeFiles/hbt_resize_test.dir/hbt_resize_test.cc.o.d"
  "hbt_resize_test"
  "hbt_resize_test.pdb"
  "hbt_resize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbt_resize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
