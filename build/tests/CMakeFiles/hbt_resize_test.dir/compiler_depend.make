# Empty compiler generated dependencies file for hbt_resize_test.
# This may be replaced when dependencies are built.
