file(REMOVE_RECURSE
  "CMakeFiles/qarma_test.dir/qarma_test.cc.o"
  "CMakeFiles/qarma_test.dir/qarma_test.cc.o.d"
  "qarma_test"
  "qarma_test.pdb"
  "qarma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qarma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
