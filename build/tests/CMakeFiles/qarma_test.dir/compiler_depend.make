# Empty compiler generated dependencies file for qarma_test.
# This may be replaced when dependencies are built.
