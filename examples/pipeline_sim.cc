/**
 * @file
 * Full pipeline simulation: run one workload profile on the Table IV
 * machine under any of the five system configurations and dump the
 * detailed statistics (the gem5-stats view of a single cell of
 * Fig. 14).
 *
 * Usage:  ./build/examples/pipeline_sim [workload] [mechanism] [ops]
 *         mechanism: baseline | watchdog | pa | aos | pa+aos
 * e.g.:   ./build/examples/pipeline_sim hmmer aos 500000
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "core/aos_system.hh"

using namespace aos;
using baselines::Mechanism;

namespace {

Mechanism
parseMechanism(const char *name)
{
    if (!std::strcmp(name, "baseline"))
        return Mechanism::kBaseline;
    if (!std::strcmp(name, "watchdog"))
        return Mechanism::kWatchdog;
    if (!std::strcmp(name, "pa"))
        return Mechanism::kPa;
    if (!std::strcmp(name, "aos"))
        return Mechanism::kAos;
    if (!std::strcmp(name, "pa+aos"))
        return Mechanism::kPaAos;
    fatal("unknown mechanism '%s' (baseline|watchdog|pa|aos|pa+aos)",
          name);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *workload = argc > 1 ? argv[1] : "hmmer";
    const Mechanism mech =
        argc > 2 ? parseMechanism(argv[2]) : Mechanism::kAos;
    const u64 ops = argc > 3 ? std::strtoull(argv[3], nullptr, 0)
                             : 500'000;

    const auto &profile = workloads::profileByName(workload);
    baselines::SystemOptions options;
    options.mech = mech;
    options.measureOps = ops;

    std::printf("== pipeline_sim: %s under %s, %lu source ops ==\n\n",
                workload, baselines::mechanismName(mech), ops);

    core::AosSystem system(profile, options);
    const core::RunResult r = system.run();

    std::printf("core:\n");
    std::printf("  cycles                 %12lu\n", r.core.cycles);
    std::printf("  committed micro-ops    %12lu\n", r.core.committed);
    std::printf("  IPC                    %12.3f\n", r.core.ipc());
    std::printf("  loads / stores         %12lu / %lu\n", r.core.loads,
                r.core.stores);
    std::printf("  branches (MPKI)        %12lu (%.2f)\n",
                r.core.branches, r.branchMpki);
    std::printf("  stalls: rob/lsq/mcq    %12lu / %lu / %lu\n",
                r.core.robFullStalls, r.core.lsqFullStalls,
                r.core.mcqFullStalls);
    std::printf("  retire delayed (MCQ)   %12lu\n", r.core.retireDelayed);

    std::printf("\ninstruction mix (measured window):\n");
    std::printf("  total                  %12lu\n", r.mix.total);
    std::printf("  unsigned load/store    %12lu / %lu\n",
                r.mix.unsignedLoads, r.mix.unsignedStores);
    std::printf("  signed   load/store    %12lu / %lu\n",
                r.mix.signedLoads, r.mix.signedStores);
    std::printf("  bndstr+bndclr          %12lu\n", r.mix.boundsOps);
    std::printf("  pac*/aut*/xpac*        %12lu\n", r.mix.pacOps);
    std::printf("  watchdog micro-ops     %12lu\n", r.mix.wdOps);

    const auto &mem = system.memory();
    std::printf("\nmemory system:\n");
    std::printf("  L1-D hit rate          %12.2f%% (%lu accesses)\n",
                100.0 * (1.0 - mem.l1d().stats().missRate()),
                mem.l1d().stats().accesses());
    if (mem.l1b()) {
        std::printf("  L1-B hit rate          %12.2f%% (%lu accesses)\n",
                    100.0 * (1.0 - mem.l1b()->stats().missRate()),
                    mem.l1b()->stats().accesses());
    }
    std::printf("  L2 hit rate            %12.2f%% (%lu accesses)\n",
                100.0 * (1.0 - mem.l2().stats().missRate()),
                mem.l2().stats().accesses());
    std::printf("  network traffic        %12lu bytes (measured window)\n",
                r.networkTraffic);

    if (mech == Mechanism::kAos || mech == Mechanism::kPaAos) {
        std::printf("\nMCU / bounds:\n");
        std::printf("  checked ops            %12lu\n",
                    r.mcuStats.checkedOps);
        std::printf("  unchecked ops          %12lu\n",
                    r.mcuStats.uncheckedOps);
        std::printf("  HBT accesses per check %12.3f\n",
                    r.mcuStats.avgWaysPerCheck());
        std::printf("  BWB hit rate           %12.2f%%\n",
                    100.0 * r.bwb.hitRate());
        std::printf("  bounds forwards        %12lu\n",
                    r.mcuStats.forwards);
        std::printf("  replays                %12lu\n",
                    r.mcuStats.replays);
        std::printf("  HBT resizes            %12lu\n", r.hbt.resizes);
        std::printf("  HBT occupied records   %12lu\n", r.hbt.occupied);
        std::printf("  violations             %12lu\n", r.violations);
    }
    return 0;
}
