/**
 * @file
 * Trace record/replay round trip: the reproducibility workflow.
 *
 * Records a workload's instrumented micro-op stream to a binary trace,
 * then replays the trace through a *fresh* machine and verifies the
 * simulation is cycle-for-cycle identical — the property that lets a
 * measurement be archived and re-examined later (or on another
 * machine) without the generator.
 *
 * Usage:  ./build/examples/trace_roundtrip [workload] [ops] [file]
 */

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "compiler/aos_passes.hh"
#include "cpu/ooo_core.hh"
#include "ir/trace.hh"
#include "workloads/synthetic_workload.hh"

using namespace aos;

namespace {

/** Skip warmup ops; the measured window starts at the phase mark. */
class MeasuredWindow : public ir::InstStream
{
  public:
    explicit MeasuredWindow(ir::InstStream *source) : _source(source) {}

    bool
    next(ir::MicroOp &op) override
    {
        while (_source->next(op)) {
            if (_started && op.kind != ir::OpKind::kPhaseMark)
                return true;
            if (op.kind == ir::OpKind::kPhaseMark)
                _started = true;
        }
        return false;
    }

  private:
    ir::InstStream *_source;
    bool _started = false;
};

cpu::CoreStats
simulate(ir::InstStream &stream)
{
    memsim::MemorySystem mem;
    cpu::OoOCore core(cpu::CoreConfig{}, pa::PointerLayout(16, 46), &mem,
                      nullptr);
    return core.run(stream);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *workload = argc > 1 ? argv[1] : "gobmk";
    const u64 ops = argc > 2 ? std::strtoull(argv[2], nullptr, 0)
                             : 200'000;
    const std::string path =
        argc > 3 ? argv[3] : "/tmp/aos_roundtrip.trc";

    std::printf("== trace round trip: %s, %lu ops ==\n\n", workload,
                static_cast<unsigned long>(ops));

    // 1. Record the instrumented stream (AOS pipeline) to disk.
    pa::PaContext pa_ctx;
    workloads::SyntheticWorkload source(
        workloads::profileByName(workload), ops);
    compiler::AosOptPass opt(&source);
    compiler::AosBackendPass backend(&opt, &pa_ctx);
    MeasuredWindow window(&backend);
    {
        ir::TraceWriter writer(path);
        ir::RecordingStream recorder(&window, &writer);
        const cpu::CoreStats live = simulate(recorder);
        writer.close(); // flush before replaying
        std::printf("live run:    %12lu ops, %12lu cycles "
                    "(trace: %lu records)\n",
                    live.committed, live.cycles,
                    static_cast<unsigned long>(writer.count()));

        // 2. Replay the trace through a fresh machine.
        ir::TraceReader reader(path);
        const cpu::CoreStats replay = simulate(reader);
        std::printf("trace replay:%12lu ops, %12lu cycles\n",
                    replay.committed, replay.cycles);

        const bool identical = live.cycles == replay.cycles &&
                               live.committed == replay.committed &&
                               live.mispredicts == replay.mispredicts;
        std::printf("\nround trip %s\n",
                    identical ? "IDENTICAL — measurement is archival"
                              : "DIVERGED (bug!)");
        std::remove(path.c_str());
        return identical ? 0 : 1;
    }
}
