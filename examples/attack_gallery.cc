/**
 * @file
 * Attack gallery: every exploit class from the paper's security
 * analysis (SVII, Figs. 1 and 12), run twice — once against the bare
 * allocator (the attack lands) and once under AOS (the attack is
 * caught), so the protection boundary is visible.
 *
 * Build & run:  ./build/examples/attack_gallery
 */

#include <cstdio>

#include "alloc/heap_allocator.hh"
#include "core/aos_runtime.hh"

using namespace aos;
using core::AosRuntime;
using core::Status;

namespace {

int gFailures = 0;

void
verdict(const char *attack, bool blocked)
{
    std::printf("  %-52s %s\n", attack,
                blocked ? "BLOCKED by AOS" : "!! NOT BLOCKED");
    gFailures += !blocked;
}

void
heapOverflow()
{
    std::printf("\n[1] Heap buffer overflow (spatial, adjacent)\n");
    AosRuntime rt;
    const Addr buf = rt.malloc(64);
    const Addr secret = rt.malloc(64);
    std::printf("  victim buffer at %#lx, secret at %#lx\n",
                rt.strip(buf), rt.strip(secret));
    // Classic overflow: write past the buffer into the neighbour.
    verdict("write buf[64..] into neighbour",
            rt.store(buf + 80) == Status::kBoundsViolation);
}

void
nonAdjacentOob()
{
    std::printf("\n[2] Non-adjacent OOB read (jumps over any redzone)\n");
    AosRuntime rt;
    const Addr buf = rt.malloc(64);
    for (int i = 0; i < 32; ++i)
        rt.malloc(64);
    // Redzone/trip-wire schemes (REST, Califorms) miss this: the
    // access lands far from the object, past any surrounding redzone.
    verdict("read buf + 4096 (over the redzone)",
            rt.load(buf + 4096) == Status::kBoundsViolation);
}

void
useAfterFree()
{
    std::printf("\n[3] Use-after-free / dangling pointer\n");
    AosRuntime rt;
    const Addr p = rt.malloc(128);
    rt.free(p);
    verdict("read through the dangling pointer",
            rt.load(p) == Status::kBoundsViolation);
    verdict("write through the dangling pointer",
            rt.store(p + 8) == Status::kBoundsViolation);
}

void
doubleFree()
{
    std::printf("\n[4] Double free (fastbin dup)\n");
    // Against the bare allocator the classic a-b-a pattern corrupts
    // the fastbin...
    alloc::HeapAllocator bare;
    const Addr a = bare.malloc(48);
    const Addr b = bare.malloc(48);
    bare.free(a);
    bare.free(b);
    const bool bare_corrupts =
        bare.free(a) == alloc::FreeResult::kCorrupting;
    std::printf("  bare allocator: free(a);free(b);free(a) %s\n",
                bare_corrupts ? "CORRUPTS the fastbin"
                              : "was rejected");

    // ...under AOS the second free of `a` has no bounds to clear.
    AosRuntime rt;
    const Addr pa_ = rt.malloc(48);
    const Addr pb = rt.malloc(48);
    rt.free(pa_);
    rt.free(pb);
    verdict("free(a) a second time",
            rt.free(pa_) == Status::kDoubleFree);
}

void
houseOfSpirit()
{
    std::printf("\n[5] House of Spirit (Fig. 1)\n");
    // The attacker crafts a believable chunk header at an address they
    // control (fchunk[0]) and frees it; the next malloc returns
    // attacker-controlled memory.
    alloc::HeapAllocator bare;
    const Addr fake = 0x00601040; // &fchunk[0].fd
    bare.forgeChunkHeader(fake, 0x30);
    bare.free(fake);
    const Addr victim = bare.malloc(0x30);
    std::printf("  bare allocator: malloc(0x30) returned %#lx (%s)\n",
                victim,
                victim == fake ? "ATTACKER-CONTROLLED"
                               : "legitimate");

    AosRuntime rt;
    rt.heap().forgeChunkHeader(fake, 0x30);
    // bndclr precedes free(): a pointer that was never signed (or
    // whose bounds don't exist) cannot be freed.
    const Status blocked = rt.free(fake);
    verdict("free(crafted chunk)", blocked == Status::kInvalidFree);
    const Addr after = rt.malloc(0x30);
    verdict("subsequent malloc stays on the real heap",
            rt.strip(after) != fake);
}

void
invalidFree()
{
    std::printf("\n[6] free() of an arbitrary pointer\n");
    AosRuntime rt;
    rt.malloc(64);
    verdict("free(stack address)",
            rt.free(0x7ffff123) == Status::kInvalidFree);
}

void
metadataCorruption()
{
    std::printf("\n[7] Heap metadata (chunk header) corruption\n");
    AosRuntime rt;
    const Addr p = rt.malloc(64);
    // Unlink-style attacks overwrite size/fd/bk fields just before the
    // user data.
    verdict("overwrite chunk size field (p-16)",
            rt.store(p - 16) == Status::kBoundsViolation);
    verdict("overwrite fd pointer (p-8)",
            rt.store(p - 8) == Status::kBoundsViolation);
}

void
pointerForging()
{
    std::printf("\n[8] PAC/AHC forging (SVII-C)\n");
    AosRuntime rt;
    const Addr p = rt.malloc(64);
    // Strip the AHC via integer-overflow-style corruption: autm
    // (on-load authentication) rejects the now-unsigned pointer.
    const Addr no_ahc = p & ~(u64{3} << 62);
    verdict("AHC zeroed: autm authentication",
            rt.authenticate(no_ahc) == Status::kAuthFailure);
    // Flip PAC bits: the bounds lookup lands in the wrong row.
    const Addr wrong_pac = p ^ (u64{0x5} << 50);
    verdict("PAC corrupted: bounds check",
            rt.load(wrong_pac) == Status::kBoundsViolation);
}

void
ropReturnAddress()
{
    std::printf("\n[9] ROP: return-address overwrite (PA, Fig. 3)\n");
    AosRuntime rt;
    const auto &pa = rt.paContext();
    const Addr lr = 0x00400b00;
    const Addr signed_lr = pa.pacia(lr, /*sp=*/0x7ffff000);
    const Addr gadget = (signed_lr & ~u64{0xfffff}) | 0x41414;
    const bool blocked =
        pa.autia(gadget, 0x7ffff000, nullptr) == pa::AuthResult::kFail;
    verdict("autia rejects the corrupted return address", blocked);
}

void
secretExfiltration()
{
    std::printf("\n[10] Heartbleed-style over-read of a real secret\n");
    AosRuntime rt;
    // The victim process holds a key in a heap buffer adjacent (in raw
    // memory) to an attacker-reachable request buffer.
    const Addr request = rt.malloc(64);
    const Addr keybuf = rt.malloc(64);
    rt.write64(keybuf, 0x4b45595f4b455921ull); // "KEY_KEY!"

    // The bytes really are in memory right past the request buffer...
    const Addr raw_key = rt.strip(keybuf);
    std::printf("  raw memory at the key really holds  %#018lx\n",
                rt.dataMemory().read64(raw_key));

    // ...but the over-read through the request pointer both faults and
    // returns nothing (precise exceptions, SIII-C4).
    u64 leaked = 0;
    const Addr probe = request + (raw_key - rt.strip(request));
    const Status got = rt.read64(probe, &leaked);
    verdict("over-read returns no data",
            got == Status::kBoundsViolation && leaked == 0);
}

void
knownLimitation()
{
    std::printf("\n[11] Known limitation: intra-object overflow "
                "(SVII-F)\n");
    AosRuntime rt;
    // struct { char name[16]; void (*callback)(); } obj;
    const Addr obj = rt.malloc(32);
    const bool caught = rt.store(obj + 24) != Status::kOk;
    std::printf("  %-52s %s\n", "overflow name[] into callback field",
                caught ? "caught (unexpected!)"
                       : "not caught — bounds narrowing is future work");
}

} // namespace

int
main()
{
    std::printf("== AOS attack gallery ==\n");
    heapOverflow();
    nonAdjacentOob();
    useAfterFree();
    doubleFree();
    houseOfSpirit();
    invalidFree();
    metadataCorruption();
    pointerForging();
    ropReturnAddress();
    secretExfiltration();
    knownLimitation();
    std::printf("\n%s\n", gFailures == 0
                              ? "All modeled attacks blocked."
                              : "SOME ATTACKS WERE NOT BLOCKED!");
    return gFailures == 0 ? 0 : 1;
}
