/**
 * @file
 * PAC collision study (paper SVI / SVII-E): the analytical models next
 * to an empirical run against the real QARMA + HBT stack.
 *
 * For a chosen live-set size it reports the predicted row-occupancy
 * distribution, the predicted steady-state associativity, and the
 * forging-resistance numbers — then builds the live set for real and
 * compares.
 *
 * Usage:  ./build/examples/collision_study [live_objects] [pac_bits]
 */

#include <cstdio>
#include <cstdlib>

#include "analysis/pac_analysis.hh"
#include "common/stats.hh"
#include "core/aos_runtime.hh"

using namespace aos;

int
main(int argc, char **argv)
{
    const u64 live = argc > 1 ? std::strtoull(argv[1], nullptr, 0)
                              : 200'000;
    const unsigned bits =
        argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 0))
                 : 16;

    std::printf("== PAC collision study: %lu live objects, %u-bit "
                "PACs ==\n\n",
                static_cast<unsigned long>(live), bits);

    const double lambda =
        static_cast<double>(live) / static_cast<double>(u64{1} << bits);
    std::printf("analytical model:\n");
    std::printf("  mean records per row (lambda)   %10.3f\n", lambda);
    std::printf("  expected rows over 8 records    %10.2f\n",
                analysis::expectedOverflowingRows(live, bits, 8));
    std::printf("  predicted steady associativity  %10u\n",
                analysis::predictedAssociativity(live, bits, 8));
    std::printf("  50%%-forgery attempts            %10llu\n",
                static_cast<unsigned long long>(
                    analysis::attemptsForGuessProbability(bits, 0.5)));
    std::printf("  wild-pointer escape probability %10.2e\n",
                analysis::wildPointerEscapeProb(live, bits, 1024));

    std::printf("\nempirical (QARMA signing + real HBT):\n");
    core::RuntimeConfig config;
    config.pacBits = bits;
    config.vaBits = bits <= 16 ? 46 : 62 - bits;
    core::AosRuntime rt(config);
    std::vector<Addr> ptrs;
    ptrs.reserve(live);
    for (u64 i = 0; i < live; ++i) {
        const Addr p = rt.malloc(16 + (i % 128) * 8);
        if (p == 0) {
            std::printf("  heap exhausted at %lu objects\n",
                        static_cast<unsigned long>(i));
            break;
        }
        ptrs.push_back(p);
    }

    Distribution occ;
    for (u64 pac = 0; pac < rt.hbt().rows(); ++pac)
        occ.sample(rt.hbt().rowOccupancy(pac));
    std::printf("  mean records per row            %10.3f\n", occ.mean());
    std::printf("  stdev (Poisson predicts %.2f)   %10.3f\n",
                std::sqrt(lambda), occ.stdev());
    std::printf("  max row occupancy               %10.0f\n", occ.max());
    std::printf("  final associativity             %10u\n",
                rt.hbt().ways());
    std::printf("  resizes performed               %10lu\n",
                rt.hbt().stats().resizes);

    // Empirical forging probe: random PAC guesses against one target.
    const Addr target = ptrs.front();
    const Addr raw = rt.strip(target);
    const auto &layout = rt.paContext().layout();
    u64 hits = 0;
    const u64 trials = 20'000;
    for (u64 i = 0; i < trials; ++i) {
        const Addr forged = layout.compose(raw, i & ((u64{1} << bits) - 1),
                                           layout.ahc(target));
        hits += rt.load(forged) == core::Status::kOk;
    }
    std::printf("  forged-PAC acceptance rate      %10.4f%% "
                "(%lu of %lu guesses)\n",
                100.0 * static_cast<double>(hits) / trials,
                static_cast<unsigned long>(hits),
                static_cast<unsigned long>(trials));

    const bool agree =
        rt.hbt().ways() == analysis::predictedAssociativity(
                               ptrs.size(), bits, 8);
    std::printf("\nmodel and hardware %s on the final table size.\n",
                agree ? "AGREE" : "DISAGREE");
    return 0;
}
