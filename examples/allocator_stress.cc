/**
 * @file
 * Allocator + HBT stress: drives heavy malloc/free churn through the
 * protected runtime, reporting PAC collision pressure, gradual HBT
 * resizing and end-to-end integrity (every live object still checks,
 * every freed object still faults).
 *
 * Build & run:  ./build/examples/allocator_stress [live_target]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "core/aos_runtime.hh"

using namespace aos;
using core::AosRuntime;
using core::Status;

int
main(int argc, char **argv)
{
    const u64 live_target =
        argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 600'000;
    const u64 churn_ops = live_target / 2;

    AosRuntime rt;
    Rng rng(2024);
    std::vector<Addr> live;
    live.reserve(live_target);

    std::printf("== AOS allocator stress ==\n");
    std::printf("growing the live set to %lu objects "
                "(initial HBT capacity: 512K records)...\n",
                live_target);

    for (u64 i = 0; i < live_target; ++i) {
        const Addr p = rt.malloc(16 + rng.below(496));
        if (p == 0) {
            std::printf("heap exhausted at %lu objects\n", i);
            break;
        }
        live.push_back(p);
    }
    std::printf("  live=%lu  HBT ways=%u  resizes=%lu  occupied=%lu\n",
                static_cast<unsigned long>(live.size()), rt.hbt().ways(),
                rt.hbt().stats().resizes, rt.hbt().stats().occupied);

    // Row-occupancy profile: the PAC-collision picture of SVI.
    Distribution occ;
    for (u64 pac = 0; pac < rt.hbt().rows(); ++pac)
        occ.sample(rt.hbt().rowOccupancy(pac));
    std::printf("  per-row records: avg %.2f  max %.0f  stdev %.2f "
                "(uniform hashing)\n",
                occ.mean(), occ.max(), occ.stdev());

    std::printf("churning %lu malloc/free pairs...\n", churn_ops);
    std::vector<Addr> freed;
    for (u64 i = 0; i < churn_ops; ++i) {
        const u64 idx = rng.below(live.size());
        if (rt.free(live[idx]) != Status::kOk) {
            std::printf("unexpected free failure!\n");
            return 1;
        }
        if (freed.size() < 1000)
            freed.push_back(live[idx]);
        const Addr p = rt.malloc(16 + rng.below(496));
        if (p == 0) {
            live[idx] = live.back();
            live.pop_back();
            continue;
        }
        live[idx] = p;
    }

    std::printf("verifying integrity after churn...\n");
    u64 live_ok = 0;
    for (const Addr p : live)
        live_ok += rt.load(p) == Status::kOk;
    // A sample of stale pointers: they must fault unless their exact
    // chunk was recycled (same base -> same PAC -> valid new bounds).
    u64 stale_faulted = 0, stale_recycled = 0;
    for (const Addr p : freed) {
        if (rt.load(p) == Status::kOk)
            ++stale_recycled;
        else
            ++stale_faulted;
    }
    std::printf("  live objects checking OK:   %lu / %lu\n", live_ok,
                static_cast<unsigned long>(live.size()));
    std::printf("  stale pointers faulting:    %lu / %lu "
                "(%lu recycled chunks alias by design)\n",
                stale_faulted, static_cast<unsigned long>(freed.size()),
                stale_recycled);
    std::printf("  HBT: ways=%u resizes=%lu occupied=%lu "
                "insert-failures=%lu\n",
                rt.hbt().ways(), rt.hbt().stats().resizes,
                rt.hbt().stats().occupied,
                rt.hbt().stats().insertFailures);
    std::printf("  allocator: %lu allocs, %lu frees, peak %lu active, "
                "%lu coalesces\n",
                rt.heap().stats().allocCalls, rt.heap().stats().freeCalls,
                rt.heap().stats().maxActive,
                rt.heap().stats().coalesces);

    const bool ok = live_ok == live.size();
    std::printf("\n%s\n", ok ? "stress PASSED" : "stress FAILED");
    return ok ? 0 : 1;
}
