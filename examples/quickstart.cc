/**
 * @file
 * Quickstart: the AOS public API in five minutes.
 *
 * Shows the life of a protected heap object — allocation (pacma +
 * bndstr), checked accesses, deallocation (bndclr + xpacm + re-sign) —
 * and what happens when a pointer goes wrong.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/aos_runtime.hh"

using namespace aos;
using core::AosRuntime;
using core::Status;

int
main()
{
    // One AosRuntime per protected process: it owns the PA keys, the
    // heap, and the hashed bounds table the OS mapped for us.
    AosRuntime rt;

    std::printf("== AOS quickstart ==\n\n");

    // malloc() returns a *signed* pointer: the PAC and AHC live in the
    // upper bits and travel with the pointer for free.
    const Addr ptr = rt.malloc(100);
    std::printf("malloc(100)      -> %#018lx (signed=%s)\n", ptr,
                rt.isSigned(ptr) ? "yes" : "no");
    std::printf("  raw address    -> %#018lx (xpacm strips PAC+AHC)\n",
                rt.strip(ptr));

    // Every dereference of a signed pointer is bounds-checked by the
    // MCU; in-bounds accesses pass...
    std::printf("\nload  ptr[0]     -> %s\n",
                core::statusName(rt.load(ptr)));
    std::printf("store ptr[99]    -> %s\n",
                core::statusName(rt.store(ptr + 99)));

    // ...and pointer arithmetic keeps the protection, with no extra
    // metadata-propagation instructions.
    const Addr elem = ptr + 64;
    std::printf("load  ptr+64     -> %s (still signed)\n",
                core::statusName(rt.load(elem)));

    // Out of bounds: caught.
    std::printf("load  ptr[100]   -> %s\n",
                core::statusName(rt.load(ptr + 100)));

    // free() clears the bounds but leaves the pointer signed — the
    // dangling pointer is now locked.
    std::printf("\nfree(ptr)        -> %s\n",
                core::statusName(rt.free(ptr)));
    std::printf("load  ptr (UAF)  -> %s\n",
                core::statusName(rt.load(ptr)));
    std::printf("free(ptr) again  -> %s\n",
                core::statusName(rt.free(ptr)));

    // Unsigned (stack/global) pointers are never checked: AOS is
    // selective, which is what makes it cheap enough to keep on.
    std::printf("\nload 0x601000    -> %s (unsigned: unchecked)\n",
                core::statusName(rt.load(0x601000)));

    const auto &stats = rt.stats();
    std::printf("\nstats: %lu mallocs, %lu frees, %lu checked accesses, "
                "%lu violations caught\n",
                stats.mallocs, stats.frees, stats.checkedAccesses,
                stats.boundsViolations + stats.doubleFrees +
                    stats.invalidFrees);
    return 0;
}
