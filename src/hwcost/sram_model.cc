#include "hwcost/sram_model.hh"

#include <cmath>

namespace aos::hwcost {

SramCost
estimate(const SramSpec &spec)
{
    const double size = static_cast<double>(spec.sizeBytes);
    SramCost cost;
    // Coefficients fitted to the published Table I rows (45 nm).
    cost.areaMm2 = 1.52e-5 * std::pow(size, 0.88);
    cost.accessTimeNs = 0.0848 + 0.00588 * std::cbrt(size);
    cost.dynamicEnergyPj = 3.47e-4 + 2.0e-6 * std::pow(size, 0.9);
    cost.leakagePowerMw = 0.00186 * size + 0.45;
    return cost;
}

const std::vector<TableOneRow> &
tableOneRows()
{
    static const std::vector<TableOneRow> rows = {
        // name, bytes                  area,   time,   energy,  leakage
        {{"MCQ", 1331},        {0.0096, 0.1383, 0.0014, 3.2269}},
        {{"BWB", 384},         {0.00285, 0.12755, 0.00077, 1.10712}},
        {{"L1-B Cache", 32768},{0.1573, 0.2984, 0.0347, 58.295}},
        {{"L1-D Cache", 65536},{0.2628, 0.3217, 0.0436, 122.69}},
    };
    return rows;
}

} // namespace aos::hwcost
