/**
 * @file
 * CACTI-style analytical SRAM cost model (paper Table I).
 *
 * The paper estimates the area, access time, dynamic access energy and
 * leakage of the AOS structures with CACTI 6.0 at 45 nm. CACTI itself
 * is a large external tool; what Table I needs from it is a consistent
 * scaling of four metrics with SRAM capacity. This model uses the
 * standard analytical forms —
 *
 *   area    ~ c_a * bits^0.88           (sub-linear: periphery amortizes)
 *   latency ~ t_0 + c_t * bits^(1/3)    (wordline/bitline RC growth)
 *   energy  ~ c_e * bits^0.79           (bitline + decoder energy)
 *   leakage ~ c_l * bits + l_0          (per-cell leakage)
 *
 * — with coefficients calibrated against the published Table I rows at
 * 45 nm. The Table I bench prints the model's estimates next to the
 * paper's CACTI values.
 */

#ifndef AOS_HWCOST_SRAM_MODEL_HH
#define AOS_HWCOST_SRAM_MODEL_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace aos::hwcost {

/** One SRAM-like structure to estimate. */
struct SramSpec
{
    std::string name;
    u64 sizeBytes = 0;
};

/** Estimated costs at 45 nm. */
struct SramCost
{
    double areaMm2 = 0;
    double accessTimeNs = 0;
    double dynamicEnergyPj = 0;
    double leakagePowerMw = 0;
};

/** Estimate the cost of @p spec at 45 nm. */
SramCost estimate(const SramSpec &spec);

/** The four structures of paper Table I with their published values. */
struct TableOneRow
{
    SramSpec spec;
    SramCost paper; //!< Published CACTI 6.0 numbers.
};

const std::vector<TableOneRow> &tableOneRows();

} // namespace aos::hwcost

#endif // AOS_HWCOST_SRAM_MODEL_HH
