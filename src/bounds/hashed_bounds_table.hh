/**
 * @file
 * The hashed bounds table (HBT) with gradual resizing (paper SV-B,
 * SV-F3, Fig. 10).
 *
 * The HBT is a per-process table of compressed bounds indexed by PAC:
 * 2^pacBits rows, each row a set of ways, each way one 64-byte line
 * holding eight 8-byte bounds records. Addressing follows Eq. 1/2:
 *
 *   RowOffset = PAC << (log2(assoc) + 6)
 *   BndAddr   = BND_BASE + RowOffset + (Way << 6)
 *
 * When an insertion finds every slot of a row occupied, the OS
 * allocates a new table with doubled associativity and a
 * micro-architectural table manager migrates rows one at a time while
 * the process keeps running. During migration, accesses resolve to the
 * old or the new table per Fig. 10: way >= oldAssoc or row < RowPtr go
 * to the new table, everything else to the old one.
 *
 * The table's backing storage lives at simulated addresses (the
 * returned way addresses are what the MCU sends to the cache
 * hierarchy), but the contents are held host-side in this object.
 */

#ifndef AOS_BOUNDS_HASHED_BOUNDS_TABLE_HH
#define AOS_BOUNDS_HASHED_BOUNDS_TABLE_HH

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "bounds/compression.hh"
#include "common/types.hh"

namespace aos::bounds {

/** Records per 64-byte way line with 8-byte compressed bounds. */
inline constexpr unsigned kSlotsPerWay = 8;

/** Records per way line with 16-byte uncompressed bounds (ablation). */
inline constexpr unsigned kWideSlotsPerWay = 4;

/** Statistics of table behaviour (feeds Fig. 17 and SIX-A.1). */
struct HbtStats
{
    u64 inserts = 0;
    u64 insertFailures = 0; //!< Row-full events that forced a resize.
    u64 clears = 0;
    u64 clearFailures = 0;  //!< bndclr that found no matching bounds.
    u64 resizes = 0;
    u64 migratedRows = 0;
    u64 occupied = 0;       //!< Currently live records.
    u64 maxOccupied = 0;
};

/** One row/way line view: the records at a way address. */
struct WayLine
{
    Addr addr = 0;                  //!< Simulated 64-byte-aligned address.
    const Compressed *slots = nullptr; //!< count records.
    unsigned count = 0;             //!< Records in this line.
};

/** A located occupied record (fault injection / table inspection). */
struct SlotRef
{
    u64 pac = 0;
    unsigned way = 0;    //!< Fig. 10 global way index.
    unsigned slot = 0;
    Compressed record = kEmpty;
};

class HashedBoundsTable
{
  public:
    /**
     * @param base Simulated base address of the initial table.
     * @param pac_bits PAC width (rows = 2^pac_bits).
     * @param initial_assoc Initial number of ways (paper: 1).
     * @param records_per_way Bounds records per 64-byte way line: 8
     *        with compression (default), 4 with 16-byte bounds (the
     *        Fig. 15 no-compression ablation).
     * @param next_base Where the OS maps each successive resized table;
     *        consecutive tables get disjoint address ranges.
     */
    HashedBoundsTable(Addr base, unsigned pac_bits,
                      unsigned initial_assoc = 1,
                      unsigned records_per_way = kSlotsPerWay,
                      Addr next_base = 0x3800'0000'0000ull);

    /** Records per way line (8 compressed / 4 wide). */
    unsigned recordsPerWay() const { return _recordsPerWay; }

    /** Total ways currently addressable (new table's assoc if resizing). */
    unsigned ways() const;

    /** Associativity of the committed (old) table. */
    unsigned primaryAssoc() const { return _primary.assoc; }

    bool resizing() const { return _next.has_value(); }

    /** Simulated address of (pac, way), resolved per Fig. 10. */
    Addr wayAddr(u64 pac, unsigned way) const;

    /** Read the eight records of (pac, way), resolved per Fig. 10. */
    WayLine readWay(u64 pac, unsigned way) const;

    /**
     * Occupancy-check + store for bndstr: scan ways from 0 looking for
     * an empty slot; on success write the record and return the way
     * used. Returns nullopt when the whole row is full (bounds-store
     * failure -> AOS exception -> OS resize).
     */
    std::optional<unsigned> insert(u64 pac, Compressed record);

    /**
     * bndclr: find the record whose lower bound equals @p raw_addr and
     * zero it. Returns the way on success, nullopt on failure (double
     * free / invalid free).
     */
    std::optional<unsigned> clear(u64 pac, Addr raw_addr);

    /**
     * Bounds check for a load/store at @p addr, starting the way
     * search at @p start_way (the BWB hint). @p ways_touched returns
     * how many way lines were read. Returns the way containing valid
     * bounds, or nullopt (bounds-checking failure).
     */
    std::optional<unsigned> check(u64 pac, Addr addr, unsigned start_way,
                                  unsigned *ways_touched) const;

    /**
     * Begin doubling the associativity. The caller (OS model) decides
     * when; rows migrate via migrateRow(). A call while a resize is
     * already in flight is a no-op. Offers the strong exception
     * guarantee: if allocating the doubled table throws, the table is
     * unchanged and still usable at its old capacity.
     */
    void beginResize();

    /**
     * Test/fault hook invoked just before beginResize() allocates the
     * doubled table, with the new table's slot count. Throwing from it
     * models OS allocation failure.
     */
    std::function<void(u64 slots)> onResizeAlloc;

    // -- Fault-injection surface (src/faultinject, DESIGN.md §8). The
    // -- mutators keep the occupancy statistics consistent so corrupted
    // -- tables remain safe to keep simulating.

    /**
     * Find the first occupied record at or after row @p start_pac
     * (wrapping). Returns nullopt when the table is empty.
     */
    std::optional<SlotRef> findOccupied(u64 start_pac) const;

    /**
     * Overwrite one record with an arbitrary (possibly corrupt) value,
     * returning the previous contents.
     */
    Compressed corruptRecord(u64 pac, unsigned way, unsigned slot,
                             Compressed value);

    /** Zero a whole way line; returns how many live records were lost. */
    unsigned zapLine(u64 pac, unsigned way);

    /**
     * XOR @p mask into record @p slot of the way line whose simulated
     * address is @p line_addr (a DRAM bit error on bounds metadata).
     * Returns {before, after}, or nullopt when the address is not
     * backed by the current tables.
     */
    std::optional<std::pair<Compressed, Compressed>>
    corruptLineAtAddr(Addr line_addr, unsigned slot, u64 mask);

    /** Migrate one row; returns true when migration completed. */
    bool migrateRow();

    /** Run the whole migration to completion (functional use). */
    void finishResize();

    u64 rows() const { return _rows; }

    /** Simulated base address of the primary table. */
    Addr base() const { return _primary.base; }

    /** Next row to migrate during an in-progress resize. */
    u64 migrationRow() const { return _rowPtr; }

    const HbtStats &stats() const { return _stats; }

    /** Number of live records in row @p pac (testing / collision study). */
    unsigned rowOccupancy(u64 pac) const;

  private:
    struct Table
    {
        Addr base = 0;
        unsigned assoc = 0;
        unsigned recordsPerWay = kSlotsPerWay;
        std::vector<Compressed> slots; // rows * assoc * recordsPerWay

        Compressed *
        way(u64 pac, unsigned w)
        {
            return &slots[(pac * assoc + w) * recordsPerWay];
        }

        const Compressed *
        way(u64 pac, unsigned w) const
        {
            return &slots[(pac * assoc + w) * recordsPerWay];
        }

        Addr
        wayAddr(u64 pac, unsigned w, unsigned assoc_log2) const
        {
            return base + (pac << (assoc_log2 + 6)) +
                   (static_cast<Addr>(w) << 6);
        }
    };

    /** Resolve (pac, way) to table + local way index per Fig. 10. */
    const Table &resolve(u64 pac, unsigned way, unsigned *local_way) const;
    Table &resolve(u64 pac, unsigned way, unsigned *local_way);

    /** Reverse-map a simulated line address to a table + row + way. */
    Table *tableForLine(Addr line_addr, u64 *pac, unsigned *way);

    u64 _rows;
    unsigned _pacBits;
    unsigned _recordsPerWay;
    Table _primary;
    std::optional<Table> _next;
    u64 _rowPtr = 0;    //!< First row not yet migrated.
    Addr _nextBase;     //!< Address where the next table will be mapped.
    HbtStats _stats;
};

} // namespace aos::bounds

#endif // AOS_BOUNDS_HASHED_BOUNDS_TABLE_HH
