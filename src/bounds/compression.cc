#include "bounds/compression.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace aos::bounds {

Compressed
compress(Addr base, u64 size)
{
    panic_if((base & 0xf) != 0,
             "bounds base %#lx is not 16-byte aligned", base);
    panic_if(size > mask(32), "size %#lx exceeds the 32-bit field", size);
    Compressed record = 0;
    record = insertBits(record, 28, 0, bits(base, 32, 4));
    record = insertBits(record, 60, 29, size);
    return record;
}

Decompressed
decompress(Compressed record)
{
    Decompressed out;
    out.lower = bits(record, 28, 0) << 4; // 33-bit value
    out.size = bits(record, 60, 29);
    out.upper = out.lower + out.size;
    return out;
}

u64
truncatedAddr(Compressed record, Addr addr)
{
    const u64 low_bnd32 = bits(record, 28, 28); // LowBnd[32]
    const u64 addr32 = bits(addr, 32);
    const u64 carry = low_bnd32 & (addr32 ^ 1);
    return (carry << 33) | bits(addr, 32, 0);
}

bool
inBounds(Compressed record, Addr addr)
{
    if (record == kEmpty)
        return false;
    const Decompressed d = decompress(record);
    const u64 taddr = truncatedAddr(record, addr);
    return taddr >= d.lower && taddr < d.upper;
}

bool
matchesBase(Compressed record, Addr addr)
{
    if (record == kEmpty)
        return false;
    const Decompressed d = decompress(record);
    return truncatedAddr(record, addr) == d.lower;
}

} // namespace aos::bounds
