/**
 * @file
 * The bounds way buffer (BWB) of paper SV-C.
 *
 * A small fully-associative LRU tag buffer that remembers which HBT way
 * held the valid bounds for a recently checked pointer, so the next
 * check for the same object starts at the right way instead of way 0.
 *
 * The 32-bit tag (Algorithm 2) concatenates the PAC, a window of
 * pointer address bits chosen by the AHC so that every address inside
 * the same object produces the same tag, and the AHC itself:
 *
 *   AHC = 1 (<=64 B object):  PAC[15:0] | Addr[20:7]  | AHC[1:0]
 *   AHC = 2 (<=256 B object): PAC[15:0] | Addr[23:10] | AHC[1:0]
 *   AHC = 3 (larger):         PAC[15:0] | Addr[25:12] | AHC[1:0]
 */

#ifndef AOS_BOUNDS_BOUNDS_WAY_BUFFER_HH
#define AOS_BOUNDS_BOUNDS_WAY_BUFFER_HH

#include <vector>

#include "common/types.hh"

namespace aos::bounds {

/** BWB statistics (Fig. 17 reports the hit rate). */
struct BwbStats
{
    u64 hits = 0;
    u64 misses = 0;
    u64 updates = 0;

    double
    hitRate() const
    {
        const u64 total = hits + misses;
        return total ? static_cast<double>(hits) / total : 0.0;
    }
};

class BoundsWayBuffer
{
  public:
    /** @param entries Buffer capacity (Table IV: 64, LRU). */
    explicit BoundsWayBuffer(unsigned entries = 64);

    /** Compute the Algorithm 2 tag. */
    static u32 tagFor(Addr addr, u64 ahc, u64 pac);

    /**
     * Look up the way hint for a pointer. Returns the remembered way,
     * or 0 (start the search at way 0) on a miss.
     */
    unsigned lookup(Addr addr, u64 ahc, u64 pac);

    /** Record the way that held valid bounds after an MCQ retire. */
    void update(Addr addr, u64 ahc, u64 pac, unsigned way);

    /** Drop every entry (e.g. after an HBT resize). */
    void invalidate();

    const BwbStats &stats() const { return _stats; }
    unsigned capacity() const { return _capacity; }

  private:
    struct Entry
    {
        bool valid = false;
        u32 tag = 0;
        unsigned way = 0;
        u64 lru = 0;
    };

    unsigned _capacity;
    std::vector<Entry> _entries;
    u64 _stamp = 0;
    BwbStats _stats;
};

} // namespace aos::bounds

#endif // AOS_BOUNDS_BOUNDS_WAY_BUFFER_HH
