#include "bounds/bounds_way_buffer.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace aos::bounds {

BoundsWayBuffer::BoundsWayBuffer(unsigned entries) : _capacity(entries)
{
    fatal_if(entries == 0, "BWB needs at least one entry");
    _entries.resize(entries);
}

u32
BoundsWayBuffer::tagFor(Addr addr, u64 ahc, u64 pac)
{
    u64 window;
    switch (ahc) {
      case 1:
        window = bits(addr, 20, 7);
        break;
      case 2:
        window = bits(addr, 23, 10);
        break;
      default:
        window = bits(addr, 25, 12);
        break;
    }
    return static_cast<u32>(((pac & mask(16)) << 16) | (window << 2) |
                            (ahc & 0x3));
}

unsigned
BoundsWayBuffer::lookup(Addr addr, u64 ahc, u64 pac)
{
    const u32 tag = tagFor(addr, ahc, pac);
    for (auto &entry : _entries) {
        if (entry.valid && entry.tag == tag) {
            ++_stats.hits;
            entry.lru = ++_stamp;
            return entry.way;
        }
    }
    ++_stats.misses;
    return 0;
}

void
BoundsWayBuffer::update(Addr addr, u64 ahc, u64 pac, unsigned way)
{
    const u32 tag = tagFor(addr, ahc, pac);
    ++_stats.updates;
    Entry *victim = &_entries[0];
    for (auto &entry : _entries) {
        if (entry.valid && entry.tag == tag) {
            entry.way = way;
            entry.lru = ++_stamp;
            return;
        }
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        if (entry.lru < victim->lru)
            victim = &entry;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->way = way;
    victim->lru = ++_stamp;
}

void
BoundsWayBuffer::invalidate()
{
    for (auto &entry : _entries)
        entry = Entry();
}

} // namespace aos::bounds
