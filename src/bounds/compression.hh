/**
 * @file
 * The 8-byte bounds-compression codec of paper Fig. 9.
 *
 * A bounds record exploits two malloc() guarantees: the base address is
 * 16-byte aligned, and sizes fit in 32 bits. The 64-bit record is:
 *
 *   bits [63:61]  reserved (zero)
 *   bits [60:29]  Size[31:0]
 *   bits [28:0]   LowBnd[32:4]   (base address bits 32..4)
 *
 * For checking, a 34-bit truncated address tAddr = C : Addr[32:0] is
 * compared against the decompressed lower bound (LowBnd << 4) and upper
 * bound (LowBnd << 4) + Size, where C = LowBnd[32] & !Addr[32]
 * compensates for the carry lost by keeping only 33 address bits.
 *
 * The all-zero record is the "empty slot" sentinel in the HBT; real
 * allocations always have a nonzero base so no live record encodes to
 * zero.
 */

#ifndef AOS_BOUNDS_COMPRESSION_HH
#define AOS_BOUNDS_COMPRESSION_HH

#include "common/types.hh"

namespace aos::bounds {

/** An 8-byte compressed bounds record. */
using Compressed = u64;

/** The empty-slot sentinel stored in unoccupied HBT slots. */
inline constexpr Compressed kEmpty = 0;

/** Compress (base, size) into an 8-byte record. */
Compressed compress(Addr base, u64 size);

/** Decompressed view used by the checker. */
struct Decompressed
{
    u64 lower = 0; //!< 34-bit lower bound (LowBnd << 4).
    u64 upper = 0; //!< 34-bit upper bound (lower + size).
    u64 size = 0;  //!< Original 32-bit size.
};

/** Expand a compressed record. */
Decompressed decompress(Compressed record);

/** The 34-bit truncated address tAddr = C : Addr[32:0] (Fig. 9b). */
u64 truncatedAddr(Compressed record, Addr addr);

/** True iff @p addr falls inside the bounds of @p record. */
bool inBounds(Compressed record, Addr addr);

/** True iff @p addr is exactly the object base (bndclr's test). */
bool matchesBase(Compressed record, Addr addr);

/**
 * Uncompressed 16-byte representation (full lower/upper bounds), kept
 * for the Fig. 15 bounds-compression ablation. Two of these per object
 * double the metadata footprint.
 */
struct WideBounds
{
    Addr lower = 0;
    Addr upper = 0;
};

} // namespace aos::bounds

#endif // AOS_BOUNDS_COMPRESSION_HH
