#include "bounds/hashed_bounds_table.hh"

#include <algorithm>

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace aos::bounds {

HashedBoundsTable::HashedBoundsTable(Addr base, unsigned pac_bits,
                                     unsigned initial_assoc,
                                     unsigned records_per_way,
                                     Addr next_base)
    : _rows(u64{1} << pac_bits), _pacBits(pac_bits),
      _recordsPerWay(records_per_way), _nextBase(next_base)
{
    fatal_if(!isPowerOf2(initial_assoc),
             "HBT associativity must be a power of two");
    fatal_if(records_per_way == 0 || records_per_way > kSlotsPerWay,
             "records per way must be in 1..%u", kSlotsPerWay);
    _primary.base = base;
    _primary.assoc = initial_assoc;
    _primary.recordsPerWay = records_per_way;
    _primary.slots.assign(_rows * initial_assoc * records_per_way, kEmpty);
}

unsigned
HashedBoundsTable::ways() const
{
    return _next ? _next->assoc : _primary.assoc;
}

const HashedBoundsTable::Table &
HashedBoundsTable::resolve(u64 pac, unsigned way, unsigned *local_way) const
{
    *local_way = way;
    if (!_next)
        return _primary;
    // Fig. 10: out-of-way accesses (way >= T1) and migrated rows
    // (pac < RowPtr) go to the new table; otherwise the old table.
    if (way >= _primary.assoc || pac < _rowPtr)
        return *_next;
    return _primary;
}

HashedBoundsTable::Table &
HashedBoundsTable::resolve(u64 pac, unsigned way, unsigned *local_way)
{
    const auto &self = *this;
    return const_cast<Table &>(self.resolve(pac, way, local_way));
}

Addr
HashedBoundsTable::wayAddr(u64 pac, unsigned way) const
{
    unsigned local;
    const Table &table = resolve(pac, way, &local);
    return table.wayAddr(pac, local, log2i(table.assoc));
}

WayLine
HashedBoundsTable::readWay(u64 pac, unsigned way) const
{
    unsigned local;
    const Table &table = resolve(pac, way, &local);
    return WayLine{table.wayAddr(pac, local, log2i(table.assoc)),
                   table.way(pac, local), table.recordsPerWay};
}

std::optional<unsigned>
HashedBoundsTable::insert(u64 pac, Compressed record)
{
    panic_if(record == kEmpty, "cannot insert the empty sentinel");
    const unsigned nways = ways();
    for (unsigned w = 0; w < nways; ++w) {
        unsigned local;
        Table &table = resolve(pac, w, &local);
        Compressed *line = table.way(pac, local);
        for (unsigned s = 0; s < table.recordsPerWay; ++s) {
            if (line[s] == kEmpty) {
                line[s] = record;
                ++_stats.inserts;
                ++_stats.occupied;
                _stats.maxOccupied =
                    std::max(_stats.maxOccupied, _stats.occupied);
                return w;
            }
        }
    }
    ++_stats.insertFailures;
    return std::nullopt;
}

std::optional<unsigned>
HashedBoundsTable::clear(u64 pac, Addr raw_addr)
{
    const unsigned nways = ways();
    for (unsigned w = 0; w < nways; ++w) {
        unsigned local;
        Table &table = resolve(pac, w, &local);
        Compressed *line = table.way(pac, local);
        for (unsigned s = 0; s < table.recordsPerWay; ++s) {
            if (line[s] != kEmpty && matchesBase(line[s], raw_addr)) {
                line[s] = kEmpty;
                ++_stats.clears;
                --_stats.occupied;
                return w;
            }
        }
    }
    ++_stats.clearFailures;
    return std::nullopt;
}

std::optional<unsigned>
HashedBoundsTable::check(u64 pac, Addr addr, unsigned start_way,
                         unsigned *ways_touched) const
{
    const unsigned nways = ways();
    unsigned touched = 0;
    // The FSM starts at the BWB-hinted way, then wraps through the
    // remaining ways (way iteration of SV-A2 with the SV-C shortcut).
    for (unsigned i = 0; i < nways; ++i) {
        const unsigned w = (start_way + i) % nways;
        const WayLine line = readWay(pac, w);
        ++touched;
        // Parallel check of the records in this line.
        for (unsigned s = 0; s < line.count; ++s) {
            if (inBounds(line.slots[s], addr)) {
                if (ways_touched)
                    *ways_touched = touched;
                return w;
            }
        }
    }
    if (ways_touched)
        *ways_touched = touched;
    return std::nullopt;
}

void
HashedBoundsTable::beginResize()
{
    if (_next.has_value())
        return;
    // Build the doubled table fully before touching any member state:
    // if the allocation throws (std::bad_alloc, or the onResizeAlloc
    // test hook), the table is left exactly as it was — still valid at
    // its old capacity, with further inserts to the full row failing
    // cleanly until a later resize attempt succeeds.
    Table next;
    next.base = _nextBase;
    next.assoc = _primary.assoc * 2;
    next.recordsPerWay = _recordsPerWay;
    const u64 slots = _rows * next.assoc * _recordsPerWay;
    if (onResizeAlloc)
        onResizeAlloc(slots);
    next.slots.assign(slots, kEmpty);
    // Reserve a disjoint address range for the table after this one
    // (way lines are 64 B regardless of record width).
    _nextBase += (_rows << (log2i(u64{next.assoc}) + 6)) * 2;
    _next = std::move(next);
    _rowPtr = 0;
    ++_stats.resizes;
}

bool
HashedBoundsTable::migrateRow()
{
    panic_if(!_next.has_value(), "no resize in progress");
    if (_rowPtr >= _rows) {
        // Migration complete: retire the old table.
        _primary = std::move(*_next);
        _next.reset();
        return true;
    }
    const u64 row = _rowPtr;
    for (unsigned w = 0; w < _primary.assoc; ++w) {
        const Compressed *src = _primary.way(row, w);
        Compressed *dst = _next->way(row, w);
        std::copy(src, src + _recordsPerWay, dst);
        std::fill(_primary.way(row, w),
                  _primary.way(row, w) + _recordsPerWay, kEmpty);
        // (source cleared only for hygiene; Fig. 10 routing already
        // directs migrated-row accesses to the new table)
    }
    ++_rowPtr;
    ++_stats.migratedRows;
    if (_rowPtr >= _rows) {
        _primary = std::move(*_next);
        _next.reset();
        return true;
    }
    return false;
}

void
HashedBoundsTable::finishResize()
{
    while (_next.has_value() && !migrateRow()) {
    }
}

std::optional<SlotRef>
HashedBoundsTable::findOccupied(u64 start_pac) const
{
    const unsigned nways = ways();
    for (u64 i = 0; i < _rows; ++i) {
        const u64 pac = (start_pac + i) % _rows;
        for (unsigned w = 0; w < nways; ++w) {
            const WayLine line = readWay(pac, w);
            for (unsigned s = 0; s < line.count; ++s) {
                if (line.slots[s] != kEmpty)
                    return SlotRef{pac, w, s, line.slots[s]};
            }
        }
    }
    return std::nullopt;
}

Compressed
HashedBoundsTable::corruptRecord(u64 pac, unsigned way, unsigned slot,
                                 Compressed value)
{
    unsigned local;
    Table &table = resolve(pac, way, &local);
    Compressed *line = table.way(pac, local);
    const unsigned s = slot % table.recordsPerWay;
    const Compressed before = line[s];
    line[s] = value;
    if (before == kEmpty && value != kEmpty) {
        ++_stats.occupied;
        _stats.maxOccupied = std::max(_stats.maxOccupied, _stats.occupied);
    } else if (before != kEmpty && value == kEmpty) {
        --_stats.occupied;
    }
    return before;
}

unsigned
HashedBoundsTable::zapLine(u64 pac, unsigned way)
{
    unsigned local;
    Table &table = resolve(pac, way, &local);
    Compressed *line = table.way(pac, local);
    unsigned lost = 0;
    for (unsigned s = 0; s < table.recordsPerWay; ++s) {
        if (line[s] != kEmpty) {
            line[s] = kEmpty;
            ++lost;
        }
    }
    _stats.occupied -= lost;
    return lost;
}

HashedBoundsTable::Table *
HashedBoundsTable::tableForLine(Addr line_addr, u64 *pac, unsigned *way)
{
    const Addr addr = line_addr & ~Addr{63};
    Table *tables[2] = {&_primary, _next ? &*_next : nullptr};
    for (Table *table : tables) {
        if (!table || addr < table->base)
            continue;
        const Addr offset = addr - table->base;
        const unsigned shift = log2i(u64{table->assoc}) + 6;
        const u64 row = offset >> shift;
        if (row >= _rows)
            continue;
        *pac = row;
        *way = static_cast<unsigned>((offset >> 6) & (table->assoc - 1));
        return table;
    }
    return nullptr;
}

std::optional<std::pair<Compressed, Compressed>>
HashedBoundsTable::corruptLineAtAddr(Addr line_addr, unsigned slot, u64 mask)
{
    u64 pac;
    unsigned way;
    Table *table = tableForLine(line_addr, &pac, &way);
    if (!table)
        return std::nullopt;
    Compressed *line = table->way(pac, way);
    const unsigned s = slot % table->recordsPerWay;
    const Compressed before = line[s];
    const Compressed after = before ^ mask;
    line[s] = after;
    if (before == kEmpty && after != kEmpty) {
        ++_stats.occupied;
        _stats.maxOccupied = std::max(_stats.maxOccupied, _stats.occupied);
    } else if (before != kEmpty && after == kEmpty) {
        --_stats.occupied;
    }
    return std::make_pair(before, after);
}

unsigned
HashedBoundsTable::rowOccupancy(u64 pac) const
{
    unsigned count = 0;
    const unsigned nways = ways();
    for (unsigned w = 0; w < nways; ++w) {
        const WayLine line = readWay(pac, w);
        for (unsigned s = 0; s < line.count; ++s) {
            if (line.slots[s] != kEmpty)
                ++count;
        }
    }
    return count;
}

} // namespace aos::bounds
