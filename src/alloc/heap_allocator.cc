#include "alloc/heap_allocator.hh"

#include <algorithm>

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace aos::alloc {

HeapAllocator::HeapAllocator(Addr heap_base, u64 heap_limit)
    : _heapBase(roundUp(heap_base, 16)), _heapLimit(heap_limit),
      _top(_heapBase)
{
    // Sized for the workload profiles' typical live-heap population;
    // avoids rehash storms on the malloc/free hot path.
    _chunks.reserve(1u << 14);
    _liveIndex.reserve(1u << 14);
    _forged.reserve(1u << 10);
}

void
HeapAllocator::reset()
{
    _top = _heapBase;
    _topPrevSize = 0;
    _chunks.clear();
    _freeBySize.clear();
    for (auto &bin : _fastbins)
        bin.clear();
    _forged.clear();
    _liveList.clear();
    _liveIndex.clear();
    _stats = AllocStats();
}

u64
HeapAllocator::chunkSizeFor(u64 user_size)
{
    return std::max<u64>(kMinChunk, roundUp(user_size + kHeader, 16));
}

unsigned
HeapAllocator::fastbinIndex(u64 chunk_size)
{
    // chunk sizes 32, 48, ..., 32 + 16*(kNumFastbins-1).
    return static_cast<unsigned>((chunk_size - kMinChunk) / 16);
}

Addr
HeapAllocator::carveTop(u64 chunk_size)
{
    if (_top + chunk_size > _heapBase + _heapLimit)
        return 0;
    const Addr base = _top;
    _top += chunk_size;
    return base;
}

void
HeapAllocator::insertFree(Addr base, u64 chunk_size)
{
    _freeBySize.emplace(chunk_size, base);
}

void
HeapAllocator::removeFree(Addr base)
{
    const Chunk *chunk = _chunks.find(base);
    panic_if(!chunk, "removeFree of unknown chunk");
    auto [lo, hi] = _freeBySize.equal_range(chunk->chunkSize);
    for (auto fit = lo; fit != hi; ++fit) {
        if (fit->second == base) {
            _freeBySize.erase(fit);
            return;
        }
    }
    panic("free chunk %#lx missing from size index", base);
}

void
HeapAllocator::setPrevSizeAt(Addr chunk_base, u64 prev_size)
{
    if (chunk_base == _top) {
        _topPrevSize = prev_size;
        return;
    }
    if (Chunk *chunk = _chunks.find(chunk_base))
        chunk->prevSize = static_cast<u32>(prev_size);
}

void
HeapAllocator::addLive(Addr user_addr, u64 user_size)
{
    _liveIndex[user_addr] = _liveList.size();
    _liveList.push_back(user_addr);
    ++_stats.active;
    _stats.maxActive = std::max(_stats.maxActive, _stats.active);
    _stats.liveBytes += user_size;
    _stats.peakBytes = std::max(_stats.peakBytes, _stats.liveBytes);
}

void
HeapAllocator::removeLive(Addr user_addr)
{
    const u64 *it = _liveIndex.find(user_addr);
    panic_if(!it, "removeLive of non-live chunk");
    const u64 idx = *it;
    const Addr last = _liveList.back();
    _liveList[idx] = last;
    _liveIndex[last] = idx;
    _liveList.pop_back();
    _liveIndex.erase(user_addr);
    --_stats.active;
}

Addr
HeapAllocator::liveChunk(u64 index) const
{
    panic_if(index >= _liveList.size(), "liveChunk index out of range");
    return _liveList[index];
}

Addr
HeapAllocator::malloc(u64 size)
{
    ++_stats.allocCalls;
    const u64 need = chunkSizeFor(size);
    // Chunk records hold 32-bit sizes; the bounds-compression format
    // cannot represent objects this large anyway (SV-D), so treat the
    // request as unsatisfiable rather than truncate.
    if (need > 0xffffffffull)
        return 0;

    Addr base = 0;
    // 1. Fastbin LIFO reuse for small chunks.
    if (need <= kFastbinMax + kHeader) {
        auto &bin = _fastbins[fastbinIndex(need)];
        if (!bin.empty()) {
            base = bin.back();
            bin.pop_back();
            ++_stats.fastbinHits;
            if (Chunk *chunk = _chunks.find(base)) {
                chunk->free = false;
                chunk->inFastbin = false;
                chunk->size = static_cast<u32>(size);
            } else {
                // A forged chunk planted by the House-of-Spirit attack:
                // malloc now returns attacker-controlled memory.
                _chunks[base] = Chunk{static_cast<u32>(size),
                                      static_cast<u32>(need), 0, false,
                                      false};
            }
            addLive(base + kHeader, size);
            return base + kHeader;
        }
    }

    // 2. Best-fit search of the coalesced free list. The empty check
    // matters: a growing heap (warmup) otherwise pays a tree probe on
    // every single carve.
    auto fit = _freeBySize.empty() ? _freeBySize.end()
                                   : _freeBySize.lower_bound(need);
    if (fit != _freeBySize.end()) {
        base = fit->second;
        const u64 have = fit->first;
        _freeBySize.erase(fit);
        if (have >= need + kMinChunk) {
            // Split: keep the tail as a smaller free chunk. Insert it
            // before re-finding the head: operator[] may rehash.
            const Addr rest = base + need;
            const u64 rest_size = have - need;
            _chunks[rest] = Chunk{0, static_cast<u32>(rest_size),
                                  static_cast<u32>(need), true, false};
            insertFree(rest, rest_size);
            ++_stats.splits;
            Chunk *chunk = _chunks.find(base);
            panic_if(!chunk, "free-list chunk lost");
            chunk->chunkSize = static_cast<u32>(need);
            chunk->free = false;
            chunk->size = static_cast<u32>(size);
            setPrevSizeAt(rest + rest_size, rest_size);
        } else {
            Chunk *chunk = _chunks.find(base);
            panic_if(!chunk, "free-list chunk lost");
            chunk->free = false;
            chunk->size = static_cast<u32>(size);
        }
        addLive(base + kHeader, size);
        return base + kHeader;
    }

    // 3. Extend the top of the heap.
    base = carveTop(need);
    if (base == 0)
        return 0; // out of simulated memory
    _chunks[base] = Chunk{static_cast<u32>(size), static_cast<u32>(need),
                          static_cast<u32>(_topPrevSize), false, false};
    _topPrevSize = need;
    addLive(base + kHeader, size);
    return base + kHeader;
}

FreeResult
HeapAllocator::free(Addr user_addr)
{
    const Addr base = user_addr - kHeader;
    Chunk *it = _chunks.find(base);

    if (!it) {
        // Unknown chunk: emulate glibc's fastbin sanity checks. An
        // attacker who forged a header with a fastbin-sized size field
        // (House of Spirit) passes them and poisons the bin.
        const u64 *forged = _forged.find(user_addr);
        if (forged) {
            const u64 chunk_size = chunkSizeFor(*forged);
            if (chunk_size <= kFastbinMax + kHeader &&
                (base & 15) == 0) {
                _fastbins[fastbinIndex(chunk_size)].push_back(base);
                ++_stats.freeCalls;
                return FreeResult::kCorrupting;
            }
        }
        ++_stats.failedFrees;
        return FreeResult::kInvalidPtr;
    }

    Chunk &chunk = *it;
    if (chunk.free || chunk.inFastbin) {
        // glibc only catches a double free when the chunk is at the
        // head of its fastbin ("double free or corruption (fasttop)").
        if (chunk.inFastbin) {
            auto &bin = _fastbins[fastbinIndex(chunk.chunkSize)];
            if (!bin.empty() && bin.back() == base) {
                ++_stats.failedFrees;
                return FreeResult::kDoubleFree;
            }
            bin.push_back(base);
            ++_stats.freeCalls;
            return FreeResult::kCorrupting;
        }
        ++_stats.failedFrees;
        return FreeResult::kDoubleFree;
    }

    _stats.liveBytes -= chunk.size;
    removeLive(user_addr);
    ++_stats.freeCalls;

    if (chunk.chunkSize <= kFastbinMax + kHeader) {
        chunk.inFastbin = true;
        _fastbins[fastbinIndex(chunk.chunkSize)].push_back(base);
        return FreeResult::kOk;
    }

    // Boundary-tag coalescing with the previous and next chunks. This
    // is the neighbour-metadata walk that makes free() legitimately
    // touch addresses outside the freed object (paper SIV-C). The
    // neighbours come from the size tags: next at base + chunkSize,
    // prev at base - prevSize. A fastbin-sized chunk (which includes
    // every forgeable chunk) never has free && !inFastbin, so forged
    // headers can never act as a coalescing partner.
    chunk.free = true;
    Addr merged_base = base;
    u64 merged_size = chunk.chunkSize;
    const u64 prev_size = chunk.prevSize;

    const Addr next_base = base + chunk.chunkSize;
    const Chunk *next = _chunks.find(next_base);
    if (next && next->free && !next->inFastbin) {
        removeFree(next_base);
        merged_size += next->chunkSize;
        _chunks.erase(next_base); // invalidates chunk/next pointers
        ++_stats.coalesces;
    }
    if (prev_size != 0) {
        const Addr prev_base = base - prev_size;
        const Chunk *prev = _chunks.find(prev_base);
        if (prev && prev->free && !prev->inFastbin &&
            prev->chunkSize == prev_size) {
            removeFree(prev_base);
            merged_base = prev_base;
            merged_size += prev_size;
            _chunks.erase(base);
            ++_stats.coalesces;
        }
    }
    Chunk *merged = _chunks.find(merged_base);
    panic_if(!merged, "coalesce bookkeeping mismatch");
    merged->free = true;
    merged->chunkSize = static_cast<u32>(merged_size);
    merged->size = 0;
    setPrevSizeAt(merged_base + merged_size, merged_size);
    insertFree(merged_base, merged_size);
    return FreeResult::kOk;
}

u64
HeapAllocator::usableSize(Addr user_addr) const
{
    const Chunk *chunk = _chunks.find(user_addr - kHeader);
    if (!chunk || chunk->free || chunk->inFastbin)
        return 0;
    return chunk->size;
}

bool
HeapAllocator::live(Addr user_addr) const
{
    return _liveIndex.count(user_addr) != 0;
}

bool
HeapAllocator::inBounds(Addr user_addr, Addr addr) const
{
    const u64 size = usableSize(user_addr);
    return size != 0 && addr >= user_addr && addr < user_addr + size;
}

void
HeapAllocator::forgeChunkHeader(Addr where, u64 size)
{
    _forged[where] = size;
}

} // namespace aos::alloc
