#include "alloc/heap_allocator.hh"

#include <algorithm>

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace aos::alloc {

HeapAllocator::HeapAllocator(Addr heap_base, u64 heap_limit)
    : _heapBase(roundUp(heap_base, 16)), _heapLimit(heap_limit),
      _top(_heapBase)
{
    // Sized for the workload profiles' typical live-heap population;
    // avoids rehash storms on the malloc/free hot path.
    _liveIndex.reserve(1u << 14);
    _forged.reserve(1u << 10);
}

void
HeapAllocator::reset()
{
    _top = _heapBase;
    _chunks.clear();
    _freeBySize.clear();
    for (auto &bin : _fastbins)
        bin.clear();
    _forged.clear();
    _liveList.clear();
    _liveIndex.clear();
    _stats = AllocStats();
}

u64
HeapAllocator::chunkSizeFor(u64 user_size)
{
    return std::max<u64>(kMinChunk, roundUp(user_size + kHeader, 16));
}

unsigned
HeapAllocator::fastbinIndex(u64 chunk_size)
{
    // chunk sizes 32, 48, ..., 32 + 16*(kNumFastbins-1).
    return static_cast<unsigned>((chunk_size - kMinChunk) / 16);
}

Addr
HeapAllocator::carveTop(u64 chunk_size)
{
    if (_top + chunk_size > _heapBase + _heapLimit)
        return 0;
    const Addr base = _top;
    _top += chunk_size;
    return base;
}

void
HeapAllocator::insertFree(Addr base, u64 chunk_size)
{
    _freeBySize.emplace(chunk_size, base);
}

void
HeapAllocator::removeFree(Addr base)
{
    auto it = _chunks.find(base);
    panic_if(it == _chunks.end(), "removeFree of unknown chunk");
    auto [lo, hi] = _freeBySize.equal_range(it->second.chunkSize);
    for (auto fit = lo; fit != hi; ++fit) {
        if (fit->second == base) {
            _freeBySize.erase(fit);
            return;
        }
    }
    panic("free chunk %#lx missing from size index", base);
}

void
HeapAllocator::addLive(Addr user_addr, u64 user_size)
{
    _liveIndex[user_addr] = _liveList.size();
    _liveList.push_back(user_addr);
    ++_stats.active;
    _stats.maxActive = std::max(_stats.maxActive, _stats.active);
    _stats.liveBytes += user_size;
    _stats.peakBytes = std::max(_stats.peakBytes, _stats.liveBytes);
}

void
HeapAllocator::removeLive(Addr user_addr)
{
    auto it = _liveIndex.find(user_addr);
    panic_if(it == _liveIndex.end(), "removeLive of non-live chunk");
    const u64 idx = it->second;
    const Addr last = _liveList.back();
    _liveList[idx] = last;
    _liveIndex[last] = idx;
    _liveList.pop_back();
    _liveIndex.erase(it);
    --_stats.active;
}

Addr
HeapAllocator::liveChunk(u64 index) const
{
    panic_if(index >= _liveList.size(), "liveChunk index out of range");
    return _liveList[index];
}

Addr
HeapAllocator::malloc(u64 size)
{
    ++_stats.allocCalls;
    const u64 need = chunkSizeFor(size);

    Addr base = 0;
    // 1. Fastbin LIFO reuse for small chunks.
    if (need <= kFastbinMax + kHeader) {
        auto &bin = _fastbins[fastbinIndex(need)];
        if (!bin.empty()) {
            base = bin.back();
            bin.pop_back();
            ++_stats.fastbinHits;
            auto it = _chunks.find(base);
            if (it != _chunks.end()) {
                it->second.free = false;
                it->second.inFastbin = false;
                it->second.size = size;
            } else {
                // A forged chunk planted by the House-of-Spirit attack:
                // malloc now returns attacker-controlled memory.
                _chunks[base] = Chunk{size, need, false, false};
            }
            addLive(base + kHeader, size);
            return base + kHeader;
        }
    }

    // 2. Best-fit search of the coalesced free list.
    auto fit = _freeBySize.lower_bound(need);
    if (fit != _freeBySize.end()) {
        base = fit->second;
        const u64 have = fit->first;
        _freeBySize.erase(fit);
        auto it = _chunks.find(base);
        panic_if(it == _chunks.end(), "free-list chunk lost");
        if (have >= need + kMinChunk) {
            // Split: keep the tail as a smaller free chunk.
            const Addr rest = base + need;
            const u64 rest_size = have - need;
            _chunks[rest] = Chunk{0, rest_size, true, false};
            insertFree(rest, rest_size);
            ++_stats.splits;
            it->second.chunkSize = need;
        }
        it->second.free = false;
        it->second.size = size;
        addLive(base + kHeader, size);
        return base + kHeader;
    }

    // 3. Extend the top of the heap.
    base = carveTop(need);
    if (base == 0)
        return 0; // out of simulated memory
    _chunks[base] = Chunk{size, need, false, false};
    addLive(base + kHeader, size);
    return base + kHeader;
}

FreeResult
HeapAllocator::free(Addr user_addr)
{
    const Addr base = user_addr - kHeader;
    auto it = _chunks.find(base);

    if (it == _chunks.end()) {
        // Unknown chunk: emulate glibc's fastbin sanity checks. An
        // attacker who forged a header with a fastbin-sized size field
        // (House of Spirit) passes them and poisons the bin.
        auto forged = _forged.find(user_addr);
        if (forged != _forged.end()) {
            const u64 chunk_size = chunkSizeFor(forged->second);
            if (chunk_size <= kFastbinMax + kHeader &&
                (base & 15) == 0) {
                _fastbins[fastbinIndex(chunk_size)].push_back(base);
                ++_stats.freeCalls;
                return FreeResult::kCorrupting;
            }
        }
        ++_stats.failedFrees;
        return FreeResult::kInvalidPtr;
    }

    Chunk &chunk = it->second;
    if (chunk.free || chunk.inFastbin) {
        // glibc only catches a double free when the chunk is at the
        // head of its fastbin ("double free or corruption (fasttop)").
        if (chunk.inFastbin) {
            auto &bin = _fastbins[fastbinIndex(chunk.chunkSize)];
            if (!bin.empty() && bin.back() == base) {
                ++_stats.failedFrees;
                return FreeResult::kDoubleFree;
            }
            bin.push_back(base);
            ++_stats.freeCalls;
            return FreeResult::kCorrupting;
        }
        ++_stats.failedFrees;
        return FreeResult::kDoubleFree;
    }

    _stats.liveBytes -= chunk.size;
    removeLive(user_addr);
    ++_stats.freeCalls;

    if (chunk.chunkSize <= kFastbinMax + kHeader) {
        chunk.inFastbin = true;
        _fastbins[fastbinIndex(chunk.chunkSize)].push_back(base);
        return FreeResult::kOk;
    }

    // Boundary-tag coalescing with the previous and next chunks. This
    // is the neighbour-metadata walk that makes free() legitimately
    // touch addresses outside the freed object (paper SIV-C).
    chunk.free = true;
    Addr merged_base = base;
    u64 merged_size = chunk.chunkSize;

    auto next = std::next(it);
    if (next != _chunks.end() && next->first == base + chunk.chunkSize &&
        next->second.free && !next->second.inFastbin) {
        removeFree(next->first);
        merged_size += next->second.chunkSize;
        _chunks.erase(next);
        ++_stats.coalesces;
    }
    if (it != _chunks.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second.chunkSize == base &&
            prev->second.free && !prev->second.inFastbin) {
            removeFree(prev->first);
            merged_base = prev->first;
            merged_size += prev->second.chunkSize;
            _chunks.erase(it);
            it = prev;
            ++_stats.coalesces;
        }
    }
    it->second.free = true;
    it->second.chunkSize = merged_size;
    it->second.size = 0;
    panic_if(it->first != merged_base, "coalesce bookkeeping mismatch");
    insertFree(merged_base, merged_size);
    return FreeResult::kOk;
}

u64
HeapAllocator::usableSize(Addr user_addr) const
{
    auto it = _chunks.find(user_addr - kHeader);
    if (it == _chunks.end() || it->second.free || it->second.inFastbin)
        return 0;
    return it->second.size;
}

bool
HeapAllocator::live(Addr user_addr) const
{
    return _liveIndex.count(user_addr) != 0;
}

bool
HeapAllocator::inBounds(Addr user_addr, Addr addr) const
{
    const u64 size = usableSize(user_addr);
    return size != 0 && addr >= user_addr && addr < user_addr + size;
}

void
HeapAllocator::forgeChunkHeader(Addr where, u64 size)
{
    _forged[where] = size;
}

} // namespace aos::alloc
