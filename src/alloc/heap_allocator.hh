/**
 * @file
 * A glibc-style heap allocator over a simulated address space.
 *
 * The allocator hands out 16-byte-aligned user addresses inside a
 * simulated heap region; no host memory is touched. It reproduces the
 * allocator behaviours the paper depends on:
 *
 *  - 16-byte-aligned user pointers with a 16-byte chunk header in
 *    front (the basis of the bounds-compression format, paper SV-D);
 *  - fastbin-style caching of small chunks without coalescing, and
 *    boundary-tag coalescing of larger chunks (the free() path whose
 *    neighbour-metadata accesses motivate the xpacm strip, SIV-C);
 *  - the size-class bins (~64 B / ~256 B / large) behind the AHC
 *    classification of Algorithm 1;
 *  - the weak free() validation that enables the House-of-Spirit
 *    attack of Fig. 1 (emulated via forgeChunkHeader()).
 *
 * Statistics match the columns of paper Tables II and III: allocation
 * and deallocation call counts and the maximum number of active chunks.
 */

#ifndef AOS_ALLOC_HEAP_ALLOCATOR_HH
#define AOS_ALLOC_HEAP_ALLOCATOR_HH

#include <map>
#include "common/flat_map.hh"
#include <vector>

#include "common/types.hh"

namespace aos::alloc {

/** Allocation profile counters (paper Tables II/III columns). */
struct AllocStats
{
    u64 allocCalls = 0;    //!< Total malloc() calls.
    u64 freeCalls = 0;     //!< Total successful free() calls.
    u64 failedFrees = 0;   //!< free() calls rejected as invalid.
    u64 active = 0;        //!< Currently allocated chunks.
    u64 maxActive = 0;     //!< Peak simultaneously active chunks.
    u64 liveBytes = 0;     //!< Currently allocated user bytes.
    u64 peakBytes = 0;     //!< Peak allocated user bytes.
    u64 splits = 0;        //!< Free chunks split to satisfy a request.
    u64 coalesces = 0;     //!< Boundary-tag merges performed.
    u64 fastbinHits = 0;   //!< Requests served from a fastbin.
};

/** Outcome of a free() call. */
enum class FreeResult
{
    kOk,            //!< Chunk released normally.
    kInvalidPtr,    //!< Address is not a known (or forged) chunk.
    kDoubleFree,    //!< Chunk was already free and the check caught it.
    kCorrupting,    //!< Accepted but corrupts allocator state (attack!).
};

/** A bin-based allocator over a simulated heap address range. */
class HeapAllocator
{
  public:
    /**
     * @param heap_base First address of the simulated heap (16-aligned).
     * @param heap_limit Maximum heap size in bytes.
     */
    explicit HeapAllocator(Addr heap_base = 0x20000000ull,
                           u64 heap_limit = u64{8} << 30);

    /**
     * Allocate @p size user bytes; returns the 16-byte-aligned user
     * address or 0 when the heap is exhausted. A size of 0 allocates
     * the minimum chunk, as glibc does.
     */
    Addr malloc(u64 size);

    /** Release a user address obtained from malloc() (or forged). */
    FreeResult free(Addr user_addr);

    /** Usable size of an allocated chunk; 0 if unknown. */
    u64 usableSize(Addr user_addr) const;

    /** True iff @p user_addr is a currently allocated chunk base. */
    bool live(Addr user_addr) const;

    /** True iff @p addr falls inside allocated chunk @p user_addr. */
    bool inBounds(Addr user_addr, Addr addr) const;

    /**
     * Attack-surface hook: the attacker writes a believable chunk
     * header at @p where - 16 claiming @p size bytes, as the House of
     * Spirit exploit does (Fig. 1). A subsequent free(where) passes
     * the emulated glibc fastbin sanity checks and poisons the bin.
     */
    void forgeChunkHeader(Addr where, u64 size);

    /** Pick the @p index-th live chunk base (for workload synthesis). */
    Addr liveChunk(u64 index) const;

    /** Number of live chunks (liveChunk() domain). */
    u64 liveCount() const { return _liveList.size(); }

    const AllocStats &stats() const { return _stats; }

    Addr heapBase() const { return _heapBase; }

    /** Current break: one past the highest chunk ever carved. */
    Addr heapTop() const { return _top; }

    /** Reset to an empty heap (keeps base/limit). */
    void reset();

    /**
     * Size the live-chunk index for @p n concurrent allocations up
     * front (behavior-neutral; avoids rehash storms when a workload
     * declares a large target live set).
     */
    void
    reserveLive(u64 n)
    {
        _liveList.reserve(n);
        _liveIndex.reserve(n);
        _chunks.reserve(n);
    }

  private:
    // 16 bytes: the chunk table is the largest per-chunk structure
    // (omnetpp keeps ~700 K chunks live), so the record size directly
    // sets the malloc/free DRAM footprint. u32 sizes are sufficient
    // because the bounds-compression format (SV-D) caps object sizes
    // below 4 GiB; malloc() refuses anything larger.
    struct Chunk
    {
        u32 size = 0;       // user bytes
        u32 chunkSize = 0;  // header + payload, 16-aligned
        u32 prevSize = 0;   // boundary tag: chunkSize of the chunk
                            // ending at this base (0 = heap base or a
                            // forged chunk outside the carve sequence)
        bool free = false;
        bool inFastbin = false;
    };

    static constexpr u64 kHeader = 16;
    static constexpr u64 kMinChunk = 32;
    static constexpr u64 kFastbinMax = 128; // user bytes
    static constexpr unsigned kNumFastbins = 8;

    static u64 chunkSizeFor(u64 user_size);
    static unsigned fastbinIndex(u64 chunk_size);

    Addr carveTop(u64 chunk_size);
    void insertFree(Addr base, u64 chunk_size);
    void removeFree(Addr base);
    void addLive(Addr user_addr, u64 user_size);
    void removeLive(Addr user_addr);
    void setPrevSizeAt(Addr chunk_base, u64 prev_size);

    Addr _heapBase;
    u64 _heapLimit;
    Addr _top;

    // All chunks carved from the heap, keyed by chunk base address.
    // Adjacency for boundary-tag coalescing comes from the sizes: the
    // next chunk lives at base + chunkSize and the previous one at
    // base - prevSize, so the map needs no address ordering and the
    // malloc/free hot paths stay O(1).
    FlatU64Map<Chunk> _chunks;
    // chunkSize of the chunk ending at _top (prevSize for the next
    // carve); 0 while the heap is empty.
    u64 _topPrevSize = 0;
    // Free chunks by size (size -> bases), excluding fastbin chunks.
    std::multimap<u64, Addr> _freeBySize;
    // LIFO fastbins of chunk bases, by size class.
    std::vector<Addr> _fastbins[kNumFastbins];
    // Forged headers planted by forgeChunkHeader (user addr -> size).
    FlatU64Map<u64> _forged;

    // Live user addresses with O(1) random access and removal.
    std::vector<Addr> _liveList;
    FlatU64Map<u64> _liveIndex;

    AllocStats _stats;
};

} // namespace aos::alloc

#endif // AOS_ALLOC_HEAP_ALLOCATOR_HH
