/**
 * @file
 * The 512-lane bit-sliced QARMA chunk: the shared width-generic kernel
 * instantiated over an 8x64 generic vector, in a translation unit
 * compiled with the AVX-512 flags (see src/qarma/CMakeLists.txt) so
 * the plane network lowers to 512-bit ops. Nothing else lives here —
 * every other qarma function must stay runnable on hosts without
 * AVX-512, and callers reach this chunk only after a runtime
 * cpu-support check.
 */

#include "qarma/qarma_sliced_kernel.hh"

namespace aos::qarma::sliceddetail {

namespace {
typedef u64 Vec512 __attribute__((vector_size(64)));
} // namespace

void
encryptChunk512(const LinTabs &lt, const SboxTab &sb, unsigned rounds,
                const Qarma64::Schedule &ks, const u64 *pt, const u64 *tw,
                size_t n, u64 *ct)
{
    encryptChunk<Vec512>(lt, sb, rounds, ks, pt, tw, n, ct);
}

} // namespace aos::qarma::sliceddetail
