/**
 * @file
 * QARMA-64: the lightweight tweakable block cipher used by Arm Pointer
 * Authentication to compute PACs (Avanzi, ToSC 2017).
 *
 * This is a from-scratch implementation of the 64-bit variant,
 * parameterized by the S-box (sigma0/sigma1/sigma2) and the number of
 * forward rounds r (5..7 are the specified instances). The cipher takes
 * a 64-bit plaintext, a 64-bit tweak and a 128-bit key (w0 || k0) and
 * produces a 64-bit ciphertext. AOS truncates the ciphertext to the PAC
 * width (pa::PaContext).
 *
 * The state is 16 four-bit cells; cell 0 is the most significant nibble,
 * matching the specification's ordering. Decryption is implemented as
 * the exact structural inverse of encryption so that round-trip
 * properties hold for every (sbox, rounds) instance.
 *
 * Hot-path layout: the cell permutations (tau and the tweak update,
 * including its LFSR) are applied through precomputed per-byte scatter
 * tables, the S-box substitutes a whole byte (two cells) per lookup and
 * MixColumns is evaluated bit-sliced over all 16 cells at once. Callers
 * that sign many pointers under one key should expand it once into a
 * Schedule (w1/k1 are derived per key, not per block) and use the
 * Schedule overloads; PaContext does exactly that per key slot. All of
 * this is bit-exact with the reference per-cell formulation, which the
 * regression vectors in tests/pac_vectors_test.cc pin down.
 */

#ifndef AOS_QARMA_QARMA64_HH
#define AOS_QARMA_QARMA64_HH

#include "common/types.hh"

namespace aos::qarma {

/** Which of the three specified 4-bit S-boxes to use. */
enum class Sbox { kSigma0, kSigma1, kSigma2 };

/** 128-bit QARMA key: whitening half w0 and core half k0. */
struct Key128
{
    u64 w0 = 0;
    u64 k0 = 0;
};

/** A QARMA-64 cipher instance (immutable configuration). */
class Qarma64
{
  public:
    /**
     * Expanded key schedule: the specified derived halves w1 = o(w0)
     * and k1 = M * k0, computed once per key instead of per block.
     */
    struct Schedule
    {
        u64 w0 = 0;
        u64 w1 = 0;
        u64 k0 = 0;
        u64 k1 = 0;
    };

    /**
     * @param sbox S-box family (Arm PA uses sigma1).
     * @param rounds Number of forward rounds r; the spec defines 5..7.
     */
    explicit Qarma64(Sbox sbox = Sbox::kSigma1, unsigned rounds = 7);

    /** Derive the full schedule for @p key (w1/k1 per the spec). */
    static Schedule expandKey(const Key128 &key);

    /** Encrypt one 64-bit block under @p key and @p tweak. */
    u64 encrypt(u64 plaintext, u64 tweak, const Key128 &key) const;

    /** Decrypt one 64-bit block under @p key and @p tweak. */
    u64 decrypt(u64 ciphertext, u64 tweak, const Key128 &key) const;

    /** Encrypt using a pre-expanded schedule (hot path). */
    u64 encrypt(u64 plaintext, u64 tweak, const Schedule &ks) const;

    /** Decrypt using a pre-expanded schedule (hot path). */
    u64 decrypt(u64 ciphertext, u64 tweak, const Schedule &ks) const;

    unsigned rounds() const { return _rounds; }
    Sbox sbox() const { return _sbox; }

    /** Derived whitening key w1 = (w0 >>> 1) ^ (w0 >> 63). */
    static u64 deriveW1(u64 w0);

    /** Derived central key k1 = M * k0. */
    static u64 deriveK1(u64 k0);

    // Spec constants (shared with the bit-sliced kernel).
    static u64 roundConst(unsigned i);
    static u64 alpha();

    // Exposed building blocks (public for unit testing).
    static u64 shuffleCells(u64 state);
    static u64 shuffleCellsInv(u64 state);
    static u64 mixColumns(u64 state);
    static u64 forwardTweak(u64 tweak);
    static u64 backwardTweak(u64 tweak);
    u64 subCells(u64 state) const;
    u64 subCellsInv(u64 state) const;

  private:
    u64 forwardRound(u64 state, u64 tweakey, bool full) const;
    u64 backwardRound(u64 state, u64 tweakey, bool full) const;
    u64 reflect(u64 state, u64 k1) const;
    u64 reflectInv(u64 state, u64 k1) const;

    Sbox _sbox;
    unsigned _rounds;
    const u8 *_sub2;    // byte-wide S-box: both nibbles substituted
    const u8 *_sub2Inv; // its inverse
};

} // namespace aos::qarma

#endif // AOS_QARMA_QARMA64_HH
