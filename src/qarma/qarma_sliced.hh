/**
 * @file
 * Batched bit-sliced QARMA-64 (DESIGN.md §14).
 *
 * The scalar Qarma64 signs one 64-bit block at a time; the PAC batch
 * path (pa::PaContext::batchPac) signs whole windows of pointers under
 * one key. This kernel transposes up to 64 blocks into 64 bit-planes —
 * plane p holds bit p of every block — and evaluates the cipher once
 * over the planes: the cell shuffle, MixColumns and the tweak update
 * become plane-permutation/XOR networks, the S-box becomes a 16-term
 * minterm gate network per cell, and key/round constants (equal across
 * the batch) reduce to conditional plane complements.
 *
 * All linear layers are *derived from the scalar implementation* at
 * first use: each is probed with single-bit inputs and verified for
 * GF(2)-linearity, so the sliced kernel is bit-exact with Qarma64 by
 * construction, not by parallel maintenance. The frozen PAC vectors
 * and the batch-vs-scalar property test in tests/pac_vectors_test.cc
 * pin this down.
 *
 * Lane width: the portable kernel slices over u64 (64 blocks); when
 * the build detects GCC/Clang 128-bit vector support (compile-tested,
 * AOS_QARMA_HAVE_VEC128) a twin instantiation slices over a 2x64
 * vector word (128 blocks) and the compiler lowers it to SSE2/NEON;
 * with AVX-512 (AOS_QARMA_HAVE_VEC512) an 8x64 instantiation runs
 * 512 blocks per chunk.
 * Batches smaller than kMinSlicedBatch fall back to the scalar cipher
 * (transposition would dominate); the tail of any batch does too.
 *
 * AOS_QARMA_KERNEL=auto|scalar|sliced|simd|simd128|simd512 overrides
 * dispatch ("simd" = widest vector kernel the build and host support;
 * the sanitizer stage of scripts/check.sh runs the suite under
 * "scalar" so both paths stay clean). A 512-lane instantiation is
 * compiled into its own AVX-512 translation unit when the toolchain
 * accepts the flags, and is selected only after a runtime
 * cpu-support check, so the binary stays runnable on older hosts.
 */

#ifndef AOS_QARMA_QARMA_SLICED_HH
#define AOS_QARMA_QARMA_SLICED_HH

#include <cstddef>

#include "qarma/qarma64.hh"

namespace aos::qarma {

/** Which implementation a QarmaSliced instance dispatches to. */
enum class SlicedKernel
{
    kAuto,     //!< Widest available (env AOS_QARMA_KERNEL can narrow).
    kScalar,   //!< Per-block Qarma64 (reference / sanitizer baseline).
    kSliced64, //!< 64-lane bit-sliced over u64 planes.
    kSimd128,  //!< 128-lane bit-sliced over 2x64 vector planes.
    kSimd512,  //!< 512-lane bit-sliced over 8x64 vector planes (AVX-512).
};

/** Batched QARMA-64 encryption, bit-exact with Qarma64. */
class QarmaSliced
{
  public:
    /**
     * @param sbox S-box family (must match the scalar instance).
     * @param rounds Forward rounds r.
     * @param kernel Dispatch override; kAuto consults AOS_QARMA_KERNEL
     *               and falls back to the widest compiled-in kernel.
     */
    explicit QarmaSliced(Sbox sbox = Sbox::kSigma1, unsigned rounds = 7,
                         SlicedKernel kernel = SlicedKernel::kAuto);

    /**
     * Encrypt @p n blocks: ct[i] = Qarma64::encrypt(pt[i], tw[i], ks).
     * Arbitrary n; full lanes go through the sliced kernel, ragged
     * tails shorter than kMinSlicedBatch through the scalar cipher.
     * In-place operation (ct == pt) is allowed.
     */
    void encrypt(const u64 *pt, const u64 *tw, size_t n,
                 const Qarma64::Schedule &ks, u64 *ct) const;

    /** The kernel actually selected after env/compile-time dispatch. */
    SlicedKernel kernel() const { return _kernel; }

    /** Lane count of the selected kernel (1 for scalar). */
    unsigned lanes() const;

    /** True when the 128-lane vector kernel was compiled in. */
    static bool simdCompiledIn();

    /**
     * True when the 512-lane kernel was compiled in (build detected
     * the AVX-512 flags) AND the running host supports AVX-512.
     */
    static bool simd512Available();

    /** Below this batch size slicing loses to the scalar cipher. */
    static constexpr size_t kMinSlicedBatch = 16;

  private:
    Sbox _sbox;
    unsigned _rounds;
    SlicedKernel _kernel;
    Qarma64 _scalar;
};

} // namespace aos::qarma

#endif // AOS_QARMA_QARMA_SLICED_HH
