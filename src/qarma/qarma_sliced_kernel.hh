/**
 * @file
 * Internal plane-domain kernel shared by the bit-sliced QARMA TUs.
 *
 * qarma_sliced.cc derives the plane-network tables from the scalar
 * implementation and dispatches; this header holds the width-generic
 * kernel itself so the optional AVX-512 translation unit (compiled
 * with its own -m flags, see src/qarma/CMakeLists.txt) can instantiate
 * encryptChunk over a 512-bit vector word without duplicating the
 * cipher. Not part of the public qarma interface — include only from
 * qarma_sliced*.cc.
 */

#ifndef AOS_QARMA_QARMA_SLICED_KERNEL_HH
#define AOS_QARMA_QARMA_SLICED_KERNEL_HH

#include <cstddef>

#include "qarma/qarma64.hh"

namespace aos::qarma::sliceddetail {

/**
 * One GF(2)-linear layer over the 64 bit-planes: output plane o is the
 * XOR of srcs[o][0..nsrc[o]). MixColumns contributes at most three
 * terms per bit (the three nonzero rho-powers of one column), the
 * tweak LFSR at most two.
 */
struct LinTab
{
    u8 nsrc[64];
    u8 src[64][3];
};

/** The 4-bit S-box pair for one sigma instance. */
struct SboxTab
{
    u8 fwd[16];
    u8 inv[16];
};

struct LinTabs
{
    LinTab fwdLin;   //!< mixColumns ∘ shuffleCells (forward full round).
    LinTab bwdLin;   //!< shuffleCellsInv ∘ mixColumns (backward round).
    LinTab reflLin;  //!< shuffleCellsInv ∘ mixColumns ∘ shuffleCells.
    LinTab fwdTweak; //!< forwardTweak.
    LinTab bwdTweak; //!< backwardTweak.
};

/** In-place butterfly transpose: bit j of out[p] = bit p of in[j]. */
inline void
transpose64(u64 a[64])
{
    for (unsigned j = 32; j != 0; j >>= 1) {
        const u64 m = ~u64{0} / ((u64{1} << j) + 1);
        for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
            const u64 t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k + j] ^= t;
            a[k] ^= t << j;
        }
    }
}

// ---------------------------------------------------------------------
// Generic word ops: u64 = 64 lanes; wider GCC/Clang generic vectors
// add 64 lanes per 8 bytes of word width.
// ---------------------------------------------------------------------

inline void
setSub(u64 &w, unsigned, u64 v)
{
    w = v;
}

inline u64
getSub(u64 w, unsigned)
{
    return w;
}

template <typename W>
inline void
setSub(W &w, unsigned i, u64 v)
{
    w[i] = v;
}

template <typename W>
inline u64
getSub(W w, unsigned i)
{
    return w[i];
}

/** All-ones/all-zeros lane mask from one constant bit (branchless). */
template <typename W>
inline W
broadcastMask(u64 bit)
{
    return W{} + (u64{0} - bit);
}

/** XOR a batch-constant word in: bit b set complements plane b. */
template <typename W>
inline void
xorConst(W *p, u64 c)
{
    for (unsigned b = 0; b < 64; ++b)
        p[b] ^= broadcastMask<W>((c >> b) & 1);
}

/** One fused pass for s ^= tweak-planes ^ batch-constant. */
template <typename W>
inline void
xorTweakey(W *s, const W *t, u64 c)
{
    for (unsigned b = 0; b < 64; ++b)
        s[b] ^= t[b] ^ broadcastMask<W>((c >> b) & 1);
}

template <typename W>
inline void
applyLinear(const LinTab &tab, W *p)
{
    W tmp[64];
    for (unsigned b = 0; b < 64; ++b)
        tmp[b] = p[b];
    for (unsigned o = 0; o < 64; ++o) {
        W acc = tmp[tab.src[o][0]];
        for (unsigned k = 1; k < tab.nsrc[o]; ++k)
            acc ^= tmp[tab.src[o][k]];
        p[o] = acc;
    }
}

/**
 * The S-box as a minterm network: per cell, the 16 products of the
 * four input planes and their complements select which inputs map to
 * each value; output plane k ORs the (disjoint) minterms whose S-box
 * image has bit k set.
 */
template <typename W>
inline void
subLayer(const u8 *box, W *p)
{
    for (unsigned g = 0; g < 16; ++g) {
        W *q = p + 4 * g;
        const W a0 = q[0], a1 = q[1], a2 = q[2], a3 = q[3];
        const W n0 = ~a0, n1 = ~a1, n2 = ~a2, n3 = ~a3;
        const W lo[4] = {n1 & n0, n1 & a0, a1 & n0, a1 & a0};
        const W hi[4] = {n3 & n2, n3 & a2, a3 & n2, a3 & a2};
        W o0{}, o1{}, o2{}, o3{};
        for (unsigned v = 0; v < 16; ++v) {
            const W m = hi[v >> 2] & lo[v & 3];
            const u8 s = box[v];
            if (s & 1)
                o0 |= m;
            if (s & 2)
                o1 |= m;
            if (s & 4)
                o2 |= m;
            if (s & 8)
                o3 |= m;
        }
        q[0] = o0;
        q[1] = o1;
        q[2] = o2;
        q[3] = o3;
    }
}

/**
 * Encrypt one chunk of up to 64 * sizeof(W)/8 blocks, mirroring
 * Qarma64::encrypt step for step in the plane domain. Whitening with
 * w0/w1 happens lane-wise around the transposes (cheaper than two
 * plane passes).
 */
template <typename W>
void
encryptChunk(const LinTabs &lt, const SboxTab &sb, unsigned rounds,
             const Qarma64::Schedule &ks, const u64 *pt, const u64 *tw,
             size_t n, u64 *ct)
{
    constexpr unsigned kSubWords = sizeof(W) / sizeof(u64);
    W state[64]{}, tweak[64]{};
    u64 buf[64];

    for (unsigned s = 0; s < kSubWords; ++s) {
        for (unsigned j = 0; j < 64; ++j) {
            const size_t idx = s * u64{64} + j;
            buf[j] = idx < n ? (pt[idx] ^ ks.w0) : 0;
        }
        transpose64(buf);
        for (unsigned p = 0; p < 64; ++p)
            setSub(state[p], s, buf[p]);
        for (unsigned j = 0; j < 64; ++j) {
            const size_t idx = s * u64{64} + j;
            buf[j] = idx < n ? tw[idx] : 0;
        }
        transpose64(buf);
        for (unsigned p = 0; p < 64; ++p)
            setSub(tweak[p], s, buf[p]);
    }

    for (unsigned i = 0; i < rounds; ++i) {
        xorTweakey(state, tweak, ks.k0 ^ Qarma64::roundConst(i));
        if (i != 0)
            applyLinear(lt.fwdLin, state);
        subLayer(sb.fwd, state);
        applyLinear(lt.fwdTweak, tweak);
    }

    xorTweakey(state, tweak, ks.w1);
    applyLinear(lt.fwdLin, state);
    subLayer(sb.fwd, state);

    applyLinear(lt.reflLin, state);
    xorConst(state, Qarma64::shuffleCellsInv(ks.k1));

    subLayer(sb.inv, state);
    applyLinear(lt.bwdLin, state);
    xorTweakey(state, tweak, ks.w0);

    for (unsigned i = rounds; i-- > 0;) {
        applyLinear(lt.bwdTweak, tweak);
        subLayer(sb.inv, state);
        if (i != 0)
            applyLinear(lt.bwdLin, state);
        xorTweakey(state, tweak,
                   ks.k0 ^ Qarma64::roundConst(i) ^ Qarma64::alpha());
    }

    for (unsigned s = 0; s < kSubWords; ++s) {
        for (unsigned p = 0; p < 64; ++p)
            buf[p] = getSub(state[p], s);
        transpose64(buf);
        for (unsigned j = 0; j < 64; ++j) {
            const size_t idx = s * u64{64} + j;
            if (idx < n)
                ct[idx] = buf[j] ^ ks.w1;
        }
    }
}

#if defined(AOS_QARMA_HAVE_VEC512)
/**
 * 512-lane chunk over 8x64 vector planes; defined in
 * qarma_sliced_avx512.cc, which is compiled with the AVX-512 flags.
 * Call only after a runtime avx512f check (QarmaSliced::resolve does).
 */
void encryptChunk512(const LinTabs &lt, const SboxTab &sb,
                     unsigned rounds, const Qarma64::Schedule &ks,
                     const u64 *pt, const u64 *tw, size_t n, u64 *ct);
#endif

} // namespace aos::qarma::sliceddetail

#endif // AOS_QARMA_QARMA_SLICED_KERNEL_HH
