#include "qarma/qarma64.hh"

#include <array>
#include <bit>

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace aos::qarma {

namespace {

// The three specified 4-bit S-boxes (Avanzi, Table 2).
constexpr u8 kSigma0[16] = {
    0, 14, 2, 10, 9, 15, 8, 11, 6, 4, 3, 7, 13, 12, 1, 5};
constexpr u8 kSigma1[16] = {
    10, 13, 14, 6, 15, 7, 3, 5, 9, 8, 0, 12, 11, 1, 2, 4};
constexpr u8 kSigma2[16] = {
    11, 6, 8, 15, 12, 0, 9, 14, 3, 7, 4, 5, 13, 2, 1, 10};

constexpr std::array<u8, 16>
invert(const u8 (&box)[16])
{
    std::array<u8, 16> inv{};
    for (unsigned i = 0; i < 16; ++i)
        inv[box[i]] = static_cast<u8>(i);
    return inv;
}

constexpr auto kSigma0Inv = invert(kSigma0);
constexpr auto kSigma1Inv = invert(kSigma1);
constexpr auto kSigma2Inv = invert(kSigma2);

// Cell shuffle tau: new cell i takes old cell kTau[i].
constexpr unsigned kTau[16] = {
    0, 11, 6, 13, 10, 1, 12, 7, 5, 14, 3, 8, 15, 4, 9, 2};

constexpr std::array<unsigned, 16>
invertPerm(const unsigned (&perm)[16])
{
    std::array<unsigned, 16> inv{};
    for (unsigned i = 0; i < 16; ++i)
        inv[perm[i]] = i;
    return inv;
}

constexpr auto kTauInv = invertPerm(kTau);

// Tweak cell permutation h: new cell i takes old cell kTweakPerm[i].
constexpr unsigned kTweakPerm[16] = {
    6, 5, 14, 15, 0, 1, 2, 3, 7, 12, 13, 4, 8, 9, 10, 11};
constexpr auto kTweakPermInv = invertPerm(kTweakPerm);

// Cells of the tweak that pass through the LFSR omega each update.
constexpr bool kLfsrCell[16] = {
    true, true, false, true, true, false, false, false,
    true, false, false, true, false, true, false, false};

// Round constants derived from the digits of pi.
constexpr u64 kRoundConst[8] = {
    0x0000000000000000ull, 0x13198A2E03707344ull, 0xA4093822299F31D0ull,
    0x082EFA98EC4E6C89ull, 0x452821E638D01377ull, 0xBE5466CF34E90C6Cull,
    0x3F84D5B5B5470917ull, 0x9216D5D98979FB1Bull};

constexpr u64 kAlpha = 0xC0AC29B7C97C50DDull;

// omega: (b3 b2 b1 b0) -> (b0 ^ b1, b3, b2, b1).
constexpr u64
lfsr(u64 nib)
{
    const u64 b0 = nib & 1, b1 = (nib >> 1) & 1;
    return ((b0 ^ b1) << 3) | (nib >> 1);
}

// omega^-1: (a3 a2 a1 a0) -> (a2, a1, a0, a3 ^ a0).
constexpr u64
lfsrInv(u64 nib)
{
    const u64 a3 = (nib >> 3) & 1, a0 = nib & 1;
    return ((nib << 1) & 0xe) | (a3 ^ a0);
}

// Reference cell permutation; the runtime path uses the scatter LUTs
// below, which are generated from (and verified against) this.
constexpr u64
permuteCells(u64 state, const unsigned *perm)
{
    u64 out = 0;
    for (unsigned i = 0; i < 16; ++i)
        out = setCell(out, i, getCell(state, perm[i]));
    return out;
}

/**
 * Per-byte scatter tables for a cell permutation, optionally composed
 * with the tweak LFSR. t[j][b] is the full 64-bit contribution of input
 * byte j (cells 2j and 2j+1) holding value b; because every output cell
 * takes exactly one input cell — and omega maps the zero nibble to zero
 * — OR-ing the eight per-byte contributions reconstructs the permuted
 * word exactly.
 */
struct NibbleScatterLut
{
    u64 t[8][256];
};

// How the tweak LFSR composes with the permutation in a LUT.
enum class LfsrMode { kNone, kAfterPerm, kInvThenPerm };

constexpr NibbleScatterLut
makeScatterLut(const unsigned (&perm)[16], LfsrMode mode)
{
    NibbleScatterLut lut{};
    for (unsigned byte = 0; byte < 8; ++byte) {
        for (unsigned val = 0; val < 256; ++val) {
            u64 word = 0;
            word = setCell(word, 2 * byte, (val >> 4) & 0xf);
            word = setCell(word, 2 * byte + 1, val & 0xf);
            if (mode == LfsrMode::kInvThenPerm) {
                for (unsigned i = 0; i < 16; ++i) {
                    if (kLfsrCell[i])
                        word = setCell(word, i, lfsrInv(getCell(word, i)));
                }
            }
            u64 out = permuteCells(word, perm);
            if (mode == LfsrMode::kAfterPerm) {
                for (unsigned i = 0; i < 16; ++i) {
                    if (kLfsrCell[i])
                        out = setCell(out, i, lfsr(getCell(out, i)));
                }
            }
            lut.t[byte][val] = out;
        }
    }
    return lut;
}

constexpr auto kTauLut = makeScatterLut(kTau, LfsrMode::kNone);
constexpr NibbleScatterLut kTauInvLut = [] {
    unsigned perm[16]{};
    for (unsigned i = 0; i < 16; ++i)
        perm[i] = kTauInv[i];
    return makeScatterLut(perm, LfsrMode::kNone);
}();
constexpr auto kFwdTweakLut = makeScatterLut(kTweakPerm, LfsrMode::kAfterPerm);
constexpr NibbleScatterLut kBwdTweakLut = [] {
    unsigned perm[16]{};
    for (unsigned i = 0; i < 16; ++i)
        perm[i] = kTweakPermInv[i];
    return makeScatterLut(perm, LfsrMode::kInvThenPerm);
}();

inline u64
applyScatterLut(const NibbleScatterLut &lut, u64 x)
{
    return lut.t[0][(x >> 56) & 0xff] | lut.t[1][(x >> 48) & 0xff] |
           lut.t[2][(x >> 40) & 0xff] | lut.t[3][(x >> 32) & 0xff] |
           lut.t[4][(x >> 24) & 0xff] | lut.t[5][(x >> 16) & 0xff] |
           lut.t[6][(x >> 8) & 0xff] | lut.t[7][x & 0xff];
}

/** Byte-wide S-box: both nibbles of a byte substituted per lookup. */
constexpr std::array<u8, 256>
makeByteSbox(const u8 *box)
{
    std::array<u8, 256> out{};
    for (unsigned b = 0; b < 256; ++b)
        out[b] = static_cast<u8>((box[b >> 4] << 4) | box[b & 0xf]);
    return out;
}

constexpr auto kSigma0Byte = makeByteSbox(kSigma0);
constexpr auto kSigma1Byte = makeByteSbox(kSigma1);
constexpr auto kSigma2Byte = makeByteSbox(kSigma2);
constexpr auto kSigma0InvByte = makeByteSbox(kSigma0Inv.data());
constexpr auto kSigma1InvByte = makeByteSbox(kSigma1Inv.data());
constexpr auto kSigma2InvByte = makeByteSbox(kSigma2Inv.data());

inline u64
applyByteSbox(const u8 *box, u64 x)
{
    u64 out = 0;
    for (unsigned byte = 0; byte < 8; ++byte) {
        const unsigned sh = 56 - 8 * byte;
        out |= static_cast<u64>(box[(x >> sh) & 0xff]) << sh;
    }
    return out;
}

// Rotate every 4-bit cell of @p x left by 1 / by 2, in parallel.
inline u64
rotlCells1(u64 x)
{
    return ((x << 1) & 0xEEEEEEEEEEEEEEEEull) |
           ((x >> 3) & 0x1111111111111111ull);
}

inline u64
rotlCells2(u64 x)
{
    return ((x << 2) & 0xCCCCCCCCCCCCCCCCull) |
           ((x >> 2) & 0x3333333333333333ull);
}

} // namespace

Qarma64::Qarma64(Sbox sbox, unsigned rounds) : _sbox(sbox), _rounds(rounds)
{
    panic_if(rounds < 1 || rounds > 8, "unsupported QARMA round count %u",
             rounds);
    switch (sbox) {
      case Sbox::kSigma0:
        _sub2 = kSigma0Byte.data();
        _sub2Inv = kSigma0InvByte.data();
        break;
      case Sbox::kSigma1:
        _sub2 = kSigma1Byte.data();
        _sub2Inv = kSigma1InvByte.data();
        break;
      case Sbox::kSigma2:
        _sub2 = kSigma2Byte.data();
        _sub2Inv = kSigma2InvByte.data();
        break;
      default:
        panic("invalid QARMA S-box selector");
    }
}

u64
Qarma64::roundConst(unsigned i)
{
    panic_if(i >= 8, "QARMA round constant index %u out of range", i);
    return kRoundConst[i];
}

u64
Qarma64::alpha()
{
    return kAlpha;
}

u64
Qarma64::shuffleCells(u64 state)
{
    return applyScatterLut(kTauLut, state);
}

u64
Qarma64::shuffleCellsInv(u64 state)
{
    return applyScatterLut(kTauInvLut, state);
}

u64
Qarma64::mixColumns(u64 state)
{
    // M = circ(0, rho, rho^2, rho) acting column-wise on the 4x4 cell
    // matrix; multiplication by rho^e rotates a nibble left by e. The
    // matrix is an involution, so it serves as both M and M^-1 (and as
    // the central matrix Q). Row r+k of the cell matrix sits 16 bits
    // below row r (cell 0 is the MSB nibble), so "take the cell k rows
    // down, same column" is a plain 16k-bit word rotation — the whole
    // matrix evaluates as three rotations and two parallel cell spins.
    return rotlCells1(std::rotl(state, 16)) ^
           rotlCells2(std::rotl(state, 32)) ^
           rotlCells1(std::rotl(state, 48));
}

u64
Qarma64::subCells(u64 state) const
{
    return applyByteSbox(_sub2, state);
}

u64
Qarma64::subCellsInv(u64 state) const
{
    return applyByteSbox(_sub2Inv, state);
}

u64
Qarma64::forwardTweak(u64 tweak)
{
    return applyScatterLut(kFwdTweakLut, tweak);
}

u64
Qarma64::backwardTweak(u64 tweak)
{
    return applyScatterLut(kBwdTweakLut, tweak);
}

u64
Qarma64::deriveW1(u64 w0)
{
    return rotr64(w0, 1) ^ (w0 >> 63);
}

u64
Qarma64::deriveK1(u64 k0)
{
    return mixColumns(k0);
}

Qarma64::Schedule
Qarma64::expandKey(const Key128 &key)
{
    return {key.w0, deriveW1(key.w0), key.k0, deriveK1(key.k0)};
}

u64
Qarma64::forwardRound(u64 state, u64 tweakey, bool full) const
{
    state ^= tweakey;
    if (full) {
        state = shuffleCells(state);
        state = mixColumns(state);
    }
    return subCells(state);
}

u64
Qarma64::backwardRound(u64 state, u64 tweakey, bool full) const
{
    state = subCellsInv(state);
    if (full) {
        state = mixColumns(state);
        state = shuffleCellsInv(state);
    }
    return state ^ tweakey;
}

u64
Qarma64::reflect(u64 state, u64 k1) const
{
    state = shuffleCells(state);
    state = mixColumns(state);
    state ^= k1;
    return shuffleCellsInv(state);
}

u64
Qarma64::reflectInv(u64 state, u64 k1) const
{
    state = shuffleCells(state);
    state ^= k1;
    state = mixColumns(state);
    return shuffleCellsInv(state);
}

u64
Qarma64::encrypt(u64 plaintext, u64 tweak, const Schedule &ks) const
{
    u64 state = plaintext ^ ks.w0;
    u64 t = tweak;
    for (unsigned i = 0; i < _rounds; ++i) {
        state = forwardRound(state, ks.k0 ^ t ^ kRoundConst[i], i != 0);
        t = forwardTweak(t);
    }
    state = forwardRound(state, ks.w1 ^ t, true);
    state = reflect(state, ks.k1);
    state = backwardRound(state, ks.w0 ^ t, true);
    for (unsigned i = _rounds; i-- > 0;) {
        t = backwardTweak(t);
        state = backwardRound(state, ks.k0 ^ t ^ kRoundConst[i] ^ kAlpha,
                              i != 0);
    }
    return state ^ ks.w1;
}

u64
Qarma64::decrypt(u64 ciphertext, u64 tweak, const Schedule &ks) const
{
    u64 state = ciphertext ^ ks.w1;
    u64 t = tweak;
    for (unsigned i = 0; i < _rounds; ++i) {
        state = forwardRound(state, ks.k0 ^ t ^ kRoundConst[i] ^ kAlpha,
                             i != 0);
        t = forwardTweak(t);
    }
    state = forwardRound(state, ks.w0 ^ t, true);
    state = reflectInv(state, ks.k1);
    state = backwardRound(state, ks.w1 ^ t, true);
    for (unsigned i = _rounds; i-- > 0;) {
        t = backwardTweak(t);
        state = backwardRound(state, ks.k0 ^ t ^ kRoundConst[i], i != 0);
    }
    return state ^ ks.w0;
}

u64
Qarma64::encrypt(u64 plaintext, u64 tweak, const Key128 &key) const
{
    return encrypt(plaintext, tweak, expandKey(key));
}

u64
Qarma64::decrypt(u64 ciphertext, u64 tweak, const Key128 &key) const
{
    return decrypt(ciphertext, tweak, expandKey(key));
}

} // namespace aos::qarma
