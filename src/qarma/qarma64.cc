#include "qarma/qarma64.hh"

#include <array>

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace aos::qarma {

namespace {

// The three specified 4-bit S-boxes (Avanzi, Table 2).
constexpr u8 kSigma0[16] = {
    0, 14, 2, 10, 9, 15, 8, 11, 6, 4, 3, 7, 13, 12, 1, 5};
constexpr u8 kSigma1[16] = {
    10, 13, 14, 6, 15, 7, 3, 5, 9, 8, 0, 12, 11, 1, 2, 4};
constexpr u8 kSigma2[16] = {
    11, 6, 8, 15, 12, 0, 9, 14, 3, 7, 4, 5, 13, 2, 1, 10};

constexpr std::array<u8, 16>
invert(const u8 (&box)[16])
{
    std::array<u8, 16> inv{};
    for (unsigned i = 0; i < 16; ++i)
        inv[box[i]] = static_cast<u8>(i);
    return inv;
}

constexpr auto kSigma0Inv = invert(kSigma0);
constexpr auto kSigma1Inv = invert(kSigma1);
constexpr auto kSigma2Inv = invert(kSigma2);

// Cell shuffle tau: new cell i takes old cell kTau[i].
constexpr unsigned kTau[16] = {
    0, 11, 6, 13, 10, 1, 12, 7, 5, 14, 3, 8, 15, 4, 9, 2};

constexpr std::array<unsigned, 16>
invertPerm(const unsigned (&perm)[16])
{
    std::array<unsigned, 16> inv{};
    for (unsigned i = 0; i < 16; ++i)
        inv[perm[i]] = i;
    return inv;
}

constexpr auto kTauInv = invertPerm(kTau);

// Tweak cell permutation h: new cell i takes old cell kTweakPerm[i].
constexpr unsigned kTweakPerm[16] = {
    6, 5, 14, 15, 0, 1, 2, 3, 7, 12, 13, 4, 8, 9, 10, 11};
constexpr auto kTweakPermInv = invertPerm(kTweakPerm);

// Cells of the tweak that pass through the LFSR omega each update.
constexpr bool kLfsrCell[16] = {
    true, true, false, true, true, false, false, false,
    true, false, false, true, false, true, false, false};

// Round constants derived from the digits of pi.
constexpr u64 kRoundConst[8] = {
    0x0000000000000000ull, 0x13198A2E03707344ull, 0xA4093822299F31D0ull,
    0x082EFA98EC4E6C89ull, 0x452821E638D01377ull, 0xBE5466CF34E90C6Cull,
    0x3F84D5B5B5470917ull, 0x9216D5D98979FB1Bull};

constexpr u64 kAlpha = 0xC0AC29B7C97C50DDull;

// omega: (b3 b2 b1 b0) -> (b0 ^ b1, b3, b2, b1).
constexpr u64
lfsr(u64 nib)
{
    const u64 b0 = nib & 1, b1 = (nib >> 1) & 1;
    return ((b0 ^ b1) << 3) | (nib >> 1);
}

// omega^-1: (a3 a2 a1 a0) -> (a2, a1, a0, a3 ^ a0).
constexpr u64
lfsrInv(u64 nib)
{
    const u64 a3 = (nib >> 3) & 1, a0 = nib & 1;
    return ((nib << 1) & 0xe) | (a3 ^ a0);
}

u64
permuteCells(u64 state, const unsigned *perm)
{
    u64 out = 0;
    for (unsigned i = 0; i < 16; ++i)
        out = setCell(out, i, getCell(state, perm[i]));
    return out;
}

} // namespace

Qarma64::Qarma64(Sbox sbox, unsigned rounds) : _sbox(sbox), _rounds(rounds)
{
    panic_if(rounds < 1 || rounds > 8, "unsupported QARMA round count %u",
             rounds);
    switch (sbox) {
      case Sbox::kSigma0:
        _sub = kSigma0;
        _subInv = kSigma0Inv.data();
        break;
      case Sbox::kSigma1:
        _sub = kSigma1;
        _subInv = kSigma1Inv.data();
        break;
      case Sbox::kSigma2:
        _sub = kSigma2;
        _subInv = kSigma2Inv.data();
        break;
      default:
        panic("invalid QARMA S-box selector");
    }
}

u64
Qarma64::shuffleCells(u64 state)
{
    return permuteCells(state, kTau);
}

u64
Qarma64::shuffleCellsInv(u64 state)
{
    return permuteCells(state, kTauInv.data());
}

u64
Qarma64::mixColumns(u64 state)
{
    // M = circ(0, rho, rho^2, rho) acting column-wise on the 4x4 cell
    // matrix; multiplication by rho^e rotates a nibble left by e. The
    // matrix is an involution, so it serves as both M and M^-1 (and as
    // the central matrix Q).
    u64 out = 0;
    for (unsigned row = 0; row < 4; ++row) {
        for (unsigned col = 0; col < 4; ++col) {
            const u64 a = getCell(state, 4 * ((row + 1) & 3) + col);
            const u64 b = getCell(state, 4 * ((row + 2) & 3) + col);
            const u64 c = getCell(state, 4 * ((row + 3) & 3) + col);
            const u64 mixed = rotl4(a, 1) ^ rotl4(b, 2) ^ rotl4(c, 1);
            out = setCell(out, 4 * row + col, mixed);
        }
    }
    return out;
}

u64
Qarma64::subCells(u64 state) const
{
    u64 out = 0;
    for (unsigned i = 0; i < 16; ++i)
        out = setCell(out, i, _sub[getCell(state, i)]);
    return out;
}

u64
Qarma64::subCellsInv(u64 state) const
{
    u64 out = 0;
    for (unsigned i = 0; i < 16; ++i)
        out = setCell(out, i, _subInv[getCell(state, i)]);
    return out;
}

u64
Qarma64::forwardTweak(u64 tweak)
{
    u64 out = permuteCells(tweak, kTweakPerm);
    for (unsigned i = 0; i < 16; ++i) {
        if (kLfsrCell[i])
            out = setCell(out, i, lfsr(getCell(out, i)));
    }
    return out;
}

u64
Qarma64::backwardTweak(u64 tweak)
{
    u64 out = tweak;
    for (unsigned i = 0; i < 16; ++i) {
        if (kLfsrCell[i])
            out = setCell(out, i, lfsrInv(getCell(out, i)));
    }
    return permuteCells(out, kTweakPermInv.data());
}

u64
Qarma64::deriveW1(u64 w0)
{
    return rotr64(w0, 1) ^ (w0 >> 63);
}

u64
Qarma64::deriveK1(u64 k0)
{
    return mixColumns(k0);
}

u64
Qarma64::forwardRound(u64 state, u64 tweakey, bool full) const
{
    state ^= tweakey;
    if (full) {
        state = shuffleCells(state);
        state = mixColumns(state);
    }
    return subCells(state);
}

u64
Qarma64::backwardRound(u64 state, u64 tweakey, bool full) const
{
    state = subCellsInv(state);
    if (full) {
        state = mixColumns(state);
        state = shuffleCellsInv(state);
    }
    return state ^ tweakey;
}

u64
Qarma64::reflect(u64 state, u64 k1) const
{
    state = shuffleCells(state);
    state = mixColumns(state);
    state ^= k1;
    return shuffleCellsInv(state);
}

u64
Qarma64::reflectInv(u64 state, u64 k1) const
{
    state = shuffleCells(state);
    state ^= k1;
    state = mixColumns(state);
    return shuffleCellsInv(state);
}

u64
Qarma64::encrypt(u64 plaintext, u64 tweak, const Key128 &key) const
{
    const u64 w0 = key.w0;
    const u64 w1 = deriveW1(w0);
    const u64 k0 = key.k0;
    const u64 k1 = deriveK1(k0);

    u64 state = plaintext ^ w0;
    u64 t = tweak;
    for (unsigned i = 0; i < _rounds; ++i) {
        state = forwardRound(state, k0 ^ t ^ kRoundConst[i], i != 0);
        t = forwardTweak(t);
    }
    state = forwardRound(state, w1 ^ t, true);
    state = reflect(state, k1);
    state = backwardRound(state, w0 ^ t, true);
    for (unsigned i = _rounds; i-- > 0;) {
        t = backwardTweak(t);
        state = backwardRound(state, k0 ^ t ^ kRoundConst[i] ^ kAlpha,
                              i != 0);
    }
    return state ^ w1;
}

u64
Qarma64::decrypt(u64 ciphertext, u64 tweak, const Key128 &key) const
{
    const u64 w0 = key.w0;
    const u64 w1 = deriveW1(w0);
    const u64 k0 = key.k0;
    const u64 k1 = deriveK1(k0);

    u64 state = ciphertext ^ w1;
    u64 t = tweak;
    for (unsigned i = 0; i < _rounds; ++i) {
        state = forwardRound(state, k0 ^ t ^ kRoundConst[i] ^ kAlpha,
                             i != 0);
        t = forwardTweak(t);
    }
    state = forwardRound(state, w0 ^ t, true);
    state = reflectInv(state, k1);
    state = backwardRound(state, w1 ^ t, true);
    for (unsigned i = _rounds; i-- > 0;) {
        t = backwardTweak(t);
        state = backwardRound(state, k0 ^ t ^ kRoundConst[i], i != 0);
    }
    return state ^ w0;
}

} // namespace aos::qarma
