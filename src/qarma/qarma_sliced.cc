#include "qarma/qarma_sliced.hh"

#include <algorithm>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "qarma/qarma_sliced_kernel.hh"

namespace aos::qarma {

using sliceddetail::LinTab;
using sliceddetail::LinTabs;
using sliceddetail::SboxTab;
using sliceddetail::encryptChunk;
using sliceddetail::transpose64;

namespace {

#if defined(AOS_QARMA_HAVE_VEC128)
typedef u64 Vec128 __attribute__((vector_size(16)));
#endif

// ---------------------------------------------------------------------
// Plane-network tables, derived from the scalar implementation.
// ---------------------------------------------------------------------

/**
 * Probe @p f with every single-bit input to recover its matrix, and
 * verify GF(2)-linearity on random pairs so a non-linear layer can
 * never be silently mis-sliced.
 */
LinTab
deriveLinear(u64 (*f)(u64), const char *what)
{
    u64 col[64];
    for (unsigned i = 0; i < 64; ++i)
        col[i] = f(u64{1} << i);

    panic_if(f(0) != 0, "qarma sliced: %s is not linear (f(0) != 0)",
             what);
    Rng rng(0x51ced0001ull);
    for (unsigned trial = 0; trial < 16; ++trial) {
        const u64 a = rng.next(), b = rng.next();
        panic_if(f(a ^ b) != (f(a) ^ f(b)),
                 "qarma sliced: %s is not GF(2)-linear", what);
    }

    LinTab tab{};
    for (unsigned o = 0; o < 64; ++o) {
        unsigned n = 0;
        for (unsigned i = 0; i < 64; ++i) {
            if ((col[i] >> o) & 1) {
                panic_if(n >= 3,
                         "qarma sliced: %s has >3 terms for bit %u",
                         what, o);
                tab.src[o][n++] = static_cast<u8>(i);
            }
        }
        panic_if(n == 0, "qarma sliced: %s drops bit %u", what, o);
        tab.nsrc[o] = static_cast<u8>(n);
    }
    return tab;
}

u64
probeFwdLin(u64 x)
{
    return Qarma64::mixColumns(Qarma64::shuffleCells(x));
}

u64
probeBwdLin(u64 x)
{
    return Qarma64::shuffleCellsInv(Qarma64::mixColumns(x));
}

u64
probeReflLin(u64 x)
{
    return Qarma64::shuffleCellsInv(
        Qarma64::mixColumns(Qarma64::shuffleCells(x)));
}

// ---------------------------------------------------------------------
// 64x64 bit transpose (lane-major words <-> bit planes).
// ---------------------------------------------------------------------

void
verifyTranspose()
{
    Rng rng(0x51ced0002ull);
    u64 a[64], ref[64];
    for (unsigned i = 0; i < 64; ++i)
        ref[i] = a[i] = rng.next();
    transpose64(a);
    for (unsigned p = 0; p < 64; ++p) {
        for (unsigned j = 0; j < 64; ++j) {
            panic_if(((a[p] >> j) & 1) != ((ref[j] >> p) & 1),
                     "qarma sliced: transpose self-check failed");
        }
    }
}

const LinTabs &
linTabs()
{
    static const LinTabs tabs = [] {
        verifyTranspose();
        LinTabs t;
        t.fwdLin = deriveLinear(probeFwdLin, "mix∘shuffle");
        t.bwdLin = deriveLinear(probeBwdLin, "shuffleInv∘mix");
        t.reflLin = deriveLinear(probeReflLin, "reflector");
        t.fwdTweak = deriveLinear(Qarma64::forwardTweak, "forward tweak");
        t.bwdTweak = deriveLinear(Qarma64::backwardTweak, "backward tweak");
        return t;
    }();
    return tabs;
}

/**
 * Per-sigma S-box tables recovered by probing the scalar subCells on
 * single-cell values, followed by a one-time end-to-end check of the
 * sliced kernel against the scalar cipher for that sigma.
 */
SboxTab
makeSboxTab(Sbox sbox)
{
    const unsigned idx = static_cast<unsigned>(sbox);
    SboxTab tab{};
    const Qarma64 probe(sbox, 7);
    for (unsigned v = 0; v < 16; ++v) {
        // Feeding a single-nibble value puts it in cell 15 (the LSB
        // nibble), so the LSB nibble of the output is its image.
        tab.fwd[v] = static_cast<u8>(probe.subCells(v) & 0xf);
        tab.inv[v] = static_cast<u8>(probe.subCellsInv(v) & 0xf);
    }
    // End-to-end self-check: one full 64-lane batch against the
    // scalar cipher, for the round counts AOS instantiates.
    Rng rng(0x51ced0003ull ^ idx);
    u64 pt[64], tw[64], ct[64];
    for (unsigned j = 0; j < 64; ++j) {
        pt[j] = rng.next();
        tw[j] = rng.next();
    }
    for (unsigned r : {5u, 7u}) {
        const Qarma64 scalar(sbox, r);
        const auto ks = Qarma64::expandKey({rng.next(), rng.next()});
        encryptChunk<u64>(linTabs(), tab, r, ks, pt, tw, 64, ct);
        for (unsigned j = 0; j < 64; ++j) {
            panic_if(ct[j] != scalar.encrypt(pt[j], tw[j], ks),
                     "qarma sliced: kernel disagrees with scalar "
                     "(sigma%u, r=%u, lane %u)",
                     idx, r, j);
        }
    }
    return tab;
}

const SboxTab &
sboxTab(Sbox sbox)
{
    switch (sbox) {
      case Sbox::kSigma0: {
        static const SboxTab tab = makeSboxTab(Sbox::kSigma0);
        return tab;
      }
      case Sbox::kSigma1: {
        static const SboxTab tab = makeSboxTab(Sbox::kSigma1);
        return tab;
      }
      case Sbox::kSigma2: {
        static const SboxTab tab = makeSboxTab(Sbox::kSigma2);
        return tab;
      }
    }
    panic("invalid QARMA S-box selector");
}

/** 512-lane kernel compiled in AND runnable on this host. */
bool
simd512Usable()
{
#if defined(AOS_QARMA_HAVE_VEC512)
    return __builtin_cpu_supports("avx512f");
#else
    return false;
#endif
}

SlicedKernel
resolveKernel(SlicedKernel requested)
{
    const bool have_simd = QarmaSliced::simdCompiledIn();
    if (requested != SlicedKernel::kAuto) {
        panic_if(requested == SlicedKernel::kSimd128 && !have_simd,
                 "QarmaSliced: 128-lane kernel not compiled in");
        panic_if(requested == SlicedKernel::kSimd512 && !simd512Usable(),
                 "QarmaSliced: 512-lane kernel not available "
                 "(not compiled in, or host lacks AVX-512)");
        return requested;
    }
    const std::string knob = envString("AOS_QARMA_KERNEL", "auto");
    if (knob == "auto" || knob.empty()) {
        if (simd512Usable())
            return SlicedKernel::kSimd512;
        return have_simd ? SlicedKernel::kSimd128
                         : SlicedKernel::kSliced64;
    }
    if (knob == "scalar")
        return SlicedKernel::kScalar;
    if (knob == "sliced")
        return SlicedKernel::kSliced64;
    if (knob == "simd") {
        // Widest vector kernel this build + host supports.
        if (simd512Usable())
            return SlicedKernel::kSimd512;
        fatal_if(!have_simd, "AOS_QARMA_KERNEL=simd but no vector "
                             "kernel was compiled in");
        return SlicedKernel::kSimd128;
    }
    if (knob == "simd128") {
        fatal_if(!have_simd, "AOS_QARMA_KERNEL=simd128 but the "
                             "128-lane kernel was not compiled in");
        return SlicedKernel::kSimd128;
    }
    if (knob == "simd512") {
        fatal_if(!simd512Usable(),
                 "AOS_QARMA_KERNEL=simd512 but the 512-lane kernel is "
                 "not available on this build/host");
        return SlicedKernel::kSimd512;
    }
    fatal("AOS_QARMA_KERNEL: unknown kernel '%s' "
          "(auto|scalar|sliced|simd|simd128|simd512)",
          knob.c_str());
}

} // namespace

QarmaSliced::QarmaSliced(Sbox sbox, unsigned rounds, SlicedKernel kernel)
    : _sbox(sbox), _rounds(rounds), _kernel(resolveKernel(kernel)),
      _scalar(sbox, rounds)
{
    if (_kernel != SlicedKernel::kScalar) {
        // Force table derivation (and its self-checks) up front.
        linTabs();
        sboxTab(sbox);
    }
}

bool
QarmaSliced::simdCompiledIn()
{
#if defined(AOS_QARMA_HAVE_VEC128)
    return true;
#else
    return false;
#endif
}

bool
QarmaSliced::simd512Available()
{
    return simd512Usable();
}

unsigned
QarmaSliced::lanes() const
{
    switch (_kernel) {
      case SlicedKernel::kScalar:
        return 1;
      case SlicedKernel::kSliced64:
        return 64;
      case SlicedKernel::kSimd128:
        return 128;
      case SlicedKernel::kSimd512:
        return 512;
      case SlicedKernel::kAuto:
        break;
    }
    panic("QarmaSliced: unresolved kernel");
}

void
QarmaSliced::encrypt(const u64 *pt, const u64 *tw, size_t n,
                     const Qarma64::Schedule &ks, u64 *ct) const
{
    size_t i = 0;
    if (_kernel != SlicedKernel::kScalar) {
        const LinTabs &lt = linTabs();
        const SboxTab &sb = sboxTab(_sbox);
        const size_t lane_width = lanes();
        while (n - i >= kMinSlicedBatch) {
            const size_t take = std::min(lane_width, n - i);
#if defined(AOS_QARMA_HAVE_VEC512)
            if (_kernel == SlicedKernel::kSimd512)
                sliceddetail::encryptChunk512(lt, sb, _rounds, ks,
                                              pt + i, tw + i, take,
                                              ct + i);
            else
#endif
#if defined(AOS_QARMA_HAVE_VEC128)
            if (_kernel == SlicedKernel::kSimd128)
                encryptChunk<Vec128>(lt, sb, _rounds, ks, pt + i, tw + i,
                                     take, ct + i);
            else
#endif
                encryptChunk<u64>(lt, sb, _rounds, ks, pt + i, tw + i,
                                  take, ct + i);
            i += take;
        }
    }
    for (; i < n; ++i)
        ct[i] = _scalar.encrypt(pt[i], tw[i], ks);
}

} // namespace aos::qarma
