#include "common/env.hh"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdlib>

#include "common/logging.hh"

namespace aos {

bool
parseU64(const char *text, u64 &out)
{
    if (!text || !*text)
        return false;
    // strtoull skips whitespace and accepts '-' (wrapping!); forbid
    // both by requiring the first character to start a digit sequence.
    if (!std::isdigit(static_cast<unsigned char>(text[0])))
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 0);
    if (errno == ERANGE || end == text || *end != '\0')
        return false;
    out = static_cast<u64>(value);
    return true;
}

bool
parseUnsigned(const char *text, unsigned &out)
{
    u64 wide = 0;
    if (!parseU64(text, wide) || wide > UINT_MAX)
        return false;
    out = static_cast<unsigned>(wide);
    return true;
}

u64
envU64(const char *name, u64 fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    u64 parsed = 0;
    if (!parseU64(value, parsed)) {
        fatal("%s: expected a non-negative integer, got \"%s\"", name,
              value);
    }
    return parsed ? parsed : fallback;
}

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    unsigned parsed = 0;
    if (!parseUnsigned(value, parsed)) {
        fatal("%s: expected an unsigned integer (<= %u), got \"%s\"",
              name, UINT_MAX, value);
    }
    return parsed ? parsed : fallback;
}

bool
envFlag(const char *name, bool fallback)
{
    const char *value = std::getenv(name);
    if (!value)
        return fallback;
    const std::string v(value);
    return v != "0" && v != "off";
}

std::string
envString(const char *name, const std::string &fallback)
{
    const char *value = std::getenv(name);
    return value ? std::string(value) : fallback;
}

} // namespace aos
