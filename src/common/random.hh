/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Implements xoshiro256** (Blackman & Vigna). Every simulated workload
 * owns its own generator seeded from the workload name so runs are
 * reproducible and independent of std::mt19937 platform quirks.
 */

#ifndef AOS_COMMON_RANDOM_HH
#define AOS_COMMON_RANDOM_HH

#include <string_view>

#include "common/types.hh"

namespace aos {

/** xoshiro256** generator with convenience distributions. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Seed from a string (FNV-1a), e.g. a workload name. */
    explicit Rng(std::string_view name) { reseed(hashName(name)); }

    /** Re-initialize the state from a 64-bit seed via splitmix64. */
    void
    reseed(u64 seed)
    {
        for (auto &word : _state)
            word = splitmix64(seed);
    }

    /** Next raw 64-bit value. */
    u64
    next()
    {
        const u64 result = rotl(_state[1] * 5, 7) * 9;
        const u64 t = _state[1] << 17;
        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) — bound must be nonzero. */
    u64
    below(u64 bound)
    {
        // Lemire-style rejection-free reduction is fine here: the slight
        // modulo bias on 64-bit ranges is irrelevant for synthesis.
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    u64
    range(u64 lo, u64 hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Geometric-ish skewed draw in [0, n): smaller values more likely.
     * Used for reuse-distance style address selection.
     */
    u64
    skewed(u64 n)
    {
        if (n <= 1)
            return 0;
        const double u = uniform();
        return static_cast<u64>(u * u * static_cast<double>(n));
    }

    static u64
    hashName(std::string_view name)
    {
        u64 h = 0xcbf29ce484222325ull;
        for (const char ch : name) {
            h ^= static_cast<u8>(ch);
            h *= 0x100000001b3ull;
        }
        return h ? h : 1;
    }

  private:
    static u64
    rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static u64
    splitmix64(u64 &state)
    {
        u64 z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    u64 _state[4];
};

} // namespace aos

#endif // AOS_COMMON_RANDOM_HH
