/**
 * @file
 * Minimal socket + framing layer for the campaign fabric (DESIGN.md
 * §12) — the networking sibling of common/fsio.hh.
 *
 * Three small pieces, deliberately kept transport-agnostic:
 *
 *  - Address: a parsed endpoint, "unix:<path>" or "tcp:<host>:<port>".
 *    Parsing is strict in the spirit of common/env.hh — a malformed
 *    address is reported with a reason, never half-accepted.
 *  - Socket: an RAII fd with the three operations the fabric needs:
 *    sendAll() (whole buffer or error, SIGPIPE suppressed), recvSome()
 *    (one read; 0 = orderly EOF) and listen/accept/connect helpers.
 *  - Frame codec: every fabric message travels as
 *
 *        [magic u32 | type u32 | length u32 | crc32 u32]
 *        [payload bytes...]                        (little-endian)
 *
 *    where the CRC covers type, length and payload (a payload-only
 *    CRC would let a flipped type field deliver a valid frame of the
 *    wrong kind, and a flipped length stall the stream).
 *
 *    mirroring the checkpoint shard record layout (checkpoint.hh),
 *    which is already a CRC-framed wire format in all but name. The
 *    FrameDecoder is an incremental reassembler: feed() it whatever
 *    recv returned and drain complete frames with next(). A frame
 *    whose magic, declared length or CRC is wrong poisons the stream
 *    (corrupt() latches with a diagnostic) — a corrupted peer is
 *    disconnected, never partially trusted. A merely *incomplete*
 *    frame is not an error; it waits for more bytes.
 *
 * Chaos instrumentation (DESIGN.md §13): sendAll()/recvSome() consult
 * chaos::engine() and on the deterministic schedule inject partial
 * transfers, ECONNRESET, bounded EINTR storms, short delays and
 * single-bit flips of the wire image (never the caller's buffer).
 * The CRC framing turns every injected flip into a poisoned decoder,
 * which is exactly the degradation path the fabric must survive.
 */

#ifndef AOS_COMMON_NETIO_HH
#define AOS_COMMON_NETIO_HH

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "common/types.hh"

namespace aos::netio {

// --- addresses ------------------------------------------------------

struct Address
{
    enum class Kind { kUnix, kTcp };

    Kind kind = Kind::kUnix;
    std::string path; //!< kUnix: filesystem path of the socket.
    std::string host; //!< kTcp: hostname or numeric address.
    u16 port = 0;     //!< kTcp.

    /** Back to the canonical "unix:..."/"tcp:host:port" spelling. */
    std::string str() const;
};

/**
 * Parse "unix:<path>" or "tcp:<host>:<port>". Strict: an unknown
 * scheme, empty path/host, or a port that is not a complete decimal
 * in [1, 65535] fails with @p error set to the reason.
 */
bool parseAddress(const std::string &text, Address &out,
                  std::string &error);

// --- sockets --------------------------------------------------------

/** RAII socket fd. Move-only; closes on destruction. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : _fd(fd) {}
    ~Socket();

    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;
    Socket(Socket &&other) noexcept;
    Socket &operator=(Socket &&other) noexcept;

    bool valid() const { return _fd >= 0; }
    int fd() const { return _fd; }

    /** Release ownership of the fd without closing it. */
    int release();

    void close();

    /**
     * Send the whole buffer (looping over partial writes, EINTR
     * retried, SIGPIPE suppressed). False on any error — after which
     * the peer must be considered gone.
     */
    bool sendAll(const void *data, size_t len);
    bool sendAll(const std::string &data);

    /**
     * One recv(2) of up to @p len bytes. Returns the byte count,
     * 0 on orderly EOF, -1 on error (EINTR retried internally).
     */
    long recvSome(void *buf, size_t len);

  private:
    int _fd = -1;
};

/** Bind + listen at @p addr. Invalid socket + @p error on failure. */
Socket listenAt(const Address &addr, std::string &error);

/** Accept one pending connection; invalid socket on failure. */
Socket acceptOn(Socket &listener);

/** Connect to @p addr. Invalid socket + @p error on failure. */
Socket connectTo(const Address &addr, std::string &error);

/**
 * poll(2) for readability with @p timeoutMs (-1 = forever). Fills
 * @p readable with the indices of @p fds that are readable, closed or
 * errored (the caller's recv distinguishes those). False on poll error.
 */
bool pollReadable(const std::vector<int> &fds, int timeoutMs,
                  std::vector<size_t> &readable);

// --- frame codec ----------------------------------------------------

constexpr u32 kFrameMagic = 0x46534F41; // "AOSF"
constexpr size_t kFrameHeaderBytes = 16;
/** No fabric message approaches this; a larger declared length means a
 *  corrupt or malicious header, exactly as in checkpoint.cc. */
constexpr u32 kMaxFramePayload = 64u << 20;

/** One framed message: header (magic/type/length/CRC32) + payload. */
std::string encodeFrame(u32 type, const std::string &payload);

/**
 * Incremental frame reassembler over a byte stream. Never throws and
 * never reads past what it was fed; designed to be driven by a fuzzer
 * (tests/fabric_test.cc) as well as by sockets.
 */
class FrameDecoder
{
  public:
    /** Ingest @p len raw bytes. No-op once the stream is corrupt. */
    void feed(const void *data, size_t len);

    /**
     * Extract the next complete, CRC-verified frame. False when no
     * complete frame is buffered (or the stream is corrupt).
     */
    bool next(u32 &type, std::string &payload);

    /** A framing/CRC violation was seen; the stream is untrustworthy. */
    bool corrupt() const { return _corrupt; }
    const std::string &error() const { return _error; }

    /** Bytes buffered but not yet consumed (incomplete frame). */
    size_t pendingBytes() const { return _buf.size(); }

  private:
    void poison(const std::string &why);

    std::string _buf;
    bool _corrupt = false;
    std::string _error;
};

} // namespace aos::netio

#endif // AOS_COMMON_NETIO_HH
