/**
 * @file
 * Fundamental integer and address types shared by every AOS module.
 *
 * Follows the gem5 convention of short fixed-width aliases. A simulated
 * virtual address is always carried in an Addr, including its PAC/AHC
 * upper bits; Cycles and Tick are distinct so that latencies and
 * absolute times cannot be mixed up silently.
 */

#ifndef AOS_COMMON_TYPES_HH
#define AOS_COMMON_TYPES_HH

#include <cstdint>

namespace aos {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** A simulated virtual address (may carry PAC/AHC bits in [63:46]). */
using Addr = u64;

/** A relative latency measured in core clock cycles. */
using Cycles = u64;

/** An absolute point in simulated time, in core clock cycles. */
using Tick = u64;

/** Cache line size used throughout the memory system (bytes). */
inline constexpr unsigned kLineSize = 64;

/** log2 of the cache line size. */
inline constexpr unsigned kLineShift = 6;

} // namespace aos

#endif // AOS_COMMON_TYPES_HH
