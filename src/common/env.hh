/**
 * @file
 * Strict environment-variable parsing.
 *
 * The AOS_* knobs used to be parsed with bare strtoul(), which
 * silently accepts garbage ("4x", "1e6", "-3") and overflow — a typo'd
 * sweep would run with a default the user never asked for. The strict
 * parsers here accept only a complete non-negative integer (decimal,
 * or hex/octal with the usual prefixes) and the env wrappers fail fast
 * with a fatal() naming the offending variable otherwise.
 *
 * Convention preserved from the old helpers: an unset or empty
 * variable means "use the fallback", and so does an explicit 0 (every
 * current knob treats 0 as "auto"/"default"; a zero op budget would
 * stall the measure loop).
 */

#ifndef AOS_COMMON_ENV_HH
#define AOS_COMMON_ENV_HH

#include <string>

#include "common/types.hh"

namespace aos {

/**
 * Parse @p text as a u64. The whole string must be consumed: leading
 * whitespace, signs, trailing characters, and out-of-range values all
 * fail. Bases 10/16/8 via strtoull's base-0 rules.
 */
bool parseU64(const char *text, u64 &out);

/** parseU64 narrowed to unsigned; fails when the value does not fit. */
bool parseUnsigned(const char *text, unsigned &out);

/**
 * Read env var @p name. Unset/empty/0 yield @p fallback; anything that
 * parseU64 rejects is a fatal() diagnostic naming the variable.
 */
u64 envU64(const char *name, u64 fallback);

/** envU64 narrowed to unsigned (fatal on overflow too). */
unsigned envUnsigned(const char *name, unsigned fallback);

/**
 * Boolean knob: unset means @p fallback, "0"/"off" false, everything
 * else true (matches the historical AOS_CAMPAIGN_PROGRESS contract).
 */
bool envFlag(const char *name, bool fallback);

/** Raw env var as a string; @p fallback when unset. */
std::string envString(const char *name, const std::string &fallback = "");

} // namespace aos

#endif // AOS_COMMON_ENV_HH
