/**
 * @file
 * Lightweight statistics package modeled after gem5's Stats.
 *
 * Stats are plain value objects grouped into a StatSet for dumping.
 * Scalar wraps a counter; Distribution tracks min/max/mean/stdev and a
 * histogram; Ratio is a named formula over two scalars evaluated at
 * dump time.
 */

#ifndef AOS_COMMON_STATS_HH
#define AOS_COMMON_STATS_HH

#include <cmath>
#include <cstddef>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace aos {

/** A named monotonically increasing (or settable) counter. */
class Scalar
{
  public:
    Scalar() = default;
    explicit Scalar(std::string name) : _name(std::move(name)) {}

    Scalar &operator++() { ++_value; return *this; }
    Scalar &operator+=(double amount) { _value += amount; return *this; }
    Scalar &operator=(double val) { _value = val; return *this; }

    double value() const { return _value; }
    const std::string &name() const { return _name; }

  private:
    std::string _name;
    double _value = 0;
};

/**
 * Sample distribution: running mean/stdev (Welford) plus optional
 * fixed-bucket histogram.
 */
class Distribution
{
  public:
    Distribution() = default;
    explicit Distribution(std::string name) : _name(std::move(name)) {}

    void
    sample(double val, u64 weight = 1)
    {
        for (u64 i = 0; i < weight; ++i) {
            ++_count;
            const double delta = val - _mean;
            _mean += delta / static_cast<double>(_count);
            _m2 += delta * (val - _mean);
        }
        if (_count == weight || val < _min)
            _min = val;
        if (_count == weight || val > _max)
            _max = val;
    }

    u64 count() const { return _count; }
    double mean() const { return _count ? _mean : 0.0; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }

    double
    stdev() const
    {
        if (_count < 2)
            return 0.0;
        return std::sqrt(_m2 / static_cast<double>(_count));
    }

    const std::string &name() const { return _name; }

  private:
    std::string _name;
    u64 _count = 0;
    double _mean = 0;
    double _m2 = 0;
    double _min = 0;
    double _max = 0;
};

/** Integer-keyed occurrence histogram (used for PAC distributions). */
class Histogram
{
  public:
    void add(u64 key, u64 amount = 1) { _buckets[key] += amount; }

    u64
    get(u64 key) const
    {
        auto it = _buckets.find(key);
        return it == _buckets.end() ? 0 : it->second;
    }

    const std::map<u64, u64> &buckets() const { return _buckets; }

    /** Distribution over *bucket occupancies* for keys [0, keyspace). */
    Distribution
    occupancy(u64 keyspace) const
    {
        Distribution dist("occupancy");
        u64 nonzero = 0;
        for (const auto &[key, cnt] : _buckets) {
            dist.sample(static_cast<double>(cnt));
            ++nonzero;
        }
        for (u64 i = nonzero; i < keyspace; ++i)
            dist.sample(0.0);
        return dist;
    }

  private:
    std::map<u64, u64> _buckets;
};

/** A named set of scalar statistics, dumpable as "name value" lines. */
class StatSet
{
  public:
    explicit StatSet(std::string name = "stats") : _name(std::move(name)) {}

    Scalar &
    scalar(const std::string &name)
    {
        auto it = _scalars.find(name);
        if (it == _scalars.end())
            it = _scalars.emplace(name, Scalar(name)).first;
        return it->second;
    }

    double
    value(const std::string &name) const
    {
        auto it = _scalars.find(name);
        return it == _scalars.end() ? 0.0 : it->second.value();
    }

    bool has(const std::string &name) const { return _scalars.count(name); }

    void dump(std::ostream &os) const;

    const std::string &name() const { return _name; }
    const std::map<std::string, Scalar> &scalars() const { return _scalars; }

  private:
    std::string _name;
    std::map<std::string, Scalar> _scalars;
};

/** Geometric mean helper used by the figure harnesses. */
double geomean(const std::vector<double> &vals);

} // namespace aos

#endif // AOS_COMMON_STATS_HH
