/**
 * @file
 * Lightweight statistics package modeled after gem5's Stats.
 *
 * Stats are plain value objects grouped into a StatSet for dumping.
 * Scalar wraps a counter; Distribution tracks min/max/mean/stdev and a
 * histogram; Ratio is a named formula over two scalars evaluated at
 * dump time.
 */

#ifndef AOS_COMMON_STATS_HH
#define AOS_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace aos {

/** A named monotonically increasing (or settable) counter. */
class Scalar
{
  public:
    Scalar() = default;
    explicit Scalar(std::string name) : _name(std::move(name)) {}

    Scalar &operator++() { ++_value; return *this; }
    Scalar &operator+=(double amount) { _value += amount; return *this; }
    Scalar &operator=(double val) { _value = val; return *this; }

    double value() const { return _value; }
    const std::string &name() const { return _name; }

  private:
    std::string _name;
    double _value = 0;
};

/**
 * Sample distribution: running mean/stdev (Welford) plus optional
 * fixed-bucket histogram.
 */
class Distribution
{
  public:
    Distribution() = default;
    explicit Distribution(std::string name) : _name(std::move(name)) {}

    void
    sample(double val, u64 weight = 1)
    {
        for (u64 i = 0; i < weight; ++i) {
            ++_count;
            const double delta = val - _mean;
            _mean += delta / static_cast<double>(_count);
            _m2 += delta * (val - _mean);
        }
        if (_count == weight || val < _min)
            _min = val;
        if (_count == weight || val > _max)
            _max = val;
    }

    u64 count() const { return _count; }
    double mean() const { return _count ? _mean : 0.0; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }

    double
    stdev() const
    {
        if (_count < 2)
            return 0.0;
        return std::sqrt(_m2 / static_cast<double>(_count));
    }

    /**
     * Pool another distribution into this one (Chan et al. parallel
     * Welford combine). The result is as if every sample of @p other
     * had been sample()d here, up to floating-point association.
     */
    void
    merge(const Distribution &other)
    {
        if (!other._count)
            return;
        if (!_count) {
            _count = other._count;
            _mean = other._mean;
            _m2 = other._m2;
            _min = other._min;
            _max = other._max;
            return;
        }
        const double na = static_cast<double>(_count);
        const double nb = static_cast<double>(other._count);
        const double delta = other._mean - _mean;
        _mean += delta * nb / (na + nb);
        _m2 += other._m2 + delta * delta * na * nb / (na + nb);
        _min = std::min(_min, other._min);
        _max = std::max(_max, other._max);
        _count += other._count;
    }

    const std::string &name() const { return _name; }

  private:
    std::string _name;
    u64 _count = 0;
    double _mean = 0;
    double _m2 = 0;
    double _min = 0;
    double _max = 0;
};

/** Integer-keyed occurrence histogram (used for PAC distributions). */
class Histogram
{
  public:
    void add(u64 key, u64 amount = 1) { _buckets[key] += amount; }

    u64
    get(u64 key) const
    {
        auto it = _buckets.find(key);
        return it == _buckets.end() ? 0 : it->second;
    }

    const std::map<u64, u64> &buckets() const { return _buckets; }

    /** Distribution over *bucket occupancies* for keys [0, keyspace). */
    Distribution
    occupancy(u64 keyspace) const
    {
        Distribution dist("occupancy");
        u64 nonzero = 0;
        for (const auto &[key, cnt] : _buckets) {
            dist.sample(static_cast<double>(cnt));
            ++nonzero;
        }
        for (u64 i = nonzero; i < keyspace; ++i)
            dist.sample(0.0);
        return dist;
    }

  private:
    std::map<u64, u64> _buckets;
};

/** A named set of scalar statistics, dumpable as "name value" lines. */
class StatSet
{
  public:
    explicit StatSet(std::string name = "stats") : _name(std::move(name)) {}

    Scalar &
    scalar(const std::string &name)
    {
        auto it = _scalars.find(name);
        if (it == _scalars.end())
            it = _scalars.emplace(name, Scalar(name)).first;
        return it->second;
    }

    double
    value(const std::string &name) const
    {
        auto it = _scalars.find(name);
        return it == _scalars.end() ? 0.0 : it->second.value();
    }

    bool has(const std::string &name) const { return _scalars.count(name); }

    Distribution &
    distribution(const std::string &name)
    {
        auto it = _distributions.find(name);
        if (it == _distributions.end())
            it = _distributions.emplace(name, Distribution(name)).first;
        return it->second;
    }

    bool
    hasDistribution(const std::string &name) const
    {
        return _distributions.count(name);
    }

    /**
     * Fold @p other into this set: scalars with the same key are
     * summed (new keys are created), distributions with the same key
     * are pooled via Distribution::merge(). Used by the campaign
     * engine to aggregate per-job results into one rollup.
     */
    void merge(const StatSet &other);

    void dump(std::ostream &os) const;

    const std::string &name() const { return _name; }
    const std::map<std::string, Scalar> &scalars() const { return _scalars; }
    const std::map<std::string, Distribution> &distributions() const
    {
        return _distributions;
    }

  private:
    std::string _name;
    std::map<std::string, Scalar> _scalars;
    std::map<std::string, Distribution> _distributions;
};

/** Geometric mean helper used by the figure harnesses. */
double geomean(const std::vector<double> &vals);

} // namespace aos

#endif // AOS_COMMON_STATS_HH
