/**
 * @file
 * Open-addressed u64-keyed hash map for hot simulator paths.
 *
 * The instrumentation passes, the heap allocator and the MCU all keep
 * address/sequence-keyed side tables that are hit once or more per
 * micro-op. std::unordered_map spends most of its time in node
 * allocation, pointer chasing and rehash storms there (it was ~40% of
 * a throughput-bench profile); this map stores slots inline in one
 * power-of-two array with linear probing and backward-shift deletion,
 * so lookups are a multiply, a shift and a short scan.
 *
 * Semantics match the std::unordered_map subset the simulator uses:
 * find/operator[]/erase/count/clear/size. No iteration is provided on
 * purpose — hot-path tables must not grow order-dependent behavior.
 * Key 0 is valid (kept in a dedicated side slot).
 */

#ifndef AOS_COMMON_FLAT_MAP_HH
#define AOS_COMMON_FLAT_MAP_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace aos {

template <typename V>
class FlatU64Map
{
  public:
    explicit FlatU64Map(size_t initial_capacity = 16)
    {
        rehash(tableFor(initial_capacity));
    }

    /** Value for @p key, default-constructing it if absent. */
    V &
    operator[](u64 key)
    {
        if (key == 0) {
            if (!_hasZero) {
                _hasZero = true;
                _zeroVal = V{};
                ++_size;
            }
            return _zeroVal;
        }
        if ((_size + 1) * 4 > _slots.size() * 3)
            rehash(_slots.size() * 2);
        size_t i = idealIndex(key);
        while (_slots[i].key != 0 && _slots[i].key != key)
            i = (i + 1) & _mask;
        if (_slots[i].key == 0) {
            _slots[i].key = key;
            _slots[i].val = V{};
            ++_size;
        }
        return _slots[i].val;
    }

    /** Pointer to @p key's value, or nullptr when absent. */
    V *
    find(u64 key)
    {
        if (key == 0)
            return _hasZero ? &_zeroVal : nullptr;
        size_t i = idealIndex(key);
        while (_slots[i].key != 0) {
            if (_slots[i].key == key)
                return &_slots[i].val;
            i = (i + 1) & _mask;
        }
        return nullptr;
    }

    const V *
    find(u64 key) const
    {
        return const_cast<FlatU64Map *>(this)->find(key);
    }

    size_t count(u64 key) const { return find(key) ? 1 : 0; }

    /** Remove @p key; returns 1 if it was present, 0 otherwise. */
    size_t
    erase(u64 key)
    {
        if (key == 0) {
            if (!_hasZero)
                return 0;
            _hasZero = false;
            --_size;
            return 1;
        }
        size_t i = idealIndex(key);
        while (_slots[i].key != key) {
            if (_slots[i].key == 0)
                return 0;
            i = (i + 1) & _mask;
        }
        --_size;
        // Backward-shift deletion: pull displaced entries over the
        // hole so probe chains never see a tombstone.
        size_t j = i;
        for (;;) {
            _slots[i].key = 0;
            for (;;) {
                j = (j + 1) & _mask;
                if (_slots[j].key == 0)
                    return 1;
                const size_t k = idealIndex(_slots[j].key);
                if (!cyclicBetween(i, j, k))
                    break;
            }
            _slots[i] = _slots[j];
            i = j;
        }
    }

    /** Drop all entries, keeping the table allocation. */
    void
    clear()
    {
        for (Slot &s : _slots)
            s.key = 0;
        _hasZero = false;
        _size = 0;
    }

    /** Pre-size the table for @p n entries without rehash churn. */
    void
    reserve(size_t n)
    {
        const size_t want = tableFor(n);
        if (want > _slots.size())
            rehash(want);
    }

    size_t size() const { return _size; }
    bool empty() const { return _size == 0; }

  private:
    struct Slot
    {
        u64 key = 0;
        V val{};
    };

    /** Table size (power of two) that holds @p n at <= 3/4 load. */
    static size_t
    tableFor(size_t n)
    {
        size_t cap = 16;
        while (cap * 3 < n * 4)
            cap *= 2;
        return cap;
    }

    size_t
    idealIndex(u64 key) const
    {
        // Fibonacci hashing; the multiply spreads low-entropy keys
        // (aligned addresses, dense sequence numbers) across the table.
        return static_cast<size_t>((key * 0x9e3779b97f4a7c15ull) >> 32) &
               _mask;
    }

    /** True when @p k lies cyclically in (i, j]. */
    static bool
    cyclicBetween(size_t i, size_t j, size_t k)
    {
        return i <= j ? (i < k && k <= j) : (i < k || k <= j);
    }

    void
    rehash(size_t new_cap)
    {
        std::vector<Slot> old = std::move(_slots);
        _slots.assign(new_cap, Slot{});
        _mask = new_cap - 1;
        for (const Slot &s : old) {
            if (s.key == 0)
                continue;
            size_t i = idealIndex(s.key);
            while (_slots[i].key != 0)
                i = (i + 1) & _mask;
            _slots[i] = s;
        }
    }

    std::vector<Slot> _slots;
    size_t _mask = 0;
    size_t _size = 0;
    bool _hasZero = false;
    V _zeroVal{};
};

} // namespace aos

#endif // AOS_COMMON_FLAT_MAP_HH
