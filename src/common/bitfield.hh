/**
 * @file
 * Bit-manipulation helpers used by the pointer layout, the QARMA cipher
 * and the bounds-compression codec.
 *
 * All helpers are constexpr and operate on u64 so that tests can verify
 * them at compile time.
 */

#ifndef AOS_COMMON_BITFIELD_HH
#define AOS_COMMON_BITFIELD_HH

#include <bit>
#include <cassert>

#include "common/types.hh"

namespace aos {

/** A mask with the low @p nbits bits set. nbits may be 0..64. */
constexpr u64
mask(unsigned nbits)
{
    return nbits >= 64 ? ~u64{0} : ((u64{1} << nbits) - 1);
}

/** Extract bits [hi:lo] (inclusive) of @p val, right-aligned. */
constexpr u64
bits(u64 val, unsigned hi, unsigned lo)
{
    assert(hi >= lo && hi < 64);
    return (val >> lo) & mask(hi - lo + 1);
}

/** Extract the single bit @p pos of @p val. */
constexpr u64
bits(u64 val, unsigned pos)
{
    return bits(val, pos, pos);
}

/**
 * Return @p val with bits [hi:lo] replaced by the low bits of @p field.
 */
constexpr u64
insertBits(u64 val, unsigned hi, unsigned lo, u64 field)
{
    assert(hi >= lo && hi < 64);
    const u64 m = mask(hi - lo + 1);
    return (val & ~(m << lo)) | ((field & m) << lo);
}

/** Sign-extend the low @p nbits bits of @p val to 64 bits. */
constexpr u64
signExtend(u64 val, unsigned nbits)
{
    assert(nbits > 0 && nbits <= 64);
    if (nbits == 64)
        return val;
    const u64 sign = u64{1} << (nbits - 1);
    val &= mask(nbits);
    return (val ^ sign) - sign;
}

/** Rotate a 4-bit nibble left by @p n (used by QARMA MixColumns). */
constexpr u64
rotl4(u64 nibble, unsigned n)
{
    n &= 3;
    nibble &= 0xf;
    return ((nibble << n) | (nibble >> (4 - n))) & 0xf;
}

/** Rotate a 64-bit word right by @p n. */
constexpr u64
rotr64(u64 val, unsigned n)
{
    return std::rotr(val, static_cast<int>(n));
}

/** True iff @p val is a power of two (0 is not). */
constexpr bool
isPowerOf2(u64 val)
{
    return val != 0 && (val & (val - 1)) == 0;
}

/** Integer log2 of a power of two. */
constexpr unsigned
log2i(u64 val)
{
    assert(isPowerOf2(val));
    unsigned r = 0;
    while (val >>= 1)
        ++r;
    return r;
}

/** Round @p val up to the next multiple of power-of-two @p align. */
constexpr u64
roundUp(u64 val, u64 align)
{
    assert(isPowerOf2(align));
    return (val + align - 1) & ~(align - 1);
}

/** Round @p val down to a multiple of power-of-two @p align. */
constexpr u64
roundDown(u64 val, u64 align)
{
    assert(isPowerOf2(align));
    return val & ~(align - 1);
}

/** Get nibble (4-bit cell) @p idx of @p word; cell 0 is the MSB nibble. */
constexpr u64
getCell(u64 word, unsigned idx)
{
    assert(idx < 16);
    return (word >> (60 - 4 * idx)) & 0xf;
}

/** Set nibble (4-bit cell) @p idx of @p word; cell 0 is the MSB nibble. */
constexpr u64
setCell(u64 word, unsigned idx, u64 nibble)
{
    assert(idx < 16);
    const unsigned sh = 60 - 4 * idx;
    return (word & ~(u64{0xf} << sh)) | ((nibble & 0xf) << sh);
}

} // namespace aos

#endif // AOS_COMMON_BITFIELD_HH
