/**
 * @file
 * Bounded lock-free multi-producer/multi-consumer ring.
 *
 * The campaign engine's intra-process work pool used to be one
 * mutex-guarded deque per worker with stealing; jobs are whole
 * simulations so that was never a bottleneck, but the fabric
 * coordinator wants a queue it can also drain from its event loop
 * without lock-ordering concerns, and the ROADMAP called for the
 * upgrade. This is the classic Vyukov bounded MPMC queue: one atomic
 * sequence number per cell, producers CAS the tail, consumers CAS the
 * head, and the sequence tells each side whether the cell is ready for
 * it — no locks, no spurious failures, FIFO per producer.
 *
 * A mutex-based fallback implementation is selectable at construction
 * (the contention stress test runs both and cross-checks behavior, and
 * AOS_CAMPAIGN_RING_MUTEX flips the campaign pool over for field
 * debugging). Both paths share the same bounded/tryPush/tryPop
 * contract: a full ring rejects the push, an empty ring rejects the
 * pop, nothing blocks and nothing is lost or duplicated.
 *
 * The element type must be trivially copyable — indices and small POD
 * records; the campaign stores job ids (u32).
 */

#ifndef AOS_COMMON_MPMC_RING_HH
#define AOS_COMMON_MPMC_RING_HH

#include <atomic>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <type_traits>

#include "common/types.hh"

namespace aos {

template <typename T>
class MpmcRing
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "MpmcRing elements must be trivially copyable");

  public:
    /**
     * @p capacity is rounded up to a power of two (min 2). With
     * @p mutexFallback the lock-free path is replaced by a mutex-
     * guarded deque with the same bounded contract.
     */
    explicit MpmcRing(size_t capacity, bool mutexFallback = false)
        : _mask(roundUpPow2(capacity) - 1), _mutexFallback(mutexFallback)
    {
        if (!_mutexFallback) {
            _cells = std::make_unique<Cell[]>(_mask + 1);
            for (size_t i = 0; i <= _mask; ++i)
                _cells[i].seq.store(i, std::memory_order_relaxed);
        }
    }

    MpmcRing(const MpmcRing &) = delete;
    MpmcRing &operator=(const MpmcRing &) = delete;

    size_t capacity() const { return _mask + 1; }
    bool lockFree() const { return !_mutexFallback; }

    /** False when the ring is full. */
    bool
    tryPush(const T &value)
    {
        if (_mutexFallback) {
            std::lock_guard<std::mutex> guard(_mutex);
            if (_deque.size() > _mask)
                return false;
            _deque.push_back(value);
            return true;
        }
        size_t pos = _tail.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = _cells[pos & _mask];
            const size_t seq = cell.seq.load(std::memory_order_acquire);
            const intptr_t diff = static_cast<intptr_t>(seq) -
                                  static_cast<intptr_t>(pos);
            if (diff == 0) {
                if (_tail.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    cell.value = value;
                    cell.seq.store(pos + 1, std::memory_order_release);
                    return true;
                }
            } else if (diff < 0) {
                return false; // Full: the cell still holds an element.
            } else {
                pos = _tail.load(std::memory_order_relaxed);
            }
        }
    }

    /** False when the ring is empty. */
    bool
    tryPop(T &out)
    {
        if (_mutexFallback) {
            std::lock_guard<std::mutex> guard(_mutex);
            if (_deque.empty())
                return false;
            out = _deque.front();
            _deque.pop_front();
            return true;
        }
        size_t pos = _head.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = _cells[pos & _mask];
            const size_t seq = cell.seq.load(std::memory_order_acquire);
            const intptr_t diff = static_cast<intptr_t>(seq) -
                                  static_cast<intptr_t>(pos + 1);
            if (diff == 0) {
                if (_head.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    out = cell.value;
                    cell.seq.store(pos + _mask + 1,
                                   std::memory_order_release);
                    return true;
                }
            } else if (diff < 0) {
                return false; // Empty: no producer has filled the cell.
            } else {
                pos = _head.load(std::memory_order_relaxed);
            }
        }
    }

    /**
     * Instantaneous element count (racy under concurrency; exact when
     * quiescent — used by tests and for diagnostics only).
     */
    size_t
    size() const
    {
        if (_mutexFallback) {
            std::lock_guard<std::mutex> guard(_mutex);
            return _deque.size();
        }
        const size_t tail = _tail.load(std::memory_order_acquire);
        const size_t head = _head.load(std::memory_order_acquire);
        return tail >= head ? tail - head : 0;
    }

  private:
    struct Cell
    {
        std::atomic<size_t> seq;
        T value;
    };

    static size_t
    roundUpPow2(size_t n)
    {
        size_t p = 2;
        while (p < n)
            p <<= 1;
        return p;
    }

    const size_t _mask;
    const bool _mutexFallback;

    std::unique_ptr<Cell[]> _cells;
    alignas(64) std::atomic<size_t> _head{0};
    alignas(64) std::atomic<size_t> _tail{0};

    mutable std::mutex _mutex;
    std::deque<T> _deque;
};

} // namespace aos

#endif // AOS_COMMON_MPMC_RING_HH
