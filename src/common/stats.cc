#include "common/stats.hh"

#include <iomanip>

namespace aos {

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &[name, stat] : _scalars) {
        os << _name << '.' << name << ' ' << std::setprecision(12)
           << stat.value() << '\n';
    }
}

double
geomean(const std::vector<double> &vals)
{
    if (vals.empty())
        return 0.0;
    double logsum = 0.0;
    for (const double v : vals)
        logsum += std::log(v);
    return std::exp(logsum / static_cast<double>(vals.size()));
}

} // namespace aos
