#include "common/stats.hh"

#include <iomanip>

namespace aos {

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[key, stat] : other._scalars)
        scalar(key) += stat.value();
    for (const auto &[key, dist] : other._distributions)
        distribution(key).merge(dist);
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &[name, stat] : _scalars) {
        os << _name << '.' << name << ' ' << std::setprecision(12)
           << stat.value() << '\n';
    }
    for (const auto &[name, dist] : _distributions) {
        os << _name << '.' << name << ".count " << dist.count() << '\n';
        os << _name << '.' << name << ".mean " << std::setprecision(12)
           << dist.mean() << '\n';
        os << _name << '.' << name << ".stdev " << std::setprecision(12)
           << dist.stdev() << '\n';
        os << _name << '.' << name << ".min " << std::setprecision(12)
           << dist.min() << '\n';
        os << _name << '.' << name << ".max " << std::setprecision(12)
           << dist.max() << '\n';
    }
}

double
geomean(const std::vector<double> &vals)
{
    if (vals.empty())
        return 0.0;
    double logsum = 0.0;
    for (const double v : vals)
        logsum += std::log(v);
    return std::exp(logsum / static_cast<double>(vals.size()));
}

} // namespace aos
