#include "common/stats.hh"

#include <iomanip>

#include "common/logging.hh"

namespace aos {

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[key, stat] : other._scalars)
        scalar(key) += stat.value();
    for (const auto &[key, dist] : other._distributions)
        distribution(key).merge(dist);
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &[name, stat] : _scalars) {
        os << _name << '.' << name << ' ' << std::setprecision(12)
           << stat.value() << '\n';
    }
    for (const auto &[name, dist] : _distributions) {
        os << _name << '.' << name << ".count " << dist.count() << '\n';
        os << _name << '.' << name << ".mean " << std::setprecision(12)
           << dist.mean() << '\n';
        os << _name << '.' << name << ".stdev " << std::setprecision(12)
           << dist.stdev() << '\n';
        os << _name << '.' << name << ".min " << std::setprecision(12)
           << dist.min() << '\n';
        os << _name << '.' << name << ".max " << std::setprecision(12)
           << dist.max() << '\n';
    }
}

double
geomean(const std::vector<double> &vals)
{
    // The geometric mean is only defined over positive reals: log(0)
    // is -inf (the old code silently returned 0.0 for the whole set)
    // and log of a negative value is NaN. Skip such inputs loudly
    // rather than poisoning a figure-wide summary number.
    double logsum = 0.0;
    size_t used = 0;
    for (const double v : vals) {
        if (!std::isfinite(v) || v <= 0.0) {
            warn("geomean: skipping non-positive/non-finite value %g", v);
            continue;
        }
        logsum += std::log(v);
        ++used;
    }
    if (!used)
        return 0.0;
    return std::exp(logsum / static_cast<double>(used));
}

} // namespace aos
