#include "common/chaosio.hh"

#include <algorithm>
#include <new>
#include <vector>

#include "common/env.hh"
#include "common/logging.hh"

namespace aos::chaos {

namespace {

/** Per-domain salts keep the three schedules statistically independent
 *  even though they share one seed. */
constexpr u64 kDomainSalt[kDomainCount] = {
    0xd15c'fa17'0000'0001ULL, // disk
    0x4e70'fa17'0000'0002ULL, // net
    0xa110'fa17'0000'0003ULL, // alloc
};

/** splitmix64 finalizer: the same mixer common/random.hh seeds with. */
u64
mix(u64 z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

unsigned
countBits(u32 v)
{
    unsigned n = 0;
    for (; v; v &= v - 1)
        ++n;
    return n;
}

thread_local ChaosEngine *tlsEngine = nullptr;
std::atomic<ChaosEngine *> processEngine{nullptr};

/** Kinds that make an operation fail outright (vs merely degrade). */
constexpr u32 kHardKinds =
    kindBit(FaultKind::kWriteEio) | kindBit(FaultKind::kWriteEnospc) |
    kindBit(FaultKind::kFsyncEio) | kindBit(FaultKind::kRenameFail) |
    kindBit(FaultKind::kOpenFail) | kindBit(FaultKind::kSendReset) |
    kindBit(FaultKind::kRecvReset) | kindBit(FaultKind::kFlipByte) |
    kindBit(FaultKind::kBadAlloc);

} // namespace

const char *
domainName(Domain d)
{
    switch (d) {
      case Domain::kDisk: return "disk";
      case Domain::kNet: return "net";
      case Domain::kAlloc: return "alloc";
    }
    return "unknown";
}

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::kShortWrite: return "short_write";
      case FaultKind::kWriteEio: return "write_eio";
      case FaultKind::kWriteEnospc: return "write_enospc";
      case FaultKind::kFsyncEio: return "fsync_eio";
      case FaultKind::kRenameFail: return "rename_fail";
      case FaultKind::kOpenFail: return "open_fail";
      case FaultKind::kEintr: return "eintr";
      case FaultKind::kShortSend: return "short_send";
      case FaultKind::kSendReset: return "send_reset";
      case FaultKind::kShortRecv: return "short_recv";
      case FaultKind::kRecvReset: return "recv_reset";
      case FaultKind::kFlipByte: return "flip_byte";
      case FaultKind::kDelay: return "delay";
      case FaultKind::kBadAlloc: return "bad_alloc";
      case FaultKind::kCount: break;
    }
    return "unknown";
}

bool
parseChaosSpec(const std::string &text, ChaosConfig &out, std::string &error)
{
    // "seed,rate,domains[,cap]" — split on commas first.
    std::vector<std::string> fields;
    size_t pos = 0;
    while (pos <= text.size()) {
        const size_t comma = text.find(',', pos);
        const size_t end = comma == std::string::npos ? text.size() : comma;
        fields.push_back(text.substr(pos, end - pos));
        pos = end + 1;
        if (comma == std::string::npos)
            break;
    }
    if (fields.size() < 3 || fields.size() > 4) {
        error = "expected \"seed,rate,domains[,cap]\"";
        return false;
    }

    ChaosConfig config;
    if (!parseU64(fields[0].c_str(), config.seed)) {
        error = "seed must be a complete non-negative integer";
        return false;
    }
    u64 rate = 0;
    if (!parseU64(fields[1].c_str(), rate)) {
        error = "rate (per mille) must be a complete non-negative integer";
        return false;
    }
    config.ratePerMille = static_cast<u32>(std::min<u64>(rate, 1000));

    // domains: '+'-separated names.
    const std::string &domains = fields[2];
    size_t off = 0;
    while (off <= domains.size()) {
        const size_t plus = domains.find('+', off);
        const size_t end = plus == std::string::npos ? domains.size() : plus;
        const std::string name = domains.substr(off, end - off);
        off = end + 1;
        if (name == "disk") {
            config.domains |= domainBit(Domain::kDisk);
        } else if (name == "net") {
            config.domains |= domainBit(Domain::kNet);
        } else if (name == "alloc") {
            config.domains |= domainBit(Domain::kAlloc);
        } else if (name == "all") {
            config.domains |= domainBit(Domain::kDisk) |
                              domainBit(Domain::kNet) |
                              domainBit(Domain::kAlloc);
        } else {
            error = csprintf("unknown chaos domain \"%s\" (want "
                             "disk|net|alloc|all, '+'-separated)",
                             name.c_str());
            return false;
        }
        if (plus == std::string::npos)
            break;
    }

    if (fields.size() == 4 &&
        !parseU64(fields[3].c_str(), config.maxPerDomain)) {
        error = "cap must be a complete non-negative integer";
        return false;
    }
    out = config;
    return true;
}

Decision
ChaosPlan::at(Domain domain, u64 opIndex, u32 siteMask) const
{
    Decision decision;
    if (!_config.enabled() || !(_config.domains & domainBit(domain)))
        return decision;
    // Clamp to defined kinds first: a sloppy siteMask (~0u) must never
    // produce a FaultKind past kCount (next() indexes a tally by it).
    u32 mask = siteMask & ((1u << kFaultKindCount) - 1);
    if (_config.kinds)
        mask &= _config.kinds;
    if (!mask)
        return decision;

    const unsigned di = static_cast<unsigned>(domain);
    const u64 h =
        mix(_config.seed ^ kDomainSalt[di] ^
            (opIndex + 1) * 0x9e3779b97f4a7c15ULL);
    if (h % 1000 >= _config.ratePerMille)
        return decision;

    // Pick uniformly among the kinds this site can express; a second
    // mix decorrelates the pick (and the arg) from the fire draw.
    const u64 h2 = mix(h);
    unsigned nth = static_cast<unsigned>(h2 % countBits(mask));
    unsigned bit = 0;
    for (; bit < kFaultKindCount; ++bit) {
        if (!(mask & (1u << bit)))
            continue;
        if (nth == 0)
            break;
        --nth;
    }
    decision.fire = true;
    decision.kind = static_cast<FaultKind>(bit);
    decision.arg = mix(h2);
    return decision;
}

Decision
ChaosEngine::next(Domain domain, u32 siteMask)
{
    const unsigned di = static_cast<unsigned>(domain);
    const u64 index = _ops[di].fetch_add(1, std::memory_order_relaxed);
    const u64 cap = _plan.config().maxPerDomain;
    if (cap && _injected[di].load(std::memory_order_relaxed) >= cap)
        return Decision{};
    Decision decision = _plan.at(domain, index, siteMask);
    if (decision.fire) {
        _injected[di].fetch_add(1, std::memory_order_relaxed);
        _kind[static_cast<unsigned>(decision.kind)].fetch_add(
            1, std::memory_order_relaxed);
    }
    return decision;
}

u64
ChaosEngine::ops(Domain domain) const
{
    return _ops[static_cast<unsigned>(domain)].load(
        std::memory_order_relaxed);
}

u64
ChaosEngine::injected(Domain domain) const
{
    return _injected[static_cast<unsigned>(domain)].load(
        std::memory_order_relaxed);
}

u64
ChaosEngine::injectedKind(FaultKind kind) const
{
    return _kind[static_cast<unsigned>(kind)].load(
        std::memory_order_relaxed);
}

u64
ChaosEngine::injectedTotal() const
{
    u64 total = 0;
    for (unsigned d = 0; d < kDomainCount; ++d)
        total += _injected[d].load(std::memory_order_relaxed);
    return total;
}

u64
ChaosEngine::injectedHard() const
{
    u64 total = 0;
    for (unsigned k = 0; k < kFaultKindCount; ++k) {
        if (kHardKinds & (1u << k))
            total += _kind[k].load(std::memory_order_relaxed);
    }
    return total;
}

ChaosEngine *
engine()
{
    if (tlsEngine)
        return tlsEngine;
    return processEngine.load(std::memory_order_relaxed);
}

void
setProcessEngine(ChaosEngine *e)
{
    processEngine.store(e, std::memory_order_relaxed);
}

void
installChaosFromEnv()
{
    static bool installed = false;
    if (installed)
        return;
    installed = true;
    const std::string spec = envString("AOS_CHAOS");
    if (spec.empty())
        return;
    ChaosConfig config;
    std::string error;
    if (!parseChaosSpec(spec, config, error))
        fatal("AOS_CHAOS \"%s\": %s", spec.c_str(), error.c_str());
    // Deliberately leaked: instrumented sites may run during static
    // destruction (logging flushes, etc.) and must never observe a
    // destroyed engine.
    setProcessEngine(new ChaosEngine(config));
    inform("chaos: seed %llu, %u/1000 per op, domains%s%s%s%s",
           static_cast<unsigned long long>(config.seed),
           config.ratePerMille,
           config.domains & domainBit(Domain::kDisk) ? " disk" : "",
           config.domains & domainBit(Domain::kNet) ? " net" : "",
           config.domains & domainBit(Domain::kAlloc) ? " alloc" : "",
           config.maxPerDomain
               ? csprintf(" (cap %llu/domain)",
                          static_cast<unsigned long long>(
                              config.maxPerDomain)).c_str()
               : "");
}

ChaosScope::ChaosScope(ChaosEngine *e) : _prev(tlsEngine)
{
    tlsEngine = e;
}

ChaosScope::~ChaosScope()
{
    tlsEngine = _prev;
}

void
probeAlloc()
{
    ChaosEngine *e = engine();
    if (!e)
        return;
    if (e->next(Domain::kAlloc, kindBit(FaultKind::kBadAlloc)).fire)
        throw std::bad_alloc();
}

} // namespace aos::chaos
