/**
 * @file
 * Env-gated scoped wall-time profiler for the simulator itself.
 *
 * The ROADMAP's "as fast as the hardware allows" goal needs visibility
 * into where *simulator* (host) time goes, separate from the simulated
 * statistics. This is a deliberately tiny instrument: RAII scopes
 * accumulate inclusive wall time and call counts per label into a
 * process-wide registry, guarded by a mutex (scope entry/exit is two
 * clock reads plus one locked map update — jobs are whole simulations,
 * so registry traffic is cold).
 *
 * Everything is gated on the AOS_PROFILE environment variable (unset,
 * "0" or "off" = disabled): when disabled a scope is two predictable
 * branch instructions, so instrumentation can stay in hot layers
 * permanently. The campaign engine surfaces the breakdown in its JSON
 * emission under "profile" — only when enabled, so the canonical
 * jobs=1 vs jobs=N parity documents are unaffected (DESIGN.md §9).
 *
 * Labels use "layer.phase" dotted names ("sys.fastforward",
 * "cpu.run"). Times are inclusive: a scope nested inside another is
 * counted in both.
 */

#ifndef AOS_COMMON_PROFILER_HH
#define AOS_COMMON_PROFILER_HH

#include <chrono>
#include <map>
#include <string>

#include "common/types.hh"

namespace aos {
class StatSet;
} // namespace aos

namespace aos::prof {

/** True iff AOS_PROFILE is set to a truthy value (cached). */
bool enabled();

/** Accumulated wall time and entry count for one scope label. */
struct Entry
{
    double wallMs = 0;
    u64 count = 0;
};

/** Add @p ms (one scope exit) to @p label's accumulator. */
void record(const char *label, double ms);

/** Snapshot of the registry (label -> entry), for reports. */
std::map<std::string, Entry> snapshot();

/** Clear the registry (tests). */
void reset();

/**
 * Flatten the registry into @p set as prof_<label>_wall_ms and
 * prof_<label>_calls scalars (dots in labels kept as-is).
 */
void addTo(StatSet &set);

/** RAII inclusive wall-time scope; no-op when profiling is disabled. */
class Scope
{
  public:
    explicit Scope(const char *label) : _label(label)
    {
        if (enabled())
            _start = std::chrono::steady_clock::now();
        else
            _label = nullptr;
    }

    ~Scope()
    {
        if (_label) {
            const auto end = std::chrono::steady_clock::now();
            record(_label,
                   std::chrono::duration<double, std::milli>(end - _start)
                       .count());
        }
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    const char *_label;
    std::chrono::steady_clock::time_point _start;
};

} // namespace aos::prof

#endif // AOS_COMMON_PROFILER_HH
