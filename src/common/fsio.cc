#include "common/fsio.hh"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/chaosio.hh"

namespace aos::fsio {

namespace {

std::array<u32, 256>
makeCrcTable()
{
    std::array<u32, 256> table{};
    for (u32 i = 0; i < 256; ++i) {
        u32 c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

/** Directory part of @p path ("." when there is no separator). */
std::string
dirOf(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

int
openRetry(const char *path, int flags, mode_t mode = 0)
{
    if (chaos::ChaosEngine *eng = chaos::engine()) {
        if (eng->next(chaos::Domain::kDisk,
                      chaos::kindBit(chaos::FaultKind::kOpenFail))
                .fire) {
            errno = EMFILE;
            return -1;
        }
    }
    int fd;
    do {
        fd = ::open(path, flags, mode); // NOLINT(cppcoreguidelines-pro-type-vararg)
    } while (fd < 0 && errno == EINTR);
    return fd;
}

bool
writeAll(int fd, const void *data, size_t len)
{
    const char *p = static_cast<const char *>(data);
    unsigned chaosEintr = 0; // Synthetic storms are bounded (chaosio.hh).
    while (len) {
        size_t chunk = len;
        if (chaos::ChaosEngine *eng = chaos::engine()) {
            const chaos::Decision d = eng->next(
                chaos::Domain::kDisk,
                chaos::kindBit(chaos::FaultKind::kShortWrite) |
                    chaos::kindBit(chaos::FaultKind::kWriteEio) |
                    chaos::kindBit(chaos::FaultKind::kWriteEnospc) |
                    chaos::kindBit(chaos::FaultKind::kEintr));
            if (d.fire) {
                if (d.kind == chaos::FaultKind::kEintr) {
                    // The real-EINTR path below would loop just like
                    // this; re-drawing exercises the retry.
                    if (++chaosEintr <= chaos::kMaxSyntheticEintr)
                        continue;
                } else if (d.kind == chaos::FaultKind::kWriteEio) {
                    errno = EIO;
                    return false;
                } else if (d.kind == chaos::FaultKind::kWriteEnospc) {
                    errno = ENOSPC;
                    return false;
                } else if (len > 1) { // kShortWrite
                    chunk = 1 + static_cast<size_t>(d.arg % (len - 1));
                }
            }
        }
        const ssize_t n = ::write(fd, p, chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

/** fsync(2) through the chaos schedule (kFsyncEio). */
int
chaosFsync(int fd)
{
    if (chaos::ChaosEngine *eng = chaos::engine()) {
        if (eng->next(chaos::Domain::kDisk,
                      chaos::kindBit(chaos::FaultKind::kFsyncEio))
                .fire) {
            errno = EIO;
            return -1;
        }
    }
    return ::fsync(fd);
}

/** rename(2) through the chaos schedule (kRenameFail). */
int
chaosRename(const char *from, const char *to)
{
    if (chaos::ChaosEngine *eng = chaos::engine()) {
        if (eng->next(chaos::Domain::kDisk,
                      chaos::kindBit(chaos::FaultKind::kRenameFail))
                .fire) {
            errno = EIO;
            return -1;
        }
    }
    return ::rename(from, to);
}

} // namespace

u32
crc32(const void *data, size_t len, u32 seed)
{
    static const std::array<u32, 256> table = makeCrcTable();
    u32 c = seed ^ 0xFFFFFFFFu;
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

u64
fnv1a64(const void *data, size_t len, u64 seed)
{
    u64 h = seed;
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

bool
fileExists(const std::string &path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
}

bool
makeDirs(const std::string &path)
{
    if (path.empty())
        return false;
    std::string partial;
    size_t pos = 0;
    while (pos <= path.size()) {
        const size_t slash = path.find('/', pos);
        const size_t end = slash == std::string::npos ? path.size() : slash;
        partial = path.substr(0, end);
        pos = end + 1;
        if (partial.empty() || partial == ".")
            continue;
        if (::mkdir(partial.c_str(), 0777) != 0 && errno != EEXIST)
            return false;
    }
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool
readFile(const std::string &path, std::string &out)
{
    out.clear();
    const int fd = openRetry(path.c_str(), O_RDONLY);
    if (fd < 0)
        return false;
    char buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            out.clear();
            return false;
        }
        if (n == 0)
            break;
        out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return true;
}

bool
atomicWriteFile(const std::string &path, const std::string &data)
{
    const std::string tmp = path + ".tmp";
    const int fd =
        openRetry(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
    if (fd < 0)
        return false;
    const bool wrote = writeAll(fd, data.data(), data.size()) &&
                       chaosFsync(fd) == 0;
    ::close(fd);
    if (!wrote || chaosRename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    // The rename committed; a directory-fsync failure only means the
    // commit may not be durable yet, so report failure (callers retry
    // idempotently) but leave no temp file behind.
    return fsyncDir(dirOf(path));
}

bool
fsyncDir(const std::string &dir)
{
    const int fd = openRetry(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return false;
    const bool ok = chaosFsync(fd) == 0;
    ::close(fd);
    return ok;
}

bool
removeFile(const std::string &path)
{
    return ::unlink(path.c_str()) == 0 || errno == ENOENT;
}

bool
truncateFile(const std::string &path, u64 length)
{
    int rc;
    do {
        rc = ::truncate(path.c_str(), static_cast<off_t>(length));
    } while (rc != 0 && errno == EINTR);
    return rc == 0;
}

std::vector<std::string>
listDir(const std::string &dir)
{
    std::vector<std::string> names;
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return names;
    while (struct dirent *entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        if (name != "." && name != "..")
            names.push_back(name);
    }
    ::closedir(d);
    return names;
}

AppendLog::~AppendLog()
{
    close();
}

AppendLog::AppendLog(AppendLog &&other) noexcept
    : _fd(other._fd), _path(std::move(other._path))
{
    other._fd = -1;
}

AppendLog &
AppendLog::operator=(AppendLog &&other) noexcept
{
    if (this != &other) {
        close();
        _fd = other._fd;
        _path = std::move(other._path);
        other._fd = -1;
    }
    return *this;
}

bool
AppendLog::open(const std::string &path)
{
    close();
    _fd = openRetry(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0666);
    if (_fd < 0)
        return false;
    _path = path;
    return true;
}

bool
AppendLog::append(const void *data, size_t len)
{
    if (_fd < 0)
        return false;
    return writeAll(_fd, data, len) && chaosFsync(_fd) == 0;
}

long long
AppendLog::offset() const
{
    if (_fd < 0)
        return -1;
    return static_cast<long long>(::lseek(_fd, 0, SEEK_END));
}

bool
AppendLog::truncateTo(u64 length)
{
    if (_fd < 0)
        return false;
    int rc;
    do {
        rc = ::ftruncate(_fd, static_cast<off_t>(length));
    } while (rc != 0 && errno == EINTR);
    return rc == 0;
}

bool
AppendLog::sync()
{
    return _fd >= 0 && chaosFsync(_fd) == 0;
}

void
AppendLog::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
    _path.clear();
}

} // namespace aos::fsio
