/**
 * @file
 * Crash-consistent filesystem primitives for the campaign checkpoint
 * layer (DESIGN.md §10).
 *
 * Two durability idioms are provided:
 *
 *  - atomicWriteFile(): write-to-temp + fsync + rename + directory
 *    fsync. After a crash the target path holds either the old or the
 *    new content in full, never a mix — used for the checkpoint
 *    manifest.
 *  - AppendLog: an O_APPEND record log with explicit sync(). A crash
 *    can leave at most a truncated tail, which the reader detects with
 *    the CRC32 framing and discards — used for the checkpoint shards.
 *
 * Plus crc32() (IEEE 802.3 polynomial) for record framing and fnv1a64
 * for the campaign identity hash.
 *
 * Chaos instrumentation (DESIGN.md §13): the write/fsync/rename/open
 * syscall sites consult chaos::engine() and fail on the deterministic
 * schedule of an installed ChaosPlan — short writes, EIO, ENOSPC,
 * fsync/rename/open failures, bounded EINTR storms. With no engine
 * installed (the default) the cost is one thread-local load per call.
 */

#ifndef AOS_COMMON_FSIO_HH
#define AOS_COMMON_FSIO_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hh"

namespace aos::fsio {

/** CRC32 (IEEE, reflected 0xEDB88320); chain calls via @p seed. */
u32 crc32(const void *data, size_t len, u32 seed = 0);

/** FNV-1a 64-bit over a byte range; chain calls via @p seed. */
u64 fnv1a64(const void *data, size_t len, u64 seed = 0xcbf29ce484222325ULL);

bool fileExists(const std::string &path);

/** mkdir -p. Returns false only when a component cannot be created. */
bool makeDirs(const std::string &path);

/** Read a whole file. False on open/read error (out is cleared). */
bool readFile(const std::string &path, std::string &out);

/**
 * Durably replace @p path with @p data: write <path>.tmp, fsync it,
 * rename over @p path, fsync the containing directory. On any failure
 * the temp file is removed and @p path is untouched.
 */
bool atomicWriteFile(const std::string &path, const std::string &data);

/** fsync a directory so renames/creates/unlinks within it are durable. */
bool fsyncDir(const std::string &dir);

bool removeFile(const std::string &path);

/** Truncate @p path to @p length bytes (drops a corrupt log tail). */
bool truncateFile(const std::string &path, u64 length);

/** Names (not paths) of directory entries; empty if unreadable. */
std::vector<std::string> listDir(const std::string &dir);

/**
 * Append-only log file. Each append() issues one write(2) of the whole
 * record followed by fsync(2), so a record is either fully durable or
 * recognizably truncated — never silently half-trusted.
 */
class AppendLog
{
  public:
    AppendLog() = default;
    ~AppendLog();

    AppendLog(const AppendLog &) = delete;
    AppendLog &operator=(const AppendLog &) = delete;
    AppendLog(AppendLog &&other) noexcept;
    AppendLog &operator=(AppendLog &&other) noexcept;

    /** Open (creating if absent) for appending. */
    bool open(const std::string &path);

    bool isOpen() const { return _fd >= 0; }
    const std::string &path() const { return _path; }

    /** Write the whole buffer and fsync. False on short write/IO error. */
    bool append(const void *data, size_t len);

    /**
     * Current end-of-file offset (a record boundary between appends),
     * -1 if closed or unqueryable. A failed append() can leave a
     * partial record durable; callers snapshot offset() beforehand and
     * truncateTo() it before retrying, so a retried record is never
     * appended after garbage that would hide it from the loader.
     */
    long long offset() const;

    /** Truncate the log to @p length bytes (cut a torn tail). Raw
     *  ftruncate — recovery paths are deliberately not chaos sites. */
    bool truncateTo(u64 length);

    bool sync();
    void close();

  private:
    int _fd = -1;
    std::string _path;
};

} // namespace aos::fsio

#endif // AOS_COMMON_FSIO_HH
