/**
 * @file
 * Cooperative cancellation (DESIGN.md §10).
 *
 * A CancelToken is polled at cancellation points inside long-running
 * loops (the OoO core's cycle loop, AosSystem's fast-forward, campaign
 * workers between jobs). It trips for one of two reasons:
 *
 *  - kShutdown: someone called requestCancel() — directly, or on a
 *    parent token this one chains to (the process-wide shutdownToken()
 *    flipped by the SIGINT/SIGTERM handler);
 *  - kDeadline: the wall-clock deadline set with setDeadlineAfter()
 *    passed. This is how CampaignOptions::timeoutSec preempts a
 *    running job instead of classifying it post-hoc.
 *
 * The first observed reason latches; cancellation points raise it as a
 * CancelledException, which the campaign engine maps to kTimeout /
 * kCancelled and which must never be swallowed by generic exception
 * firewalls (it is the preemption mechanism, not a failure).
 *
 * requestCancel() only stores to a lock-free atomic, so it is
 * async-signal-safe; installShutdownHandlers() relies on that.
 */

#ifndef AOS_COMMON_CANCEL_HH
#define AOS_COMMON_CANCEL_HH

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace aos {

/** Raised at a cancellation point once cancellation is observed. */
class CancelledException : public std::runtime_error
{
  public:
    explicit CancelledException(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

class CancelToken
{
  public:
    enum class Reason : int { kNone = 0, kShutdown = 1, kDeadline = 2 };

    CancelToken() = default;
    /** Chain to @p parent: its cancellation propagates into this token. */
    explicit CancelToken(const CancelToken *parent) : _parent(parent) {}

    /** Trip the token. Async-signal-safe (one atomic store). */
    void
    requestCancel(Reason reason = Reason::kShutdown)
    {
        int expected = 0;
        _reason.compare_exchange_strong(expected,
                                        static_cast<int>(reason),
                                        std::memory_order_release,
                                        std::memory_order_relaxed);
    }

    /** Arm a wall-clock deadline @p seconds from now. */
    void
    setDeadlineAfter(double seconds)
    {
        _deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(seconds));
        _hasDeadline = true;
    }

    /**
     * Cancellation-point check. Latches the first reason observed
     * (explicit request, parent trip, or deadline expiry).
     */
    bool
    cancelled() const
    {
        if (_reason.load(std::memory_order_acquire) != 0)
            return true;
        if (_parent && _parent->cancelled()) {
            latch(_parent->reason());
            return true;
        }
        if (_hasDeadline &&
            std::chrono::steady_clock::now() >= _deadline) {
            latch(Reason::kDeadline);
            return true;
        }
        return false;
    }

    Reason
    reason() const
    {
        return static_cast<Reason>(_reason.load(std::memory_order_acquire));
    }

    /** cancelled() that raises instead of returning true. */
    void
    throwIfCancelled() const
    {
        if (!cancelled())
            return;
        throw CancelledException(reason() == Reason::kDeadline
                                     ? "deadline exceeded"
                                     : "shutdown requested");
    }

  private:
    void
    latch(Reason reason) const
    {
        int expected = 0;
        _reason.compare_exchange_strong(
            expected,
            static_cast<int>(reason == Reason::kNone ? Reason::kShutdown
                                                     : reason),
            std::memory_order_release, std::memory_order_relaxed);
    }

    const CancelToken *_parent = nullptr;
    mutable std::atomic<int> _reason{0};
    bool _hasDeadline = false;
    std::chrono::steady_clock::time_point _deadline{};
};

/** The process-wide shutdown token (tripped by SIGINT/SIGTERM). */
CancelToken &shutdownToken();

/**
 * Idempotently install SIGINT/SIGTERM handlers that requestCancel()
 * shutdownToken(). The handlers only store to atomics; the orderly
 * unwind (flush checkpoints, exit nonzero with a resume hint) happens
 * at the harness level once the campaign returns.
 */
void installShutdownHandlers();

/** Signal number that tripped shutdownToken(), or 0. */
int shutdownSignal();

} // namespace aos

#endif // AOS_COMMON_CANCEL_HH
