#include "common/profiler.hh"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/stats.hh"

namespace aos::prof {

namespace {

struct Registry
{
    std::mutex mutex;
    std::map<std::string, Entry> entries;
};

Registry &
registry()
{
    static Registry instance;
    return instance;
}

} // namespace

bool
enabled()
{
    static const bool value = [] {
        const char *env = std::getenv("AOS_PROFILE");
        return env && *env && std::strcmp(env, "0") != 0 &&
               std::strcmp(env, "off") != 0;
    }();
    return value;
}

void
record(const char *label, double ms)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> guard(reg.mutex);
    Entry &entry = reg.entries[label];
    entry.wallMs += ms;
    ++entry.count;
}

std::map<std::string, Entry>
snapshot()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> guard(reg.mutex);
    return reg.entries;
}

void
reset()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> guard(reg.mutex);
    reg.entries.clear();
}

void
addTo(StatSet &set)
{
    for (const auto &[label, entry] : snapshot()) {
        set.scalar("prof_" + label + "_wall_ms") = entry.wallMs;
        set.scalar("prof_" + label + "_calls") =
            static_cast<double>(entry.count);
    }
}

} // namespace aos::prof
