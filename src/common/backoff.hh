/**
 * @file
 * One retry policy for every "retry briefly" path (DESIGN.md §13):
 * capped exponential backoff with deterministic seeded jitter,
 * cancel-aware sleeping.
 *
 * The ad-hoc loops this replaces (the fabric worker's fixed 25×200 ms
 * connect loop, the coordinator's hot accept retry, single-attempt
 * checkpoint fsyncs) all made a different wrong trade: fixed delays
 * either hammer a recovering resource or waste seconds on one that
 * came back instantly, and none of them answered a SIGINT promptly.
 * Backoff centralizes the discipline:
 *
 *  - delays grow initialMs * multiplier^attempt, capped at maxMs;
 *  - each delay is jittered by a factor in [1-jitter, 1+jitter] drawn
 *    from a seeded Rng (common/random.hh), so a fleet of workers
 *    retrying the same dead coordinator doesn't thundering-herd in
 *    lockstep — yet the same seed reproduces the same delays, keeping
 *    timing-sensitive tests deterministic;
 *  - sleep() slices the wait into <= 20 ms chunks and polls the
 *    CancelToken between slices, so shutdown latency stays bounded by
 *    a slice, not by the (possibly seconds-long) capped delay.
 *
 * Jitter only perturbs *when* a retry happens, never *what* it does,
 * so the campaign determinism contract (canonical JSON byte-parity)
 * is unaffected by the seed choice.
 */

#ifndef AOS_COMMON_BACKOFF_HH
#define AOS_COMMON_BACKOFF_HH

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/cancel.hh"
#include "common/random.hh"
#include "common/types.hh"

namespace aos {

struct BackoffPolicy
{
    double initialMs = 10.0;   //!< First delay.
    double maxMs = 1000.0;     //!< Delay cap.
    double multiplier = 2.0;   //!< Growth per attempt.
    unsigned maxAttempts = 8;  //!< sleep() calls before giving up.
    double jitter = 0.25;      //!< Delay factor drawn from [1-j, 1+j].
    u64 seed = 0;              //!< Jitter Rng seed (determinism).
};

class Backoff
{
  public:
    explicit Backoff(const BackoffPolicy &policy,
                     const CancelToken *cancel = nullptr)
        : _policy(policy), _cancel(cancel),
          _rng(policy.seed ^ 0xb0ff'0ff5'1e77'e4ull)
    {
    }

    unsigned attempts() const { return _attempts; }
    double lastDelayMs() const { return _lastMs; }

    /** Forget past attempts (the resource recovered); jitter draws
     *  continue from the current Rng state. */
    void reset() { _attempts = 0; }

    /** The next delay in ms (advances the attempt counter). */
    double
    nextDelayMs()
    {
        double base = _policy.initialMs;
        for (unsigned i = 0; i < _attempts && base < _policy.maxMs; ++i)
            base *= _policy.multiplier;
        base = std::min(std::max(base, 0.0), _policy.maxMs);
        const double factor =
            1.0 + _policy.jitter * (2.0 * _rng.uniform() - 1.0);
        ++_attempts;
        _lastMs = std::max(0.0, base * factor);
        return _lastMs;
    }

    /**
     * Sleep for the next backoff delay. Returns false — without
     * sleeping — when the attempt budget is exhausted or the
     * CancelToken tripped; callers treat false as "stop retrying".
     * The wait is sliced so cancellation is observed within ~20 ms.
     */
    bool
    sleep()
    {
        if (_cancel && _cancel->cancelled())
            return false;
        if (_attempts >= _policy.maxAttempts)
            return false;
        double remaining = nextDelayMs();
        while (remaining > 0) {
            if (_cancel && _cancel->cancelled())
                return false;
            const double slice = std::min(remaining, 20.0);
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(slice));
            remaining -= slice;
        }
        return true;
    }

  private:
    BackoffPolicy _policy;
    const CancelToken *_cancel;
    Rng _rng;
    unsigned _attempts = 0;
    double _lastMs = 0;
};

} // namespace aos

#endif // AOS_COMMON_BACKOFF_HH
