#include "common/netio.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/chaosio.hh"
#include "common/env.hh"
#include "common/fsio.hh"
#include "common/logging.hh"

namespace aos::netio {

namespace {

void
putU32(std::string &out, u32 v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

u32
getU32(const unsigned char *p)
{
    u32 v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<u32>(p[i]) << (8 * i);
    return v;
}

} // namespace

// --- addresses ------------------------------------------------------

std::string
Address::str() const
{
    if (kind == Kind::kUnix)
        return "unix:" + path;
    return csprintf("tcp:%s:%u", host.c_str(), port);
}

bool
parseAddress(const std::string &text, Address &out, std::string &error)
{
    if (text.rfind("unix:", 0) == 0) {
        out.kind = Address::Kind::kUnix;
        out.path = text.substr(5);
        if (out.path.empty()) {
            error = "unix address has an empty path";
            return false;
        }
        if (out.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
            error = csprintf("unix socket path longer than %zu bytes",
                             sizeof(sockaddr_un{}.sun_path) - 1);
            return false;
        }
        return true;
    }
    if (text.rfind("tcp:", 0) == 0) {
        const std::string rest = text.substr(4);
        const size_t colon = rest.rfind(':');
        if (colon == std::string::npos || colon == 0) {
            error = "tcp address must be tcp:<host>:<port>";
            return false;
        }
        out.kind = Address::Kind::kTcp;
        out.host = rest.substr(0, colon);
        u64 port = 0;
        if (!parseU64(rest.substr(colon + 1).c_str(), port) || port == 0 ||
            port > 65535) {
            error = "tcp port must be a decimal in [1, 65535]";
            return false;
        }
        out.port = static_cast<u16>(port);
        return true;
    }
    error = "address must start with unix: or tcp:";
    return false;
}

// --- sockets --------------------------------------------------------

Socket::~Socket()
{
    close();
}

Socket::Socket(Socket &&other) noexcept : _fd(other._fd)
{
    other._fd = -1;
}

Socket &
Socket::operator=(Socket &&other) noexcept
{
    if (this != &other) {
        close();
        _fd = other._fd;
        other._fd = -1;
    }
    return *this;
}

int
Socket::release()
{
    const int fd = _fd;
    _fd = -1;
    return fd;
}

void
Socket::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
}

bool
Socket::sendAll(const void *data, size_t len)
{
    const char *p = static_cast<const char *>(data);
    unsigned chaosEintr = 0; // Synthetic storms are bounded (chaosio.hh).
    while (len > 0) {
        size_t chunk = len;
        const char *src = p;
        char flipped[4096];
        if (chaos::ChaosEngine *eng = chaos::engine()) {
            const chaos::Decision d = eng->next(
                chaos::Domain::kNet,
                chaos::kindBit(chaos::FaultKind::kShortSend) |
                    chaos::kindBit(chaos::FaultKind::kSendReset) |
                    chaos::kindBit(chaos::FaultKind::kFlipByte) |
                    chaos::kindBit(chaos::FaultKind::kEintr) |
                    chaos::kindBit(chaos::FaultKind::kDelay));
            if (d.fire) {
                if (d.kind == chaos::FaultKind::kEintr) {
                    if (++chaosEintr <= chaos::kMaxSyntheticEintr)
                        continue;
                } else if (d.kind == chaos::FaultKind::kSendReset) {
                    errno = ECONNRESET;
                    return false;
                } else if (d.kind == chaos::FaultKind::kDelay) {
                    std::this_thread::sleep_for(std::chrono::microseconds(
                        100 + d.arg % 1900));
                } else if (d.kind == chaos::FaultKind::kFlipByte) {
                    // Corrupt one bit of the wire image without ever
                    // touching the caller's buffer: send from a copy.
                    chunk = std::min(len, sizeof(flipped));
                    std::memcpy(flipped, p, chunk);
                    flipped[(d.arg >> 3) % chunk] ^=
                        static_cast<char>(1u << (d.arg & 7));
                    src = flipped;
                } else if (len > 1) { // kShortSend
                    chunk = 1 + static_cast<size_t>(d.arg % (len - 1));
                }
            }
        }
        const ssize_t n = ::send(_fd, src, chunk, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        p += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

bool
Socket::sendAll(const std::string &data)
{
    return sendAll(data.data(), data.size());
}

long
Socket::recvSome(void *buf, size_t len)
{
    size_t want = len;
    bool flip = false;
    u64 flipArg = 0;
    if (chaos::ChaosEngine *eng = chaos::engine()) {
        // Re-draw on synthetic EINTR so the retry exercises a fresh
        // schedule point, bounded like every other storm.
        for (unsigned redraw = 0; redraw <= chaos::kMaxSyntheticEintr;
             ++redraw) {
            const chaos::Decision d = eng->next(
                chaos::Domain::kNet,
                chaos::kindBit(chaos::FaultKind::kShortRecv) |
                    chaos::kindBit(chaos::FaultKind::kRecvReset) |
                    chaos::kindBit(chaos::FaultKind::kFlipByte) |
                    chaos::kindBit(chaos::FaultKind::kEintr) |
                    chaos::kindBit(chaos::FaultKind::kDelay));
            if (!d.fire)
                break;
            if (d.kind == chaos::FaultKind::kEintr)
                continue;
            if (d.kind == chaos::FaultKind::kRecvReset) {
                errno = ECONNRESET;
                return -1;
            }
            if (d.kind == chaos::FaultKind::kDelay) {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100 + d.arg % 1900));
            } else if (d.kind == chaos::FaultKind::kFlipByte) {
                flip = true;
                flipArg = d.arg;
            } else if (len > 1) { // kShortRecv
                want = 1 + static_cast<size_t>(d.arg % (len - 1));
            }
            break;
        }
    }
    for (;;) {
        const ssize_t n = ::recv(_fd, buf, want, 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (flip && n > 0) {
            static_cast<char *>(buf)[(flipArg >> 3) % n] ^=
                static_cast<char>(1u << (flipArg & 7));
        }
        return static_cast<long>(n);
    }
}

namespace {

bool
fillUnixAddr(const Address &addr, sockaddr_un &sun)
{
    std::memset(&sun, 0, sizeof(sun));
    sun.sun_family = AF_UNIX;
    if (addr.path.size() >= sizeof(sun.sun_path))
        return false;
    std::memcpy(sun.sun_path, addr.path.c_str(), addr.path.size() + 1);
    return true;
}

} // namespace

Socket
listenAt(const Address &addr, std::string &error)
{
    if (addr.kind == Address::Kind::kUnix) {
        sockaddr_un sun;
        if (!fillUnixAddr(addr, sun)) {
            error = "unix socket path too long";
            return Socket();
        }
        Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
        if (!s.valid()) {
            error = csprintf("socket: %s", std::strerror(errno));
            return Socket();
        }
        // A stale socket file from a killed coordinator would make
        // bind fail; it is never a live endpoint (unix sockets do not
        // outlive their process usefully), so replace it.
        ::unlink(addr.path.c_str());
        if (::bind(s.fd(), reinterpret_cast<sockaddr *>(&sun),
                   sizeof(sun)) != 0) {
            error = csprintf("bind %s: %s", addr.path.c_str(),
                             std::strerror(errno));
            return Socket();
        }
        if (::listen(s.fd(), 64) != 0) {
            error = csprintf("listen %s: %s", addr.path.c_str(),
                             std::strerror(errno));
            return Socket();
        }
        return s;
    }

    addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo *res = nullptr;
    const std::string portStr = std::to_string(addr.port);
    const int rc = ::getaddrinfo(addr.host.empty() ? nullptr
                                                   : addr.host.c_str(),
                                 portStr.c_str(), &hints, &res);
    if (rc != 0) {
        error = csprintf("resolve %s: %s", addr.host.c_str(),
                         ::gai_strerror(rc));
        return Socket();
    }
    Socket s;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        Socket candidate(
            ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
        if (!candidate.valid())
            continue;
        const int one = 1;
        ::setsockopt(candidate.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        if (::bind(candidate.fd(), ai->ai_addr, ai->ai_addrlen) == 0 &&
            ::listen(candidate.fd(), 64) == 0) {
            s = std::move(candidate);
            break;
        }
    }
    ::freeaddrinfo(res);
    if (!s.valid())
        error = csprintf("cannot listen on %s: %s", addr.str().c_str(),
                         std::strerror(errno));
    return s;
}

Socket
acceptOn(Socket &listener)
{
    for (;;) {
        const int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd < 0 && errno == EINTR)
            continue;
        return Socket(fd);
    }
}

Socket
connectTo(const Address &addr, std::string &error)
{
    if (addr.kind == Address::Kind::kUnix) {
        sockaddr_un sun;
        if (!fillUnixAddr(addr, sun)) {
            error = "unix socket path too long";
            return Socket();
        }
        Socket s(::socket(AF_UNIX, SOCK_STREAM, 0));
        if (!s.valid()) {
            error = csprintf("socket: %s", std::strerror(errno));
            return Socket();
        }
        if (::connect(s.fd(), reinterpret_cast<sockaddr *>(&sun),
                      sizeof(sun)) != 0) {
            error = csprintf("connect %s: %s", addr.path.c_str(),
                             std::strerror(errno));
            return Socket();
        }
        return s;
    }

    addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const std::string portStr = std::to_string(addr.port);
    const int rc =
        ::getaddrinfo(addr.host.c_str(), portStr.c_str(), &hints, &res);
    if (rc != 0) {
        error = csprintf("resolve %s: %s", addr.host.c_str(),
                         ::gai_strerror(rc));
        return Socket();
    }
    Socket s;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        Socket candidate(
            ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
        if (!candidate.valid())
            continue;
        if (::connect(candidate.fd(), ai->ai_addr, ai->ai_addrlen) == 0) {
            const int one = 1;
            ::setsockopt(candidate.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            s = std::move(candidate);
            break;
        }
    }
    ::freeaddrinfo(res);
    if (!s.valid())
        error = csprintf("cannot connect to %s: %s", addr.str().c_str(),
                         std::strerror(errno));
    return s;
}

bool
pollReadable(const std::vector<int> &fds, int timeoutMs,
             std::vector<size_t> &readable)
{
    readable.clear();
    std::vector<pollfd> pfds;
    pfds.reserve(fds.size());
    for (const int fd : fds)
        pfds.push_back({fd, POLLIN, 0});
    for (;;) {
        const int rc =
            ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                   timeoutMs);
        if (rc < 0 && errno == EINTR)
            continue;
        if (rc < 0)
            return false;
        break;
    }
    for (size_t i = 0; i < pfds.size(); ++i) {
        if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR | POLLNVAL))
            readable.push_back(i);
    }
    return true;
}

// --- frame codec ----------------------------------------------------

std::string
encodeFrame(u32 type, const std::string &payload)
{
    panic_if(payload.size() > kMaxFramePayload,
             "fabric frame payload of %zu bytes exceeds the %u cap",
             payload.size(), kMaxFramePayload);
    std::string frame;
    frame.reserve(kFrameHeaderBytes + payload.size());
    putU32(frame, kFrameMagic);
    putU32(frame, type);
    putU32(frame, static_cast<u32>(payload.size()));
    // The CRC covers type + length + payload, not payload alone: a
    // bit flip in the type field would otherwise deliver a *valid*
    // frame of the wrong kind, and a flipped length would stall the
    // decoder waiting for bytes that were never sent.
    const u32 crc = fsio::crc32(
        payload.data(), payload.size(),
        fsio::crc32(frame.data() + 4, 8));
    putU32(frame, crc);
    frame.append(payload);
    return frame;
}

void
FrameDecoder::poison(const std::string &why)
{
    _corrupt = true;
    _error = why;
    _buf.clear();
}

void
FrameDecoder::feed(const void *data, size_t len)
{
    if (_corrupt)
        return;
    _buf.append(static_cast<const char *>(data), len);
}

bool
FrameDecoder::next(u32 &type, std::string &payload)
{
    if (_corrupt || _buf.size() < kFrameHeaderBytes)
        return false;
    const auto *bytes =
        reinterpret_cast<const unsigned char *>(_buf.data());
    const u32 magic = getU32(bytes);
    if (magic != kFrameMagic) {
        poison(csprintf("bad frame magic %08x (expected %08x)", magic,
                        kFrameMagic));
        return false;
    }
    const u32 frameType = getU32(bytes + 4);
    const u32 length = getU32(bytes + 8);
    const u32 crc = getU32(bytes + 12);
    if (length > kMaxFramePayload) {
        poison(csprintf("declared frame length %u exceeds the %u cap",
                        length, kMaxFramePayload));
        return false;
    }
    if (_buf.size() < kFrameHeaderBytes + length)
        return false; // Incomplete: wait for more bytes.
    const u32 actual = fsio::crc32(bytes + kFrameHeaderBytes, length,
                                   fsio::crc32(bytes + 4, 8));
    if (actual != crc) {
        poison(csprintf("frame CRC mismatch (type %u, %u bytes): "
                        "%08x != %08x",
                        frameType, length, actual, crc));
        return false;
    }
    type = frameType;
    payload.assign(_buf, kFrameHeaderBytes, length);
    _buf.erase(0, kFrameHeaderBytes + length);
    return true;
}

} // namespace aos::netio
