/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  - an internal simulator bug; never the user's fault. Aborts.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments). Exits with code 1.
 * warn()   - functionality that might not behave as the user expects.
 * inform() - normal operating messages.
 *
 * Messages accept printf-style formatting.
 *
 * All sinks share a single mutex-guarded write path, so messages from
 * concurrent threads (e.g. campaign workers) never interleave within a
 * line. progressf() is the status/ETA channel used by long sweeps: it
 * writes to stderr and is NOT silenced by setQuiet(), so benchmarks can
 * stay quiet while still reporting progress.
 */

#ifndef AOS_COMMON_LOGGING_HH
#define AOS_COMMON_LOGGING_HH

#include <string>

namespace aos {

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Progress/ETA status line (stderr); not silenced by setQuiet(). */
void progressf(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Format a printf-style message into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by benchmarks). */
void setQuiet(bool quiet);
bool quiet();

#define panic(...) ::aos::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::aos::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::aos::warnImpl(__VA_ARGS__)
#define inform(...) ::aos::informImpl(__VA_ARGS__)

/** panic() if the invariant does not hold. */
#define panic_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            panic(__VA_ARGS__);                                              \
    } while (0)

/** fatal() if the user-facing condition does not hold. */
#define fatal_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            fatal(__VA_ARGS__);                                              \
    } while (0)

} // namespace aos

#endif // AOS_COMMON_LOGGING_HH
