#include "common/logging.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace aos {

namespace {

std::atomic<bool> gQuiet{false};

/**
 * Serializes every sink write. Campaign workers log concurrently, so
 * each message must reach its stream as one uninterrupted line; a
 * single mutex over the lone write path guarantees that without
 * ordering constraints between streams.
 */
std::mutex gSinkMutex;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        std::vector<char> buf(static_cast<size_t>(n) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
        out.assign(buf.data(), static_cast<size_t>(n));
    }
    va_end(ap2);
    return out;
}

/** The single write path: one complete line, one locked write. */
void
emitLine(std::FILE *to, const std::string &line)
{
    std::lock_guard<std::mutex> guard(gSinkMutex);
    std::fwrite(line.data(), 1, line.size(), to);
    std::fflush(to);
}

} // namespace

void
setQuiet(bool q)
{
    gQuiet.store(q, std::memory_order_relaxed);
}

bool
quiet()
{
    return gQuiet.load(std::memory_order_relaxed);
}

std::string
csprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emitLine(stderr,
             csprintf("panic: %s (%s:%d)\n", msg.c_str(), file, line));
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emitLine(stderr,
             csprintf("fatal: %s (%s:%d)\n", msg.c_str(), file, line));
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (quiet())
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emitLine(stderr, "warn: " + msg + "\n");
}

void
informImpl(const char *fmt, ...)
{
    if (quiet())
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emitLine(stdout, "info: " + msg + "\n");
}

void
progressf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emitLine(stderr, "progress: " + msg + "\n");
}

} // namespace aos
