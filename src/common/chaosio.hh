/**
 * @file
 * Deterministic environment-fault injection ("chaos") for the harness
 * infrastructure itself (DESIGN.md §13) — the environment-level sibling
 * of src/faultinject, aimed one layer down: instead of flipping bits in
 * the *simulated* machine, it makes the instrumented syscall sites in
 * common/fsio.hh (short/failed write(2), fsync EIO, rename failure,
 * ENOSPC, open failure), common/netio.hh (partial send/recv,
 * ECONNRESET, EINTR storms, byte flips on live sockets, delayed
 * delivery) and the campaign layer's allocation boundaries (bounded
 * bad_alloc) fail on schedule.
 *
 * Determinism contract, mirroring faultinject::FaultPlan: a ChaosPlan
 * is a pure function of (config, domain, operation index, site mask).
 * Every instrumented call site draws the next per-domain operation
 * index from the engine and asks the plan whether that operation
 * faults; the same seed therefore produces the same fault schedule for
 * the same sequence of operations, with no global mutable state beyond
 * the op counters. None of this enters the campaign checkpoint
 * identity hash — chaos is an execution-only knob, exactly like the
 * worker count: the *results* of a campaign must be independent of it
 * whenever the campaign reports success.
 *
 * Two installation scopes:
 *
 *  - process-global, from AOS_CHAOS="seed,rate,domains[,cap]" via
 *    installChaosFromEnv() (called by bench::campaignOptions()), for
 *    whole-process chaos in CI parity runs;
 *  - thread-local, via the ChaosScope RAII guard, for audit scenarios
 *    and unit tests that must not leak faults into concurrently
 *    running jobs. The thread-local engine shadows the global one.
 *
 * The graceful-degradation audit over these faults lives in
 * campaign/chaos_audit.hh (bench/chaos_audit).
 */

#ifndef AOS_COMMON_CHAOSIO_HH
#define AOS_COMMON_CHAOSIO_HH

#include <atomic>
#include <string>

#include "common/types.hh"

namespace aos::chaos {

/** Which layer of the environment an instrumented site belongs to. */
enum class Domain : unsigned { kDisk = 0, kNet = 1, kAlloc = 2 };

constexpr unsigned kDomainCount = 3;

constexpr u32
domainBit(Domain d)
{
    return 1u << static_cast<unsigned>(d);
}

const char *domainName(Domain d);

/**
 * What an instrumented site does when its operation is scheduled to
 * fault. Sites advertise the kinds they can express via a mask of
 * kindBit(); the plan picks among the intersection with the config.
 */
enum class FaultKind : unsigned {
    // Disk (fsio).
    kShortWrite = 0, //!< write(2) consumes only part of the buffer.
    kWriteEio,       //!< write(2) fails with EIO.
    kWriteEnospc,    //!< write(2) fails with ENOSPC (disk full).
    kFsyncEio,       //!< fsync(2) fails with EIO (lost durability).
    kRenameFail,     //!< rename(2) fails (atomic commit lost).
    kOpenFail,       //!< open(2) fails with EMFILE.
    // Shared.
    kEintr,          //!< A bounded synthetic EINTR storm.
    // Net (netio).
    kShortSend,      //!< send(2) consumes only part of the buffer.
    kSendReset,      //!< send(2) fails with ECONNRESET.
    kShortRecv,      //!< recv(2) is asked for fewer bytes (fragmented).
    kRecvReset,      //!< recv(2) fails with ECONNRESET.
    kFlipByte,       //!< One bit of the transferred bytes is flipped.
    kDelay,          //!< The transfer is delayed by up to ~2 ms.
    // Alloc (campaign-layer boundaries).
    kBadAlloc,       //!< std::bad_alloc at a probeAlloc() boundary.

    kCount
};

constexpr unsigned kFaultKindCount = static_cast<unsigned>(FaultKind::kCount);

constexpr u32
kindBit(FaultKind k)
{
    return 1u << static_cast<unsigned>(k);
}

const char *faultKindName(FaultKind k);

/** Synthetic EINTR storms are bounded so retry loops always make
 *  progress even at rate 1000‰ with an EINTR-only kind mask. */
constexpr unsigned kMaxSyntheticEintr = 3;

struct ChaosConfig
{
    u64 seed = 0;
    u32 ratePerMille = 0; //!< P(fault) per instrumented op, in ‰ [0,1000].
    u32 domains = 0;      //!< OR of domainBit(); 0 disables everything.
    u32 kinds = 0;        //!< OR of kindBit(); 0 means "every kind".
    u64 maxPerDomain = 0; //!< Cap on injected faults per domain; 0 = none.

    bool enabled() const { return ratePerMille > 0 && domains != 0; }
};

/**
 * Parse the AOS_CHAOS spelling "seed,rate,domains[,cap]" where domains
 * is '+'-separated from {disk, net, alloc, all}. Strict in the spirit
 * of common/env.hh: a malformed field fails with @p error set, never a
 * half-accepted config. rate is clamped to 1000‰.
 */
bool parseChaosSpec(const std::string &text, ChaosConfig &out,
                    std::string &error);

/** The scheduled behaviour of one instrumented operation. */
struct Decision
{
    bool fire = false;
    FaultKind kind = FaultKind::kShortWrite;
    u64 arg = 0; //!< Kind-specific entropy: chunk length, bit index...
};

/**
 * Pure fault schedule: at() depends only on (config, domain, opIndex,
 * siteMask). Mirrors faultinject::FaultPlan's determinism argument —
 * same seed, same operation sequence, same faults.
 */
class ChaosPlan
{
  public:
    ChaosPlan() = default;
    explicit ChaosPlan(const ChaosConfig &config) : _config(config) {}

    const ChaosConfig &config() const { return _config; }

    Decision at(Domain domain, u64 opIndex, u32 siteMask) const;

  private:
    ChaosConfig _config;
};

/**
 * A plan plus per-domain operation counters: each instrumented site
 * calls next() to claim the following operation index and learn its
 * fate. Counters are atomic so one engine may serve every thread of a
 * process (the AOS_CHAOS case); per-kind injection tallies feed the
 * audit's outcome classification.
 */
class ChaosEngine
{
  public:
    explicit ChaosEngine(const ChaosConfig &config) : _plan(config) {}

    const ChaosPlan &plan() const { return _plan; }

    Decision next(Domain domain, u32 siteMask);

    u64 ops(Domain domain) const;
    u64 injected(Domain domain) const;
    u64 injectedKind(FaultKind kind) const;
    u64 injectedTotal() const;

    /**
     * Injections whose kind makes an operation *fail* (EIO, ENOSPC,
     * resets, flips, bad_alloc) as opposed to merely degrade it
     * (short transfers, EINTR, delays). The audit classifies a clean
     * result with hard injections as degraded_retried.
     */
    u64 injectedHard() const;

  private:
    ChaosPlan _plan;
    std::atomic<u64> _ops[kDomainCount] = {};
    std::atomic<u64> _injected[kDomainCount] = {};
    std::atomic<u64> _kind[kFaultKindCount] = {};
};

/**
 * The engine governing this thread's instrumented sites: the
 * thread-local override installed by a live ChaosScope if any, else
 * the process-global engine from installChaosFromEnv(), else null
 * (chaos off — the common case costs one TLS load and one relaxed
 * atomic load per instrumented op).
 */
ChaosEngine *engine();

/** Install @p e as the process-global engine (null disables). The
 *  caller keeps ownership; used by installChaosFromEnv() and tests. */
void setProcessEngine(ChaosEngine *e);

/**
 * Idempotently install a process-global engine from AOS_CHAOS. Unset
 * or empty leaves chaos off; a malformed spec is a fatal() diagnostic
 * naming the variable (common/env.hh discipline).
 */
void installChaosFromEnv();

/** RAII thread-local engine override for scenario/test isolation. */
class ChaosScope
{
  public:
    explicit ChaosScope(ChaosEngine *e);
    ~ChaosScope();

    ChaosScope(const ChaosScope &) = delete;
    ChaosScope &operator=(const ChaosScope &) = delete;

  private:
    ChaosEngine *_prev;
};

/**
 * Campaign-layer allocation boundary: throws std::bad_alloc when the
 * engine schedules a kBadAlloc fault for the next alloc-domain op.
 * Placed where an allocation failure must be survivable (job attempt
 * entry, checkpoint record encoding) — never inside the simulator.
 */
void probeAlloc();

} // namespace aos::chaos

#endif // AOS_COMMON_CHAOSIO_HH
