#include "common/cancel.hh"

#include <csignal>

namespace aos {

namespace {

std::atomic<int> gShutdownSignal{0};

void
shutdownHandler(int signo)
{
    // Only lock-free atomic stores: async-signal-safe.
    shutdownToken().requestCancel(CancelToken::Reason::kShutdown);
    gShutdownSignal.store(signo, std::memory_order_release);
}

} // namespace

CancelToken &
shutdownToken()
{
    static CancelToken token;
    return token;
}

void
installShutdownHandlers()
{
    static std::atomic<bool> installed{false};
    bool expected = false;
    if (!installed.compare_exchange_strong(expected, true))
        return;
    // Force construction before a handler can run.
    (void)shutdownToken();
    struct sigaction sa{};
    sa.sa_handler = shutdownHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // No SA_RESTART: interrupt blocking syscalls too.
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

int
shutdownSignal()
{
    return gShutdownSignal.load(std::memory_order_acquire);
}

} // namespace aos
