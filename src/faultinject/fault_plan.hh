/**
 * @file
 * FaultPlan: the deterministic fault schedule of a run (DESIGN.md §8).
 *
 * A plan is a pure function of FaultPlanConfig — enabled fault types,
 * faults per type, seed and trigger window — so any two runs with equal
 * configuration inject byte-identical fault sequences regardless of
 * host, thread or worker count. That is what keeps campaign JSON
 * bit-identical between jobs=1 and jobs=N (the same contract the
 * synthetic workloads honour via SystemOptions::seedSalt).
 *
 * Trigger points live in one of two counting domains:
 *
 *   kOpIndex      measured-phase source-op index (FaultingStream);
 *   kBoundsAccess bounds-metadata accesses observed by memsim.
 *
 * Scheduling draws every trigger and every type-specific parameter from
 * one Rng seeded by the config, in a fixed type order.
 */

#ifndef AOS_FAULTINJECT_FAULT_PLAN_HH
#define AOS_FAULTINJECT_FAULT_PLAN_HH

#include <cstddef>
#include <vector>

#include "faultinject/fault.hh"

namespace aos::faultinject {

/** Everything a FaultPlan is derived from. */
struct FaultPlanConfig
{
    u32 types = 0;        //!< Bitmask of faultBit(FaultType).
    unsigned perType = 1; //!< Scheduled faults per enabled type.
    u64 seed = 0;         //!< Plan RNG seed.
    u64 opWindow = 1'000'000; //!< Op-index triggers land in [0, window).
};

/** When a fault's trigger counter fires. */
enum class TriggerDomain : u8
{
    kOpIndex,
    kBoundsAccess,
};

TriggerDomain triggerDomain(FaultType type);

/** One scheduled fault instance. */
struct ScheduledFault
{
    FaultType type = FaultType::kPtrPacFlip;
    u64 at = 0;  //!< Trigger counter value in the fault's domain.
    u64 a = 0;   //!< Type-specific parameter (bit index, row seed...).
    u64 b = 0;   //!< Second type-specific parameter.
    bool fired = false;
};

class FaultPlan
{
  public:
    FaultPlan() = default;
    explicit FaultPlan(const FaultPlanConfig &config);

    const FaultPlanConfig &config() const { return _config; }

    bool empty() const;

    u64 scheduled() const;

    /** Scheduled fault count for one type (stat emission). */
    u64 scheduledFor(FaultType type) const;

    /**
     * All not-yet-fired faults of @p domain due at counter value
     * @p counter (i.e. with at <= counter). The caller marks them
     * fired via their pointers.
     */
    void due(TriggerDomain domain, u64 counter,
             std::vector<ScheduledFault *> &out);

  private:
    FaultPlanConfig _config;
    // Per-domain schedules, sorted ascending by trigger point.
    std::vector<ScheduledFault> _schedule[2];
    std::size_t _cursor[2] = {0, 0};
};

} // namespace aos::faultinject

#endif // AOS_FAULTINJECT_FAULT_PLAN_HH
