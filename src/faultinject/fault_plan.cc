#include "faultinject/fault_plan.hh"

#include <algorithm>

#include "common/random.hh"

namespace aos::faultinject {

const char *
faultTypeName(FaultType type)
{
    switch (type) {
      case FaultType::kPtrPacFlip: return "ptr_pac_flip";
      case FaultType::kPtrVaFlip: return "ptr_va_flip";
      case FaultType::kHbtBoundsFlip: return "hbt_bounds_flip";
      case FaultType::kHbtRehome: return "hbt_rehome";
      case FaultType::kHbtLineZap: return "hbt_line_zap";
      case FaultType::kDramLineFlip: return "dram_line_flip";
      case FaultType::kMcuDropResp: return "mcu_drop_resp";
      case FaultType::kMcuDupResp: return "mcu_dup_resp";
      case FaultType::kMcqStall: return "mcq_stall";
      case FaultType::kCollisionStorm: return "collision_storm";
      case FaultType::kNumTypes: break;
    }
    return "unknown";
}

const char *
faultOutcomeName(FaultOutcome outcome)
{
    switch (outcome) {
      case FaultOutcome::kPending: return "pending";
      case FaultOutcome::kDetectedAutm: return "detected_autm";
      case FaultOutcome::kDetectedBounds: return "detected_bounds";
      case FaultOutcome::kTolerated: return "tolerated";
      case FaultOutcome::kSilentCorruption: return "silent_corruption";
      case FaultOutcome::kSimulatorFault: return "simulator_fault";
    }
    return "unknown";
}

void
FaultStats::note(const FaultEvent &event)
{
    ++injected;
    const auto index = static_cast<unsigned>(event.type);
    if (index < kNumFaultTypes)
        ++perType[index];
    switch (event.outcome) {
      case FaultOutcome::kDetectedAutm:
        ++detectedAutm;
        if (index < kNumFaultTypes)
            ++perTypeDetected[index];
        break;
      case FaultOutcome::kDetectedBounds:
        ++detectedBounds;
        if (index < kNumFaultTypes)
            ++perTypeDetected[index];
        break;
      case FaultOutcome::kTolerated:
        ++tolerated;
        break;
      case FaultOutcome::kSilentCorruption:
        ++silent;
        break;
      case FaultOutcome::kSimulatorFault:
        ++simFault;
        break;
      case FaultOutcome::kPending:
        break;
    }
}

TriggerDomain
triggerDomain(FaultType type)
{
    // DRAM bit errors strike lines the hierarchy actually moves, so
    // they count bounds accesses; everything else fires on op index.
    return type == FaultType::kDramLineFlip ? TriggerDomain::kBoundsAccess
                                            : TriggerDomain::kOpIndex;
}

FaultPlan::FaultPlan(const FaultPlanConfig &config) : _config(config)
{
    // One RNG, fixed enumeration order: the schedule is a pure function
    // of the config.
    Rng rng(config.seed ^ 0xfa017'1d3ec7ull);
    const u64 op_window = std::max<u64>(config.opWindow, 1);
    for (unsigned t = 0; t < kNumFaultTypes; ++t) {
        const auto type = static_cast<FaultType>(t);
        if (!(config.types & faultBit(type)))
            continue;
        for (unsigned i = 0; i < config.perType; ++i) {
            ScheduledFault fault;
            fault.type = type;
            fault.a = rng.next();
            fault.b = rng.next();
            if (triggerDomain(type) == TriggerDomain::kOpIndex) {
                fault.at = rng.below(op_window);
                _schedule[0].push_back(fault);
            } else {
                // Bounds traffic is far sparser than the op stream:
                // keep triggers small so they fire within the run.
                fault.at = 1 + rng.below(512);
                _schedule[1].push_back(fault);
            }
        }
    }
    for (auto &schedule : _schedule) {
        std::stable_sort(schedule.begin(), schedule.end(),
                         [](const ScheduledFault &x, const ScheduledFault &y) {
                             return x.at < y.at;
                         });
    }
}

bool
FaultPlan::empty() const
{
    return _schedule[0].empty() && _schedule[1].empty();
}

u64
FaultPlan::scheduled() const
{
    return _schedule[0].size() + _schedule[1].size();
}

u64
FaultPlan::scheduledFor(FaultType type) const
{
    u64 count = 0;
    for (const auto &schedule : _schedule) {
        for (const auto &fault : schedule) {
            if (fault.type == type)
                ++count;
        }
    }
    return count;
}

void
FaultPlan::due(TriggerDomain domain, u64 counter,
               std::vector<ScheduledFault *> &out)
{
    out.clear();
    const auto d = static_cast<unsigned>(domain);
    auto &schedule = _schedule[d];
    std::size_t &cursor = _cursor[d];
    while (cursor < schedule.size() && schedule[cursor].at <= counter) {
        if (!schedule[cursor].fired)
            out.push_back(&schedule[cursor]);
        ++cursor;
    }
}

} // namespace aos::faultinject
