/**
 * @file
 * Fault catalog and outcome taxonomy for deterministic fault injection
 * (DESIGN.md §8).
 *
 * A fault is one seeded perturbation of simulated hardware state: a bit
 * flip in a signed pointer, a corrupted HBT record, a DRAM bit error in
 * a bounds-metadata line, or a micro-architectural hiccup in the MCU
 * (lost/duplicated way-line responses, a saturated MCQ). Every injected
 * fault must resolve to a structured FaultOutcome — the graceful-
 * degradation contract — never to an assert or undefined behaviour.
 *
 * The catalog mirrors the corruption channels of the AOS threat model:
 * pointer metadata (PAC/AHC bits), pointer address bits, and the bounds
 * metadata the MCU trusts (paper SV-A/B). Detection is attributed to
 * the mechanism that would catch it: autm authentication failure for
 * unsigned-where-signed-expected pointers (SIV-A), or a bounds-check /
 * bndclr failure against the hashed bounds table (SV-B).
 */

#ifndef AOS_FAULTINJECT_FAULT_HH
#define AOS_FAULTINJECT_FAULT_HH

#include "common/types.hh"

namespace aos::faultinject {

/** The typed fault catalog. */
enum class FaultType : u8
{
    kPtrPacFlip,     //!< Flip a PAC/AHC metadata bit of a signed pointer.
    kPtrVaFlip,      //!< Flip a VA bit of a pointer feeding a memory op.
    kHbtBoundsFlip,  //!< Flip a bit in one HBT record's bounds fields.
    kHbtRehome,      //!< PAC-field corruption: record lands in the wrong row.
    kHbtLineZap,     //!< A whole HBT way line reads back as zero.
    kDramLineFlip,   //!< Bit flip in a bounds-metadata DRAM line (memsim).
    kMcuDropResp,    //!< A way-line response is lost in flight (MCU).
    kMcuDupResp,     //!< A way-line response is delivered twice (MCU).
    kMcqStall,       //!< The MCQ reports full for a window of cycles.
    kCollisionStorm, //!< Burst of inserts hashing into a single HBT row.
    kNumTypes,
};

inline constexpr unsigned kNumFaultTypes =
    static_cast<unsigned>(FaultType::kNumTypes);

const char *faultTypeName(FaultType type);

/** Bitmask helpers for SystemOptions::faultTypes. */
constexpr u32
faultBit(FaultType type)
{
    return u32{1} << static_cast<unsigned>(type);
}

inline constexpr u32 kAllFaults = (u32{1} << kNumFaultTypes) - 1;

/** Pointer-level faults: meaningful under every mechanism. */
inline constexpr u32 kPointerFaults =
    faultBit(FaultType::kPtrPacFlip) | faultBit(FaultType::kPtrVaFlip);

/** Metadata-corruption classes: require a hashed bounds table. */
inline constexpr u32 kMetadataFaults =
    faultBit(FaultType::kHbtBoundsFlip) | faultBit(FaultType::kHbtRehome) |
    faultBit(FaultType::kHbtLineZap) | faultBit(FaultType::kDramLineFlip);

/** MCU perturbations: require a memory check unit. */
inline constexpr u32 kMcuFaults =
    faultBit(FaultType::kMcuDropResp) | faultBit(FaultType::kMcuDupResp) |
    faultBit(FaultType::kMcqStall) | faultBit(FaultType::kCollisionStorm);

/** What happened to one injected fault (DESIGN.md §8 taxonomy). */
enum class FaultOutcome : u8
{
    kPending,          //!< Injected, consequence not yet classified.
    kDetectedAutm,     //!< Caught by autm authentication (SIV-A).
    kDetectedBounds,   //!< Caught by a bounds-check/bndclr failure (SV-B).
    kTolerated,        //!< Absorbed with no behavioural change.
    kSilentCorruption, //!< Wrong behaviour that no mechanism catches.
    kSimulatorFault,   //!< The simulator itself misbehaved (must be 0).
};

const char *faultOutcomeName(FaultOutcome outcome);

/** Which protection machinery classification may assume. */
enum class ProtectionModel : u8
{
    kNone,     //!< Baseline: nothing checks anything.
    kWatchdog, //!< Prior-work bounds + UAF checking on raw addresses.
    kPa,       //!< Code-pointer integrity only: heap data unprotected.
    kAos,      //!< HBT bounds checking (no autm on pointer loads).
    kPaAos,    //!< AOS plus autm authentication of loaded pointers.
};

/** One injected fault and its resolution. */
struct FaultEvent
{
    FaultType type = FaultType::kPtrPacFlip;
    FaultOutcome outcome = FaultOutcome::kPending;
    u64 trigger = 0; //!< Trigger-point counter value (domain-specific).
    u64 detail = 0;  //!< Type-specific: bit index, record, storm size...
    u32 tenant = 0;  //!< Tenant-targeting domain: which process the
                     //!< injector was aimed at (0 outside a scheduler).
};

/** Aggregated fault-injection results (flattened into StatSet). */
struct FaultStats
{
    bool armed = false; //!< Injection was configured for the run.
    u64 scheduled = 0;  //!< Faults the plan scheduled.
    u64 injected = 0;   //!< Faults that actually fired.
    u64 detectedAutm = 0;
    u64 detectedBounds = 0;
    u64 tolerated = 0;
    u64 silent = 0;
    u64 simFault = 0;
    u64 perType[kNumFaultTypes] = {};
    u64 perTypeDetected[kNumFaultTypes] = {};

    u64 detected() const { return detectedAutm + detectedBounds; }

    /** Detection coverage over fired faults (0 when none fired). */
    double
    coverage() const
    {
        return injected ? static_cast<double>(detected()) /
                              static_cast<double>(injected)
                        : 0.0;
    }

    /** Tally one resolved event. */
    void note(const FaultEvent &event);
};

/**
 * Hooks the MCU consults when fault injection is armed. The injector
 * implements them; the MCU owns only a non-owning pointer, so the
 * default (nullptr) costs one branch per call site.
 */
struct McuFaultHooks
{
    virtual ~McuFaultHooks() = default;

    /** Called once at the top of every MCU tick. */
    virtual void onMcuTick(Tick now) { (void)now; }

    /** Return true to make the MCQ report full this cycle. */
    virtual bool stallQueue() { return false; }

    /** Return true to drop the way-line response of entry @p seq. */
    virtual bool
    dropWayResponse(u64 seq, unsigned way)
    {
        (void)seq;
        (void)way;
        return false;
    }

    /** Return true to deliver the response of entry @p seq twice. */
    virtual bool
    duplicateWayResponse(u64 seq, unsigned way)
    {
        (void)seq;
        (void)way;
        return false;
    }
};

} // namespace aos::faultinject

#endif // AOS_FAULTINJECT_FAULT_HH
