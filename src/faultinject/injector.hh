/**
 * @file
 * FaultInjector: executes a FaultPlan against a live simulation and
 * classifies every fired fault into a FaultOutcome (DESIGN.md §8).
 *
 * The injector sits behind three hook surfaces:
 *
 *   - the FaultingStream calls onOp() once per measured source op
 *     (op-index trigger domain; pointer faults mutate op.addr here);
 *   - memsim's bounds tap calls onBoundsAccess() for every
 *     bounds-metadata access (DRAM-flip trigger domain);
 *   - the MCU calls the McuFaultHooks overrides (stall / drop / dup).
 *
 * Classification is functional and happens at fire time: the injector
 * asks the same structures the timing model trusts (the HBT, the
 * pointer layout, the allocator's chunk oracle) what the mechanism
 * will observe, so the verdict is deterministic and independent of how
 * far the pipeline has drained. The corrupted state still flows into
 * the timing simulation — a flipped pointer really is bounds-checked
 * against the wrong row — which is what the graceful-degradation
 * sweeps exercise.
 */

#ifndef AOS_FAULTINJECT_INJECTOR_HH
#define AOS_FAULTINJECT_INJECTOR_HH

#include <deque>
#include <functional>
#include <vector>

#include "bounds/hashed_bounds_table.hh"
#include "faultinject/fault_plan.hh"
#include "ir/micro_op.hh"
#include "pa/pointer_layout.hh"

namespace aos::faultinject {

/** The structures classification may consult (all non-owning). */
struct InjectorEnv
{
    pa::PointerLayout layout{16, 46};
    ProtectionModel model = ProtectionModel::kNone;
    bounds::HashedBoundsTable *hbt = nullptr; //!< Null unless AOS.

    /** True iff @p addr lies inside the live chunk based at @p base. */
    std::function<bool(Addr base, Addr addr)> inChunk;

    /**
     * Tenant-targeting domain (multi-tenant scheduler): the injector
     * perturbs only this tenant's stream/HBT, and every FaultEvent it
     * records carries the id — the isolation audit cross-checks that
     * no detection is ever attributed to a non-targeted tenant.
     */
    u32 tenantId = 0;
};

class FaultInjector : public McuFaultHooks
{
  public:
    FaultInjector(const FaultPlan &plan, const InjectorEnv &env);

    // ---- stream side (FaultingStream) -------------------------------
    /**
     * Observe measured source op @p index; fires due op-domain faults
     * and may corrupt @p op (pointer faults). Never throws.
     */
    void onOp(u64 index, ir::MicroOp &op);

    // ---- memsim tap -------------------------------------------------
    void onBoundsAccess(Addr line_addr, bool write);

    // ---- MCU hooks --------------------------------------------------
    void onMcuTick(Tick now) override;
    bool stallQueue() override;
    bool dropWayResponse(u64 seq, unsigned way) override;
    bool duplicateWayResponse(u64 seq, unsigned way) override;

    // ---- results ----------------------------------------------------
    /** Record an escaped simulator failure (caught by the harness). */
    void noteSimulatorFault(FaultType type, u64 detail = 0);

    const std::vector<FaultEvent> &events() const { return _events; }
    const FaultStats &stats() const { return _stats; }
    const FaultPlan &plan() const { return _plan; }

  private:
    void fire(ScheduledFault &fault, u64 counter);
    void record(FaultType type, FaultOutcome outcome, u64 trigger,
                u64 detail);

    // Pointer faults wait for the next eligible op after their trigger.
    bool eligiblePointerVictim(const ir::MicroOp &op) const;
    void applyPointerFault(const ScheduledFault &fault, ir::MicroOp &op);
    FaultOutcome classifyMetaFlip(Addr original, Addr corrupt,
                                  bool autm_op) const;
    FaultOutcome classifyVaFlip(Addr original, Addr corrupt,
                                Addr chunk_base) const;

    // Metadata faults pick a deterministic occupied victim record.
    void fireHbtCorruption(const ScheduledFault &fault, u64 counter);
    void fireDramFlip(const ScheduledFault &fault, u64 counter,
                      Addr line_addr);
    void fireCollisionStorm(const ScheduledFault &fault, u64 counter);
    FaultOutcome classifyRecordChange(bounds::Compressed before,
                                      bounds::Compressed after) const;

    FaultPlan _plan;
    InjectorEnv _env;

    std::vector<FaultEvent> _events;
    FaultStats _stats;

    std::vector<ScheduledFault *> _due; //!< Scratch for plan queries.
    std::deque<ScheduledFault> _pendingPtr; //!< Armed pointer faults.
    u64 _boundsAccesses = 0;
    u64 _stallCycles = 0;   //!< Remaining forced-full MCQ cycles.
    unsigned _pendingDrops = 0;
    unsigned _pendingDups = 0;
};

} // namespace aos::faultinject

#endif // AOS_FAULTINJECT_INJECTOR_HH
