/**
 * @file
 * FaultingStream: the outermost stream adapter that gives the fault
 * injector its op-index trigger domain (DESIGN.md §8).
 *
 * It wraps the fully-lowered (and, when enabled, verified) instruction
 * stream, counts measured-phase source positions, and lets the
 * injector fire op-domain faults — including corrupting the addresses
 * of pointer-fault victim ops in flight. Sitting outside the compiler
 * pipeline means the op-mix counters and the stream verifier observe
 * the *clean* program: corruption models hardware, not miscompilation.
 */

#ifndef AOS_FAULTINJECT_FAULTING_STREAM_HH
#define AOS_FAULTINJECT_FAULTING_STREAM_HH

#include "faultinject/injector.hh"
#include "ir/micro_op.hh"

namespace aos::faultinject {

class FaultingStream : public ir::InstStream
{
  public:
    FaultingStream(ir::InstStream *inner, FaultInjector *injector)
        : _inner(inner), _injector(injector)
    {
    }

    bool
    next(ir::MicroOp &op) override
    {
        if (!_inner->next(op))
            return false;
        if (op.kind == ir::OpKind::kPhaseMark) {
            _measuring = true;
            return true;
        }
        if (_measuring)
            _injector->onOp(_index++, op);
        return true;
    }

    std::string name() const override { return _inner->name(); }

  private:
    ir::InstStream *_inner;
    FaultInjector *_injector;
    bool _measuring = false;
    u64 _index = 0;
};

} // namespace aos::faultinject

#endif // AOS_FAULTINJECT_FAULTING_STREAM_HH
