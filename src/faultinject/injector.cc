#include "faultinject/injector.hh"

namespace aos::faultinject {

namespace {

/**
 * A 33-bit stand-in address for the object a compressed record
 * protects: the truncated-compare math of bounds::inBounds() sees it
 * exactly as it sees the object's real base pointer.
 */
Addr
representativeAddr(bounds::Compressed record)
{
    return bounds::decompress(record).lower;
}

} // namespace

FaultInjector::FaultInjector(const FaultPlan &plan, const InjectorEnv &env)
    : _plan(plan), _env(env)
{
    _stats.armed = true;
    _stats.scheduled = _plan.scheduled();
}

void
FaultInjector::record(FaultType type, FaultOutcome outcome, u64 trigger,
                      u64 detail)
{
    FaultEvent event;
    event.type = type;
    event.outcome = outcome;
    event.trigger = trigger;
    event.detail = detail;
    event.tenant = _env.tenantId;
    _events.push_back(event);
    _stats.note(event);
}

void
FaultInjector::noteSimulatorFault(FaultType type, u64 detail)
{
    record(type, FaultOutcome::kSimulatorFault, 0, detail);
}

// ---- op-domain dispatch -------------------------------------------------

void
FaultInjector::onOp(u64 index, ir::MicroOp &op)
{
    _plan.due(TriggerDomain::kOpIndex, index, _due);
    for (ScheduledFault *fault : _due)
        fire(*fault, index);

    if (!_pendingPtr.empty() && eligiblePointerVictim(op)) {
        const ScheduledFault fault = _pendingPtr.front();
        _pendingPtr.pop_front();
        applyPointerFault(fault, op);
    }
}

void
FaultInjector::fire(ScheduledFault &fault, u64 counter)
{
    fault.fired = true;
    switch (fault.type) {
      case FaultType::kPtrPacFlip:
      case FaultType::kPtrVaFlip:
        // Applied to the next eligible op that comes by.
        _pendingPtr.push_back(fault);
        break;
      case FaultType::kMcqStall:
        // Hold the MCQ "full" for a finite window; the core must
        // stall on back-pressure and resume afterwards.
        _stallCycles += 64 + fault.a % 192;
        record(fault.type, FaultOutcome::kTolerated, counter,
               _stallCycles);
        break;
      case FaultType::kMcuDropResp:
        ++_pendingDrops;
        record(fault.type, FaultOutcome::kTolerated, counter, 0);
        break;
      case FaultType::kMcuDupResp:
        ++_pendingDups;
        record(fault.type, FaultOutcome::kTolerated, counter, 0);
        break;
      case FaultType::kCollisionStorm:
        fireCollisionStorm(fault, counter);
        break;
      case FaultType::kHbtBoundsFlip:
      case FaultType::kHbtRehome:
      case FaultType::kHbtLineZap:
        fireHbtCorruption(fault, counter);
        break;
      case FaultType::kDramLineFlip: // bounds-access domain
      case FaultType::kNumTypes:
        break;
    }
}

// ---- pointer faults -----------------------------------------------------

bool
FaultInjector::eligiblePointerVictim(const ir::MicroOp &op) const
{
    const bool aos = _env.model == ProtectionModel::kAos ||
                     _env.model == ProtectionModel::kPaAos;
    if (_env.model == ProtectionModel::kPaAos &&
        op.kind == ir::OpKind::kAutm) {
        // A pointer authenticated right after being loaded: the
        // corrupted value meets autm before any dereference.
        return _env.layout.signed_(op.addr);
    }
    if (op.kind != ir::OpKind::kLoad && op.kind != ir::OpKind::kStore)
        return false;
    if (aos)
        return _env.layout.signed_(op.addr);
    // Without AOS metadata, target heap accesses whose chunk the
    // classification oracle knows.
    return op.chunkBase != 0;
}

void
FaultInjector::applyPointerFault(const ScheduledFault &fault,
                                 ir::MicroOp &op)
{
    const Addr original = op.addr;
    if (fault.type == FaultType::kPtrPacFlip) {
        const unsigned bit =
            static_cast<unsigned>(fault.a % (_env.layout.pacSize() + 2));
        const Addr corrupt = _env.layout.flipMetaBit(original, bit);
        const FaultOutcome outcome = classifyMetaFlip(
            original, corrupt, op.kind == ir::OpKind::kAutm);
        op.addr = corrupt;
        record(fault.type, outcome, fault.at, bit);
    } else {
        // Flip within the 33-bit span the bounds compression covers;
        // higher VA bits never hold heap addresses here.
        const unsigned bit = static_cast<unsigned>(fault.b % 33);
        const Addr corrupt = _env.layout.flipVaBit(original, bit);
        const FaultOutcome outcome =
            classifyVaFlip(original, corrupt, op.chunkBase);
        op.addr = corrupt;
        record(fault.type, outcome, fault.at, bit);
    }
}

FaultOutcome
FaultInjector::classifyMetaFlip(Addr original, Addr corrupt,
                                bool autm_op) const
{
    const auto &layout = _env.layout;
    const bool aos = _env.model == ProtectionModel::kAos ||
                     _env.model == ProtectionModel::kPaAos;
    if (!aos) {
        // The metadata bits of an unsigned pointer are stripped before
        // the access: the flip is absorbed, and nothing detects it.
        return FaultOutcome::kTolerated;
    }
    if (!layout.signed_(corrupt)) {
        // The AHC was cleared: the pointer now looks unsigned and the
        // MCU skips its check. Only autm authentication (PA+AOS,
        // SIV-A/SVII-B) catches the stripped signature.
        if (_env.model == ProtectionModel::kPaAos && autm_op)
            return FaultOutcome::kDetectedAutm;
        return FaultOutcome::kSilentCorruption;
    }
    if (layout.pac(corrupt) == layout.pac(original)) {
        // AHC-only change with the AHC still nonzero: the AHC feeds
        // way prediction, not correctness.
        return FaultOutcome::kTolerated;
    }
    // Wrong PAC: the bounds check runs against the wrong HBT row. A
    // PAC collision there passes the check silently (the paper's
    // residual false-negative rate); otherwise the check misses.
    if (_env.hbt &&
        _env.hbt->check(layout.pac(corrupt), layout.strip(corrupt), 0,
                        nullptr)) {
        return FaultOutcome::kSilentCorruption;
    }
    return FaultOutcome::kDetectedBounds;
}

FaultOutcome
FaultInjector::classifyVaFlip(Addr original, Addr corrupt,
                              Addr chunk_base) const
{
    const auto &layout = _env.layout;
    const Addr raw = layout.strip(corrupt);
    if (chunk_base && _env.inChunk && _env.inChunk(chunk_base, raw)) {
        // Still inside the object: sub-object corruption is invisible
        // to every bounds mechanism.
        return FaultOutcome::kSilentCorruption;
    }
    switch (_env.model) {
      case ProtectionModel::kAos:
      case ProtectionModel::kPaAos:
        if (_env.hbt &&
            _env.hbt->check(layout.pac(corrupt), raw, 0, nullptr)) {
            return FaultOutcome::kSilentCorruption;
        }
        return FaultOutcome::kDetectedBounds;
      case ProtectionModel::kWatchdog:
        // Watchdog checks the raw address against per-chunk bounds.
        return FaultOutcome::kDetectedBounds;
      case ProtectionModel::kPa:
      case ProtectionModel::kNone:
        return FaultOutcome::kSilentCorruption;
    }
    return FaultOutcome::kSilentCorruption;
}

// ---- metadata faults ----------------------------------------------------

FaultOutcome
FaultInjector::classifyRecordChange(bounds::Compressed before,
                                    bounds::Compressed after) const
{
    if (after == before)
        return FaultOutcome::kTolerated;
    if (before == bounds::kEmpty) {
        // A bogus record materialized out of an empty slot: it can
        // only ever grant accesses that should have faulted.
        return FaultOutcome::kSilentCorruption;
    }
    const Addr rep = representativeAddr(before);
    if (bounds::inBounds(after, rep)) {
        // The mutated record still accepts the object's base: the
        // drifted bounds are trusted without complaint.
        return FaultOutcome::kSilentCorruption;
    }
    return FaultOutcome::kDetectedBounds;
}

void
FaultInjector::fireHbtCorruption(const ScheduledFault &fault, u64 counter)
{
    bounds::HashedBoundsTable *hbt = _env.hbt;
    if (!hbt) {
        record(fault.type, FaultOutcome::kTolerated, counter, 0);
        return;
    }
    const auto victim = hbt->findOccupied(fault.a % hbt->rows());
    if (!victim) {
        // Nothing to corrupt yet (empty table): the fault is absorbed.
        record(fault.type, FaultOutcome::kTolerated, counter, 0);
        return;
    }

    switch (fault.type) {
      case FaultType::kHbtBoundsFlip: {
        // Flip one bit of the Size/LowBnd fields (bits 60..0).
        const bounds::Compressed after =
            victim->record ^ (u64{1} << (fault.b % 61));
        hbt->corruptRecord(victim->pac, victim->way, victim->slot, after);
        record(fault.type, classifyRecordChange(victim->record, after),
               counter, fault.b % 61);
        return;
      }
      case FaultType::kHbtLineZap: {
        const unsigned lost = hbt->zapLine(victim->pac, victim->way);
        // The victim's record is among the zapped: its next bounds
        // check or bndclr cannot find it.
        record(fault.type, FaultOutcome::kDetectedBounds, counter, lost);
        return;
      }
      case FaultType::kHbtRehome: {
        // Tag corruption: the record leaves its row and lands in the
        // one differing in a single PAC bit (or is lost if that row
        // is full).
        const u64 to =
            victim->pac ^ (u64{1} << (fault.b % _env.layout.pacSize()));
        hbt->corruptRecord(victim->pac, victim->way, victim->slot,
                           bounds::kEmpty);
        hbt->insert(to, victim->record);
        const Addr rep = representativeAddr(victim->record);
        const FaultOutcome outcome =
            hbt->check(victim->pac, rep, 0, nullptr)
                ? FaultOutcome::kSilentCorruption
                : FaultOutcome::kDetectedBounds;
        record(fault.type, outcome, counter, to);
        return;
      }
      default:
        record(fault.type, FaultOutcome::kTolerated, counter, 0);
        return;
    }
}

void
FaultInjector::fireCollisionStorm(const ScheduledFault &fault, u64 counter)
{
    bounds::HashedBoundsTable *hbt = _env.hbt;
    if (!hbt) {
        record(fault.type, FaultOutcome::kTolerated, counter, 0);
        return;
    }
    const u64 row = fault.a % hbt->rows();
    // Bogus allocations in a reserved low region (below the simulated
    // heap base) so they can never alias live program chunks.
    const Addr region = 0x0100'0000ull;
    const unsigned target = hbt->recordsPerWay() * hbt->ways() + 4;
    unsigned inserted = 0;
    unsigned resizes = 0;
    for (unsigned i = 0; i < target; ++i) {
        const Addr base =
            region + ((fault.b + i) % 0x10000) * 16;
        const bounds::Compressed rec = bounds::compress(base, 32);
        if (hbt->insert(row, rec)) {
            ++inserted;
            continue;
        }
        // Row full: the OS doubles the table (SIV-D) and the storm
        // continues against the resized row; cap at two resizes.
        if (resizes >= 2)
            break;
        if (!hbt->resizing()) {
            hbt->beginResize();
            ++resizes;
        }
        if (hbt->insert(row, rec))
            ++inserted;
    }
    record(fault.type, FaultOutcome::kTolerated, counter, inserted);
}

// ---- bounds-access domain (DRAM flips) ----------------------------------

void
FaultInjector::onBoundsAccess(Addr line_addr, bool write)
{
    (void)write;
    ++_boundsAccesses;
    _plan.due(TriggerDomain::kBoundsAccess, _boundsAccesses, _due);
    for (ScheduledFault *fault : _due) {
        fault->fired = true;
        fireDramFlip(*fault, _boundsAccesses, line_addr);
    }
}

void
FaultInjector::fireDramFlip(const ScheduledFault &fault, u64 counter,
                            Addr line_addr)
{
    bounds::HashedBoundsTable *hbt = _env.hbt;
    if (!hbt) {
        record(fault.type, FaultOutcome::kTolerated, counter, 0);
        return;
    }
    const unsigned slot =
        static_cast<unsigned>(fault.a % hbt->recordsPerWay());
    const u64 mask = u64{1} << (fault.b % 61);
    const auto hit = hbt->corruptLineAtAddr(line_addr, slot, mask);
    if (!hit) {
        // The accessed line is not backed by any table (e.g. the old
        // table of a just-finished resize): the flip strikes dead
        // storage.
        record(fault.type, FaultOutcome::kTolerated, counter, 0);
        return;
    }
    record(fault.type, classifyRecordChange(hit->first, hit->second),
           counter, mask);
}

// ---- MCU hooks ----------------------------------------------------------

void
FaultInjector::onMcuTick(Tick now)
{
    (void)now;
    if (_stallCycles > 0)
        --_stallCycles;
}

bool
FaultInjector::stallQueue()
{
    return _stallCycles > 0;
}

bool
FaultInjector::dropWayResponse(u64 seq, unsigned way)
{
    (void)seq;
    (void)way;
    if (_pendingDrops == 0)
        return false;
    --_pendingDrops;
    return true;
}

bool
FaultInjector::duplicateWayResponse(u64 seq, unsigned way)
{
    (void)seq;
    (void)way;
    if (_pendingDups == 0)
        return false;
    --_pendingDups;
    return true;
}

} // namespace aos::faultinject
