/**
 * @file
 * A REST-style trip-wire (blacklisting) baseline (paper SI, SX).
 *
 * REST [Sinha & Sethumadhavan, ISCA 2018] surrounds heap objects with
 * redzones filled with a secret token and detects any access that
 * touches a token in the cache hierarchy. The paper's introduction
 * argues this class is fundamentally limited: an out-of-bounds access
 * that *jumps over* the redzone lands in ordinary memory and is never
 * detected — and non-adjacent violations are >60% of recent heap CVEs.
 *
 * This functional model exists to demonstrate that coverage gap next
 * to AOS (tests/redzone_test.cc): same allocator, same probes, with
 * detection keyed purely on whether the address falls inside a
 * redzone. Temporal safety requires a quarantine pool (freed chunks
 * are redzoned but must eventually be reused), which is also modeled —
 * the performance cost of that pool is the paper's argument for AOS's
 * quarantine-free temporal safety (SIV-C).
 */

#ifndef AOS_BASELINES_REDZONE_RUNTIME_HH
#define AOS_BASELINES_REDZONE_RUNTIME_HH

#include <deque>
#include <map>

#include "alloc/heap_allocator.hh"
#include "common/types.hh"

namespace aos::baselines {

/** Outcome of a redzone-checked operation. */
enum class RedzoneStatus
{
    kOk,
    kTripwire,     //!< Access landed inside a redzone: detected.
    kInvalidFree,
};

/** Statistics for the coverage comparison. */
struct RedzoneStats
{
    u64 mallocs = 0;
    u64 frees = 0;
    u64 tripwires = 0;
    u64 quarantined = 0;     //!< Chunks currently in quarantine.
    u64 redzoneBytes = 0;    //!< Live blacklisted bytes.
};

class RedzoneRuntime
{
  public:
    /**
     * @param redzone_bytes Redzone size on each side of every object
     *        (REST uses one 64-byte token granule by default).
     * @param quarantine_depth Freed chunks held (blacklisted) before
     *        really being released for reuse.
     */
    explicit RedzoneRuntime(u64 redzone_bytes = 64,
                            u64 quarantine_depth = 256);

    /** Allocate with redzones on both sides; returns the user addr. */
    Addr malloc(u64 size);

    /** Quarantine + blacklist the object. */
    RedzoneStatus free(Addr user_addr);

    /** Check a load/store: only redzone hits are detected. */
    RedzoneStatus access(Addr addr);

    const RedzoneStats &stats() const { return _stats; }
    alloc::HeapAllocator &heap() { return _heap; }

  private:
    struct Zone
    {
        Addr begin;
        Addr end;
    };

    void blacklist(Addr begin, Addr end);
    void unblacklist(Addr begin);

    alloc::HeapAllocator _heap;
    u64 _redzoneBytes;
    u64 _quarantineDepth;
    // Blacklisted ranges keyed by begin address (non-overlapping).
    std::map<Addr, Addr> _zones;
    // Object sizes for free()/quarantine bookkeeping.
    std::map<Addr, u64> _objects;
    std::deque<std::pair<Addr, u64>> _quarantine; //!< (user, size)
    RedzoneStats _stats;
};

} // namespace aos::baselines

#endif // AOS_BASELINES_REDZONE_RUNTIME_HH
