#include "baselines/system_config.hh"

namespace aos::baselines {

const char *
mechanismName(Mechanism mech)
{
    switch (mech) {
      case Mechanism::kBaseline: return "Baseline";
      case Mechanism::kWatchdog: return "Watchdog";
      case Mechanism::kPa: return "PA";
      case Mechanism::kAos: return "AOS";
      case Mechanism::kPaAos: return "PA+AOS";
      case Mechanism::kAsan: return "ASan-style";
    }
    return "?";
}

} // namespace aos::baselines
