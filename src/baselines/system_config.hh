/**
 * @file
 * The five evaluated system configurations (paper SVIII):
 *
 *   Baseline  — no security features;
 *   Watchdog  — prior hardware bounds + use-after-free checking via
 *               check/metadata micro-ops and 24-byte records;
 *   PA        — Liljestrand-style code- and data-pointer integrity;
 *   AOS       — this paper's bounds-checking mechanism;
 *   PA+AOS    — AOS integrated with pointer integrity (SVII-B).
 *
 * Plus the AOS optimization toggles ablated in Fig. 15 and the DESIGN.md
 * extras (BWB off, forwarding off).
 */

#ifndef AOS_BASELINES_SYSTEM_CONFIG_HH
#define AOS_BASELINES_SYSTEM_CONFIG_HH

#include <string>

#include "common/types.hh"

namespace aos {
class CancelToken;
}

namespace aos::baselines {

enum class Mechanism
{
    kBaseline,
    kWatchdog,
    kPa,
    kAos,
    kPaAos,
    kAsan, //!< ASan-style software checking (motivation, SI).
};

const char *mechanismName(Mechanism mech);

/** Full system configuration for one simulation run. */
struct SystemOptions
{
    Mechanism mech = Mechanism::kAos;

    // AOS optimization toggles (Fig. 15 + extra ablations).
    bool boundsCompression = true;
    bool useL1B = true;
    bool useBwb = true;
    bool boundsForwarding = true;

    unsigned pacBits = 16;       //!< Table IV.
    unsigned initialHbtAssoc = 1;//!< Table IV (empirical).

    u64 measureOps = 1'000'000;  //!< Committed micro-ops to simulate.

    /**
     * Extra workload-RNG entropy (src/campaign job seeds). The
     * synthetic stream is a pure function of (profile, seedSalt), so
     * two runs with equal options are bit-identical regardless of
     * which thread executes them.
     */
    u64 seedSalt = 0;

    // Static-analysis layer (DESIGN.md "Static analysis layer").
    bool aosElision = false;  //!< Elide provably-redundant autm ops.
    /**
     * Dataflow-driven bounds elision (DESIGN.md §11): drop the whole
     * pacma/bndstr/bndclr/autm quadruple for chunks the abstract
     * interpreter proves non-escaping with all accesses in bounds.
     */
    bool aosBoundsElision = false;
    bool verifyStream = false;//!< Lint the instrumented stream online.

    /**
     * Cooperative-cancellation token polled by the simulation loops
     * (common/cancel.hh); null disables the checks. Not owned. Raises
     * CancelledException from inside run()/fastForward() — callers
     * (the campaign engine) map it to kTimeout/kCancelled.
     */
    const CancelToken *cancel = nullptr;

    // Fault injection (DESIGN.md §8). faultTypes is a bitmask of
    // faultinject::FaultType bits; zero disarms the injector. Kept as
    // plain integers so this header stays dependency-free.
    u32 faultTypes = 0;       //!< Which fault classes to schedule.
    unsigned faultCount = 1;  //!< Scheduled faults per selected class.
    u64 faultSeed = 0;        //!< Fault-plan RNG seed.

    bool usesAos() const
    {
        return mech == Mechanism::kAos || mech == Mechanism::kPaAos;
    }
    bool usesPa() const
    {
        return mech == Mechanism::kPa || mech == Mechanism::kPaAos;
    }
};

} // namespace aos::baselines

#endif // AOS_BASELINES_SYSTEM_CONFIG_HH
