#include "baselines/redzone_runtime.hh"

#include "common/logging.hh"

namespace aos::baselines {

RedzoneRuntime::RedzoneRuntime(u64 redzone_bytes, u64 quarantine_depth)
    : _redzoneBytes(redzone_bytes), _quarantineDepth(quarantine_depth)
{
    fatal_if(redzone_bytes == 0, "a zero-byte redzone detects nothing");
}

void
RedzoneRuntime::blacklist(Addr begin, Addr end)
{
    _zones[begin] = end;
    _stats.redzoneBytes += end - begin;
}

void
RedzoneRuntime::unblacklist(Addr begin)
{
    auto it = _zones.find(begin);
    if (it == _zones.end())
        return;
    _stats.redzoneBytes -= it->second - it->first;
    _zones.erase(it);
}

Addr
RedzoneRuntime::malloc(u64 size)
{
    // Over-allocate: [redzone | object | redzone].
    const Addr block = _heap.malloc(size + 2 * _redzoneBytes);
    if (block == 0)
        return 0;
    const Addr user = block + _redzoneBytes;
    blacklist(block, user);
    blacklist(user + size, user + size + _redzoneBytes);
    _objects[user] = size;
    ++_stats.mallocs;
    return user;
}

RedzoneStatus
RedzoneRuntime::free(Addr user_addr)
{
    auto it = _objects.find(user_addr);
    if (it == _objects.end())
        return RedzoneStatus::kInvalidFree;
    const u64 size = it->second;
    _objects.erase(it);
    ++_stats.frees;

    // Temporal safety needs a quarantine: blacklist the whole object
    // and defer the real free. (This pool is the main cost of REST's
    // software framework, which AOS avoids, SIV-C.)
    blacklist(user_addr, user_addr + size);
    _quarantine.push_back({user_addr, size});

    while (_quarantine.size() > _quarantineDepth) {
        const auto [victim, vsize] = _quarantine.front();
        _quarantine.pop_front();
        // Release the object and its surrounding redzones for reuse.
        unblacklist(victim - _redzoneBytes);
        unblacklist(victim);
        unblacklist(victim + vsize);
        _heap.free(victim - _redzoneBytes);
    }
    _stats.quarantined = _quarantine.size();
    return RedzoneStatus::kOk;
}

RedzoneStatus
RedzoneRuntime::access(Addr addr)
{
    auto it = _zones.upper_bound(addr);
    if (it != _zones.begin()) {
        --it;
        if (addr >= it->first && addr < it->second) {
            ++_stats.tripwires;
            return RedzoneStatus::kTripwire;
        }
    }
    return RedzoneStatus::kOk;
}

} // namespace aos::baselines
