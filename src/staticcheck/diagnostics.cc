#include "staticcheck/diagnostics.hh"

#include <sstream>

namespace aos::staticcheck {

const char *
ruleId(RuleId rule)
{
    switch (rule) {
      case RuleId::kIntrinsicSurvived: return "SC01";
      case RuleId::kMallocNotLowered: return "SC02";
      case RuleId::kFreeNotLowered: return "SC03";
      case RuleId::kDuplicateBndstr: return "SC04";
      case RuleId::kUnpairedBndclr: return "SC05";
      case RuleId::kSignedBeforeSign: return "SC06";
      case RuleId::kSignedAfterClear: return "SC07";
      case RuleId::kPacMismatch: return "SC08";
      case RuleId::kPhaseImbalance: return "SC09";
      case RuleId::kMemMissingAddr: return "SC10";
      case RuleId::kMemMissingSize: return "SC11";
      case RuleId::kAllocMarkMissingFields: return "SC12";
      case RuleId::kBoundsOpUnsigned: return "SC13";
      case RuleId::kAutmOrphan: return "SC14";
      case RuleId::kElidedResidualInstr: return "SC15";
      case RuleId::kElidedSignedAccess: return "SC16";
      case RuleId::kElidedAccessOutOfPlan: return "SC17";
      case RuleId::kElidedEscape: return "SC18";
    }
    return "SC??";
}

const char *
ruleName(RuleId rule)
{
    switch (rule) {
      case RuleId::kIntrinsicSurvived: return "intrinsic-survived-backend";
      case RuleId::kMallocNotLowered: return "malloc-not-lowered";
      case RuleId::kFreeNotLowered: return "free-not-lowered";
      case RuleId::kDuplicateBndstr: return "duplicate-bndstr";
      case RuleId::kUnpairedBndclr: return "unpaired-bndclr";
      case RuleId::kSignedBeforeSign: return "signed-before-sign";
      case RuleId::kSignedAfterClear: return "signed-after-clear";
      case RuleId::kPacMismatch: return "pac-mismatch";
      case RuleId::kPhaseImbalance: return "phase-imbalance";
      case RuleId::kMemMissingAddr: return "mem-missing-addr";
      case RuleId::kMemMissingSize: return "mem-missing-size";
      case RuleId::kAllocMarkMissingFields: return "alloc-mark-missing-fields";
      case RuleId::kBoundsOpUnsigned: return "bounds-op-unsigned";
      case RuleId::kAutmOrphan: return "autm-orphan";
      case RuleId::kElidedResidualInstr: return "elided-residual-instr";
      case RuleId::kElidedSignedAccess: return "elided-signed-access";
      case RuleId::kElidedAccessOutOfPlan:
        return "elided-access-out-of-plan";
      case RuleId::kElidedEscape: return "elided-escape";
    }
    return "unknown-rule";
}

std::string
toString(const Diagnostic &diag)
{
    std::ostringstream os;
    os << ruleId(diag.rule) << ' ' << ruleName(diag.rule) << " @op "
       << diag.opIndex << ": " << diag.message;
    return os.str();
}

std::string
toString(const std::vector<Diagnostic> &diags)
{
    std::ostringstream os;
    for (const Diagnostic &diag : diags)
        os << toString(diag) << '\n';
    return os.str();
}

} // namespace aos::staticcheck
