#include "staticcheck/obligation_checker.hh"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "faultinject/fault_plan.hh"
#include "faultinject/injector.hh"

namespace aos::staticcheck {

namespace {

/**
 * Tracks which chunk instance is current per base while replaying a
 * lowered stream, mirroring the generation bookkeeping of the
 * DataflowEngine and AosBoundsElidePass. Membership in the elided set
 * persists past the chunk's free (the full stream's free quadruple and
 * any use-after-free access must still attribute to the instance) and
 * resets at the base's next allocation.
 */
class InstanceCursor
{
  public:
    explicit InstanceCursor(const analysis::dataflow::ElisionPlan &plan)
        : _plan(plan)
    {
    }

    void
    step(const ir::MicroOp &op)
    {
        if (op.chunkBase == 0)
            return;
        if (op.kind == ir::OpKind::kMallocMark) {
            const u32 gen = ++_gen[op.chunkBase];
            _open[op.chunkBase] = op.size;
            if (_plan.elided(op.chunkBase, gen))
                _elided.insert(op.chunkBase);
            else
                _elided.erase(op.chunkBase);
        } else if (op.kind == ir::OpKind::kFreeMark) {
            _open.erase(op.chunkBase);
        }
    }

    bool elided(Addr base) const { return _elided.count(base) != 0; }

    u32
    gen(Addr base) const
    {
        auto it = _gen.find(base);
        return it == _gen.end() ? 0 : it->second;
    }

    bool
    inChunk(Addr base, Addr addr) const
    {
        auto it = _open.find(base);
        return it != _open.end() && addr >= base &&
               addr < base + it->second;
    }

  private:
    const analysis::dataflow::ElisionPlan &_plan;
    std::unordered_map<Addr, u32> _gen;
    std::unordered_map<Addr, u64> _open;
    std::unordered_set<Addr> _elided;
};

/** Chunk attribution of one op: explicit provenance, else raw VA. */
Addr
attributionBase(const ir::MicroOp &op, const pa::PointerLayout &layout)
{
    return op.chunkBase != 0 ? op.chunkBase : layout.strip(op.addr);
}

} // namespace

std::string
ObligationReport::summary() const
{
    std::ostringstream os;
    os << (ok ? "OK" : "FAIL") << ": " << obligationsChecked
       << " obligations, " << obligationsViolated << " violated; benign "
       << (benignParity ? "parity" : "MISMATCH") << " (full "
       << fullStats.detections() << " vs elided "
       << elidedStats.detections() << " detections)";
    if (faultsChecked) {
        os << "; faults " << (faultParity ? "parity" : "MISMATCH")
           << " (detected " << faultsDetectedFull << " full vs "
           << faultsDetectedElided << " elided, " << simulatorFaults
           << " sim faults, " << victimsInElidedRegions
           << " victims in elided regions)";
    }
    return os.str();
}

ObligationChecker::ObligationChecker(ObligationCheckOptions options)
    : _options(options)
{
}

ObligationReport
ObligationChecker::check(const std::vector<ir::MicroOp> &full,
                         const std::vector<ir::MicroOp> &elided,
                         const analysis::dataflow::ElisionPlan &plan)
{
    ObligationReport report;

    // Phase 1: benign detection parity.
    {
        StreamExecutor full_exec(_options.layout);
        StreamExecutor elided_exec(_options.layout);
        report.fullStats = full_exec.run(full);
        report.elidedStats = elided_exec.run(elided);
        report.benignParity =
            report.elidedStats.sameDetections(report.fullStats);
        if (!report.benignParity) {
            std::ostringstream os;
            os << "detection profile changed: full(auth="
               << report.fullStats.authFailures
               << " bounds=" << report.fullStats.boundsViolations
               << " clear=" << report.fullStats.clearFailures
               << ") vs elided(auth=" << report.elidedStats.authFailures
               << " bounds=" << report.elidedStats.boundsViolations
               << " clear=" << report.elidedStats.clearFailures << ")";
            report.failures.push_back(os.str());
        }
    }

    // Phase 2: obligation replay against the ground-truth executor.
    replayObligations(full, plan, report);

    // Phase 3: fault replay.
    if (_options.checkFaults && !full.empty() && !elided.empty())
        replayFaults(full, elided, plan, report);

    report.ok = report.benignParity && report.obligationsViolated == 0 &&
                (!report.faultsChecked || report.faultParity);
    return report;
}

void
ObligationChecker::replayObligations(
    const std::vector<ir::MicroOp> &full,
    const analysis::dataflow::ElisionPlan &plan, ObligationReport &report)
{
    report.obligationsChecked = plan.obligations().size();

    StreamExecutor exec(_options.layout);
    InstanceCursor cursor(plan);
    std::unordered_set<Addr> violated_bases;
    u64 violated = 0;

    for (const ir::MicroOp &op : full) {
        cursor.step(op);
        const u64 before = exec.stats().detections();
        exec.step(op);
        if (exec.stats().detections() == before)
            continue;
        // The ground truth raised a detection on this op. If the op
        // attributes to an elided instance, the check the pass removed
        // was the one that fired: that obligation's proof is wrong.
        const Addr base = attributionBase(op, _options.layout);
        if (cursor.elided(base) && violated_bases.insert(base).second) {
            ++violated;
            if (report.failures.size() < 16) {
                std::ostringstream os;
                os << "obligation violated: chunk 0x" << std::hex << base
                   << std::dec << " gen " << cursor.gen(base)
                   << " raised a detection (" << ir::opKindName(op.kind)
                   << ") despite being elided";
                report.failures.push_back(os.str());
            }
        }
    }
    report.obligationsViolated = violated;
}

void
ObligationChecker::replayFaults(const std::vector<ir::MicroOp> &full,
                                const std::vector<ir::MicroOp> &elided,
                                const analysis::dataflow::ElisionPlan &plan,
                                ObligationReport &report)
{
    report.faultsChecked = true;

    // Fault exposure must hit the SAME victims in both runs, or victim
    // shift (a fault sliding past a removed op onto a different signed
    // access) makes the comparison meaningless. The elided stream is
    // the full stream minus dropped ops, with elided-chunk accesses
    // stripped, so a greedy subsequence match recovers the ops that are
    // bit-identical in both streams; only those are exposed to the
    // injector, indexed by their shared ordinal. Both replays then
    // schedule identical faults onto identical victims, and the only
    // remaining difference is the HBT contents — the elided table holds
    // a subset of the full run's records, so detections are monotone.
    // (Faults on elided-region ops have no elided counterpart at all:
    // the pointer is never signed there, which phase 2 and the SC16
    // verifier contract already police.)
    auto same_op = [](const ir::MicroOp &a, const ir::MicroOp &b) {
        return a.kind == b.kind && a.addr == b.addr &&
               a.chunkBase == b.chunkBase && a.size == b.size &&
               a.taken == b.taken && a.loadsPointer == b.loadsPointer;
    };
    std::vector<std::pair<size_t, size_t>> shared; // (full, elided) idx
    for (size_t i = 0, j = 0; i < full.size() && j < elided.size(); ++i) {
        if (same_op(full[i], elided[j])) {
            shared.push_back({i, j});
            ++j;
            continue;
        }
        ir::MicroOp stripped = full[i];
        stripped.addr = _options.layout.strip(full[i].addr);
        if (same_op(stripped, elided[j]))
            ++j; // present but stripped: corresponding, not shared
        // else: dropped from the elided stream; consume full[i] only.
    }

    faultinject::FaultPlanConfig config;
    config.types = _options.faultTypes;
    config.perType = _options.faultsPerType;
    config.seed = _options.faultSeed;
    config.opWindow = std::max<u64>(1, shared.size());

    struct FaultRun
    {
        faultinject::FaultStats stats;
        u64 victimsInElided = 0;
    };

    auto replay = [&](const std::vector<ir::MicroOp> &stream,
                      bool use_full_index) {
        StreamExecutor exec(_options.layout);
        InstanceCursor cursor(plan);
        faultinject::FaultPlan fault_plan(config);

        faultinject::InjectorEnv env;
        env.layout = _options.layout;
        env.model = faultinject::ProtectionModel::kPaAos;
        env.hbt = &exec.mutableHbt();
        env.inChunk = [&cursor](Addr base, Addr addr) {
            return cursor.inChunk(base, addr);
        };
        faultinject::FaultInjector injector(fault_plan, env);

        FaultRun run;
        size_t s = 0;
        for (size_t i = 0; i < stream.size(); ++i) {
            const ir::MicroOp &op = stream[i];
            cursor.step(op);
            ir::MicroOp mutated = op;
            const size_t here =
                s < shared.size()
                    ? (use_full_index ? shared[s].first : shared[s].second)
                    : stream.size();
            if (i == here) {
                injector.onOp(s, mutated);
                ++s;
            }
            if (mutated.addr != op.addr &&
                cursor.elided(attributionBase(op, _options.layout))) {
                ++run.victimsInElided;
            }
            exec.step(mutated);
        }
        run.stats = injector.stats();
        return run;
    };

    const FaultRun full_run = replay(full, true);
    const FaultRun elided_run = replay(elided, false);

    report.fullFaultStats = full_run.stats;
    report.elidedFaultStats = elided_run.stats;
    report.faultsInjectedFull = full_run.stats.injected;
    report.faultsInjectedElided = elided_run.stats.injected;
    report.faultsDetectedFull = full_run.stats.detected();
    report.faultsDetectedElided = elided_run.stats.detected();
    report.victimsInElidedRegions = elided_run.victimsInElided;
    report.simulatorFaults =
        full_run.stats.simFault + elided_run.stats.simFault;

    bool ok = true;
    if (report.simulatorFaults != 0) {
        ok = false;
        report.failures.push_back("fault replay raised simulator faults");
    }
    if (report.victimsInElidedRegions != 0) {
        ok = false;
        report.failures.push_back(
            "pointer fault struck an op inside an elided region: the "
            "pass left a signed access uninstrumented checks relied on");
    }
    for (unsigned t = 0; t < faultinject::kNumFaultTypes; ++t) {
        if (elided_run.stats.perTypeDetected[t] >=
            full_run.stats.perTypeDetected[t]) {
            continue;
        }
        ok = false;
        std::ostringstream os;
        os << "lost fault detections for "
           << faultinject::faultTypeName(
                  static_cast<faultinject::FaultType>(t))
           << ": full detected " << full_run.stats.perTypeDetected[t]
           << ", elided detected " << elided_run.stats.perTypeDetected[t];
        report.failures.push_back(os.str());
    }
    report.faultParity = ok;
}

} // namespace aos::staticcheck
