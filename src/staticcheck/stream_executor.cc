#include "staticcheck/stream_executor.hh"

#include "bounds/compression.hh"

namespace aos::staticcheck {

namespace {

/** Simulated address of the executor's private bounds table. */
constexpr Addr kExecHbtBase = 0x3000'0000'0000ull;

} // namespace

StreamExecutor::StreamExecutor(pa::PointerLayout layout,
                               unsigned initial_assoc)
    : _layout(layout),
      _hbt(kExecHbtBase, layout.pacSize(), initial_assoc)
{
}

void
StreamExecutor::step(const ir::MicroOp &op)
{
    using ir::OpKind;
    ++_stats.ops;

    switch (op.kind) {
      case OpKind::kBndstr: {
        ++_stats.bndstrs;
        const u64 pac = _layout.pac(op.addr);
        const Addr raw = _layout.strip(op.addr);
        auto way = _hbt.insert(pac, bounds::compress(raw, op.size));
        while (!way) {
            // bndstr exception: the OS resizes and the store retries.
            if (!_hbt.resizing())
                _hbt.beginResize();
            _hbt.finishResize();
            way = _hbt.insert(pac, bounds::compress(raw, op.size));
        }
        break;
      }

      case OpKind::kBndclr: {
        ++_stats.bndclrs;
        // A pointer that is unsigned, or whose bounds are absent,
        // cannot be freed (double free / House of Spirit).
        if (!_layout.signed_(op.addr) ||
            !_hbt.clear(_layout.pac(op.addr), _layout.strip(op.addr))) {
            ++_stats.clearFailures;
        }
        break;
      }

      case OpKind::kLoad:
      case OpKind::kStore: {
        if (!_layout.signed_(op.addr)) {
            ++_stats.uncheckedAccesses;
            break;
        }
        ++_stats.checkedAccesses;
        if (!_hbt.check(_layout.pac(op.addr), _layout.strip(op.addr), 0,
                        nullptr)) {
            ++_stats.boundsViolations;
        }
        break;
      }

      case OpKind::kAutm:
        ++_stats.autms;
        // autm semantics (SIV-A): a nonzero AHC authenticates.
        if (!_layout.signed_(op.addr))
            ++_stats.authFailures;
        break;

      default:
        break;
    }
}

ExecStats
StreamExecutor::run(ir::InstStream &stream)
{
    ir::MicroOp op;
    while (stream.next(op))
        step(op);
    return _stats;
}

ExecStats
StreamExecutor::run(const std::vector<ir::MicroOp> &ops)
{
    for (const ir::MicroOp &op : ops)
        step(op);
    return _stats;
}

} // namespace aos::staticcheck
