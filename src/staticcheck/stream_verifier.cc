#include "staticcheck/stream_verifier.hh"

#include <sstream>

namespace aos::staticcheck {

namespace {

std::string
hex(Addr value)
{
    std::ostringstream os;
    os << "0x" << std::hex << value;
    return os.str();
}

} // namespace

StreamVerifier::StreamVerifier(VerifierOptions options)
    : _options(options)
{
}

void
StreamVerifier::report(RuleId rule, std::string message)
{
    ++_totalDiags;
    ++_ruleCounts[rule];
    if (_diags.size() < _options.maxDiagnostics) {
        // _opIndex is pre-incremented in observe(); the offending op is
        // the one currently being checked.
        _diags.push_back(Diagnostic{_opIndex - 1, rule, std::move(message)});
    }
}

Addr
StreamVerifier::chunkKey(const ir::MicroOp &op) const
{
    return op.chunkBase != 0 ? op.chunkBase : _options.layout.strip(op.addr);
}

void
StreamVerifier::flushLowering()
{
    if (!_pending)
        return;
    const Lowering &p = *_pending;
    if (p.isFree) {
        if (!p.sawBndclr || !p.sawXpacm || !p.sawResign) {
            report(RuleId::kFreeNotLowered,
                   "kFreeMark for chunk " + hex(p.chunk) + " at op " +
                       std::to_string(p.markIndex) +
                       " missing bndclr/xpacm/re-sign lowering");
        }
    } else {
        if (!p.sawPacma || !p.sawBndstr) {
            report(RuleId::kMallocNotLowered,
                   "kMallocMark for chunk " + hex(p.chunk) + " at op " +
                       std::to_string(p.markIndex) +
                       " missing pacma/bndstr lowering");
        }
    }
    _pending.reset();
}

void
StreamVerifier::checkFields(const ir::MicroOp &op)
{
    using ir::OpKind;
    if (op.isMem()) {
        if (op.addr == 0)
            report(RuleId::kMemMissingAddr,
                   std::string(ir::opKindName(op.kind)) +
                       " carries no address");
        if (op.size == 0)
            report(RuleId::kMemMissingSize,
                   std::string(ir::opKindName(op.kind)) +
                       " carries no access size");
    }
    if (op.kind == OpKind::kMallocMark &&
        (op.chunkBase == 0 || op.size == 0)) {
        report(RuleId::kAllocMarkMissingFields,
               "kMallocMark missing chunk base or size");
    }
    if (op.kind == OpKind::kFreeMark && op.chunkBase == 0) {
        report(RuleId::kAllocMarkMissingFields,
               "kFreeMark missing chunk base");
    }
    if (op.isBoundsOp() && !_options.layout.signed_(op.addr)) {
        report(RuleId::kBoundsOpUnsigned,
               std::string(ir::opKindName(op.kind)) +
                   " on unsigned pointer " + hex(op.addr));
    }
    if (op.kind == OpKind::kPhaseMark) {
        ++_phaseMarks;
        if (_phaseMarks > 1)
            report(RuleId::kPhaseImbalance,
                   "more than one warmup/measure phase mark");
    }
}

void
StreamVerifier::checkDataflow(const ir::MicroOp &op)
{
    using ir::OpKind;
    const pa::PointerLayout &layout = _options.layout;

    switch (op.kind) {
      case OpKind::kPacma:
        if (op.chunkBase != 0)
            _signedPtrs[op.chunkBase] = op.addr;
        break;

      case OpKind::kBndstr: {
        const Addr key = chunkKey(op);
        if (!_liveBounds.insert(key).second) {
            report(RuleId::kDuplicateBndstr,
                   "bndstr for chunk " + hex(key) +
                       " whose bounds are already live");
        }
        if (op.chunkBase != 0 &&
            _signedPtrs.find(op.chunkBase) == _signedPtrs.end()) {
            // bndstr stores the signed pointer; remember it even if the
            // pacma was dropped (that omission is reported separately).
            _signedPtrs[op.chunkBase] = op.addr;
        }
        break;
      }

      case OpKind::kBndclr: {
        const Addr key = chunkKey(op);
        if (_liveBounds.erase(key) == 0) {
            report(RuleId::kUnpairedBndclr,
                   "bndclr for chunk " + hex(key) +
                       " with no live bounds (double/invalid free)");
        }
        break;
      }

      case OpKind::kLoad:
      case OpKind::kStore: {
        if (!layout.signed_(op.addr))
            break;
        if (op.chunkBase == 0) {
            report(RuleId::kSignedBeforeSign,
                   "signed access " + hex(op.addr) +
                       " with no chunk provenance");
            break;
        }
        auto it = _signedPtrs.find(op.chunkBase);
        if (it == _signedPtrs.end()) {
            report(RuleId::kSignedBeforeSign,
                   "signed access to chunk " + hex(op.chunkBase) +
                       " before its pacma");
        } else if (layout.pac(op.addr) != layout.pac(it->second)) {
            report(RuleId::kPacMismatch,
                   "signed access " + hex(op.addr) + " carries PAC " +
                       std::to_string(layout.pac(op.addr)) +
                       " but chunk " + hex(op.chunkBase) +
                       " was signed with PAC " +
                       std::to_string(layout.pac(it->second)));
        } else if (_liveBounds.find(op.chunkBase) == _liveBounds.end()) {
            report(RuleId::kSignedAfterClear,
                   "signed access to chunk " + hex(op.chunkBase) +
                       " after its bndclr (static use-after-free)");
        }
        break;
      }

      case OpKind::kAutm: {
        const bool follows_load = _prevOp &&
                                  _prevOp->kind == OpKind::kLoad &&
                                  _prevOp->addr == op.addr;
        if (!follows_load) {
            report(RuleId::kAutmOrphan,
                   "autm of " + hex(op.addr) +
                       " does not authenticate the preceding load");
        }
        break;
      }

      default:
        break;
    }
}

void
StreamVerifier::checkLowering(const ir::MicroOp &op)
{
    using ir::OpKind;
    switch (op.kind) {
      case OpKind::kMallocMark:
      case OpKind::kFreeMark: {
        flushLowering();
        Lowering pending;
        pending.markIndex = _opIndex - 1;
        pending.chunk = op.chunkBase;
        pending.isFree = op.kind == OpKind::kFreeMark;
        _pending = pending;
        break;
      }

      case OpKind::kPacma:
        if (_pending) {
            if (!_pending->isFree && op.chunkBase == _pending->chunk)
                _pending->sawPacma = true;
            else if (_pending->isFree && _pending->sawBndclr &&
                     _pending->sawXpacm)
                _pending->sawResign = true;
        }
        break;

      case OpKind::kBndstr:
        if (_pending && !_pending->isFree &&
            op.chunkBase == _pending->chunk) {
            _pending->sawBndstr = true;
        }
        break;

      case OpKind::kBndclr:
        if (_pending && _pending->isFree &&
            op.chunkBase == _pending->chunk) {
            _pending->sawBndclr = true;
        }
        break;

      case OpKind::kXpacm:
        if (_pending && _pending->isFree && _pending->sawBndclr)
            _pending->sawXpacm = true;
        break;

      default:
        break;
    }
}

void
StreamVerifier::observe(const ir::MicroOp &op)
{
    ++_opIndex;

    if (_options.requireLoweredIntrinsics &&
        (op.kind == ir::OpKind::kAosMallocIntr ||
         op.kind == ir::OpKind::kAosFreeIntr)) {
        report(RuleId::kIntrinsicSurvived,
               std::string(ir::opKindName(op.kind)) +
                   " survived the backend pass");
    }

    if (_options.checkFields)
        checkFields(op);
    if (_options.checkDataflow)
        checkDataflow(op);
    if (_options.requireAosLowering)
        checkLowering(op);

    _prevOp = op;
}

void
StreamVerifier::finish()
{
    if (_options.requireAosLowering)
        flushLowering();
}

void
StreamVerifier::addStats(StatSet &set, const std::string &prefix) const
{
    set.scalar(prefix + "total") = static_cast<double>(_totalDiags);
    for (const auto &[rule, count] : _ruleCounts) {
        set.scalar(prefix + ruleId(rule) + "_" + ruleName(rule)) =
            static_cast<double>(count);
    }
}

std::vector<Diagnostic>
StreamVerifier::verify(ir::InstStream &stream, const VerifierOptions &options)
{
    StreamVerifier verifier(options);
    ir::MicroOp op;
    while (stream.next(op))
        verifier.observe(op);
    verifier.finish();
    return verifier.diagnostics();
}

std::vector<Diagnostic>
StreamVerifier::verify(const std::vector<ir::MicroOp> &ops,
                       const VerifierOptions &options)
{
    StreamVerifier verifier(options);
    for (const ir::MicroOp &op : ops)
        verifier.observe(op);
    verifier.finish();
    return verifier.diagnostics();
}

} // namespace aos::staticcheck
