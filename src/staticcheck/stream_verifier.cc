#include "staticcheck/stream_verifier.hh"

#include <sstream>

namespace aos::staticcheck {

namespace {

std::string
hex(Addr value)
{
    std::ostringstream os;
    os << "0x" << std::hex << value;
    return os.str();
}

} // namespace

StreamVerifier::StreamVerifier(VerifierOptions options)
    : _options(options)
{
}

void
StreamVerifier::report(RuleId rule, Addr site, std::string message)
{
    ++_totalDiags;
    ++_ruleCounts[rule];

    auto [it, fresh] = _siteCounts.emplace(std::make_pair(rule, site), u64{0});
    ++it->second;
    if (fresh)
        ++_distinctSites[rule];

    u64 &stored = _storedSites[rule];
    if (!fresh || stored >= _options.maxPerRuleSites ||
        _diags.size() >= _options.maxDiagnostics) {
        ++_suppressed[rule];
        ++_totalSuppressed;
        return;
    }
    ++stored;
    // _opIndex is pre-incremented in observe(); the offending op is the
    // one currently being checked.
    _diags.push_back(Diagnostic{_opIndex - 1, rule, std::move(message)});
}

Addr
StreamVerifier::chunkKey(const ir::MicroOp &op) const
{
    return op.chunkBase != 0 ? op.chunkBase : _options.layout.strip(op.addr);
}

Addr
StreamVerifier::elidedBaseOf(const ir::MicroOp &op) const
{
    using ir::OpKind;
    if (_options.elisionPlan == nullptr || _elidedOpen.empty())
        return 0;
    Addr base = 0;
    switch (op.kind) {
      case OpKind::kPacma:
      case OpKind::kBndstr:
      case OpKind::kBndclr:
      case OpKind::kAutm:
        base = chunkKey(op);
        break;
      case OpKind::kXpacm:
        base = _options.layout.strip(op.addr);
        break;
      case OpKind::kLoad:
      case OpKind::kStore:
        // Only provenance-tagged accesses attribute to a chunk; the
        // workload's untracked bookkeeping ops never do.
        base = op.chunkBase;
        break;
      default:
        return 0;
    }
    return base != 0 && _elidedOpen.count(base) != 0 ? base : 0;
}

void
StreamVerifier::trackElision(const ir::MicroOp &op)
{
    // Mirror AosBoundsElidePass: an instance's membership starts at its
    // kMallocMark and persists through the free event until the base is
    // reallocated, so the whole free quadruple of an elided chunk is
    // still attributed to it.
    if (op.kind != ir::OpKind::kMallocMark || op.chunkBase == 0)
        return;
    const u32 gen = ++_gen[op.chunkBase];
    if (_options.elisionPlan->elided(op.chunkBase, gen))
        _elidedOpen.insert(op.chunkBase);
    else
        _elidedOpen.erase(op.chunkBase);
}

void
StreamVerifier::flushLowering()
{
    if (!_pending)
        return;
    const Lowering &p = *_pending;
    if (p.isFree) {
        if (!p.sawBndclr || !p.sawXpacm || !p.sawResign) {
            report(RuleId::kFreeNotLowered, p.chunk,
                   "kFreeMark for chunk " + hex(p.chunk) + " at op " +
                       std::to_string(p.markIndex) +
                       " missing bndclr/xpacm/re-sign lowering");
        }
    } else {
        if (!p.sawPacma || !p.sawBndstr) {
            report(RuleId::kMallocNotLowered, p.chunk,
                   "kMallocMark for chunk " + hex(p.chunk) + " at op " +
                       std::to_string(p.markIndex) +
                       " missing pacma/bndstr lowering");
        }
    }
    _pending.reset();
}

void
StreamVerifier::checkFields(const ir::MicroOp &op)
{
    using ir::OpKind;
    if (op.isMem()) {
        if (op.addr == 0)
            report(RuleId::kMemMissingAddr, op.addr,
                   std::string(ir::opKindName(op.kind)) +
                       " carries no address");
        if (op.size == 0)
            report(RuleId::kMemMissingSize, op.addr,
                   std::string(ir::opKindName(op.kind)) +
                       " carries no access size");
    }
    if (op.kind == OpKind::kMallocMark &&
        (op.chunkBase == 0 || op.size == 0)) {
        report(RuleId::kAllocMarkMissingFields, op.chunkBase,
               "kMallocMark missing chunk base or size");
    }
    if (op.kind == OpKind::kFreeMark && op.chunkBase == 0) {
        report(RuleId::kAllocMarkMissingFields, op.chunkBase,
               "kFreeMark missing chunk base");
    }
    if (op.isBoundsOp() && !_options.layout.signed_(op.addr)) {
        report(RuleId::kBoundsOpUnsigned, chunkKey(op),
               std::string(ir::opKindName(op.kind)) +
                   " on unsigned pointer " + hex(op.addr));
    }
    if (op.kind == OpKind::kPhaseMark) {
        ++_phaseMarks;
        if (_phaseMarks > 1)
            report(RuleId::kPhaseImbalance, 0,
                   "more than one warmup/measure phase mark");
    }
}

void
StreamVerifier::checkElided(const ir::MicroOp &op)
{
    using ir::OpKind;
    const Addr base = elidedBaseOf(op);
    if (base == 0)
        return;

    switch (op.kind) {
      case OpKind::kPacma:
      case OpKind::kBndstr:
      case OpKind::kBndclr:
      case OpKind::kXpacm:
      case OpKind::kAutm:
        report(RuleId::kElidedResidualInstr, base,
               std::string(ir::opKindName(op.kind)) + " for elided chunk " +
                   hex(base) + " survived AosBoundsElidePass");
        break;

      case OpKind::kLoad:
      case OpKind::kStore: {
        const pa::PointerLayout &layout = _options.layout;
        if (layout.signed_(op.addr)) {
            report(RuleId::kElidedSignedAccess, base,
                   std::string(ir::opKindName(op.kind)) +
                       " to elided chunk " + hex(base) +
                       " still carries signed address " + hex(op.addr));
        }
        const Addr raw = layout.strip(op.addr);
        auto it = _gen.find(base);
        const analysis::dataflow::ProofObligation *ob =
            it == _gen.end()
                ? nullptr
                : _options.elisionPlan->find(base, it->second);
        if (ob == nullptr || raw < base || raw - base + op.size > ob->size) {
            report(RuleId::kElidedAccessOutOfPlan, base,
                   std::string(ir::opKindName(op.kind)) + " at " + hex(raw) +
                       " falls outside the proven extent of elided chunk " +
                       hex(base));
        }
        if (op.kind == OpKind::kLoad && op.loadsPointer) {
            report(RuleId::kElidedEscape, base,
                   "pointer load from elided chunk " + hex(base) +
                       " contradicts its non-escaping obligation");
        }
        break;
      }

      default:
        break;
    }
}

void
StreamVerifier::checkDataflow(const ir::MicroOp &op)
{
    using ir::OpKind;
    const pa::PointerLayout &layout = _options.layout;

    // Ops attributed to an elided instance are governed by the
    // SC15..SC18 contracts instead; any residual instrumentation has
    // already been reported there and must not corrupt the dataflow
    // state of live (non-elided) chunks.
    if (elidedBaseOf(op) != 0)
        return;

    switch (op.kind) {
      case OpKind::kPacma:
        if (op.chunkBase != 0)
            _signedPtrs[op.chunkBase] = op.addr;
        break;

      case OpKind::kBndstr: {
        const Addr key = chunkKey(op);
        if (!_liveBounds.insert(key).second) {
            report(RuleId::kDuplicateBndstr, key,
                   "bndstr for chunk " + hex(key) +
                       " whose bounds are already live");
        }
        if (op.chunkBase != 0 &&
            _signedPtrs.find(op.chunkBase) == _signedPtrs.end()) {
            // bndstr stores the signed pointer; remember it even if the
            // pacma was dropped (that omission is reported separately).
            _signedPtrs[op.chunkBase] = op.addr;
        }
        break;
      }

      case OpKind::kBndclr: {
        const Addr key = chunkKey(op);
        if (_liveBounds.erase(key) == 0) {
            report(RuleId::kUnpairedBndclr, key,
                   "bndclr for chunk " + hex(key) +
                       " with no live bounds (double/invalid free)");
        }
        break;
      }

      case OpKind::kLoad:
      case OpKind::kStore: {
        if (!layout.signed_(op.addr))
            break;
        if (op.chunkBase == 0) {
            report(RuleId::kSignedBeforeSign, 0,
                   "signed access " + hex(op.addr) +
                       " with no chunk provenance");
            break;
        }
        auto it = _signedPtrs.find(op.chunkBase);
        if (it == _signedPtrs.end()) {
            report(RuleId::kSignedBeforeSign, op.chunkBase,
                   "signed access to chunk " + hex(op.chunkBase) +
                       " before its pacma");
        } else if (layout.pac(op.addr) != layout.pac(it->second)) {
            report(RuleId::kPacMismatch, op.chunkBase,
                   "signed access " + hex(op.addr) + " carries PAC " +
                       std::to_string(layout.pac(op.addr)) +
                       " but chunk " + hex(op.chunkBase) +
                       " was signed with PAC " +
                       std::to_string(layout.pac(it->second)));
        } else if (_liveBounds.find(op.chunkBase) == _liveBounds.end()) {
            report(RuleId::kSignedAfterClear, op.chunkBase,
                   "signed access to chunk " + hex(op.chunkBase) +
                       " after its bndclr (static use-after-free)");
        }
        break;
      }

      case OpKind::kAutm: {
        const bool follows_load = _prevOp &&
                                  _prevOp->kind == OpKind::kLoad &&
                                  _prevOp->addr == op.addr;
        if (!follows_load) {
            report(RuleId::kAutmOrphan, layout.strip(op.addr),
                   "autm of " + hex(op.addr) +
                       " does not authenticate the preceding load");
        }
        break;
      }

      default:
        break;
    }
}

void
StreamVerifier::checkLowering(const ir::MicroOp &op)
{
    using ir::OpKind;
    switch (op.kind) {
      case OpKind::kMallocMark:
      case OpKind::kFreeMark: {
        flushLowering();
        if (_options.elisionPlan != nullptr &&
            _elidedOpen.count(op.chunkBase) != 0) {
            // Elided instance: the Fig. 7 sequence is intentionally
            // absent, so no lowering expectation is created.
            break;
        }
        Lowering pending;
        pending.markIndex = _opIndex - 1;
        pending.chunk = op.chunkBase;
        pending.isFree = op.kind == OpKind::kFreeMark;
        _pending = pending;
        break;
      }

      case OpKind::kPacma:
        if (_pending) {
            if (!_pending->isFree && op.chunkBase == _pending->chunk)
                _pending->sawPacma = true;
            else if (_pending->isFree && _pending->sawBndclr &&
                     _pending->sawXpacm)
                _pending->sawResign = true;
        }
        break;

      case OpKind::kBndstr:
        if (_pending && !_pending->isFree &&
            op.chunkBase == _pending->chunk) {
            _pending->sawBndstr = true;
        }
        break;

      case OpKind::kBndclr:
        if (_pending && _pending->isFree &&
            op.chunkBase == _pending->chunk) {
            _pending->sawBndclr = true;
        }
        break;

      case OpKind::kXpacm:
        if (_pending && _pending->isFree && _pending->sawBndclr)
            _pending->sawXpacm = true;
        break;

      default:
        break;
    }
}

void
StreamVerifier::observe(const ir::MicroOp &op)
{
    ++_opIndex;

    if (_options.requireLoweredIntrinsics &&
        (op.kind == ir::OpKind::kAosMallocIntr ||
         op.kind == ir::OpKind::kAosFreeIntr)) {
        report(RuleId::kIntrinsicSurvived, op.chunkBase,
               std::string(ir::opKindName(op.kind)) +
                   " survived the backend pass");
    }

    if (_options.elisionPlan != nullptr)
        trackElision(op);

    if (_options.checkFields)
        checkFields(op);
    if (_options.elisionPlan != nullptr)
        checkElided(op);
    if (_options.checkDataflow)
        checkDataflow(op);
    if (_options.requireAosLowering)
        checkLowering(op);

    _prevOp = op;
}

void
StreamVerifier::finish()
{
    if (_finished)
        return;
    _finished = true;
    if (_options.requireAosLowering)
        flushLowering();

    // One summary line per rule with suppressed repeats; these are
    // bookkeeping, not findings, so _totalDiags is left untouched.
    for (const auto &[rule, count] : _suppressed) {
        if (count == 0)
            continue;
        _diags.push_back(Diagnostic{
            _opIndex, rule,
            "suppressed " + std::to_string(count) +
                " further finding(s) across " +
                std::to_string(_distinctSites[rule]) + " distinct site(s)"});
    }
}

void
StreamVerifier::addStats(StatSet &set, const std::string &prefix) const
{
    set.scalar(prefix + "total") = static_cast<double>(_totalDiags);
    set.scalar(prefix + "suppressed") = static_cast<double>(_totalSuppressed);
    for (const auto &[rule, count] : _ruleCounts) {
        set.scalar(prefix + ruleId(rule) + "_" + ruleName(rule)) =
            static_cast<double>(count);
    }
}

std::vector<Diagnostic>
StreamVerifier::verify(ir::InstStream &stream, const VerifierOptions &options)
{
    StreamVerifier verifier(options);
    ir::MicroOp op;
    while (stream.next(op))
        verifier.observe(op);
    verifier.finish();
    return verifier.diagnostics();
}

std::vector<Diagnostic>
StreamVerifier::verify(const std::vector<ir::MicroOp> &ops,
                       const VerifierOptions &options)
{
    StreamVerifier verifier(options);
    for (const ir::MicroOp &op : ops)
        verifier.observe(op);
    verifier.finish();
    return verifier.diagnostics();
}

} // namespace aos::staticcheck
