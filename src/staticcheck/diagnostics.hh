/**
 * @file
 * Structured diagnostics for the micro-op static-analysis layer.
 *
 * The verifier never asserts: every violated invariant becomes a
 * Diagnostic carrying the op index where it was observed, a stable
 * rule id, and a human-readable message, so tests and tools can match
 * on rules and the system harness can expose per-rule counters.
 */

#ifndef AOS_STATICCHECK_DIAGNOSTICS_HH
#define AOS_STATICCHECK_DIAGNOSTICS_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace aos::staticcheck {

/**
 * Pipeline invariants enforced by the StreamVerifier. Rule ids are
 * stable identifiers (SC01..); tests match on the enum, reports print
 * the short id plus the descriptive name.
 */
enum class RuleId : u8
{
    kIntrinsicSurvived,   //!< SC01 aos_malloc/aos_free intrinsic survived
                          //!< the backend pass.
    kMallocNotLowered,    //!< SC02 kMallocMark without the Fig. 7a
                          //!< pacma+bndstr lowering sequence.
    kFreeNotLowered,      //!< SC03 kFreeMark without the Fig. 7b
                          //!< bndclr+xpacm+pacma lowering sequence.
    kDuplicateBndstr,     //!< SC04 bndstr for a chunk whose bounds are
                          //!< already live (no intervening bndclr).
    kUnpairedBndclr,      //!< SC05 bndclr with no live bounds for the
                          //!< chunk (static double/invalid free).
    kSignedBeforeSign,    //!< SC06 signed access before the owning
                          //!< pacma (or with no known provenance).
    kSignedAfterClear,    //!< SC07 signed access to a chunk after its
                          //!< bndclr (static use-after-free).
    kPacMismatch,         //!< SC08 signed access whose PAC differs from
                          //!< the owning chunk's signed pointer.
    kPhaseImbalance,      //!< SC09 more than one warmup/measure
                          //!< boundary mark in the stream.
    kMemMissingAddr,      //!< SC10 load/store carrying no address.
    kMemMissingSize,      //!< SC11 load/store carrying no access size.
    kAllocMarkMissingFields, //!< SC12 malloc/free marker without chunk
                             //!< base (or malloc without size).
    kBoundsOpUnsigned,    //!< SC13 bndstr/bndclr on an unsigned pointer.
    kAutmOrphan,          //!< SC14 autm not authenticating the
                          //!< immediately preceding load's value.
    kElidedResidualInstr, //!< SC15 pacma/bndstr/bndclr/autm survived
                          //!< inside an elided chunk's region.
    kElidedSignedAccess,  //!< SC16 access to an elided chunk still
                          //!< carries a signed address (not stripped).
    kElidedAccessOutOfPlan, //!< SC17 access to an elided chunk outside
                            //!< the obligation's proven object extent.
    kElidedEscape,        //!< SC18 pointer load from an elided chunk
                          //!< (the non-escaping assumption is false).
};

/** Number of distinct rules (for iteration in reports). */
inline constexpr unsigned kNumRules = 18;

/** Stable short id, e.g. "SC05". */
const char *ruleId(RuleId rule);

/** Descriptive kebab-case rule name, e.g. "unpaired-bndclr". */
const char *ruleName(RuleId rule);

/** One verifier finding. */
struct Diagnostic
{
    u64 opIndex = 0;     //!< Index of the offending op in the stream.
    RuleId rule = RuleId::kIntrinsicSurvived;
    std::string message; //!< Human-readable context.
};

/** "SC05 unpaired-bndclr @op 42: ..." single-line rendering. */
std::string toString(const Diagnostic &diag);

/** Render a whole report (one line per diagnostic). */
std::string toString(const std::vector<Diagnostic> &diags);

} // namespace aos::staticcheck

#endif // AOS_STATICCHECK_DIAGNOSTICS_HH
