/**
 * @file
 * StreamExecutor — a functional interpreter for lowered (instrumented)
 * micro-op streams.
 *
 * It executes exactly the architectural side of the new instructions —
 * bndstr inserts bounds into a private HBT, bndclr clears them, signed
 * loads/stores undergo the MCU bounds check, autm authenticates the
 * pointer value — and tallies the detections, with no timing model.
 *
 * Its purpose is differential security testing: two streams that claim
 * to be equivalent (e.g. before and after AosElidePass) must produce
 * identical detection profiles on the same attacks. The elision
 * soundness tests in tests/security_test.cc and
 * tests/differential_test.cc are built on this.
 */

#ifndef AOS_STATICCHECK_STREAM_EXECUTOR_HH
#define AOS_STATICCHECK_STREAM_EXECUTOR_HH

#include "bounds/hashed_bounds_table.hh"
#include "ir/micro_op.hh"
#include "pa/pointer_layout.hh"

namespace aos::staticcheck {

/** Architectural event counts from one stream execution. */
struct ExecStats
{
    u64 ops = 0;
    u64 autms = 0;            //!< autm instructions executed.
    u64 authFailures = 0;     //!< autm on an unsigned pointer.
    u64 checkedAccesses = 0;  //!< Signed loads/stores bounds-checked.
    u64 uncheckedAccesses = 0;
    u64 boundsViolations = 0; //!< Checks that found no covering bounds.
    u64 clearFailures = 0;    //!< bndclr double/invalid-free detections.
    u64 bndstrs = 0;
    u64 bndclrs = 0;

    /** Total security detections (what an attack must trip). */
    u64
    detections() const
    {
        return authFailures + boundsViolations + clearFailures;
    }

    /** Same detection profile, category by category. */
    bool
    sameDetections(const ExecStats &other) const
    {
        return authFailures == other.authFailures &&
               boundsViolations == other.boundsViolations &&
               clearFailures == other.clearFailures;
    }
};

class StreamExecutor
{
  public:
    explicit StreamExecutor(pa::PointerLayout layout,
                            unsigned initial_assoc = 1);

    /** Execute one op. */
    void step(const ir::MicroOp &op);

    /** Drain and execute a whole stream. */
    ExecStats run(ir::InstStream &stream);

    /** Execute a materialized op vector. */
    ExecStats run(const std::vector<ir::MicroOp> &ops);

    const ExecStats &stats() const { return _stats; }
    const bounds::HashedBoundsTable &hbt() const { return _hbt; }

    /** Mutable table access for fault-injection replays
     *  (ObligationChecker corrupts records in place). */
    bounds::HashedBoundsTable &mutableHbt() { return _hbt; }

  private:
    pa::PointerLayout _layout;
    bounds::HashedBoundsTable _hbt;
    ExecStats _stats;
};

} // namespace aos::staticcheck

#endif // AOS_STATICCHECK_STREAM_EXECUTOR_HH
