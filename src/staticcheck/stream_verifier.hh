/**
 * @file
 * StreamVerifier — a single-pass structural linter plus forward
 * dataflow checker over micro-op streams.
 *
 * The instrumentation passes (aos::compiler) rewrite workload streams
 * exactly as the paper's LLVM passes rewrite binaries; every figure we
 * reproduce trusts that rewrite. The verifier machine-checks the
 * pipeline contract after the fact:
 *
 *  structural rules — no aos intrinsic survives the backend pass, at
 *  most one warmup/measure phase mark, per-op field sanity (memory ops
 *  carry addresses and sizes, allocation markers carry chunk bases),
 *  bounds ops operate on signed pointers, autm authenticates the value
 *  the preceding load produced;
 *
 *  dataflow rules — bndstr/bndclr pair up per chunk, signed addresses
 *  only appear after the owning pacma and carry its PAC, and never
 *  after the chunk's bndclr (a *static* use-after-free of a signed
 *  value), every kMallocMark/kFreeMark is lowered to the Fig. 7
 *  sequences when the stream claims to be AOS-instrumented;
 *
 *  elision rules (SC15..SC18, active when options.elisionPlan is set) —
 *  a chunk instance the plan elides must carry *no* residual
 *  instrumentation, its accesses must be stripped and stay inside the
 *  obligation's proven extent, and no pointer load may touch it (the
 *  verified-stream side of the obligations the ObligationChecker
 *  replays dynamically).
 *
 * Violations are collected as structured diagnostics (see
 * diagnostics.hh), never asserts, so tests can probe individual rules
 * and the system harness can export per-rule counters. Repeated
 * findings of one (rule, site) pair are deduplicated and every rule
 * stores at most maxPerRuleSites distinct sites; suppressed repeats
 * are tallied and surface as one per-rule summary line at finish(), so
 * a pathological stream cannot flood O(ops) diagnostics.
 */

#ifndef AOS_STATICCHECK_STREAM_VERIFIER_HH
#define AOS_STATICCHECK_STREAM_VERIFIER_HH

#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/dataflow/elision_plan.hh"
#include "common/stats.hh"
#include "ir/micro_op.hh"
#include "pa/pointer_layout.hh"
#include "staticcheck/diagnostics.hh"

namespace aos::staticcheck {

/** What the verifier expects of the stream it is checking. */
struct VerifierOptions
{
    /** Layout used to decode PAC/AHC fields of addresses. */
    pa::PointerLayout layout = pa::PointerLayout();

    /**
     * The stream is post-backend: kAosMallocIntr/kAosFreeIntr must not
     * appear (SC01). Disable when verifying an opt-pass-only stream.
     */
    bool requireLoweredIntrinsics = true;

    /**
     * The stream is AOS-instrumented: every kMallocMark must be
     * followed by its pacma+bndstr and every kFreeMark by its
     * bndclr+xpacm+pacma before the next allocation event (SC02/SC03).
     * Leave off for Baseline/PA/Watchdog/ASan streams, whose markers
     * legitimately stay bare.
     */
    bool requireAosLowering = false;

    /** Enforce the signed-pointer dataflow rules (SC04..SC08, SC14). */
    bool checkDataflow = true;

    /** Enforce per-op field sanity (SC09..SC13). */
    bool checkFields = true;

    /**
     * Bounds-elision plan the stream was rewritten under; not owned.
     * When set, instances the plan elides are exempt from SC02/SC03
     * and the dataflow rules, and the SC15..SC18 elided-region
     * contracts are enforced instead.
     */
    const analysis::dataflow::ElisionPlan *elisionPlan = nullptr;

    /** Stop storing diagnostics past this many (counters keep going). */
    size_t maxDiagnostics = 1024;

    /** Distinct sites stored per rule; further sites are suppressed
     *  into the per-rule summary line. */
    size_t maxPerRuleSites = 8;
};

/** Single-pass verifier; feed ops with observe(), then call finish(). */
class StreamVerifier
{
  public:
    explicit StreamVerifier(VerifierOptions options = {});

    /** Check one op (call in stream order). */
    void observe(const ir::MicroOp &op);

    /** End-of-stream checks (unlowered trailing markers) plus the
     *  per-rule suppressed-count summary lines. */
    void finish();

    /** All findings so far (capped at options.maxDiagnostics). */
    const std::vector<Diagnostic> &diagnostics() const { return _diags; }

    /** True iff no rule fired. */
    bool clean() const { return _totalDiags == 0; }

    /** Total findings, including deduplicated and capped ones. */
    u64 totalDiagnostics() const { return _totalDiags; }

    /** Findings suppressed by (rule, site) dedup or the caps. */
    u64 suppressedDiagnostics() const { return _totalSuppressed; }

    /** Ops observed so far. */
    u64 opsObserved() const { return _opIndex; }

    /** Findings per rule (only rules that fired appear). */
    const std::map<RuleId, u64> &ruleCounts() const { return _ruleCounts; }

    /**
     * Export per-rule counters into @p set as
     * "<prefix><SCxx>_<rule-name>" scalars plus "<prefix>total".
     */
    void addStats(StatSet &set, const std::string &prefix = "verify_") const;

    /** Drain @p stream through a fresh verifier; return its findings. */
    static std::vector<Diagnostic> verify(ir::InstStream &stream,
                                          const VerifierOptions &options = {});

    /** Verify a materialized op vector. */
    static std::vector<Diagnostic> verify(const std::vector<ir::MicroOp> &ops,
                                          const VerifierOptions &options = {});

  private:
    /** Pending Fig. 7 lowering expectation for one allocation event. */
    struct Lowering
    {
        u64 markIndex = 0;
        Addr chunk = 0;
        bool isFree = false;
        bool sawPacma = false;
        bool sawBndstr = false;
        bool sawBndclr = false;
        bool sawXpacm = false;
        bool sawResign = false;
    };

    /** @p site identifies the finding's subject (chunk base, address)
     *  for dedup; repeats of one (rule, site) pair are suppressed. */
    void report(RuleId rule, Addr site, std::string message);
    void flushLowering();
    void checkFields(const ir::MicroOp &op);
    void checkDataflow(const ir::MicroOp &op);
    void checkLowering(const ir::MicroOp &op);
    void checkElided(const ir::MicroOp &op);

    /** Advance the elision-plan generation state (kMallocMark). */
    void trackElision(const ir::MicroOp &op);

    /** Chunk the op attributes to under the elision plan, or 0. */
    Addr elidedBaseOf(const ir::MicroOp &op) const;

    /** Chunk key for bounds ops: explicit chunkBase, else raw address. */
    Addr chunkKey(const ir::MicroOp &op) const;

    VerifierOptions _options;
    u64 _opIndex = 0;
    u64 _totalDiags = 0;
    u64 _totalSuppressed = 0;
    unsigned _phaseMarks = 0;
    bool _finished = false;
    std::optional<Lowering> _pending;
    std::optional<ir::MicroOp> _prevOp;

    // chunk base -> signed pointer of the chunk's most recent pacma.
    std::unordered_map<Addr, Addr> _signedPtrs;
    // chunks whose bounds are currently live (bndstr without bndclr).
    std::unordered_set<Addr> _liveBounds;

    // Elision-plan state: allocation ordinal per base and the bases
    // whose current instance the plan elides (mirrors the pass).
    std::unordered_map<Addr, u32> _gen;
    std::unordered_set<Addr> _elidedOpen;

    // (rule, site) -> occurrences; drives dedup and the summaries.
    std::map<std::pair<RuleId, Addr>, u64> _siteCounts;
    std::map<RuleId, u64> _storedSites;
    std::map<RuleId, u64> _distinctSites;
    std::map<RuleId, u64> _suppressed;

    std::vector<Diagnostic> _diags;
    std::map<RuleId, u64> _ruleCounts;
};

/**
 * InstStream adapter: forwards a source stream unchanged while feeding
 * every op through a verifier (the verify-after-instrument mode of
 * core::AosSystem). finish() is called when the source ends.
 */
class VerifyingStream : public ir::InstStream
{
  public:
    VerifyingStream(ir::InstStream *source, StreamVerifier *verifier)
        : _source(source), _verifier(verifier)
    {
    }

    bool
    next(ir::MicroOp &op) override
    {
        if (!_source->next(op)) {
            if (!_finished) {
                _finished = true;
                _verifier->finish();
            }
            return false;
        }
        _verifier->observe(op);
        return true;
    }

    std::string name() const override { return "verifying-stream"; }

  private:
    ir::InstStream *_source;
    StreamVerifier *_verifier;
    bool _finished = false;
};

} // namespace aos::staticcheck

#endif // AOS_STATICCHECK_STREAM_VERIFIER_HH
