/**
 * @file
 * ObligationChecker — dynamic validation of bounds-elision proof
 * obligations (DESIGN.md §11).
 *
 * AosBoundsElidePass removes instrumentation a static analysis proved
 * dead and records a ProofObligation per elided chunk. This checker is
 * the court where those proofs are tried: it replays the full and the
 * elided stream against the ground-truth StreamExecutor and the PR 3
 * fault-injection engine, and fails loudly if reality disagrees with
 * any recorded assumption. Three phases:
 *
 *  1. Benign parity — both streams execute under StreamExecutor; the
 *     per-category detection profile must be identical. Any attack the
 *     full stream detects, the elided stream must detect too.
 *
 *  2. Obligation replay — the full stream is re-executed op by op with
 *     detections attributed to chunk instances (base + generation). A
 *     detection attributed to an elided instance means an elided check
 *     WOULD have fired: the obligation's assumptions were wrong, and
 *     the obligation is reported violated.
 *
 *  3. Fault replay — the same deterministic FaultPlan is injected into
 *     both streams. Only ops bit-identical in both streams (recovered
 *     by a subsequence match) are exposed to the injector, indexed by
 *     their shared ordinal, so both runs schedule identical faults
 *     onto identical victims. Gates: no simulator faults; no pointer
 *     fault in the elided run may land on an op inside an elided
 *     region (elided accesses are unsigned, so they carry no signature
 *     to corrupt — a victim there means the
 *     pass failed to strip); and per fault type the elided run must
 *     detect at least as many faults as the full run. The elided HBT
 *     holds a subset of the full run's records, so a corrupted pointer
 *     has fewer rows to collide with — detections can only stay equal
 *     or improve; a regression means an elided check was load-bearing.
 */

#ifndef AOS_STATICCHECK_OBLIGATION_CHECKER_HH
#define AOS_STATICCHECK_OBLIGATION_CHECKER_HH

#include <string>
#include <vector>

#include "analysis/dataflow/elision_plan.hh"
#include "faultinject/fault.hh"
#include "ir/micro_op.hh"
#include "pa/pointer_layout.hh"
#include "staticcheck/stream_executor.hh"

namespace aos::staticcheck {

/** Checker configuration. */
struct ObligationCheckOptions
{
    pa::PointerLayout layout = pa::PointerLayout();

    /** Run phase 3 (fault replay) in addition to phases 1-2. */
    bool checkFaults = true;

    /**
     * Fault classes injected in phase 3. Defaults to the pointer-fault
     * classes, the ones for which the monotonicity gate is sound: both
     * runs corrupt the same shared victims, and the elided HBT holds a
     * subset of the full run's records, so a corrupted pointer has
     * fewer rows to collide with — detections can only stay equal or
     * improve. Table-domain faults (e.g. kHbtLineZap) are deliberately
     * excluded: zapping a line that holds only an elided chunk's
     * record raises a detection in the full run with no elided
     * counterpart — a removed record, not a lost protection.
     */
    u32 faultTypes = faultinject::kPointerFaults;

    unsigned faultsPerType = 4;
    u64 faultSeed = 0xa05b0071u;
};

/** Everything the checker concluded, plus the evidence. */
struct ObligationReport
{
    bool ok = false;

    // Phase 1: benign detection parity.
    bool benignParity = false;
    ExecStats fullStats;
    ExecStats elidedStats;

    // Phase 2: per-obligation replay.
    u64 obligationsChecked = 0;
    u64 obligationsViolated = 0;

    // Phase 3: fault replay.
    bool faultsChecked = false;
    bool faultParity = false;
    u64 faultsInjectedFull = 0;
    u64 faultsInjectedElided = 0;
    u64 faultsDetectedFull = 0;
    u64 faultsDetectedElided = 0;
    u64 victimsInElidedRegions = 0; //!< Must stay 0.
    u64 simulatorFaults = 0;        //!< Must stay 0.

    /** Per-fault-type breakdown of each run, for parity tables. */
    faultinject::FaultStats fullFaultStats;
    faultinject::FaultStats elidedFaultStats;

    /** Human-readable reasons for every failed gate. */
    std::vector<std::string> failures;

    /** One-line verdict for logs. */
    std::string summary() const;
};

class ObligationChecker
{
  public:
    explicit ObligationChecker(ObligationCheckOptions options = {});

    /**
     * Try the plan's obligations against reality. @p full is the
     * instrumented stream before AosBoundsElidePass, @p elided the
     * stream after it; both fully lowered.
     */
    ObligationReport check(const std::vector<ir::MicroOp> &full,
                           const std::vector<ir::MicroOp> &elided,
                           const analysis::dataflow::ElisionPlan &plan);

  private:
    void replayObligations(const std::vector<ir::MicroOp> &full,
                           const analysis::dataflow::ElisionPlan &plan,
                           ObligationReport &report);
    void replayFaults(const std::vector<ir::MicroOp> &full,
                      const std::vector<ir::MicroOp> &elided,
                      const analysis::dataflow::ElisionPlan &plan,
                      ObligationReport &report);

    ObligationCheckOptions _options;
};

} // namespace aos::staticcheck

#endif // AOS_STATICCHECK_OBLIGATION_CHECKER_HH
