/**
 * @file
 * Forward abstract-interpretation engine over aos::ir::InstStream
 * (DESIGN.md §11).
 *
 * The engine makes one forward pass over a micro-op stream and folds
 * every op through the three abstract domains (domains.hh), producing
 * one ChunkSummary per chunk *instance* (base address + generation:
 * fastbin reuse means a base names a timeline of objects).
 *
 * It interprets both source-level streams (kMallocMark/kFreeMark plus
 * raw accesses, as SyntheticWorkload emits them) and lowered streams
 * (intrinsics and autm ops are attributed too). Because every workload
 * stream in this repo is a pure function of (profile, measureOps,
 * seedSalt), AosSystem can run the engine on a regenerated duplicate
 * stream and obtain an *exact* model of the stream the pipeline will
 * see — the "whole program" of this simulator. Front-ends with real
 * control flow would instead run the engine per path and join() the
 * summaries; the domains support that, the streams here don't need it.
 *
 * Escape events observable in this IR are pointer loads
 * (MicroOp::loadsPointer) and unknown-provenance aliasing (an access
 * with chunkBase == 0 whose address lands inside a live chunk). The
 * store-to-memory and call transfers of EscapeState exist for richer
 * front-ends; Options::escapeOpenChunksOnCall gives the maximally
 * conservative call treatment for callers that want it.
 */

#ifndef AOS_ANALYSIS_DATAFLOW_ENGINE_HH
#define AOS_ANALYSIS_DATAFLOW_ENGINE_HH

#include <map>
#include <unordered_map>
#include <vector>

#include "analysis/dataflow/domains.hh"
#include "common/cancel.hh"
#include "ir/micro_op.hh"
#include "pa/pointer_layout.hh"

namespace aos::analysis::dataflow {

/** Everything the engine learned about one chunk instance. */
struct ChunkSummary
{
    ChunkId id;
    u64 size = 0;         //!< Requested allocation size in bytes.
    u64 mallocOp = 0;     //!< Op index of the allocation marker.
    u64 freeOp = 0;       //!< Op index of the free marker (if freed).
    u64 lastOp = 0;       //!< Last op index attributed to this instance.
    u64 accesses = 0;     //!< Loads/stores attributed while live.
    u64 pointerLoads = 0; //!< Subset of accesses with loadsPointer.
    u64 autms = 0;        //!< autm ops attributed (lowered streams).
    u32 freeCount = 0;    //!< >1 means double free.
    u64 accessesAfterFree = 0; //!< Temporal violations (UAF).
    bool allInBounds = true;   //!< Every access spatially proven.
    EscapeState escape;
    OffsetRange range;
};

/** Forward dataflow over a micro-op stream. */
class DataflowEngine
{
  public:
    struct Options
    {
        /** Treat every kCall as escaping all live chunks (the most
         *  conservative call transfer; off for this repo's IR). */
        bool escapeOpenChunksOnCall = false;
    };

    explicit DataflowEngine(const pa::PointerLayout &layout);
    DataflowEngine(const pa::PointerLayout &layout, Options options);

    /** Transfer one op through all domains. */
    void step(const ir::MicroOp &op);

    /**
     * Drain @p stream through step(). Polls @p cancel periodically so
     * campaign jobs stay preemptible. Returns ops consumed.
     */
    u64 run(ir::InstStream &stream, const CancelToken *cancel = nullptr);

    /** All chunk instances, in allocation order. */
    const std::vector<ChunkSummary> &summaries() const
    {
        return _summaries;
    }

    /** The live (not yet freed) instance at @p base, or nullptr. */
    const ChunkSummary *current(Addr base) const;

    /** Provenance of @p addr under the current heap state. */
    ProvenanceValue provenanceOf(Addr addr) const;

    u64 opsSeen() const { return _opIndex; }
    u64 invalidFrees() const { return _invalidFrees; }
    u64 orphanAccesses() const { return _orphanAccesses; }

  private:
    void onMalloc(const ir::MicroOp &op);
    void onFree(const ir::MicroOp &op);
    void onAccess(const ir::MicroOp &op);
    void onAutm(const ir::MicroOp &op);

    ChunkSummary *openAt(Addr base);
    /** Summary index of the live chunk whose extent covers @p raw. */
    size_t coveringIndex(Addr raw) const;

    const pa::PointerLayout &_layout;
    Options _options;

    std::vector<ChunkSummary> _summaries;
    std::unordered_map<Addr, u32> _gen;       //!< Next-gen per base.
    std::unordered_map<Addr, size_t> _open;   //!< base -> live summary.
    std::unordered_map<Addr, size_t> _last;   //!< base -> latest summary.
    /** Live extents for alias lookup: base -> (end, summary index). */
    std::map<Addr, std::pair<Addr, size_t>> _extents;

    u64 _opIndex = 0;
    u64 _invalidFrees = 0;   //!< Frees of never-allocated bases.
    u64 _orphanAccesses = 0; //!< chunkBase names no known instance.
};

} // namespace aos::analysis::dataflow

#endif // AOS_ANALYSIS_DATAFLOW_ENGINE_HH
