#include "analysis/dataflow/engine.hh"

#include "bounds/compression.hh"

namespace aos::analysis::dataflow {

namespace {

/** Cancellation-poll stride inside run(); power of two. */
constexpr u64 kCancelStride = 4096;

} // namespace

DataflowEngine::DataflowEngine(const pa::PointerLayout &layout)
    : DataflowEngine(layout, Options())
{
}

DataflowEngine::DataflowEngine(const pa::PointerLayout &layout,
                               Options options)
    : _layout(layout), _options(options)
{
}

ChunkSummary *
DataflowEngine::openAt(Addr base)
{
    auto it = _open.find(base);
    return it == _open.end() ? nullptr : &_summaries[it->second];
}

size_t
DataflowEngine::coveringIndex(Addr raw) const
{
    // _extents is keyed by base: the candidate is the greatest base
    // <= raw; it covers raw iff raw < its recorded end.
    auto it = _extents.upper_bound(raw);
    if (it == _extents.begin())
        return _summaries.size();
    --it;
    if (raw >= it->first && raw < it->second.first)
        return it->second.second;
    return _summaries.size();
}

void
DataflowEngine::onMalloc(const ir::MicroOp &op)
{
    const Addr base = op.chunkBase;
    if (base == 0)
        return;
    // A re-allocation at a still-open base means the allocator model
    // and the stream disagree; close the stale instance defensively.
    if (ChunkSummary *stale = openAt(base)) {
        stale->escape.onUnknownAlias();
        _open.erase(base);
        _extents.erase(base);
    }

    ChunkSummary sum;
    sum.id = ChunkId{base, ++_gen[base]};
    sum.size = op.size;
    sum.mallocOp = _opIndex;
    sum.lastOp = _opIndex;
    sum.range.setWidenLimit(sum.size);

    const size_t idx = _summaries.size();
    _summaries.push_back(sum);
    _open[base] = idx;
    _last[base] = idx;
    if (sum.size)
        _extents[base] = {base + sum.size, idx};
}

void
DataflowEngine::onFree(const ir::MicroOp &op)
{
    const Addr base = op.chunkBase;
    if (base == 0)
        return;
    if (ChunkSummary *sum = openAt(base)) {
        ++sum->freeCount;
        sum->freeOp = _opIndex;
        sum->lastOp = _opIndex;
        _open.erase(base);
        _extents.erase(base);
        return;
    }
    auto it = _last.find(base);
    if (it != _last.end()) {
        // Freeing a base whose instance is already closed: the second
        // free of a double-free pair, attributed to the latest
        // instance so the plan rejects it as temporally unsafe.
        ChunkSummary &sum = _summaries[it->second];
        ++sum.freeCount;
        sum.lastOp = _opIndex;
        return;
    }
    ++_invalidFrees;
}

void
DataflowEngine::onAccess(const ir::MicroOp &op)
{
    const Addr raw = _layout.strip(op.addr);

    if (op.chunkBase == 0) {
        // Unknown provenance: if the access lands inside a live chunk,
        // that chunk is aliased by a pointer the analysis cannot see.
        const size_t idx = coveringIndex(raw);
        if (idx < _summaries.size()) {
            _summaries[idx].escape.onUnknownAlias();
            _summaries[idx].lastOp = _opIndex;
        }
        return;
    }

    ChunkSummary *sum = openAt(op.chunkBase);
    if (sum == nullptr) {
        auto it = _last.find(op.chunkBase);
        if (it == _last.end()) {
            ++_orphanAccesses;
            return;
        }
        // Access attributed to a freed instance: use-after-free.
        ChunkSummary &stale = _summaries[it->second];
        ++stale.accessesAfterFree;
        stale.lastOp = _opIndex;
        return;
    }

    ++sum->accesses;
    sum->lastOp = _opIndex;
    if (op.loadsPointer) {
        ++sum->pointerLoads;
        sum->escape.onPointerLoaded();
    }

    // Spatial verdict: the access must sit inside the requested object
    // *and* inside the compressed HBT record the ground-truth executor
    // would check against (the latter is what determines whether an
    // elided bndstr/check pair could ever have fired).
    const u64 bytes = op.size ? op.size : 1;
    bool inb = raw >= sum->id.base;
    if (inb) {
        const u64 off = raw - sum->id.base;
        sum->range.observe(off, bytes);
        inb = off + bytes <= sum->size &&
              bounds::inBounds(
                  bounds::compress(sum->id.base, sum->size), raw);
    }
    if (!inb)
        sum->allInBounds = false;
}

void
DataflowEngine::onAutm(const ir::MicroOp &op)
{
    if (op.chunkBase == 0)
        return;
    if (ChunkSummary *sum = openAt(op.chunkBase)) {
        ++sum->autms;
        sum->lastOp = _opIndex;
    }
}

void
DataflowEngine::step(const ir::MicroOp &op)
{
    switch (op.kind) {
      case ir::OpKind::kMallocMark:
      case ir::OpKind::kAosMallocIntr:
        onMalloc(op);
        break;
      case ir::OpKind::kFreeMark:
      case ir::OpKind::kAosFreeIntr:
        onFree(op);
        break;
      case ir::OpKind::kLoad:
      case ir::OpKind::kStore:
        onAccess(op);
        break;
      case ir::OpKind::kAutm:
        onAutm(op);
        break;
      case ir::OpKind::kCall:
        if (_options.escapeOpenChunksOnCall) {
            for (auto &[base, idx] : _open)
                _summaries[idx].escape.onPassedThroughCall();
        }
        break;
      default:
        break;
    }
    ++_opIndex;
}

u64
DataflowEngine::run(ir::InstStream &stream, const CancelToken *cancel)
{
    ir::MicroOp op;
    u64 consumed = 0;
    while (stream.next(op)) {
        if (cancel && (consumed & (kCancelStride - 1)) == 0)
            cancel->throwIfCancelled();
        step(op);
        ++consumed;
    }
    return consumed;
}

const ChunkSummary *
DataflowEngine::current(Addr base) const
{
    auto it = _open.find(base);
    return it == _open.end() ? nullptr : &_summaries[it->second];
}

ProvenanceValue
DataflowEngine::provenanceOf(Addr addr) const
{
    const size_t idx = coveringIndex(_layout.strip(addr));
    if (idx >= _summaries.size())
        return ProvenanceValue::unknown();
    return ProvenanceValue::chunk(_summaries[idx].id);
}

} // namespace aos::analysis::dataflow
