#include "analysis/dataflow/elision_plan.hh"

namespace aos::analysis::dataflow {

ElisionPlan
planBoundsElision(const DataflowEngine &engine)
{
    ElisionPlan plan;
    PlanStats &st = plan._stats;

    for (const ChunkSummary &sum : engine.summaries()) {
        ++st.chunksSeen;

        // Each reject counter names the *first* failed assumption, so
        // the counters partition the rejected set.
        if (sum.size == 0) {
            ++st.rejectZeroSize;
            continue;
        }
        if (sum.escape.escaped()) {
            ++st.rejectEscaped;
            continue;
        }
        if (sum.freeCount > 1 || sum.accessesAfterFree > 0) {
            ++st.rejectTemporal;
            continue;
        }
        if (sum.range.widened()) {
            ++st.rejectWidened;
            continue;
        }
        if (!sum.allInBounds || !sum.range.withinSize(sum.size)) {
            ++st.rejectOutOfBounds;
            continue;
        }

        ProofObligation ob;
        ob.chunk = sum.id;
        ob.size = sum.size;
        ob.assumptions = kNonEscaping | kInBounds | kTemporalSafe;
        ob.firstOp = sum.mallocOp;
        ob.lastOp = sum.lastOp;
        ob.accesses = sum.accesses;
        if (!sum.range.empty()) {
            ob.minOff = sum.range.lo();
            ob.maxOff = sum.range.hi();
        }
        plan._byChunk[{sum.id.base, sum.id.gen}] =
            plan._obligations.size();
        plan._obligations.push_back(ob);
        ++st.chunksElided;
    }
    return plan;
}

} // namespace aos::analysis::dataflow
