/**
 * @file
 * The three composable abstract domains of the dataflow layer
 * (DESIGN.md §11).
 *
 * Each domain is a small value type with the classic abstract-
 * interpretation interface — a partial order induced by join(), a
 * widening operator where the lattice has unbounded height, and
 * transfer functions for the events the micro-op IR can express:
 *
 *   ProvenanceValue  which live chunk an address derives from. A flat
 *                    lattice (bottom < one ChunkId < top): joining two
 *                    different chunks loses the provenance, exactly as
 *                    a phi over two pointers does in an SSA IR.
 *
 *   EscapeState      has a pointer into the chunk escaped the scope the
 *                    analysis can see — stored to memory, loaded back
 *                    as a pointer value, passed through a call, or
 *                    aliased by an access with no provenance. A
 *                    two-point lattice (local < escaped); every
 *                    transfer is monotone towards escaped.
 *
 *   OffsetRange      interval of (addr - chunkBase) over the chunk's
 *                    accesses. Joins take the convex hull; widening
 *                    caps the number of hull extensions so a pointer
 *                    walked in a loop converges to [0, limit) instead
 *                    of growing one lattice step per iteration.
 *
 * The DataflowEngine (engine.hh) instantiates all three per chunk;
 * AosBoundsElidePass consumes the combined result. The domains carry
 * no engine state so they can be unit-tested in isolation
 * (tests/dataflow_analysis_test.cc) and reused by future analyses
 * (the shadow-memory backend's GEP-check insertion).
 */

#ifndef AOS_ANALYSIS_DATAFLOW_DOMAINS_HH
#define AOS_ANALYSIS_DATAFLOW_DOMAINS_HH

#include <algorithm>

#include "common/types.hh"

namespace aos::analysis::dataflow {

/** Identity of one chunk *instance*: allocator bases are reused, so a
 *  base alone names a timeline of objects, not an object. */
struct ChunkId
{
    Addr base = 0;
    u32 gen = 0; //!< 1-based malloc ordinal for this base.

    bool
    operator==(const ChunkId &other) const
    {
        return base == other.base && gen == other.gen;
    }
    bool operator!=(const ChunkId &other) const { return !(*this == other); }
};

/** Flat provenance lattice: bottom < chunk(id) < top. */
class ProvenanceValue
{
  public:
    /** Bottom: no information yet (unreached / undefined value). */
    static ProvenanceValue bottom() { return ProvenanceValue(kBottom, {}); }

    /** A single known chunk instance. */
    static ProvenanceValue
    chunk(ChunkId id)
    {
        return ProvenanceValue(kChunk, id);
    }

    /** Top: derived from more than one chunk, or from outside. */
    static ProvenanceValue unknown() { return ProvenanceValue(kTop, {}); }

    bool isBottom() const { return _state == kBottom; }
    bool isChunk() const { return _state == kChunk; }
    bool isUnknown() const { return _state == kTop; }

    /** The chunk id; only meaningful when isChunk(). */
    const ChunkId &id() const { return _id; }

    /** Least upper bound of the flat lattice. */
    ProvenanceValue
    join(const ProvenanceValue &other) const
    {
        if (isBottom())
            return other;
        if (other.isBottom())
            return *this;
        if (isChunk() && other.isChunk() && _id == other._id)
            return *this;
        return unknown();
    }

    /**
     * Transfer: pointer arithmetic on a value keeps its provenance
     * (an offset off a chunk pointer still points "at" that chunk for
     * the purposes of bounds attribution).
     */
    ProvenanceValue transferArith() const { return *this; }

    /** Transfer: a value loaded from untracked memory is unknown. */
    static ProvenanceValue transferLoadUntracked() { return unknown(); }

    bool
    operator==(const ProvenanceValue &other) const
    {
        return _state == other._state &&
               (_state != kChunk || _id == other._id);
    }

  private:
    enum State : u8 { kBottom, kChunk, kTop };

    ProvenanceValue(State state, ChunkId id) : _state(state), _id(id) {}

    State _state;
    ChunkId _id;
};

/** Two-point escape lattice: local < escaped (monotone). */
class EscapeState
{
  public:
    /** Why a chunk escaped (first cause wins; reporting only). */
    enum class Cause : u8
    {
        kNone,          //!< Still local.
        kPointerLoaded, //!< A pointer value was loaded out of the chunk.
        kStoredToMemory,//!< A pointer into the chunk was stored.
        kCall,          //!< A pointer into the chunk crossed a call.
        kUnknownAlias,  //!< An access with no provenance hit the chunk.
    };

    bool escaped() const { return _cause != Cause::kNone; }
    Cause cause() const { return _cause; }

    /** Join = logical or (keeps the earlier cause). */
    EscapeState
    join(const EscapeState &other) const
    {
        return escaped() ? *this : other;
    }

    // Monotone transfer functions, one per observable escape event.
    void onPointerLoaded() { escape(Cause::kPointerLoaded); }
    void onStoredToMemory() { escape(Cause::kStoredToMemory); }
    void onPassedThroughCall() { escape(Cause::kCall); }
    void onUnknownAlias() { escape(Cause::kUnknownAlias); }

  private:
    void
    escape(Cause cause)
    {
        if (_cause == Cause::kNone)
            _cause = cause;
    }

    Cause _cause = Cause::kNone;
};

/** Interval domain over chunk-relative byte offsets, with widening. */
class OffsetRange
{
  public:
    /** Hull extensions tolerated before widen() fires automatically. */
    static constexpr unsigned kWidenThreshold = 64;

    bool empty() const { return _empty; }
    u64 lo() const { return _lo; }
    u64 hi() const { return _hi; } //!< Inclusive upper offset.
    bool widened() const { return _widened; }

    /** Transfer: observe an access of @p bytes at offset @p offset. */
    void
    observe(u64 offset, u64 bytes)
    {
        const u64 last = offset + (bytes ? bytes - 1 : 0);
        if (_empty) {
            _empty = false;
            _lo = offset;
            _hi = last;
            return;
        }
        if (offset >= _lo && last <= _hi)
            return; // Inside: no lattice step.
        _lo = std::min(_lo, offset);
        _hi = std::max(_hi, last);
        if (++_growths >= kWidenThreshold)
            widen(_widenLimit);
    }

    /** Join = convex hull (counts as one growth if it extends). */
    OffsetRange
    join(const OffsetRange &other) const
    {
        if (_empty)
            return other;
        if (other._empty)
            return *this;
        OffsetRange out = *this;
        if (other._lo < out._lo || other._hi > out._hi) {
            out._lo = std::min(out._lo, other._lo);
            out._hi = std::max(out._hi, other._hi);
            if (++out._growths >= kWidenThreshold)
                out.widen(out._widenLimit);
        }
        out._widened = out._widened || other._widened;
        return out;
    }

    /**
     * Widening: give up on precision and jump to [0, limit). Called
     * automatically after kWidenThreshold hull extensions, or manually
     * by an engine that knows the chunk extent.
     */
    void
    widen(u64 limit)
    {
        _empty = false;
        _widened = true;
        _lo = 0;
        _hi = limit ? limit - 1 : 0;
    }

    /** Set the limit automatic widening jumps to (the chunk extent). */
    void setWidenLimit(u64 limit) { _widenLimit = limit; }

    bool
    contains(u64 offset) const
    {
        return !_empty && offset >= _lo && offset <= _hi;
    }

    /** True iff every observed offset fits an object of @p size bytes. */
    bool
    withinSize(u64 size) const
    {
        return _empty || _hi < size;
    }

  private:
    bool _empty = true;
    bool _widened = false;
    u64 _lo = 0;
    u64 _hi = 0;
    u64 _widenLimit = 0;
    unsigned _growths = 0;
};

} // namespace aos::analysis::dataflow

#endif // AOS_ANALYSIS_DATAFLOW_DOMAINS_HH
