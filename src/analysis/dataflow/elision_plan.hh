/**
 * @file
 * Proof-carrying bounds-elision planning (DESIGN.md §11).
 *
 * planBoundsElision() turns the DataflowEngine's chunk summaries into
 * an ElisionPlan: the set of chunk instances whose AOS instrumentation
 * quadruple (pacma / bndstr / bndclr / autm) may be dropped, plus one
 * ProofObligation per elided instance recording *why* dropping it is
 * sound. A chunk is elided only when every assumption below is proven
 * by the analysis:
 *
 *   kNonEscaping   no pointer into the chunk escaped the analysable
 *                  scope (no pointer-valued loads from it, no
 *                  unknown-provenance access aliased it);
 *   kInBounds      every attributed access lies inside the requested
 *                  object and inside the compressed HBT record the
 *                  ground-truth executor would have checked, with the
 *                  offset interval never widened (no precision loss);
 *   kTemporalSafe  at most one free, and no access attributed after
 *                  the free.
 *
 * Under these assumptions the elided checks are dead: they could never
 * have fired in the ground-truth execution, so removing them cannot
 * remove a detection. The obligations are not trusted — the
 * staticcheck::ObligationChecker replays each one against the
 * StreamExecutor and the fault-injection engine and fails loudly if
 * any assumption does not hold dynamically.
 */

#ifndef AOS_ANALYSIS_DATAFLOW_ELISION_PLAN_HH
#define AOS_ANALYSIS_DATAFLOW_ELISION_PLAN_HH

#include <map>
#include <utility>
#include <vector>

#include "analysis/dataflow/engine.hh"

namespace aos::analysis::dataflow {

/** Assumption kinds a ProofObligation can carry (bitmask). */
enum Assumption : u32
{
    kNonEscaping = 1u << 0,
    kInBounds = 1u << 1,
    kTemporalSafe = 1u << 2,
};

/** One elided site: what was assumed, and where it applies. */
struct ProofObligation
{
    ChunkId chunk;
    u64 size = 0;        //!< Requested object size in bytes.
    u32 assumptions = 0; //!< Assumption bits proven for this chunk.
    u64 firstOp = 0;     //!< Op index of the allocation marker.
    u64 lastOp = 0;      //!< Last op index attributed to the instance.
    u64 accesses = 0;    //!< Accesses the in-bounds proof covers.
    u64 minOff = 0;      //!< Observed offset interval (inclusive)...
    u64 maxOff = 0;      //!< ...meaningless when accesses == 0.
};

/** Why chunks were (not) elided; feeds the belide_* stats. */
struct PlanStats
{
    u64 chunksSeen = 0;
    u64 chunksElided = 0;
    u64 rejectEscaped = 0;
    u64 rejectOutOfBounds = 0;
    u64 rejectWidened = 0;
    u64 rejectTemporal = 0;
    u64 rejectZeroSize = 0;

    double
    elisionRate() const
    {
        return chunksSeen ? static_cast<double>(chunksElided) / chunksSeen
                          : 0.0;
    }
};

/** The pass-facing result: per-instance elision verdicts. */
class ElisionPlan
{
  public:
    bool
    elided(Addr base, u32 gen) const
    {
        return _byChunk.count({base, gen}) != 0;
    }

    /** The obligation for (base, gen), or nullptr if not elided. */
    const ProofObligation *
    find(Addr base, u32 gen) const
    {
        auto it = _byChunk.find({base, gen});
        return it == _byChunk.end() ? nullptr
                                    : &_obligations[it->second];
    }

    const std::vector<ProofObligation> &obligations() const
    {
        return _obligations;
    }

    const PlanStats &stats() const { return _stats; }
    bool empty() const { return _obligations.empty(); }

  private:
    friend ElisionPlan planBoundsElision(const DataflowEngine &engine);

    std::vector<ProofObligation> _obligations;
    std::map<std::pair<Addr, u32>, size_t> _byChunk;
    PlanStats _stats;
};

/** Decide elision for every chunk instance the engine summarized. */
ElisionPlan planBoundsElision(const DataflowEngine &engine);

} // namespace aos::analysis::dataflow

#endif // AOS_ANALYSIS_DATAFLOW_ELISION_PLAN_HH
