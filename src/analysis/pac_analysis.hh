/**
 * @file
 * Closed-form security and capacity analysis for PAC-indexed bounds
 * (paper SVI and SVII-E).
 *
 * Three questions the paper answers with these models:
 *
 *  1. How hard is PAC forging? With a b-bit PAC, an attacker needs
 *     ~ln(1-p)/ln(1-2^-b) guesses for success probability p — the
 *     paper cites 45425 attempts for 50% with 16-bit PACs, and any
 *     failed guess raises an AOS exception.
 *  2. How full do HBT rows get? With n live objects hashed uniformly
 *     into 2^b rows, row occupancy is ~Poisson(n/2^b); the probability
 *     that some row overflows a capacity of c records predicts when
 *     gradual resizing triggers (SIX-A.1).
 *  3. What is the false-positive rate? A stale/forged pointer passes
 *     only if it collides in PAC *and* lands inside a live record's
 *     33-bit truncated bounds.
 */

#ifndef AOS_ANALYSIS_PAC_ANALYSIS_HH
#define AOS_ANALYSIS_PAC_ANALYSIS_HH

#include "common/types.hh"

namespace aos::analysis {

/** Probability that one random PAC guess is correct. */
double pacGuessProb(unsigned pac_bits);

/**
 * Number of independent guesses needed to reach success probability
 * @p target (paper: 45425 for 50% at 16 bits).
 */
u64 attemptsForGuessProbability(unsigned pac_bits, double target);

/** Poisson P(X = k) with mean @p lambda. */
double poissonPmf(double lambda, unsigned k);

/** Poisson P(X > capacity) with mean @p lambda. */
double poissonTail(double lambda, unsigned capacity);

/**
 * Expected number of HBT rows whose occupancy exceeds @p row_capacity
 * when @p live_objects hash uniformly into 2^pac_bits rows.
 */
double expectedOverflowingRows(u64 live_objects, unsigned pac_bits,
                               unsigned row_capacity);

/**
 * Smallest row associativity (power of two, with @p records_per_way
 * records per way) for which fewer than @p tolerance rows are expected
 * to overflow — i.e. the table size gradual resizing converges to.
 */
unsigned predictedAssociativity(u64 live_objects, unsigned pac_bits,
                                unsigned records_per_way,
                                double tolerance = 0.5);

/**
 * Probability that a random wild pointer (attacker-controlled address
 * with a guessed PAC) passes bounds checking, given @p live_objects
 * live records of average size @p avg_object_bytes: it must match a
 * PAC (2^-b) and fall inside one of that row's records within the
 * 2^33-byte truncated address space.
 */
double wildPointerEscapeProb(u64 live_objects, unsigned pac_bits,
                             double avg_object_bytes);

} // namespace aos::analysis

#endif // AOS_ANALYSIS_PAC_ANALYSIS_HH
