#include "analysis/pac_analysis.hh"

#include <cmath>

#include "common/logging.hh"

namespace aos::analysis {

double
pacGuessProb(unsigned pac_bits)
{
    return std::ldexp(1.0, -static_cast<int>(pac_bits));
}

u64
attemptsForGuessProbability(unsigned pac_bits, double target)
{
    fatal_if(target <= 0.0 || target >= 1.0,
             "target probability must be in (0, 1)");
    const double q = 1.0 - pacGuessProb(pac_bits);
    // Floored, matching the paper's arithmetic (45425 for 16 bits at
    // 50%): the count of attempts the attacker completes while the
    // success probability is still below the target.
    return static_cast<u64>(
        std::floor(std::log(1.0 - target) / std::log(q)));
}

double
poissonPmf(double lambda, unsigned k)
{
    // exp(-lambda + k ln lambda - ln k!) for numerical stability.
    if (lambda == 0.0)
        return k == 0 ? 1.0 : 0.0;
    return std::exp(-lambda + k * std::log(lambda) -
                    std::lgamma(static_cast<double>(k) + 1.0));
}

double
poissonTail(double lambda, unsigned capacity)
{
    double cdf = 0.0;
    for (unsigned k = 0; k <= capacity; ++k)
        cdf += poissonPmf(lambda, k);
    return std::max(0.0, 1.0 - cdf);
}

double
expectedOverflowingRows(u64 live_objects, unsigned pac_bits,
                        unsigned row_capacity)
{
    const double rows = std::ldexp(1.0, static_cast<int>(pac_bits));
    const double lambda = static_cast<double>(live_objects) / rows;
    return rows * poissonTail(lambda, row_capacity);
}

unsigned
predictedAssociativity(u64 live_objects, unsigned pac_bits,
                       unsigned records_per_way, double tolerance)
{
    unsigned assoc = 1;
    while (assoc < 4096) {
        const double overflowing = expectedOverflowingRows(
            live_objects, pac_bits, assoc * records_per_way);
        if (overflowing < tolerance)
            return assoc;
        assoc *= 2;
    }
    return assoc;
}

double
wildPointerEscapeProb(u64 live_objects, unsigned pac_bits,
                      double avg_object_bytes)
{
    // Per live record, the wild pointer must share its PAC (2^-b) and
    // land inside its bounds in the 33-bit truncated address space.
    const double per_record = pacGuessProb(pac_bits) *
                              (avg_object_bytes / std::ldexp(1.0, 33));
    // Union bound over live records (tight for small probabilities).
    return std::min(1.0, per_record * static_cast<double>(live_objects));
}

} // namespace aos::analysis
