#include "pa/pointer_layout.hh"

#include "common/logging.hh"

namespace aos::pa {

PointerLayout::PointerLayout(unsigned pac_size, unsigned va_size)
    : _pacSize(pac_size), _vaSize(va_size)
{
    fatal_if(pac_size < 1 || pac_size > 32,
             "PAC size %u out of the architected 1..32 range", pac_size);
    fatal_if(va_size + pac_size + 2 > 64,
             "pointer layout overflows 64 bits (va=%u pac=%u)", va_size,
             pac_size);
}

u64
PointerLayout::computeAhc(Addr addr, u64 size) const
{
    // Alg. 1: tAddr = addr ^ (addr + size - 1); classify by the highest
    // differing bit. size == 0 (the xzr re-sign after free()) degrades
    // to addr ^ (addr - 1), which still yields a nonzero class.
    const Addr last = addr + size - 1;
    const u64 taddr = strip(addr) ^ strip(last);
    if (bits(taddr, _vaSize - 1, 7) == 0)
        return 1; // ~64-byte chunk
    if (bits(taddr, _vaSize - 1, 10) == 0)
        return 2; // ~256-byte chunk
    return 3; // larger
}

} // namespace aos::pa
