/**
 * @file
 * The AOS pointer bit layout: AHC | PAC | virtual address.
 *
 * AOS stores two metadata fields in the unused upper bits of a 64-bit
 * data pointer (paper Fig. 6):
 *
 *   - a 2-bit address hashing code (AHC). Nonzero AHC marks the pointer
 *     as signed (protected) and encodes which bits of the address are
 *     invariant across the object (paper Alg. 1);
 *   - a PAC of pacSize bits computed by QARMA over the raw address.
 *
 * The paper interleaves the PAC around AArch64's bit 55; we use a
 * contiguous layout (documented in DESIGN.md) which is functionally
 * identical:
 *
 *   bit 63........62  61..............(62-pacSize)  (61-pacSize)......0
 *        AHC (2 bits)  PAC (pacSize bits)            virtual address
 *
 * vaSize + pacSize + 2 must be <= 64; the defaults (46 + 16 + 2) match
 * the paper's 16-bit PAC configuration (Table IV).
 */

#ifndef AOS_PA_POINTER_LAYOUT_HH
#define AOS_PA_POINTER_LAYOUT_HH

#include "common/bitfield.hh"
#include "common/types.hh"

namespace aos::pa {

/** Immutable description of where AHC/PAC/VA live in a pointer. */
class PointerLayout
{
  public:
    /**
     * @param pac_size PAC width in bits (the paper supports 11..32).
     * @param va_size Virtual address width in bits.
     */
    explicit PointerLayout(unsigned pac_size = 16, unsigned va_size = 46);

    unsigned pacSize() const { return _pacSize; }
    unsigned vaSize() const { return _vaSize; }

    /** Number of distinct PAC values = rows in the HBT. */
    u64 pacSpace() const { return u64{1} << _pacSize; }

    /** The raw virtual address with all metadata bits cleared. */
    Addr
    strip(Addr ptr) const
    {
        return ptr & mask(_vaSize);
    }

    /** Extract the PAC field. */
    u64
    pac(Addr ptr) const
    {
        return bits(ptr, 61, 62 - _pacSize);
    }

    /** Extract the 2-bit AHC field. */
    u64
    ahc(Addr ptr) const
    {
        return bits(ptr, 63, 62);
    }

    /** True iff the pointer carries a nonzero AHC, i.e. is signed. */
    bool signed_(Addr ptr) const { return ahc(ptr) != 0; }

    /** Compose a pointer from raw address + metadata fields. */
    Addr
    compose(Addr raw_addr, u64 pac_value, u64 ahc_value) const
    {
        Addr ptr = strip(raw_addr);
        ptr = insertBits(ptr, 61, 62 - _pacSize, pac_value);
        ptr = insertBits(ptr, 63, 62, ahc_value);
        return ptr;
    }

    /**
     * Fault-injection hook: flip one bit of the metadata field. Bit 0
     * is the PAC LSB; bits pacSize and pacSize+1 are the AHC, so a
     * draw over [0, pacSize+2) strikes the whole signature.
     */
    Addr
    flipMetaBit(Addr ptr, unsigned bit) const
    {
        return ptr ^ (Addr{1} << (62 - _pacSize + bit % (_pacSize + 2)));
    }

    /** Fault-injection hook: flip one virtual-address bit. */
    Addr
    flipVaBit(Addr ptr, unsigned bit) const
    {
        return ptr ^ (Addr{1} << (bit % _vaSize));
    }

    /**
     * The address hashing code of paper Algorithm 1. Classifies the
     * object [addr, addr+size) by which address bits are invariant
     * inside it: 1 for <=64-byte (bin) objects, 2 for <=256-byte
     * objects, 3 otherwise. Always nonzero, so signing with any size
     * (including the xzr re-sign after free()) marks the pointer.
     */
    u64 computeAhc(Addr addr, u64 size) const;

  private:
    unsigned _pacSize;
    unsigned _vaSize;
};

} // namespace aos::pa

#endif // AOS_PA_POINTER_LAYOUT_HH
