/**
 * @file
 * The Arm PA / AOS signing primitives.
 *
 * PaContext models the per-process pointer-authentication state: the
 * QARMA keys (held in privileged registers, invisible to user space in
 * the threat model) and the pointer layout. It implements both the
 * baseline Armv8.3-A primitives needed by the PA configuration
 * (pacia/autia for return-address and code-pointer signing) and the new
 * AOS instructions of paper SIV-A:
 *
 *   pacma/pacmb  sign a data pointer with a PAC plus a 2-bit AHC
 *                derived from the allocation size;
 *   xpacm        strip both PAC and AHC;
 *   autm         authenticate that a pointer was signed by AOS
 *                (nonzero AHC) without stripping it.
 *
 * bndstr/bndclr are bounds-table instructions and live in aos::bounds /
 * aos::mcu; this module is purely about pointer bits.
 */

#ifndef AOS_PA_PA_CONTEXT_HH
#define AOS_PA_PA_CONTEXT_HH

#include <vector>

#include "pa/pointer_layout.hh"
#include "qarma/qarma64.hh"
#include "qarma/qarma_sliced.hh"

namespace aos::pa {

/** Which architected key register a signing instruction uses. */
enum class PaKey { kInstA, kInstB, kDataA, kDataB, kModifierM };

/** Result of an authentication instruction. */
enum class AuthResult { kPass, kFail };

/**
 * One process's five architected PA keys plus their expanded QARMA
 * schedules — what the OS saves and restores on a context switch
 * (CryptSan/PACSan per-process key management). Keeping the schedules
 * alongside the keys makes installKeys() a plain copy instead of five
 * key expansions per switch.
 */
struct KeySet
{
    qarma::Key128 keys[5];
    qarma::Qarma64::Schedule scheds[5];
};

/** Per-process pointer-authentication state and signing operations. */
class PaContext
{
  public:
    /**
     * @param layout Pointer bit layout (PAC/VA widths).
     * @param seed Seed from which the five architected keys are derived
     *        (a real OS would generate them at exec() time).
     */
    explicit PaContext(PointerLayout layout = PointerLayout(),
                       u64 seed = 0x6a09e667f3bcc908ull);

    /** Use the paper's published key/context pair (SVI) for key M. */
    void
    setKeyM(const qarma::Key128 &key)
    {
        _keys[4] = key;
        _scheds[4] = qarma::Qarma64::expandKey(key);
    }

    /**
     * Derive a process's key set from @p seed — the same derivation the
     * constructor performs, exposed so a scheduler can mint per-tenant
     * keys without building a throwaway context.
     */
    static KeySet deriveKeys(u64 seed);

    /** Snapshot the currently installed keys (context-switch save). */
    KeySet
    keys() const
    {
        KeySet set;
        for (unsigned i = 0; i < 5; ++i) {
            set.keys[i] = _keys[i];
            set.scheds[i] = _scheds[i];
        }
        return set;
    }

    /**
     * Install @p set into the five architected key slots (context-switch
     * restore). Every signing/authentication call after this uses the
     * new process's keys: a pointer signed under the previous keys now
     * fails key-dependent authentication.
     */
    void
    installKeys(const KeySet &set)
    {
        for (unsigned i = 0; i < 5; ++i) {
            _keys[i] = set.keys[i];
            _scheds[i] = set.scheds[i];
        }
    }

    const PointerLayout &layout() const { return _layout; }

    /**
     * Compute the PAC for @p ptr under @p modifier with key @p key,
     * truncated to the layout's PAC width (the QARMA tweak is the
     * modifier, as in Armv8.3-A).
     */
    u64 computePac(Addr ptr, u64 modifier, PaKey key) const;

    /**
     * pacma: sign a data pointer returned by malloc(). Embeds
     * PAC(strip(ptr), modifier) and AHC(ptr, size). Passing size == 0
     * models the xzr re-sign after free().
     */
    Addr pacma(Addr ptr, u64 modifier, u64 size) const;

    /** pacmb: same as pacma with the B-family key. */
    Addr pacmb(Addr ptr, u64 modifier, u64 size) const;

    /** xpacm: strip PAC and AHC, recovering the raw address. */
    Addr xpacm(Addr ptr) const { return _layout.strip(ptr); }

    /**
     * autm: authenticate an AOS-signed pointer by checking for a
     * nonzero AHC (paper SIV-A). Does not strip the pointer.
     */
    AuthResult autm(Addr ptr) const;

    /**
     * Key-dependent autm (CryptSan/PACSan semantics): the pointer must
     * carry a nonzero AHC *and* a PAC that verifies under the installed
     * key M. A pointer signed by one process fails under another
     * process's keys — the property the multi-tenant scheduler's
     * key-swap isolation rests on. The plain autm() above models the
     * paper's AHC-only check and is unchanged.
     */
    AuthResult
    autmKeyed(Addr ptr, u64 modifier) const
    {
        return _layout.signed_(ptr) && pacMatches(ptr, modifier)
                   ? AuthResult::kPass
                   : AuthResult::kFail;
    }

    /** pacia: sign a code pointer (return address) with key IA. */
    Addr pacia(Addr ptr, u64 modifier) const;

    /**
     * autia: authenticate a pacia-signed pointer. On success returns
     * the stripped pointer; on failure flags kFail (a real core would
     * poison the pointer so later use faults).
     */
    AuthResult autia(Addr ptr, u64 modifier, Addr *stripped) const;

    /** Verify that the PAC embedded in @p ptr matches key M. */
    bool pacMatches(Addr ptr, u64 modifier) const;

    /**
     * Batched data-pointer signing (DESIGN.md §14): sign @p n pointers
     * under one key in a single bit-sliced QARMA sweep. out[i] is
     * bit-identical to pacma()/pacmb() of the same request; @p out must
     * not alias the inputs. This is the queue drain behind PacBatch — callers
     * that accumulate a window of sign requests (the AOS backend pass,
     * the functional runtime) go through here instead of one cipher
     * call per pointer.
     */
    void batchPac(const Addr *ptrs, const u64 *modifiers,
                  const u64 *sizes, size_t n, PaKey key,
                  Addr *out) const;

  private:
    Addr signData(Addr ptr, u64 modifier, u64 size, PaKey key) const;

    PointerLayout _layout;
    qarma::Qarma64 _cipher;
    qarma::QarmaSliced _sliced;
    qarma::Key128 _keys[5];
    // Expanded once per key slot: computePac signs millions of pointers
    // per run, and re-deriving w1/k1 per block is pure waste.
    qarma::Qarma64::Schedule _scheds[5];
};

/**
 * A deferred-signing queue over PaContext::batchPac — the software
 * analogue of the paper's pipelined PAC unit: producers enqueue sign
 * requests as they are discovered, the whole window is signed in one
 * bit-sliced sweep at flush(), and consumers read results by slot.
 * Buffers are pooled: clear() keeps capacity, so a steady-state
 * producer (the AOS backend pass window) never reallocates.
 */
class PacBatch
{
  public:
    /** @param pa Signing context; @param key Key slot for every request. */
    explicit PacBatch(const PaContext *pa,
                      PaKey key = PaKey::kModifierM)
        : _pa(pa), _key(key)
    {
    }

    /** Queue one pacma-style request; returns its result slot. */
    size_t
    enqueue(Addr ptr, u64 modifier, u64 size)
    {
        _ptrs.push_back(ptr);
        _modifiers.push_back(modifier);
        _sizes.push_back(size);
        return _ptrs.size() - 1;
    }

    /** Sign everything queued in one batchPac sweep. */
    void
    flush()
    {
        _out.resize(_ptrs.size());
        _pa->batchPac(_ptrs.data(), _modifiers.data(), _sizes.data(),
                      _ptrs.size(), _key, _out.data());
    }

    /** Signed pointer for request @p slot (valid after flush()). */
    Addr result(size_t slot) const { return _out[slot]; }

    size_t pending() const { return _ptrs.size(); }

    /** Drop all requests/results, keeping the pooled capacity. */
    void
    clear()
    {
        _ptrs.clear();
        _modifiers.clear();
        _sizes.clear();
        _out.clear();
    }

  private:
    const PaContext *_pa;
    PaKey _key;
    std::vector<Addr> _ptrs;
    std::vector<u64> _modifiers;
    std::vector<u64> _sizes;
    std::vector<Addr> _out;
};

} // namespace aos::pa

#endif // AOS_PA_PA_CONTEXT_HH
