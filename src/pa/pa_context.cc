#include "pa/pa_context.hh"

#include "common/random.hh"

namespace aos::pa {

PaContext::PaContext(PointerLayout layout, u64 seed)
    : _layout(layout), _cipher(qarma::Sbox::kSigma1, 7),
      _sliced(qarma::Sbox::kSigma1, 7)
{
    installKeys(deriveKeys(seed));
}

KeySet
PaContext::deriveKeys(u64 seed)
{
    KeySet set;
    Rng rng(seed);
    for (unsigned i = 0; i < 5; ++i) {
        set.keys[i].w0 = rng.next();
        set.keys[i].k0 = rng.next();
        set.scheds[i] = qarma::Qarma64::expandKey(set.keys[i]);
    }
    return set;
}

u64
PaContext::computePac(Addr ptr, u64 modifier, PaKey key) const
{
    const auto &ks = _scheds[static_cast<unsigned>(key)];
    const u64 ct = _cipher.encrypt(_layout.strip(ptr), modifier, ks);
    return ct & mask(_layout.pacSize());
}

Addr
PaContext::signData(Addr ptr, u64 modifier, u64 size, PaKey key) const
{
    const Addr raw = _layout.strip(ptr);
    const u64 pac = computePac(raw, modifier, key);
    const u64 ahc = _layout.computeAhc(raw, size);
    return _layout.compose(raw, pac, ahc);
}

Addr
PaContext::pacma(Addr ptr, u64 modifier, u64 size) const
{
    return signData(ptr, modifier, size, PaKey::kModifierM);
}

Addr
PaContext::pacmb(Addr ptr, u64 modifier, u64 size) const
{
    return signData(ptr, modifier, size, PaKey::kDataB);
}

AuthResult
PaContext::autm(Addr ptr) const
{
    return _layout.signed_(ptr) ? AuthResult::kPass : AuthResult::kFail;
}

Addr
PaContext::pacia(Addr ptr, u64 modifier) const
{
    const Addr raw = _layout.strip(ptr);
    const u64 pac = computePac(raw, modifier, PaKey::kInstA);
    // Code pointers carry no AHC: the PAC alone occupies the upper
    // bits, matching baseline Armv8.3-A return-address signing.
    return _layout.compose(raw, pac, 0);
}

AuthResult
PaContext::autia(Addr ptr, u64 modifier, Addr *stripped) const
{
    const Addr raw = _layout.strip(ptr);
    const u64 expected = computePac(raw, modifier, PaKey::kInstA);
    if (stripped)
        *stripped = raw;
    return _layout.pac(ptr) == expected ? AuthResult::kPass
                                        : AuthResult::kFail;
}

void
PaContext::batchPac(const Addr *ptrs, const u64 *modifiers,
                    const u64 *sizes, size_t n, PaKey key,
                    Addr *out) const
{
    const auto &ks = _scheds[static_cast<unsigned>(key)];
    const u64 pacMask = mask(_layout.pacSize());
    // out doubles as the plaintext buffer: strip into it, run the
    // sliced sweep in place, then compose. strip() is a single mask,
    // so recomputing the raw address in the compose loop is free.
    for (size_t i = 0; i < n; ++i)
        out[i] = _layout.strip(ptrs[i]);
    _sliced.encrypt(out, modifiers, n, ks, out);
    for (size_t i = 0; i < n; ++i) {
        const Addr raw = _layout.strip(ptrs[i]);
        out[i] = _layout.compose(raw, out[i] & pacMask,
                                 _layout.computeAhc(raw, sizes[i]));
    }
}

bool
PaContext::pacMatches(Addr ptr, u64 modifier) const
{
    const Addr raw = _layout.strip(ptr);
    return _layout.pac(ptr) ==
           computePac(raw, modifier, PaKey::kModifierM);
}

} // namespace aos::pa
