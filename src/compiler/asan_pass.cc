#include "compiler/asan_pass.hh"

namespace aos::compiler {

void
AsanPass::transform(const ir::MicroOp &in)
{
    switch (in.kind) {
      case ir::OpKind::kLoad:
      case ir::OpKind::kStore: {
        // shadow = (addr >> 3) + offset; if (*shadow) slow_path().
        // The address computation folds into the load's addressing
        // mode; the check costs a shadow-byte load plus a compare-
        // and-branch per access.
        ir::MicroOp shadow =
            makeOp(ir::OpKind::kLoad, shadowAddr(in.addr), 1);
        emit(shadow);                                // shadow byte load
        ir::MicroOp cmp = makeOp(ir::OpKind::kBranch);
        cmp.branchId = 0x7fff;                       // "is poisoned?"
        cmp.taken = false;                           // fast path
        emit(cmp);
        emit(in);
        return;
      }

      case ir::OpKind::kMallocMark: {
        emit(in);
        // Poison the redzones around the new object: shadow stores
        // covering the left and right redzones (16 shadow bytes each).
        for (int i = 0; i < 2; ++i) {
            emit(makeOp(ir::OpKind::kStore,
                        shadowAddr(in.chunkBase - 128 + i * 64), 8));
            emit(makeOp(ir::OpKind::kStore,
                        shadowAddr(in.chunkBase + in.size + i * 64), 8));
        }
        // Unpoison the object body.
        emit(makeOp(ir::OpKind::kStore, shadowAddr(in.chunkBase), 8));
        return;
      }

      case ir::OpKind::kFreeMark:
        // Poison the freed object and push it into the quarantine
        // (list manipulation modeled as ALU + stores).
        emit(makeOp(ir::OpKind::kStore, shadowAddr(in.chunkBase), 8));
        emit(makeOp(ir::OpKind::kIntAlu));
        emit(makeOp(ir::OpKind::kStore, shadowAddr(in.chunkBase) + 8, 8));
        emit(in);
        return;

      default:
        emit(in);
        return;
    }
}

} // namespace aos::compiler
