/**
 * @file
 * AosBoundsElidePass — proof-carrying elision of whole-chunk AOS
 * instrumentation (DESIGN.md §11).
 *
 * Where AosElidePass removes *repeated* autm checks, this pass removes
 * the entire pacma/bndstr/bndclr/autm quadruple for chunk instances an
 * ElisionPlan proved non-escaping, spatially in-bounds, and temporally
 * safe (elision_plan.hh). It runs after the AOS backend and PA passes,
 * so it sees lowered streams and rewrites them as a compiler with the
 * analysis results would have emitted them in the first place:
 *
 *   - the malloc-side pacma + bndstr of an elided instance are dropped
 *     (the pointer is never signed, no HBT row is occupied);
 *   - loads/stores attributed to the instance have their addresses
 *     stripped back to the raw VA (the backend signed them; an elided
 *     chunk's pointer was never signed);
 *   - the free-side bndclr / xpacm / re-sign pacma are dropped;
 *   - any autm attributed to the instance is dropped (normally none:
 *     a pointer load from a chunk makes it escape, so elided chunks
 *     have no attributed authentications — the counter is defensive).
 *
 * Everything else — other chunks, unsigned accesses, invalid frees —
 * passes through untouched, which is what preserves the detection set:
 * an elided check is one the plan proved could never fire, and even a
 * wrong temporal assumption fails safe (a signed use-after-free access
 * still traps, against a missing record instead of a cleared one).
 * The ObligationChecker validates exactly this claim dynamically.
 */

#ifndef AOS_COMPILER_AOS_BOUNDS_ELIDE_PASS_HH
#define AOS_COMPILER_AOS_BOUNDS_ELIDE_PASS_HH

#include "common/flat_map.hh"
#include <unordered_set>

#include "analysis/dataflow/elision_plan.hh"
#include "compiler/pass.hh"
#include "pa/pointer_layout.hh"

namespace aos::compiler {

/** Per-op-kind elision counters (exported as belide_* stats). */
struct BoundsElideStats
{
    u64 pacmaSeen = 0;
    u64 pacmaElided = 0;
    u64 bndstrSeen = 0;
    u64 bndstrElided = 0;
    u64 bndclrSeen = 0;
    u64 bndclrElided = 0;
    u64 xpacmElided = 0;
    u64 autmElided = 0;
    u64 accessesStripped = 0;

    double
    bndstrElisionRate() const
    {
        return bndstrSeen
                   ? static_cast<double>(bndstrElided) / bndstrSeen
                   : 0.0;
    }
};

/** Plan-driven whole-chunk instrumentation elision. */
class AosBoundsElidePass : public Pass
{
  public:
    /** @param plan Analysis result; not owned. Null disables the pass. */
    AosBoundsElidePass(ir::InstStream *source, pa::PointerLayout layout,
                       const analysis::dataflow::ElisionPlan *plan)
        : Pass(source), _layout(layout), _plan(plan)
    {
    }

    std::string name() const override { return "aos-bounds-elide-pass"; }

    const BoundsElideStats &stats() const { return _stats; }

  protected:
    void transform(const ir::MicroOp &in) override;

  private:
    bool elidedOpen(Addr base) const
    {
        return _elidedOpen.count(base) != 0;
    }

    pa::PointerLayout _layout;
    const analysis::dataflow::ElisionPlan *_plan;

    /** Allocation ordinal per base; must mirror DataflowEngine. */
    FlatU64Map<u32> _gen;
    /** Bases whose *current* instance is elided. */
    std::unordered_set<Addr> _elidedOpen;
    /** Elided bases between their bndclr and their re-sign pacma. */
    std::unordered_set<Addr> _freeing;

    BoundsElideStats _stats;
};

} // namespace aos::compiler

#endif // AOS_COMPILER_AOS_BOUNDS_ELIDE_PASS_HH
