/**
 * @file
 * AddressSanitizer-style software checking (paper SI).
 *
 * The paper motivates hardware support by citing ASan's 73% slowdown:
 * software checking pays with *instructions*. This pass models ASan's
 * published mechanism:
 *
 *  - every load/store is preceded by shadow-address computation
 *    (shift + add), a shadow-byte load from the 1/8-scale shadow
 *    region, and a compare-and-branch;
 *  - malloc/free poison/unpoison the object's redzone shadow bytes;
 *  - frees quarantine (modeled by the extra free-path work).
 *
 * Used by bench/softcheck_comparison to place AOS between the
 * no-protection baseline and the software state of the art.
 */

#ifndef AOS_COMPILER_ASAN_PASS_HH
#define AOS_COMPILER_ASAN_PASS_HH

#include "compiler/pass.hh"

namespace aos::compiler {

class AsanPass : public Pass
{
  public:
    /** @param shadow_base Simulated base of the shadow region. */
    explicit AsanPass(ir::InstStream *source,
                      Addr shadow_base = 0x1000'0000'0000ull)
        : Pass(source), _shadowBase(shadow_base)
    {
    }

    std::string name() const override { return "asan-pass"; }

  protected:
    void transform(const ir::MicroOp &in) override;

  private:
    Addr
    shadowAddr(Addr addr) const
    {
        // ASan: shadow = (addr >> 3) + offset.
        return _shadowBase + (addr >> 3);
    }

    Addr _shadowBase;
};

} // namespace aos::compiler

#endif // AOS_COMPILER_ASAN_PASS_HH
