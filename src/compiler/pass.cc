#include "compiler/pass.hh"

// Pass and PassManager are header-only; this TU anchors the vtables.

namespace aos::compiler {
} // namespace aos::compiler
