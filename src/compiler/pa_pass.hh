/**
 * @file
 * PA pointer-integrity instrumentation (paper SVII-B, Figs. 3 and 13).
 *
 * Models the Liljestrand et al. "PACStack-style" code- and data-pointer
 * integrity scheme the paper uses as its PA configuration:
 *
 *  - return-address signing: pacia at every call, autia at every return
 *    (Fig. 3), each a 4-cycle crypto op;
 *  - on-load data-pointer authentication: every load that produces a
 *    data pointer is followed by an authentication op. In the PA-only
 *    configuration this is a full autda-style re-authentication
 *    (4 cycles); in the PA+AOS integration it is the cheap autm AHC
 *    check of Fig. 13 (1 cycle), because AOS pointers are already
 *    signed with the chunk-base PAC and cannot be re-authenticated
 *    against the current address.
 */

#ifndef AOS_COMPILER_PA_PASS_HH
#define AOS_COMPILER_PA_PASS_HH

#include "compiler/pass.hh"

namespace aos::compiler {

/** Which authentication flavour follows pointer loads. */
enum class PaMode
{
    kPaOnly, //!< Full PA: pacia/autia + autda-style on-load auth.
    kPaAos,  //!< PA integrated with AOS: autm on-load auth (Fig. 13).
};

class PaPass : public Pass
{
  public:
    PaPass(ir::InstStream *source, PaMode mode) : Pass(source), _mode(mode)
    {
    }

    std::string name() const override { return "pa-pass"; }

  protected:
    void transform(const ir::MicroOp &in) override;

    /**
     * Bulk specialization: calls, returns and pointer loads are a few
     * percent of the stream, so copy the untouched runs between them
     * in one go instead of a virtual transform per op.
     */
    void transformBatch(const ir::MicroOp *in, size_t n) override;

  private:
    PaMode _mode;
};

} // namespace aos::compiler

#endif // AOS_COMPILER_PA_PASS_HH
