/**
 * @file
 * AosElidePass — static elision of provably-redundant autm checks.
 *
 * The PA+AOS configuration authenticates every loaded data pointer with
 * autm (Fig. 13). Most of those authentications are redundant: autm is
 * a pure predicate of the pointer's metadata bits (nonzero AHC), and
 * every pointer derived from one signed chunk pointer carries the same
 * AHC/PAC upper bits — so once one value of a chunk's signed pointer
 * has been authenticated, re-authenticating any same-metadata value of
 * the same chunk cannot change the outcome until the chunk is freed or
 * re-signed.
 *
 * This pass runs a forward dataflow analysis over the instrumented
 * stream with a per-chunk lattice:
 *
 *   bottom  — nothing proven for the chunk;
 *   (pac, ahc) — a value carrying exactly this metadata has been
 *             authenticated and nothing invalidated it since;
 *
 * and the transfer function:
 *
 *   autm v (signed, chunk known):  elide if state(chunk) == meta(v),
 *                                  else execute and join to meta(v);
 *   bndclr / pacma / free of chunk: kill state(chunk);
 *   everything else:               identity.
 *
 * Anything not provably redundant — unsigned operands (autm must fail
 * on them: that failure IS the AHC-stripping detection), values with
 * unknown provenance, first use after any re-sign — is left untouched,
 * which is the soundness argument: an elided check is always a repeat
 * of an executed check on identical metadata with no intervening
 * event that could alter its verdict. This is the static-check-
 * elimination idea of ASan/CryptSan applied to AOS, and a new
 * Fig. 15-style ablation axis (bench/elision_ablation).
 */

#ifndef AOS_COMPILER_AOS_ELIDE_PASS_HH
#define AOS_COMPILER_AOS_ELIDE_PASS_HH

#include "common/flat_map.hh"

#include "compiler/pass.hh"
#include "pa/pointer_layout.hh"

namespace aos::compiler {

/** Elision statistics (exported into the run's StatSet). */
struct ElideStats
{
    u64 autmSeen = 0;      //!< autm ops reaching the pass.
    u64 autmElided = 0;    //!< Removed as provably redundant.
    u64 autmKept = 0;      //!< Emitted (first auth, unsigned, unknown).
    u64 invalidations = 0; //!< Chunk states killed by free/re-sign.

    double
    elisionRate() const
    {
        return autmSeen ? static_cast<double>(autmElided) / autmSeen : 0.0;
    }
};

/** Forward-dataflow autm redundancy elimination. */
class AosElidePass : public Pass
{
  public:
    AosElidePass(ir::InstStream *source, pa::PointerLayout layout)
        : Pass(source), _layout(layout)
    {
    }

    std::string name() const override { return "aos-elide-pass"; }

    const ElideStats &stats() const { return _stats; }

  protected:
    void transform(const ir::MicroOp &in) override;

  private:
    /** PAC and AHC fields packed into one comparable word. */
    u64
    metaOf(Addr addr) const
    {
        return (_layout.ahc(addr) << _layout.pacSize()) | _layout.pac(addr);
    }

    void invalidate(Addr chunk);

    pa::PointerLayout _layout;
    // chunk base -> metadata of the value last proven authentic.
    FlatU64Map<u64> _authed;
    ElideStats _stats;
};

} // namespace aos::compiler

#endif // AOS_COMPILER_AOS_ELIDE_PASS_HH
