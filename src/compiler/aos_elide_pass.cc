#include "compiler/aos_elide_pass.hh"

namespace aos::compiler {

void
AosElidePass::invalidate(Addr chunk)
{
    if (chunk != 0 && _authed.erase(chunk) != 0)
        ++_stats.invalidations;
}

void
AosElidePass::transform(const ir::MicroOp &in)
{
    switch (in.kind) {
      case ir::OpKind::kAutm: {
        ++_stats.autmSeen;
        // Only a signed value whose chunk provenance is known can be
        // proven redundant; unsigned operands must keep their autm —
        // its failure is the AHC-stripping detection itself.
        if (_layout.signed_(in.addr) && in.chunkBase != 0) {
            const u64 meta = metaOf(in.addr);
            const u64 *it = _authed.find(in.chunkBase);
            if (it && *it == meta) {
                ++_stats.autmElided;
                return; // provably redundant: elide
            }
            _authed[in.chunkBase] = meta;
        }
        ++_stats.autmKept;
        emit(in);
        return;
      }

      // Any event that re-signs or unbinds the chunk's pointer kills
      // the proof: the next autm must execute again.
      case ir::OpKind::kBndclr:
      case ir::OpKind::kFreeMark:
        invalidate(in.chunkBase);
        emit(in);
        return;

      case ir::OpKind::kPacma:
        // A fresh signing (malloc or the free-path re-sign) changes
        // the value's metadata; conservatively forget the chunk.
        invalidate(in.chunkBase);
        emit(in);
        return;

      default:
        emit(in);
        return;
    }
}

} // namespace aos::compiler
